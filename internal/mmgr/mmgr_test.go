package mmgr

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsNonPositive(t *testing.T) {
	for _, c := range []int{0, -1, -100} {
		if _, err := New(c); err == nil {
			t.Errorf("New(%d): want error, got nil", c)
		}
	}
}

func TestAllocBasic(t *testing.T) {
	a, err := New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 100 {
		t.Errorf("len=%d want 100", len(buf))
	}
	if cap(buf) != 128 {
		t.Errorf("cap=%d want 128 (next power of two)", cap(buf))
	}
	if a.InUse() != 128 {
		t.Errorf("InUse=%d want 128", a.InUse())
	}
}

func TestAllocZeroed(t *testing.T) {
	a, _ := New(1 << 16)
	buf, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xff
	}
	a.Free(buf)
	buf2, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range buf2 {
		if b != 0 {
			t.Fatalf("recycled chunk not zeroed at byte %d", i)
		}
	}
}

func TestAllocInvalidSize(t *testing.T) {
	a, _ := New(1 << 16)
	if _, err := a.Alloc(0); err == nil {
		t.Error("Alloc(0): want error")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Error("Alloc(-5): want error")
	}
}

func TestExhaustion(t *testing.T) {
	a, _ := New(256)
	if _, err := a.Alloc(200); err != nil {
		t.Fatalf("first alloc should fit: %v", err)
	}
	if _, err := a.Alloc(200); err == nil {
		t.Fatal("second alloc should exhaust the arena")
	}
}

func TestFreeRecycles(t *testing.T) {
	a, _ := New(256)
	buf, err := a.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(buf)
	if a.InUse() != 0 {
		t.Errorf("InUse after free=%d want 0", a.InUse())
	}
	// The arena region is fully carved, but freeing makes it reusable.
	if _, err := a.Alloc(256); err != nil {
		t.Errorf("alloc after free should reuse chunk: %v", err)
	}
}

func TestPeakTracking(t *testing.T) {
	a, _ := New(1 << 16)
	b1, _ := a.Alloc(1024)
	b2, _ := a.Alloc(1024)
	a.Free(b1)
	a.Free(b2)
	if got := a.Peak(); got != 2048 {
		t.Errorf("Peak=%d want 2048", got)
	}
	if got := a.InUse(); got != 0 {
		t.Errorf("InUse=%d want 0", got)
	}
}

func TestStats(t *testing.T) {
	a, _ := New(4096)
	b, _ := a.Alloc(100)
	a.Free(b)
	s := a.Stats()
	if s.Allocs != 1 || s.Frees != 1 {
		t.Errorf("allocs/frees = %d/%d want 1/1", s.Allocs, s.Frees)
	}
	if s.Capacity != 4096 {
		t.Errorf("capacity=%d want 4096", s.Capacity)
	}
	if s.Grabbed != 128 {
		t.Errorf("grabbed=%d want 128", s.Grabbed)
	}
}

func TestClassForRoundTrip(t *testing.T) {
	// Property: every allocation size maps to a class whose size is >= n
	// and < 2n (for n above the minimum class size).
	f := func(n uint16) bool {
		size := int(n)
		if size == 0 {
			size = 1
		}
		c := classFor(size)
		cs := classSize(c)
		if cs < size {
			return false
		}
		if size > 64 && cs >= 2*size {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a, _ := New(1 << 22)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 500; i++ {
				buf, err := a.Alloc(512)
				if err != nil {
					t.Error(err)
					break
				}
				a.Free(buf)
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if a.InUse() != 0 {
		t.Errorf("InUse=%d want 0 after all frees", a.InUse())
	}
}
