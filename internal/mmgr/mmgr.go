// Package mmgr implements the custom memory manager ldmsd uses for metric
// set chunks.
//
// The real LDMS daemon is started with a fixed memory budget for metric sets
// (the -m flag) and carves metadata and data chunks for every set out of that
// region with an internal allocator. This package reproduces that behaviour:
// an Arena is created with a fixed capacity, hands out power-of-two sized
// chunks, and accounts for usage so the resource-footprint experiment (T1)
// can report the exact per-node memory cost of a configuration.
package mmgr

import (
	"fmt"
	"math/bits"
	"sync"
)

// minClass is the smallest chunk class handed out (64 bytes).
const minClass = 6

// maxClasses bounds the number of power-of-two size classes (2^(6+32) is far
// beyond any realistic arena).
const maxClasses = 32

// Arena is a fixed-capacity allocator for metric set chunks. Freed chunks
// are recycled through per-size-class free lists, mirroring the behaviour of
// the LDMS mm allocator. The zero value is not usable; call New.
type Arena struct {
	mu       sync.Mutex
	capacity int
	used     int // bytes currently handed out (rounded to class size)
	peak     int // high-water mark of used
	grabbed  int // bytes carved from the region so far (never shrinks)
	free     [maxClasses][][]byte
	allocs   int
	frees    int
}

// New returns an Arena with the given capacity in bytes. Capacity must be
// positive.
func New(capacity int) (*Arena, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("mmgr: capacity must be positive, got %d", capacity)
	}
	return &Arena{capacity: capacity}, nil
}

// classFor returns the size-class index for a request of n bytes.
func classFor(n int) int {
	if n <= 1<<minClass {
		return 0
	}
	return bits.Len(uint(n-1)) - minClass
}

// classSize returns the chunk size in bytes for a class index.
func classSize(c int) int {
	return 1 << (c + minClass)
}

// Alloc returns a zeroed chunk of at least n bytes, or an error if the arena
// budget would be exceeded. The returned slice has length n and capacity of
// the underlying class size.
func (a *Arena) Alloc(n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mmgr: invalid allocation size %d", n)
	}
	c := classFor(n)
	if c >= maxClasses {
		return nil, fmt.Errorf("mmgr: allocation of %d bytes exceeds maximum class", n)
	}
	size := classSize(c)

	a.mu.Lock()
	defer a.mu.Unlock()

	if l := len(a.free[c]); l > 0 {
		buf := a.free[c][l-1]
		a.free[c] = a.free[c][:l-1]
		a.used += size
		if a.used > a.peak {
			a.peak = a.used
		}
		a.allocs++
		clear(buf[:size])
		return buf[:n:size], nil
	}

	if a.grabbed+size > a.capacity {
		return nil, fmt.Errorf("mmgr: arena exhausted: need %d bytes, %d of %d in use",
			size, a.grabbed, a.capacity)
	}
	a.grabbed += size
	a.used += size
	if a.used > a.peak {
		a.peak = a.used
	}
	a.allocs++
	buf := make([]byte, size)
	return buf[:n:size], nil
}

// Free returns a chunk previously obtained from Alloc to the arena. The
// caller must not use the slice afterwards.
func (a *Arena) Free(buf []byte) {
	if buf == nil {
		return
	}
	size := cap(buf)
	c := classFor(size)
	if classSize(c) != size {
		// Not one of our chunks; drop it rather than corrupt the lists.
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.free[c] = append(a.free[c], buf[:size])
	a.used -= size
	a.frees++
}

// InUse reports the bytes currently allocated (rounded up to class sizes).
func (a *Arena) InUse() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak reports the high-water mark of InUse over the arena's lifetime.
func (a *Arena) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Capacity reports the configured budget in bytes.
func (a *Arena) Capacity() int { return a.capacity }

// Stats summarizes allocator activity.
type Stats struct {
	Capacity int // configured budget
	InUse    int // bytes handed out now
	Peak     int // high-water mark
	Grabbed  int // bytes ever carved from the region
	Allocs   int // total Alloc calls that succeeded
	Frees    int // total Free calls
}

// Stats returns a snapshot of allocator counters.
func (a *Arena) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		Capacity: a.capacity,
		InUse:    a.used,
		Peak:     a.peak,
		Grabbed:  a.grabbed,
		Allocs:   a.allocs,
		Frees:    a.frees,
	}
}
