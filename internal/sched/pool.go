// Package sched provides the event-scheduling substrate for ldmsd: a timer
// heap dispatching periodic tasks onto worker pools, replacing the libevent
// dependency of the C implementation.
//
// Two clock modes are supported. The real clock runs tasks on wall time, as
// a production daemon does. The virtual clock lets whole-day
// characterization experiments (paper §VI) run in seconds while preserving
// exact event ordering: callers advance time explicitly and every due event
// fires in timestamp order.
package sched

import (
	"sync"
)

// Pool is a fixed-size worker pool. ldmsd uses one pool for sampling/update
// work ("worker threads") and a separate one for connection setup
// ("connection threads"), mirroring §IV-B: the connection pool was
// introduced to keep collector threads from starving while connection
// attempts hang in timeout on problem nodes.
type Pool struct {
	ch   chan func()
	wg   sync.WaitGroup
	once sync.Once
}

// NewPool starts n workers with the given submission queue depth.
func NewPool(n, depth int) *Pool {
	if n < 1 {
		n = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &Pool{ch: make(chan func(), depth)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.ch {
				f()
			}
		}()
	}
	return p
}

// Submit enqueues f, blocking while the queue is full. Submitting to a
// stopped pool panics (as sending on a closed channel does); callers must
// stop producers before stopping the pool.
func (p *Pool) Submit(f func()) {
	p.ch <- f
}

// TrySubmit enqueues f if the queue has room, reporting whether it did.
func (p *Pool) TrySubmit(f func()) bool {
	select {
	case p.ch <- f:
		return true
	default:
		return false
	}
}

// Stop closes the queue and waits for workers to drain it.
func (p *Pool) Stop() {
	p.once.Do(func() { close(p.ch) })
	p.wg.Wait()
}
