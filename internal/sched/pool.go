package sched

import (
	"sync"
)

// Pool is a fixed-size worker pool. ldmsd uses one pool for sampling/update
// work ("worker threads") and a separate one for connection setup
// ("connection threads"), mirroring §IV-B: the connection pool was
// introduced to keep collector threads from starving while connection
// attempts hang in timeout on problem nodes.
type Pool struct {
	mu      sync.RWMutex
	ch      chan func()
	wg      sync.WaitGroup
	workers int
	stopped bool
}

// NewPool starts n workers with the given submission queue depth.
func NewPool(n, depth int) *Pool {
	if n < 1 {
		n = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &Pool{ch: make(chan func(), depth), workers: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.ch {
				f()
			}
		}()
	}
	return p
}

// Submit enqueues f, blocking while the queue is full. It reports whether
// the work was accepted: a pool that has been stopped rejects submissions
// instead of panicking, so racing producers can drain cleanly.
func (p *Pool) Submit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.stopped {
		return false
	}
	// Workers keep draining until Stop closes the channel, and Stop cannot
	// close it while we hold the read lock, so this send always completes.
	p.ch <- f
	return true
}

// TrySubmit enqueues f if the queue has room and the pool is running,
// reporting whether it did.
func (p *Pool) TrySubmit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.stopped {
		return false
	}
	select {
	case p.ch <- f:
		return true
	default:
		return false
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth returns the number of submitted-but-not-started jobs, a
// saturation gauge for the daemon's self-metrics: a queue pinned at
// QueueCap means submitters are blocking.
func (p *Pool) QueueDepth() int { return len(p.ch) }

// QueueCap returns the submission queue capacity.
func (p *Pool) QueueCap() int { return cap(p.ch) }

// Stop closes the queue and waits for workers to drain it. Submissions
// racing with Stop either land before the close (and are executed) or are
// rejected; they never panic. Stop is idempotent.
func (p *Pool) Stop() {
	p.mu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.ch)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
