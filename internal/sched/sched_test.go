package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsWork(t *testing.T) {
	p := NewPool(4, 16)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		p.Submit(func() {
			n.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	p.Stop()
	if n.Load() != 100 {
		t.Errorf("ran %d tasks, want 100", n.Load())
	}
}

func TestPoolTrySubmit(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	p.Submit(func() { <-block })
	// Fill the queue.
	for !p.TrySubmit(func() {}) {
		time.Sleep(time.Millisecond)
	}
	// Queue now has one item and the worker is blocked; next must fail.
	ok := p.TrySubmit(func() {})
	if ok {
		t.Error("TrySubmit succeeded on a full queue")
	}
	close(block)
	p.Stop()
}

func TestPoolStopIdempotent(t *testing.T) {
	p := NewPool(2, 4)
	p.Stop()
	p.Stop()
}

func TestPoolSubmitAfterStop(t *testing.T) {
	p := NewPool(2, 4)
	p.Stop()
	if p.Submit(func() {}) {
		t.Error("Submit accepted work on a stopped pool")
	}
	if p.TrySubmit(func() {}) {
		t.Error("TrySubmit accepted work on a stopped pool")
	}
}

// TestPoolStopSubmitRace hammers Submit from several goroutines while Stop
// runs concurrently: accepted work must all execute, rejected work must
// not, and nothing may panic on the closed queue.
func TestPoolStopSubmitRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		p := NewPool(2, 1)
		var executed, accepted atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if p.Submit(func() { executed.Add(1) }) {
						accepted.Add(1)
					}
				}
			}()
		}
		p.Stop()
		wg.Wait()
		if executed.Load() != accepted.Load() {
			t.Fatalf("executed %d of %d accepted submissions", executed.Load(), accepted.Load())
		}
	}
}

func TestVirtualAdvanceFiresInOrder(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewVirtual(start)
	var order []int64
	s.Every(10*time.Second, 0, false, func(now time.Time) {
		order = append(order, now.Unix())
	})
	s.Every(15*time.Second, 0, false, func(now time.Time) {
		order = append(order, -now.Unix())
	})
	s.AdvanceTo(start.Add(30 * time.Second))
	// Expect: 10, -15, 20, 30, -30 (at t=30 the 10s task has lower seq).
	want := []int64{10, -15, 20, 30, -30}
	if len(order) != len(want) {
		t.Fatalf("order = %v want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v want %v", order, want)
		}
	}
	if got := s.Now(); !got.Equal(start.Add(30 * time.Second)) {
		t.Errorf("Now = %v", got)
	}
}

func TestVirtualSynchronousAlignment(t *testing.T) {
	// Start at an unaligned time; synchronous task with 60 s interval and
	// 2 s offset must first fire at the next minute boundary + 2 s.
	start := time.Unix(1000000007, 500)
	s := NewVirtual(start)
	var fired []int64
	s.Every(60*time.Second, 2*time.Second, true, func(now time.Time) {
		fired = append(fired, now.Unix())
	})
	s.AdvanceBy(3 * time.Minute)
	if len(fired) < 2 {
		t.Fatalf("fired = %v", fired)
	}
	for _, f := range fired {
		if (f-2)%60 != 0 {
			t.Errorf("fire time %d not aligned to minute+2s", f)
		}
	}
	if fired[0] != 1000000022 { // next multiple of 60 after 1000000007 is ...020, +2
		t.Errorf("first fire at %d want 1000000022", fired[0])
	}
}

func TestVirtualOneShot(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewVirtual(start)
	var n int
	s.After(5*time.Second, func(time.Time) { n++ })
	s.AdvanceBy(time.Minute)
	s.AdvanceBy(time.Minute)
	if n != 1 {
		t.Errorf("one-shot fired %d times", n)
	}
}

func TestVirtualCancel(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewVirtual(start)
	var n int
	task := s.Every(time.Second, 0, false, func(time.Time) { n++ })
	s.AdvanceBy(3 * time.Second)
	task.Cancel()
	s.AdvanceBy(10 * time.Second)
	if n != 3 {
		t.Errorf("fired %d times after cancel, want 3", n)
	}
}

func TestVirtualCancelFromCallback(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewVirtual(start)
	var n int
	var task *Task
	task = s.Every(time.Second, 0, false, func(time.Time) {
		n++
		if n == 2 {
			task.Cancel()
		}
	})
	s.AdvanceBy(10 * time.Second)
	if n != 2 {
		t.Errorf("fired %d times, want 2", n)
	}
}

func TestVirtualTaskAddedDuringAdvance(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewVirtual(start)
	var fired []string
	s.After(time.Second, func(time.Time) {
		fired = append(fired, "a")
		s.After(time.Second, func(time.Time) {
			fired = append(fired, "b")
		})
	})
	s.AdvanceBy(5 * time.Second)
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Errorf("fired = %v", fired)
	}
}

func TestRealSchedulerFires(t *testing.T) {
	s := NewReal(2)
	defer s.Stop()
	var n atomic.Int64
	done := make(chan struct{})
	s.Every(5*time.Millisecond, 0, false, func(time.Time) {
		if n.Add(1) == 3 {
			select {
			case done <- struct{}{}:
			default:
			}
		}
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("periodic task did not fire 3 times within 5s")
	}
}

func TestRealOneShotAndCancel(t *testing.T) {
	s := NewReal(2)
	defer s.Stop()
	var fired atomic.Bool
	task := s.After(50*time.Millisecond, func(time.Time) { fired.Store(true) })
	task.Cancel()
	ch := make(chan struct{})
	s.After(100*time.Millisecond, func(time.Time) { close(ch) })
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("one-shot never fired")
	}
	if fired.Load() {
		t.Error("cancelled one-shot fired")
	}
}

func TestStopPreventsFurtherFiring(t *testing.T) {
	s := NewReal(2)
	var n atomic.Int64
	s.Every(time.Millisecond, 0, false, func(time.Time) { n.Add(1) })
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	v := n.Load()
	time.Sleep(20 * time.Millisecond)
	if n.Load() != v {
		t.Error("tasks fired after Stop")
	}
}

func TestNextFire(t *testing.T) {
	now := time.Unix(100, 0)
	if got := nextFire(now, 10*time.Second, 0, false); !got.Equal(time.Unix(110, 0)) {
		t.Errorf("async nextFire = %v", got)
	}
	if got := nextFire(now, 60*time.Second, 0, true); !got.Equal(time.Unix(120, 0)) {
		t.Errorf("sync nextFire = %v", got)
	}
	// Already on a boundary: next boundary, not now.
	if got := nextFire(time.Unix(120, 0), 60*time.Second, 0, true); !got.Equal(time.Unix(180, 0)) {
		t.Errorf("sync on-boundary nextFire = %v", got)
	}
}

func TestPendingCount(t *testing.T) {
	s := NewVirtual(time.Unix(0, 0))
	s.Every(time.Second, 0, false, func(time.Time) {})
	s.After(time.Second, func(time.Time) {})
	if got := s.Pending(); got != 2 {
		t.Errorf("Pending = %d want 2", got)
	}
	s.AdvanceBy(2 * time.Second)
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending after advance = %d want 1 (one-shot gone)", got)
	}
}
