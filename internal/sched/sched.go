package sched

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// Task is a scheduled callback. Periodic tasks re-arm themselves until
// cancelled; one-shot tasks fire once.
type Task struct {
	fn        func(now time.Time)
	interval  time.Duration
	offset    time.Duration
	sync      bool
	oneShot   bool
	next      time.Time
	heapIndex int
	cancelled atomic.Bool
	seq       uint64 // tie-break for deterministic ordering at equal times
}

// Cancel prevents any further firings of the task. Safe to call from any
// goroutine, including from within the task callback.
func (t *Task) Cancel() { t.cancelled.Store(true) }

// taskHeap orders tasks by next fire time, then by creation sequence.
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if !h[i].next.Equal(h[j].next) {
		return h[i].next.Before(h[j].next)
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *taskHeap) Push(x any) {
	t := x.(*Task)
	t.heapIndex = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Scheduler dispatches timed tasks. Construct with NewReal (wall clock,
// worker pool) or NewVirtual (explicit time, inline execution).
type Scheduler struct {
	mu      sync.Mutex
	tasks   taskHeap
	seq     uint64
	virtual bool
	now     time.Time // virtual clock position
	pool    *Pool
	wake    chan struct{}
	done    chan struct{}
	stopped bool
}

// NewReal returns a wall-clock scheduler dispatching callbacks onto a pool
// of workers sized like ldmsd's worker thread pool ("typically no larger
// than the number of CPU cores").
func NewReal(workers int) *Scheduler {
	s := &Scheduler{
		pool: NewPool(workers, 4*workers+16),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go s.loop()
	return s
}

// NewVirtual returns a scheduler whose clock starts at start and only moves
// when AdvanceTo/AdvanceBy are called. Callbacks run inline, in exact
// timestamp order, on the advancing goroutine.
func NewVirtual(start time.Time) *Scheduler {
	return &Scheduler{virtual: true, now: start}
}

// Virtual reports whether this scheduler runs on an explicit virtual clock
// (callbacks inline, deterministic order) rather than wall time. Callers
// that fan work out onto goroutines consult this to stay deterministic in
// virtual-time experiments.
func (s *Scheduler) Virtual() bool { return s.virtual }

// Now returns the scheduler's current time (wall time for real schedulers).
func (s *Scheduler) Now() time.Time {
	if !s.virtual {
		return time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Every schedules fn to run each interval. If synchronous is true the
// firings align to wall-clock multiples of the interval plus offset
// (paper §IV-C: "synchronous operation refers to an attempt to collect (or
// sample) relative to particular times as opposed to relative to an
// arbitrary start time"); otherwise the first firing is one interval from
// now.
func (s *Scheduler) Every(interval, offset time.Duration, synchronous bool, fn func(time.Time)) *Task {
	if interval <= 0 {
		interval = time.Second
	}
	t := &Task{fn: fn, interval: interval, offset: offset, sync: synchronous}
	s.mu.Lock()
	t.seq = s.seq
	s.seq++
	t.next = nextFire(s.lockedNow(), interval, offset, synchronous)
	heap.Push(&s.tasks, t)
	s.mu.Unlock()
	s.kick()
	return t
}

// After schedules fn to run once, d from now.
func (s *Scheduler) After(d time.Duration, fn func(time.Time)) *Task {
	if d < 0 {
		d = 0
	}
	t := &Task{fn: fn, oneShot: true}
	s.mu.Lock()
	t.seq = s.seq
	s.seq++
	t.next = s.lockedNow().Add(d)
	heap.Push(&s.tasks, t)
	s.mu.Unlock()
	s.kick()
	return t
}

// lockedNow returns the current time; caller holds s.mu for virtual mode.
func (s *Scheduler) lockedNow() time.Time {
	if s.virtual {
		return s.now
	}
	return time.Now()
}

// nextFire computes the first firing time for a task created at now.
func nextFire(now time.Time, interval, offset time.Duration, synchronous bool) time.Time {
	if !synchronous {
		return now.Add(interval)
	}
	// Align to the next multiple of interval since the unix epoch, plus
	// offset.
	ns := now.UnixNano()
	iv := interval.Nanoseconds()
	aligned := (ns/iv + 1) * iv
	return time.Unix(0, aligned).Add(offset)
}

// kick wakes the real-mode dispatch loop after heap changes.
func (s *Scheduler) kick() {
	if s.virtual {
		return
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop is the real-mode dispatcher.
func (s *Scheduler) loop() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		var wait time.Duration
		if len(s.tasks) == 0 {
			wait = time.Hour
		} else {
			wait = time.Until(s.tasks[0].next)
		}
		if wait <= 0 {
			t := heap.Pop(&s.tasks).(*Task)
			if t.cancelled.Load() {
				s.mu.Unlock()
				continue
			}
			fireAt := t.next
			if !t.oneShot {
				t.next = t.next.Add(t.interval)
				// If we fell behind, skip missed firings rather than
				// bursting (interval-driven, not catch-up).
				if now := time.Now(); t.next.Before(now) {
					t.next = nextFire(now, t.interval, t.offset, t.sync)
				}
				heap.Push(&s.tasks, t)
			}
			s.mu.Unlock()
			s.pool.Submit(func() {
				if !t.cancelled.Load() {
					t.fn(fireAt)
				}
			})
			continue
		}
		s.mu.Unlock()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-s.wake:
		case <-s.done:
			return
		}
	}
}

// AdvanceTo moves a virtual scheduler's clock to target, firing every due
// task inline in timestamp order. It panics on a real-clock scheduler.
func (s *Scheduler) AdvanceTo(target time.Time) {
	if !s.virtual {
		panic("sched: AdvanceTo on a real-clock scheduler")
	}
	for {
		s.mu.Lock()
		if len(s.tasks) == 0 || s.tasks[0].next.After(target) {
			if target.After(s.now) {
				s.now = target
			}
			s.mu.Unlock()
			return
		}
		t := heap.Pop(&s.tasks).(*Task)
		if t.cancelled.Load() {
			s.mu.Unlock()
			continue
		}
		fireAt := t.next
		if fireAt.After(s.now) {
			s.now = fireAt
		}
		if !t.oneShot {
			t.next = t.next.Add(t.interval)
			heap.Push(&s.tasks, t)
		}
		s.mu.Unlock()
		t.fn(fireAt)
	}
}

// AdvanceBy moves a virtual scheduler's clock forward by d.
func (s *Scheduler) AdvanceBy(d time.Duration) {
	s.AdvanceTo(s.Now().Add(d))
}

// Pending returns the number of tasks currently armed.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tasks)
}

// Stop halts dispatching. Real-mode worker pools are drained. Tasks still
// queued never fire.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	if !s.virtual {
		close(s.done)
		s.pool.Stop()
	}
}
