package rrd

import (
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := New(time.Second, 0); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := New(time.Second, 10, [2]int{1, 5}); err == nil {
		t.Error("consolidation factor 1 accepted")
	}
}

func TestUpdateFetch(t *testing.T) {
	r, err := New(time.Second, 60)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	for i := 0; i < 30; i++ {
		if err := r.Update(base.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pts := r.Fetch(base, base.Add(30*time.Second))
	if len(pts) != 30 {
		t.Fatalf("points = %d want 30", len(pts))
	}
	for i, p := range pts {
		if p.Value != float64(i) {
			t.Errorf("point %d = %g", i, p.Value)
		}
	}
}

func TestNonMonotonicRejected(t *testing.T) {
	r, _ := New(time.Second, 10)
	r.Update(time.Unix(100, 0), 1)
	if err := r.Update(time.Unix(99, 0), 2); err == nil {
		t.Error("out-of-order update accepted")
	}
}

func TestAgingOut(t *testing.T) {
	// 10-slot primary archive at 1 s: data older than 10 s must be gone
	// (the behaviour the paper contrasts with LDMS long-term storage).
	r, _ := New(time.Second, 10)
	base := time.Unix(2000, 0)
	for i := 0; i < 25; i++ {
		r.Update(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	pts := r.Fetch(base, base.Add(5*time.Second))
	for _, p := range pts {
		if p.Value < 15 {
			t.Errorf("value %g should have aged out", p.Value)
		}
	}
	cov := r.Coverage()
	if cov.Before(base.Add(14 * time.Second)) {
		t.Errorf("coverage %v extends too far back", cov)
	}
}

func TestConsolidatedArchiveExtendsCoverage(t *testing.T) {
	// Primary: 10 slots at 1 s. Consolidated: 10 slots at 6 s (averages).
	r, _ := New(time.Second, 10, [2]int{6, 10})
	base := time.Unix(3000, 0)
	for i := 0; i < 50; i++ {
		r.Update(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	cov := r.Coverage()
	if !cov.Before(base.Add(41 * time.Second)) {
		t.Errorf("consolidated archive should cover older data, coverage=%v", cov)
	}
	// Old data from the consolidated archive is averaged.
	pts := r.Fetch(base, base.Add(20*time.Second))
	if len(pts) == 0 {
		t.Fatal("no consolidated points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time.Before(pts[i-1].Time) {
			t.Error("points out of order")
		}
	}
}

func TestFetchEmpty(t *testing.T) {
	r, _ := New(time.Second, 5)
	if pts := r.Fetch(time.Unix(0, 0), time.Unix(100, 0)); len(pts) != 0 {
		t.Errorf("empty db returned %d points", len(pts))
	}
	if !r.Coverage().IsZero() {
		t.Error("empty db has coverage")
	}
}
