// Package rrd implements a small round-robin database in the style of
// RRDTool, the storage backend Ganglia writes to (paper §IV-E: "Ganglia
// stores to RRDTool which ages out data and thus requires a separate data
// move if long term storage is desired").
//
// A database holds one primary archive at the base step plus optional
// consolidated archives at coarser steps. Each archive is a fixed ring:
// new data overwrites the oldest, so history beyond rows×step is lost —
// the aging-out behaviour the paper contrasts with LDMS's append-only
// stores.
package rrd

import (
	"fmt"
	"math"
	"time"
)

// Archive is one fixed-size ring of consolidated values.
type Archive struct {
	step  time.Duration
	rows  int
	vals  []float64
	times []int64 // unix seconds of each slot's bucket start; 0 = empty
	// consolidation accumulator for steps coarser than the base step
	accSum   float64
	accN     int
	accStart int64
}

// RRD is a round-robin database for one metric.
type RRD struct {
	base     time.Duration
	archives []*Archive
	last     int64
}

// New creates an RRD with a primary archive of rows slots at the base
// step, plus one consolidated archive per extra (step, rows) pair.
func New(base time.Duration, rows int, extra ...[2]int) (*RRD, error) {
	if base <= 0 || rows <= 0 {
		return nil, fmt.Errorf("rrd: invalid base archive %v x %d", base, rows)
	}
	r := &RRD{base: base}
	r.archives = append(r.archives, newArchive(base, rows))
	for _, e := range extra {
		factor, n := e[0], e[1]
		if factor < 2 || n <= 0 {
			return nil, fmt.Errorf("rrd: invalid consolidated archive %dx base, %d rows", factor, n)
		}
		r.archives = append(r.archives, newArchive(base*time.Duration(factor), n))
	}
	return r, nil
}

func newArchive(step time.Duration, rows int) *Archive {
	a := &Archive{step: step, rows: rows, vals: make([]float64, rows), times: make([]int64, rows)}
	for i := range a.vals {
		a.vals[i] = math.NaN()
	}
	return a
}

// Update records a value at time t. Updates must be time-ordered.
func (r *RRD) Update(t time.Time, v float64) error {
	sec := t.Unix()
	if sec < r.last {
		return fmt.Errorf("rrd: non-monotonic update at %d (last %d)", sec, r.last)
	}
	r.last = sec
	for _, a := range r.archives {
		a.update(sec, v)
	}
	return nil
}

// update folds one sample into an archive, consolidating by average.
func (a *Archive) update(sec int64, v float64) {
	step := int64(a.step / time.Second)
	if step < 1 {
		step = 1
	}
	bucket := sec - sec%step
	if a.accN > 0 && bucket != a.accStart {
		a.commit()
	}
	if a.accN == 0 {
		a.accStart = bucket
	}
	a.accSum += v
	a.accN++
}

// commit writes the accumulated consolidated value into the ring.
func (a *Archive) commit() {
	slot := int((a.accStart / int64(a.step/time.Second))) % a.rows
	if slot < 0 {
		slot += a.rows
	}
	a.vals[slot] = a.accSum / float64(a.accN)
	a.times[slot] = a.accStart
	a.accSum, a.accN = 0, 0
}

// Flush commits any pending consolidation accumulators (call before
// fetching the newest data).
func (r *RRD) Flush() {
	for _, a := range r.archives {
		if a.accN > 0 {
			a.commit()
		}
	}
}

// Point is one stored sample.
type Point struct {
	Time  time.Time
	Value float64
}

// Fetch returns stored points in [from, to) from the finest archive that
// still covers `from`. Data older than every archive is gone — aged out.
func (r *RRD) Fetch(from, to time.Time) []Point {
	r.Flush()
	for _, a := range r.archives {
		if pts := a.fetch(from, to); pts != nil {
			return pts
		}
	}
	return nil
}

// Coverage returns the oldest time the database still holds data for.
func (r *RRD) Coverage() time.Time {
	r.Flush()
	oldest := int64(math.MaxInt64)
	found := false
	for _, a := range r.archives {
		for _, ts := range a.times {
			if ts != 0 && ts < oldest {
				oldest = ts
				found = true
			}
		}
	}
	if !found {
		return time.Time{}
	}
	return time.Unix(oldest, 0)
}

// fetch returns points if this archive covers `from`, else nil.
func (a *Archive) fetch(from, to time.Time) []Point {
	var pts []Point
	covered := false
	for i := 0; i < a.rows; i++ {
		ts := a.times[i]
		if ts == 0 || math.IsNaN(a.vals[i]) {
			continue
		}
		t := time.Unix(ts, 0)
		if !t.After(from) {
			covered = true
		}
		if !t.Before(from) && t.Before(to) {
			pts = append(pts, Point{Time: t, Value: a.vals[i]})
		}
	}
	if !covered && len(pts) == 0 {
		return nil
	}
	sortPoints(pts)
	return pts
}

// sortPoints orders by time (insertion sort; rings are small).
func sortPoints(pts []Point) {
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j].Time.Before(pts[j-1].Time); j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
}
