package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// atomicmixAnalyzer enforces that any variable or struct field accessed
// through sync/atomic anywhere in the module is accessed atomically
// everywhere: a single plain load racing an atomic store is still a
// data race. Two shapes are checked:
//
//  1. old-style helpers: atomic.AddInt64(&s.n, 1) marks s.n; every
//     other use of s.n must also be an &-arg to a sync/atomic call.
//  2. atomic-typed fields (atomic.Int64, atomic.Pointer[T], ...): the
//     field may only be used as a method receiver or have its address
//     taken; copying the value defeats the type's guarantee.
var atomicmixAnalyzer = &Analyzer{
	Name:     "atomicmix",
	Doc:      "fields accessed via sync/atomic must be accessed atomically everywhere",
	Suppress: "atomicok",
	Collect:  collectAtomicmix,
	Run:      runAtomicmix,
}

// atomicTargetKey identifies a variable across packages by its
// declaration position. The loader shares one FileSet between directly
// analyzed packages and source-imported ones, so positions agree even
// though the types.Object identities differ.
func atomicTargetKey(p *Pass, obj types.Object) string {
	return p.fset.Position(obj.Pos()).String()
}

// atomicCallTarget returns the object whose address is taken by an
// &-argument of a sync/atomic call, e.g. s.n in atomic.AddInt64(&s.n, 1).
func atomicCallTarget(info *types.Info, call *ast.CallExpr) (types.Object, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	if path, ok := pkgNameOf(info, sel.X); !ok || path != "sync/atomic" {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	un, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil, false
	}
	switch x := un.X.(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj(), true
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v, true
		}
	}
	return nil, false
}

func collectAtomicmix(p *Pass, facts *Facts) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj, ok := atomicCallTarget(p.Pkg.Info, call); ok {
				key := atomicTargetKey(p, obj)
				if _, dup := facts.AtomicFields[key]; !dup {
					facts.AtomicFields[key] = fmt.Sprintf("%s (first atomic access at %s)", obj.Name(), p.Position(call.Pos()))
				}
			}
			return true
		})
	}
}

func runAtomicmix(p *Pass, facts *Facts) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		walkStack(f, func(stack []ast.Node, n ast.Node) bool {
			var obj types.Object
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if s := info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
					obj = s.Obj()
				}
			case *ast.Ident:
				if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() {
					obj = v
				}
			}
			if obj == nil {
				return true
			}
			if desc, tracked := facts.AtomicFields[atomicTargetKey(p, obj)]; tracked && !isAtomicCallArg(info, stack) {
				p.Reportf(n.Pos(), "non-atomic access of %s; every access must go through sync/atomic", desc)
				return true
			}
			if sel, ok := n.(*ast.SelectorExpr); ok && isAtomicTyped(info.Selections[sel].Obj().Type()) && !isReceiverOrAddr(stack, n) {
				p.Reportf(n.Pos(), "atomic-typed field %s copied by value; use its Load/Store/Add methods or take its address", sel.Sel.Name)
			}
			return true
		})
	}
}

// isAtomicCallArg reports whether the node under inspection sits as the
// &-argument of a sync/atomic call: stack ends ... CallExpr, UnaryExpr(&).
func isAtomicCallArg(info *types.Info, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	un, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	_, ok = atomicCallTarget(info, call)
	return ok
}

// isAtomicTyped reports whether t is (a pointer to) a named type from
// sync/atomic, such as atomic.Int64 or atomic.Pointer[T].
func isAtomicTyped(t types.Type) bool {
	n, ok := namedType(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isReceiverOrAddr reports whether the selector is used as the base of
// a further selection (method call receiver) or has its address taken —
// the only uses that preserve an atomic type's guarantee.
func isReceiverOrAddr(stack []ast.Node, n ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		return parent.X == n
	case *ast.UnaryExpr:
		return parent.Op.String() == "&"
	case *ast.IndexExpr:
		// Arrays of atomic values: h.buckets[i].Add(1).
		return parent.X == n
	}
	return false
}
