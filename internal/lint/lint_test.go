package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// moduleRoot is the repo root relative to this package's test binary.
const moduleRoot = "../.."

// runTestdata analyzes one testdata package under a fake import path
// (so path-scoped analyzers see it as in scope) and returns the
// rendered diagnostics.
func runTestdata(t *testing.T, name, asImportPath string, analyzers []*Analyzer) string {
	t.Helper()
	dir := filepath.Join("internal", "lint", "testdata", name)
	diags, err := RunPackage(moduleRoot, dir, asImportPath, analyzers)
	if err != nil {
		t.Fatalf("RunPackage(%s): %v", dir, err)
	}
	var buf bytes.Buffer
	for _, d := range diags {
		fmt.Fprintln(&buf, d)
	}
	return buf.String()
}

// checkGolden compares output against testdata/<name>.golden,
// rewriting it under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/lint -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func TestClocksourceGolden(t *testing.T) {
	got := runTestdata(t, "clocksource", "goldms/internal/ldmsd/lintcheck", Analyzers())
	checkGolden(t, "clocksource", got)
}

func TestClocksourceOutOfScope(t *testing.T) {
	// The same file under a path outside the restricted packages (the
	// sched package implements the clock) must produce no findings.
	got := runTestdata(t, "clocksource", "goldms/internal/sched/lintcheck", Analyzers())
	if got != "" {
		t.Errorf("expected no diagnostics out of scope, got:\n%s", got)
	}
}

func TestAtomicmixGolden(t *testing.T) {
	got := runTestdata(t, "atomicmix", "goldms/internal/lintcheck/atomicmix", Analyzers())
	checkGolden(t, "atomicmix", got)
}

func TestSetaccessGolden(t *testing.T) {
	got := runTestdata(t, "setaccess", "goldms/internal/lintcheck/setaccess", Analyzers())
	checkGolden(t, "setaccess", got)
}

func TestSetaccessExemptInsideMetric(t *testing.T) {
	// internal/metric owns the raw accessors; the same code analyzed as
	// part of that package is exempt.
	got := runTestdata(t, "setaccess", "goldms/internal/metric/lintcheck", Analyzers())
	if strings.Contains(got, "[setaccess]") {
		t.Errorf("setaccess must not fire inside internal/metric, got:\n%s", got)
	}
}

func TestHotpathGolden(t *testing.T) {
	got := runTestdata(t, "hotpath", "goldms/internal/lintcheck/hotpath", Analyzers())
	checkGolden(t, "hotpath", got)
}

func TestLockorderGolden(t *testing.T) {
	got := runTestdata(t, "lockorder", "goldms/internal/ldmsd/lintcheck", Analyzers())
	checkGolden(t, "lockorder", got)
}

func TestLockorderOutOfScope(t *testing.T) {
	// The same cycles analyzed outside the daemon packages produce no
	// findings (the dep package contributes facts, never findings).
	got := runTestdata(t, "lockorder", "goldms/internal/sched/lintcheck", Analyzers())
	if strings.Contains(got, "[lockorder]") {
		t.Errorf("lockorder must not fire out of scope, got:\n%s", got)
	}
}

func TestLockorderCrossPackage(t *testing.T) {
	// The cross-package cycle leg exists only because dep.Grab's
	// transitive acquire of Locker.Mu propagates to the call site.
	got := runTestdata(t, "lockorder", "goldms/internal/ldmsd/lintcheck", Analyzers())
	if !strings.Contains(got, "via call to (*Locker).Grab") {
		t.Errorf("expected a cycle edge established via dep.Grab, got:\n%s", got)
	}
}

func TestWireboundGolden(t *testing.T) {
	got := runTestdata(t, "wirebound", "goldms/internal/transport/lintcheck", Analyzers())
	checkGolden(t, "wirebound", got)
}

func TestWireboundCrossPackage(t *testing.T) {
	got := runTestdata(t, "wirebound", "goldms/internal/transport/lintcheck", Analyzers())
	if !strings.Contains(got, "wire-decoded result of ReadLen") {
		t.Errorf("expected taint through dep.ReadLen's result summary, got:\n%s", got)
	}
	if !strings.Contains(got, "argument 1 of Alloc") {
		t.Errorf("expected the sink-param summary of dep.Alloc to fire, got:\n%s", got)
	}
}

func TestGoroleakGolden(t *testing.T) {
	got := runTestdata(t, "goroleak", "goldms/internal/ldmsd/lintcheck", Analyzers())
	checkGolden(t, "goroleak", got)
}

func TestGoroleakCrossPackage(t *testing.T) {
	got := runTestdata(t, "goroleak", "goldms/internal/ldmsd/lintcheck", Analyzers())
	if !strings.Contains(got, "calls Forever") {
		t.Errorf("expected the leak through dep.Forever to be found, got:\n%s", got)
	}
}

func TestErrdropGolden(t *testing.T) {
	got := runTestdata(t, "errdrop", "goldms/internal/transport/lintcheck", Analyzers())
	checkGolden(t, "errdrop", got)
}

func TestAnnotationGolden(t *testing.T) {
	// Analyzed in clocksource scope: the reasonless //ldms:wallclock is
	// both an annotation diagnostic and a void suppression, so the
	// time.Now below it is still flagged.
	got := runTestdata(t, "annot", "goldms/internal/ldmsd/lintcheck", Analyzers())
	checkGolden(t, "annot", got)
}

func TestWallclockWithoutReasonIsDiagnostic(t *testing.T) {
	got := runTestdata(t, "annot", "goldms/internal/ldmsd/lintcheck", Analyzers())
	if !strings.Contains(got, "requires a reason") {
		t.Errorf("reasonless //ldms:wallclock must be reported, got:\n%s", got)
	}
	if !strings.Contains(got, "annot.go:10") || !strings.Contains(got, "[clocksource]") {
		t.Errorf("reasonless suppression must not silence clocksource, got:\n%s", got)
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		name   string
		reason string
	}{
		{"//ldms:wallclock real CPU cost", true, "wallclock", "real CPU cost"},
		{"//ldms:hotpath", true, "hotpath", ""},
		{"// ldms:wallclock spaced prefix is a plain comment", false, "", ""},
		{"// ordinary comment", false, "", ""},
	}
	for _, c := range cases {
		d, ok := parseDirective(c.text)
		if ok != c.ok || d.name != c.name || d.reason != c.reason {
			t.Errorf("parseDirective(%q) = %+v, %v; want name=%q reason=%q ok=%v",
				c.text, d, ok, c.name, c.reason, c.ok)
		}
	}
}
