package lint

import (
	"fmt"
	"sort"
	"strings"
)

// lockorderAnalyzer collects the module-wide "held while acquiring"
// graph over sync.Mutex/RWMutex lock classes in the daemon packages —
// including acquisitions that happen transitively inside calls made
// with a lock held — and reports every acquisition edge that sits on a
// cycle. A cycle means two code paths take the same pair of lock
// classes in opposite orders: the classic ABBA deadlock, needing only
// the right interleaving to freeze both. Self-edges (a lock class
// acquired while an instance of the same class is held) are reported
// too: on the same instance that is an immediate deadlock, and on
// distinct instances it is safe only under a documented instance
// order, which is exactly what the //ldms:lockorder <reason>
// annotation should state.
var lockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order across daemon mutexes must be acyclic",
	Include: []string{
		"internal/ldmsd",
		"internal/transport",
		"internal/query",
		"internal/tier",
		"internal/obs",
	},
	Suppress: "lockorder",
	Run:      runLockorder,
}

func runLockorder(p *Pass, facts *Facts) {
	rel := p.relPkg()
	for _, e := range facts.Graph.lockCycleEdges(p.Analyzer) {
		if e.edge.Pkg != rel {
			continue
		}
		p.Reportf(e.edge.Pos, "%s", e.msg)
	}
}

// cycleFinding pairs a cycle-participating edge with its rendered
// message.
type cycleFinding struct {
	edge lockEdge
	msg  string
}

// lockCycleEdges computes (once per run) the set of acquisition sites
// participating in a lock-order cycle, restricted to edges whose site
// lies in the analyzer's package scope.
func (g *Graph) lockCycleEdges(a *Analyzer) []cycleFinding {
	if g.cycleDone {
		return g.cycleFindings
	}
	g.cycleDone = true

	// Deduplicate edges by (from, to, pos): the same call site expands
	// once per held lock and once per transitively acquired lock.
	type edgeKey struct {
		from, to LockID
		pos      string
	}
	seen := make(map[edgeKey]bool)
	var edges []lockEdge
	adj := make(map[LockID][]LockID)
	adjSeen := make(map[[2]LockID]bool)
	for _, ff := range g.Funcs {
		if !a.inScope(ff.Pkg) {
			continue
		}
		for _, e := range ff.Edges {
			k := edgeKey{e.From, e.To, g.pos(e.Pos).String()}
			if seen[k] {
				continue
			}
			seen[k] = true
			edges = append(edges, e)
			ak := [2]LockID{e.From, e.To}
			if !adjSeen[ak] {
				adjSeen[ak] = true
				adj[e.From] = append(adj[e.From], e.To)
			}
		}
	}
	for from := range adj {
		tos := adj[from]
		sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
	}

	scc := stronglyConnected(adj)
	for _, e := range edges {
		inCycle := e.From == e.To || (scc[e.From] != 0 && scc[e.From] == scc[e.To])
		if !inCycle {
			continue
		}
		g.cycleFindings = append(g.cycleFindings, cycleFinding{edge: e, msg: g.renderCycle(e, adj)})
	}
	sort.Slice(g.cycleFindings, func(i, j int) bool {
		a, b := g.pos(g.cycleFindings[i].edge.Pos), g.pos(g.cycleFindings[j].edge.Pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return g.cycleFindings[i].msg < g.cycleFindings[j].msg
	})
	return g.cycleFindings
}

// renderCycle builds the diagnostic for one cycle edge, including the
// shortest path that closes the loop back to the held lock.
func (g *Graph) renderCycle(e lockEdge, adj map[LockID][]LockID) string {
	fromName, toName := g.lockName(e.From), g.lockName(e.To)
	via := ""
	if e.Via != "" {
		via = fmt.Sprintf(" (via call to %s)", e.Via)
	}
	if e.From == e.To {
		return fmt.Sprintf("%s acquired while an instance of %s is already held%s; "+
			"deadlock if both are the same instance — restructure, or annotate //ldms:lockorder <reason> stating the instance order",
			toName, fromName, via)
	}
	path := shortestLockPath(adj, e.To, e.From)
	cycle := []string{fromName, toName}
	for _, hop := range path[1:] {
		cycle = append(cycle, g.lockName(hop))
	}
	return fmt.Sprintf("%s acquired while holding %s%s, but the reverse order also exists (cycle: %s); "+
		"pick one order or annotate //ldms:lockorder <reason>",
		toName, fromName, via, strings.Join(cycle, " -> "))
}

// lockName resolves a LockID's display name.
func (g *Graph) lockName(id LockID) string {
	if m := g.Locks[id]; m != nil {
		return m.Name
	}
	return string(id)
}

// shortestLockPath returns the node sequence from src to dst over adj
// (BFS; both endpoints included). Returns nil when unreachable.
func shortestLockPath(adj map[LockID][]LockID, src, dst LockID) []LockID {
	prev := map[LockID]LockID{src: src}
	queue := []LockID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			var path []LockID
			for cur := dst; ; cur = prev[cur] {
				path = append([]LockID{cur}, path...)
				if cur == src {
					return path
				}
			}
		}
		for _, next := range adj[n] {
			if _, ok := prev[next]; !ok {
				prev[next] = n
				queue = append(queue, next)
			}
		}
	}
	return nil
}

// stronglyConnected assigns every node participating in a multi-node
// strongly connected component a non-zero component id (Tarjan,
// iterative bookkeeping kept simple with recursion — lock graphs are
// tiny).
func stronglyConnected(adj map[LockID][]LockID) map[LockID]int {
	nodes := make([]LockID, 0, len(adj))
	inGraph := make(map[LockID]bool)
	for from, tos := range adj {
		if !inGraph[from] {
			inGraph[from] = true
			nodes = append(nodes, from)
		}
		for _, to := range tos {
			if !inGraph[to] {
				inGraph[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	index := make(map[LockID]int)
	low := make(map[LockID]int)
	onStack := make(map[LockID]bool)
	comp := make(map[LockID]int)
	var stack []LockID
	next, compID := 1, 0

	var strongconnect func(v LockID)
	strongconnect = func(v LockID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []LockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	for _, v := range nodes {
		if index[v] == 0 {
			strongconnect(v)
		}
	}
	return comp
}
