package lint

import (
	"go/ast"
	"go/types"
)

// walkStack traverses a file calling fn with the ancestor stack of each
// node (stack[len-1] is n's parent). fn returning false prunes the
// subtree.
func walkStack(f *ast.File, fn func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		// Inspect only sends the matching nil when it descends, so the
		// push must be skipped when the subtree is pruned.
		if !fn(stack, n) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// pkgNameOf resolves an expression to the package it names, if it is a
// bare package qualifier (e.g. the "time" in time.Now).
func pkgNameOf(info *types.Info, x ast.Expr) (string, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// namedType unwraps pointers and aliases down to a named type, if any.
func namedType(t types.Type) (*types.Named, bool) {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// isPkgType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n, ok := namedType(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
