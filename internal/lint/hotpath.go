package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotpathAnalyzer checks functions annotated //ldms:hotpath for
// obviously-allocating constructs. These are the per-sample code paths
// (obs.Hist.Record, obs.Journal.Append, the updater pull inner loop,
// store batch formatting) whose CI bench guards demand 0 allocs/op;
// the analyzer catches regressions at review time rather than in a
// benchmark diff. A deliberate allocation carries //ldms:alloc <reason>
// on its line.
//
// Flagged: fmt.* use, non-constant string concatenation,
// string<->[]byte/[]rune conversions, map/slice/chan literals and
// non-constant-size make, new(), closures capturing local variables,
// and non-pointer struct/array values boxed into interface parameters.
// Allowed: constant-size make (escape analysis keeps it on the stack —
// the bench guards verify), struct/array composite literals, append
// into caller-owned buffers, strconv.Append*.
var hotpathAnalyzer = &Analyzer{
	Name:     "hotpath",
	Doc:      "//ldms:hotpath functions must not contain allocating constructs",
	Suppress: "alloc",
	Run:      runHotpath,
}

func runHotpath(p *Pass, _ *Facts) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcHasDirective(fn, "hotpath") {
				continue
			}
			checkHotpathBody(p, fn)
		}
	}
}

func checkHotpathBody(p *Pass, fn *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if path, ok := pkgNameOf(info, x.X); ok && path == "fmt" {
				p.Reportf(x.Pos(), "fmt.%s allocates (formatting + interface boxing); use strconv.Append* into a reused buffer", x.Sel.Name)
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info, x) && info.Types[x].Value == nil {
				p.Reportf(x.Pos(), "string concatenation allocates; append into a reused []byte buffer")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info, x.Lhs[0]) {
				p.Reportf(x.Pos(), "string += allocates; append into a reused []byte buffer")
			}
		case *ast.CompositeLit:
			switch underlyingOf(info, x).(type) {
			case *types.Map:
				p.Reportf(x.Pos(), "map literal allocates")
			case *types.Slice:
				p.Reportf(x.Pos(), "slice literal allocates")
			}
		case *ast.FuncLit:
			if captured := capturedVars(info, x); len(captured) > 0 {
				p.Reportf(x.Pos(), "closure captures %s; captured variables escape to the heap", strings.Join(captured, ", "))
			}
		case *ast.CallExpr:
			checkHotpathCall(p, x)
		}
		return true
	})
}

func checkHotpathCall(p *Pass, call *ast.CallExpr) {
	info := p.Pkg.Info
	tv := info.Types[call.Fun]
	if tv.Type == nil {
		return // unresolved under a type error; reported by typecheck
	}
	if tv.IsType() {
		checkHotpathConversion(p, call, tv.Type)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			checkHotpathBuiltin(p, call, id.Name)
			return
		}
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // f(xs...) passes an existing slice, no per-arg boxing
		}
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.Types[arg].Type
		if at == nil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Struct, *types.Array:
			p.Reportf(arg.Pos(), "passing %s by value into an interface parameter boxes it on the heap; pass a pointer", types.TypeString(at, nil))
		}
	}
}

// paramType resolves the static parameter type for argument i,
// unwrapping the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < params.Len() {
		return params.At(i).Type()
	}
	return nil
}

func checkHotpathConversion(p *Pass, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	at := p.Pkg.Info.Types[call.Args[0]].Type
	if at == nil {
		return
	}
	switch t := target.Underlying().(type) {
	case *types.Basic:
		if t.Info()&types.IsString == 0 {
			return
		}
		switch a := at.Underlying().(type) {
		case *types.Slice:
			p.Reportf(call.Pos(), "string(%s) copies the slice; keep bytes as []byte on the hot path", types.TypeString(at, nil))
		case *types.Basic:
			if a.Info()&types.IsInteger != 0 && p.Pkg.Info.Types[call.Args[0]].Value == nil {
				p.Reportf(call.Pos(), "string(integer) allocates a new string; use strconv.Append* or utf8.AppendRune")
			}
		}
	case *types.Slice:
		if e, ok := t.Elem().Underlying().(*types.Basic); ok && (e.Kind() == types.Byte || e.Kind() == types.Rune) {
			if ab, ok := at.Underlying().(*types.Basic); ok && ab.Info()&types.IsString != 0 {
				p.Reportf(call.Pos(), "[]byte/[]rune(string) copies the string; keep the data as bytes end to end")
			}
		}
	}
}

func checkHotpathBuiltin(p *Pass, call *ast.CallExpr, name string) {
	switch name {
	case "new":
		p.Reportf(call.Pos(), "new() allocates; reuse a caller-owned value")
	case "make":
		if len(call.Args) == 0 {
			return
		}
		switch underlyingOf(p.Pkg.Info, call.Args[0]).(type) {
		case *types.Map:
			p.Reportf(call.Pos(), "make(map) allocates")
		case *types.Chan:
			p.Reportf(call.Pos(), "make(chan) allocates")
		case *types.Slice:
			for _, sz := range call.Args[1:] {
				if p.Pkg.Info.Types[sz].Value == nil {
					p.Reportf(call.Pos(), "make([]T) with non-constant size allocates; constant-size makes can stay on the stack")
					return
				}
			}
		}
	}
}

// underlyingOf is a nil-safe Info.Types[e].Type.Underlying().
func underlyingOf(info *types.Info, e ast.Expr) types.Type {
	t := info.Types[e].Type
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isStringType(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedVars lists local variables a function literal closes over:
// any *types.Var used inside the literal but declared outside it (and
// not at package scope — globals are shared, not captured).
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level variable
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params, locals)
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}
