// Package lint implements ldms-lint, a project-specific static-analysis
// suite for the goldms module. It is built entirely on the standard
// library (go/ast, go/parser, go/types with the source importer) so the
// module stays dependency-free.
//
// The suite machine-checks invariants the repo otherwise enforces only
// by convention:
//
//   - clocksource: daemon/query/transport/store/obs code must use the
//     scheduler clock, never the wall clock, so virtual-clock
//     simulations stay deterministic.
//   - atomicmix: a field accessed through sync/atomic (or an
//     atomic.Int64/atomic.Pointer method) anywhere must be accessed
//     atomically everywhere.
//   - setaccess: metric.Set data-chunk state must be read through the
//     torn-read-safe ReadValues/SetValues/header API.
//   - hotpath: functions annotated //ldms:hotpath must not contain
//     obviously-allocating constructs.
//
// Findings that are deliberate are suppressed in source with
// annotation comments carrying a reason, e.g.
//
//	//ldms:wallclock plugin execution cost is real CPU time
//
// See docs/DEVELOPMENT.md for the full annotation grammar.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted as path:line:col: [analyzer] message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check. Include/Exclude are module-relative
// import-path prefixes ("" means the module root); an empty Include
// list puts every package in scope. Collect, when set, runs over every
// in-scope package before any Run call so analyzers can gather
// module-wide facts (e.g. which fields are accessed atomically).
type Analyzer struct {
	Name     string
	Doc      string
	Include  []string
	Exclude  []string
	Suppress string // annotation directive that silences a finding on its line
	Collect  func(*Pass, *Facts)
	Run      func(*Pass, *Facts)
}

// inScope reports whether a package (by module-relative path) is
// checked by this analyzer.
func (a *Analyzer) inScope(rel string) bool {
	for _, p := range a.Exclude {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return false
		}
	}
	if len(a.Include) == 0 {
		return true
	}
	for _, p := range a.Include {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// Facts carries module-wide state between the Collect and Run phases.
type Facts struct {
	// AtomicFields maps a field identity key (declaration position) to a
	// human-readable description of the first atomic access observed.
	AtomicFields map[string]string

	// Graph is the call-graph + dataflow fact layer (callgraph.go),
	// built over every loaded package before any analyzer runs.
	Graph *Graph
}

func newFacts() *Facts {
	return &Facts{AtomicFields: make(map[string]string)}
}

// Pass is the per-package unit of work handed to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Mod      string // module path from go.mod (e.g. "goldms")
	Ann      *annotations
	root     string // module root, for rel-path formatting
	fset     *token.FileSet
	diags    *[]Diagnostic
}

// relPkg returns the module-relative path of the package under
// analysis (the same form analyzer Include/Exclude lists use).
func (p *Pass) relPkg() string {
	if p.Pkg.Path == p.Mod {
		return ""
	}
	return strings.TrimPrefix(p.Pkg.Path, p.Mod+"/")
}

// Position resolves a token.Pos with the filename made relative to the
// module root so diagnostics (and golden files) are stable.
func (p *Pass) Position(pos token.Pos) token.Position {
	tp := p.fset.Position(pos)
	if rel, err := filepath.Rel(p.root, tp.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		tp.Filename = filepath.ToSlash(rel)
	}
	return tp
}

// Reportf records a finding unless the analyzer's suppression directive
// annotates the offending line (or the line directly above it).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	tp := p.Position(pos)
	if p.Analyzer.Suppress != "" && p.Ann.suppressed(p.Analyzer.Suppress, tp) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{Pos: tp, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// directive is one parsed //ldms:<name> <reason> annotation.
type directive struct {
	name   string
	reason string
}

// knownDirectives maps directive names to whether a reason string is
// required. Suppressions require a reason; markers do not.
var knownDirectives = map[string]bool{
	"wallclock": true,  // clocksource suppression
	"rawset":    true,  // setaccess suppression
	"atomicok":  true,  // atomicmix suppression
	"alloc":     true,  // hotpath per-line suppression
	"hotpath":   false, // function marker: body is checked by the hotpath analyzer
	"lockorder": true,  // lockorder suppression: states the instance/order argument
	"bounded":   true,  // wirebound suppression: why the value is safe unchecked
	"daemonize": true,  // goroleak suppression: why the goroutine may run forever
	"errok":     true,  // errdrop suppression: why the error is droppable
}

// annotations indexes every //ldms: comment in a package by file and line.
type annotations struct {
	byLine map[string]map[int][]directive
}

const directivePrefix = "//ldms:"

// parseDirective splits a comment into a directive, if it is one.
func parseDirective(text string) (directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, reason, _ := strings.Cut(rest, " ")
	return directive{name: strings.TrimSpace(name), reason: strings.TrimSpace(reason)}, true
}

// parseAnnotations scans every comment in the package, validating
// directives as it goes: unknown //ldms: names and suppressions missing
// their reason string are themselves diagnostics.
func parseAnnotations(p *Package, pos func(token.Pos) token.Position, diags *[]Diagnostic) *annotations {
	ann := &annotations{byLine: make(map[string]map[int][]directive)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				tp := pos(c.Pos())
				needReason, known := knownDirectives[d.name]
				switch {
				case !known:
					*diags = append(*diags, Diagnostic{Pos: tp, Analyzer: "annotation",
						Message: fmt.Sprintf("unknown directive %q (known: alloc, atomicok, bounded, daemonize, errok, hotpath, lockorder, rawset, wallclock)", directivePrefix+d.name)})
					continue
				case needReason && d.reason == "":
					*diags = append(*diags, Diagnostic{Pos: tp, Analyzer: "annotation",
						Message: fmt.Sprintf("%s%s requires a reason, e.g. %q", directivePrefix, d.name, directivePrefix+d.name+" <why this is safe>")})
					continue
				}
				lines := ann.byLine[tp.Filename]
				if lines == nil {
					lines = make(map[int][]directive)
					ann.byLine[tp.Filename] = lines
				}
				lines[tp.Line] = append(lines[tp.Line], d)
			}
		}
	}
	return ann
}

// suppressed reports whether the named directive annotates the given
// position: on the same line (trailing comment) or the line above
// (standalone comment).
func (a *annotations) suppressed(name string, pos token.Position) bool {
	lines := a.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.name == name {
				return true
			}
		}
	}
	return false
}

// funcHasDirective reports whether a function's doc comment carries the
// named marker directive (e.g. //ldms:hotpath).
func funcHasDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if d, ok := parseDirective(c.Text); ok && d.name == name {
			return true
		}
	}
	return false
}

// Analyzers returns the full project suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		clocksourceAnalyzer, atomicmixAnalyzer, setaccessAnalyzer, hotpathAnalyzer,
		lockorderAnalyzer, wireboundAnalyzer, goroleakAnalyzer, errdropAnalyzer,
	}
}

// Run loads every package matched by patterns (e.g. "./...") under the
// module rooted at root and applies the analyzers. Type-check failures
// surface as diagnostics so a broken tree cannot silently pass.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.load(dir, "")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return analyze(l, pkgs, analyzers), nil
}

// RunPackage loads the single package in dir, type-checking it as if it
// had the given import path. The override lets testdata packages (which
// live outside the module's package tree) exercise path-scoped
// analyzers such as clocksource.
func RunPackage(root, dir, asImportPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	pkg, err := l.load(dir, asImportPath)
	if err != nil {
		return nil, err
	}
	return analyze(l, []*Package{pkg}, analyzers), nil
}

func analyze(l *loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	facts := newFacts()
	// The fact layer covers every package the loader touched — analysis
	// targets and their in-module dependencies — so cross-package lock,
	// taint and goroutine facts are available regardless of which
	// packages were requested.
	facts.Graph = buildGraph(l, pkgs)
	passes := make(map[*Package]*annotations, len(pkgs))
	for _, pkg := range pkgs {
		pos := func(p token.Pos) token.Position {
			tp := l.fset.Position(p)
			if rel, err := filepath.Rel(l.root, tp.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				tp.Filename = filepath.ToSlash(rel)
			}
			return tp
		}
		passes[pkg] = parseAnnotations(pkg, pos, &diags)
		for _, err := range pkg.TypeErrs {
			diags = append(diags, Diagnostic{Pos: errPosition(l, err), Analyzer: "typecheck", Message: errMessage(err)})
		}
	}
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, pkg := range pkgs {
			if !a.inScope(l.relPath(pkg.Path)) {
				continue
			}
			a.Collect(&Pass{Analyzer: a, Pkg: pkg, Mod: l.modPath, Ann: passes[pkg], root: l.root, fset: l.fset, diags: &diags}, facts)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || !a.inScope(l.relPath(pkg.Path)) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Mod: l.modPath, Ann: passes[pkg], root: l.root, fset: l.fset, diags: &diags}, facts)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
