package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroleakAnalyzer demands a provable exit for every goroutine the
// daemon packages launch. A `go` statement passes when the code it
// runs — the function literal at the site, or the static callee's body
// via the call-graph fact layer, followed transitively through every
// in-module call — contains no infinite loop, or when each infinite
// loop carries a reachable way out: a select or channel receive (the
// done-channel / context pattern), a range over a channel (closed on
// shutdown), or a return/break/panic that leaves the loop. Goroutines
// that run through sched.Pool or a WaitGroup-joined worker body
// satisfy this naturally: their loops block on the pool's task/stop
// channels. A goroutine that is intentionally daemonic for the process
// lifetime carries //ldms:daemonize <reason>.
var goroleakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc:  "every goroutine launched in daemon packages must have a reachable exit",
	Include: []string{
		"internal/ldmsd",
		"internal/transport",
		"internal/query",
		"internal/tier",
		"internal/obs",
	},
	Suppress: "daemonize",
	Run:      runGoroleak,
}

func runGoroleak(p *Pass, facts *Facts) {
	g := facts.Graph
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if risky, detail := g.goStmtRisk(p.Pkg.Info, gs); risky {
				p.Reportf(gs.Pos(), "goroutine has no reachable exit: %s; receive on a stop/done channel inside the loop, bound it, or annotate //ldms:daemonize <reason>", detail)
			}
			return true
		})
	}
}

// goStmtRisk assesses one go statement.
func (g *Graph) goStmtRisk(info *types.Info, gs *ast.GoStmt) (bool, string) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return g.bodyLeakRisk(info, lit.Body, make(map[FuncID]bool))
	}
	callee := staticCallee(info, gs.Call)
	if callee == nil || !g.inModule(callee) {
		// Interface methods, func values and external callees carry no
		// body facts; stay silent rather than guess.
		return false, ""
	}
	return g.funcLeakRisk(g.FuncIDOf(callee), make(map[FuncID]bool))
}

// funcLeakRisk assesses a declared function (memo-free: visiting set
// guards recursion; bodies are only a few hops deep).
func (g *Graph) funcLeakRisk(id FuncID, visiting map[FuncID]bool) (bool, string) {
	if visiting[id] {
		return false, ""
	}
	visiting[id] = true
	defer delete(visiting, id)
	ff := g.Funcs[id]
	if ff == nil || ff.Decl == nil {
		return false, ""
	}
	if risky, detail := g.bodyLeakRisk(ff.Info, ff.Decl.Body, visiting); risky {
		return true, ff.Name + " " + detail
	}
	return false, ""
}

// bodyLeakRisk scans a body for infinite loops with no exit construct,
// following in-module calls for both the "loops forever" and the
// "blocks on a signal" halves of the question.
func (g *Graph) bodyLeakRisk(info *types.Info, body ast.Node, visiting map[FuncID]bool) (bool, string) {
	risky := false
	detail := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if risky {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // not executed by this body's control flow
		case *ast.ForStmt:
			if x.Cond == nil && !g.loopHasExit(info, x, visiting) {
				risky = true
				detail = "infinite for-loop with no select, channel receive, return or break"
				return false
			}
		case *ast.CallExpr:
			// A call that itself loops forever without an exit keeps this
			// goroutine alive just the same.
			if callee := staticCallee(info, x); callee != nil && g.inModule(callee) {
				if r, d := g.funcLeakRisk(g.FuncIDOf(callee), visiting); r {
					risky = true
					detail = "calls " + d
					return false
				}
			}
		}
		return true
	})
	return risky, detail
}

// loopHasExit reports whether an unconditional for-loop contains a way
// out or a shutdown signal: select, channel receive, channel range,
// return, panic, a break binding to this loop, or a call into a
// function that blocks on a channel (Waits fact).
func (g *Graph) loopHasExit(info *types.Info, loop *ast.ForStmt, visiting map[FuncID]bool) bool {
	has := false
	// breakDepth tracks constructs an unlabeled break would bind to
	// instead of our loop.
	var scan func(n ast.Node, breakDepth int) bool
	scan = func(n ast.Node, breakDepth int) bool {
		if has {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			has = true
		case *ast.SelectStmt:
			has = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				has = true
			}
		case *ast.RangeStmt:
			if t := info.Types[x.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					has = true
					return false
				}
			}
			walkChildren(x, func(c ast.Node) { scanNode(c, breakDepth+1, scan) })
			return false
		case *ast.ForStmt:
			walkChildren(x, func(c ast.Node) { scanNode(c, breakDepth+1, scan) })
			return false
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			walkChildren(x, func(c ast.Node) { scanNode(c, breakDepth+1, scan) })
			return false
		case *ast.BranchStmt:
			// An unlabeled break inside a nested breakable construct does
			// not leave our loop; a labeled one (or goto) is taken to.
			if x.Tok == token.BREAK && (breakDepth == 0 || x.Label != nil) {
				has = true
			}
			if x.Tok == token.GOTO {
				has = true
			}
		case *ast.CallExpr:
			if isPanicCall(info, x) {
				has = true
				break
			}
			if callee := staticCallee(info, x); callee != nil && g.inModule(callee) {
				if ff := g.Funcs[g.FuncIDOf(callee)]; ff != nil && ff.Waits {
					has = true
				}
			}
		}
		return !has
	}
	for _, stmt := range loop.Body.List {
		scanNode(stmt, 0, scan)
		if has {
			break
		}
	}
	return has
}

// scanNode runs scan over n and its children, threading breakDepth.
func scanNode(n ast.Node, breakDepth int, scan func(ast.Node, int) bool) {
	if n == nil {
		return
	}
	if !scan(n, breakDepth) {
		return
	}
	walkChildren(n, func(c ast.Node) { scanNode(c, breakDepth, scan) })
}

// walkChildren calls fn for each direct child node of n.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// isPanicCall reports a call to the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
