// Package atomicmix is lint-test input: mixed atomic/plain access
// patterns the atomicmix analyzer must flag, plus clean patterns it
// must leave alone.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64
	drops int64
	gauge atomic.Int64
}

var total int64

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&total, 1)
}

func (c *counters) mixedRead() int64 {
	return c.hits // want: plain read of an atomically-written field
}

func (c *counters) atomicRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) plainOnly() int64 {
	return c.drops // fine: never accessed atomically anywhere
}

func (c *counters) copyTyped() int64 {
	g := c.gauge // want: copying an atomic-typed field
	return g.Load()
}

func (c *counters) methodTyped() int64 {
	return c.gauge.Load() // fine: method receiver use
}

func (c *counters) addrTyped() *atomic.Int64 {
	return &c.gauge // fine: address taken, guarantee preserved
}

func mixedTotal() int64 {
	return total // want: plain read of an atomically-written package var
}

func (c *counters) sanctioned() int64 {
	return c.hits //ldms:atomicok test fixture reads after all writers have joined
}
