// Goroleak testdata: analyzed under a fake daemon-package import path
// so the goroleak analyzer is in scope. Exercises bare spinners, the
// legitimate exit constructs (select, receive, channel range, return),
// a break that binds to a switch instead of the loop, leaks through
// named callees and cross-package calls, a loop that blocks in a
// waiting helper, and suppression with and without a reason.
package goroleak

import (
	"goldms/internal/lint/testdata/goroleak/dep"
)

type worker struct {
	stop chan struct{}
	work chan int
	n    int
}

// spin launches a loop with no exit.
func (w *worker) spin() {
	go func() { // want: no reachable exit
		for {
			w.n++
		}
	}()
}

// selectLoop blocks on the stop channel each turn: clean.
func (w *worker) selectLoop() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case v := <-w.work:
				w.n += v
			}
		}
	}()
}

// recvLoop receives directly: clean.
func (w *worker) recvLoop() {
	go func() {
		for {
			v := <-w.work
			w.n += v
		}
	}()
}

// rangeLoop exits when the channel closes: clean.
func (w *worker) rangeLoop() {
	go func() {
		for v := range w.work {
			w.n += v
		}
	}()
}

// returnLoop has a reachable return: clean.
func (w *worker) returnLoop() {
	go func() {
		for {
			if w.n > 10 {
				return
			}
			w.n++
		}
	}()
}

// switchBreak only breaks the switch, never the loop.
func (w *worker) switchBreak() {
	go func() { // want: break binds to the switch
		for {
			switch {
			case w.n > 0:
				break
			}
			w.n++
		}
	}()
}

// named launches a method whose body loops forever.
func (w *worker) named() {
	go w.run() // want: leak through the named callee's body
}

func (w *worker) run() {
	for {
		w.n++
	}
}

// crossCall leaks through a helper in another package.
func (w *worker) crossCall() {
	go func() { // want: leak through dep.Forever
		dep.Forever()
	}()
}

// viaWaiter loops but blocks in a waiting helper each turn: clean,
// because waitOne's Waits fact propagates through the call graph.
func (w *worker) viaWaiter() {
	go func() {
		for {
			w.waitOne()
		}
	}()
}

func (w *worker) waitOne() {
	<-w.stop
}

// daemonic is deliberate and documented: suppressed.
func (w *worker) daemonic() {
	//ldms:daemonize heartbeat spinner runs for the process lifetime by design
	go func() {
		for {
			w.n++
		}
	}()
}

// reasonless carries a reasonless suppression: reported as an
// annotation diagnostic, and the finding below stays.
func (w *worker) reasonless() {
	//ldms:daemonize
	go func() { // want: still reported
		for {
			w.n++
		}
	}()
}
