// Package dep provides a cross-package leaker for the goroleak golden
// test: a goroutine that calls Forever leaks through the call graph.
package dep

// Forever spins with no way out.
func Forever() {
	n := 0
	for {
		n++
	}
}
