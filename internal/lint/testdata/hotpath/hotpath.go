// Package hotpath is lint-test input: allocating constructs inside
// //ldms:hotpath functions the analyzer must flag, the allocation-free
// idioms it must accept, and identical code outside hot paths it must
// ignore.
package hotpath

import (
	"fmt"
	"strconv"
)

type row struct{ a, b uint64 }

func sink(v any) { _ = v }

//ldms:hotpath
func noisy(buf []byte, r row) []byte {
	s := fmt.Sprintf("%d", r.a) // want: fmt call
	s += "!"                    // want: string +=
	t := s + s                  // want: string concatenation
	_ = t
	m := map[string]int{} // want: map literal
	_ = m
	xs := []uint64{r.a, r.b} // want: slice literal
	_ = xs
	bs := []byte(s) // want: string->[]byte copy
	_ = bs
	back := string(buf) // want: []byte->string copy
	_ = back
	f := func() uint64 { return r.a + r.b } // want: closure captures r
	_ = f()
	sink(r) // want: struct boxed into interface parameter
	dyn := make([]byte, len(buf))
	_ = dyn // want: non-constant-size make
	return buf
}

//ldms:hotpath
func clean(buf []byte, r row) []byte {
	scratch := make([]byte, 0, 32) // fine: constant cap stays on the stack
	scratch = strconv.AppendUint(scratch, r.a, 10)
	buf = append(buf, scratch...)
	sink(&r) // fine: pointer into interface, no boxing copy
	var arr [4]uint64
	arr[0] = r.b // fine: array value, no literal
	return append(buf, byte(arr[0]))
}

//ldms:hotpath
func sanctioned(r row) {
	msg := fmt.Sprintf("row %d", r.a) //ldms:alloc once-per-process failure path, off the steady state
	_ = msg
}

func cold(r row) string {
	// Identical constructs outside a hot path are not the analyzer's
	// business.
	return fmt.Sprintf("%d-%d", r.a, r.b) + "!"
}
