// Package clean is a diagnostic-free package for the CLI exit-code
// regression test: known directives with reasons parse silently, so
// ldms-lint must exit zero here.
package clean

import "sync"

var mu sync.Mutex

// Tick is annotation-grammar-clean: a reasoned suppression parses
// without producing a diagnostic.
func Tick() int {
	//ldms:errok nothing here returns an error; exercises the grammar only
	mu.Lock()
	defer mu.Unlock()
	return 1
}
