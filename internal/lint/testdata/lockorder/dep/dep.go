// Package dep provides a cross-package lock class for the lockorder
// golden test: the main testdata package acquires Locker.Mu both
// directly (the exported field) and transitively (through Grab).
package dep

import "sync"

// Locker is a lock class declared outside the analyzed package.
type Locker struct {
	Mu sync.Mutex
	n  int
}

// Grab bumps the counter under Mu.
func (l *Locker) Grab() {
	l.Mu.Lock()
	l.n++
	l.Mu.Unlock()
}
