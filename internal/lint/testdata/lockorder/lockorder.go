// Lockorder testdata: analyzed under a fake daemon-package import path
// so the lockorder analyzer is in scope. Exercises an ABBA cycle, a
// self-edge on one lock class, a cross-package cycle leg established
// through a callee's transitive acquires, and suppression with and
// without a reason.
package lockorder

import (
	"sync"

	"goldms/internal/lint/testdata/lockorder/dep"
)

type server struct {
	mu sync.Mutex
	n  int
}

type conn struct {
	mu sync.Mutex
	n  int
}

// ab acquires server.mu then conn.mu.
func ab(s *server, c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.mu.Lock() // want: cycle with ba
	c.n++
	c.mu.Unlock()
}

// ba acquires the same pair in the reverse order.
func ba(s *server, c *conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.mu.Lock() // want: cycle with ab
	s.n++
	s.mu.Unlock()
}

// crossHold holds server.mu while calling into dep, which acquires
// dep.Locker.Mu: the edge comes from the callee's transitive facts.
func crossHold(s *server, l *dep.Locker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l.Grab() // want: edge server.mu -> Locker.Mu via the call
}

// crossBack holds dep.Locker.Mu while acquiring server.mu, closing the
// cross-package cycle.
func crossBack(s *server, l *dep.Locker) {
	l.Mu.Lock()
	defer l.Mu.Unlock()
	s.mu.Lock() // want: reverse leg of the cross-package cycle
	s.n++
	s.mu.Unlock()
}

// iterate holds one conn's lock while taking another's: a self-edge on
// the conn.mu lock class.
func iterate(a, b *conn) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want: self-edge on conn.mu
	b.n++
	b.mu.Unlock()
}

// suppressedPair documents the instance order, silencing the self-edge.
func suppressedPair(a, b *conn) {
	a.mu.Lock()
	defer a.mu.Unlock()
	//ldms:lockorder b is always a's child; children lock after parents
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// reasonlessPair carries a reasonless suppression: the annotation is
// itself a diagnostic and does not silence the finding.
func reasonlessPair(a, b *conn) {
	a.mu.Lock()
	defer a.mu.Unlock()
	//ldms:lockorder
	b.mu.Lock() // want: still reported
	b.n++
	b.mu.Unlock()
}

// fine takes a single lock: no edges, no findings.
func fine(s *server) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
