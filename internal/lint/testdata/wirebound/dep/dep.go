// Package dep provides cross-package taint endpoints for the wirebound
// golden test: ReadLen is a source (its result derives from a wire
// decode) and Alloc is a sink (its parameter reaches a make size).
package dep

import "encoding/binary"

// ReadLen decodes a u16 length from the head of a frame.
func ReadLen(b []byte) int {
	return int(binary.LittleEndian.Uint16(b))
}

// Alloc returns a fresh buffer of n bytes.
func Alloc(n int) []byte {
	return make([]byte, n)
}
