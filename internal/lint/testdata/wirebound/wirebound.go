// Wirebound testdata: analyzed under a fake transport import path so
// the wirebound analyzer is in scope. Exercises direct decode-to-make
// flows, byte-read counts, slice and index sinks, sanitization by
// comparison, cross-package sources and sinks, and suppression with
// and without a reason.
package wirebound

import (
	"encoding/binary"

	"goldms/internal/lint/testdata/wirebound/dep"
)

const maxChunk = 1 << 16

// decodeUnchecked sizes a buffer straight off the wire.
func decodeUnchecked(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	return make([]byte, n) // want: unchecked make size
}

// decodeChecked compares the length first: clean.
func decodeChecked(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	if n > maxChunk {
		return nil
	}
	return make([]byte, n)
}

// byteCount slices by a count byte without checking it.
func byteCount(b []byte) []byte {
	c := int(b[0])
	return b[1 : 1+c] // want: unchecked slice bound
}

// offsetIndex indexes by an unchecked decoded offset.
func offsetIndex(b []byte) byte {
	off := binary.LittleEndian.Uint16(b)
	return b[off] // want: unchecked index
}

// crossSource shows a helper-decoded value is still wire data.
func crossSource(b []byte) []byte {
	n := dep.ReadLen(b)
	return make([]byte, n) // want: tainted via dep.ReadLen's summary
}

// crossSink passes unchecked wire data into a sizing helper.
func crossSink(b []byte) []byte {
	n := binary.LittleEndian.Uint16(b)
	return dep.Alloc(int(n)) // want: reaches make size inside dep.Alloc
}

// suppressed documents why the unchecked size is safe.
func suppressed(b []byte) []byte {
	n := binary.LittleEndian.Uint16(b)
	//ldms:bounded a u16 length cannot exceed the 64 KiB the pool pre-sizes
	return make([]byte, n)
}

// reasonless carries a reasonless suppression: reported as an
// annotation diagnostic, and the finding below stays.
func reasonless(b []byte) []byte {
	n := binary.LittleEndian.Uint16(b)
	//ldms:bounded
	return make([]byte, n) // want: still reported
}
