// Package dirty always produces diagnostics, for the CLI exit-code
// regression test: an unknown directive and a reasonless suppression
// are findings in any package, regardless of analyzer scope.
package dirty

// Bad carries an unknown directive and a reasonless suppression.
func Bad() int {
	//ldms:nosuchcheck
	//ldms:errok
	return 1
}
