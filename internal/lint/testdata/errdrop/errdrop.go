// Errdrop testdata: analyzed under a fake transport import path, so
// the package's own functions count as transport callees whose errors
// must not be dropped. Exercises the statement, blank-assign, tuple
// and defer drop shapes, the handled/bound clean shapes, and
// suppression with and without a reason.
package errdrop

import "errors"

type conn struct{ closed bool }

// Close tears the connection down.
func (c *conn) Close() error {
	if c.closed {
		return errors.New("already closed")
	}
	c.closed = true
	return nil
}

// push sends a frame and reports how much was written.
func push(c *conn, b []byte) (int, error) {
	if c.closed {
		return 0, errors.New("closed")
	}
	return len(b), nil
}

// statement drops the error on the floor.
func statement(c *conn) {
	c.Close() // want: discarded error
}

// blank discards it explicitly.
func blank(c *conn) {
	_ = c.Close() // want: discarded error
}

// tupleBlank drops the error slot of a multi-result call.
func tupleBlank(c *conn, b []byte) int {
	n, _ := push(c, b) // want: discarded error slot
	return n
}

// deferred drops it on the way out.
func deferred(c *conn) {
	defer c.Close() // want: discarded error
}

// handled binds and checks: clean.
func handled(c *conn) error {
	if err := c.Close(); err != nil {
		return err
	}
	return nil
}

// bound keeps both results: clean.
func bound(c *conn, b []byte) (int, error) {
	n, err := push(c, b)
	return n, err
}

// suppressed documents the drop.
func suppressed(c *conn) {
	//ldms:errok closing a conn already torn down by the peer cannot fail
	c.Close()
}

// reasonless carries a reasonless suppression: reported as an
// annotation diagnostic, and the finding below stays.
func reasonless(c *conn) {
	//ldms:errok
	c.Close() // want: still reported
}
