// Package clocksource is lint-test input: wall-clock uses that the
// clocksource analyzer must flag, suppress, or ignore. The test harness
// type-checks it under a fake in-scope import path.
package clocksource

import "time"

var tickets int

func bare() time.Time {
	return time.Now() // want: bare wall-clock read
}

func sleepy() {
	time.Sleep(time.Second) // want: wall-clock dependent
	<-time.After(time.Second)
	t := time.NewTicker(time.Second)
	t.Stop()
}

func smuggled() func() time.Time {
	now := time.Now // want: storing the func is still a wall-clock dependency
	return now
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want: Since reads the wall clock
}

func annotated() time.Time {
	//ldms:wallclock test fixture measures real CPU cost
	return time.Now()
}

func annotatedTrailing() time.Time {
	return time.Now() //ldms:wallclock trailing-comment suppression
}

func allowed() time.Time {
	// Constructors and arithmetic never read the clock.
	base := time.Unix(90000, 0)
	d, _ := time.ParseDuration("1s")
	return base.Add(d * time.Duration(tickets))
}
