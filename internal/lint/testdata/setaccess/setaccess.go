// Package setaccess is lint-test input: raw metric.Set accessor uses
// the setaccess analyzer must flag, against the torn-read-safe patterns
// it must accept.
package setaccess

import "goldms/internal/metric"

func tornRead(s *metric.Set) uint64 {
	return s.U64(0) // want: per-metric read can interleave with SetValues
}

func tornLoop(s *metric.Set) (out []metric.Value) {
	for i := 0; i < s.Card(); i++ {
		out = append(out, s.Value(i)) // want: multi-metric raw read
	}
	return out
}

func rawWrite(s *metric.Set, v uint64) {
	s.SetU64(0, v) // want: write outside a SetValues transaction
}

func safeRead(s *metric.Set) ([]metric.Value, bool) {
	vals := make([]metric.Value, s.Card())
	_, _, consistent, _ := s.ReadValues(vals)
	return vals, consistent
}

func safeWrite(s *metric.Set, v uint64) {
	s.SetValues(func(b *metric.Batch) {
		b.SetU64(0, v) // fine: Batch method inside the transaction lock
	})
}

func headerOnly(s *metric.Set) (uint64, bool) {
	return s.DGN(), s.Consistent() // fine: header accessors are atomic
}

func valueCopy(v metric.Value) uint64 {
	return v.U64() // fine: metric.Value is a plain snapshot struct
}

func sanctioned(s *metric.Set) uint64 {
	return s.U64(0) //ldms:rawset test fixture owns the set; no concurrent writer
}
