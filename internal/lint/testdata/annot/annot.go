// Package annot is lint-test input for the annotation grammar itself:
// suppressions without a reason are diagnostics and do not suppress,
// and unknown directives are diagnostics.
package annot

import "time"

func missingReason() time.Time {
	//ldms:wallclock
	return time.Now() // still flagged: a reasonless suppression is void
}

func unknownDirective() {
	//ldms:frobnicate the analyzer has never heard of this
}

func wellFormed() time.Time {
	//ldms:wallclock reasons make the audit trail greppable
	return time.Now()
}
