package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdropAnalyzer forbids silently discarding errors returned by the
// subsystems whose failures the daemon must surface: the store layer
// (a dropped store error is lost telemetry), the transport layer (a
// dropped transport error hides a dead peer from the
// reconnect/standby machinery), and the obs journal (the audit trail
// itself). In the daemon packages, a call into internal/store,
// internal/transport (or their subpackages) or an obs.Journal method
// whose error result is thrown away — an expression statement, an `_`
// assignment slot, or a bare defer/go — is a finding. Handling means
// binding the error to a variable (go vet keeps it honest from
// there), returning it, or passing it on; a deliberate drop carries
// //ldms:errok <reason>.
var errdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "errors from store/transport/journal calls must be handled or annotated",
	Include: []string{
		"internal/ldmsd",
		"internal/transport",
		"internal/query",
		"internal/tier",
		"internal/obs",
	},
	Suppress: "errok",
	Run:      runErrdrop,
}

// errdropCalleePkgs are the module-relative package prefixes whose
// returned errors must not be dropped.
var errdropCalleePkgs = []string{
	"internal/store",
	"internal/transport",
}

func runErrdrop(p *Pass, _ *Facts) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					p.checkErrDrop(call, -1, nil)
				}
				return false
			case *ast.DeferStmt:
				p.checkErrDrop(x.Call, -1, nil)
				return false
			case *ast.GoStmt:
				p.checkErrDrop(x.Call, -1, nil)
				// The call's arguments may contain further calls.
				return true
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					if len(x.Lhs) > len(x.Rhs) {
						// Tuple assignment: one call, one lhs per result.
						p.checkErrDrop(call, -2, x.Lhs)
					} else if i < len(x.Lhs) {
						p.checkErrDrop(call, -2, []ast.Expr{x.Lhs[i]})
					}
				}
			}
			return true
		})
	}
}

// checkErrDrop reports call when it returns an error that the
// statement context discards. lhs is the assignment target list (nil
// for statement/defer/go contexts, where every result is discarded).
func (p *Pass) checkErrDrop(call *ast.CallExpr, _ int, lhs []ast.Expr) {
	fn := staticCallee(p.Pkg.Info, call)
	if fn == nil || !p.errdropCallee(fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	errIdx := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return
	}
	if lhs != nil {
		// Single-value context: lhs has one entry for the whole call.
		if sig.Results().Len() == 1 {
			if !isBlank(lhs[0]) {
				return
			}
		} else {
			if errIdx >= len(lhs) || !isBlank(lhs[errIdx]) {
				return
			}
		}
	}
	p.Reportf(call.Pos(), "error from %s discarded; handle or journal it, or annotate //ldms:errok <reason>", shortFuncName(fn))
}

// errdropCallee reports whether a callee's errors are load-bearing:
// store/transport package functions and obs.Journal methods.
func (p *Pass) errdropCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	rel, ok := strings.CutPrefix(pkg.Path(), p.Mod+"/")
	if !ok {
		return false
	}
	for _, prefix := range errdropCalleePkgs {
		if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
			return true
		}
	}
	if rel == "internal/obs" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if isPkgType(sig.Recv().Type(), p.Mod+"/internal/obs", "Journal") {
				return true
			}
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isBlank reports whether an assignment target is the blank
// identifier.
func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
