package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	Path     string // import path (possibly an override for testdata)
	Dir      string
	Name     string
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	TypeErrs []error
}

// loader parses and type-checks packages of one module with a shared
// FileSet, a package cache, and a shared source importer for the
// standard library. The loader is itself the types.Importer for
// module-internal paths, so every goldms/* package is parsed and
// type-checked exactly once per process no matter how many analyzers
// run or how many other packages import it — the analyzed *Package and
// the *types.Package seen by importers are the same object, which also
// gives cross-package fact passes stable types.Object identity.
type loader struct {
	root    string // absolute module root (directory holding go.mod)
	modPath string
	fset    *token.FileSet
	base    types.Importer      // stdlib (and any non-module) imports
	pkgs    map[string]*Package // cache by import path
	loading map[string]bool     // import-cycle guard
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		root:    abs,
		modPath: modPath,
		fset:    fset,
		base:    importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Import resolves an import path during type-checking. Module-internal
// paths go through the loader's own cache (one type-check per package);
// everything else falls through to the source importer, which keeps its
// own cache.
func (l *loader) Import(path string) (*types.Package, error) {
	if path != l.modPath && !strings.HasPrefix(path, l.modPath+"/") {
		return l.base.Import(path)
	}
	dir := filepath.Join(l.root, filepath.FromSlash(l.relPath(path)))
	pkg, err := l.load(dir, path)
	if err != nil {
		return nil, err
	}
	if pkg.Types == nil {
		return nil, fmt.Errorf("lint: no type information for %s", path)
	}
	return pkg.Types, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: cannot find module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if p, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(p), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// relPath converts an import path to a module-relative path ("" for the
// module root package). Paths outside the module are returned as-is.
func (l *loader) relPath(importPath string) string {
	if importPath == l.modPath {
		return ""
	}
	if p, ok := strings.CutPrefix(importPath, l.modPath+"/"); ok {
		return p
	}
	return importPath
}

// expand resolves command-line patterns to package directories.
// "./..."-style patterns walk the tree; plain arguments name a single
// directory. testdata, hidden, and underscore-prefixed directories are
// skipped, matching the go tool's convention.
func (l *loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if p, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = p, true
		} else if pat == "..." {
			base, recursive = ".", true
		}
		if base == "" {
			base = "."
		}
		absBase := base
		if !filepath.IsAbs(absBase) {
			absBase = filepath.Join(l.root, base)
		}
		if !recursive {
			if hasGoFiles(absBase) {
				add(absBase)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", absBase)
			}
			continue
		}
		err := filepath.WalkDir(absBase, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != absBase && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

// goFileNames lists the non-test buildable Go files of dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// load parses and type-checks the package in dir, returning the cached
// result when the package was already loaded (as an analysis target or
// as a dependency of one). A non-empty importPath overrides the path
// derived from the directory's location under the module root. Type
// errors are collected, not fatal: the runner reports them as
// diagnostics.
func (l *loader) load(dir, importPath string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.root, dir)
	}
	if importPath == "" {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		if rel == "." {
			importPath = l.modPath
		} else {
			importPath = l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Name:  files[0].Name.Name,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
	}
	// Check returns an error exactly when TypeErrs is non-empty; the
	// partial result is still usable for reporting.
	pkg.Types, _ = conf.Check(importPath, l.fset, files, pkg.Info)
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// errPosition extracts a position from a type-check error.
func errPosition(l *loader, err error) token.Position {
	if te, ok := err.(types.Error); ok {
		tp := te.Fset.Position(te.Pos)
		if rel, rerr := filepath.Rel(l.root, tp.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			tp.Filename = filepath.ToSlash(rel)
		}
		return tp
	}
	return token.Position{}
}

// errMessage extracts the bare message from a type-check error.
func errMessage(err error) string {
	if te, ok := err.(types.Error); ok {
		return te.Msg
	}
	return err.Error()
}
