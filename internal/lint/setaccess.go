package lint

import (
	"go/ast"
	"go/types"
)

// metricPkgRel is the module-relative path of the metric package that
// owns the torn-read-safe API.
const metricPkgRel = "internal/metric"

// rawSetAccessors are the per-metric tearable accessors on metric.Set.
// Reading metrics one at a time can interleave with a sampler's
// SetValues transaction and observe a torn row; writing outside
// SetValues skips the DGN/consistent-flag protocol (paper §III-A).
// Multi-metric state must go through ReadValues (single lock, checks
// the consistent flag) or SetValues (batched transaction).
var rawSetAccessors = map[string]bool{
	"Value":    true,
	"U64":      true,
	"S64":      true,
	"F64":      true,
	"SetValue": true,
	"SetU64":   true,
	"SetS64":   true,
	"SetF64":   true,
}

// setaccessAnalyzer flags raw metric.Set data-chunk access outside
// internal/metric itself. metric.Value and metric.Batch expose methods
// with the same names; only *metric.Set receivers are restricted.
var setaccessAnalyzer = &Analyzer{
	Name:     "setaccess",
	Doc:      "metric.Set data must be read via ReadValues/SetValues/header accessors",
	Exclude:  []string{metricPkgRel},
	Suppress: "rawset",
	Run:      runSetaccess,
}

func runSetaccess(p *Pass, _ *Facts) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !rawSetAccessors[sel.Sel.Name] {
				return true
			}
			s := p.Pkg.Info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			if isPkgType(s.Recv(), p.Mod+"/"+metricPkgRel, "Set") {
				p.Reportf(sel.Pos(), "raw Set.%s access tears against concurrent SetValues; use ReadValues/SetValues (or annotate //ldms:rawset <reason>)", sel.Sel.Name)
			}
			return true
		})
	}
}
