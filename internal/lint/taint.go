package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Wire-taint dataflow. An integer decoded from a frame — a
// binary.LittleEndian.Uint16/32/64 call, a byte read out of a []byte
// buffer, or the result of an in-module helper that returns such a
// value — is attacker-controlled until it has been compared against
// something. Tainted values flowing into a make size, a slice bound or
// index, an io read/limit size, or a parameter of an in-module
// function that itself forwards the parameter into such a sink are
// wirebound findings.
//
// Sanitization is any comparison mentioning the value (relational or
// equality, including switch tags): the analyzer cannot see which
// branch survives, so "was compared at all" is the enforced invariant
// — the same one the ISSUE states and the hand-written decoders
// follow. The walk is linear in source order: a sink before the check
// still fires.

// taintKind distinguishes the two origins the walker tracks.
type taintKind int

const (
	taintWire  taintKind = iota // decoded from an untrusted frame
	taintParam                  // value of a function parameter (summary mode)
)

// taintVal describes one tracked value.
type taintVal struct {
	kind  taintKind
	param int    // parameter index, for taintParam
	desc  string // human description of the source, for findings
}

// taintWalker runs the per-function dataflow. The same walker serves
// two modes: summary building (params seeded as taintParam, results
// and param-sinks recorded on the Graph) and finding reporting
// (onWireSink receives every unsanitized wire-tainted sink).
type taintWalker struct {
	g       *Graph
	info    *types.Info
	tainted map[types.Object]taintVal

	onWireSink  func(pos token.Pos, val taintVal, sink string)
	onParamSink func(param int, sink string)
	onResult    func(i int)

	namedResults []types.Object // named result vars, for bare returns
}

// ioSizeParams maps stdlib io functions to the index of their
// caller-controlled size argument.
var ioSizeParams = map[string]int{
	"io.CopyN":       2,
	"io.LimitReader": 1,
}

// walkTaint analyzes one function body. params maps parameter objects
// to their indices; nil disables parameter seeding (finding mode).
func (g *Graph) walkTaint(info *types.Info, fn *ast.FuncDecl, params map[types.Object]int,
	onWireSink func(token.Pos, taintVal, string), onParamSink func(int, string), onResult func(int)) {
	w := &taintWalker{
		g:           g,
		info:        info,
		tainted:     make(map[types.Object]taintVal),
		onWireSink:  onWireSink,
		onParamSink: onParamSink,
		onResult:    onResult,
	}
	for obj, i := range params {
		if isIntegerType(obj.Type()) {
			w.tainted[obj] = taintVal{kind: taintParam, param: i, desc: "parameter " + obj.Name()}
		}
	}
	if fn.Type.Results != nil {
		for _, fld := range fn.Type.Results.List {
			for _, name := range fld.Names {
				if obj := info.Defs[name]; obj != nil {
					w.namedResults = append(w.namedResults, obj)
				}
			}
		}
	}
	ast.Inspect(fn.Body, w.visit)
}

func (w *taintWalker) visit(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.AssignStmt:
		w.assign(x)
	case *ast.GenDecl:
		for _, spec := range x.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					w.setVar(w.info.Defs[name], vs.Values[i])
				}
			}
		}
	case *ast.BinaryExpr:
		if isComparison(x.Op) {
			w.sanitizeExpr(x.X)
			w.sanitizeExpr(x.Y)
		}
	case *ast.SwitchStmt:
		if x.Tag != nil {
			w.sanitizeExpr(x.Tag)
		}
	case *ast.CallExpr:
		w.checkCallSinks(x)
	case *ast.SliceExpr:
		for _, bound := range []ast.Expr{x.Low, x.High, x.Max} {
			if bound == nil {
				continue
			}
			if val, ok := w.exprTaint(bound); ok {
				w.sink(bound.Pos(), val, "slice bound")
			}
		}
	case *ast.IndexExpr:
		if t := w.info.Types[x.X].Type; t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
				if val, ok := w.exprTaint(x.Index); ok {
					w.sink(x.Index.Pos(), val, "index")
				}
			}
		}
	case *ast.ReturnStmt:
		if w.onResult == nil {
			break
		}
		if len(x.Results) == 0 {
			for i, obj := range w.namedResults {
				if val, ok := w.tainted[obj]; ok && val.kind == taintWire {
					w.onResult(i)
				}
			}
			break
		}
		for i, res := range x.Results {
			if val, ok := w.exprTaint(res); ok && val.kind == taintWire {
				w.onResult(i)
			}
		}
	}
	return true
}

// assign updates variable taint for one assignment statement.
func (w *taintWalker) assign(x *ast.AssignStmt) {
	if len(x.Lhs) > 1 && len(x.Rhs) == 1 {
		// Tuple assignment from a call: use the callee's per-result
		// taint summary.
		call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		results := w.calleeTaintedResults(call)
		for i, lhs := range x.Lhs {
			obj := w.lhsObj(lhs)
			if obj == nil {
				continue
			}
			if i < len(results) && results[i] {
				w.tainted[obj] = taintVal{kind: taintWire, desc: "wire-decoded result of " + callDisplay(w.info, call)}
			} else {
				delete(w.tainted, obj)
			}
		}
		return
	}
	for i, lhs := range x.Lhs {
		if i >= len(x.Rhs) {
			break
		}
		obj := w.lhsObj(lhs)
		if obj == nil {
			continue
		}
		if x.Tok == token.ASSIGN || x.Tok == token.DEFINE {
			w.setVarObj(obj, x.Rhs[i])
		} else {
			// Op-assign (+=, |=, <<=, ...): the target stays tainted if it
			// was, and becomes tainted if the operand is.
			if val, ok := w.exprTaint(x.Rhs[i]); ok {
				if _, already := w.tainted[obj]; !already {
					w.tainted[obj] = val
				}
			}
		}
	}
}

func (w *taintWalker) setVar(obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	w.setVarObj(obj, rhs)
}

func (w *taintWalker) setVarObj(obj types.Object, rhs ast.Expr) {
	if val, ok := w.exprTaint(rhs); ok {
		w.tainted[obj] = val
	} else {
		delete(w.tainted, obj)
	}
}

// lhsObj resolves an assignment target to a trackable object (plain
// variables only; stores through fields or elements are not tracked).
func (w *taintWalker) lhsObj(lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := w.info.Defs[id]; obj != nil {
		return obj
	}
	return w.info.Uses[id]
}

// sanitizeExpr clears taint from every tracked variable mentioned in a
// comparison operand.
func (w *taintWalker) sanitizeExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.info.Uses[id]; obj != nil {
				delete(w.tainted, obj)
			}
		}
		return true
	})
}

// sink dispatches one tainted-value-reaches-sink event by origin.
func (w *taintWalker) sink(pos token.Pos, val taintVal, sinkDesc string) {
	switch val.kind {
	case taintWire:
		if w.onWireSink != nil {
			w.onWireSink(pos, val, sinkDesc)
		}
	case taintParam:
		if w.onParamSink != nil {
			w.onParamSink(val.param, sinkDesc)
		}
	}
}

// checkCallSinks flags tainted arguments in size positions: make,
// io.CopyN/LimitReader, and in-module functions whose summary marks
// the parameter as sink-reaching.
func (w *taintWalker) checkCallSinks(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
			if b.Name() == "make" {
				for _, sz := range call.Args[1:] {
					if val, ok := w.exprTaint(sz); ok {
						w.sink(sz.Pos(), val, "make size")
					}
				}
			}
			return
		}
	}
	if fn := staticCallee(w.info, call); fn != nil {
		full := ""
		if fn.Pkg() != nil {
			full = fn.Pkg().Path() + "." + fn.Name()
		}
		if idx, ok := ioSizeParams[full]; ok && idx < len(call.Args) {
			if val, ok := w.exprTaint(call.Args[idx]); ok {
				w.sink(call.Args[idx].Pos(), val, full+" size")
			}
		}
		if w.g.inModule(fn) {
			if ff := w.g.Funcs[w.g.FuncIDOf(fn)]; ff != nil {
				for idx, sp := range ff.SinkParams {
					if idx < len(call.Args) {
						if val, ok := w.exprTaint(call.Args[idx]); ok {
							w.sink(call.Args[idx].Pos(), val,
								fmt.Sprintf("argument %d of %s (reaches %s)", idx+1, ff.Name, sp.Sink))
						}
					}
				}
			}
		}
	}
}

// calleeTaintedResults returns the per-result taint of a call, from
// the in-module callee's summary.
func (w *taintWalker) calleeTaintedResults(call *ast.CallExpr) []bool {
	fn := staticCallee(w.info, call)
	if fn == nil || !w.g.inModule(fn) {
		return nil
	}
	if ff := w.g.Funcs[w.g.FuncIDOf(fn)]; ff != nil {
		return ff.TaintedResults
	}
	return nil
}

// exprTaint computes the taint of an expression bottom-up.
func (w *taintWalker) exprTaint(e ast.Expr) (taintVal, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := w.info.Uses[x]; obj != nil {
			val, ok := w.tainted[obj]
			return val, ok
		}
	case *ast.ParenExpr:
		return w.exprTaint(x.X)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.XOR:
			return w.exprTaint(x.X)
		}
	case *ast.BinaryExpr:
		if isComparison(x.Op) || x.Op == token.LAND || x.Op == token.LOR {
			return taintVal{}, false
		}
		if val, ok := w.exprTaint(x.X); ok {
			return val, true
		}
		return w.exprTaint(x.Y)
	case *ast.IndexExpr:
		// A byte read out of an untrusted buffer is itself wire data:
		// single-byte counts and role/kind octets come from the frame.
		if w.isByteBufferRead(x) {
			return taintVal{kind: taintWire, desc: "byte read from a wire buffer"}, true
		}
	case *ast.CallExpr:
		return w.callTaint(x)
	}
	return taintVal{}, false
}

// callTaint computes the taint of a call or conversion result.
func (w *taintWalker) callTaint(call *ast.CallExpr) (taintVal, bool) {
	tv := w.info.Types[call.Fun]
	if tv.IsType() && len(call.Args) == 1 {
		// Conversion: int(x) keeps x's taint.
		return w.exprTaint(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
			// min() bounds its result; len/cap are trusted sizes. Every
			// other builtin result is clean for our purposes — max() is
			// not, but also never bounds an allocation downward.
			switch b.Name() {
			case "max":
				for _, arg := range call.Args {
					if val, ok := w.exprTaint(arg); ok {
						return val, true
					}
				}
			}
			return taintVal{}, false
		}
	}
	if isWireDecode(w.info, call) {
		return taintVal{kind: taintWire, desc: "integer decoded from the wire by " + callDisplay(w.info, call)}, true
	}
	if results := w.calleeTaintedResultsFor(call); len(results) == 1 && results[0] {
		return taintVal{kind: taintWire, desc: "wire-decoded result of " + callDisplay(w.info, call)}, true
	}
	return taintVal{}, false
}

// calleeTaintedResultsFor is calleeTaintedResults restricted to
// single-result callees (multi-result calls are handled in assign).
func (w *taintWalker) calleeTaintedResultsFor(call *ast.CallExpr) []bool {
	fn := staticCallee(w.info, call)
	if fn == nil || !w.g.inModule(fn) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return nil
	}
	if ff := w.g.Funcs[w.g.FuncIDOf(fn)]; ff != nil {
		return ff.TaintedResults
	}
	return nil
}

// isByteBufferRead reports whether an index expression reads a byte
// out of a []byte or [N]byte value.
func (w *taintWalker) isByteBufferRead(x *ast.IndexExpr) bool {
	t := w.info.Types[x.X].Type
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	case *types.Pointer:
		if a, ok := u.Elem().Underlying().(*types.Array); ok {
			elem = a.Elem()
		}
	}
	if elem == nil {
		return false
	}
	b, ok := elem.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// isWireDecode recognizes the multi-byte endian decode entry points.
func isWireDecode(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return false
	}
	switch fn.Name() {
	case "Uint16", "Uint32", "Uint64":
		return true
	}
	return false
}

// callDisplay renders a call target for diagnostics.
func callDisplay(info *types.Info, call *ast.CallExpr) string {
	if fn := staticCallee(info, call); fn != nil {
		return shortFuncName(fn)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return "call"
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// propagateTaint iterates the per-function taint summaries to a
// fixpoint: a helper that forwards a parameter into a sink makes its
// callers' arguments sinks, and a helper returning decoded bytes makes
// its call sites sources.
func (g *Graph) propagateTaint(ids []FuncID) {
	for round := 0; round < 10; round++ {
		changed := false
		for _, id := range ids {
			ff := g.Funcs[id]
			if ff.Decl == nil {
				continue
			}
			params := paramObjects(ff.Info, ff.Decl)
			nResults := numResults(ff.Decl)
			if ff.TaintedResults == nil {
				ff.TaintedResults = make([]bool, nResults)
			}
			g.walkTaint(ff.Info, ff.Decl, params,
				nil,
				func(param int, sinkDesc string) {
					if _, ok := ff.SinkParams[param]; !ok {
						ff.SinkParams[param] = sinkParam{Sink: sinkDesc}
						changed = true
					}
				},
				func(i int) {
					if i < len(ff.TaintedResults) && !ff.TaintedResults[i] {
						ff.TaintedResults[i] = true
						changed = true
					}
				})
		}
		if !changed {
			return
		}
	}
}

// paramObjects maps a function's parameter objects to their indices.
func paramObjects(info *types.Info, fn *ast.FuncDecl) map[types.Object]int {
	params := make(map[types.Object]int)
	i := 0
	for _, fld := range fn.Type.Params.List {
		if len(fld.Names) == 0 {
			i++
			continue
		}
		for _, name := range fld.Names {
			if obj := info.Defs[name]; obj != nil {
				params[obj] = i
			}
			i++
		}
	}
	return params
}

// numResults counts a function's results.
func numResults(fn *ast.FuncDecl) int {
	if fn.Type.Results == nil {
		return 0
	}
	n := 0
	for _, fld := range fn.Type.Results.List {
		if len(fld.Names) == 0 {
			n++
		} else {
			n += len(fld.Names)
		}
	}
	return n
}

// sortedSinkParams renders a summary's sink params deterministically
// (used by tests and debugging).
func sortedSinkParams(ff *funcFacts) []int {
	idxs := make([]int, 0, len(ff.SinkParams))
	for i := range ff.SinkParams {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs
}
