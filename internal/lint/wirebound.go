package lint

import (
	"go/ast"
	"go/token"
)

// wireboundAnalyzer enforces the hostile-input invariant on the wire
// decoders: every length, count or offset decoded from a frame — in
// internal/transport and in internal/obs's TRC1 trace codec — is
// attacker-controlled until it has been compared against a bound.
// Letting such a value reach a make size, a slice bound or index, or
// an io read/limit size hands a remote peer an allocation amount or a
// panic. PRs 8 and 9 hand-hardened these paths (frame length caps,
// chunked payload reads, per-field bound checks in the trace decoder);
// this analyzer turns that discipline into a machine-checked
// invariant. The dataflow (see taint.go) follows values through
// assignments, arithmetic, conversions, and in-module helper calls via
// the call-graph fact layer; a comparison mentioning the value clears
// it. Deliberate unbounded uses carry //ldms:bounded <reason>.
var wireboundAnalyzer = &Analyzer{
	Name: "wirebound",
	Doc:  "wire-decoded lengths must be bounds-checked before sizing allocations or slices",
	Include: []string{
		"internal/transport",
		"internal/obs",
	},
	Suppress: "bounded",
	Run:      runWirebound,
}

func runWirebound(p *Pass, facts *Facts) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			facts.Graph.walkTaint(p.Pkg.Info, fn, nil,
				func(pos token.Pos, val taintVal, sink string) {
					p.Reportf(pos, "%s flows into %s without a bound check; compare it against a limit first or annotate //ldms:bounded <reason>",
						val.desc, sink)
				}, nil, nil)
		}
	}
}
