package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// The call-graph fact layer gives analyzers a module-wide view that a
// single package walk cannot: which locks a function acquires
// (directly or through anything it calls), which calls happen while a
// lock is held, whether a function ever blocks on a channel signal,
// and how wire-decoded integers flow between functions. It is built
// once per lint run over every loaded package — analysis targets and
// their in-module dependencies alike — and the lockorder, wirebound
// and goroleak analyzers consume it.
//
// Identity is positional: functions and locks are keyed by the
// module-relative file:line of their declaration. Positions survive a
// package being type-checked under an override import path (the
// testdata harness) and are stable across runs, which object pointers
// are not guaranteed to be.

// FuncID identifies a function by the module-relative position of its
// declaration, e.g. "internal/ldmsd/updater.go:210".
type FuncID string

// LockID identifies a mutex by the declaration position of its field
// or variable, e.g. the position of Daemon.mu. Two instances of the
// same struct share a LockID: the analyzers reason about lock
// *classes*, the granularity at which ordering invariants are stated.
type LockID string

// lockEdge records "from was held while to was acquired" at Pos.
// Via names the callee when the acquisition happens transitively
// inside a call rather than in the holding function itself.
type lockEdge struct {
	From, To LockID
	Pos      token.Pos
	Pkg      string // module-relative package path of the site
	Via      string // callee display name, "" for a direct acquisition
}

// callHolding records an in-module call made while locks were held;
// finalize expands these into lockEdges using the callee's transitive
// acquire set.
type callHolding struct {
	Held   []LockID
	Callee FuncID
	Pos    token.Pos
	Name   string // callee display name
}

// sinkParam describes a function parameter that flows into an
// allocation- or slicing-size position without an intervening bound
// check, so passing a wire-tainted value as this argument is as bad as
// using it in the sink directly.
type sinkParam struct {
	Sink string // description of the sink the parameter reaches
}

// funcFacts is the per-function summary.
type funcFacts struct {
	ID   FuncID
	Name string // display name, e.g. (*Updater).pass
	Pkg  string // module-relative package path
	Decl *ast.FuncDecl
	Info *types.Info

	Calls []FuncID // static in-module callees, deduplicated

	DirectAcquires map[LockID]token.Pos // first direct acquisition site
	AllAcquires    map[LockID]bool      // transitive closure over Calls
	Edges          []lockEdge           // direct held-while-acquiring edges
	CallsHolding   []callHolding

	WaitsDirect bool // body contains select / chan receive / chan range
	Waits       bool // WaitsDirect or any callee Waits (transitive)

	TaintedResults []bool            // result i derives from a wire-decoded integer
	SinkParams     map[int]sinkParam // param index -> unbounded sink it reaches
}

// lockMeta is the display metadata for one lock class.
type lockMeta struct {
	Name string // e.g. "Updater.smu" or "transport.poolMu"
}

// Graph is the module-wide fact layer.
type Graph struct {
	Funcs map[FuncID]*funcFacts
	Locks map[LockID]*lockMeta

	mod string // module path, for the in-module test
	pos func(token.Pos) token.Position

	// lockorder memoization: edges that participate in a cycle,
	// computed once per run on first use.
	cycleFindings []cycleFinding
	cycleDone     bool
}

// Position resolves a token.Pos module-relatively (shared with Pass).
func (g *Graph) Position(p token.Pos) token.Position { return g.pos(p) }

// FuncIDOf returns the positional ID for a declared function object.
func (g *Graph) FuncIDOf(obj *types.Func) FuncID {
	p := g.pos(obj.Pos())
	return FuncID(fmt.Sprintf("%s:%d", p.Filename, p.Line))
}

// buildGraph constructs the fact layer over every package the loader
// has touched, in deterministic path order, and runs the summary
// fixpoints.
func buildGraph(l *loader, extra []*Package) *Graph {
	byPath := make(map[string]*Package, len(l.pkgs)+len(extra))
	for path, pkg := range l.pkgs {
		byPath[path] = pkg
	}
	for _, pkg := range extra {
		byPath[pkg.Path] = pkg
	}
	paths := make([]string, 0, len(byPath))
	for path := range byPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	g := &Graph{
		Funcs: make(map[FuncID]*funcFacts),
		Locks: make(map[LockID]*lockMeta),
		mod:   l.modPath,
		pos: func(p token.Pos) token.Position {
			tp := l.fset.Position(p)
			if rel, err := relIfUnder(l.root, tp.Filename); err == nil {
				tp.Filename = rel
			}
			return tp
		},
	}
	for _, path := range paths {
		pkg := byPath[path]
		if !strings.HasPrefix(pkg.Path, l.modPath) {
			continue
		}
		rel := l.relPath(pkg.Path)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				g.collectFunc(pkg, rel, fn)
			}
		}
	}
	g.propagate()
	return g
}

// collectFunc builds the pre-fixpoint summary of one function: call
// list, lock walk, and channel-wait flag.
func (g *Graph) collectFunc(pkg *Package, relPkg string, fn *ast.FuncDecl) {
	obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	ff := &funcFacts{
		ID:             g.FuncIDOf(obj),
		Name:           shortFuncName(obj),
		Pkg:            relPkg,
		Decl:           fn,
		Info:           pkg.Info,
		DirectAcquires: make(map[LockID]token.Pos),
		SinkParams:     make(map[int]sinkParam),
	}
	g.Funcs[ff.ID] = ff

	seenCall := make(map[FuncID]bool)
	g.walkLocks(ff, fn.Body, nil, func(callee *types.Func, pos token.Pos, held []LockID) {
		id := g.FuncIDOf(callee)
		if !seenCall[id] {
			seenCall[id] = true
			ff.Calls = append(ff.Calls, id)
		}
		if len(held) > 0 {
			ff.CallsHolding = append(ff.CallsHolding, callHolding{
				Held: append([]LockID(nil), held...), Callee: id, Pos: pos, Name: shortFuncName(callee),
			})
		}
	})
	ff.WaitsDirect = waitsDirectly(pkg.Info, fn.Body)
}

// walkLocks traverses a statement tree in source order tracking the
// held-lock stack, recording direct held-while-acquiring edges on ff
// and handing every resolvable in-module call to onCall. Function
// literals are walked with the current held state — a conservative
// "callback may run synchronously" assumption — except goroutine
// bodies, which start with nothing held.
func (g *Graph) walkLocks(ff *funcFacts, body ast.Node, held []LockID, onCall func(*types.Func, token.Pos, []LockID)) {
	heldStack := append([]LockID(nil), held...)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			// The goroutine does not inherit the launcher's locks. Walk
			// its function body (if literal) with an empty held stack;
			// named callees are still reported for the call graph.
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				g.walkLocks(ff, lit.Body, nil, onCall)
				for _, arg := range x.Call.Args {
					ast.Inspect(arg, walk)
				}
			} else {
				if callee := staticCallee(ff.Info, x.Call); callee != nil && g.inModule(callee) {
					onCall(callee, x.Call.Pos(), nil)
				}
				ast.Inspect(x.Call, func(n ast.Node) bool {
					if n == x.Call {
						return true
					}
					return walk(n)
				})
			}
			return false
		case *ast.FuncLit:
			g.walkLocks(ff, x.Body, heldStack, onCall)
			return false
		case *ast.CallExpr:
			if op, ok := g.lockOpOf(ff.Info, x); ok {
				if op.acquire {
					for _, h := range heldStack {
						ff.Edges = append(ff.Edges, lockEdge{From: h, To: op.id, Pos: x.Pos(), Pkg: ff.Pkg})
					}
					if _, seen := ff.DirectAcquires[op.id]; !seen {
						ff.DirectAcquires[op.id] = x.Pos()
					}
					heldStack = append(heldStack, op.id)
				} else {
					for i := len(heldStack) - 1; i >= 0; i-- {
						if heldStack[i] == op.id {
							heldStack = append(heldStack[:i], heldStack[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if callee := staticCallee(ff.Info, x); callee != nil && g.inModule(callee) {
				onCall(callee, x.Pos(), heldStack)
			}
			return true
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the rest of the
			// function, which is exactly what not processing the release
			// models; other deferred calls are treated as call sites
			// under the current held set.
			if op, ok := g.lockOpOf(ff.Info, x.Call); ok && !op.acquire {
				return false
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// lockOp classifies one sync.Mutex / sync.RWMutex method call.
type lockOp struct {
	acquire bool
	id      LockID
	name    string
}

var lockAcquire = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Unlock": false, "RUnlock": false,
}

// lockOpOf resolves a call to a lock operation and the identity of the
// lock it operates on. Unresolvable lock operands (e.g. a mutex behind
// an interface) are skipped rather than guessed.
func (g *Graph) lockOpOf(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !(isPkgType(recv.Type(), "sync", "Mutex") || isPkgType(recv.Type(), "sync", "RWMutex")) {
		return lockOp{}, false
	}
	acquire, known := lockAcquire[fn.Name()]
	if !known {
		return lockOp{}, false
	}
	obj, name := g.lockIdentity(info, sel)
	if obj == nil {
		return lockOp{}, false
	}
	p := g.pos(obj.Pos())
	id := LockID(fmt.Sprintf("%s:%d", p.Filename, p.Line))
	if _, ok := g.Locks[id]; !ok {
		g.Locks[id] = &lockMeta{Name: name}
	}
	return lockOp{acquire: acquire, id: id, name: name}, true
}

// lockIdentity resolves the variable or field object that declares the
// lock a method call operates on, plus a display name.
func (g *Graph) lockIdentity(info *types.Info, methodSel *ast.SelectorExpr) (types.Object, string) {
	x := ast.Unparen(methodSel.X)
	if u, ok := x.(*ast.UnaryExpr); ok && u.Op == token.AND {
		x = ast.Unparen(u.X)
	}
	switch lockExpr := x.(type) {
	case *ast.SelectorExpr:
		if s := info.Selections[lockExpr]; s != nil && s.Kind() == types.FieldVal {
			fld := s.Obj()
			return fld, ownerName(s.Recv()) + "." + fld.Name()
		}
		// Package-qualified global: pkg.mu.Lock().
		if v, ok := info.Uses[lockExpr.Sel].(*types.Var); ok && !v.IsField() {
			return v, v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[lockExpr].(*types.Var); ok {
			if v.IsField() {
				// Embedded mutex promoted onto the receiver ident is not
				// hit here (that is the method-selection case below);
				// a plain field ident inside a method body is.
				return v, v.Name()
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v, v.Pkg().Name() + "." + v.Name()
			}
			return v, v.Name() // function-local mutex
		}
	}
	// Embedded sync.Mutex: s.Lock() selects the promoted method through
	// an embedded field; recover that field from the selection path.
	if s := info.Selections[methodSel]; s != nil && len(s.Index()) > 1 {
		if fld := fieldAlongPath(s.Recv(), s.Index()[:len(s.Index())-1]); fld != nil {
			return fld, ownerName(s.Recv()) + "." + fld.Name()
		}
	}
	return nil, ""
}

// fieldAlongPath follows a types.Selection embedded-field index path.
func fieldAlongPath(t types.Type, path []int) *types.Var {
	var fld *types.Var
	for _, i := range path {
		s, ok := t.Underlying().(*types.Struct)
		if !ok {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				s, ok = p.Elem().Underlying().(*types.Struct)
				if !ok {
					return nil
				}
			} else {
				return nil
			}
		}
		if i >= s.NumFields() {
			return nil
		}
		fld = s.Field(i)
		t = fld.Type()
	}
	return fld
}

// ownerName renders the named type owning a selection's receiver.
func ownerName(t types.Type) string {
	if n, ok := namedType(t); ok {
		return n.Obj().Name()
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// staticCallee resolves a call expression to a declared function or
// concrete method, or nil for interface calls, func values, builtins
// and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s := info.Selections[fun]; s != nil {
			if s.Kind() == types.MethodVal {
				if fn, ok := s.Obj().(*types.Func); ok {
					// Interface methods have no body to summarize.
					if _, isIface := s.Recv().Underlying().(*types.Interface); !isIface {
						return fn
					}
				}
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// inModule reports whether a function belongs to this module (the only
// functions the graph holds bodies for).
func (g *Graph) inModule(fn *types.Func) bool {
	return fn.Pkg() != nil && (fn.Pkg().Path() == g.mod || strings.HasPrefix(fn.Pkg().Path(), g.mod+"/"))
}

// waitsDirectly reports whether a body syntactically blocks on a
// channel signal: a select, a receive expression, or a range over a
// channel. Nested function literals count — a loop that calls a local
// closure which receives still has its stop signal inside the loop.
func waitsDirectly(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.Types[x.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// propagate runs the module-wide fixpoints: transitive lock acquires,
// transitive channel waits, call-derived lock edges, and the wire
// taint summaries (see taint.go).
func (g *Graph) propagate() {
	ids := make([]FuncID, 0, len(g.Funcs))
	for id := range g.Funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Transitive acquires and waits, iterated to fixpoint.
	for _, id := range ids {
		ff := g.Funcs[id]
		ff.AllAcquires = make(map[LockID]bool, len(ff.DirectAcquires))
		for l := range ff.DirectAcquires {
			ff.AllAcquires[l] = true
		}
		ff.Waits = ff.WaitsDirect
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			ff := g.Funcs[id]
			for _, callee := range ff.Calls {
				cf := g.Funcs[callee]
				if cf == nil {
					continue
				}
				for l := range cf.AllAcquires {
					if !ff.AllAcquires[l] {
						ff.AllAcquires[l] = true
						changed = true
					}
				}
				if cf.Waits && !ff.Waits {
					ff.Waits = true
					changed = true
				}
			}
		}
	}

	// Expand calls-while-holding into edges using the callee closure.
	for _, id := range ids {
		ff := g.Funcs[id]
		for _, ch := range ff.CallsHolding {
			cf := g.Funcs[ch.Callee]
			if cf == nil {
				continue
			}
			targets := make([]LockID, 0, len(cf.AllAcquires))
			for l := range cf.AllAcquires {
				targets = append(targets, l)
			}
			sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
			for _, to := range targets {
				for _, from := range ch.Held {
					ff.Edges = append(ff.Edges, lockEdge{From: from, To: to, Pos: ch.Pos, Pkg: ff.Pkg, Via: ch.Name})
				}
			}
		}
	}

	g.propagateTaint(ids)
}

// shortFuncName renders a function for diagnostics: pkg-local, with a
// receiver for methods, e.g. "(*Updater).pass" or "readFrame".
func shortFuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			return "(*" + ownerName(p.Elem()) + ")." + fn.Name()
		}
		return ownerName(t) + "." + fn.Name()
	}
	return fn.Name()
}

// relIfUnder returns path relative to root when it is under root.
func relIfUnder(root, path string) (string, error) {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("outside root")
	}
	return filepath.ToSlash(rel), nil
}
