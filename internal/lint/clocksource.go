package lint

import (
	"go/ast"
)

// wallClockFuncs are the package-time functions that read or depend on
// the wall clock. Constructors like time.Unix/time.Date and pure
// arithmetic (time.Duration, ParseDuration) are allowed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

// clocksourceAnalyzer flags wall-clock use in the packages whose
// behaviour must be reproducible under the virtual scheduler clock
// (sched.NewVirtual). Daemon code should route through
// Scheduler.Now()/After()/Every(); deliberate wall-clock reads (e.g.
// real CPU-cost accounting) carry a //ldms:wallclock <reason>.
var clocksourceAnalyzer = &Analyzer{
	Name: "clocksource",
	Doc:  "no bare time.Now/Sleep/After/NewTicker in scheduler-clocked packages",
	Include: []string{
		"internal/ldmsd",
		"internal/query",
		"internal/transport",
		"internal/store",
		"internal/obs",
		"internal/tier",
		"internal/sampler",
		"internal/watchdog",
		"internal/simcluster",
	},
	Suppress: "wallclock",
	Run:      runClocksource,
}

func runClocksource(p *Pass, _ *Facts) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Flag value references too (now := time.Now), not just
			// calls: storing the func smuggles the wall clock past a
			// call-site check.
			if path, ok := pkgNameOf(p.Pkg.Info, sel.X); ok && path == "time" && wallClockFuncs[sel.Sel.Name] {
				p.Reportf(sel.Pos(), "time.%s reads the wall clock; use the scheduler clock (sched.Scheduler.Now/After/Every) or annotate //ldms:wallclock <reason>", sel.Sel.Name)
			}
			return true
		})
	}
}
