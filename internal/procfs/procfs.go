// Package procfs abstracts the /proc and /sys data sources that LDMS
// sampling plugins read.
//
// On a real Linux node the OS filesystem is used directly (OSFS). For
// simulated clusters — this reproduction's substitute for Blue Waters and
// Chama hardware — SimFS renders the same text file formats from a NodeState
// that the cluster and network simulators mutate. Samplers therefore always
// exercise the realistic read-and-parse path regardless of where the data
// comes from, which matters for the overhead experiments (T2, F5, F8).
package procfs

import (
	"fmt"
	"os"
)

// FS provides read access to a /proc-/sys-like file tree.
type FS interface {
	// ReadFile returns the current contents of the named file.
	ReadFile(path string) ([]byte, error)
}

// OSFS reads the host operating system's real /proc and /sys.
type OSFS struct{}

// ReadFile implements FS via the host filesystem.
func (OSFS) ReadFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// ErrNotExist is returned by SimFS for paths it does not synthesize.
type ErrNotExist struct{ Path string }

// Error implements the error interface.
func (e *ErrNotExist) Error() string {
	return fmt.Sprintf("procfs: %s: no such file", e.Path)
}
