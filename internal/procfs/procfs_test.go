package procfs

import (
	"strings"
	"sync"
	"testing"
)

func testNode() *NodeState {
	n := NewNodeState("nid00042", 4, 64<<20) // 64 GB in kB
	n.Update(func(n *NodeState) {
		n.MemFreeKB = 32 << 20
		n.ActiveKB = 16 << 20
		n.CPU[0] = CPUTicks{User: 100, Sys: 50, Idle: 800, IOWait: 25}
		n.CPU[1] = CPUTicks{User: 25, Sys: 10, Idle: 200}
		n.Load1, n.Load5, n.Load15 = 3.5, 2.0, 1.0
		n.Ctxt = 999
		l := n.EnsureLustre("snx11024")
		l.Open = 42
		l.ReadBytes = 4096
		d := n.EnsureNetDev("eth0")
		d.RxBytes, d.TxBytes = 1000, 2000
		ib := n.EnsureIB("mlx4_0")
		ib.PortXmitData = 777
		g := n.EnsureGemini()
		g.Links[0] = GeminiLink{Traffic: 5000, CreditStall: 123, Status: 1, LinkBWMBps: 9375}
		g.LnetTxBytes = 31337
	})
	return n
}

func TestMeminfoRender(t *testing.T) {
	fs := NewSimFS(testNode())
	b, err := fs.ReadFile("/proc/meminfo")
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, "MemTotal:") || !strings.Contains(s, "67108864 kB") {
		t.Errorf("meminfo missing MemTotal:\n%s", s)
	}
	if !strings.Contains(s, "Active:") {
		t.Errorf("meminfo missing Active:\n%s", s)
	}
}

func TestStatRender(t *testing.T) {
	fs := NewSimFS(testNode())
	b, err := fs.ReadFile("/proc/stat")
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.HasPrefix(s, "cpu  100 0 50 800 25") {
		t.Errorf("aggregate cpu line wrong:\n%s", s)
	}
	if !strings.Contains(s, "cpu0 25 0 10 200") {
		t.Errorf("cpu0 line wrong:\n%s", s)
	}
	if !strings.Contains(s, "ctxt 999") {
		t.Errorf("ctxt missing:\n%s", s)
	}
}

func TestLoadavgRender(t *testing.T) {
	fs := NewSimFS(testNode())
	b, _ := fs.ReadFile("/proc/loadavg")
	if !strings.HasPrefix(string(b), "3.50 2.00 1.00") {
		t.Errorf("loadavg = %q", b)
	}
}

func TestLustreRender(t *testing.T) {
	fs := NewSimFS(testNode())
	b, err := fs.ReadFile("/proc/fs/lustre/llite/snx11024/stats")
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, "open") || !strings.Contains(s, "42 samples") {
		t.Errorf("lustre stats:\n%s", s)
	}
	if _, err := fs.ReadFile("/proc/fs/lustre/llite/nope/stats"); err == nil {
		t.Error("unknown lustre fs served")
	}
}

func TestNetDevRender(t *testing.T) {
	fs := NewSimFS(testNode())
	b, _ := fs.ReadFile("/proc/net/dev")
	if !strings.Contains(string(b), "eth0: 1000") {
		t.Errorf("net/dev:\n%s", b)
	}
}

func TestIBCounterRender(t *testing.T) {
	fs := NewSimFS(testNode())
	b, err := fs.ReadFile("/sys/class/infiniband/mlx4_0/ports/1/counters/port_xmit_data")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(b)) != "777" {
		t.Errorf("port_xmit_data = %q", b)
	}
	if _, err := fs.ReadFile("/sys/class/infiniband/mlx4_0/ports/1/counters/bogus"); err == nil {
		t.Error("bogus counter served")
	}
	if _, err := fs.ReadFile("/sys/class/infiniband/none/ports/1/counters/port_xmit_data"); err == nil {
		t.Error("unknown device served")
	}
}

func TestGpcdrRender(t *testing.T) {
	fs := NewSimFS(testNode())
	b, err := fs.ReadFile(GpcdrPath)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{"X+_traffic 5000", "X+_credit_stall 123", "X+_status 1", "X+_max_bw_mbps 9375", "lnet_tx_bytes 31337", "Z-_traffic 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("gpcdr missing %q:\n%s", want, s)
		}
	}
}

func TestGpcdrAbsentOnNonCray(t *testing.T) {
	n := NewNodeState("n1", 2, 1<<20)
	fs := NewSimFS(n)
	if _, err := fs.ReadFile(GpcdrPath); err == nil {
		t.Error("gpcdr served on node without Gemini state")
	}
}

func TestUnknownPath(t *testing.T) {
	fs := NewSimFS(testNode())
	if _, err := fs.ReadFile("/proc/cmdline"); err == nil {
		t.Error("unknown path served")
	}
	var notExist *ErrNotExist
	_, err := fs.ReadFile("/nope")
	if e, ok := err.(*ErrNotExist); ok {
		notExist = e
	}
	if notExist == nil {
		t.Errorf("error type = %T", err)
	}
}

func TestConcurrentUpdateAndRead(t *testing.T) {
	n := testNode()
	fs := NewSimFS(n)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			n.Update(func(n *NodeState) {
				n.MemFreeKB--
				n.EnsureLustre("snx11024").Open++
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			if _, err := fs.ReadFile("/proc/meminfo"); err != nil {
				t.Error(err)
				return
			}
			if _, err := fs.ReadFile("/proc/fs/lustre/llite/snx11024/stats"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestCPUTicksTotal(t *testing.T) {
	c := CPUTicks{User: 1, Nice: 2, Sys: 3, Idle: 4, IOWait: 5, IRQ: 6, SoftIRQ: 7}
	if c.Total() != 28 {
		t.Errorf("Total = %d want 28", c.Total())
	}
}

func TestAllIBCountersServed(t *testing.T) {
	fs := NewSimFS(testNode())
	for _, name := range IBCounterNames {
		path := "/sys/class/infiniband/mlx4_0/ports/1/counters/" + name
		if _, err := fs.ReadFile(path); err != nil {
			t.Errorf("counter %s not served: %v", name, err)
		}
	}
}

func TestMalformedSysPaths(t *testing.T) {
	fs := NewSimFS(testNode())
	for _, p := range []string{
		"/sys/class/infiniband/mlx4_0/ports/1/nope/port_xmit_data",
		"/sys/class/infiniband/mlx4_0/wrong",
		"/proc/fs/lustre/llite/snx11024/wrong",
		"/proc/fs/lustre/llite/snx11024",
	} {
		if _, err := fs.ReadFile(p); err == nil {
			t.Errorf("malformed path %q served", p)
		}
	}
}

func TestJobInfoRendered(t *testing.T) {
	n := testNode()
	n.Update(func(ns *NodeState) { ns.JobID, ns.UserID = 9, 1000 })
	fs := NewSimFS(n)
	b, err := fs.ReadFile(JobInfoPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "jobid 9\nuid 1000\n" {
		t.Errorf("jobinfo = %q", b)
	}
}

func TestVmstatAndNFSRender(t *testing.T) {
	n := testNode()
	n.Update(func(ns *NodeState) {
		ns.PgPgOut, ns.PswpIn, ns.NrDirty = 11, 22, 33
		ns.NFS.Retrans = 7
	})
	fs := NewSimFS(n)
	b, _ := fs.ReadFile("/proc/vmstat")
	for _, want := range []string{"pgpgout 11", "pswpin 22", "nr_dirty 33"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("vmstat missing %q", want)
		}
	}
	b, _ = fs.ReadFile("/proc/net/rpc/nfs")
	if !strings.Contains(string(b), "rpc 0 7 0") {
		t.Errorf("nfs render: %q", b)
	}
}

func TestOSFSPassthrough(t *testing.T) {
	if _, err := (OSFS{}).ReadFile("/proc/meminfo"); err != nil {
		t.Skipf("no real /proc: %v", err)
	}
	if _, err := (OSFS{}).ReadFile("/definitely/not/here"); err == nil {
		t.Error("missing file served")
	}
}
