package procfs

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// SimFS renders a NodeState as /proc and /sys formatted text, standing in
// for the kernel on simulated nodes. Every read re-renders from live state,
// as a real procfs read does.
type SimFS struct {
	node *NodeState
}

// NewSimFS returns a SimFS view of node.
func NewSimFS(node *NodeState) *SimFS { return &SimFS{node: node} }

// Node returns the backing state, for simulators that hold only the FS.
func (fs *SimFS) Node() *NodeState { return fs.node }

// GpcdrPath is where the simulated Cray gpcdr module exposes aggregated HSN
// link metrics.
const GpcdrPath = "/sys/devices/virtual/gni/gpcdr0/metricsets/links/metrics"

// JobInfoPath is where the resource manager publishes the node's current
// job binding for the jobid sampler.
const JobInfoPath = "/var/run/ldms.jobinfo"

// ReadFile implements FS by rendering the requested file from node state.
func (fs *SimFS) ReadFile(path string) ([]byte, error) {
	n := fs.node
	n.lock()
	defer n.unlock()
	switch {
	case path == "/proc/meminfo":
		return fs.renderMeminfo(), nil
	case path == "/proc/stat":
		return fs.renderStat(), nil
	case path == "/proc/loadavg":
		return fs.renderLoadavg(), nil
	case path == "/proc/vmstat":
		return fs.renderVmstat(), nil
	case path == "/proc/net/dev":
		return fs.renderNetDev(), nil
	case path == "/proc/net/rpc/nfs":
		return fs.renderNFS(), nil
	case path == GpcdrPath:
		return fs.renderGpcdr()
	case path == JobInfoPath:
		return []byte(fmt.Sprintf("jobid %d\nuid %d\n", n.JobID, n.UserID)), nil
	case strings.HasPrefix(path, "/proc/fs/lustre/llite/"):
		return fs.renderLustre(path)
	case strings.HasPrefix(path, "/sys/class/infiniband/"):
		return fs.renderIBCounter(path)
	default:
		return nil, &ErrNotExist{Path: path}
	}
}

func (fs *SimFS) renderMeminfo() []byte {
	n := fs.node
	var b bytes.Buffer
	kv := func(k string, v uint64) { fmt.Fprintf(&b, "%s:%15d kB\n", k, v) }
	kv("MemTotal", n.MemTotalKB)
	kv("MemFree", n.MemFreeKB)
	kv("Buffers", n.BuffersKB)
	kv("Cached", n.CachedKB)
	kv("Active", n.ActiveKB)
	kv("Inactive", n.InactiveKB)
	kv("Dirty", n.DirtyKB)
	kv("SwapTotal", n.SwapTotalKB)
	kv("SwapFree", n.SwapFreeKB)
	kv("Slab", n.SlabKB)
	kv("Committed_AS", n.CommittedASKB)
	return b.Bytes()
}

func (fs *SimFS) renderStat() []byte {
	n := fs.node
	var b bytes.Buffer
	line := func(name string, c CPUTicks) {
		fmt.Fprintf(&b, "%s %d %d %d %d %d %d %d 0 0 0\n",
			name, c.User, c.Nice, c.Sys, c.Idle, c.IOWait, c.IRQ, c.SoftIRQ)
	}
	if len(n.CPU) > 0 {
		line("cpu ", n.CPU[0])
		for i := 1; i < len(n.CPU); i++ {
			line(fmt.Sprintf("cpu%d", i-1), n.CPU[i])
		}
	}
	fmt.Fprintf(&b, "intr %d\n", n.Intr)
	fmt.Fprintf(&b, "ctxt %d\n", n.Ctxt)
	fmt.Fprintf(&b, "btime %d\n", n.BootTime)
	fmt.Fprintf(&b, "processes %d\n", n.Processes)
	fmt.Fprintf(&b, "procs_running %d\n", n.ProcsRunning)
	fmt.Fprintf(&b, "procs_blocked %d\n", n.ProcsBlocked)
	return b.Bytes()
}

func (fs *SimFS) renderLoadavg() []byte {
	n := fs.node
	return []byte(fmt.Sprintf("%.2f %.2f %.2f %d/%d %d\n",
		n.Load1, n.Load5, n.Load15, n.RunnableTasks, n.TotalTasks, n.LastPID))
}

func (fs *SimFS) renderVmstat() []byte {
	n := fs.node
	var b bytes.Buffer
	kv := func(k string, v uint64) { fmt.Fprintf(&b, "%s %d\n", k, v) }
	kv("nr_free_pages", n.NrFreePages)
	kv("nr_dirty", n.NrDirty)
	kv("pgpgin", n.PgPgIn)
	kv("pgpgout", n.PgPgOut)
	kv("pswpin", n.PswpIn)
	kv("pswpout", n.PswpOut)
	kv("pgfault", n.PgFault)
	kv("pgmajfault", n.PgMajFault)
	return b.Bytes()
}

func (fs *SimFS) renderNetDev() []byte {
	n := fs.node
	var b bytes.Buffer
	b.WriteString("Inter-|   Receive                                                |  Transmit\n")
	b.WriteString(" face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n")
	devs := make([]string, 0, len(n.NetDev))
	for d := range n.NetDev {
		devs = append(devs, d)
	}
	sort.Strings(devs)
	for _, d := range devs {
		s := n.NetDev[d]
		fmt.Fprintf(&b, "%6s: %d %d %d %d 0 0 0 0 %d %d %d %d 0 0 0 0\n",
			d, s.RxBytes, s.RxPackets, s.RxErrs, s.RxDrop,
			s.TxBytes, s.TxPackets, s.TxErrs, s.TxDrop)
	}
	return b.Bytes()
}

func (fs *SimFS) renderNFS() []byte {
	n := fs.node
	var b bytes.Buffer
	fmt.Fprintf(&b, "rpc %d %d %d\n", n.NFS.RPCCount, n.NFS.Retrans, n.NFS.AuthRefresh)
	fmt.Fprintf(&b, "proc3 22 0 %d %d %d %d 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n",
		n.NFS.Getattr, n.NFS.Lookup, n.NFS.Read, n.NFS.Write)
	return b.Bytes()
}

// renderLustre serves /proc/fs/lustre/llite/<fsname>/stats.
func (fs *SimFS) renderLustre(path string) ([]byte, error) {
	rest := strings.TrimPrefix(path, "/proc/fs/lustre/llite/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 || parts[1] != "stats" {
		return nil, &ErrNotExist{Path: path}
	}
	s, ok := fs.node.Lustre[parts[0]]
	if !ok {
		return nil, &ErrNotExist{Path: path}
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "snapshot_time             0.0 secs.usecs\n")
	kv := func(k string, v uint64, unit string) {
		fmt.Fprintf(&b, "%-25s %d samples [%s]\n", k, v, unit)
	}
	kv("dirty_pages_hits", s.DirtyPagesHits, "regs")
	kv("dirty_pages_misses", s.DirtyPagesMisses, "regs")
	kv("read_bytes", s.ReadBytes, "bytes")
	kv("write_bytes", s.WriteBytes, "bytes")
	kv("open", s.Open, "regs")
	kv("close", s.Close, "regs")
	kv("fsync", s.Fsync, "regs")
	kv("seek", s.Seek, "regs")
	return b.Bytes(), nil
}

// renderIBCounter serves one file under
// /sys/class/infiniband/<dev>/ports/1/counters/<name>.
func (fs *SimFS) renderIBCounter(path string) ([]byte, error) {
	rest := strings.TrimPrefix(path, "/sys/class/infiniband/")
	parts := strings.Split(rest, "/")
	// <dev>/ports/1/counters/<name>
	if len(parts) != 5 || parts[1] != "ports" || parts[3] != "counters" {
		return nil, &ErrNotExist{Path: path}
	}
	c, ok := fs.node.IB[parts[0]]
	if !ok {
		return nil, &ErrNotExist{Path: path}
	}
	var v uint64
	switch parts[4] {
	case "port_xmit_data":
		v = c.PortXmitData
	case "port_rcv_data":
		v = c.PortRcvData
	case "port_xmit_packets":
		v = c.PortXmitPkts
	case "port_rcv_packets":
		v = c.PortRcvPkts
	case "symbol_error":
		v = c.SymbolError
	case "link_downed":
		v = c.LinkDowned
	case "port_xmit_wait":
		v = c.PortXmitWait
	case "port_rcv_errors":
		v = c.PortRcvErrors
	case "excessive_buffer_overrun_errors":
		v = c.ExcessiveBufferOverrunErrors
	case "local_link_integrity_errors":
		v = c.LocalLinkIntegrityErrors
	default:
		return nil, &ErrNotExist{Path: path}
	}
	return []byte(fmt.Sprintf("%d\n", v)), nil
}

// IBCounterNames lists the counters renderIBCounter serves, in the order
// the ib sampler collects them.
var IBCounterNames = []string{
	"port_xmit_data", "port_rcv_data",
	"port_xmit_packets", "port_rcv_packets",
	"symbol_error", "link_downed",
	"port_xmit_wait", "port_rcv_errors",
	"excessive_buffer_overrun_errors", "local_link_integrity_errors",
}

// renderGpcdr serves the simulated Cray gpcdr links metric set: one
// "name value" line per aggregated HSN metric, as the gpcdr module's
// configured metric definitions produce.
func (fs *SimFS) renderGpcdr() ([]byte, error) {
	g := fs.node.Gemini
	if g == nil {
		return nil, &ErrNotExist{Path: GpcdrPath}
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "sampletime_ns %d\n", g.SampleTimeNs)
	for i, dir := range GeminiDirs {
		l := g.Links[i]
		fmt.Fprintf(&b, "%s_traffic %d\n", dir, l.Traffic)
		fmt.Fprintf(&b, "%s_packets %d\n", dir, l.Packets)
		fmt.Fprintf(&b, "%s_stalled %d\n", dir, l.Stalled)
		fmt.Fprintf(&b, "%s_inq_stall %d\n", dir, l.InqStall)
		fmt.Fprintf(&b, "%s_credit_stall %d\n", dir, l.CreditStall)
		fmt.Fprintf(&b, "%s_status %d\n", dir, l.Status)
		fmt.Fprintf(&b, "%s_max_bw_mbps %d\n", dir, uint64(l.LinkBWMBps))
	}
	fmt.Fprintf(&b, "lnet_tx_bytes %d\n", g.LnetTxBytes)
	fmt.Fprintf(&b, "lnet_rx_bytes %d\n", g.LnetRxBytes)
	return b.Bytes(), nil
}
