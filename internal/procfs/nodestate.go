package procfs

import (
	"sync"
)

// GeminiDirs are the six link directions of a Gemini router in the 3-D
// torus, in the order used throughout this repository.
var GeminiDirs = [6]string{"X+", "X-", "Y+", "Y-", "Z+", "Z-"}

// CPUTicks is one cpu line of /proc/stat in USER_HZ ticks.
type CPUTicks struct {
	User, Nice, Sys, Idle, IOWait, IRQ, SoftIRQ uint64
}

// Total returns the sum of all tick categories.
func (c CPUTicks) Total() uint64 {
	return c.User + c.Nice + c.Sys + c.Idle + c.IOWait + c.IRQ + c.SoftIRQ
}

// LustreStats are the client-side Lustre llite counters for one filesystem
// mount (cf. the paper's example metrics dirty_pages_hits#stats.snx11024 …).
type LustreStats struct {
	DirtyPagesHits   uint64
	DirtyPagesMisses uint64
	ReadBytes        uint64
	WriteBytes       uint64
	Open             uint64
	Close            uint64
	Fsync            uint64
	Seek             uint64
}

// NetDevStats is one interface line of /proc/net/dev.
type NetDevStats struct {
	RxBytes, RxPackets, RxErrs, RxDrop uint64
	TxBytes, TxPackets, TxErrs, TxDrop uint64
}

// NFSStats are client RPC counters from /proc/net/rpc/nfs.
type NFSStats struct {
	RPCCount, Retrans, AuthRefresh uint64
	Read, Write, Getattr, Lookup   uint64
}

// IBCounters are HCA port counters from
// /sys/class/infiniband/<dev>/ports/1/counters.
type IBCounters struct {
	PortXmitData, PortRcvData    uint64
	PortXmitPkts, PortRcvPkts    uint64
	SymbolError, LinkDowned      uint64
	PortXmitWait, PortRcvErrors  uint64
	ExcessiveBufferOverrunErrors uint64
	LocalLinkIntegrityErrors     uint64
}

// GeminiLink is the gpcdr view of one torus link direction, aggregated over
// the tiles of that direction.
type GeminiLink struct {
	Traffic     uint64  // bytes sent
	Stalled     uint64  // time (ns) output was credit-stalled
	Packets     uint64  // packets sent
	InqStall    uint64  // input-queue stall time (ns)
	CreditStall uint64  // credit stall time (ns); the §VI-A1 quantity
	LinkBWMBps  float64 // theoretical max bandwidth for the link media
	Status      uint64  // 1 = up
}

// GeminiState is the full gpcdr metric family for a node.
type GeminiState struct {
	Links        [6]GeminiLink
	SampleTimeNs uint64 // time the counters were captured
	LnetTxBytes  uint64
	LnetRxBytes  uint64
}

// NodeState is the mutable hardware/OS state of one (simulated) node. The
// cluster and network simulators write it; SimFS renders it as /proc and
// /sys text. All methods are safe for concurrent use.
type NodeState struct {
	mu sync.Mutex

	Hostname string
	NumCores int

	// Memory, in kB, /proc/meminfo style.
	MemTotalKB, MemFreeKB uint64
	BuffersKB, CachedKB   uint64
	ActiveKB, InactiveKB  uint64
	DirtyKB, SwapTotalKB  uint64
	SwapFreeKB, SlabKB    uint64
	CommittedASKB         uint64

	// CPU: index 0 is the aggregate "cpu" line; 1..NumCores are cores.
	CPU []CPUTicks

	Intr, Ctxt, Processes      uint64
	ProcsRunning, ProcsBlocked uint64
	BootTime                   uint64

	Load1, Load5, Load15      float64
	RunnableTasks, TotalTasks uint64
	LastPID                   uint64

	// Vmstat counters (subset).
	PgPgIn, PgPgOut, PswpIn, PswpOut uint64
	PgFault, PgMajFault              uint64
	NrFreePages, NrDirty             uint64

	// Lustre llite stats per filesystem instance name (e.g. "snx11024").
	Lustre map[string]*LustreStats

	// Network devices by name (e.g. "eth0", "ib0").
	NetDev map[string]*NetDevStats

	NFS NFSStats

	// Infiniband HCA counters by device name (e.g. "mlx4_0").
	IB map[string]*IBCounters

	// Cray Gemini HSN counters (nil on non-Cray profiles).
	Gemini *GeminiState

	// Resource-manager view of the node: the job currently scheduled here
	// (0 = idle). The jobid sampler reads these so per-job/per-user
	// attribution can be joined with metric data (paper §VI-B).
	JobID  uint64
	UserID uint64
}

// NewNodeState returns a NodeState with sensible defaults for a node named
// hostname with the given core count and memory size.
func NewNodeState(hostname string, cores int, memTotalKB uint64) *NodeState {
	n := &NodeState{
		Hostname:   hostname,
		NumCores:   cores,
		MemTotalKB: memTotalKB,
		MemFreeKB:  memTotalKB,
		CPU:        make([]CPUTicks, cores+1),
		Lustre:     make(map[string]*LustreStats),
		NetDev:     make(map[string]*NetDevStats),
		IB:         make(map[string]*IBCounters),
		BootTime:   1400000000,
	}
	return n
}

// Update runs f with the state locked; simulators use it to mutate multiple
// fields atomically with respect to renders.
func (n *NodeState) Update(f func(*NodeState)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f(n)
}

// snapshotLocked is documentation-by-convention: render methods hold n.mu.
func (n *NodeState) lock()   { n.mu.Lock() }
func (n *NodeState) unlock() { n.mu.Unlock() }

// EnsureLustre returns the LustreStats for fs, creating it if needed.
// Callers inside Update may use it directly; standalone use is also safe.
func (n *NodeState) EnsureLustre(fs string) *LustreStats {
	if s, ok := n.Lustre[fs]; ok {
		return s
	}
	s := &LustreStats{}
	n.Lustre[fs] = s
	return s
}

// EnsureNetDev returns the NetDevStats for dev, creating it if needed.
func (n *NodeState) EnsureNetDev(dev string) *NetDevStats {
	if s, ok := n.NetDev[dev]; ok {
		return s
	}
	s := &NetDevStats{}
	n.NetDev[dev] = s
	return s
}

// EnsureIB returns the IBCounters for dev, creating it if needed.
func (n *NodeState) EnsureIB(dev string) *IBCounters {
	if s, ok := n.IB[dev]; ok {
		return s
	}
	s := &IBCounters{}
	n.IB[dev] = s
	return s
}

// EnsureGemini returns the node's GeminiState, creating it if needed.
func (n *NodeState) EnsureGemini() *GeminiState {
	if n.Gemini == nil {
		n.Gemini = &GeminiState{}
	}
	return n.Gemini
}
