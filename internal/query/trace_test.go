package query

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"goldms/internal/metric"
	"goldms/internal/obs"
)

// eventsGateway builds a gateway over a seeded journal.
func eventsGateway(t *testing.T) *httptest.Server {
	t.Helper()
	at := time.Unix(50000, 0)
	j := obs.NewJournal(64, func() time.Time { return at }, nil)
	j.Append(obs.SevInfo, obs.CompProducer, "n1", 1, "connected")
	j.Append(obs.SevWarn, obs.CompProducer, "n1", 1, "slow pull")
	j.Append(obs.SevError, obs.CompStore, "s1", 0, "write failed")
	j.Append(obs.SevWarn, obs.CompProducer, "n2", 2, "reconnect")
	j.Append(obs.SevInfo, obs.CompConfig, "", 0, "updtr_add")
	g := &Gateway{
		DaemonName: "agg-test",
		Sets:       metric.NewRegistry(),
		Journal:    j,
		Started:    at,
		Now:        func() time.Time { return at },
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestGatewayEventsFilterCombinations drives /api/v1/events through every
// filter knob at once and each failure mode: combined n=, severity=,
// component= and subject= narrowing; filters that match nothing; and bad
// parameter values rejected with 400.
func TestGatewayEventsFilterCombinations(t *testing.T) {
	srv := eventsGateway(t)

	count := func(q string) int {
		t.Helper()
		out := getJSON(t, srv.URL+"/api/v1/events"+q, 200)
		return len(out["events"].([]any))
	}

	if got := count(""); got != 5 {
		t.Errorf("unfiltered = %d events, want 5", got)
	}
	if got := count("?severity=warn"); got != 3 {
		t.Errorf("severity=warn = %d, want 3 (2 warn + 1 error)", got)
	}
	if got := count("?component=producer"); got != 3 {
		t.Errorf("component=producer = %d, want 3", got)
	}
	if got := count("?component=producer&subject=n1"); got != 2 {
		t.Errorf("component+subject = %d, want 2", got)
	}
	// Every filter at once: producer events about n1 at warn or above,
	// capped to one entry.
	out := getJSON(t, srv.URL+"/api/v1/events?n=1&severity=warn&component=producer&subject=n1", 200)
	events := out["events"].([]any)
	if len(events) != 1 {
		t.Fatalf("all filters = %d events, want 1", len(events))
	}
	ev := events[0].(map[string]any)
	if ev["message"] != "slow pull" || ev["subject"] != "n1" {
		t.Errorf("filtered event = %+v", ev)
	}
	// total/capacity report the whole journal regardless of filtering.
	if out["total"].(float64) != 5 {
		t.Errorf("total = %v, want 5", out["total"])
	}

	// Filters that match nothing return an empty array, not null.
	body, _ := io.ReadAll(mustGet(t, srv.URL+"/api/v1/events?component=producer&subject=ghost", 200).Body)
	if !strings.Contains(string(body), `"events":[]`) {
		t.Errorf("empty result body = %s, want empty events array", body)
	}

	// Bad parameter values are 400s, not silent defaults.
	for _, q := range []string{"?n=x", "?n=-1", "?severity=fatal", "?n=2&severity=loud"} {
		resp := mustGet(t, srv.URL+"/api/v1/events"+q, 400)
		resp.Body.Close()
	}

	// n=0 is valid (no count limit).
	if got := count("?n=0&severity=error"); got != 1 {
		t.Errorf("n=0&severity=error = %d, want 1", got)
	}
}

// mustGet fetches a URL expecting a status code, returning the response.
func mustGet(t *testing.T, url string, wantCode int) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s = %d, want %d (%s)", url, resp.StatusCode, wantCode, body)
	}
	return resp
}

// TestGatewayTrace serves span summaries and hop chains on /api/v1/trace.
func TestGatewayTrace(t *testing.T) {
	rec := obs.NewSpanRecorder()
	for i := 0; i < 10; i++ {
		rec.Record("n1", obs.RoleLeaf, obs.StagePull, 2*time.Millisecond)
		rec.Record("mid", obs.RoleMid, obs.StagePull, 5*time.Millisecond)
	}
	chains := func() []obs.ChainSnapshot {
		return []obs.ChainSnapshot{{
			Set: "n1/meminfo",
			Hops: []obs.HopRecord{
				{Daemon: "n1", Role: obs.RoleLeaf},
				{Daemon: "mid", Role: obs.RoleMid, Pull: 123},
				{Daemon: "top", Role: obs.RoleTop, Pull: 456, Store: 789},
			},
		}}
	}
	g := &Gateway{
		DaemonName: "top",
		Sets:       metric.NewRegistry(),
		Spans:      rec.Snapshot,
		Chains:     chains,
		Started:    time.Unix(0, 0),
		Now:        func() time.Time { return time.Unix(1, 0) },
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	out := getJSON(t, srv.URL+"/api/v1/trace", 200)
	spans := out["spans"].([]any)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	s0 := spans[0].(map[string]any)
	if s0["daemon"] != "mid" || s0["role"] != "mid" || s0["stage"] != "pull" {
		t.Errorf("span 0 = %+v (snapshot sorts by daemon)", s0)
	}
	if s0["count"].(float64) != 10 || s0["p50_seconds"].(float64) <= 0 {
		t.Errorf("span 0 quantiles = %+v", s0)
	}

	cs := out["chains"].([]any)
	c0 := cs[0].(map[string]any)
	if c0["set"] != "n1/meminfo" || c0["depth"].(float64) != 3 {
		t.Fatalf("chain = %+v", c0)
	}
	hops := c0["hops"].([]any)
	if len(hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(hops))
	}
	last := hops[2].(map[string]any)
	if last["daemon"] != "top" || last["role"] != "top" || last["store"].(float64) != 789 {
		t.Errorf("last hop = %+v", last)
	}
	// Unstamped stages are omitted, keeping chains compact on the wire.
	first := hops[0].(map[string]any)
	if _, present := first["pull"]; present {
		t.Errorf("bare hop serialized zero stamps: %+v", first)
	}

	// A daemon without tracing wired serves 503.
	g2 := &Gateway{DaemonName: "old", Sets: metric.NewRegistry(), Started: time.Unix(0, 0)}
	srv2 := httptest.NewServer(g2.Handler())
	defer srv2.Close()
	mustGet(t, srv2.URL+"/api/v1/trace", 503).Body.Close()
}

// TestGatewayMemStatsTTL is the /metrics self-scrape regression test:
// runtime.ReadMemStats stops the world, so back-to-back scrapes inside
// the TTL must share one reading instead of pausing the daemon per
// scraper.
func TestGatewayMemStatsTTL(t *testing.T) {
	now := time.Unix(60000, 0)
	reads := 0
	g := &Gateway{
		DaemonName: "agg",
		Sets:       metric.NewRegistry(),
		Started:    now,
		Now:        func() time.Time { return now },
		readMemStats: func(m *runtime.MemStats) {
			reads++
			m.HeapAlloc = uint64(1000 + reads)
		},
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp := mustGet(t, srv.URL+"/metrics", 200)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body)
	}

	body := scrape()
	if reads != 1 {
		t.Fatalf("first scrape read memstats %d times, want 1", reads)
	}
	if !strings.Contains(body, `ldmsd_heap_alloc_bytes{daemon="agg"} 1001`) {
		t.Errorf("first scrape body missing cached reading:\n%s", body)
	}

	// A burst of scrapes inside the TTL reuses the reading.
	now = now.Add(memStatsTTL / 2)
	for i := 0; i < 5; i++ {
		scrape()
	}
	if reads != 1 {
		t.Errorf("burst inside TTL read memstats %d times, want 1", reads)
	}

	// Past the TTL the cache refreshes once.
	now = now.Add(memStatsTTL)
	body = scrape()
	if reads != 2 {
		t.Errorf("scrape past TTL read memstats %d times, want 2", reads)
	}
	if !strings.Contains(body, `ldmsd_heap_alloc_bytes{daemon="agg"} 1002`) {
		t.Errorf("post-TTL scrape served stale reading:\n%s", body)
	}

	// A clock that moved backwards (virtual replays) forces a refresh
	// rather than serving from the future.
	now = now.Add(-10 * memStatsTTL)
	scrape()
	if reads != 3 {
		t.Errorf("backwards clock read memstats %d times, want 3", reads)
	}
}

// TestGatewayExpositionHistBuckets checks the cumulative Prometheus
// histogram export: every per-hop pipeline histogram serves
// _bucket/_sum/_count families with monotone cumulative counts, and span
// summaries export as ldmsd_trace_hop_seconds quantiles.
func TestGatewayExpositionHistBuckets(t *testing.T) {
	var p obs.Pipeline
	p.Pull.Record(3 * time.Millisecond)
	p.Pull.Record(5 * time.Millisecond)
	p.Pull.Record(700 * time.Millisecond)
	rec := obs.NewSpanRecorder()
	rec.Record("n1", obs.RoleLeaf, obs.StagePull, time.Millisecond)

	g := &Gateway{
		DaemonName: "agg",
		Sets:       metric.NewRegistry(),
		Latency:    &p,
		Spans:      rec.Snapshot,
		Started:    time.Unix(0, 0),
		Now:        func() time.Time { return time.Unix(1, 0) },
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp := mustGet(t, srv.URL+"/metrics", 200)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)

	if !strings.Contains(text, `# TYPE ldmsd_hop_latency_seconds_bucket counter`) {
		t.Fatalf("no bucket family:\n%s", text)
	}
	// The pull hop's buckets end in a +Inf sample equal to the count.
	var infCount, cumPrev float64
	var bucketLines int
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `ldmsd_hop_latency_seconds_bucket{`) || !strings.Contains(line, `hop="pull"`) {
			continue
		}
		bucketLines++
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < cumPrev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		cumPrev = v
		if strings.Contains(line, `le="+Inf"`) {
			infCount = v
		}
	}
	if bucketLines < 3 {
		t.Fatalf("only %d pull bucket lines:\n%s", bucketLines, text)
	}
	if infCount != 3 {
		t.Errorf("+Inf bucket = %g, want 3", infCount)
	}
	if !strings.Contains(text, `ldmsd_hop_latency_seconds_count{hop="pull",daemon="agg"} 3`) {
		t.Errorf("no _count sample:\n%s", text)
	}
	if !strings.Contains(text, `ldmsd_hop_latency_seconds_sum{hop="pull",daemon="agg"}`) {
		t.Errorf("no _sum sample:\n%s", text)
	}
	// Quantile gauges stay alongside the buckets.
	if !strings.Contains(text, `ldmsd_hop_latency_seconds{quantile="0.5",hop="pull"`) {
		t.Errorf("quantile gauges dropped:\n%s", text)
	}
	// Span summaries export per traced hop.
	if !strings.Contains(text, `ldmsd_trace_hop_seconds{`) ||
		!strings.Contains(text, `hop_daemon="n1"`) {
		t.Errorf("no trace hop export:\n%s", text)
	}
	if !strings.Contains(text, `ldmsd_trace_hop_count{`) {
		t.Errorf("no trace hop count:\n%s", text)
	}
}
