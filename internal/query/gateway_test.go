package query

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"goldms/internal/metric"
)

// testGateway builds a gateway over a two-set registry and a filled window.
func testGateway(t *testing.T, health func() []ProducerHealth) (*Gateway, *httptest.Server) {
	t.Helper()
	reg := metric.NewRegistry()
	w := NewWindow(32, time.Hour)
	for i, name := range []string{"n1/win", "n2/win"} {
		s := testSet(t, name, uint64(i+1))
		sample(s, uint64(10*(i+1)), time.Now())
		if err := reg.Add(s); err != nil {
			t.Fatal(err)
		}
		w.Observe(s)
	}
	g := &Gateway{
		DaemonName: "agg-test",
		Sets:       reg,
		Window:     w,
		Health:     health,
		Started:    time.Now(),
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return g, srv
}

// getJSON fetches a URL and decodes the JSON body.
func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d, want %d (%s)", url, resp.StatusCode, wantCode, body)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return out
}

func TestGatewayDirAndSet(t *testing.T) {
	_, srv := testGateway(t, nil)

	dir := getJSON(t, srv.URL+"/api/v1/dir", 200)
	sets, _ := dir["sets"].([]any)
	if len(sets) != 2 {
		t.Fatalf("dir sets = %d, want 2", len(sets))
	}
	first := sets[0].(map[string]any)
	if first["instance"] != "n1/win" || first["schema"] != "win" || first["consistent"] != true {
		t.Errorf("dir entry = %v", first)
	}

	snap := getJSON(t, srv.URL+"/api/v1/sets/n1/win", 200)
	if snap["consistent"] != true || snap["schema"] != "win" {
		t.Errorf("snapshot = %v", snap)
	}
	metrics := snap["metrics"].([]any)
	if len(metrics) != 2 {
		t.Fatalf("snapshot metrics = %d", len(metrics))
	}
	m0 := metrics[0].(map[string]any)
	if m0["name"] != "a" || m0["value"].(float64) != 10 {
		t.Errorf("metric a = %v", m0)
	}

	getJSON(t, srv.URL+"/api/v1/sets/nope", 404)
}

func TestGatewayMetricsLatest(t *testing.T) {
	_, srv := testGateway(t, nil)

	// Listing mode.
	list := getJSON(t, srv.URL+"/api/v1/metrics", 200)
	names := list["metrics"].([]any)
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("metric names = %v", names)
	}

	latest := getJSON(t, srv.URL+"/api/v1/metrics?metric=a", 200)
	vals := latest["values"].([]any)
	if len(vals) != 2 {
		t.Fatalf("latest values = %d, want 2", len(vals))
	}
	v1 := vals[1].(map[string]any)
	if v1["instance"] != "n2/win" || v1["value"].(float64) != 20 {
		t.Errorf("latest n2 = %v", v1)
	}

	// Component filter.
	one := getJSON(t, srv.URL+"/api/v1/metrics?metric=a&comp=1", 200)
	if vals := one["values"].([]any); len(vals) != 1 {
		t.Fatalf("comp filter values = %d, want 1", len(vals))
	}
	getJSON(t, srv.URL+"/api/v1/metrics?metric=a&comp=zzz", 400)
}

func TestGatewaySeries(t *testing.T) {
	_, srv := testGateway(t, nil)

	got := getJSON(t, srv.URL+"/api/v1/series?metric=a&window=10m", 200)
	series := got["series"].([]any)
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	s0 := series[0].(map[string]any)
	pts := s0["points"].([]any)
	if len(pts) != 1 {
		t.Fatalf("points = %d, want 1", len(pts))
	}
	if got["window"] != "10m0s" {
		t.Errorf("window echo = %v", got["window"])
	}

	getJSON(t, srv.URL+"/api/v1/series", 400)
	getJSON(t, srv.URL+"/api/v1/series?metric=a&window=bogus", 400)

	// No window configured: series is a 503, the live endpoints still work.
	reg := metric.NewRegistry()
	g2 := &Gateway{DaemonName: "bare", Sets: reg}
	srv2 := httptest.NewServer(g2.Handler())
	defer srv2.Close()
	getJSON(t, srv2.URL+"/api/v1/series?metric=a", 503)
	getJSON(t, srv2.URL+"/api/v1/dir", 200)
}

func TestGatewayHealthz(t *testing.T) {
	healthy := []ProducerHealth{
		{Name: "p1", State: "CONNECTED", Active: true, LastUpdate: time.Now()},
	}
	_, srv := testGateway(t, func() []ProducerHealth { return healthy })

	ok := getJSON(t, srv.URL+"/healthz", 200)
	if ok["status"] != "ok" {
		t.Errorf("status = %v", ok["status"])
	}

	healthy = append(healthy, ProducerHealth{Name: "p2", State: "CONNECTED", Active: true, Stale: true, ConsecutiveErrors: 5})
	degraded := getJSON(t, srv.URL+"/healthz", 503)
	if degraded["status"] != "degraded" {
		t.Errorf("status = %v", degraded["status"])
	}
	stale := degraded["stale"].([]any)
	if len(stale) != 1 || stale[0] != "p2" {
		t.Errorf("stale = %v", stale)
	}
}

func TestGatewayExposition(t *testing.T) {
	g, srv := testGateway(t, nil)
	g.Collect = func(e *Expo) {
		e.Counter("ldmsd_updater_passes_total", "Update passes.", []Label{{"updtr", "u1"}}, 42)
	}
	// Generate one API hit so the request counter is non-zero.
	getJSON(t, srv.URL+"/api/v1/dir", 200)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE ldmsd_http_requests_total counter",
		`ldmsd_http_requests_total{endpoint="/api/v1/dir",daemon="agg-test"} 1`,
		"# TYPE ldmsd_window_series gauge",
		`ldmsd_window_series{daemon="agg-test"} 4`,
		`ldmsd_updater_passes_total{updtr="u1"} 42`,
		"ldmsd_goroutines{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestExpoFormat(t *testing.T) {
	e := NewExpo()
	e.Counter("x_total", "Things.", []Label{{"a", `q"uo\te`}}, 3)
	e.Counter("x_total", "Things.", []Label{{"a", "two"}}, 4.5)
	e.Gauge("y", "", nil, 2)
	got := e.String()
	want := "# HELP x_total Things.\n# TYPE x_total counter\n" +
		`x_total{a="q\"uo\\te"} 3` + "\n" +
		`x_total{a="two"} 4.5` + "\n" +
		"# TYPE y gauge\ny 2\n"
	if got != want {
		t.Errorf("exposition:\n%q\nwant:\n%q", got, want)
	}
}

// testGatewayHistory builds a gateway whose window holds 3 producers ×
// 8 samples at a 1 s cadence (a = comp*100 + i), for step/aggregate tests.
func testGatewayHistory(t *testing.T) (*httptest.Server, time.Time) {
	t.Helper()
	reg := metric.NewRegistry()
	w := NewWindowOpts(WindowOptions{Points: 64, Retention: time.Hour, Shards: 4, Compress: true})
	base := time.Now().Truncate(4 * time.Second).Add(-time.Minute)
	for p := 1; p <= 3; p++ {
		s := testSet(t, fmt.Sprintf("n%d/win", p), uint64(p))
		if err := reg.Add(s); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			sample(s, uint64(p*100+i), base.Add(time.Duration(i)*time.Second))
			w.Observe(s)
		}
	}
	g := &Gateway{DaemonName: "agg-test", Sets: reg, Window: w, Started: time.Now()}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return srv, base
}

func TestGatewaySeriesStep(t *testing.T) {
	srv, _ := testGatewayHistory(t)

	// Raw: 8 points per series.
	raw := getJSON(t, srv.URL+"/api/v1/series?metric=a&window=10m", 200)
	if pts := raw["series"].([]any)[0].(map[string]any)["points"].([]any); len(pts) != 8 {
		t.Fatalf("raw points = %d, want 8", len(pts))
	}

	// step=4s downsamples each series to 2 buckets; avg is the default.
	ds := getJSON(t, srv.URL+"/api/v1/series?metric=a&window=10m&step=4s", 200)
	if ds["step"] != "4s" || ds["agg"] != "avg" {
		t.Fatalf("step/agg echo = %v/%v", ds["step"], ds["agg"])
	}
	series := ds["series"].([]any)
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3", len(series))
	}
	s0 := series[0].(map[string]any)
	pts := s0["points"].([]any)
	if len(pts) != 2 {
		t.Fatalf("downsampled points = %d, want 2", len(pts))
	}
	// comp 1: buckets avg(100..103)=101.5 and avg(104..107)=105.5.
	if v := pts[0].(map[string]any)["value"].(float64); v != 101.5 {
		t.Errorf("bucket 0 = %v, want 101.5", v)
	}
	if v := pts[1].(map[string]any)["value"].(float64); v != 105.5 {
		t.Errorf("bucket 1 = %v, want 105.5", v)
	}

	// agg=last keeps raw newest-per-bucket points.
	last := getJSON(t, srv.URL+"/api/v1/series?metric=a&window=10m&step=4s&agg=last", 200)
	lp := last["series"].([]any)[0].(map[string]any)["points"].([]any)
	if v := lp[0].(map[string]any)["value"].(float64); v != 103 {
		t.Errorf("last bucket 0 = %v, want 103", v)
	}

	getJSON(t, srv.URL+"/api/v1/series?metric=a&step=bogus", 400)
	getJSON(t, srv.URL+"/api/v1/series?metric=a&step=-3s", 400)
	getJSON(t, srv.URL+"/api/v1/series?metric=a&step=4s&agg=median", 400)
	getJSON(t, srv.URL+"/api/v1/series?metric=a&step=4s&agg=quantile&q=7", 400)
}

func TestGatewayAggregate(t *testing.T) {
	srv, _ := testGatewayHistory(t)

	// Whole-window sum across 3 producers.
	sum := getJSON(t, srv.URL+"/api/v1/aggregate?metric=a&window=10m&func=sum", 200)
	if sum["func"] != "sum" || sum["series_count"].(float64) != 3 {
		t.Fatalf("aggregate header = %v", sum)
	}
	pts := sum["points"].([]any)
	if len(pts) != 1 {
		t.Fatalf("whole-window buckets = %d, want 1", len(pts))
	}
	p0 := pts[0].(map[string]any)
	// sum over p=1..3, i=0..7 of p*100+i = 100*6*8 + 3*28.
	if want := float64(100*6*8 + 3*28); p0["value"].(float64) != want {
		t.Errorf("sum = %v, want %v", p0["value"], want)
	}
	if p0["count"].(float64) != 24 {
		t.Errorf("count = %v, want 24", p0["count"])
	}

	// Stepped max: 2 buckets, max of comp 3's run.
	mx := getJSON(t, srv.URL+"/api/v1/aggregate?metric=a&window=10m&func=max&step=4s", 200)
	if mx["step"] != "4s" {
		t.Fatalf("step echo = %v", mx["step"])
	}
	mpts := mx["points"].([]any)
	if len(mpts) != 2 {
		t.Fatalf("stepped buckets = %d, want 2", len(mpts))
	}
	if v := mpts[1].(map[string]any)["value"].(float64); v != 307 {
		t.Errorf("bucket 1 max = %v, want 307", v)
	}

	// Quantile echoes q; default func is avg; comp filter applies.
	qn := getJSON(t, srv.URL+"/api/v1/aggregate?metric=a&window=10m&func=quantile&q=1", 200)
	if qn["q"].(float64) != 1 || qn["points"].([]any)[0].(map[string]any)["value"].(float64) != 307 {
		t.Fatalf("quantile result = %v", qn)
	}
	one := getJSON(t, srv.URL+"/api/v1/aggregate?metric=a&window=10m&comp=2", 200)
	if one["series_count"].(float64) != 1 || one["func"] != "avg" {
		t.Fatalf("comp-filtered aggregate = %v", one)
	}

	// Errors.
	getJSON(t, srv.URL+"/api/v1/aggregate", 400)
	getJSON(t, srv.URL+"/api/v1/aggregate?metric=a&func=median", 400)
	getJSON(t, srv.URL+"/api/v1/aggregate?metric=a&q=2", 400)
	getJSON(t, srv.URL+"/api/v1/aggregate?metric=a&comp=zzz", 400)
	getJSON(t, srv.URL+"/api/v1/aggregate?metric=a&window=bogus", 400)
	getJSON(t, srv.URL+"/api/v1/aggregate?metric=a&step=bogus", 400)

	// No window configured: 503.
	g2 := &Gateway{DaemonName: "bare", Sets: metric.NewRegistry()}
	srv2 := httptest.NewServer(g2.Handler())
	defer srv2.Close()
	getJSON(t, srv2.URL+"/api/v1/aggregate?metric=a", 503)
}

// TestGatewayExpositionWindowKnobs asserts the new shard/compression
// gauges and the aggregate counter reach /metrics.
func TestGatewayExpositionWindowKnobs(t *testing.T) {
	srv, _ := testGatewayHistory(t)
	getJSON(t, srv.URL+"/api/v1/aggregate?metric=a&window=10m", 200)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`ldmsd_window_shards{daemon="agg-test"} 4`,
		`ldmsd_window_compressed{daemon="agg-test"} 1`,
		`ldmsd_window_aggregates_total{daemon="agg-test"} 1`,
		"# TYPE ldmsd_window_points gauge",
		"# TYPE ldmsd_window_bytes gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
