package query

// Server-side aggregation over the recent window: downsampling one
// series to a step grid, and folding a metric across every producer
// into a single series (sum/avg/min/max/count/quantile per time
// bucket). This is the CMS-monitoring trick — push the reduction to the
// server so a dashboard watching 64 producers issues one request whose
// response is O(buckets), not 64 requests whose responses are
// O(points × producers).

import (
	"fmt"
	"sort"
	"time"

	"goldms/internal/metric"
)

// AggPoint is one aggregated time bucket.
type AggPoint struct {
	Time  time.Time // bucket start (or newest sample time when step == 0)
	Value float64
	Count int // samples folded into the bucket
}

// AggResult is one cross-producer aggregate query answer.
type AggResult struct {
	Metric      string
	Func        string
	Step        time.Duration // 0 = one bucket over the whole window
	SeriesCount int           // series folded together
	Points      []AggPoint    // ascending time order
}

// ValidAggFunc reports whether name is a supported aggregation
// function: sum, avg, min, max, count, or quantile (which takes q).
func ValidAggFunc(name string) bool {
	switch name {
	case "sum", "avg", "min", "max", "count", "quantile":
		return true
	}
	return false
}

// Aggregate folds the named metric across every matching producer
// (comp == 0 matches all) into one series: samples at or after since
// are grouped into step-wide buckets (step <= 0 folds the whole window
// into a single bucket) and reduced by fn. q is the quantile for
// fn == "quantile" (e.g. 0.99), ignored otherwise.
func (w *Window) Aggregate(metricName string, comp uint64, since time.Time, step time.Duration, fn string, q float64) (AggResult, error) {
	if !ValidAggFunc(fn) {
		return AggResult{}, fmt.Errorf("query: unknown aggregate func %q (want sum, avg, min, max, count, quantile)", fn)
	}
	if fn == "quantile" && (q < 0 || q > 1) {
		return AggResult{}, fmt.Errorf("query: quantile q=%g out of range [0, 1]", q)
	}
	series := w.Query(metricName, comp, since)
	w.aggregates.Add(1)

	res := AggResult{Metric: metricName, Func: fn, Step: step, SeriesCount: len(series)}
	if len(series) == 0 {
		return res, nil
	}

	buckets := make(map[int64]*aggBucket)
	keep := fn == "quantile"
	var newest int64
	for _, s := range series {
		for _, p := range s.Points {
			ts := p.Time.UnixNano()
			if ts > newest {
				newest = ts
			}
			foldInto(buckets, bucketKey(ts, step), p.Value.F64(), keep)
		}
	}
	keys := make([]int64, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

	res.Points = make([]AggPoint, len(keys))
	for i, k := range keys {
		b := buckets[k]
		at := k
		if step <= 0 {
			// Single whole-window bucket: stamp it with the newest
			// sample folded in rather than a synthetic epoch.
			at = newest
		}
		res.Points[i] = AggPoint{Time: time.Unix(0, at), Value: b.value(fn, q), Count: b.count}
	}
	return res, nil
}

// Downsample reduces one series to a step grid: each bucket becomes a
// single point reduced by fn ("last" keeps the newest raw point and its
// type; the computed funcs produce float64 points stamped at the bucket
// start). A step <= 0 returns the series unchanged.
func Downsample(s Series, step time.Duration, fn string, q float64) Series {
	if step <= 0 || len(s.Points) == 0 {
		return s
	}
	if fn == "last" {
		out := s
		out.Points = nil
		for i, p := range s.Points {
			// Points are time-ascending, so the last of each bucket run
			// is the bucket's newest sample.
			if i+1 == len(s.Points) || bucketKey(s.Points[i+1].Time.UnixNano(), step) != bucketKey(p.Time.UnixNano(), step) {
				out.Points = append(out.Points, p)
			}
		}
		return out
	}
	out := s
	out.Type = metric.TypeD64
	out.Points = nil
	var b aggBucket
	cur := bucketKey(s.Points[0].Time.UnixNano(), step)
	flush := func(key int64) {
		if b.count > 0 {
			out.Points = append(out.Points, Point{
				Time:  time.Unix(0, key),
				Value: metric.F64Value(b.value(fn, q)),
			})
		}
		b = aggBucket{}
	}
	for _, p := range s.Points {
		key := bucketKey(p.Time.UnixNano(), step)
		if key != cur {
			flush(cur)
			cur = key
		}
		b.add(p.Value.F64(), fn == "quantile")
	}
	flush(cur)
	return out
}

// bucketKey floors a unix-nano timestamp onto its step grid. step <= 0
// collapses everything into bucket 0.
func bucketKey(ts int64, step time.Duration) int64 {
	sn := int64(step)
	if sn <= 0 {
		return 0
	}
	rem := ts % sn
	if rem < 0 {
		rem += sn
	}
	return ts - rem
}

// aggBucket accumulates one time bucket's samples.
type aggBucket struct {
	sum   float64
	min   float64
	max   float64
	count int
	vals  []float64 // only kept for quantile
}

// foldInto adds v into the bucket at key, creating it on first touch.
func foldInto(buckets map[int64]*aggBucket, key int64, v float64, keep bool) {
	b := buckets[key]
	if b == nil {
		b = &aggBucket{}
		buckets[key] = b
	}
	b.add(v, keep)
}

// add accumulates one sample.
func (b *aggBucket) add(v float64, keep bool) {
	if b.count == 0 || v < b.min {
		b.min = v
	}
	if b.count == 0 || v > b.max {
		b.max = v
	}
	b.sum += v
	b.count++
	if keep {
		b.vals = append(b.vals, v)
	}
}

// value reduces the bucket by fn.
func (b *aggBucket) value(fn string, q float64) float64 {
	switch fn {
	case "sum":
		return b.sum
	case "avg":
		if b.count == 0 {
			return 0
		}
		return b.sum / float64(b.count)
	case "min":
		return b.min
	case "max":
		return b.max
	case "count":
		return float64(b.count)
	case "quantile":
		return quantile(b.vals, q)
	}
	return 0
}

// quantile returns the q-th (0..1) nearest-rank quantile of vals.
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	i := int(q * float64(len(vals)-1))
	return vals[i]
}
