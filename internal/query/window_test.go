package query

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"goldms/internal/metric"
)

// testSet builds a consistent two-metric set.
func testSet(t testing.TB, instance string, comp uint64) *metric.Set {
	t.Helper()
	sch := metric.NewSchema("win")
	sch.MustAddMetric("a", metric.TypeU64)
	sch.MustAddMetric("b", metric.TypeD64)
	set, err := metric.New(instance, sch, metric.WithCompID(comp))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// sample writes one consistent sample (a=v, b=v/2) at time ts.
func sample(set *metric.Set, v uint64, ts time.Time) {
	set.BeginTransaction()
	set.SetU64(0, v)
	set.SetF64(1, float64(v)/2)
	set.EndTransaction(ts)
}

func TestWindowObserveAndQuery(t *testing.T) {
	w := NewWindow(16, time.Hour)
	s1 := testSet(t, "n1/win", 1)
	s2 := testSet(t, "n2/win", 2)
	base := time.Now()
	for i := 0; i < 5; i++ {
		sample(s1, uint64(i), base.Add(time.Duration(i)*time.Second))
		w.Observe(s1)
		sample(s2, uint64(100+i), base.Add(time.Duration(i)*time.Second))
		w.Observe(s2)
	}

	series := w.Query("a", 0, base.Add(-time.Minute))
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	if series[0].Instance != "n1/win" || series[1].Instance != "n2/win" {
		t.Fatalf("series order: %q, %q", series[0].Instance, series[1].Instance)
	}
	if got := len(series[0].Points); got != 5 {
		t.Fatalf("points = %d, want 5", got)
	}
	for i, p := range series[0].Points {
		if p.Value.U64() != uint64(i) {
			t.Errorf("point %d = %d, want %d", i, p.Value.U64(), i)
		}
	}

	// Component filter.
	series = w.Query("a", 2, base.Add(-time.Minute))
	if len(series) != 1 || series[0].CompID != 2 {
		t.Fatalf("comp filter: got %d series", len(series))
	}
	if series[0].Points[4].Value.U64() != 104 {
		t.Errorf("comp-2 last point = %d, want 104", series[0].Points[4].Value.U64())
	}

	// Float metric keeps its type.
	series = w.Query("b", 1, base.Add(-time.Minute))
	if len(series) != 1 || series[0].Type != metric.TypeD64 {
		t.Fatalf("float series missing")
	}
	if got := series[0].Points[4].Value.F64(); got != 2 {
		t.Errorf("b last = %g, want 2", got)
	}
}

func TestWindowSkipsInconsistentAndStale(t *testing.T) {
	w := NewWindow(8, time.Hour)
	s := testSet(t, "n1/win", 1)

	// Never sampled: inconsistent, dropped.
	w.Observe(s)
	if st := w.Stats(); st.Observed != 0 || st.Skipped != 1 {
		t.Fatalf("inconsistent not dropped: %+v", st)
	}

	sample(s, 7, time.Now())
	w.Observe(s)
	// Same DGN again: stale, dropped.
	w.Observe(s)
	st := w.Stats()
	if st.Observed != 1 || st.Skipped != 2 {
		t.Fatalf("stale not dropped: %+v", st)
	}

	// Mid-transaction observation is dropped too.
	s.BeginTransaction()
	s.SetU64(0, 8)
	w.Observe(s)
	if st := w.Stats(); st.Observed != 1 || st.Skipped != 3 {
		t.Fatalf("torn sample not dropped: %+v", st)
	}
	s.EndTransaction(time.Now())
	w.Observe(s)
	if st := w.Stats(); st.Observed != 2 {
		t.Fatalf("fresh sample after transaction not recorded: %+v", st)
	}
}

func TestWindowRingWrapsAndTrims(t *testing.T) {
	w := NewWindow(4, time.Hour)
	s := testSet(t, "n1/win", 1)
	// Whole-second base: set timestamps round to microseconds, so a
	// nanosecond-precision bound would straddle the stored values.
	base := time.Now().Truncate(time.Second)
	for i := 0; i < 10; i++ {
		sample(s, uint64(i), base.Add(time.Duration(i)*time.Second))
		w.Observe(s)
	}
	series := w.Query("a", 0, base.Add(-time.Minute))
	if len(series) != 1 {
		t.Fatal("missing series")
	}
	pts := series[0].Points
	if len(pts) != 4 {
		t.Fatalf("ring kept %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := uint64(6 + i); p.Value.U64() != want {
			t.Errorf("point %d = %d, want %d", i, p.Value.U64(), want)
		}
	}

	// A since-bound inside the ring trims older points.
	series = w.Query("a", 0, base.Add(8*time.Second))
	if got := len(series[0].Points); got != 2 {
		t.Fatalf("since filter kept %d points, want 2", got)
	}
}

func TestWindowLatest(t *testing.T) {
	w := NewWindow(8, time.Hour)
	s1 := testSet(t, "n1/win", 1)
	s2 := testSet(t, "n2/win", 2)
	sample(s1, 41, time.Now())
	sample(s2, 42, time.Now())
	w.Observe(s1)
	w.Observe(s2)
	latest := w.Latest("a", 0)
	if len(latest) != 2 {
		t.Fatalf("latest series = %d, want 2", len(latest))
	}
	if latest[0].Points[0].Value.U64() != 41 || latest[1].Points[0].Value.U64() != 42 {
		t.Errorf("latest values wrong: %v %v", latest[0].Points, latest[1].Points)
	}
	if names := w.MetricNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("MetricNames = %v", names)
	}
}

func TestWindowForget(t *testing.T) {
	w := NewWindow(8, time.Hour)
	s := testSet(t, "n1/win", 1)
	sample(s, 1, time.Now())
	w.Observe(s)
	w.Forget("n1/win")
	if got := w.Query("a", 0, time.Now().Add(-time.Minute)); len(got) != 0 {
		t.Fatalf("forgotten series still served: %d", len(got))
	}
}

// TestWindowConcurrentObserveAndQuery races writers (update passes) against
// readers (gateway queries); run under -race.
func TestWindowConcurrentObserveAndQuery(t *testing.T) {
	w := NewWindow(64, time.Hour)
	const sets = 8
	all := make([]*metric.Set, sets)
	for i := range all {
		all[i] = testSet(t, fmt.Sprintf("n%d/win", i), uint64(i+1))
		sample(all[i], 0, time.Now())
		w.Observe(all[i])
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range all {
		wg.Add(1)
		go func(s *metric.Set) {
			defer wg.Done()
			v := uint64(1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				sample(s, v, time.Now())
				w.Observe(s)
				v++
			}
		}(all[i])
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.Query("a", 0, time.Now().Add(-time.Minute))
				w.Latest("b", 0)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if st := w.Stats(); st.Observed == 0 || st.Queries == 0 {
		t.Fatalf("no concurrent progress: %+v", st)
	}
}

// TestWindowQueryClockRetentionFloor pins the retention floor to the
// window's injected clock. Before SetClock existed, Query pruned against
// time.Now(): a virtual-time daemon whose samples carry simulated
// timestamps (e.g. 1970s epochs) would find every point "older than
// retention" and serve nothing.
func TestWindowQueryClockRetentionFloor(t *testing.T) {
	w := NewWindow(16, time.Minute)
	base := time.Unix(90000, 0) // simulated epoch, decades outside wall-clock retention
	clock := base
	w.SetClock(func() time.Time { return clock })

	s := testSet(t, "n1/win", 1)
	for i := 0; i < 5; i++ {
		sample(s, uint64(i), base.Add(time.Duration(i)*time.Second))
		w.Observe(s)
	}
	clock = base.Add(5 * time.Second)

	got := w.Query("a", 0, time.Unix(0, 0))
	if len(got) != 1 || len(got[0].Points) != 5 {
		t.Fatalf("query on the virtual clock = %+v, want one series with all 5 points", got)
	}

	// Advancing the virtual clock past retention ages the points out.
	clock = base.Add(time.Minute + 10*time.Second)
	if got := w.Query("a", 0, time.Unix(0, 0)); len(got) != 0 {
		t.Fatalf("points older than retention on the virtual clock still served: %+v", got)
	}
}
