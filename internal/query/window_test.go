package query

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"goldms/internal/metric"
)

// testSet builds a consistent two-metric set.
func testSet(t testing.TB, instance string, comp uint64) *metric.Set {
	t.Helper()
	sch := metric.NewSchema("win")
	sch.MustAddMetric("a", metric.TypeU64)
	sch.MustAddMetric("b", metric.TypeD64)
	set, err := metric.New(instance, sch, metric.WithCompID(comp))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// sample writes one consistent sample (a=v, b=v/2) at time ts.
func sample(set *metric.Set, v uint64, ts time.Time) {
	set.BeginTransaction()
	set.SetU64(0, v)
	set.SetF64(1, float64(v)/2)
	set.EndTransaction(ts)
}

func TestWindowObserveAndQuery(t *testing.T) {
	w := NewWindow(16, time.Hour)
	s1 := testSet(t, "n1/win", 1)
	s2 := testSet(t, "n2/win", 2)
	base := time.Now()
	for i := 0; i < 5; i++ {
		sample(s1, uint64(i), base.Add(time.Duration(i)*time.Second))
		w.Observe(s1)
		sample(s2, uint64(100+i), base.Add(time.Duration(i)*time.Second))
		w.Observe(s2)
	}

	series := w.Query("a", 0, base.Add(-time.Minute))
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	if series[0].Instance != "n1/win" || series[1].Instance != "n2/win" {
		t.Fatalf("series order: %q, %q", series[0].Instance, series[1].Instance)
	}
	if got := len(series[0].Points); got != 5 {
		t.Fatalf("points = %d, want 5", got)
	}
	for i, p := range series[0].Points {
		if p.Value.U64() != uint64(i) {
			t.Errorf("point %d = %d, want %d", i, p.Value.U64(), i)
		}
	}

	// Component filter.
	series = w.Query("a", 2, base.Add(-time.Minute))
	if len(series) != 1 || series[0].CompID != 2 {
		t.Fatalf("comp filter: got %d series", len(series))
	}
	if series[0].Points[4].Value.U64() != 104 {
		t.Errorf("comp-2 last point = %d, want 104", series[0].Points[4].Value.U64())
	}

	// Float metric keeps its type.
	series = w.Query("b", 1, base.Add(-time.Minute))
	if len(series) != 1 || series[0].Type != metric.TypeD64 {
		t.Fatalf("float series missing")
	}
	if got := series[0].Points[4].Value.F64(); got != 2 {
		t.Errorf("b last = %g, want 2", got)
	}
}

func TestWindowSkipsInconsistentAndStale(t *testing.T) {
	w := NewWindow(8, time.Hour)
	s := testSet(t, "n1/win", 1)

	// Never sampled: inconsistent, dropped.
	w.Observe(s)
	if st := w.Stats(); st.Observed != 0 || st.Skipped != 1 {
		t.Fatalf("inconsistent not dropped: %+v", st)
	}

	sample(s, 7, time.Now())
	w.Observe(s)
	// Same DGN again: stale, dropped.
	w.Observe(s)
	st := w.Stats()
	if st.Observed != 1 || st.Skipped != 2 {
		t.Fatalf("stale not dropped: %+v", st)
	}

	// Mid-transaction observation is dropped too.
	s.BeginTransaction()
	s.SetU64(0, 8)
	w.Observe(s)
	if st := w.Stats(); st.Observed != 1 || st.Skipped != 3 {
		t.Fatalf("torn sample not dropped: %+v", st)
	}
	s.EndTransaction(time.Now())
	w.Observe(s)
	if st := w.Stats(); st.Observed != 2 {
		t.Fatalf("fresh sample after transaction not recorded: %+v", st)
	}
}

func TestWindowRingWrapsAndTrims(t *testing.T) {
	w := NewWindow(4, time.Hour)
	s := testSet(t, "n1/win", 1)
	// Whole-second base: set timestamps round to microseconds, so a
	// nanosecond-precision bound would straddle the stored values.
	base := time.Now().Truncate(time.Second)
	for i := 0; i < 10; i++ {
		sample(s, uint64(i), base.Add(time.Duration(i)*time.Second))
		w.Observe(s)
	}
	series := w.Query("a", 0, base.Add(-time.Minute))
	if len(series) != 1 {
		t.Fatal("missing series")
	}
	pts := series[0].Points
	if len(pts) != 4 {
		t.Fatalf("ring kept %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := uint64(6 + i); p.Value.U64() != want {
			t.Errorf("point %d = %d, want %d", i, p.Value.U64(), want)
		}
	}

	// A since-bound inside the ring trims older points.
	series = w.Query("a", 0, base.Add(8*time.Second))
	if got := len(series[0].Points); got != 2 {
		t.Fatalf("since filter kept %d points, want 2", got)
	}
}

func TestWindowLatest(t *testing.T) {
	w := NewWindow(8, time.Hour)
	s1 := testSet(t, "n1/win", 1)
	s2 := testSet(t, "n2/win", 2)
	sample(s1, 41, time.Now())
	sample(s2, 42, time.Now())
	w.Observe(s1)
	w.Observe(s2)
	latest := w.Latest("a", 0)
	if len(latest) != 2 {
		t.Fatalf("latest series = %d, want 2", len(latest))
	}
	if latest[0].Points[0].Value.U64() != 41 || latest[1].Points[0].Value.U64() != 42 {
		t.Errorf("latest values wrong: %v %v", latest[0].Points, latest[1].Points)
	}
	if names := w.MetricNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("MetricNames = %v", names)
	}
}

func TestWindowForget(t *testing.T) {
	w := NewWindow(8, time.Hour)
	s := testSet(t, "n1/win", 1)
	sample(s, 1, time.Now())
	w.Observe(s)
	w.Forget("n1/win")
	if got := w.Query("a", 0, time.Now().Add(-time.Minute)); len(got) != 0 {
		t.Fatalf("forgotten series still served: %d", len(got))
	}
}

// TestWindowConcurrentObserveAndQuery races writers (update passes) against
// readers (gateway queries); run under -race.
func TestWindowConcurrentObserveAndQuery(t *testing.T) {
	w := NewWindow(64, time.Hour)
	const sets = 8
	all := make([]*metric.Set, sets)
	for i := range all {
		all[i] = testSet(t, fmt.Sprintf("n%d/win", i), uint64(i+1))
		sample(all[i], 0, time.Now())
		w.Observe(all[i])
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range all {
		wg.Add(1)
		go func(s *metric.Set) {
			defer wg.Done()
			v := uint64(1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				sample(s, v, time.Now())
				w.Observe(s)
				v++
			}
		}(all[i])
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.Query("a", 0, time.Now().Add(-time.Minute))
				w.Latest("b", 0)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if st := w.Stats(); st.Observed == 0 || st.Queries == 0 {
		t.Fatalf("no concurrent progress: %+v", st)
	}
}

// TestWindowQueryClockRetentionFloor pins the retention floor to the
// window's injected clock. Before SetClock existed, Query pruned against
// time.Now(): a virtual-time daemon whose samples carry simulated
// timestamps (e.g. 1970s epochs) would find every point "older than
// retention" and serve nothing.
func TestWindowQueryClockRetentionFloor(t *testing.T) {
	w := NewWindow(16, time.Minute)
	base := time.Unix(90000, 0) // simulated epoch, decades outside wall-clock retention
	clock := base
	w.SetClock(func() time.Time { return clock })

	s := testSet(t, "n1/win", 1)
	for i := 0; i < 5; i++ {
		sample(s, uint64(i), base.Add(time.Duration(i)*time.Second))
		w.Observe(s)
	}
	clock = base.Add(5 * time.Second)

	got := w.Query("a", 0, time.Unix(0, 0))
	if len(got) != 1 || len(got[0].Points) != 5 {
		t.Fatalf("query on the virtual clock = %+v, want one series with all 5 points", got)
	}

	// Advancing the virtual clock past retention ages the points out.
	clock = base.Add(time.Minute + 10*time.Second)
	if got := w.Query("a", 0, time.Unix(0, 0)); len(got) != 0 {
		t.Fatalf("points older than retention on the virtual clock still served: %+v", got)
	}
}

// TestWindowCompressedMatchesRings runs every mode-sensitive path in
// both storage modes and asserts identical served results.
func TestWindowCompressedMatchesRings(t *testing.T) {
	base := time.Now().Truncate(time.Second)
	build := func(compress bool) *Window {
		w := NewWindowOpts(WindowOptions{Points: 300, Retention: time.Hour, Compress: compress})
		for p := 1; p <= 3; p++ {
			s := testSet(t, fmt.Sprintf("n%d/win", p), uint64(p))
			for i := 0; i < 250; i++ {
				sample(s, uint64(p*1000+i), base.Add(time.Duration(i)*time.Second))
				w.Observe(s)
			}
		}
		return w
	}
	plain, comp := build(false), build(true)
	if !comp.Compressed() || plain.Compressed() {
		t.Fatal("Compressed() flag wrong")
	}
	for _, since := range []time.Time{
		base.Add(-time.Minute),
		base.Add(100 * time.Second),
		base.Add(249 * time.Second),
		base.Add(10 * time.Minute),
	} {
		a := plain.Query("a", 0, since)
		b := comp.Query("a", 0, since)
		if len(a) != len(b) {
			t.Fatalf("since %v: %d vs %d series", since, len(a), len(b))
		}
		for i := range a {
			if len(a[i].Points) != len(b[i].Points) {
				t.Fatalf("since %v series %d: %d vs %d points", since, i, len(a[i].Points), len(b[i].Points))
			}
			for j := range a[i].Points {
				pa, pb := a[i].Points[j], b[i].Points[j]
				if !pa.Time.Equal(pb.Time) || pa.Value.Bits != pb.Value.Bits {
					t.Fatalf("since %v series %d point %d: %v/%#x vs %v/%#x",
						since, i, j, pa.Time, pa.Value.Bits, pb.Time, pb.Value.Bits)
				}
			}
		}
	}
	la, lb := plain.Latest("b", 0), comp.Latest("b", 0)
	if len(la) != 3 || len(lb) != 3 {
		t.Fatalf("latest: %d vs %d series", len(la), len(lb))
	}
	for i := range la {
		if la[i].Points[0].Value.Bits != lb[i].Points[0].Value.Bits {
			t.Fatalf("latest series %d differs", i)
		}
	}
}

// TestWindowEmptyQuery pins the empty-window sort.Search cut: a series
// block that exists but has recorded nothing must serve nil, and a bound
// past the newest point must serve nothing rather than everything.
func TestWindowEmptyQuery(t *testing.T) {
	for _, compress := range []bool{false, true} {
		w := NewWindowOpts(WindowOptions{Points: 8, Retention: time.Hour, Compress: compress})
		if got := w.Query("a", 0, time.Now().Add(-time.Minute)); got != nil {
			t.Fatalf("compress=%v: empty window served %v", compress, got)
		}
		if got := w.Latest("a", 0); got != nil {
			t.Fatalf("compress=%v: empty window Latest served %v", compress, got)
		}
		s := testSet(t, "n1/win", 1)
		ts := time.Now().Truncate(time.Second)
		sample(s, 9, ts)
		w.Observe(s)
		// Bound strictly after the only point: no series at all.
		if got := w.Query("a", 0, ts.Add(time.Second)); len(got) != 0 {
			t.Fatalf("compress=%v: future bound served %v", compress, got)
		}
	}
}

// TestWindowWrapAtExactCapacity pins the wraparound boundary: exactly
// `points` pushes must serve all points, one more must evict exactly one.
func TestWindowWrapAtExactCapacity(t *testing.T) {
	const capN = 8
	w := NewWindow(capN, time.Hour)
	s := testSet(t, "n1/win", 1)
	base := time.Now().Truncate(time.Second)
	for i := 0; i < capN; i++ {
		sample(s, uint64(i), base.Add(time.Duration(i)*time.Second))
		w.Observe(s)
	}
	got := w.Query("a", 0, base.Add(-time.Minute))
	if len(got) != 1 || len(got[0].Points) != capN {
		t.Fatalf("at capacity: served %d series / %d points, want 1/%d", len(got), len(got[0].Points), capN)
	}
	if got[0].Points[0].Value.U64() != 0 || got[0].Points[capN-1].Value.U64() != capN-1 {
		t.Fatalf("at capacity: endpoints %d..%d", got[0].Points[0].Value.U64(), got[0].Points[capN-1].Value.U64())
	}
	// One more push wraps: oldest point evicted, newest present.
	sample(s, capN, base.Add(capN*time.Second))
	w.Observe(s)
	got = w.Query("a", 0, base.Add(-time.Minute))
	pts := got[0].Points
	if len(pts) != capN {
		t.Fatalf("after wrap: %d points, want %d", len(pts), capN)
	}
	if pts[0].Value.U64() != 1 || pts[capN-1].Value.U64() != capN {
		t.Fatalf("after wrap: endpoints %d..%d, want 1..%d", pts[0].Value.U64(), pts[capN-1].Value.U64(), capN)
	}
}

// TestWindowStaleDGNCompressed pins the DGN-stale filter in compressed
// mode: re-observing an unchanged set must not grow compressed history.
func TestWindowStaleDGNCompressed(t *testing.T) {
	w := NewWindowOpts(WindowOptions{Points: 256, Retention: time.Hour, Compress: true})
	s := testSet(t, "n1/win", 1)
	sample(s, 7, time.Now())
	w.Observe(s)
	for i := 0; i < 10; i++ {
		w.Observe(s) // same DGN: all dropped
	}
	st := w.Stats()
	if st.Observed != 1 || st.Skipped != 10 {
		t.Fatalf("stale filter: %+v", st)
	}
	got := w.Query("a", 0, time.Now().Add(-time.Minute))
	if len(got) != 1 || len(got[0].Points) != 1 {
		t.Fatalf("stale observes leaked into history: %+v", got)
	}
}

// TestWindowShardOptions pins shard-count rounding and distribution.
func TestWindowShardOptions(t *testing.T) {
	if got := NewWindowOpts(WindowOptions{}).Shards(); got != DefaultShards {
		t.Fatalf("default shards = %d, want %d", got, DefaultShards)
	}
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32}} {
		if got := NewWindowOpts(WindowOptions{Shards: tc.in}).Shards(); got != tc.want {
			t.Fatalf("shards %d rounded to %d, want %d", tc.in, got, tc.want)
		}
	}
	// Sets spread across shards and stats still see all of them.
	w := NewWindowOpts(WindowOptions{Shards: 4})
	for i := 0; i < 32; i++ {
		s := testSet(t, fmt.Sprintf("node%02d/win", i), uint64(i+1))
		sample(s, uint64(i), time.Now())
		w.Observe(s)
	}
	used := 0
	for i := range w.shards {
		w.shards[i].mu.RLock()
		if len(w.shards[i].sets) > 0 {
			used++
		}
		w.shards[i].mu.RUnlock()
	}
	if used < 2 {
		t.Fatalf("32 sets landed in %d of 4 shards", used)
	}
	if st := w.Stats(); st.SeriesSets != 32 {
		t.Fatalf("stats sets = %d, want 32", st.SeriesSets)
	}
}

// TestWindowConcurrentAggregate races writers against Query, Latest and
// Aggregate in both storage modes; run under -race.
func TestWindowConcurrentAggregate(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "rings"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			w := NewWindowOpts(WindowOptions{Points: 256, Retention: time.Hour, Compress: compress})
			const sets = 8
			all := make([]*metric.Set, sets)
			for i := range all {
				all[i] = testSet(t, fmt.Sprintf("n%d/win", i), uint64(i+1))
				sample(all[i], 0, time.Now())
				w.Observe(all[i])
			}
			// Fixed iteration counts on both sides: unbounded spinning
			// writers starve the readers on low-core machines, and the
			// race detector sees the same interleavings either way.
			var wg sync.WaitGroup
			for i := range all {
				wg.Add(1)
				go func(s *metric.Set) {
					defer wg.Done()
					for v := uint64(1); v <= 400; v++ {
						sample(s, v, time.Now())
						w.Observe(s)
					}
				}(all[i])
			}
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for n := 0; n < 50; n++ {
						w.Query("a", 0, time.Now().Add(-time.Minute))
						w.Latest("b", 0)
						if _, err := w.Aggregate("a", 0, time.Now().Add(-time.Minute), time.Second, "avg", 0); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			st := w.Stats()
			if st.Observed == 0 || st.Queries == 0 || st.Aggregates == 0 {
				t.Fatalf("no concurrent progress: %+v", st)
			}
		})
	}
}
