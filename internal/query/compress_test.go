package query

import (
	"math"
	"testing"
	"time"

	"goldms/internal/metric"
)

// pushAll feeds points into a compressed series and mirrors them into a
// reference slice for roundtrip comparison.
func pushAll(c *cseries, ref *[]point, pts []point) {
	for _, p := range pts {
		c.push(p.ts, p.bits)
		*ref = append(*ref, p)
	}
}

// checkRoundtrip asserts the series serves exactly the reference tail
// that fits its retained capacity, bit-exact.
func checkRoundtrip(t *testing.T, c *cseries, ref []point) {
	t.Helper()
	got := c.appendSince(nil, math.MinInt64, metric.TypeU64)
	if len(got) != c.count() {
		t.Fatalf("appendSince served %d points, count() says %d", len(got), c.count())
	}
	want := ref
	if len(want) > len(got) {
		want = want[len(want)-len(got):]
	}
	if len(got) != len(want) {
		t.Fatalf("served %d points, want %d retained", len(got), len(want))
	}
	for i := range got {
		if ts := got[i].Time.UnixNano(); ts != want[i].ts {
			t.Fatalf("point %d ts = %d, want %d", i, ts, want[i].ts)
		}
		if got[i].Value.Bits != want[i].bits {
			t.Fatalf("point %d bits = %#x, want %#x", i, got[i].Value.Bits, want[i].bits)
		}
	}
}

func TestCompressRoundtripRegular(t *testing.T) {
	var c cseries
	c.init(512)
	var ref []point
	base := time.Unix(1700000000, 0).UnixNano()
	pts := make([]point, 0, 700)
	for i := 0; i < 700; i++ {
		// Regular 1 s cadence, monotone counter: the best case the
		// dod/XOR buckets are tuned for.
		pts = append(pts, point{base + int64(i)*int64(time.Second), uint64(i) * 4096})
	}
	pushAll(&c, &ref, pts)
	checkRoundtrip(t, &c, ref)
}

func TestCompressRoundtripJitterAndFloats(t *testing.T) {
	var c cseries
	c.init(256)
	var ref []point
	base := time.Unix(1700000000, 0).UnixNano()
	rng := uint64(0x9e3779b97f4a7c15)
	pts := make([]point, 0, 600)
	for i := 0; i < 600; i++ {
		// xorshift keeps the test deterministic without math/rand.
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		// Microsecond-scale jitter around a 1 s cadence, float values
		// including exact-zero deltas and sign flips.
		ts := base + int64(i)*int64(time.Second) + int64(rng%2000000) - 1000000
		v := math.Float64bits(math.Sin(float64(i)/7) * float64(int64(rng%1000)-500))
		if i%17 == 0 {
			v = math.Float64bits(math.NaN())
		}
		if i%23 == 0 && i > 0 {
			v = pts[i-1].bits // repeated value: XOR == 0 path
		}
		pts = append(pts, point{ts, v})
	}
	pushAll(&c, &ref, pts)
	checkRoundtrip(t, &c, ref)
}

func TestCompressRoundtripAdversarial(t *testing.T) {
	var c cseries
	c.init(blockPoints) // head + one block slot: exercises tight wraps
	var ref []point
	pts := []point{
		{0, 0},
		{0, math.MaxUint64},              // dod 0, all-bits XOR
		{int64(time.Hour), 1},            // huge delta: wide dod bucket
		{int64(time.Hour) + 1, 1},        // delta collapses to 1 ns
		{int64(time.Hour) + 2, 1 << 63},  // only the sign bit flips
		{int64(time.Hour) + 3, 1},        // flip back
		{math.MaxInt64 / 2, 0xdeadbeef},  // 64-bit dod escape bucket
		{math.MaxInt64/2 + 1, 0xdeadbee}, // narrow XOR window shrink
	}
	pushAll(&c, &ref, pts)
	checkRoundtrip(t, &c, ref)

	// Fill several full block generations so the block ring wraps and
	// seals reuse previously grown buffers.
	more := make([]point, 0, 5*blockPoints)
	ts := int64(math.MaxInt64 / 2)
	for i := 0; i < 5*blockPoints; i++ {
		ts -= int64(time.Millisecond) // decreasing: negative deltas
		more = append(more, point{ts, uint64(i) << (uint(i) % 48)})
	}
	pushAll(&c, &ref, more)
	checkRoundtrip(t, &c, ref)
}

// TestCompressFootprint pins the acceptance bar: steady regular telemetry
// must retain points at ≥5× less RAM than the 16-byte raw representation.
func TestCompressFootprint(t *testing.T) {
	var c cseries
	c.init(1024)
	base := time.Unix(1700000000, 0).UnixNano()
	// Fill until every block has been sealed at least once so bytes()
	// reflects steady-state buffer sizes.
	n := 2 * 1024
	for i := 0; i < n; i++ {
		c.push(base+int64(i)*int64(time.Second), uint64(2000+i%5))
	}
	sealed := c.count() - c.head.n
	if sealed == 0 {
		t.Fatal("no sealed blocks")
	}
	var blockBytes int
	for i := range c.blocks {
		blockBytes += cap(c.blocks[i].buf)
	}
	perPoint := float64(blockBytes) / float64(sealed)
	if perPoint > 16.0/5 {
		t.Fatalf("sealed storage = %.2f B/point, want ≤ %.2f (≥5× vs raw 16 B)", perPoint, 16.0/5)
	}
	t.Logf("sealed storage: %.3f B/point (%.1f× vs raw)", perPoint, 16/perPoint)
}

// TestCompressSinceSkipsBlocks asserts the block time-range index cuts
// decodes: a since bound past a block's maxTS must exclude its points.
func TestCompressSinceSkipsBlocks(t *testing.T) {
	var c cseries
	c.init(4 * blockPoints)
	base := time.Unix(1700000000, 0).UnixNano()
	total := 3*blockPoints + 10
	for i := 0; i < total; i++ {
		c.push(base+int64(i)*int64(time.Second), uint64(i))
	}
	// Bound inside the second sealed block.
	cut := blockPoints + blockPoints/2
	since := base + int64(cut)*int64(time.Second)
	got := c.appendSince(nil, since, metric.TypeU64)
	if want := total - cut; len(got) != want {
		t.Fatalf("since cut served %d points, want %d", len(got), want)
	}
	if got[0].Value.U64() != uint64(cut) {
		t.Fatalf("first served point = %d, want %d", got[0].Value.U64(), cut)
	}
	// Bound past everything: nothing served.
	if got := c.appendSince(nil, base+int64(total)*int64(time.Second), metric.TypeU64); len(got) != 0 {
		t.Fatalf("future bound served %d points", len(got))
	}
}

func TestBitWriterReaderWideValues(t *testing.T) {
	var w bitWriter
	vals := []struct {
		v  uint64
		nb uint
	}{
		{1, 1}, {0, 1}, {0x3fff, 14}, {0xfffffff, 28},
		{0xffffffffff, 40}, {math.MaxUint64, 64}, {0xdeadbeefcafebabe, 64},
		{5, 3}, {0x1ffffffffff, 41}, {1, 64},
	}
	for _, tc := range vals {
		w.writeBits(tc.v, tc.nb)
	}
	w.flush()
	r := bitReader{buf: w.buf}
	for i, tc := range vals {
		if got := r.readBits(tc.nb); got != tc.v {
			t.Fatalf("value %d: read %#x, want %#x", i, got, tc.v)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag roundtrip %d -> %d", v, got)
		}
	}
	if zigzag(0) != 0 || zigzag(-1) != 1 || zigzag(1) != 2 {
		t.Fatalf("zigzag small-magnitude mapping broken: %d %d %d", zigzag(0), zigzag(-1), zigzag(1))
	}
}
