// Package query is the aggregator's consumer-facing serving layer: an
// HTTP/JSON gateway over the freshest copy of every metric set the daemon
// holds in memory, a fixed-size in-memory "recent window" that answers
// short-horizon series queries without touching SOS/CSV storage, and a
// Prometheus-style text exposition of the daemon's own internals.
//
// The paper's aggregators already hold the most recent sample of every
// mirrored set; this package turns that passive mirror into a query
// surface. Reads are torn-read-safe: set snapshots go through a single
// lock acquisition (metric.Set.ReadValues) and carry the DGN and
// consistent flag, so a reader racing an update pass sees either the old
// chunk or the new one, never a mix (§III-A reader protocol).
//
// The window is built for heavy concurrent read traffic: the set index
// is sharded with striped locks (shard.go), per-series history can be
// held Gorilla-compressed (compress.go) to grow in-RAM retention ~10×
// at the same footprint, and dashboards can ask the server to
// downsample (`step=`) or fold series across producers (aggregate.go)
// so a 64-producer view is one request, not 64.
package query

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/metric"
	"goldms/internal/obs"
)

// DefaultPoints is the per-series ring capacity when none is configured:
// at the paper's typical 1 s collection interval it holds a little over
// ten minutes of history.
const DefaultPoints = 1024

// DefaultRetention is the default maximum age served from the window.
const DefaultRetention = 10 * time.Minute

// WindowOptions configures a recent-window cache. Zero values select
// the defaults.
type WindowOptions struct {
	// Points is the per-series retained sample budget (default
	// DefaultPoints). With compression enabled, capacity rounds up to a
	// multiple of the compressed block size.
	Points int
	// Retention is the maximum history age served (default
	// DefaultRetention).
	Retention time.Duration
	// Shards is the set-index lock-stripe count, rounded up to a power
	// of two (default DefaultShards).
	Shards int
	// Compress stores sealed history Gorilla-compressed
	// (delta-of-delta timestamps + XOR values) behind a small
	// uncompressed head ring, cutting RAM per retained point ≥5×.
	Compress bool
}

// Window is the recent-window cache. One Observe call per fresh consistent
// sample pushes every metric of the set into per-series storage; Query,
// Latest and Aggregate answer entirely from RAM.
//
// Concurrency: the set index is hash-sharded with one RWMutex per shard
// (taken only to look up or create a set's series block), so updater
// inserts and HTTP queries on different sets never contend on a single
// structure; each series block has its own mutex, held only for the
// duration of a ring write or copy.
type Window struct {
	points    int
	retention time.Duration
	compress  bool

	shards []windowShard

	observed   atomic.Int64 // samples recorded
	skipped    atomic.Int64 // samples dropped (inconsistent or DGN-stale)
	queries    atomic.Int64 // Query + Latest calls answered
	aggregates atomic.Int64 // Aggregate calls answered

	// Latency tap: when set, every recorded sample's age (sample timestamp
	// vs latNow) lands in latHist — the "window" hop of the end-to-end
	// pipeline. latNow is the owning daemon's scheduler clock so virtual
	// runs stay deterministic.
	latHist *obs.Hist
	latNow  func() time.Time

	// now supplies the retention floor in Query. The owning daemon wires
	// it to the scheduler clock via SetClock so virtual-time runs prune
	// against simulated time; standalone windows fall back to wall time.
	now func() time.Time
}

// NewWindow creates a window holding up to points samples per series and
// serving at most retention of history, with default sharding and no
// compression. Zero values select the defaults.
func NewWindow(points int, retention time.Duration) *Window {
	return NewWindowOpts(WindowOptions{Points: points, Retention: retention})
}

// NewWindowOpts creates a window from the full option set.
func NewWindowOpts(o WindowOptions) *Window {
	if o.Points <= 0 {
		o.Points = DefaultPoints
	}
	if o.Retention <= 0 {
		o.Retention = DefaultRetention
	}
	w := &Window{
		points:    o.Points,
		retention: o.Retention,
		compress:  o.Compress,
		shards:    make([]windowShard, roundPow2(o.Shards)),
		//ldms:wallclock default clock for standalone windows; daemons override via SetClock
		now: time.Now,
	}
	for i := range w.shards {
		w.shards[i].sets = make(map[string]*setSeries)
	}
	return w
}

// SetClock routes the window's notion of "now" — the Query retention
// floor — through the given clock. The owning daemon passes its
// scheduler clock so virtual-time runs are deterministic. Call before
// the window starts serving; a nil clock is ignored.
func (w *Window) SetClock(now func() time.Time) {
	if now != nil {
		w.now = now
	}
}

// SetLatencyTap wires the window-insert hop of the latency pipeline: each
// sample recorded by Observe adds its age (now() minus the sample's
// transaction timestamp) to h. Call before the window starts observing.
func (w *Window) SetLatencyTap(h *obs.Hist, now func() time.Time) {
	w.latHist = h
	w.latNow = now
}

// Retention returns the maximum history age the window serves.
func (w *Window) Retention() time.Duration { return w.retention }

// Points returns the per-series retained sample budget.
func (w *Window) Points() int { return w.points }

// Compressed reports whether sealed history is Gorilla-compressed.
func (w *Window) Compressed() bool { return w.compress }

// Shards returns the set-index lock-stripe count.
func (w *Window) Shards() int { return len(w.shards) }

// setSeries is one set instance's block of per-metric series.
type setSeries struct {
	instance string
	schema   string
	comp     uint64
	names    []string
	types    []metric.Type
	index    map[string]int

	mu      sync.Mutex
	rings   []ring    // uncompressed mode
	cs      []cseries // compressed mode (nil when rings is used)
	scratch []metric.Value
	lastDGN uint64
	haveDGN bool
}

// ring is a fixed-capacity circular buffer of points. next is the slot the
// next push writes; n is the live count (saturates at capacity).
type ring struct {
	pts  []point
	next int
	n    int
}

// point is one recorded sample: timestamp in unix nanoseconds plus the
// value's raw 64-bit representation (the series' metric.Type decodes it).
type point struct {
	ts   int64
	bits uint64
}

// makePoint rebuilds a served Point from its stored representation.
func makePoint(ts int64, bits uint64, t metric.Type) Point {
	return Point{Time: time.Unix(0, ts), Value: metric.Value{Type: t, Bits: bits}}
}

// push appends one point, overwriting the oldest once full.
//
//ldms:hotpath per-sample window append; CI guards 0 allocs/op
func (r *ring) push(ts int64, bits uint64) {
	r.pts[r.next] = point{ts, bits}
	r.next++
	if r.next == len(r.pts) {
		r.next = 0
	}
	if r.n < len(r.pts) {
		r.n++
	}
}

// Observe records the set's current sample into the window. Inconsistent
// chunks and chunks whose DGN has not advanced since the last observation
// are dropped, mirroring the updater's own storage filter. It is safe to
// call concurrently with Query/Latest/Aggregate and with Observes of
// other sets.
func (w *Window) Observe(set *metric.Set) {
	ss := w.seriesFor(set)
	ss.mu.Lock()
	ts, dgn, consistent, n := set.ReadValues(ss.scratch)
	if !consistent || (ss.haveDGN && dgn == ss.lastDGN) {
		ss.mu.Unlock()
		w.skipped.Add(1)
		return
	}
	ss.lastDGN, ss.haveDGN = dgn, true
	tn := ts.UnixNano()
	if ss.cs != nil {
		for i := 0; i < n; i++ {
			ss.cs[i].push(tn, ss.scratch[i].Bits)
		}
	} else {
		for i := 0; i < n; i++ {
			ss.rings[i].push(tn, ss.scratch[i].Bits)
		}
	}
	ss.mu.Unlock()
	w.observed.Add(1)
	if w.latHist != nil && !ts.IsZero() {
		w.latHist.Record(w.latNow().Sub(ts))
	}
}

// seriesFor returns (creating if needed) the set's series block.
func (w *Window) seriesFor(set *metric.Set) *setSeries {
	name := set.Name()
	sh := w.shardFor(name)
	sh.mu.RLock()
	ss := sh.sets[name]
	sh.mu.RUnlock()
	if ss != nil {
		return ss
	}
	card := set.Card()
	ss = &setSeries{
		instance: name,
		schema:   set.SchemaName(),
		comp:     set.CompID(0),
		names:    make([]string, card),
		types:    make([]metric.Type, card),
		index:    make(map[string]int, card),
		scratch:  make([]metric.Value, card),
	}
	if w.compress {
		ss.cs = make([]cseries, card)
	} else {
		ss.rings = make([]ring, card)
	}
	for i := 0; i < card; i++ {
		ss.names[i] = set.MetricName(i)
		ss.types[i] = set.MetricType(i)
		ss.index[ss.names[i]] = i
		if w.compress {
			ss.cs[i].init(w.points)
		} else {
			ss.rings[i].pts = make([]point, w.points)
		}
	}
	sh.mu.Lock()
	if prev := sh.sets[name]; prev != nil {
		// Another observer created it first.
		sh.mu.Unlock()
		return prev
	}
	sh.sets[name] = ss
	sh.mu.Unlock()
	return ss
}

// Forget drops the named set's series (e.g. after the set left the
// directory). Queries issued concurrently finish against the old block.
func (w *Window) Forget(instance string) {
	sh := w.shardFor(instance)
	sh.mu.Lock()
	delete(sh.sets, instance)
	sh.mu.Unlock()
}

// Point is one sample of a series as served to consumers.
type Point struct {
	Time  time.Time
	Value metric.Value
}

// Series is one (instance, metric) series over the queried window, points
// in ascending time order.
type Series struct {
	Instance string
	Schema   string
	Metric   string
	CompID   uint64
	Type     metric.Type
	Points   []Point
}

// Query returns every series for the named metric — across all producers,
// or only component comp when comp != 0 — restricted to points at or after
// since (and never older than the window's retention). The result is
// sorted by instance name and built entirely from the in-memory storage;
// compressed blocks decode on the fly, skipping blocks wholly outside
// the bound.
func (w *Window) Query(metricName string, comp uint64, since time.Time) []Series {
	w.queries.Add(1)
	floor := w.now().Add(-w.retention)
	if since.Before(floor) {
		since = floor
	}
	sinceNanos := since.UnixNano()

	var out []Series
	for _, ss := range w.blocks() {
		i, ok := ss.index[metricName]
		if !ok || (comp != 0 && ss.comp != comp) {
			continue
		}
		s := Series{
			Instance: ss.instance,
			Schema:   ss.schema,
			Metric:   metricName,
			CompID:   ss.comp,
			Type:     ss.types[i],
		}
		ss.mu.Lock()
		if ss.cs != nil {
			s.Points = ss.cs[i].appendSince(nil, sinceNanos, ss.types[i])
		} else {
			s.Points = ss.rings[i].copySince(sinceNanos, ss.types[i])
		}
		ss.mu.Unlock()
		if len(s.Points) > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Instance < out[b].Instance })
	return out
}

// copySince extracts points with ts >= sinceNanos in ascending order.
// Pushes arrive time-ordered, so the ring is sorted from its oldest slot;
// a binary search finds the cut and one exact-size copy serves the rest.
// An empty ring or a bound past the newest point returns nil rather than
// an empty non-nil slice. Caller holds the series lock.
func (r *ring) copySince(sinceNanos int64, t metric.Type) []Point {
	if r.n == 0 {
		return nil
	}
	start := r.next - r.n
	if start < 0 {
		start += len(r.pts)
	}
	at := func(k int) point { return r.pts[(start+k)%len(r.pts)] }
	cut := sort.Search(r.n, func(k int) bool { return at(k).ts >= sinceNanos })
	if cut == r.n {
		return nil
	}
	out := make([]Point, r.n-cut)
	for k := range out {
		p := at(cut + k)
		out[k] = makePoint(p.ts, p.bits, t)
	}
	return out
}

// appendSince appends points with ts >= sinceNanos in ascending order to
// out (the compressed head path; same cut rules as copySince). Caller
// holds the series lock.
func (r *ring) appendSince(out []Point, sinceNanos int64, t metric.Type) []Point {
	if r.n == 0 {
		return out
	}
	start := r.next - r.n
	if start < 0 {
		start += len(r.pts)
	}
	at := func(k int) point { return r.pts[(start+k)%len(r.pts)] }
	cut := sort.Search(r.n, func(k int) bool { return at(k).ts >= sinceNanos })
	for k := cut; k < r.n; k++ {
		p := at(k)
		out = append(out, makePoint(p.ts, p.bits, t))
	}
	return out
}

// Latest returns the newest recorded point of the named metric for every
// matching series (comp == 0 matches all components), sorted by instance.
// In compressed mode this is O(1) per series: the head keeps a cached
// latest point, never a block decode.
func (w *Window) Latest(metricName string, comp uint64) []Series {
	w.queries.Add(1)
	var out []Series
	for _, ss := range w.blocks() {
		i, ok := ss.index[metricName]
		if !ok || (comp != 0 && ss.comp != comp) {
			continue
		}
		ss.mu.Lock()
		var p point
		var have bool
		if ss.cs != nil {
			c := &ss.cs[i]
			if c.haveLast {
				p, have = point{c.lastTS, c.lastBits}, true
			}
		} else {
			r := &ss.rings[i]
			if r.n > 0 {
				last := r.next - 1
				if last < 0 {
					last = len(r.pts) - 1
				}
				p, have = r.pts[last], true
			}
		}
		ss.mu.Unlock()
		if !have {
			continue
		}
		out = append(out, Series{
			Instance: ss.instance,
			Schema:   ss.schema,
			Metric:   metricName,
			CompID:   ss.comp,
			Type:     ss.types[i],
			Points:   []Point{makePoint(p.ts, p.bits, ss.types[i])},
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Instance < out[b].Instance })
	return out
}

// MetricNames lists every metric name present in the window, sorted.
func (w *Window) MetricNames() []string {
	seen := make(map[string]bool)
	for _, ss := range w.blocks() {
		for _, n := range ss.names {
			seen[n] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// blocks snapshots the series-block list across every shard.
func (w *Window) blocks() []*setSeries {
	var out []*setSeries
	for i := range w.shards {
		sh := &w.shards[i]
		sh.mu.RLock()
		for _, ss := range sh.sets {
			out = append(out, ss)
		}
		sh.mu.RUnlock()
	}
	return out
}

// WindowStats is a snapshot of the window's own counters, for /metrics.
type WindowStats struct {
	SeriesSets int   // set instances tracked
	Series     int   // individual metric series
	Points     int64 // samples currently retained across all series
	Bytes      int64 // approximate retained-storage footprint
	Observed   int64 // samples recorded
	Skipped    int64 // samples dropped (inconsistent / stale DGN)
	Queries    int64 // Query/Latest calls served
	Aggregates int64 // Aggregate calls served
}

// Stats returns the window's counters. Points and Bytes take each
// series block's mutex briefly.
func (w *Window) Stats() WindowStats {
	st := WindowStats{
		Observed:   w.observed.Load(),
		Skipped:    w.skipped.Load(),
		Queries:    w.queries.Load(),
		Aggregates: w.aggregates.Load(),
	}
	for _, ss := range w.blocks() {
		st.SeriesSets++
		ss.mu.Lock()
		if ss.cs != nil {
			st.Series += len(ss.cs)
			for i := range ss.cs {
				st.Points += int64(ss.cs[i].count())
				st.Bytes += int64(ss.cs[i].bytes())
			}
		} else {
			st.Series += len(ss.rings)
			for i := range ss.rings {
				st.Points += int64(ss.rings[i].n)
				st.Bytes += int64(len(ss.rings[i].pts) * 16)
			}
		}
		ss.mu.Unlock()
	}
	return st
}
