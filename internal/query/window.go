// Package query is the aggregator's consumer-facing serving layer: an
// HTTP/JSON gateway over the freshest copy of every metric set the daemon
// holds in memory, a fixed-size in-memory "recent window" that answers
// short-horizon series queries without touching SOS/CSV storage, and a
// Prometheus-style text exposition of the daemon's own internals.
//
// The paper's aggregators already hold the most recent sample of every
// mirrored set; this package turns that passive mirror into a query
// surface. Reads are torn-read-safe: set snapshots go through a single
// lock acquisition (metric.Set.ReadValues) and carry the DGN and
// consistent flag, so a reader racing an update pass sees either the old
// chunk or the new one, never a mix (§III-A reader protocol).
package query

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/metric"
	"goldms/internal/obs"
)

// DefaultPoints is the per-series ring capacity when none is configured:
// at the paper's typical 1 s collection interval it holds a little over
// ten minutes of history.
const DefaultPoints = 1024

// DefaultRetention is the default maximum age served from the window.
const DefaultRetention = 10 * time.Minute

// Window is the recent-window cache. One Observe call per fresh consistent
// sample pushes every metric of the set into per-series rings; Query and
// Latest answer entirely from those rings.
//
// Concurrency: the set index is guarded by an RWMutex taken only to look
// up or create a set's series block; each block has its own mutex, so
// concurrent update passes observing different sets never contend, and
// readers block a writer only for the duration of a ring copy.
type Window struct {
	points    int
	retention time.Duration

	mu   sync.RWMutex
	sets map[string]*setSeries

	observed atomic.Int64 // samples recorded
	skipped  atomic.Int64 // samples dropped (inconsistent or DGN-stale)
	queries  atomic.Int64 // Query + Latest calls answered

	// Latency tap: when set, every recorded sample's age (sample timestamp
	// vs latNow) lands in latHist — the "window" hop of the end-to-end
	// pipeline. latNow is the owning daemon's scheduler clock so virtual
	// runs stay deterministic.
	latHist *obs.Hist
	latNow  func() time.Time

	// now supplies the retention floor in Query. The owning daemon wires
	// it to the scheduler clock via SetClock so virtual-time runs prune
	// against simulated time; standalone windows fall back to wall time.
	now func() time.Time
}

// NewWindow creates a window holding up to points samples per series and
// serving at most retention of history. Zero values select the defaults.
func NewWindow(points int, retention time.Duration) *Window {
	if points <= 0 {
		points = DefaultPoints
	}
	if retention <= 0 {
		retention = DefaultRetention
	}
	return &Window{
		points:    points,
		retention: retention,
		sets:      make(map[string]*setSeries),
		//ldms:wallclock default clock for standalone windows; daemons override via SetClock
		now: time.Now,
	}
}

// SetClock routes the window's notion of "now" — the Query retention
// floor — through the given clock. The owning daemon passes its
// scheduler clock so virtual-time runs are deterministic. Call before
// the window starts serving; a nil clock is ignored.
func (w *Window) SetClock(now func() time.Time) {
	if now != nil {
		w.now = now
	}
}

// SetLatencyTap wires the window-insert hop of the latency pipeline: each
// sample recorded by Observe adds its age (now() minus the sample's
// transaction timestamp) to h. Call before the window starts observing.
func (w *Window) SetLatencyTap(h *obs.Hist, now func() time.Time) {
	w.latHist = h
	w.latNow = now
}

// Retention returns the maximum history age the window serves.
func (w *Window) Retention() time.Duration { return w.retention }

// Points returns the per-series ring capacity.
func (w *Window) Points() int { return w.points }

// setSeries is one set instance's block of rings, one ring per metric.
type setSeries struct {
	instance string
	schema   string
	comp     uint64
	names    []string
	types    []metric.Type
	index    map[string]int

	mu      sync.Mutex
	rings   []ring
	scratch []metric.Value
	lastDGN uint64
	haveDGN bool
}

// ring is a fixed-capacity circular buffer of points. next is the slot the
// next push writes; n is the live count (saturates at capacity).
type ring struct {
	pts  []point
	next int
	n    int
}

// point is one recorded sample: timestamp in unix nanoseconds plus the
// value's raw 64-bit representation (the series' metric.Type decodes it).
type point struct {
	ts   int64
	bits uint64
}

// push appends one point, overwriting the oldest once full.
func (r *ring) push(ts int64, bits uint64) {
	r.pts[r.next] = point{ts, bits}
	r.next++
	if r.next == len(r.pts) {
		r.next = 0
	}
	if r.n < len(r.pts) {
		r.n++
	}
}

// Observe records the set's current sample into the window. Inconsistent
// chunks and chunks whose DGN has not advanced since the last observation
// are dropped, mirroring the updater's own storage filter. It is safe to
// call concurrently with Query/Latest and with Observes of other sets.
func (w *Window) Observe(set *metric.Set) {
	ss := w.seriesFor(set)
	ss.mu.Lock()
	ts, dgn, consistent, n := set.ReadValues(ss.scratch)
	if !consistent || (ss.haveDGN && dgn == ss.lastDGN) {
		ss.mu.Unlock()
		w.skipped.Add(1)
		return
	}
	ss.lastDGN, ss.haveDGN = dgn, true
	tn := ts.UnixNano()
	for i := 0; i < n; i++ {
		ss.rings[i].push(tn, ss.scratch[i].Bits)
	}
	ss.mu.Unlock()
	w.observed.Add(1)
	if w.latHist != nil && !ts.IsZero() {
		w.latHist.Record(w.latNow().Sub(ts))
	}
}

// seriesFor returns (creating if needed) the set's series block.
func (w *Window) seriesFor(set *metric.Set) *setSeries {
	name := set.Name()
	w.mu.RLock()
	ss := w.sets[name]
	w.mu.RUnlock()
	if ss != nil {
		return ss
	}
	card := set.Card()
	ss = &setSeries{
		instance: name,
		schema:   set.SchemaName(),
		comp:     set.CompID(0),
		names:    make([]string, card),
		types:    make([]metric.Type, card),
		index:    make(map[string]int, card),
		rings:    make([]ring, card),
		scratch:  make([]metric.Value, card),
	}
	for i := 0; i < card; i++ {
		ss.names[i] = set.MetricName(i)
		ss.types[i] = set.MetricType(i)
		ss.index[ss.names[i]] = i
		ss.rings[i].pts = make([]point, w.points)
	}
	w.mu.Lock()
	if prev := w.sets[name]; prev != nil {
		// Another observer created it first.
		w.mu.Unlock()
		return prev
	}
	w.sets[name] = ss
	w.mu.Unlock()
	return ss
}

// Forget drops the named set's series (e.g. after the set left the
// directory). Queries issued concurrently finish against the old block.
func (w *Window) Forget(instance string) {
	w.mu.Lock()
	delete(w.sets, instance)
	w.mu.Unlock()
}

// Point is one sample of a series as served to consumers.
type Point struct {
	Time  time.Time
	Value metric.Value
}

// Series is one (instance, metric) series over the queried window, points
// in ascending time order.
type Series struct {
	Instance string
	Schema   string
	Metric   string
	CompID   uint64
	Type     metric.Type
	Points   []Point
}

// Query returns every series for the named metric — across all producers,
// or only component comp when comp != 0 — restricted to points at or after
// since (and never older than the window's retention). The result is
// sorted by instance name and built entirely from the in-memory rings.
func (w *Window) Query(metricName string, comp uint64, since time.Time) []Series {
	w.queries.Add(1)
	floor := w.now().Add(-w.retention)
	if since.Before(floor) {
		since = floor
	}
	sinceNanos := since.UnixNano()

	var out []Series
	for _, ss := range w.blocks() {
		i, ok := ss.index[metricName]
		if !ok || (comp != 0 && ss.comp != comp) {
			continue
		}
		s := Series{
			Instance: ss.instance,
			Schema:   ss.schema,
			Metric:   metricName,
			CompID:   ss.comp,
			Type:     ss.types[i],
		}
		ss.mu.Lock()
		s.Points = ss.rings[i].copySince(sinceNanos, ss.types[i])
		ss.mu.Unlock()
		if len(s.Points) > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Instance < out[b].Instance })
	return out
}

// copySince extracts points with ts >= sinceNanos in ascending order.
// Pushes arrive time-ordered, so the ring is sorted from its oldest slot;
// a binary search finds the cut and one exact-size copy serves the rest.
// Caller holds the series lock.
func (r *ring) copySince(sinceNanos int64, t metric.Type) []Point {
	if r.n == 0 {
		return nil
	}
	start := r.next - r.n
	if start < 0 {
		start += len(r.pts)
	}
	at := func(k int) point { return r.pts[(start+k)%len(r.pts)] }
	cut := sort.Search(r.n, func(k int) bool { return at(k).ts >= sinceNanos })
	if cut == r.n {
		return nil
	}
	out := make([]Point, r.n-cut)
	for k := range out {
		p := at(cut + k)
		out[k] = Point{Time: time.Unix(0, p.ts), Value: metric.Value{Type: t, Bits: p.bits}}
	}
	return out
}

// Latest returns the newest recorded point of the named metric for every
// matching series (comp == 0 matches all components), sorted by instance.
func (w *Window) Latest(metricName string, comp uint64) []Series {
	w.queries.Add(1)
	var out []Series
	for _, ss := range w.blocks() {
		i, ok := ss.index[metricName]
		if !ok || (comp != 0 && ss.comp != comp) {
			continue
		}
		ss.mu.Lock()
		r := &ss.rings[i]
		var p point
		have := r.n > 0
		if have {
			last := r.next - 1
			if last < 0 {
				last = len(r.pts) - 1
			}
			p = r.pts[last]
		}
		ss.mu.Unlock()
		if !have {
			continue
		}
		out = append(out, Series{
			Instance: ss.instance,
			Schema:   ss.schema,
			Metric:   metricName,
			CompID:   ss.comp,
			Type:     ss.types[i],
			Points:   []Point{{Time: time.Unix(0, p.ts), Value: metric.Value{Type: ss.types[i], Bits: p.bits}}},
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Instance < out[b].Instance })
	return out
}

// MetricNames lists every metric name present in the window, sorted.
func (w *Window) MetricNames() []string {
	seen := make(map[string]bool)
	for _, ss := range w.blocks() {
		for _, n := range ss.names {
			seen[n] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// blocks snapshots the series-block list.
func (w *Window) blocks() []*setSeries {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]*setSeries, 0, len(w.sets))
	for _, ss := range w.sets {
		out = append(out, ss)
	}
	return out
}

// WindowStats is a snapshot of the window's own counters, for /metrics.
type WindowStats struct {
	SeriesSets int   // set instances tracked
	Series     int   // individual metric series
	Observed   int64 // samples recorded
	Skipped    int64 // samples dropped (inconsistent / stale DGN)
	Queries    int64 // Query/Latest calls served
}

// Stats returns the window's counters.
func (w *Window) Stats() WindowStats {
	w.mu.RLock()
	sets, series := len(w.sets), 0
	for _, ss := range w.sets {
		series += len(ss.rings)
	}
	w.mu.RUnlock()
	return WindowStats{
		SeriesSets: sets,
		Series:     series,
		Observed:   w.observed.Load(),
		Skipped:    w.skipped.Load(),
		Queries:    w.queries.Load(),
	}
}
