package query

// Lock-striped sharding of the window's set index. Before sharding, one
// RWMutex guarded the instance→series map: every updater insert and
// every HTTP query serialized on it, so read QPS collapsed as soon as a
// live update pass was running (Zhang et al.'s monitoring-service study
// — the query side, not collection, is where these systems fall over).
// Hashing each set instance onto one of N independently-locked shards
// lets inserts for different producers and concurrent queries proceed
// in parallel; per-series data stays under the per-set block mutex
// exactly as before.

import "sync"

// DefaultShards is the shard count when none is configured. 16 striped
// locks keep 64-producer insert traffic and concurrent dashboard reads
// off each other's locks without measurable memory cost.
const DefaultShards = 16

// windowShard is one stripe of the set index.
type windowShard struct {
	mu   sync.RWMutex
	sets map[string]*setSeries
}

// shardFor hashes an instance name onto its stripe (FNV-1a).
func (w *Window) shardFor(name string) *windowShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return &w.shards[h&uint64(len(w.shards)-1)]
}

// roundPow2 rounds n up to a power of two (shard counts must be
// maskable); values below 1 select the default.
func roundPow2(n int) int {
	if n <= 0 {
		return DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
