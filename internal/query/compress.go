package query

// Gorilla-style window-point compression (Facebook's in-memory TSDB,
// VLDB'15): delta-of-delta timestamp encoding plus XOR float/value
// encoding, bit-packed. The window's per-series storage becomes a small
// uncompressed "head" ring — so the latest points stay O(1) readable and
// the per-sample append is a plain ring write — plus a ring of sealed
// compressed blocks. Sealing happens once every blockPoints samples and
// re-encodes the head into the oldest block slot, reusing its byte
// buffer, so the steady-state append path performs zero allocations.
//
// The encoding is lossless on the raw 64-bit value representation
// (metric.Value.Bits), so integer counters and float gauges round-trip
// bit-exactly and virtual-clock runs stay byte-identical with
// compression enabled.

import (
	"math/bits"

	"goldms/internal/metric"
)

// blockPoints is how many points a sealed block holds (and the head
// ring's capacity). 128 points amortizes the per-block fixed cost
// (one raw 128-bit first point) to ~1 bit/point.
const blockPoints = 128

// cblock is one sealed, immutable compressed run of points. buf is
// reused across seals once the block ring wraps.
type cblock struct {
	buf   []byte
	n     int
	minTS int64
	maxTS int64
}

// cseries is one metric series in compressed mode: an uncompressed head
// ring plus a fixed ring of sealed blocks, oldest overwritten.
type cseries struct {
	head     ring
	blocks   []cblock
	bnext    int // next block slot a seal writes
	bn       int // sealed blocks live (saturates at len(blocks))
	lastTS   int64
	lastBits uint64
	haveLast bool
}

// initCSeries sizes a compressed series for ~points retained samples:
// one head ring of blockPoints plus enough block slots to cover the
// rest (capacity rounds up to a multiple of the block size).
func (c *cseries) init(points int) {
	c.head.pts = make([]point, blockPoints)
	nblocks := (points + blockPoints - 1) / blockPoints
	if nblocks < 1 {
		nblocks = 1
	}
	c.blocks = make([]cblock, nblocks)
}

// push appends one point. The hot path is one ring write plus the
// latest-point cache; every blockPoints-th call additionally seals the
// head into a compressed block (amortized, buffer reused).
//
//ldms:hotpath per-sample window append; CI guards 0 allocs/op
func (c *cseries) push(ts int64, bitsv uint64) {
	c.head.push(ts, bitsv)
	c.lastTS, c.lastBits, c.haveLast = ts, bitsv, true
	if c.head.n == len(c.head.pts) {
		c.seal()
	}
}

// seal compresses the full head into the next block slot and resets the
// head. The slot's buffer is truncated and reused, so once the block
// ring has wrapped no allocation happens here either.
//
//ldms:hotpath amortized per-block encode on the window append path
func (c *cseries) seal() {
	blk := &c.blocks[c.bnext]
	w := bitWriter{buf: blk.buf[:0]}
	var e genc
	n := c.head.n
	start := c.head.next - n
	if start < 0 {
		start += len(c.head.pts)
	}
	for k := 0; k < n; k++ {
		p := c.head.pts[(start+k)%len(c.head.pts)]
		e.encode(&w, p.ts, p.bits)
		if k == 0 {
			blk.minTS = p.ts
		}
		blk.maxTS = p.ts
	}
	w.flush()
	blk.buf = w.buf
	blk.n = n
	c.bnext++
	if c.bnext == len(c.blocks) {
		c.bnext = 0
	}
	if c.bn < len(c.blocks) {
		c.bn++
	}
	c.head.n, c.head.next = 0, 0
}

// count returns the live points retained (sealed + head).
func (c *cseries) count() int {
	total := c.head.n
	start := c.bnext - c.bn
	if start < 0 {
		start += len(c.blocks)
	}
	for k := 0; k < c.bn; k++ {
		total += c.blocks[(start+k)%len(c.blocks)].n
	}
	return total
}

// bytes returns the approximate retained footprint: compressed block
// bytes plus the head ring's fixed backing array.
func (c *cseries) bytes() int {
	total := len(c.head.pts) * 16
	for i := range c.blocks {
		total += cap(c.blocks[i].buf)
	}
	return total
}

// appendSince decodes every point with ts >= sinceNanos, oldest first,
// into out. Blocks wholly older than the bound are skipped without
// decoding (each block carries its time range).
func (c *cseries) appendSince(out []Point, sinceNanos int64, t metric.Type) []Point {
	start := c.bnext - c.bn
	if start < 0 {
		start += len(c.blocks)
	}
	for k := 0; k < c.bn; k++ {
		blk := &c.blocks[(start+k)%len(c.blocks)]
		if blk.maxTS < sinceNanos {
			continue
		}
		out = decodeBlock(out, blk, sinceNanos, t)
	}
	return c.head.appendSince(out, sinceNanos, t)
}

// decodeBlock appends the block's points at or after sinceNanos to out.
func decodeBlock(out []Point, blk *cblock, sinceNanos int64, t metric.Type) []Point {
	r := bitReader{buf: blk.buf}
	var d gdec
	for i := 0; i < blk.n; i++ {
		ts, bitsv := d.decode(&r)
		if ts < sinceNanos {
			continue
		}
		out = append(out, makePoint(ts, bitsv, t))
	}
	return out
}

// ---- bit-level writer/reader -------------------------------------------

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	buf []byte
	acc uint64 // pending bits in the low `n` positions
	n   uint   // pending bit count (< 8 between calls)
}

// writeBits appends the low nb bits of v, MSB first. Wide writes split
// so the pending accumulator (< 8 bits between calls) never overflows.
//
//ldms:hotpath inner loop of the window block encoder
func (w *bitWriter) writeBits(v uint64, nb uint) {
	if nb > 32 {
		w.writeBits(v>>32, nb-32)
		nb = 32
	}
	w.acc = w.acc<<nb | (v & (1<<nb - 1))
	w.n += nb
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.acc>>w.n))
	}
}

// flush pads the pending bits out to a byte boundary with zeros.
func (w *bitWriter) flush() {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.n)))
		w.acc, w.n = 0, 0
	}
}

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	buf []byte
	pos uint // bit offset
}

func (r *bitReader) readBits(nb uint) uint64 {
	var v uint64
	for nb > 0 {
		b := r.buf[r.pos>>3]
		off := r.pos & 7
		avail := 8 - off
		take := avail
		if take > nb {
			take = nb
		}
		v = v<<take | uint64((b>>(avail-take))&((1<<take)-1))
		r.pos += take
		nb -= take
	}
	return v
}

// ---- streaming point codec ---------------------------------------------

// genc is the per-block encoder state: previous timestamp/delta for
// delta-of-delta, previous value bits and XOR window for value encoding.
type genc struct {
	started   bool
	prevTS    int64
	prevDelta int64
	prevBits  uint64
	prevLead  uint
	prevSig   uint // 0 = no reusable XOR window yet
}

// Timestamp delta-of-delta buckets (zigzag-coded): '0' for 0; '10'+14
// bits covers microsecond jitter at nanosecond resolution; '110'+28 bits
// covers ~±134 ms; '1110'+40 bits covers ~±9 min interval changes;
// '1111'+64 bits is the escape.
//
//ldms:hotpath per-point encode inside the amortized block seal
func (e *genc) encode(w *bitWriter, ts int64, v uint64) {
	if !e.started {
		e.started = true
		e.prevTS, e.prevBits = ts, v
		w.writeBits(uint64(ts), 64)
		w.writeBits(v, 64)
		return
	}
	delta := ts - e.prevTS
	dod := delta - e.prevDelta
	e.prevTS, e.prevDelta = ts, delta
	z := zigzag(dod)
	switch {
	case z == 0:
		w.writeBits(0, 1)
	case z < 1<<14:
		w.writeBits(0b10, 2)
		w.writeBits(z, 14)
	case z < 1<<28:
		w.writeBits(0b110, 3)
		w.writeBits(z, 28)
	case z < 1<<40:
		w.writeBits(0b1110, 4)
		w.writeBits(z, 40)
	default:
		w.writeBits(0b1111, 4)
		w.writeBits(z, 64)
	}

	xor := v ^ e.prevBits
	e.prevBits = v
	if xor == 0 {
		w.writeBits(0, 1)
		return
	}
	lead := uint(bits.LeadingZeros64(xor))
	trail := uint(bits.TrailingZeros64(xor))
	sig := 64 - lead - trail
	if e.prevSig > 0 && lead >= e.prevLead && trail >= 64-e.prevLead-e.prevSig {
		// Fits the previous meaningful-bit window: '10' + window bits.
		w.writeBits(0b10, 2)
		w.writeBits(xor>>(64-e.prevLead-e.prevSig), e.prevSig)
		return
	}
	// New window: '11' + 6-bit leading + 6-bit (sig-1) + sig bits. The
	// lead field is 6 bits (not Gorilla's 5) because integer counters
	// produce low-order XORs with 60+ leading zeros; a 5-bit clamp would
	// widen sig by ~30 bits per new window.
	e.prevLead, e.prevSig = lead, sig
	w.writeBits(0b11, 2)
	w.writeBits(uint64(lead), 6)
	w.writeBits(uint64(sig-1), 6)
	w.writeBits(xor>>trail, sig)
}

// gdec mirrors genc for decoding.
type gdec struct {
	started   bool
	prevTS    int64
	prevDelta int64
	prevBits  uint64
	prevLead  uint
	prevSig   uint
}

func (d *gdec) decode(r *bitReader) (int64, uint64) {
	if !d.started {
		d.started = true
		d.prevTS = int64(r.readBits(64))
		d.prevBits = r.readBits(64)
		return d.prevTS, d.prevBits
	}
	var z uint64
	if r.readBits(1) == 0 {
		z = 0
	} else if r.readBits(1) == 0 {
		z = r.readBits(14)
	} else if r.readBits(1) == 0 {
		z = r.readBits(28)
	} else if r.readBits(1) == 0 {
		z = r.readBits(40)
	} else {
		z = r.readBits(64)
	}
	d.prevDelta += unzigzag(z)
	d.prevTS += d.prevDelta

	if r.readBits(1) == 1 {
		if r.readBits(1) == 0 {
			// Previous meaningful-bit window.
			xor := r.readBits(d.prevSig) << (64 - d.prevLead - d.prevSig)
			d.prevBits ^= xor
		} else {
			lead := uint(r.readBits(6))
			sig := uint(r.readBits(6)) + 1
			xor := r.readBits(sig) << (64 - lead - sig)
			d.prevLead, d.prevSig = lead, sig
			d.prevBits ^= xor
		}
	}
	return d.prevTS, d.prevBits
}

// zigzag maps signed to unsigned so small magnitudes stay small.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }
