package query

import (
	"fmt"
	"testing"
	"time"

	"goldms/internal/metric"
)

// BenchmarkQueryWindow measures serving a 10-minute series query entirely
// from the in-memory ring: 64 producers' sets with 16 metrics each, rings
// full (600 points — one per second over the window). This is the gateway
// hot path for dashboards polling /api/v1/series; the acceptance bar is
// that it never touches SOS/CSV, so the cost is pure ring copying.
func BenchmarkQueryWindow(b *testing.B) {
	const (
		producers = 64
		nmetrics  = 16
		points    = 600
	)
	w := NewWindow(points, 10*time.Minute)
	sch := metric.NewSchema("bench")
	for m := 0; m < nmetrics; m++ {
		sch.MustAddMetric(fmt.Sprintf("m%02d", m), metric.TypeU64)
	}
	base := time.Now().Add(-9 * time.Minute)
	for p := 0; p < producers; p++ {
		set, err := metric.New(fmt.Sprintf("n%03d/bench", p), sch, metric.WithCompID(uint64(p+1)))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < points; i++ {
			set.BeginTransaction()
			set.SetValues(func(bt *metric.Batch) {
				for m := 0; m < nmetrics; m++ {
					bt.SetU64(m, uint64(i*m))
				}
			})
			set.EndTransaction(base.Add(time.Duration(i) * time.Second))
			w.Observe(set)
		}
	}
	since := time.Now().Add(-10 * time.Minute)

	b.Run("one-metric/all-producers", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			series := w.Query("m07", 0, since)
			if len(series) != producers {
				b.Fatalf("series = %d, want %d", len(series), producers)
			}
		}
	})
	b.Run("one-metric/one-producer", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			series := w.Query("m07", 7, since)
			if len(series) != 1 {
				b.Fatalf("series = %d, want 1", len(series))
			}
		}
	})
	b.Run("latest/all-producers", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if got := w.Latest("m07", 0); len(got) != producers {
				b.Fatalf("latest = %d, want %d", len(got), producers)
			}
		}
	})
}

// BenchmarkWindowObserve measures the tap cost an update pass pays per
// fresh sample when the gateway is enabled.
func BenchmarkWindowObserve(b *testing.B) {
	const nmetrics = 16
	w := NewWindow(DefaultPoints, DefaultRetention)
	sch := metric.NewSchema("bench")
	for m := 0; m < nmetrics; m++ {
		sch.MustAddMetric(fmt.Sprintf("m%02d", m), metric.TypeU64)
	}
	set, err := metric.New("n000/bench", sch)
	if err != nil {
		b.Fatal(err)
	}
	ts := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		set.BeginTransaction()
		set.SetU64(0, uint64(n))
		set.EndTransaction(ts)
		w.Observe(set)
	}
}
