package query

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"goldms/internal/metric"
	"goldms/internal/obs"
)

// BenchmarkQueryWindow measures serving a 10-minute series query entirely
// from the in-memory ring: 64 producers' sets with 16 metrics each, rings
// full (600 points — one per second over the window). This is the gateway
// hot path for dashboards polling /api/v1/series; the acceptance bar is
// that it never touches SOS/CSV, so the cost is pure ring copying.
func BenchmarkQueryWindow(b *testing.B) {
	const (
		producers = 64
		nmetrics  = 16
		points    = 600
	)
	w := NewWindow(points, 10*time.Minute)
	sch := metric.NewSchema("bench")
	for m := 0; m < nmetrics; m++ {
		sch.MustAddMetric(fmt.Sprintf("m%02d", m), metric.TypeU64)
	}
	base := time.Now().Add(-9 * time.Minute)
	for p := 0; p < producers; p++ {
		set, err := metric.New(fmt.Sprintf("n%03d/bench", p), sch, metric.WithCompID(uint64(p+1)))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < points; i++ {
			set.BeginTransaction()
			set.SetValues(func(bt *metric.Batch) {
				for m := 0; m < nmetrics; m++ {
					bt.SetU64(m, uint64(i*m))
				}
			})
			set.EndTransaction(base.Add(time.Duration(i) * time.Second))
			w.Observe(set)
		}
	}
	since := time.Now().Add(-10 * time.Minute)

	b.Run("one-metric/all-producers", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			series := w.Query("m07", 0, since)
			if len(series) != producers {
				b.Fatalf("series = %d, want %d", len(series), producers)
			}
		}
	})
	b.Run("one-metric/one-producer", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			series := w.Query("m07", 7, since)
			if len(series) != 1 {
				b.Fatalf("series = %d, want 1", len(series))
			}
		}
	})
	b.Run("latest/all-producers", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if got := w.Latest("m07", 0); len(got) != producers {
				b.Fatalf("latest = %d, want %d", len(got), producers)
			}
		}
	})
}

// BenchmarkWindowObserve measures the tap cost an update pass pays per
// fresh sample when the gateway is enabled.
func BenchmarkWindowObserve(b *testing.B) {
	const nmetrics = 16
	w := NewWindow(DefaultPoints, DefaultRetention)
	sch := metric.NewSchema("bench")
	for m := 0; m < nmetrics; m++ {
		sch.MustAddMetric(fmt.Sprintf("m%02d", m), metric.TypeU64)
	}
	set, err := metric.New("n000/bench", sch)
	if err != nil {
		b.Fatal(err)
	}
	ts := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		set.BeginTransaction()
		set.SetU64(0, uint64(n))
		set.EndTransaction(ts)
		w.Observe(set)
	}
}

// BenchmarkQueryConcurrent is the read-path scale-out guard: parallel
// dashboard readers against a LIVE 64-producer × 16-metric window while
// a writer runs an update pass over every set each 3 ms (the paper's
// aggregator cadence). Each op is one single-producer series query over
// the last 30 s plus, every 16th op, a cross-producer aggregate. CI
// asserts the custom metrics: qps ≥ 5000 and p99-ms < 5.
func BenchmarkQueryConcurrent(b *testing.B) {
	for _, compress := range []bool{false, true} {
		name := "rings"
		if compress {
			name = "compressed"
		}
		b.Run(name, func(b *testing.B) {
			const (
				producers = 64
				nmetrics  = 16
				points    = 600
			)
			w := NewWindowOpts(WindowOptions{
				Points: points, Retention: time.Hour, Compress: compress,
			})
			sch := metric.NewSchema("bench")
			for m := 0; m < nmetrics; m++ {
				sch.MustAddMetric(fmt.Sprintf("m%02d", m), metric.TypeU64)
			}
			sets := make([]*metric.Set, producers)
			base := time.Now().Add(-points * time.Second)
			for p := range sets {
				set, err := metric.New(fmt.Sprintf("n%03d/bench", p), sch, metric.WithCompID(uint64(p+1)))
				if err != nil {
					b.Fatal(err)
				}
				sets[p] = set
				for i := 0; i < points; i++ {
					set.BeginTransaction()
					set.SetValues(func(bt *metric.Batch) {
						for m := 0; m < nmetrics; m++ {
							bt.SetU64(m, uint64(i*m))
						}
					})
					set.EndTransaction(base.Add(time.Duration(i) * time.Second))
					w.Observe(set)
				}
			}

			// Live writer: one full update pass (all 64 sets) every 3 ms.
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				v := uint64(points)
				for {
					select {
					case <-stop:
						return
					default:
					}
					ts := time.Now()
					for _, set := range sets {
						set.BeginTransaction()
						set.SetU64(0, v)
						set.EndTransaction(ts)
						w.Observe(set)
					}
					v++
					time.Sleep(3 * time.Millisecond)
				}
			}()

			var hist obs.Hist
			var ops atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				n := 0
				for pb.Next() {
					n++
					comp := uint64(n%producers) + 1
					m := fmt.Sprintf("m%02d", n%nmetrics)
					t0 := time.Now()
					if n%16 == 0 {
						if _, err := w.Aggregate(m, 0, time.Now().Add(-30*time.Second), 5*time.Second, "avg", 0); err != nil {
							b.Error(err)
							return
						}
					} else {
						w.Query(m, comp, time.Now().Add(-30*time.Second))
					}
					hist.Record(time.Since(t0))
					ops.Add(1)
				}
			})
			elapsed := time.Since(start)
			b.StopTimer()
			close(stop)
			<-done
			if elapsed > 0 {
				b.ReportMetric(float64(ops.Load())/elapsed.Seconds(), "qps")
			}
			p99 := hist.Snapshot().Quantile(0.99)
			b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99-ms")
		})
	}
}

// BenchmarkCompressAppend measures the compressed per-sample append —
// ring write + latest cache + amortized block seal. The pre-loop warms
// every block slot through one full generation so steady-state buffers
// are grown; CI asserts 0 allocs/op after that.
func BenchmarkCompressAppend(b *testing.B) {
	var c cseries
	c.init(1024)
	base := time.Unix(1700000000, 0).UnixNano()
	ts := base
	v := uint64(0)
	// Warm-up: cycle every block slot once so seal buffers reach their
	// steady-state capacity.
	for i := 0; i < 2*1024; i++ {
		ts += int64(time.Second)
		v++
		c.push(ts, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ts += int64(time.Second)
		v++
		c.push(ts, v)
	}
}

// BenchmarkCompressDecode measures serving a full query from sealed
// blocks: decode of a ~1024-point compressed series.
func BenchmarkCompressDecode(b *testing.B) {
	var c cseries
	c.init(1024)
	base := time.Unix(1700000000, 0).UnixNano()
	for i := 0; i < 2*1024; i++ {
		c.push(base+int64(i)*int64(time.Second), uint64(i))
	}
	out := make([]Point, 0, c.count())
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		out = c.appendSince(out[:0], 0, metric.TypeU64)
	}
	if len(out) != c.count() {
		b.Fatalf("decoded %d points, want %d", len(out), c.count())
	}
}
