package query

import (
	"io"
	"sort"
	"strconv"
)

// Expo builds a Prometheus text-format (version 0.0.4) exposition: the
// format scraped from /metrics. It is deliberately minimal — families are
// declared once with HELP/TYPE lines, then samples append with optional
// labels — so daemon subsystems can contribute counters without depending
// on any client library.
//
// An Expo is reusable: Reset keeps the grown byte buffer and family map
// so a pooled instance serves scrape after scrape without allocating
// (the gateway pools one per /metrics request; bench_test.go asserts
// the steady state allocates nothing inside Expo itself).
type Expo struct {
	buf      []byte
	declared map[string]bool
}

// NewExpo returns an empty exposition.
func NewExpo() *Expo {
	return &Expo{declared: make(map[string]bool)}
}

// Reset truncates the exposition for reuse, keeping the buffer capacity
// and the family map's storage.
func (e *Expo) Reset() {
	e.buf = e.buf[:0]
	for k := range e.declared {
		delete(e.declared, k)
	}
}

// Label is one exposition label pair.
type Label struct {
	K, V string
}

// Family declares a metric family. typ is "counter" or "gauge". Declaring
// the same family twice is a no-op, so independent collectors can both
// declare before sampling.
func (e *Expo) Family(name, typ, help string) {
	if e.declared[name] {
		return
	}
	e.declared[name] = true
	if help != "" {
		e.buf = append(e.buf, "# HELP "...)
		e.buf = append(e.buf, name...)
		e.buf = append(e.buf, ' ')
		e.buf = appendEscaped(e.buf, help, false)
		e.buf = append(e.buf, '\n')
	}
	e.buf = append(e.buf, "# TYPE "...)
	e.buf = append(e.buf, name...)
	e.buf = append(e.buf, ' ')
	e.buf = append(e.buf, typ...)
	e.buf = append(e.buf, '\n')
}

// Sample appends one sample line for a declared family.
func (e *Expo) Sample(name string, labels []Label, v float64) {
	e.buf = append(e.buf, name...)
	if len(labels) > 0 {
		e.buf = append(e.buf, '{')
		for i, l := range labels {
			if i > 0 {
				e.buf = append(e.buf, ',')
			}
			e.buf = append(e.buf, l.K...)
			e.buf = append(e.buf, '=', '"')
			e.buf = appendEscaped(e.buf, l.V, true)
			e.buf = append(e.buf, '"')
		}
		e.buf = append(e.buf, '}')
	}
	e.buf = append(e.buf, ' ')
	e.buf = appendValue(e.buf, v)
	e.buf = append(e.buf, '\n')
}

// Counter declares a counter family and appends one sample.
func (e *Expo) Counter(name, help string, labels []Label, v float64) {
	e.Family(name, "counter", help)
	e.Sample(name, labels, v)
}

// Gauge declares a gauge family and appends one sample.
func (e *Expo) Gauge(name, help string, labels []Label, v float64) {
	e.Family(name, "gauge", help)
	e.Sample(name, labels, v)
}

// String renders the exposition (copies; WriteTo avoids the copy).
func (e *Expo) String() string { return string(e.buf) }

// Len returns the rendered byte length.
func (e *Expo) Len() int { return len(e.buf) }

// WriteTo writes the rendered exposition to w without copying.
func (e *Expo) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(e.buf)
	return int64(n), err
}

// appendValue renders a sample value: integers without an exponent,
// other values in Go's shortest representation.
func appendValue(b []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendEscaped appends s escaped per the exposition format: backslash
// and newline always, double quote only inside label values.
func appendEscaped(b []byte, s string, quoteLabel bool) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '"':
			if quoteLabel {
				b = append(b, '\\', '"')
			} else {
				b = append(b, c)
			}
		default:
			b = append(b, c)
		}
	}
	return b
}

// SortedLabels returns m as a deterministic label list.
func SortedLabels(m map[string]string) []Label {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Label, len(keys))
	for i, k := range keys {
		out[i] = Label{k, m[k]}
	}
	return out
}
