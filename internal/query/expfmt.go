package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Expo builds a Prometheus text-format (version 0.0.4) exposition: the
// format scraped from /metrics. It is deliberately minimal — families are
// declared once with HELP/TYPE lines, then samples append with optional
// labels — so daemon subsystems can contribute counters without depending
// on any client library.
type Expo struct {
	b        strings.Builder
	declared map[string]bool
}

// NewExpo returns an empty exposition.
func NewExpo() *Expo {
	return &Expo{declared: make(map[string]bool)}
}

// Label is one exposition label pair.
type Label struct {
	K, V string
}

// Family declares a metric family. typ is "counter" or "gauge". Declaring
// the same family twice is a no-op, so independent collectors can both
// declare before sampling.
func (e *Expo) Family(name, typ, help string) {
	if e.declared[name] {
		return
	}
	e.declared[name] = true
	if help != "" {
		fmt.Fprintf(&e.b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(&e.b, "# TYPE %s %s\n", name, typ)
}

// Sample appends one sample line for a declared family.
func (e *Expo) Sample(name string, labels []Label, v float64) {
	e.b.WriteString(name)
	if len(labels) > 0 {
		e.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				e.b.WriteByte(',')
			}
			e.b.WriteString(l.K)
			e.b.WriteString(`="`)
			e.b.WriteString(escapeLabel(l.V))
			e.b.WriteByte('"')
		}
		e.b.WriteByte('}')
	}
	e.b.WriteByte(' ')
	e.b.WriteString(formatFloat(v))
	e.b.WriteByte('\n')
}

// Counter declares a counter family and appends one sample.
func (e *Expo) Counter(name, help string, labels []Label, v float64) {
	e.Family(name, "counter", help)
	e.Sample(name, labels, v)
}

// Gauge declares a gauge family and appends one sample.
func (e *Expo) Gauge(name, help string, labels []Label, v float64) {
	e.Family(name, "gauge", help)
	e.Sample(name, labels, v)
}

// String renders the exposition.
func (e *Expo) String() string { return e.b.String() }

// formatFloat renders a sample value: integers without an exponent, other
// values in Go's shortest representation.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// SortedLabels returns m as a deterministic label list.
func SortedLabels(m map[string]string) []Label {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Label, len(keys))
	for i, k := range keys {
		out[i] = Label{k, m[k]}
	}
	return out
}
