package query

import (
	"io"
	"testing"
)

// TestExpoReuseNoAllocs pins the pooled-scrape property: once an Expo's
// buffer and family map have grown, Reset + re-render + WriteTo performs
// zero allocations, so the gateway's pooled instance serves scrape after
// scrape for free.
func TestExpoReuseNoAllocs(t *testing.T) {
	e := NewExpo()
	labels := []Label{{"daemon", "agg-1"}, {"endpoint", "/api/v1/series"}}
	render := func() {
		e.Reset()
		e.Counter("ldmsd_http_requests_total", "HTTP requests served.", labels, 12345)
		e.Counter("ldmsd_window_observed_total", "Samples recorded.", nil, 67890)
		e.Gauge("ldmsd_window_points", "Points retained.", labels[:1], 4096.5)
		e.Gauge("ldmsd_goroutines", "", nil, 42)
		e.WriteTo(io.Discard)
	}
	render() // warm-up: grow buffer and family map
	if allocs := testing.AllocsPerRun(100, render); allocs != 0 {
		t.Fatalf("pooled Expo re-render allocates %v/op, want 0", allocs)
	}
}

// TestExpoResetKeepsOutputIdentical asserts a reused Expo renders the
// same bytes as a fresh one.
func TestExpoResetKeepsOutputIdentical(t *testing.T) {
	build := func(e *Expo) string {
		e.Counter("x_total", "Things.", []Label{{"a", "b"}}, 3)
		e.Gauge("y", "Level.", nil, 1.25)
		return e.String()
	}
	fresh := build(NewExpo())
	e := NewExpo()
	build(e)
	e.Reset()
	if got := build(e); got != fresh {
		t.Fatalf("reused Expo rendered:\n%q\nfresh:\n%q", got, fresh)
	}
}
