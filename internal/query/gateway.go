package query

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/metric"
	"goldms/internal/obs"
)

// SetSource is the live-data source the gateway reads: the daemon's
// registry of local sets and mirrored aggregated sets. metric.Registry
// implements it.
type SetSource interface {
	Dir() []string
	Get(name string) *metric.Set
}

// ProducerHealth describes one collection target for /healthz, as computed
// by the daemon (which knows updater intervals and error streaks).
type ProducerHealth struct {
	Name              string    `json:"name"`
	Host              string    `json:"host,omitempty"`
	State             string    `json:"state"`
	Standby           bool      `json:"standby,omitempty"`
	Active            bool      `json:"active"`
	Connects          int64     `json:"connects"`
	Disconnects       int64     `json:"disconnects"`
	LastUpdate        time.Time `json:"last_update,omitempty"`
	ConsecutiveErrors int64     `json:"consecutive_errors"`
	Stale             bool      `json:"stale"`
	// Sets counts the metric sets currently mirrored from this producer,
	// summed across updaters — the fan-in contribution of one downstream
	// daemon in a tiered topology.
	Sets int `json:"sets"`
	// Updates and DeltaUpdates count completed data pulls over this
	// producer's connection and how many of them were answered with a
	// delta; BytesPerSample is inbound wire bytes per completed pull, the
	// per-sample cost the delta protocol exists to shrink.
	Updates        int64   `json:"updates,omitempty"`
	DeltaUpdates   int64   `json:"delta_updates,omitempty"`
	BytesPerSample float64 `json:"bytes_per_sample,omitempty"`
}

// StoreHealth describes one storage policy for /healthz: a policy whose
// plugin hit a sticky error keeps collecting but silently drops every
// row, so it must degrade the health endpoint rather than hide.
type StoreHealth struct {
	Policy     string `json:"policy"`
	Plugin     string `json:"plugin"`
	Schema     string `json:"schema"`
	Rows       int64  `json:"rows"`
	Dropped    int64  `json:"dropped"`
	QueueDepth int    `json:"queue_depth"`
	Failed     bool   `json:"failed"`
	Error      string `json:"error,omitempty"`
}

// Gateway serves the query API. All fields are wired by the daemon before
// Handler is called; nil optional fields disable their endpoints.
type Gateway struct {
	// DaemonName labels responses and self-metrics.
	DaemonName string
	// Sets is the live set directory (required).
	Sets SetSource
	// Window, when non-nil, serves /api/v1/series from the recent-window
	// cache.
	Window *Window
	// Health, when non-nil, supplies producer health for /healthz.
	Health func() []ProducerHealth
	// Stores, when non-nil, supplies storage-policy health for /healthz.
	Stores func() []StoreHealth
	// Collect, when non-nil, contributes daemon self-metrics to /metrics.
	Collect func(*Expo)
	// Latency, when non-nil, serves per-hop sample-age histograms on
	// /api/v1/latency and as hop-latency quantiles on /metrics.
	Latency *obs.Pipeline
	// Journal, when non-nil, serves the daemon's event journal on
	// /api/v1/events.
	Journal *obs.Journal
	// Spans, when non-nil, serves the cross-tier span summaries — sample
	// age per (daemon, role, stage) over every traced hop below this tier —
	// on /api/v1/trace and as ldmsd_trace_hop_seconds on /metrics.
	Spans func() []obs.SpanLatency
	// Chains, when non-nil, serves each published set's current hop chain
	// on /api/v1/trace.
	Chains func() []obs.ChainSnapshot
	// TierRole, when non-nil, reports the daemon's position in a tiered
	// aggregation topology (leaf/mid/top) on /healthz and /metrics, so
	// topology consumers can render fan-in depth.
	TierRole func() string
	// Started stamps the gateway start time for uptime reporting.
	Started time.Time
	// Now supplies the gateway's clock (series window cut-off, uptime).
	// The owning daemon wires its scheduler clock so virtual-time runs
	// are deterministic; nil falls back to wall time.
	Now func() time.Time
	// PProf additionally mounts net/http/pprof under /debug/pprof/.
	PProf bool

	requests map[string]*atomic.Int64
	errors   atomic.Int64

	// Memstats cache for /metrics: runtime.ReadMemStats stops the world,
	// so scrapes within the TTL reuse the last reading instead of pausing
	// the daemon once per scraper. readMemStats is injectable for tests;
	// nil means runtime.ReadMemStats.
	readMemStats func(*runtime.MemStats)
	memMu        sync.Mutex
	memAt        time.Time
	memStats     runtime.MemStats
	memRoutines  int
}

// memStatsTTL bounds how often /metrics may stop the world for a fresh
// runtime.MemStats reading. Scrapes arriving faster than this — multiple
// Prometheus servers, dashboards polling sub-second — share one reading.
const memStatsTTL = time.Second

// memSnapshot returns the cached runtime reading, refreshing it when the
// TTL (on the gateway clock) has elapsed.
func (g *Gateway) memSnapshot() (runtime.MemStats, int) {
	now := g.now()
	g.memMu.Lock()
	defer g.memMu.Unlock()
	if g.memAt.IsZero() || now.Sub(g.memAt) >= memStatsTTL || now.Before(g.memAt) {
		if g.readMemStats != nil {
			g.readMemStats(&g.memStats)
		} else {
			runtime.ReadMemStats(&g.memStats)
		}
		g.memRoutines = runtime.NumGoroutine()
		g.memAt = now
	}
	return g.memStats, g.memRoutines
}

// now resolves the gateway clock, falling back to wall time when no
// daemon wired a scheduler clock in.
func (g *Gateway) now() time.Time {
	if g.Now != nil {
		return g.Now()
	}
	//ldms:wallclock standalone gateways without a daemon default to wall time
	return time.Now()
}

// Handler builds the gateway's HTTP routing table.
func (g *Gateway) Handler() http.Handler {
	g.requests = make(map[string]*atomic.Int64)
	mux := http.NewServeMux()
	mux.Handle("/api/v1/dir", g.count("/api/v1/dir", g.handleDir))
	mux.Handle("/api/v1/sets/", g.count("/api/v1/sets", g.handleSet))
	mux.Handle("/api/v1/metrics", g.count("/api/v1/metrics", g.handleMetrics))
	mux.Handle("/api/v1/series", g.count("/api/v1/series", g.handleSeries))
	mux.Handle("/api/v1/aggregate", g.count("/api/v1/aggregate", g.handleAggregate))
	mux.Handle("/api/v1/latency", g.count("/api/v1/latency", g.handleLatency))
	mux.Handle("/api/v1/events", g.count("/api/v1/events", g.handleEvents))
	mux.Handle("/api/v1/trace", g.count("/api/v1/trace", g.handleTrace))
	mux.Handle("/healthz", g.count("/healthz", g.handleHealthz))
	mux.Handle("/metrics", g.count("/metrics", g.handleExposition))
	if g.PProf {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// count wraps a handler with a per-endpoint request counter.
func (g *Gateway) count(key string, h http.HandlerFunc) http.Handler {
	c := &atomic.Int64{}
	g.requests[key] = c
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.Add(1)
		h(w, r)
	})
}

// fail writes a JSON error response.
func (g *Gateway) fail(w http.ResponseWriter, code int, format string, args ...any) {
	g.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// jsonValue renders a metric value with its natural JSON type.
func jsonValue(v metric.Value) any {
	switch v.Type {
	case metric.TypeF32, metric.TypeD64:
		return v.F64()
	case metric.TypeS8, metric.TypeS16, metric.TypeS32, metric.TypeS64:
		return v.S64()
	default:
		return v.U64()
	}
}

// setInfo is one /api/v1/dir entry.
type setInfo struct {
	Instance   string    `json:"instance"`
	Schema     string    `json:"schema"`
	CompID     uint64    `json:"comp_id"`
	Card       int       `json:"card"`
	Consistent bool      `json:"consistent"`
	DGN        uint64    `json:"dgn"`
	Timestamp  time.Time `json:"timestamp"`
	MetaSize   int       `json:"meta_size"`
	DataSize   int       `json:"data_size"`
	Local      bool      `json:"local"`
}

// handleDir serves the set directory.
func (g *Gateway) handleDir(w http.ResponseWriter, r *http.Request) {
	names := g.Sets.Dir()
	infos := make([]setInfo, 0, len(names))
	for _, n := range names {
		set := g.Sets.Get(n)
		if set == nil {
			continue
		}
		infos = append(infos, setInfo{
			Instance:   set.Name(),
			Schema:     set.SchemaName(),
			CompID:     set.CompID(0),
			Card:       set.Card(),
			Consistent: set.Consistent(),
			DGN:        set.DGN(),
			Timestamp:  set.Timestamp(),
			MetaSize:   set.MetaSize(),
			DataSize:   set.DataSize(),
			Local:      set.Local(),
		})
	}
	writeJSON(w, map[string]any{"daemon": g.DaemonName, "sets": infos})
}

// handleSet serves one set snapshot: every metric read under a single lock
// acquisition so the response is never torn across an update pass.
func (g *Gateway) handleSet(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/api/v1/sets/")
	if name == "" {
		g.fail(w, http.StatusBadRequest, "set name required: /api/v1/sets/<instance>")
		return
	}
	set := g.Sets.Get(name)
	if set == nil {
		g.fail(w, http.StatusNotFound, "no set %q", name)
		return
	}
	vals := make([]metric.Value, set.Card())
	ts, dgn, consistent, n := set.ReadValues(vals)
	type metricOut struct {
		Name  string `json:"name"`
		Type  string `json:"type"`
		Value any    `json:"value"`
	}
	metrics := make([]metricOut, n)
	for i := 0; i < n; i++ {
		metrics[i] = metricOut{
			Name:  set.MetricName(i),
			Type:  set.MetricType(i).String(),
			Value: jsonValue(vals[i]),
		}
	}
	writeJSON(w, map[string]any{
		"instance":   set.Name(),
		"schema":     set.SchemaName(),
		"comp_id":    set.CompID(0),
		"timestamp":  ts,
		"dgn":        dgn,
		"consistent": consistent,
		"metrics":    metrics,
	})
}

// latestOut is one per-producer latest value.
type latestOut struct {
	Instance   string    `json:"instance"`
	Schema     string    `json:"schema"`
	CompID     uint64    `json:"comp_id"`
	Type       string    `json:"type"`
	Value      any       `json:"value"`
	Timestamp  time.Time `json:"timestamp"`
	Consistent bool      `json:"consistent"`
}

// handleMetrics serves the latest value of one metric across every set
// that carries it (live data, straight from the mirrored sets). Without
// ?metric= it lists the metric names available.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	metricName := r.URL.Query().Get("metric")
	comp, err := parseComp(r.URL.Query().Get("comp"))
	if err != nil {
		g.fail(w, http.StatusBadRequest, "bad comp: %v", err)
		return
	}
	if metricName == "" {
		seen := make(map[string]bool)
		for _, n := range g.Sets.Dir() {
			set := g.Sets.Get(n)
			if set == nil {
				continue
			}
			for i := 0; i < set.Card(); i++ {
				seen[set.MetricName(i)] = true
			}
		}
		names := make([]string, 0, len(seen))
		for n := range seen {
			names = append(names, n)
		}
		// Dir() is sorted but metric names are not; sort for determinism.
		sort.Strings(names)
		writeJSON(w, map[string]any{"metrics": names})
		return
	}
	var out []latestOut
	var vals []metric.Value
	for _, n := range g.Sets.Dir() {
		set := g.Sets.Get(n)
		if set == nil {
			continue
		}
		i, ok := set.MetricIndex(metricName)
		if !ok || (comp != 0 && set.CompID(0) != comp) {
			continue
		}
		if c := set.Card(); cap(vals) < c {
			vals = make([]metric.Value, c)
		}
		ts, _, consistent, _ := set.ReadValues(vals[:set.Card()])
		out = append(out, latestOut{
			Instance:   set.Name(),
			Schema:     set.SchemaName(),
			CompID:     set.CompID(0),
			Type:       set.MetricType(i).String(),
			Value:      jsonValue(vals[i]),
			Timestamp:  ts,
			Consistent: consistent,
		})
	}
	writeJSON(w, map[string]any{"metric": metricName, "values": out})
}

// handleSeries serves recent history of one metric from the in-memory
// window: no storage backend is touched. step= asks the server to
// downsample each series onto a step grid (agg= picks the per-bucket
// reduction, default avg) so dashboard payloads are O(buckets) rather
// than O(raw points).
func (g *Gateway) handleSeries(w http.ResponseWriter, r *http.Request) {
	if g.Window == nil {
		g.fail(w, http.StatusServiceUnavailable, "recent window disabled (start the gateway with a window)")
		return
	}
	q := r.URL.Query()
	metricName := q.Get("metric")
	if metricName == "" {
		g.fail(w, http.StatusBadRequest, "metric= is required")
		return
	}
	comp, err := parseComp(q.Get("comp"))
	if err != nil {
		g.fail(w, http.StatusBadRequest, "bad comp: %v", err)
		return
	}
	window := g.Window.Retention()
	if s := q.Get("window"); s != "" {
		window, err = time.ParseDuration(s)
		if err != nil {
			g.fail(w, http.StatusBadRequest, "bad window: %v", err)
			return
		}
	}
	var step time.Duration
	if s := q.Get("step"); s != "" {
		step, err = time.ParseDuration(s)
		if err != nil || step <= 0 {
			g.fail(w, http.StatusBadRequest, "bad step %q (want a positive duration)", s)
			return
		}
	}
	aggFn := q.Get("agg")
	if aggFn == "" {
		aggFn = "avg"
	}
	if aggFn != "last" && !ValidAggFunc(aggFn) {
		g.fail(w, http.StatusBadRequest, "bad agg %q (want sum, avg, min, max, count, quantile, last)", aggFn)
		return
	}
	qv, err := parseQuantile(q.Get("q"))
	if err != nil {
		g.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	series := g.Window.Query(metricName, comp, g.now().Add(-window))
	type pointOut struct {
		Time  time.Time `json:"time"`
		Value any       `json:"value"`
	}
	type seriesOut struct {
		Instance string     `json:"instance"`
		Schema   string     `json:"schema"`
		CompID   uint64     `json:"comp_id"`
		Type     string     `json:"type"`
		Points   []pointOut `json:"points"`
	}
	out := make([]seriesOut, len(series))
	for i, s := range series {
		if step > 0 {
			s = Downsample(s, step, aggFn, qv)
		}
		so := seriesOut{
			Instance: s.Instance,
			Schema:   s.Schema,
			CompID:   s.CompID,
			Type:     s.Type.String(),
			Points:   make([]pointOut, len(s.Points)),
		}
		for j, p := range s.Points {
			so.Points[j] = pointOut{Time: p.Time, Value: jsonValue(p.Value)}
		}
		out[i] = so
	}
	resp := map[string]any{
		"metric": metricName,
		"window": window.String(),
		"series": out,
	}
	if step > 0 {
		resp["step"] = step.String()
		resp["agg"] = aggFn
	}
	writeJSON(w, resp)
}

// handleAggregate folds one metric across every matching producer into
// a single series, reduced server-side (sum/avg/min/max/count/quantile
// per step bucket). The multi-producer dashboard view becomes one
// request with an O(buckets) response.
func (g *Gateway) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if g.Window == nil {
		g.fail(w, http.StatusServiceUnavailable, "recent window disabled (start the gateway with a window)")
		return
	}
	q := r.URL.Query()
	metricName := q.Get("metric")
	if metricName == "" {
		g.fail(w, http.StatusBadRequest, "metric= is required")
		return
	}
	comp, err := parseComp(q.Get("comp"))
	if err != nil {
		g.fail(w, http.StatusBadRequest, "bad comp: %v", err)
		return
	}
	window := g.Window.Retention()
	if s := q.Get("window"); s != "" {
		window, err = time.ParseDuration(s)
		if err != nil {
			g.fail(w, http.StatusBadRequest, "bad window: %v", err)
			return
		}
	}
	var step time.Duration
	if s := q.Get("step"); s != "" {
		step, err = time.ParseDuration(s)
		if err != nil || step < 0 {
			g.fail(w, http.StatusBadRequest, "bad step %q", s)
			return
		}
	}
	fn := q.Get("func")
	if fn == "" {
		fn = "avg"
	}
	qv, err := parseQuantile(q.Get("q"))
	if err != nil {
		g.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := g.Window.Aggregate(metricName, comp, g.now().Add(-window), step, fn, qv)
	if err != nil {
		g.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	type pointOut struct {
		Time  time.Time `json:"time"`
		Value float64   `json:"value"`
		Count int       `json:"count"`
	}
	points := make([]pointOut, len(res.Points))
	for i, p := range res.Points {
		points[i] = pointOut{Time: p.Time, Value: p.Value, Count: p.Count}
	}
	resp := map[string]any{
		"metric":       res.Metric,
		"func":         res.Func,
		"window":       window.String(),
		"series_count": res.SeriesCount,
		"points":       points,
	}
	if step > 0 {
		resp["step"] = step.String()
	}
	if fn == "quantile" {
		resp["q"] = qv
	}
	writeJSON(w, resp)
}

// handleLatency serves the per-hop sample-age histograms: for each hop of
// the pipeline (pull, window, store), the count and conservative p50/p95/
// p99/max in seconds. Ages measure sample transaction timestamp against
// the daemon clock at the hop, so aggregate end-to-end delay — the figure
// the paper's overhead analysis cares about — is read directly.
func (g *Gateway) handleLatency(w http.ResponseWriter, r *http.Request) {
	if g.Latency == nil {
		g.fail(w, http.StatusServiceUnavailable, "latency tracing disabled")
		return
	}
	type hopOut struct {
		Hop        string  `json:"hop"`
		Count      uint64  `json:"count"`
		P50Seconds float64 `json:"p50_seconds"`
		P95Seconds float64 `json:"p95_seconds"`
		P99Seconds float64 `json:"p99_seconds"`
		MaxSeconds float64 `json:"max_seconds"`
	}
	hops := g.Latency.Snapshot()
	out := make([]hopOut, len(hops))
	for i, h := range hops {
		out[i] = hopOut{
			Hop:        h.Hop,
			Count:      h.Count,
			P50Seconds: h.P50.Seconds(),
			P95Seconds: h.P95.Seconds(),
			P99Seconds: h.P99.Seconds(),
			MaxSeconds: h.Max.Seconds(),
		}
	}
	writeJSON(w, map[string]any{"daemon": g.DaemonName, "hops": out})
}

// handleEvents serves the daemon's event journal, newest last. Query
// parameters: n= caps the count (default 100), severity= filters to that
// level and above, component= and subject= filter exactly.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	if g.Journal == nil {
		g.fail(w, http.StatusServiceUnavailable, "event journal disabled")
		return
	}
	q := r.URL.Query()
	n := 100
	if s := q.Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			g.fail(w, http.StatusBadRequest, "bad n %q", s)
			return
		}
		n = v
	}
	minSev := obs.SevInfo
	if s := q.Get("severity"); s != "" {
		v, err := obs.ParseSeverity(s)
		if err != nil {
			g.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		minSev = v
	}
	events := g.Journal.Query(n, minSev, q.Get("component"), q.Get("subject"))
	if events == nil {
		events = []obs.Event{}
	}
	writeJSON(w, map[string]any{
		"daemon":   g.DaemonName,
		"total":    g.Journal.Total(),
		"capacity": g.Journal.Cap(),
		"events":   events,
	})
}

// handleTrace serves cross-tier sample tracing: the span summaries (sample
// age per daemon/role/stage over every traced hop below this tier) and
// each published set's current hop chain, origin hop first. Chain stamps
// are scheduler-clock unix nanoseconds; 0 means the stage was not reached.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	if g.Spans == nil && g.Chains == nil {
		g.fail(w, http.StatusServiceUnavailable, "sample tracing disabled")
		return
	}
	type spanOut struct {
		Daemon     string  `json:"daemon"`
		Role       string  `json:"role"`
		Stage      string  `json:"stage"`
		Count      uint64  `json:"count"`
		P50Seconds float64 `json:"p50_seconds"`
		P95Seconds float64 `json:"p95_seconds"`
		P99Seconds float64 `json:"p99_seconds"`
		MaxSeconds float64 `json:"max_seconds"`
	}
	type hopOut struct {
		Daemon string `json:"daemon"`
		Role   string `json:"role"`
		Pull   int64  `json:"pull,omitempty"`
		Reduce int64  `json:"reduce,omitempty"`
		Window int64  `json:"window,omitempty"`
		Store  int64  `json:"store,omitempty"`
	}
	type chainOut struct {
		Set   string   `json:"set"`
		Depth int      `json:"depth"`
		Hops  []hopOut `json:"hops"`
	}
	spans := []spanOut{}
	if g.Spans != nil {
		for _, s := range g.Spans() {
			spans = append(spans, spanOut{
				Daemon:     s.Daemon,
				Role:       s.Role.String(),
				Stage:      s.Stage.String(),
				Count:      s.Count,
				P50Seconds: s.P50.Seconds(),
				P95Seconds: s.P95.Seconds(),
				P99Seconds: s.P99.Seconds(),
				MaxSeconds: s.Max.Seconds(),
			})
		}
	}
	chains := []chainOut{}
	if g.Chains != nil {
		for _, c := range g.Chains() {
			co := chainOut{Set: c.Set, Depth: len(c.Hops), Hops: make([]hopOut, len(c.Hops))}
			for i, h := range c.Hops {
				co.Hops[i] = hopOut{
					Daemon: h.Daemon,
					Role:   h.Role.String(),
					Pull:   h.Pull,
					Reduce: h.Reduce,
					Window: h.Window,
					Store:  h.Store,
				}
			}
			chains = append(chains, co)
		}
	}
	writeJSON(w, map[string]any{"daemon": g.DaemonName, "spans": spans, "chains": chains})
}

// handleHealthz reports daemon liveness plus per-producer staleness and
// per-storage-policy failures; a stale producer or a failed store policy
// degrades the response to 503 so orchestration probes and external
// failover watchdogs (paper §IV-B) can react.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	var producers []ProducerHealth
	if g.Health != nil {
		producers = g.Health()
	}
	var stale []string
	for _, p := range producers {
		if p.Stale {
			stale = append(stale, p.Name)
		}
	}
	var stores []StoreHealth
	if g.Stores != nil {
		stores = g.Stores()
	}
	var failedStores []string
	for _, s := range stores {
		if s.Failed {
			failedStores = append(failedStores, s.Policy)
		}
	}
	code := http.StatusOK
	if len(stale) > 0 || len(failedStores) > 0 {
		status = "degraded"
		code = http.StatusServiceUnavailable
	}
	resp := map[string]any{
		"status":    status,
		"daemon":    g.DaemonName,
		"producers": producers,
	}
	if g.TierRole != nil {
		resp["tier"] = g.TierRole()
	}
	if len(stores) > 0 {
		resp["stores"] = stores
	}
	if !g.Started.IsZero() {
		resp["uptime_seconds"] = g.now().Sub(g.Started).Seconds()
	}
	if len(stale) > 0 {
		resp["stale"] = stale
	}
	if len(failedStores) > 0 {
		resp["failed_stores"] = failedStores
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

// expoPool recycles exposition builders across scrapes: the grown byte
// buffer and family map survive between requests, so a steady-state
// scrape allocates nothing inside Expo itself (asserted in
// bench_test.go).
var expoPool = sync.Pool{New: func() any { return NewExpo() }}

// handleExposition serves the Prometheus-style self-metrics text page.
func (g *Gateway) handleExposition(w http.ResponseWriter, r *http.Request) {
	e := expoPool.Get().(*Expo)
	defer expoPool.Put(e)
	e.Reset()
	self := []Label{{"daemon", g.DaemonName}}
	for key, c := range g.requests {
		e.Counter("ldmsd_http_requests_total", "Gateway requests served, by endpoint.",
			append([]Label{{"endpoint", key}}, self...), float64(c.Load()))
	}
	e.Counter("ldmsd_http_errors_total", "Gateway error responses.", self, float64(g.errors.Load()))
	if g.TierRole != nil {
		e.Gauge("ldmsd_tier_info", "Daemon tier role in the aggregation topology (constant 1; role in the label).",
			append([]Label{{"tier", g.TierRole()}}, self...), 1)
	}
	if g.Window != nil {
		ws := g.Window.Stats()
		e.Gauge("ldmsd_window_sets", "Set instances tracked by the recent window.", self, float64(ws.SeriesSets))
		e.Gauge("ldmsd_window_series", "Metric series tracked by the recent window.", self, float64(ws.Series))
		e.Gauge("ldmsd_window_points", "Samples currently retained across all window series.", self, float64(ws.Points))
		e.Gauge("ldmsd_window_bytes", "Approximate retained-storage footprint of the window.", self, float64(ws.Bytes))
		e.Gauge("ldmsd_window_shards", "Lock stripes over the window set index.", self, float64(g.Window.Shards()))
		compressed := 0.0
		if g.Window.Compressed() {
			compressed = 1
		}
		e.Gauge("ldmsd_window_compressed", "1 when sealed window history is Gorilla-compressed.", self, compressed)
		e.Counter("ldmsd_window_observed_total", "Samples recorded into the recent window.", self, float64(ws.Observed))
		e.Counter("ldmsd_window_skipped_total", "Samples the window dropped (inconsistent or stale DGN).", self, float64(ws.Skipped))
		e.Counter("ldmsd_window_queries_total", "Series/latest queries answered from the window.", self, float64(ws.Queries))
		e.Counter("ldmsd_window_aggregates_total", "Server-side aggregate queries answered from the window.", self, float64(ws.Aggregates))
	}
	if g.Latency != nil {
		for _, h := range g.Latency.Snapshot() {
			hop := []Label{{"hop", h.Hop}, {"daemon", g.DaemonName}}
			e.Counter("ldmsd_hop_latency_count", "Samples recorded at each pipeline hop.", hop, float64(h.Count))
			for _, qv := range []struct {
				q string
				d time.Duration
			}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
				e.Gauge("ldmsd_hop_latency_seconds", "Sample age quantiles at each pipeline hop (log2-bucket upper bounds).",
					append([]Label{{"quantile", qv.q}}, hop...), qv.d.Seconds())
			}
		}
		// Cumulative histogram rendering of the same hop histograms, so
		// PromQL histogram_quantile and cross-daemon aggregation work on the
		// raw log2 buckets (the quantile gauges above cannot be aggregated).
		for _, nh := range g.Latency.ByHop() {
			s := nh.Hist.Snapshot()
			hop := []Label{{"hop", nh.Hop}, {"daemon", g.DaemonName}}
			e.emitHistBuckets("ldmsd_hop_latency_seconds", hop, s)
		}
	}
	if g.Spans != nil {
		for _, s := range g.Spans() {
			span := []Label{
				{"hop_daemon", s.Daemon}, {"role", s.Role.String()},
				{"stage", s.Stage.String()}, {"daemon", g.DaemonName},
			}
			e.Counter("ldmsd_trace_hop_count", "Traced samples observed per hop daemon, role, and stage.",
				span, float64(s.Count))
			for _, qv := range []struct {
				q string
				d time.Duration
			}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
				e.Gauge("ldmsd_trace_hop_seconds", "Cross-tier sample age quantiles per hop daemon, role, and stage (log2-bucket upper bounds).",
					append([]Label{{"quantile", qv.q}}, span...), qv.d.Seconds())
			}
		}
	}
	if g.Journal != nil {
		info, warn, errs := g.Journal.CountBySeverity()
		for _, sv := range []struct {
			sev string
			n   int64
		}{{"info", info}, {"warn", warn}, {"error", errs}} {
			e.Counter("ldmsd_events_total", "Journal events recorded, by severity.",
				append([]Label{{"severity", sv.sev}}, self...), float64(sv.n))
		}
	}
	ms, goroutines := g.memSnapshot()
	e.Gauge("ldmsd_goroutines", "Goroutines in the daemon process.", self, float64(goroutines))
	e.Gauge("ldmsd_heap_alloc_bytes", "Live heap bytes.", self, float64(ms.HeapAlloc))
	if g.Collect != nil {
		g.Collect(e)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e.WriteTo(w)
}

// emitHistBuckets renders one log2 age histogram as Prometheus cumulative
// counters — <name>_bucket{le=...}, <name>_sum, <name>_count — so PromQL
// histogram_quantile and cross-daemon aggregation work on the raw buckets.
// Only buckets up to the highest occupied one are emitted (plus +Inf), so
// an empty histogram costs three lines, not 65.
func (e *Expo) emitHistBuckets(name string, labels []Label, s obs.HistSnapshot) {
	bucket := name + "_bucket"
	e.Family(bucket, "counter", "Cumulative sample-age distribution (log2 bucket upper bounds in seconds).")
	top := -1
	for i := 0; i < obs.NumBuckets; i++ {
		if s.Buckets[i] != 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		le := strconv.FormatFloat(obs.BucketUpper(i).Seconds(), 'g', -1, 64)
		e.Sample(bucket, append(append([]Label{}, labels...), Label{"le", le}), float64(cum))
	}
	e.Sample(bucket, append(append([]Label{}, labels...), Label{"le", "+Inf"}), float64(s.Count))
	e.Counter(name+"_sum", "Total observed sample age in seconds.", labels, s.Sum.Seconds())
	e.Counter(name+"_count", "Total observations in the cumulative buckets.", labels, float64(s.Count))
}

// parseComp parses a component-id query parameter ("" = all).
func parseComp(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

// parseQuantile parses a q= query parameter ("" = 0.95).
func parseQuantile(s string) (float64, error) {
	if s == "" {
		return 0.95, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 || v > 1 {
		return 0, fmt.Errorf("bad q %q (want a value in [0, 1])", s)
	}
	return v, nil
}
