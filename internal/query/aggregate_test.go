package query

import (
	"testing"
	"time"

	"goldms/internal/metric"
)

// fillAggWindow loads 4 producers × 6 samples at a 1 s cadence; producer
// p's sample i has a = p*100 + i.
func fillAggWindow(t *testing.T, compress bool) (*Window, time.Time) {
	t.Helper()
	w := NewWindowOpts(WindowOptions{Points: 256, Retention: time.Hour, Compress: compress})
	// Align to the widest step the tests use so buckets don't straddle.
	base := time.Now().Truncate(2 * time.Second)
	for p := 1; p <= 4; p++ {
		s := testSet(t, "n"+string(rune('0'+p))+"/win", uint64(p))
		for i := 0; i < 6; i++ {
			sample(s, uint64(p*100+i), base.Add(time.Duration(i)*time.Second))
			w.Observe(s)
		}
	}
	return w, base
}

func TestAggregateWholeWindow(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "rings"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			w, base := fillAggWindow(t, compress)
			res, err := w.Aggregate("a", 0, base.Add(-time.Minute), 0, "sum", 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.SeriesCount != 4 || len(res.Points) != 1 {
				t.Fatalf("sum result = %+v", res)
			}
			// sum over p=1..4, i=0..5 of p*100+i = 100*(1+2+3+4)*6 + 4*(0+..+5)
			want := float64(100*10*6 + 4*15)
			if res.Points[0].Value != want {
				t.Fatalf("sum = %g, want %g", res.Points[0].Value, want)
			}
			if res.Points[0].Count != 24 {
				t.Fatalf("count = %d, want 24", res.Points[0].Count)
			}
			// Whole-window bucket is stamped at the newest folded sample.
			if got := res.Points[0].Time; !got.Equal(base.Add(5 * time.Second)) {
				t.Fatalf("bucket time = %v, want %v", got, base.Add(5*time.Second))
			}

			mx, err := w.Aggregate("a", 0, base.Add(-time.Minute), 0, "max", 0)
			if err != nil {
				t.Fatal(err)
			}
			if mx.Points[0].Value != 405 {
				t.Fatalf("max = %g, want 405", mx.Points[0].Value)
			}
			mn, _ := w.Aggregate("a", 0, base.Add(-time.Minute), 0, "min", 0)
			if mn.Points[0].Value != 100 {
				t.Fatalf("min = %g, want 100", mn.Points[0].Value)
			}
			avg, _ := w.Aggregate("a", 0, base.Add(-time.Minute), 0, "avg", 0)
			if avg.Points[0].Value != want/24 {
				t.Fatalf("avg = %g, want %g", avg.Points[0].Value, want/24)
			}
		})
	}
}

func TestAggregateStepBuckets(t *testing.T) {
	w, base := fillAggWindow(t, false)
	res, err := w.Aggregate("a", 0, base.Add(-time.Minute), 2*time.Second, "count", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("buckets = %d, want 3", len(res.Points))
	}
	for i, p := range res.Points {
		// 4 producers × 2 samples per 2 s bucket.
		if p.Value != 8 || p.Count != 8 {
			t.Fatalf("bucket %d = %+v, want value 8", i, p)
		}
		if i > 0 && !res.Points[i-1].Time.Before(p.Time) {
			t.Fatalf("buckets out of order: %v then %v", res.Points[i-1].Time, p.Time)
		}
	}
}

func TestAggregateQuantileAndComp(t *testing.T) {
	w, base := fillAggWindow(t, false)
	med, err := w.Aggregate("a", 0, base.Add(-time.Minute), 0, "quantile", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 24 values; nearest-rank median of p*100+i.
	if v := med.Points[0].Value; v < 200 || v > 305 {
		t.Fatalf("median = %g, not between the middle producers", v)
	}
	p0, _ := w.Aggregate("a", 0, base.Add(-time.Minute), 0, "quantile", 0)
	if p0.Points[0].Value != 100 {
		t.Fatalf("q0 = %g, want 100", p0.Points[0].Value)
	}
	p1, _ := w.Aggregate("a", 0, base.Add(-time.Minute), 0, "quantile", 1)
	if p1.Points[0].Value != 405 {
		t.Fatalf("q1 = %g, want 405", p1.Points[0].Value)
	}

	// Component filter folds one producer only.
	one, err := w.Aggregate("a", 3, base.Add(-time.Minute), 0, "max", 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.SeriesCount != 1 || one.Points[0].Value != 305 {
		t.Fatalf("comp=3 max = %+v", one)
	}
}

func TestAggregateErrors(t *testing.T) {
	w, base := fillAggWindow(t, false)
	if _, err := w.Aggregate("a", 0, base, 0, "median", 0); err == nil {
		t.Fatal("unknown func accepted")
	}
	if _, err := w.Aggregate("a", 0, base, 0, "quantile", 1.5); err == nil {
		t.Fatal("out-of-range quantile accepted")
	}
	res, err := w.Aggregate("nope", 0, base, 0, "sum", 0)
	if err != nil || res.SeriesCount != 0 || len(res.Points) != 0 {
		t.Fatalf("missing metric: res=%+v err=%v", res, err)
	}
	if st := w.Stats(); st.Aggregates == 0 {
		t.Fatal("aggregate counter not advancing")
	}
}

func TestDownsample(t *testing.T) {
	base := time.Unix(1700000000, 0)
	s := Series{Metric: "a", Type: metric.TypeU64}
	for i := 0; i < 10; i++ {
		s.Points = append(s.Points, Point{
			Time:  base.Add(time.Duration(i) * time.Second),
			Value: metric.Value{Type: metric.TypeU64, Bits: uint64(i)},
		})
	}

	// step <= 0 and empty series pass through unchanged.
	if got := Downsample(s, 0, "avg", 0); len(got.Points) != 10 || got.Type != metric.TypeU64 {
		t.Fatalf("step=0 modified the series: %+v", got)
	}
	if got := Downsample(Series{}, time.Second, "avg", 0); len(got.Points) != 0 {
		t.Fatalf("empty series grew points: %+v", got)
	}

	// avg folds to float points at bucket starts.
	ds := Downsample(s, 5*time.Second, "avg", 0)
	if ds.Type != metric.TypeD64 || len(ds.Points) != 2 {
		t.Fatalf("avg downsample = %+v", ds)
	}
	if ds.Points[0].Value.F64() != 2 || ds.Points[1].Value.F64() != 7 {
		t.Fatalf("avg buckets = %g, %g; want 2, 7", ds.Points[0].Value.F64(), ds.Points[1].Value.F64())
	}
	for _, p := range ds.Points {
		if p.Time.UnixNano()%int64(5*time.Second) != 0 {
			t.Fatalf("bucket not on the step grid: %v", p.Time)
		}
	}

	// "last" keeps the newest raw point (and the original type).
	last := Downsample(s, 5*time.Second, "last", 0)
	if last.Type != metric.TypeU64 || len(last.Points) != 2 {
		t.Fatalf("last downsample = %+v", last)
	}
	if last.Points[0].Value.U64() != 4 || last.Points[1].Value.U64() != 9 {
		t.Fatalf("last buckets = %d, %d; want 4, 9", last.Points[0].Value.U64(), last.Points[1].Value.U64())
	}
}

func TestBucketKeyNegative(t *testing.T) {
	step := time.Duration(10) // 10 ns grid
	if k := bucketKey(-5, step); k != -10 {
		t.Fatalf("bucketKey(-5) = %d, want -10", k)
	}
	if k := bucketKey(25, step); k != 20 {
		t.Fatalf("bucketKey(25) = %d, want 20", k)
	}
	if k := bucketKey(123, 0); k != 0 {
		t.Fatalf("bucketKey step=0 = %d, want 0", k)
	}
}
