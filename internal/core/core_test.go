package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"goldms/internal/procfs"
)

// TestFacadePipeline drives a complete sampler -> aggregator -> CSV
// pipeline through the core facade alone, over real TCP.
func TestFacadePipeline(t *testing.T) {
	node := procfs.NewNodeState("fnode", 2, 4<<20)
	smp, err := NewDaemon(DaemonOptions{
		Name: "fnode", FS: procfs.NewSimFS(node),
		Transports: []Transport{Sock()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer smp.Stop()
	addr, err := smp.Listen("sock", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smp.ExecScript("load name=meminfo\nstart name=meminfo interval=10000"); err != nil {
		t.Fatal(err)
	}

	csv := filepath.Join(t.TempDir(), "m.csv")
	agg, err := NewDaemon(DaemonOptions{Name: "agg", Transports: []Transport{Sock()}})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()
	if _, err := agg.ExecScript(fmt.Sprintf(`
		prdcr_add name=fnode xprt=sock host=%s interval=10000
		prdcr_start name=fnode
		updtr_add name=all interval=10000
		updtr_prdcr_add name=all prdcr=fnode
		updtr_start name=all
		strgp_add name=st plugin=store_csv schema=meminfo container=%s`, addr, csv)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && agg.Stats().StoredRows < 3 {
		time.Sleep(10 * time.Millisecond)
	}
	if agg.Stats().StoredRows < 3 {
		t.Fatalf("facade pipeline stored %d rows", agg.Stats().StoredRows)
	}
	agg.StoragePolicy("st").Flush()
	b, err := os.ReadFile(csv)
	if err != nil || !strings.Contains(string(b), "MemTotal") {
		t.Fatalf("csv = %q err=%v", firstLine(b), err)
	}
}

func firstLine(b []byte) string {
	s := string(b)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func TestFacadeSetConstruction(t *testing.T) {
	sch := NewSchema("facade")
	sch.MustAddMetric("a", U64)
	set, err := NewSet("f/1", sch)
	if err != nil {
		t.Fatal(err)
	}
	set.BeginTransaction()
	set.SetU64(0, 42)
	set.EndTransaction(time.Unix(1, 0))
	if set.U64(0) != 42 {
		t.Error("facade set round trip failed")
	}
}

func TestFacadePluginLists(t *testing.T) {
	if len(SamplerPlugins()) < 10 {
		t.Errorf("sampler plugins = %v", SamplerPlugins())
	}
	if len(StorePlugins()) < 3 {
		t.Errorf("store plugins = %v", StorePlugins())
	}
	for _, tr := range []Transport{Sock(), RDMA(), UGNI()} {
		if tr.Name() == "" || tr.MaxFanIn() <= 0 {
			t.Errorf("transport %v malformed", tr)
		}
	}
}
