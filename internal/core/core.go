// Package core is the top-level API of the LDMS reproduction — the
// paper's primary contribution assembled from its subsystems:
//
//   - metric sets with the metadata/data generation-number protocol
//     (goldms/internal/metric),
//   - the ldmsd engine: sampler policies, producers (active, passive,
//     standby), updaters, storage policies, runtime control
//     (goldms/internal/ldmsd),
//   - the pull transports: sock, simulated rdma/ugni, in-process mem
//     (goldms/internal/transport),
//   - sampling and storage plugins (goldms/internal/sampler,
//     goldms/internal/store).
//
// The aliases below are the stable surface examples and binaries build
// against; the subpackages remain importable directly for finer control.
//
// A minimal pipeline:
//
//	smp, _ := core.NewDaemon(core.DaemonOptions{
//		Name:       "node1",
//		Transports: []core.Transport{core.Sock()},
//	})
//	smp.Listen("sock", "127.0.0.1:10444")
//	smp.ExecScript("load name=meminfo\nstart name=meminfo interval=1000000")
//
//	agg, _ := core.NewDaemon(core.DaemonOptions{
//		Name:       "agg",
//		Transports: []core.Transport{core.Sock()},
//	})
//	agg.ExecScript(`
//		prdcr_add name=node1 xprt=sock host=127.0.0.1:10444 interval=1s
//		prdcr_start name=node1
//		updtr_add name=all interval=1s
//		updtr_prdcr_add name=all prdcr=node1
//		updtr_start name=all
//		strgp_add name=st plugin=store_csv schema=meminfo container=/tmp/meminfo.csv`)
package core

import (
	"goldms/internal/ldmsd"
	"goldms/internal/metric"
	"goldms/internal/sampler"
	"goldms/internal/store"
	"goldms/internal/transport"
)

// Daemon is one ldmsd instance (sampler and/or aggregator by
// configuration).
type Daemon = ldmsd.Daemon

// DaemonOptions configure NewDaemon.
type DaemonOptions = ldmsd.Options

// NewDaemon creates an ldmsd.
func NewDaemon(opts DaemonOptions) (*Daemon, error) { return ldmsd.New(opts) }

// Transport is a transport factory usable in DaemonOptions.Transports.
type Transport = transport.Factory

// Sock returns the TCP socket transport.
func Sock() Transport { return transport.SockFactory{} }

// RDMA returns the simulated Infiniband RDMA transport.
func RDMA() Transport { return transport.RDMAFactory{Kind: "rdma"} }

// UGNI returns the simulated Cray Gemini RDMA transport.
func UGNI() Transport { return transport.RDMAFactory{Kind: "ugni"} }

// Set is an LDMS metric set.
type Set = metric.Set

// MetricType identifies a metric's value type.
type MetricType = metric.Type

// Metric value types.
const (
	U8  = metric.TypeU8
	S8  = metric.TypeS8
	U16 = metric.TypeU16
	S16 = metric.TypeS16
	U32 = metric.TypeU32
	S32 = metric.TypeS32
	U64 = metric.TypeU64
	S64 = metric.TypeS64
	F32 = metric.TypeF32
	D64 = metric.TypeD64
)

// Schema is a metric set blueprint.
type Schema = metric.Schema

// NewSchema starts an empty schema.
func NewSchema(name string) *Schema { return metric.NewSchema(name) }

// NewSet instantiates a set from a schema.
func NewSet(instance string, schema *Schema, opts ...metric.Option) (*Set, error) {
	return metric.New(instance, schema, opts...)
}

// SamplerPlugins lists the registered sampling plugins.
func SamplerPlugins() []string { return sampler.Names() }

// StorePlugins lists the registered storage plugins.
func StorePlugins() []string { return store.Names() }

// Version is the release version of this LDMS reproduction.
const Version = "1.0.0"
