package obs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Cross-tier sample tracing: every daemon stamps a hop record — who it
// is, its tier role, and the scheduler-clock times at which the sample
// passed each pipeline stage — onto the samples it serves upward. The
// chain of hop records rides the wire inside a capability-negotiated
// trace block (see internal/transport), so a top-tier aggregator can
// attribute a sample's end-to-end age hop by hop instead of only in
// total. This file holds the hop record model, its wire codec, and the
// span recorder that turns decoded hop stamps into per-(daemon, role,
// stage) age histograms.

// HopRole is a daemon's position in the tiered topology, as carried in
// its hop records.
type HopRole uint8

// Hop roles, matching Daemon.TierRole.
const (
	RoleLeaf HopRole = iota // samples locally, serves upward
	RoleMid                 // pulls producers and serves a tier above
	RoleTop                 // pulls producers, serves nothing upward
	nRoles
)

// String returns the role's topology name.
func (r HopRole) String() string {
	switch r {
	case RoleLeaf:
		return "leaf"
	case RoleMid:
		return "mid"
	case RoleTop:
		return "top"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// ParseRole converts a topology name back to a HopRole.
func ParseRole(s string) (HopRole, error) {
	for r := HopRole(0); r < nRoles; r++ {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown hop role %q", s)
}

// Stage is one pipeline stage within a hop.
type Stage uint8

// Pipeline stages a hop can stamp, in sample-flow order. They mirror
// the Pipeline hop names: pull-complete, reduce publish, window insert,
// store enqueue.
const (
	StagePull Stage = iota
	StageReduce
	StageWindow
	StageStore
	nStages
)

// String returns the stage's pipeline-hop name.
func (s Stage) String() string {
	switch s {
	case StagePull:
		return HopPull
	case StageReduce:
		return HopReduce
	case StageWindow:
		return HopWindow
	case StageStore:
		return HopStore
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// HopRecord is one daemon's stamp set on a sample's path: which daemon,
// its tier role, and the scheduler-clock time (unix nanoseconds, 0 =
// stage not reached) at which the sample cleared each pipeline stage.
type HopRecord struct {
	Daemon string
	Role   HopRole
	// Pull is the sampler's transaction-end time on a leaf hop, and the
	// pull-complete time on aggregator hops.
	Pull   int64
	Reduce int64
	Window int64
	Store  int64
}

// Stamp records one stage's time on the hop.
func (h *HopRecord) Stamp(s Stage, t int64) {
	switch s {
	case StagePull:
		h.Pull = t
	case StageReduce:
		h.Reduce = t
	case StageWindow:
		h.Window = t
	case StageStore:
		h.Store = t
	}
}

// Stages iterates the hop's stamped stages in flow order.
func (h *HopRecord) Stages(f func(Stage, int64)) {
	if h.Pull != 0 {
		f(StagePull, h.Pull)
	}
	if h.Reduce != 0 {
		f(StageReduce, h.Reduce)
	}
	if h.Window != 0 {
		f(StageWindow, h.Window)
	}
	if h.Store != 0 {
		f(StageStore, h.Store)
	}
}

// MaxTraceHops bounds the hop chain carried on the wire: deep enough
// for any sane topology (the paper's deployments are 2–3 tiers), small
// enough that a hostile peer cannot balloon decode work. Chains deeper
// than the cap keep their most recent hops.
const MaxTraceHops = 16

// Trace block wire layout (all little-endian), appended to update
// responses when both peers negotiated the trace capability:
//
//	u32 magic "TRC1"
//	u8  hop count (<= MaxTraceHops)
//	per hop:
//	  u8 name length | name bytes
//	  u8 role
//	  i64 pull | i64 reduce | i64 window | i64 store (unix ns, 0=unset)
const traceMagic = 'T' | 'R'<<8 | 'C'<<16 | '1'<<24

// Trace codec errors.
var (
	ErrTraceMagic     = errors.New("obs: trace block has bad magic")
	ErrTraceTruncated = errors.New("obs: trace block truncated")
	ErrTraceHops      = errors.New("obs: trace block hop count exceeds cap")
	ErrTraceRole      = errors.New("obs: trace block has unknown hop role")
	ErrTraceTrailing  = errors.New("obs: trace block has trailing bytes")
)

// appendU32 and appendI64 write little-endian integers.
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendI64(b []byte, v int64) []byte {
	u := uint64(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func readI64(b []byte) int64 {
	return int64(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
}

// AppendHops encodes a hop chain onto dst. Chains longer than
// MaxTraceHops keep the last MaxTraceHops entries (the local hop — the
// chain's tail — always survives); daemon names longer than 255 bytes
// truncate.
func AppendHops(dst []byte, hops []HopRecord) []byte {
	if len(hops) > MaxTraceHops {
		hops = hops[len(hops)-MaxTraceHops:]
	}
	dst = appendU32(dst, traceMagic)
	dst = append(dst, byte(len(hops)))
	for i := range hops {
		h := &hops[i]
		name := h.Daemon
		if len(name) > 255 {
			name = name[:255]
		}
		dst = append(dst, byte(len(name)))
		dst = append(dst, name...)
		dst = append(dst, byte(h.Role))
		dst = appendI64(dst, h.Pull)
		dst = appendI64(dst, h.Reduce)
		dst = appendI64(dst, h.Window)
		dst = appendI64(dst, h.Store)
	}
	return dst
}

// HopDecoder decodes trace blocks with daemon-name interning, so the
// per-pass decode of a steady topology allocates nothing: every name in
// the block has been seen before and resolves through the intern map
// without a string conversion.
type HopDecoder struct {
	names map[string]string
}

// intern resolves a name's canonical string, allocating only on first
// sight.
func (d *HopDecoder) intern(b []byte) string {
	if d.names == nil {
		d.names = make(map[string]string)
	}
	if s, ok := d.names[string(b)]; ok { // compiler elides the conversion
		return s
	}
	s := string(b)
	d.names[s] = s
	return s
}

// Decode parses a trace block into dst (reusing its capacity),
// validating every bound against hostile input. The whole block must be
// consumed exactly.
func (d *HopDecoder) Decode(b []byte, dst []HopRecord) ([]HopRecord, error) {
	if len(b) < 5 {
		return dst, ErrTraceTruncated
	}
	magic := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if magic != traceMagic {
		return dst, ErrTraceMagic
	}
	n := int(b[4])
	if n > MaxTraceHops {
		return dst, ErrTraceHops
	}
	pos := 5
	for i := 0; i < n; i++ {
		if pos >= len(b) {
			return dst, ErrTraceTruncated
		}
		nameLen := int(b[pos])
		pos++
		if pos+nameLen+1+32 > len(b) {
			return dst, ErrTraceTruncated
		}
		name := d.intern(b[pos : pos+nameLen])
		pos += nameLen
		role := HopRole(b[pos])
		pos++
		if role >= nRoles {
			return dst, ErrTraceRole
		}
		dst = append(dst, HopRecord{
			Daemon: name,
			Role:   role,
			Pull:   readI64(b[pos:]),
			Reduce: readI64(b[pos+8:]),
			Window: readI64(b[pos+16:]),
			Store:  readI64(b[pos+24:]),
		})
		pos += 32
	}
	if pos != len(b) {
		return dst, ErrTraceTrailing
	}
	return dst, nil
}

// SpanKey identifies one per-hop-per-stage histogram.
type SpanKey struct {
	Daemon string
	Role   HopRole
	Stage  Stage
}

// SpanRecorder aggregates sample ages per (daemon, role, stage) across
// every hop chain the owning daemon decodes. Record is the hot path —
// one lock-free map load plus a Hist increment, zero allocations once a
// key has been seen — because the top tier of a 10k-sampler topology
// records several spans per pulled set per pass.
type SpanRecorder struct {
	mu sync.Mutex
	m  atomic.Pointer[map[SpanKey]*Hist]
}

// NewSpanRecorder returns an empty recorder.
func NewSpanRecorder() *SpanRecorder {
	r := &SpanRecorder{}
	m := make(map[SpanKey]*Hist)
	r.m.Store(&m)
	return r
}

// Record adds one observation: the sample's age when daemon's stage
// stamped it.
//
//ldms:hotpath
func (r *SpanRecorder) Record(daemon string, role HopRole, stage Stage, age time.Duration) {
	m := *r.m.Load()
	if h, ok := m[SpanKey{daemon, role, stage}]; ok {
		h.Record(age)
		return
	}
	r.grow(SpanKey{daemon, role, stage}).Record(age)
}

// grow inserts a histogram for a new key via copy-on-write, so Record
// stays lock-free.
func (r *SpanRecorder) grow(k SpanKey) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.m.Load()
	if h, ok := old[k]; ok {
		return h
	}
	next := make(map[SpanKey]*Hist, len(old)+1)
	for kk, vv := range old {
		next[kk] = vv
	}
	h := &Hist{}
	next[k] = h
	r.m.Store(&next)
	return h
}

// SpanLatency is one (daemon, role, stage) quantile summary.
type SpanLatency struct {
	Daemon string
	Role   HopRole
	Stage  Stage
	Count  uint64
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Snapshot summarizes every span histogram, sorted by (daemon, role,
// stage) so renderings are deterministic.
func (r *SpanRecorder) Snapshot() []SpanLatency {
	m := *r.m.Load()
	out := make([]SpanLatency, 0, len(m))
	for k, h := range m {
		s := h.Snapshot()
		out = append(out, SpanLatency{
			Daemon: k.Daemon,
			Role:   k.Role,
			Stage:  k.Stage,
			Count:  s.Count,
			P50:    s.Quantile(0.50),
			P95:    s.Quantile(0.95),
			P99:    s.Quantile(0.99),
			Max:    s.Max(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Daemon != out[j].Daemon {
			return out[i].Daemon < out[j].Daemon
		}
		if out[i].Role != out[j].Role {
			return out[i].Role < out[j].Role
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// ChainSnapshot is one set's current hop chain, origin hop first, as
// served on /api/v1/trace and the control interface.
type ChainSnapshot struct {
	Set  string
	Hops []HopRecord
}
