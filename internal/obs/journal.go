package obs

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Severity classifies journal events.
type Severity int8

// Severities, in increasing order of concern.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

// String renders the severity for the API and control interface.
func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the string form.
func (s *Severity) UnmarshalJSON(b []byte) error {
	v, err := ParseSeverity(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity parses "info", "warn" or "error".
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info":
		return SevInfo, nil
	case "warn", "warning":
		return SevWarn, nil
	case "error":
		return SevError, nil
	default:
		return SevInfo, fmt.Errorf("obs: unknown severity %q (want info, warn or error)", s)
	}
}

// level maps the severity onto its slog level for journal draining.
func (s Severity) level() slog.Level {
	switch s {
	case SevWarn:
		return slog.LevelWarn
	case SevError:
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Event component names used by the daemon.
const (
	CompDaemon   = "daemon"
	CompProducer = "producer"
	CompUpdater  = "updater"
	CompStore    = "store"
	CompConfig   = "config"
	CompGateway  = "gateway"
)

// Event is one journal entry. Seq is a monotonically increasing sequence
// number assigned at append time; gaps in a served window mean the ring
// wrapped past entries in between.
type Event struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	Sev       Severity  `json:"severity"`
	Component string    `json:"component"`
	Subject   string    `json:"subject,omitempty"`
	Epoch     uint64    `json:"epoch,omitempty"`
	Message   string    `json:"message"`
}

// Journal is a fixed-size ring buffer of operational events. Appends from
// any number of goroutines (updater pool, store workers, connection pool,
// control interface) are serialized by one mutex — events are rare
// relative to samples, so the ring is deliberately simple rather than
// lock-free — and readers copy out under the same mutex, so a snapshot is
// never torn. Every append is also drained to the journal's structured
// logger at the event's severity level.
type Journal struct {
	now func() time.Time
	log *slog.Logger

	mu   sync.Mutex
	ring []Event
	seq  uint64 // total events ever appended

	bySev [3]atomic.Int64
}

// DefaultJournalSize is the ring capacity when none is configured.
const DefaultJournalSize = 512

// NewJournal creates a journal holding the most recent capacity events
// (DefaultJournalSize if capacity <= 0). now supplies event timestamps —
// the daemon's scheduler clock, so virtual-time daemons journal
// deterministic simulated times. logger receives every event as a
// structured log record; nil discards.
func NewJournal(capacity int, now func() time.Time, logger *slog.Logger) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalSize
	}
	if now == nil {
		//ldms:wallclock default clock for standalone journals; daemons pass their scheduler clock
		now = time.Now
	}
	if logger == nil {
		logger = Discard()
	}
	return &Journal{
		now:  now,
		log:  logger,
		ring: make([]Event, capacity),
	}
}

// Append records one event, stamping its time and sequence number, and
// drains it to the structured logger. subject and epoch are optional
// ("" / 0 omit them).
//
//ldms:hotpath
func (j *Journal) Append(sev Severity, component, subject string, epoch uint64, message string) {
	j.mu.Lock()
	ev := Event{
		Seq:       j.seq,
		Time:      j.now(),
		Sev:       sev,
		Component: component,
		Subject:   subject,
		Epoch:     epoch,
		Message:   message,
	}
	j.ring[j.seq%uint64(len(j.ring))] = ev
	j.seq++
	j.mu.Unlock()
	j.bySev[sev].Add(1)

	// Drain to the structured log outside the ring lock. A discard
	// handler rejects the record at the Enabled check, so silent daemons
	// pay no formatting cost.
	attrs := make([]slog.Attr, 0, 3)
	attrs = append(attrs, slog.String("component", component))
	if subject != "" {
		attrs = append(attrs, slog.String("subject", subject))
	}
	if epoch != 0 {
		attrs = append(attrs, slog.Uint64("epoch", epoch))
	}
	j.log.LogAttrs(context.Background(), sev.level(), message, attrs...)
}

// Appendf is Append with a formatted message.
func (j *Journal) Appendf(sev Severity, component, subject string, epoch uint64, format string, args ...any) {
	j.Append(sev, component, subject, epoch, fmt.Sprintf(format, args...))
}

// Total returns how many events have ever been appended (the ring holds
// at most its capacity of the most recent ones).
func (j *Journal) Total() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Cap returns the ring capacity.
func (j *Journal) Cap() int { return len(j.ring) }

// CountBySeverity returns total appended events per severity, for the
// /metrics exposition.
func (j *Journal) CountBySeverity() (info, warn, errs int64) {
	return j.bySev[SevInfo].Load(), j.bySev[SevWarn].Load(), j.bySev[SevError].Load()
}

// Recent returns up to n of the most recent events in ascending sequence
// order (oldest of the window first, like a log tail). n <= 0 returns
// everything retained.
func (j *Journal) Recent(n int) []Event {
	return j.Query(n, SevInfo, "", "")
}

// Query returns up to n of the most recent events with severity >=
// minSev, optionally restricted to one component and/or subject, in
// ascending sequence order. n <= 0 means no count limit.
func (j *Journal) Query(n int, minSev Severity, component, subject string) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	retained := j.seq
	if retained > uint64(len(j.ring)) {
		retained = uint64(len(j.ring))
	}
	// Walk backwards collecting matches, then reverse into ascending
	// order.
	var out []Event
	for i := uint64(0); i < retained; i++ {
		ev := j.ring[(j.seq-1-i)%uint64(len(j.ring))]
		if ev.Sev < minSev ||
			(component != "" && ev.Component != component) ||
			(subject != "" && ev.Subject != subject) {
			continue
		}
		out = append(out, ev)
		if n > 0 && len(out) == n {
			break
		}
	}
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	return out
}

// LastMatch returns the most recent event satisfying match, scanning
// newest-first. ok is false when no retained event matches.
func (j *Journal) LastMatch(match func(Event) bool) (ev Event, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	retained := j.seq
	if retained > uint64(len(j.ring)) {
		retained = uint64(len(j.ring))
	}
	for i := uint64(0); i < retained; i++ {
		e := j.ring[(j.seq-1-i)%uint64(len(j.ring))]
		if match(e) {
			return e, true
		}
	}
	return Event{}, false
}
