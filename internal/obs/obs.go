// Package obs is the daemon's self-observability layer: the monitoring
// system monitoring itself. The paper promises continuous collection with
// known, bounded latency (sampling→aggregation→storage at 1 s–1 min
// periods, §IV); this package provides the instruments that make that
// promise checkable on a live daemon:
//
//   - Hist: lock-free log2-bucketed latency histograms. The daemon keeps
//     one per pipeline hop (pull completion, window insert, store flush),
//     each recording a sample's age — scheduler now minus the sample's
//     own timestamp — so "how old is a sample by the time it hits the
//     store?" has a measured answer (p50/p95/p99 on /api/v1/latency and
//     the /metrics exposition). Recording is one atomic increment; the
//     pull path's budget is one timestamp read plus that increment.
//
//   - Journal: a fixed-size ring buffer of operational events (producer
//     connect/disconnect epochs, standby activation, lookups, skipped
//     passes, store failures, config commands) with severity, timestamp
//     and component fields. Served at /api/v1/events, by `ldmsctl
//     events`, and drained to structured logs as entries are appended.
//
//   - log/slog plumbing: the daemon logs through a *slog.Logger (text or
//     JSON, level-gated via ldmsd -log-level/-log-format); libraries and
//     tests default to a discard logger so nothing is paid when logging
//     is off.
//
// Timestamps come from an injected clock, so virtual-time daemons record
// deterministic simulated times and experiment output stays reproducible.
package obs
