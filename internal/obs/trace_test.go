package obs

import (
	"errors"
	"testing"
	"time"
)

func sampleChain() []HopRecord {
	return []HopRecord{
		{Daemon: "leaf01", Role: RoleLeaf, Pull: 1_000_000_000},
		{Daemon: "mid-a", Role: RoleMid, Pull: 1_050_000_000, Reduce: 1_060_000_000, Window: 1_061_000_000, Store: 1_062_000_000},
		{Daemon: "top", Role: RoleTop, Pull: 1_100_000_000, Store: 1_110_000_000},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	chain := sampleChain()
	wire := AppendHops(nil, chain)

	var dec HopDecoder
	got, err := dec.Decode(wire, nil)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(chain) {
		t.Fatalf("decoded %d hops, want %d", len(got), len(chain))
	}
	for i := range chain {
		if got[i] != chain[i] {
			t.Errorf("hop %d: got %+v want %+v", i, got[i], chain[i])
		}
	}
}

func TestTraceRoundTripEmpty(t *testing.T) {
	wire := AppendHops(nil, nil)
	var dec HopDecoder
	got, err := dec.Decode(wire, nil)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d hops from empty chain", len(got))
	}
}

// TestTraceChainCap: chains deeper than MaxTraceHops keep their most
// recent hops, so the local hop (the tail) always survives.
func TestTraceChainCap(t *testing.T) {
	chain := make([]HopRecord, MaxTraceHops+5)
	for i := range chain {
		chain[i] = HopRecord{Daemon: "d" + string(rune('a'+i)), Role: RoleMid, Pull: int64(i + 1)}
	}
	wire := AppendHops(nil, chain)

	var dec HopDecoder
	got, err := dec.Decode(wire, nil)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != MaxTraceHops {
		t.Fatalf("decoded %d hops, want cap %d", len(got), MaxTraceHops)
	}
	if got[len(got)-1] != chain[len(chain)-1] {
		t.Errorf("tail hop lost: got %+v want %+v", got[len(got)-1], chain[len(chain)-1])
	}
}

func TestTraceNameTruncation(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	wire := AppendHops(nil, []HopRecord{{Daemon: string(long), Role: RoleLeaf, Pull: 1}})
	var dec HopDecoder
	got, err := dec.Decode(wire, nil)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got[0].Daemon) != 255 {
		t.Fatalf("name length %d, want truncation to 255", len(got[0].Daemon))
	}
}

// TestTraceDecodeHostile walks every decoder error path with corrupted
// input; a hostile or buggy peer must never panic the decoder.
func TestTraceDecodeHostile(t *testing.T) {
	good := AppendHops(nil, sampleChain())

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTraceTruncated},
		{"short header", good[:3], ErrTraceTruncated},
		{"bad magic", append([]byte{'X', 'X', 'X', 'X'}, good[4:]...), ErrTraceMagic},
		{"hop count over cap", append(append([]byte{}, good[:4]...), append([]byte{MaxTraceHops + 1}, good[5:]...)...), ErrTraceHops},
		{"truncated hop", good[:len(good)-1], ErrTraceTruncated},
		{"truncated name", good[:6], ErrTraceTruncated},
		{"trailing bytes", append(append([]byte{}, good...), 0xff), ErrTraceTrailing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var dec HopDecoder
			if _, err := dec.Decode(tc.b, nil); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	// Unknown role byte.
	bad := append([]byte{}, good...)
	bad[5+1+len("leaf01")] = byte(nRoles)
	var dec HopDecoder
	if _, err := dec.Decode(bad, nil); !errors.Is(err, ErrTraceRole) {
		t.Fatalf("bad role: got %v, want %v", err, ErrTraceRole)
	}
}

// TestTraceDecodeAllocs: once every daemon name has been interned, a
// steady-topology decode allocates nothing beyond the caller's dst.
func TestTraceDecodeAllocs(t *testing.T) {
	wire := AppendHops(nil, sampleChain())
	var dec HopDecoder
	dst := make([]HopRecord, 0, MaxTraceHops)
	if _, err := dec.Decode(wire, dst); err != nil { // warm the intern map
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		if _, err = dec.Decode(wire, dst[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decode allocates %.1f times per call, want 0", allocs)
	}
}

func TestParseRole(t *testing.T) {
	for r := HopRole(0); r < nRoles; r++ {
		got, err := ParseRole(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRole(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseRole("galaxy"); err == nil {
		t.Error("ParseRole accepted unknown role")
	}
}

func TestHopRecordStages(t *testing.T) {
	h := HopRecord{Daemon: "d", Pull: 10, Window: 30}
	var stages []Stage
	var times []int64
	h.Stages(func(s Stage, ts int64) {
		stages = append(stages, s)
		times = append(times, ts)
	})
	if len(stages) != 2 || stages[0] != StagePull || stages[1] != StageWindow {
		t.Fatalf("stages = %v, want [pull window]", stages)
	}
	if times[0] != 10 || times[1] != 30 {
		t.Fatalf("times = %v", times)
	}
	// Zero-valued hops stamp nothing.
	bare := HopRecord{Daemon: "d"}
	bare.Stages(func(Stage, int64) { t.Fatal("bare hop yielded a stage") })
}

func TestSpanRecorder(t *testing.T) {
	r := NewSpanRecorder()
	for i := 0; i < 100; i++ {
		r.Record("leaf01", RoleLeaf, StagePull, time.Millisecond)
		r.Record("mid-a", RoleMid, StageReduce, 2*time.Millisecond)
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(snap))
	}
	// Sorted by daemon: leaf01 before mid-a.
	if snap[0].Daemon != "leaf01" || snap[0].Stage != StagePull || snap[0].Count != 100 {
		t.Errorf("span 0 = %+v", snap[0])
	}
	if snap[1].Daemon != "mid-a" || snap[1].Role != RoleMid || snap[1].Count != 100 {
		t.Errorf("span 1 = %+v", snap[1])
	}
	if snap[0].P50 <= 0 || snap[0].Max <= 0 {
		t.Errorf("span 0 quantiles unset: %+v", snap[0])
	}
}

// TestSpanRecordAllocs pins the hot path: after a key's first sight,
// Record is a lock-free map load plus an atomic histogram increment.
// CI's bench guard asserts the same via BenchmarkSpanRecord.
func TestSpanRecordAllocs(t *testing.T) {
	r := NewSpanRecorder()
	r.Record("leaf01", RoleLeaf, StagePull, time.Millisecond) // warm
	allocs := testing.AllocsPerRun(100, func() {
		r.Record("leaf01", RoleLeaf, StagePull, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Record allocates %.1f times per call, want 0", allocs)
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			daemons := [...]string{"a", "b", "c", "d"}
			for i := 0; i < 1000; i++ {
				r.Record(daemons[(g+i)%4], RoleMid, Stage(i%int(nStages)), time.Microsecond)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	var total uint64
	for _, s := range r.Snapshot() {
		total += s.Count
	}
	if total != 4000 {
		t.Fatalf("recorded %d observations, want 4000", total)
	}
}
