package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	h.Record(0)
	h.Record(1) // bucket 1: [1, 1]
	h.Record(3 * time.Nanosecond)
	h.Record(1 * time.Microsecond)
	h.Record(-time.Second) // clamps to 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Buckets[0] != 2 { // the 0 and the clamped negative
		t.Errorf("bucket 0 = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[1] != 1 {
		t.Errorf("bucket 1 = %d, want 1", s.Buckets[1])
	}
	if s.Buckets[2] != 1 { // 3 ns → Len64(3)=2
		t.Errorf("bucket 2 = %d, want 1", s.Buckets[2])
	}
	if s.Buckets[10] != 1 { // 1000 ns → Len64(1000)=10
		t.Errorf("bucket 10 = %d, want 1", s.Buckets[10])
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if q := h.Snapshot().Quantile(0.99); q != 0 {
		t.Errorf("empty p99 = %v, want 0", q)
	}

	// 90 fast observations (~1µs), 10 slow (~1ms): p50 resolves in the
	// fast bucket, p99 in the slow one, and estimates are conservative
	// (bucket upper bound ≥ true value).
	for i := 0; i < 90; i++ {
		h.Record(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	s := h.Snapshot()
	p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	if p50 < time.Microsecond || p50 >= 2*time.Microsecond {
		t.Errorf("p50 = %v, want in [1µs, 2µs)", p50)
	}
	if p99 < time.Millisecond || p99 >= 2*time.Millisecond {
		t.Errorf("p99 = %v, want in [1ms, 2ms)", p99)
	}
	if p50 > p95 || p95 > p99 {
		t.Errorf("quantiles not monotonic: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if m := s.Max(); m < time.Millisecond {
		t.Errorf("max = %v, want >= 1ms", m)
	}
}

func TestHistConcurrentRecord(t *testing.T) {
	var h Hist
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*1000+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
}

// TestHistRecordAllocs pins the hot-path contract: recording a hop
// latency never allocates.
func TestHistRecordAllocs(t *testing.T) {
	var h Hist
	if n := testing.AllocsPerRun(1000, func() { h.Record(123 * time.Microsecond) }); n != 0 {
		t.Fatalf("Record allocates %v per call, want 0", n)
	}
}

func TestPipelineSnapshot(t *testing.T) {
	var p Pipeline
	p.Pull.Record(time.Millisecond)
	p.Pull.Record(2 * time.Millisecond)
	p.Window.Record(3 * time.Millisecond)
	p.Reduce.Record(4 * time.Millisecond)
	hops := p.Snapshot()
	if len(hops) != 4 {
		t.Fatalf("hops = %d, want 4", len(hops))
	}
	if hops[0].Hop != HopPull || hops[1].Hop != HopReduce || hops[2].Hop != HopWindow || hops[3].Hop != HopStore {
		t.Fatalf("hop order = %v", hops)
	}
	if hops[0].Count != 2 || hops[1].Count != 1 || hops[2].Count != 1 || hops[3].Count != 0 {
		t.Errorf("counts = %d/%d/%d/%d", hops[0].Count, hops[1].Count, hops[2].Count, hops[3].Count)
	}
	if hops[3].P99 != 0 {
		t.Errorf("empty store hop p99 = %v, want 0", hops[3].P99)
	}
	if hops[0].P50 < time.Millisecond {
		t.Errorf("pull p50 = %v, want >= 1ms", hops[0].P50)
	}
}
