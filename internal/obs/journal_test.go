package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a deterministic event clock advancing 1s per call.
func testClock() func() time.Time {
	t := time.Unix(1000, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func TestJournalAppendRecent(t *testing.T) {
	j := NewJournal(8, testClock(), nil)
	j.Append(SevInfo, CompProducer, "n1", 1, "connected")
	j.Append(SevWarn, CompUpdater, "u1", 0, "pass skipped")
	j.Append(SevError, CompStore, "s1", 0, "plugin failed")

	evs := j.Recent(0)
	if len(evs) != 3 {
		t.Fatalf("recent = %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
	}
	if evs[0].Message != "connected" || evs[0].Epoch != 1 || evs[0].Component != CompProducer {
		t.Errorf("first event = %+v", evs[0])
	}
	if !evs[1].Time.After(evs[0].Time) {
		t.Errorf("timestamps not increasing: %v then %v", evs[0].Time, evs[1].Time)
	}
	if got := j.Total(); got != 3 {
		t.Errorf("total = %d, want 3", got)
	}
	info, warn, errs := j.CountBySeverity()
	if info != 1 || warn != 1 || errs != 1 {
		t.Errorf("severity counts = %d/%d/%d", info, warn, errs)
	}

	// Count limit serves the most recent window.
	tail := j.Recent(2)
	if len(tail) != 2 || tail[0].Message != "pass skipped" || tail[1].Message != "plugin failed" {
		t.Errorf("recent(2) = %+v", tail)
	}
}

func TestJournalRingOverflow(t *testing.T) {
	j := NewJournal(4, testClock(), nil)
	for i := 0; i < 10; i++ {
		j.Appendf(SevInfo, CompDaemon, "", 0, "event %d", i)
	}
	evs := j.Recent(0)
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := fmt.Sprintf("event %d", 6+i)
		if ev.Message != want {
			t.Errorf("retained[%d] = %q, want %q", i, ev.Message, want)
		}
	}
	if j.Total() != 10 {
		t.Errorf("total = %d, want 10", j.Total())
	}
}

func TestJournalQueryFilters(t *testing.T) {
	j := NewJournal(32, testClock(), nil)
	j.Append(SevInfo, CompProducer, "n1", 1, "connected")
	j.Append(SevInfo, CompProducer, "n2", 1, "connected")
	j.Append(SevWarn, CompUpdater, "u1", 0, "pass skipped")
	j.Append(SevError, CompStore, "s1", 0, "plugin failed")

	if got := j.Query(0, SevWarn, "", ""); len(got) != 2 {
		t.Errorf("minSev=warn → %d events, want 2", len(got))
	}
	if got := j.Query(0, SevInfo, CompProducer, ""); len(got) != 2 {
		t.Errorf("component=producer → %d events, want 2", len(got))
	}
	got := j.Query(0, SevInfo, "", "n2")
	if len(got) != 1 || got[0].Subject != "n2" {
		t.Errorf("subject=n2 → %+v", got)
	}

	ev, ok := j.LastMatch(func(e Event) bool { return e.Component == CompProducer })
	if !ok || ev.Subject != "n2" {
		t.Errorf("LastMatch = %+v ok=%v, want newest producer event (n2)", ev, ok)
	}
	if _, ok := j.LastMatch(func(e Event) bool { return e.Subject == "zz" }); ok {
		t.Error("LastMatch matched a nonexistent subject")
	}
}

// TestJournalDrainsToSlog checks every append lands in the structured
// log with its fields.
func TestJournalDrainsToSlog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	j := NewJournal(8, testClock(), logger)
	j.Append(SevWarn, CompProducer, "n1", 3, "disconnected")

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "disconnected" || rec["level"] != "WARN" ||
		rec["component"] != "producer" || rec["subject"] != "n1" || rec["epoch"] != float64(3) {
		t.Errorf("log record = %v", rec)
	}
}

func TestSeverityParseAndJSON(t *testing.T) {
	for _, s := range []Severity{SevInfo, SevWarn, SevError} {
		parsed, err := ParseSeverity(s.String())
		if err != nil || parsed != s {
			t.Errorf("round trip %v: parsed=%v err=%v", s, parsed, err)
		}
	}
	if _, err := ParseSeverity("loud"); err == nil {
		t.Error("ParseSeverity accepted garbage")
	}
	b, _ := json.Marshal(Event{Sev: SevError, Component: CompStore, Message: "x"})
	if !strings.Contains(string(b), `"severity":"error"`) {
		t.Errorf("event JSON = %s", b)
	}
	var ev Event
	if err := json.Unmarshal(b, &ev); err != nil || ev.Sev != SevError {
		t.Errorf("unmarshal: %v sev=%v", err, ev.Sev)
	}
}

// TestJournalConcurrent hammers the journal from concurrent writers and
// readers; -race is the assertion.
func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64, nil, nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Appendf(Severity(i%3), CompUpdater, fmt.Sprintf("u%d", g), uint64(i), "event %d", i)
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Recent(16)
				j.Query(0, SevWarn, CompUpdater, "")
				j.LastMatch(func(e Event) bool { return e.Sev == SevError })
				j.CountBySeverity()
			}
		}()
	}
	wg.Wait()
	if j.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", j.Total())
	}
	// The ring retains exactly its capacity, in order.
	evs := j.Recent(0)
	if len(evs) != 64 {
		t.Fatalf("retained = %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap in retained window: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}
