package obs

import (
	"testing"
	"time"
)

// BenchmarkHistRecord is the hot-path guard: one Record per pipeline hop
// rides inside the pull, window-insert and store-drain paths, so it must
// stay a single atomic increment — a few ns, 0 allocs (CI smoke asserts
// the alloc count; TestHistRecordAllocs pins it locally).
func BenchmarkHistRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Nanosecond)
	}
}

// BenchmarkHistRecordParallel shows contention behavior with every CPU
// recording into the same histogram (the updater pool case).
func BenchmarkHistRecordParallel(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 100 * time.Microsecond
		for pb.Next() {
			h.Record(d)
		}
	})
}

// BenchmarkSpanRecord guards the trace hot path: the top tier of a
// 10k-sampler topology records several spans per pulled set per pass,
// so steady-state Record must stay a lock-free map load plus a Hist
// increment — a few tens of ns, 0 allocs (CI asserts the alloc count;
// TestSpanRecordAllocs pins it locally).
func BenchmarkSpanRecord(b *testing.B) {
	r := NewSpanRecorder()
	r.Record("leaf01", RoleLeaf, StagePull, time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record("leaf01", RoleLeaf, StagePull, time.Duration(i)*time.Nanosecond)
	}
}

// BenchmarkPipelineSnapshot is the read side: one /api/v1/latency or
// /metrics scrape.
func BenchmarkPipelineSnapshot(b *testing.B) {
	var p Pipeline
	for i := 0; i < 1000; i++ {
		p.Pull.Record(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if hops := p.Snapshot(); len(hops) != 3 {
			b.Fatal("bad snapshot")
		}
	}
}

// BenchmarkJournalAppend measures one event append (mutex + ring write +
// rejected log record). Events are rare — connects, failures, config —
// so this is not a hot path, but it should stay well under a microsecond.
func BenchmarkJournalAppend(b *testing.B) {
	j := NewJournal(512, nil, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Append(SevInfo, CompProducer, "n1", 1, "connected")
	}
}
