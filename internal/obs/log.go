package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Discard returns a logger that drops everything at the Enabled check,
// the default for library use and tests so silent daemons pay nothing.
func Discard() *slog.Logger {
	return slog.New(discardHandler{})
}

// discardHandler rejects every record. (slog.DiscardHandler exists from
// Go 1.24; this keeps the module buildable at its declared go 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool    { return false }
func (d discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return d }
func (d discardHandler) WithGroup(string) slog.Handler             { return d }

// NewLogger builds the daemon's structured logger: level is one of
// debug, info, warn, error; format is text or json. Output goes to w
// (conventionally stderr).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
