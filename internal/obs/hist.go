package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of a log2 histogram: bucket i counts
// durations d with bits.Len64(d nanoseconds) == i, i.e. bucket 0 holds
// exactly 0, bucket i≥1 holds [2^(i-1), 2^i) ns. 64 buckets cover every
// representable duration (~292 years), so recording never range-checks.
const histBuckets = 65

// Hist is a lock-free log2-bucketed latency histogram. Record is one
// atomic increment — no locks, no allocation, safe from any number of
// goroutines — which is what lets the pull, window and store hot paths
// carry one each without moving their benchmarks.
//
// Quantiles are estimated from a Snapshot: within the resolving bucket
// the estimate is the bucket's upper bound, so reported p50/p95/p99 are
// conservative (never under the true quantile by more than 2×, the
// inherent resolution of power-of-two buckets).
type Hist struct {
	buckets [histBuckets]atomic.Uint64
	// sum accumulates total observed nanoseconds so the Prometheus
	// exposition can emit a faithful _sum series next to the buckets.
	sum atomic.Uint64
}

// Record adds one observation. Negative durations (clock skew between
// the sampler's stamp and this daemon's clock) clamp to zero.
//
//ldms:hotpath
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bits.Len64(uint64(d))].Add(1)
	h.sum.Add(uint64(d))
}

// Count returns the total number of observations.
func (h *Hist) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Snapshot copies the current bucket counts. Concurrent Records may land
// between bucket loads; each observation is still counted exactly once
// in some later snapshot.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// HistSnapshot is a point-in-time copy of a histogram's buckets.
type HistSnapshot struct {
	Buckets [histBuckets]uint64
	Count   uint64
	// Sum is the total of all observations (may lag the buckets by
	// in-flight Records; monotone across snapshots).
	Sum time.Duration
}

// NumBuckets is the log2 bucket count of a Hist, exported for
// exposition emitters that iterate Buckets.
const NumBuckets = histBuckets

// BucketUpper returns the inclusive upper bound of bucket i in
// nanoseconds (0 for bucket 0), the `le` boundary of the Prometheus
// cumulative-bucket rendering.
func BucketUpper(i int) time.Duration { return bucketUpper(i) }

// bucketUpper returns the inclusive upper bound of bucket i in
// nanoseconds (0 for bucket 0).
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1)<<i - 1)
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket where the cumulative count crosses q·total. Zero
// observations estimate to 0.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Max returns the upper bound of the highest occupied bucket.
func (s HistSnapshot) Max() time.Duration {
	for i := len(s.Buckets) - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return bucketUpper(i)
		}
	}
	return 0
}

// Pipeline hop names, in sample-flow order.
const (
	HopPull   = "pull"   // sample timestamp → update received by the aggregator
	HopReduce = "reduce" // member sample timestamp → reduced-set publish (tiered fan-in)
	HopWindow = "window" // sample timestamp → recent-window insert
	HopStore  = "store"  // sample timestamp → row handed to the store plugin
)

// Pipeline bundles the per-hop age histograms of one daemon's sample
// path. The zero value is ready to use.
type Pipeline struct {
	Pull   Hist
	Reduce Hist
	Window Hist
	Store  Hist
}

// HopLatency is one hop's quantile summary, as served on
// /api/v1/latency and the control interface.
type HopLatency struct {
	Hop   string
	Count uint64
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// NamedHist pairs a pipeline hop name with its histogram, for
// exposition emitters that need raw buckets rather than quantiles.
type NamedHist struct {
	Hop  string
	Hist *Hist
}

// ByHop returns the pipeline's histograms with their hop names, in
// sample-flow order.
func (p *Pipeline) ByHop() []NamedHist {
	return []NamedHist{
		{HopPull, &p.Pull},
		{HopReduce, &p.Reduce},
		{HopWindow, &p.Window},
		{HopStore, &p.Store},
	}
}

// Snapshot summarizes every hop, in sample-flow order. Hops with no
// observations are included with zero quantiles so consumers always see
// the full pipeline shape.
func (p *Pipeline) Snapshot() []HopLatency {
	out := make([]HopLatency, 0, 4)
	for _, h := range []struct {
		name string
		h    *Hist
	}{{HopPull, &p.Pull}, {HopReduce, &p.Reduce}, {HopWindow, &p.Window}, {HopStore, &p.Store}} {
		s := h.h.Snapshot()
		out = append(out, HopLatency{
			Hop:   h.name,
			Count: s.Count,
			P50:   s.Quantile(0.50),
			P95:   s.Quantile(0.95),
			P99:   s.Quantile(0.99),
			Max:   s.Max(),
		})
	}
	return out
}
