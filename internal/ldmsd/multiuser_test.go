package ldmsd

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"goldms/internal/procfs"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// TestUserInstanceAlongsideSystemInstance reproduces §IV-G: "Users seeking
// additional data on these systems may run another LDMS instance
// configured to use their specified samplers and a different network port
// as part of their batch jobs." Two independent daemons sample the same
// node at different frequencies without interfering.
func TestUserInstanceAlongsideSystemInstance(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()

	node := testNode("n1")
	fs := procfs.NewSimFS(node)
	system, err := New(Options{
		Name: "n1", Scheduler: sch, FS: fs,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer system.Stop()
	if _, err := system.Listen("mem", "n1:411"); err != nil {
		t.Fatal(err)
	}
	if _, err := system.ExecScript("load name=meminfo\nstart name=meminfo interval=20s synchronous=1"); err != nil {
		t.Fatal(err)
	}

	// The user's own instance: different "port", own sampler set, higher
	// frequency for their job's duration.
	user, err := New(Options{
		Name: "n1-user", Scheduler: sch, FS: fs,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer user.Stop()
	if _, err := user.Listen("mem", "n1:20411"); err != nil {
		t.Fatal(err)
	}
	if _, err := user.ExecScript(`
		load name=loadavg
		config name=loadavg instance=n1-user/loadavg
		start name=loadavg interval=1s
	`); err != nil {
		t.Fatal(err)
	}

	sch.AdvanceBy(60 * time.Second)
	if got := system.Stats().Samples; got != 3 {
		t.Errorf("system samples = %d want 3 (20 s cadence)", got)
	}
	if got := user.Stats().Samples; got != 60 {
		t.Errorf("user samples = %d want 60 (1 s cadence)", got)
	}

	// Each instance serves only its own sets on its own port.
	conn, err := (transport.MemFactory{Net: net}).Dial("n1:20411")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	names, err := conn.Dir(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "n1-user/loadavg" {
		t.Errorf("user instance dir = %v", names)
	}
}

// TestPerSetUpdateFrequencies reproduces §IV-B: "Distinct metric sets can
// be collected and aggregated at different frequencies" — two updaters on
// one aggregator, each matching a different set, pulling on different
// schedules over separate connections to the same sampler.
func TestPerSetUpdateFrequencies(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	smp := virtualSampler(t, "n1", sch, net, 1)
	defer smp.Stop()
	if _, err := smp.ExecScript(`
		load name=meminfo
		start name=meminfo interval=1s
		load name=loadavg
		start name=loadavg interval=1s
	`); err != nil {
		t.Fatal(err)
	}

	agg, err := New(Options{
		Name: "agg", Scheduler: sch,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()
	// Two producers to the same sampler — "Multiple connections may be
	// established between an aggregator and a single collection target.
	// This supports different metric sets having different sampling
	// frequencies."
	csvFast := filepath.Join(t.TempDir(), "fast.csv")
	csvSlow := filepath.Join(t.TempDir(), "slow.csv")
	script := `
prdcr_add name=n1-fast xprt=mem host=n1 interval=1s
prdcr_start name=n1-fast
prdcr_add name=n1-slow xprt=mem host=n1 interval=1s
prdcr_start name=n1-slow
updtr_add name=fast interval=1s
updtr_prdcr_add name=fast prdcr=n1-fast
updtr_match_add name=fast match=loadavg
updtr_start name=fast
updtr_add name=slow interval=20s
updtr_prdcr_add name=slow prdcr=n1-slow
updtr_match_add name=slow match=meminfo
updtr_start name=slow
strgp_add name=sf plugin=store_csv schema=loadavg container=` + csvFast + `
strgp_add name=ss plugin=store_csv schema=meminfo container=` + csvSlow + `
`
	if _, err := agg.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(2 * time.Minute)

	fast := agg.StoragePolicy("sf").Rows()
	slow := agg.StoragePolicy("ss").Rows()
	if fast < 100 {
		t.Errorf("fast set rows = %d, want ~118 (1 s cadence)", fast)
	}
	if slow < 3 || slow > 8 {
		t.Errorf("slow set rows = %d, want ~5 (20 s cadence)", slow)
	}
	if fast < slow*15 {
		t.Errorf("frequencies not separated: fast %d vs slow %d", fast, slow)
	}
}
