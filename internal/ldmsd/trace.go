package ldmsd

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/metric"
	"goldms/internal/obs"
)

// tracePlane is the daemon's half of cross-tier sample tracing: one hop
// chain per set it publishes. A mirrored set's chain is whatever the
// producer attached on the wire (its upstream hops) plus this daemon's own
// hop, stamped as the sample clears each pipeline stage; a reduced set
// inherits the chain of its newest contributing member; a locally sampled
// set starts a fresh chain of one hop. The transport serves the chain
// upward through the Server.Trace hook on trace-negotiated connections,
// and every decoded upstream stamp feeds the span recorder so this tier
// can attribute sample age per (daemon, role, stage) for the whole subtree
// below it.
//
// All times come off the daemon's scheduler clock, so virtual-clock runs
// produce byte-identical chains on replay. Legacy peers that never
// negotiated the trace capability simply contribute no upstream hops: the
// chain restarts at this daemon and everything else works unchanged.
type tracePlane struct {
	d     *Daemon
	spans *obs.SpanRecorder

	mu      sync.Mutex
	sets    map[string]*setTrace
	dec     obs.HopDecoder
	scratch []obs.HopRecord // appendWire's chain assembly buffer

	decodeErrs atomic.Int64
}

// setTrace is one published set's chain state.
type setTrace struct {
	upstream []obs.HopRecord // hops inherited from the producer's trace block
	local    obs.HopRecord   // this daemon's hop for the current sample
}

// newTracePlane returns an empty trace plane for d.
func newTracePlane(d *Daemon) *tracePlane {
	return &tracePlane{d: d, spans: obs.NewSpanRecorder(), sets: make(map[string]*setTrace)}
}

// role maps the daemon's current tier role onto the wire enum.
func (tp *tracePlane) role() obs.HopRole {
	r, err := obs.ParseRole(tp.d.TierRole())
	if err != nil {
		return obs.RoleLeaf
	}
	return r
}

// entryLocked returns (creating if needed) the named set's chain state.
// A set first seen here — a locally sampled set being served or stored —
// starts a bare single-hop chain. Caller holds tp.mu.
func (tp *tracePlane) entryLocked(name string, role obs.HopRole) *setTrace {
	e := tp.sets[name]
	if e == nil {
		e = &setTrace{local: obs.HopRecord{Daemon: tp.d.name, Role: role}}
		tp.sets[name] = e
	}
	return e
}

// pulled installs the chain for one freshly pulled mirror: the upstream
// hops decoded from the producer's trace block (empty on legacy peers)
// plus this daemon's hop with its pull stamp. Every upstream stamp and the
// local pull feed the span recorder as sample age (stamp minus the
// sample's transaction-end time).
func (tp *tracePlane) pulled(name string, wire []byte, sampleTs, now time.Time) {
	role := tp.role()
	ts := sampleTs.UnixNano()
	tp.mu.Lock()
	e := tp.entryLocked(name, role)
	e.upstream = e.upstream[:0]
	if len(wire) > 0 {
		up, err := tp.dec.Decode(wire, e.upstream)
		if err != nil {
			// A malformed block from a negotiated peer: count it and fall
			// back to an untraced chain rather than poisoning the recorder.
			tp.decodeErrs.Add(1)
			up = up[:0]
		}
		e.upstream = up
	}
	e.local = obs.HopRecord{Daemon: tp.d.name, Role: role, Pull: now.UnixNano()}
	for i := range e.upstream {
		h := &e.upstream[i]
		h.Stages(func(st obs.Stage, stamp int64) {
			if age := stamp - ts; age >= 0 {
				tp.spans.Record(h.Daemon, h.Role, st, time.Duration(age))
			}
		})
	}
	tp.mu.Unlock()
	tp.spans.Record(tp.d.name, role, obs.StagePull, now.Sub(sampleTs))
}

// reduced installs the chain for one folded set published by in-flight
// reduction: the chain of the newest contributing member (upstream hops
// plus its pull stamp on this daemon's hop), with the reduce stage stamped
// at publish time.
func (tp *tracePlane) reduced(name, newest string, sampleTs, now time.Time) {
	role := tp.role()
	tp.mu.Lock()
	e := tp.entryLocked(name, role)
	e.upstream = e.upstream[:0]
	if src := tp.sets[newest]; src != nil && newest != "" {
		e.upstream = append(e.upstream, src.upstream...)
		e.local = src.local
	} else {
		e.local = obs.HopRecord{Daemon: tp.d.name, Role: role}
	}
	e.local.Reduce = now.UnixNano()
	tp.mu.Unlock()
	tp.spans.Record(tp.d.name, role, obs.StageReduce, now.Sub(sampleTs))
}

// stored stamps the window and store stages on a set's hop as storeSet
// fans the sample out. Locally sampled sets reaching a window or storage
// policy get their single-hop chain created here.
func (tp *tracePlane) stored(set *metric.Set, windowed, enqueued bool) {
	now := tp.d.sch.Now()
	ts := set.Timestamp()
	age := now.Sub(ts)
	role := tp.role()
	tp.mu.Lock()
	e := tp.entryLocked(set.Name(), role)
	if windowed {
		e.local.Window = now.UnixNano()
	}
	if enqueued {
		e.local.Store = now.UnixNano()
	}
	tp.mu.Unlock()
	if ts.IsZero() {
		return
	}
	if windowed {
		tp.spans.Record(tp.d.name, role, obs.StageWindow, age)
	}
	if enqueued {
		tp.spans.Record(tp.d.name, role, obs.StageStore, age)
	}
}

// appendWire is the transport Server.Trace hook: encode the set's current
// chain — upstream hops then this daemon's — onto dst. A set never pulled
// or stored (a freshly sampled local set) serves a bare identity hop, so
// the tier above still sees who it came from.
func (tp *tracePlane) appendWire(set *metric.Set, dst []byte) []byte {
	tp.mu.Lock()
	e := tp.entryLocked(set.Name(), tp.role())
	chain := tp.scratch[:0]
	chain = append(chain, e.upstream...)
	chain = append(chain, e.local)
	dst = obs.AppendHops(dst, chain)
	tp.scratch = chain
	tp.mu.Unlock()
	return dst
}

// drop releases a set's chain state when its mirror is released.
func (tp *tracePlane) drop(name string) {
	tp.mu.Lock()
	delete(tp.sets, name)
	tp.mu.Unlock()
}

// chains snapshots every set's current hop chain, sorted by set name.
func (tp *tracePlane) chains() []obs.ChainSnapshot {
	tp.mu.Lock()
	out := make([]obs.ChainSnapshot, 0, len(tp.sets))
	for name, e := range tp.sets {
		hops := make([]obs.HopRecord, 0, len(e.upstream)+1)
		hops = append(hops, e.upstream...)
		hops = append(hops, e.local)
		out = append(out, obs.ChainSnapshot{Set: name, Hops: hops})
	}
	tp.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Set < out[j].Set })
	return out
}

// Spans snapshots the daemon's per-(daemon, role, stage) sample-age
// summaries, covering this daemon and every traced hop below it.
func (d *Daemon) Spans() []obs.SpanLatency { return d.trace.spans.Snapshot() }

// Chains snapshots the hop chains of every set the daemon publishes.
func (d *Daemon) Chains() []obs.ChainSnapshot { return d.trace.chains() }

// TraceDecodeErrors counts malformed trace blocks received from negotiated
// peers (each fell back to an untraced chain).
func (d *Daemon) TraceDecodeErrors() int64 { return d.trace.decodeErrs.Load() }
