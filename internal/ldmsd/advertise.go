package ldmsd

import (
	"context"
	"fmt"
	"sync"
	"time"

	"goldms/internal/sched"
	"goldms/internal/transport"
)

// Reversed connection initiation (paper §IV-B): compute nodes that cannot
// accept inbound connections dial their aggregator instead. The sampler
// side calls Advertise; the aggregator side calls ListenForProducers and
// pre-registers passive producers, which are adopted when the matching
// peer dials in. Updaters treat passive producers exactly like dialed
// ones.

// AddPassiveProducer registers a producer whose connection will arrive
// from the remote side (via an Advertise from a daemon with this name).
func (d *Daemon) AddPassiveProducer(name string) (*Producer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.prdcrs[name]; dup {
		return nil, fmt.Errorf("ldmsd %s: producer %q already exists", d.name, name)
	}
	p := &Producer{
		d:       d,
		name:    name,
		passive: true,
		active:  true,
	}
	d.prdcrs[name] = p
	return p, nil
}

// adoptConn installs an incoming connection on a passive producer,
// performing the initial dir.
func (p *Producer) adoptConn(conn transport.Conn) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	names, err := conn.Dir(ctx)
	cancel()
	if err != nil {
		conn.Close()
		return fmt.Errorf("ldmsd: adopt %s: %w", p.name, err)
	}
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		conn.Close()
		return fmt.Errorf("ldmsd: producer %s not started", p.name)
	}
	old := p.conn
	p.conn = conn
	p.retireConn(old)
	p.state = ProducerConnected
	p.epoch++
	p.setNames = names
	p.mu.Unlock()
	p.connects.Add(1)
	if old != nil {
		p.disconnects.Add(1)
		old.Close()
	}
	return nil
}

// ListenForProducers serves this daemon's registry on a peer-capable
// transport and adopts announced peers into their pre-registered passive
// producers. Unknown peers are rejected.
func (d *Daemon) ListenForProducers(transportName, addr string) (string, error) {
	f, err := d.transportByName(transportName)
	if err != nil {
		return "", err
	}
	pf, ok := f.(transport.PeerFactory)
	if !ok {
		return "", fmt.Errorf("ldmsd %s: transport %q does not support reversed connections", d.name, transportName)
	}
	ln, err := pf.ListenPeer(addr, d.srv, func(name string, conn transport.Conn) {
		p := d.Producer(name)
		if p == nil || !p.passive {
			conn.Close()
			return
		}
		p.adoptConn(conn)
	})
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	d.listeners = append(d.listeners, ln)
	d.mu.Unlock()
	return ln.Addr(), nil
}

// Advertiser maintains an outbound connection from a sampler to an
// aggregator that pulls over it, redialing on failure.
type Advertiser struct {
	d     *Daemon
	xprt  transport.PeerFactory
	addr  string
	retry time.Duration
	task  *sched.Task

	mu      sync.Mutex
	conn    transport.Conn
	stopped bool
	dials   int64
}

// Advertise dials addr over a peer-capable transport, announces this
// daemon's name, and serves its registry over the connection. The link is
// health-checked and redialed every retry interval.
func (d *Daemon) Advertise(transportName, addr string, retry time.Duration) (*Advertiser, error) {
	f, err := d.transportByName(transportName)
	if err != nil {
		return nil, err
	}
	pf, ok := f.(transport.PeerFactory)
	if !ok {
		return nil, fmt.Errorf("ldmsd %s: transport %q does not support reversed connections", d.name, transportName)
	}
	if retry <= 0 {
		retry = time.Second
	}
	a := &Advertiser{d: d, xprt: pf, addr: addr, retry: retry}
	a.tick(d.sch.Now())
	a.task = d.sch.Every(retry, 0, false, a.tick)
	return a, nil
}

// tick dials if disconnected, otherwise health-checks the link with a dir
// request toward the aggregator.
func (a *Advertiser) tick(time.Time) {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	conn := a.conn
	a.mu.Unlock()

	if conn != nil {
		ctx, cancel := context.WithTimeout(context.Background(), a.retry)
		_, err := conn.Dir(ctx)
		cancel()
		if err == nil {
			return
		}
		conn.Close()
		a.mu.Lock()
		if a.conn == conn {
			a.conn = nil
		}
		a.mu.Unlock()
	}

	c, err := a.xprt.DialNamed(a.addr, a.d.name, a.d.srv)
	if err != nil {
		return // retry next tick
	}
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		c.Close()
		return
	}
	a.conn = c
	a.dials++
	a.mu.Unlock()
}

// Connected reports whether the advertised link is currently up.
func (a *Advertiser) Connected() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.conn != nil
}

// Dials returns the number of successful dials (reconnects included).
func (a *Advertiser) Dials() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dials
}

// Stop tears the advertised link down.
func (a *Advertiser) Stop() {
	a.task.Cancel()
	a.mu.Lock()
	conn := a.conn
	a.conn = nil
	a.stopped = true
	a.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}
