package ldmsd

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"goldms/internal/procfs"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// testNode returns a minimal simulated node.
func testNode(name string) *procfs.NodeState {
	n := procfs.NewNodeState(name, 2, 32<<20)
	n.Update(func(n *procfs.NodeState) {
		n.MemFreeKB = 16 << 20
		n.ActiveKB = 4 << 20
		n.Load1 = 1.0
	})
	return n
}

// virtualSampler builds a sampler-mode daemon on a shared virtual scheduler
// and mem network.
func virtualSampler(t *testing.T, name string, sch *sched.Scheduler, net *transport.Network, compID uint64) *Daemon {
	t.Helper()
	d, err := New(Options{
		Name:       name,
		Scheduler:  sch,
		FS:         procfs.NewSimFS(testNode(name)),
		CompID:     compID,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Listen("mem", name); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSamplerModeSamplesOnSchedule(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(10000, 0))
	net := transport.NewNetwork()
	d := virtualSampler(t, "n1", sch, net, 1)
	defer d.Stop()

	sp, err := d.LoadSampler("meminfo", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	sp.Start(time.Second, 0, false)
	sch.AdvanceBy(10 * time.Second)

	if got := d.Stats().Samples; got != 10 {
		t.Errorf("samples = %d want 10", got)
	}
	set := d.Registry().Get("n1/meminfo")
	if set == nil {
		t.Fatal("set not registered")
	}
	i, ok := set.MetricIndex("MemTotal")
	if !ok || set.U64(i) != 32<<20 {
		t.Errorf("MemTotal missing or wrong")
	}
	if !set.Consistent() {
		t.Error("set inconsistent after sampling")
	}
}

func TestSamplerRescheduleOnTheFly(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	d := virtualSampler(t, "n1", sch, net, 1)
	defer d.Stop()
	sp, _ := d.LoadSampler("meminfo", "", nil)
	sp.Start(time.Minute, 0, false)
	sch.AdvanceBy(2 * time.Minute)
	if got := d.Stats().Samples; got != 2 {
		t.Fatalf("samples at 1min = %d", got)
	}
	// Re-start with a 1 s interval: the frequency changes on the fly.
	sp.Start(time.Second, 0, false)
	sch.AdvanceBy(10 * time.Second)
	if got := d.Stats().Samples; got != 12 {
		t.Errorf("samples after speedup = %d want 12", got)
	}
}

func TestDuplicateSamplerRejected(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	d := virtualSampler(t, "n1", sch, transport.NewNetwork(), 1)
	defer d.Stop()
	if _, err := d.LoadSampler("meminfo", "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadSampler("meminfo", "", nil); err == nil {
		t.Fatal("duplicate sampler load accepted")
	}
}

// buildPipeline wires sampler -> aggregator with a CSV store, returning
// both daemons and the CSV path.
func buildPipeline(t *testing.T, sch *sched.Scheduler, net *transport.Network, sampleIv, updateIv time.Duration) (*Daemon, *Daemon, string) {
	t.Helper()
	smp := virtualSampler(t, "n1", sch, net, 7)
	sp, err := smp.LoadSampler("meminfo", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	sp.Start(sampleIv, 0, false)

	agg, err := New(Options{
		Name:       "agg1",
		Scheduler:  sch,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := agg.AddProducer("n1", "mem", "n1", time.Second, false)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	u, err := agg.AddUpdater("u1", updateIv, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.AddProducer("n1"); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(t.TempDir(), "meminfo.csv")
	if _, err := agg.AddStoragePolicy("s1", "store_csv", "meminfo", csvPath, nil); err != nil {
		t.Fatal(err)
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	return smp, agg, csvPath
}

func TestAggregationPipeline(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(20000, 0))
	net := transport.NewNetwork()
	smp, agg, csvPath := buildPipeline(t, sch, net, time.Second, time.Second)
	defer smp.Stop()
	defer agg.Stop()

	sch.AdvanceBy(30 * time.Second)
	st := agg.Stats()
	if st.Lookups != 1 {
		t.Errorf("lookups = %d want 1", st.Lookups)
	}
	if st.Updates < 25 {
		t.Errorf("updates = %d want ~29", st.Updates)
	}
	if st.UpdatesFresh < 25 {
		t.Errorf("fresh = %d", st.UpdatesFresh)
	}
	if st.StoredRows != st.UpdatesFresh {
		t.Errorf("stored %d rows for %d fresh updates", st.StoredRows, st.UpdatesFresh)
	}
	// The aggregator holds a mirror locally under the same instance name.
	mir := agg.Registry().Get("n1/meminfo")
	if mir == nil {
		t.Fatal("mirror not in aggregator registry")
	}
	if mir.Local() {
		t.Error("mirror claims to be local")
	}
	i, _ := mir.MetricIndex("MemFree")
	if got := mir.U64(i); got != 16<<20 {
		t.Errorf("mirrored MemFree = %d", got)
	}
	sp := agg.StoragePolicy("s1")
	if sp.Err() != nil {
		t.Fatalf("storage policy error: %v", sp.Err())
	}
	sp.Flush()
	if sp.Store().BytesWritten() == 0 {
		t.Error("no CSV bytes written")
	}
	_ = csvPath
}

func TestStaleDataSkipped(t *testing.T) {
	// Sampler at 60 s, updater at 1 s: most pulls see an unchanged DGN and
	// must not reach storage.
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	smp, agg, _ := buildPipeline(t, sch, net, time.Minute, time.Second)
	defer smp.Stop()
	defer agg.Stop()

	sch.AdvanceBy(2 * time.Minute)
	st := agg.Stats()
	if st.UpdatesStale == 0 {
		t.Error("expected stale updates to be skipped")
	}
	if st.UpdatesFresh > 3 {
		t.Errorf("fresh = %d, expected ~2 for 2 sampler ticks", st.UpdatesFresh)
	}
	if st.StoredRows != st.UpdatesFresh {
		t.Errorf("stored %d != fresh %d", st.StoredRows, st.UpdatesFresh)
	}
}

func TestTwoLevelAggregation(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	smp, agg1, _ := buildPipeline(t, sch, net, time.Second, time.Second)
	defer smp.Stop()
	defer agg1.Stop()
	if _, err := agg1.Listen("mem", "agg1"); err != nil {
		t.Fatal(err)
	}

	agg2, err := New(Options{
		Name:       "agg2",
		Scheduler:  sch,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg2.Stop()
	p, _ := agg2.AddProducer("agg1", "mem", "agg1", time.Second, false)
	p.Start()
	u, _ := agg2.AddUpdater("u", time.Second, 0, false)
	u.AddProducer("agg1")
	csv2 := filepath.Join(t.TempDir(), "l2.csv")
	agg2.AddStoragePolicy("s2", "store_csv", "meminfo", csv2, nil)
	u.Start()

	sch.AdvanceBy(20 * time.Second)
	st := agg2.Stats()
	if st.UpdatesFresh < 10 {
		t.Errorf("second level fresh = %d", st.UpdatesFresh)
	}
	mir := agg2.Registry().Get("n1/meminfo")
	if mir == nil {
		t.Fatal("set did not propagate through two levels")
	}
	i, _ := mir.MetricIndex("MemTotal")
	if mir.U64(i) != 32<<20 {
		t.Errorf("level-2 MemTotal = %d", mir.U64(i))
	}
}

func TestStandbyProducerNotPulledUntilActivated(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	smp := virtualSampler(t, "n1", sch, net, 1)
	defer smp.Stop()
	sp, _ := smp.LoadSampler("meminfo", "", nil)
	sp.Start(time.Second, 0, false)

	agg, _ := New(Options{
		Name:       "standby-agg",
		Scheduler:  sch,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	defer agg.Stop()
	p, _ := agg.AddProducer("n1", "mem", "n1", time.Second, true) // standby
	p.Start()
	u, _ := agg.AddUpdater("u", time.Second, 0, false)
	u.AddProducer("n1")
	u.Start()

	sch.AdvanceBy(10 * time.Second)
	if got := agg.Stats().Updates; got != 0 {
		t.Fatalf("standby producer was pulled %d times before activation", got)
	}
	if p.State() != ProducerConnected {
		t.Fatalf("standby producer state = %v, want CONNECTED (it maintains the connection)", p.State())
	}

	// Failover: the watchdog activates the standby.
	p.Activate()
	sch.AdvanceBy(10 * time.Second)
	if got := agg.Stats().UpdatesFresh; got < 8 {
		t.Errorf("fresh updates after activation = %d", got)
	}
}

func TestProducerReconnects(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()

	// Aggregator starts before the sampler exists.
	agg, _ := New(Options{
		Name:       "agg",
		Scheduler:  sch,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	defer agg.Stop()
	p, _ := agg.AddProducer("n1", "mem", "n1", 2*time.Second, false)
	p.Start()
	u, _ := agg.AddUpdater("u", time.Second, 0, false)
	u.AddProducer("n1")
	u.Start()

	sch.AdvanceBy(5 * time.Second)
	if p.State() == ProducerConnected {
		t.Fatal("connected to a non-existent target")
	}

	// The sampler boots; the producer's retry loop should find it.
	smp := virtualSampler(t, "n1", sch, net, 1)
	defer smp.Stop()
	sp, _ := smp.LoadSampler("meminfo", "", nil)
	sp.Start(time.Second, 0, false)

	sch.AdvanceBy(10 * time.Second)
	if p.State() != ProducerConnected {
		t.Fatalf("producer state = %v after target came up", p.State())
	}
	if agg.Stats().UpdatesFresh == 0 {
		t.Error("no data flowed after reconnect")
	}
}

func TestMetricFilterInStoragePolicy(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	smp := virtualSampler(t, "n1", sch, net, 1)
	defer smp.Stop()
	sp, _ := smp.LoadSampler("meminfo", "", nil)
	sp.Start(time.Second, 0, false)

	agg, _ := New(Options{
		Name:       "agg",
		Scheduler:  sch,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	defer agg.Stop()
	p, _ := agg.AddProducer("n1", "mem", "n1", time.Second, false)
	p.Start()
	u, _ := agg.AddUpdater("u", time.Second, 0, false)
	u.AddProducer("n1")
	csvPath := filepath.Join(t.TempDir(), "active.csv")
	pol, _ := agg.AddStoragePolicy("s", "store_csv", "meminfo", csvPath, nil)
	pol.SelectMetrics([]string{"Active", "MemFree"})
	u.Start()

	sch.AdvanceBy(5 * time.Second)
	pol.Flush()
	b := readFile(t, csvPath)
	header := strings.SplitN(b, "\n", 2)[0]
	// Selection preserves the set's metric order (MemFree precedes Active
	// in the meminfo schema).
	if header != "#Time,Time_usec,CompId,MemFree,Active" {
		t.Errorf("filtered header = %q", header)
	}
}

func TestUpdaterCannotBeRescheduled(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	agg, _ := New(Options{Name: "a", Scheduler: sch})
	defer agg.Stop()
	u, _ := agg.AddUpdater("u", time.Second, 0, false)
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	if err := u.Start(); err == nil {
		t.Fatal("double start accepted: aggregation schedules must be fixed once set")
	}
	u.Stop()
	if err := u.Start(); err != nil {
		t.Fatalf("restart after stop should work: %v", err)
	}
}

func TestRealClockSmoke(t *testing.T) {
	net := transport.NewNetwork()
	smp, err := New(Options{
		Name:       "real-n1",
		FS:         procfs.NewSimFS(testNode("real-n1")),
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer smp.Stop()
	if _, err := smp.Listen("mem", "real-n1"); err != nil {
		t.Fatal(err)
	}
	sp, err := smp.LoadSampler("meminfo", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	sp.Start(5*time.Millisecond, 0, false)

	agg, err := New(Options{
		Name:       "real-agg",
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()
	p, _ := agg.AddProducer("n1", "mem", "real-n1", 50*time.Millisecond, false)
	p.Start()
	u, _ := agg.AddUpdater("u", 5*time.Millisecond, 0, false)
	u.AddProducer("n1")
	u.Start()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if agg.Stats().UpdatesFresh >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if agg.Stats().UpdatesFresh < 3 {
		t.Fatalf("real-clock pipeline moved no data: %+v", agg.Stats())
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := readAll(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// readAll is a tiny helper so tests read files without importing os in
// multiple places.
func readAll(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

// TestThreeLevelAggregation: "Daisy chaining is not limited to two levels"
// (§IV-A). Data flows sampler -> L1 -> L2 -> L3 with a store at the top.
func TestThreeLevelAggregation(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	smp := virtualSampler(t, "n1", sch, net, 3)
	defer smp.Stop()
	sp, _ := smp.LoadSampler("meminfo", "", nil)
	sp.Start(time.Second, 0, false)

	mkLevel := func(name, pullFrom string) *Daemon {
		agg, err := New(Options{
			Name: name, Scheduler: sch,
			Transports: []transport.Factory{transport.MemFactory{Net: net}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := agg.Listen("mem", name); err != nil {
			t.Fatal(err)
		}
		p, err := agg.AddProducer(pullFrom, "mem", pullFrom, time.Second, false)
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
		u, err := agg.AddUpdater("u", time.Second, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		u.AddProducer(pullFrom)
		if err := u.Start(); err != nil {
			t.Fatal(err)
		}
		return agg
	}
	l1 := mkLevel("l1", "n1")
	defer l1.Stop()
	l2 := mkLevel("l2", "l1")
	defer l2.Stop()
	l3 := mkLevel("l3", "l2")
	defer l3.Stop()
	csv := filepath.Join(t.TempDir(), "l3.csv")
	if _, err := l3.AddStoragePolicy("s", "store_csv", "meminfo", csv, nil); err != nil {
		t.Fatal(err)
	}

	sch.AdvanceBy(30 * time.Second)
	if l3.Stats().UpdatesFresh < 20 {
		t.Fatalf("level-3 fresh pulls = %d", l3.Stats().UpdatesFresh)
	}
	mir := l3.Registry().Get("n1/meminfo")
	if mir == nil {
		t.Fatal("set did not traverse three levels")
	}
	i, _ := mir.MetricIndex("MemTotal")
	if mir.U64(i) != 32<<20 {
		t.Errorf("value after three hops = %d", mir.U64(i))
	}
	if rows := l3.StoragePolicy("s").Rows(); rows < 20 {
		t.Errorf("rows stored at level 3 = %d", rows)
	}
}

// TestUpdaterSurvivesSetRemoval covers the ErrNoSuchSet path: a set that
// disappears from the sampler mid-flight must not kill the connection.
func TestUpdaterSurvivesSetRemoval(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	smp := virtualSampler(t, "n1", sch, net, 1)
	defer smp.Stop()
	sp, _ := smp.LoadSampler("meminfo", "", nil)
	sp.Start(time.Second, 0, false)
	lp, _ := smp.LoadSampler("loadavg", "", nil)
	lp.Start(time.Second, 0, false)

	agg, _ := New(Options{
		Name: "agg", Scheduler: sch,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	defer agg.Stop()
	p, _ := agg.AddProducer("n1", "mem", "n1", time.Second, false)
	p.Start()
	u, _ := agg.AddUpdater("u", time.Second, 0, false)
	u.AddProducer("n1")
	u.Start()

	sch.AdvanceBy(5 * time.Second)
	if agg.Stats().UpdatesFresh == 0 {
		t.Fatal("no data before removal")
	}

	// The loadavg set disappears (plugin torn down).
	lp.Stop()
	if s := smp.Registry().Remove("n1/loadavg"); s == nil {
		t.Fatal("set not removed")
	}
	before := agg.Stats()
	sch.AdvanceBy(10 * time.Second)
	after := agg.Stats()
	// meminfo keeps flowing; the producer stays connected.
	if after.UpdatesFresh-before.UpdatesFresh < 8 {
		t.Errorf("surviving set stalled: %d fresh in 10 s", after.UpdatesFresh-before.UpdatesFresh)
	}
	if p.State() != ProducerConnected {
		t.Errorf("producer state = %v after set removal", p.State())
	}
}
