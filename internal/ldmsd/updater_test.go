package ldmsd

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldms/internal/metric"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// benchRegistry builds a registry of n small consistent sets, each with
// one sampled value, served raw (no sampler daemon) for pull tests.
func benchRegistry(tb testing.TB, prefix string, n int) *metric.Registry {
	tb.Helper()
	reg := metric.NewRegistry()
	for i := 0; i < n; i++ {
		sch := metric.NewSchema("bench")
		sch.MustAddMetric("a", metric.TypeU64)
		sch.MustAddMetric("b", metric.TypeU64)
		set, err := metric.New(fmt.Sprintf("%s/set%04d", prefix, i), sch)
		if err != nil {
			tb.Fatal(err)
		}
		set.BeginTransaction()
		set.SetU64(0, uint64(i))
		set.SetU64(1, uint64(2*i))
		set.EndTransaction(time.Unix(int64(1000+i), 0))
		if err := reg.Add(set); err != nil {
			tb.Fatal(err)
		}
	}
	return reg
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(tb testing.TB, d time.Duration, cond func() bool, what string) {
	tb.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	tb.Fatalf("timed out waiting for %s", what)
}

// TestStalledProducerDoesNotBlockOthers stalls one producer's data pulls
// at the transport and checks that, within the same pass, the healthy
// producer's update still completes on time. The pass itself stays open
// (later firings are skipped busy) until the stall lifts.
func TestStalledProducerDoesNotBlockOthers(t *testing.T) {
	net := transport.NewNetwork()
	stall := make(chan struct{})
	var stalled atomic.Bool
	fac := transport.MemFactory{Net: net, Delay: func(addr, op string) {
		if addr == "slow" && (op == "update" || op == "update_batch") {
			if stalled.CompareAndSwap(false, true) {
				<-stall
			}
		}
	}}
	for _, name := range []string{"fast", "slow"} {
		if _, err := fac.Listen(name, transport.NewServer(benchRegistry(t, name, 2))); err != nil {
			t.Fatal(err)
		}
	}

	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(stall) }) }

	agg, err := New(Options{Name: "agg", Transports: []transport.Factory{fac}})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()
	defer release() // unblock the transport before Stop waits on the pass
	for _, name := range []string{"fast", "slow"} {
		p, err := agg.AddProducer(name, "mem", name, 10*time.Millisecond, false)
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
	}
	waitUntil(t, 5*time.Second, func() bool {
		return agg.Producer("fast").State() == ProducerConnected &&
			agg.Producer("slow").State() == ProducerConnected
	}, "producers to connect")

	u, err := agg.AddUpdater("u", 20*time.Millisecond, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	u.AddProducer("fast")
	u.AddProducer("slow")
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}

	// Pass 1 performs the lookups; pass 2 starts the data pulls and the
	// slow producer hangs. The fast producer's pulls must land while the
	// pass is still open.
	waitUntil(t, 5*time.Second, func() bool { return stalled.Load() }, "slow producer to stall")
	passesAtStall := u.passes.Load()
	waitUntil(t, 5*time.Second, func() bool { return u.updates.Load() >= 2 }, "fast producer updates during the stall")
	if got := u.passes.Load(); got != passesAtStall {
		t.Fatalf("pass completed during stall (passes %d -> %d)", passesAtStall, got)
	}
	if got := u.inflight.Load(); got < 1 {
		t.Errorf("inflight = %d during stall, want >= 1", got)
	}
	// Later firings must skip, not pile up behind the stalled pass.
	waitUntil(t, 5*time.Second, func() bool { return u.skippedBusy.Load() >= 1 }, "busy pass to be skipped")

	release()
	waitUntil(t, 5*time.Second, func() bool { return u.passes.Load() > passesAtStall }, "stalled pass to finish")
}

// TestUpdaterPrunesRemovedProducer drops a producer from the pull group
// and checks the next pass releases its mirrors: registry entries gone,
// arena memory returned, state entry deleted.
func TestUpdaterPrunesRemovedProducer(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(30000, 0))
	net := transport.NewNetwork()
	smp1 := virtualSampler(t, "n1", sch, net, 1)
	smp2 := virtualSampler(t, "n2", sch, net, 2)
	defer smp1.Stop()
	defer smp2.Stop()
	for _, smp := range []*Daemon{smp1, smp2} {
		sp, err := smp.LoadSampler("meminfo", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		sp.Start(time.Second, 0, false)
	}

	agg, err := New(Options{Name: "agg", Scheduler: sch, Transports: []transport.Factory{transport.MemFactory{Net: net}}})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()
	for _, name := range []string{"n1", "n2"} {
		p, err := agg.AddProducer(name, "mem", name, time.Second, false)
		if err != nil {
			t.Fatal(err)
		}
		p.Start()
	}
	u, err := agg.AddUpdater("u", time.Second, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	u.AddProducer("n1")
	u.AddProducer("n2")
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}

	sch.AdvanceBy(5 * time.Second)
	if got := len(agg.Registry().Dir()); got != 2 {
		t.Fatalf("mirrors = %d want 2 (%v)", got, agg.Registry().Dir())
	}
	inUseBoth := agg.Arena().InUse()
	if inUseBoth == 0 {
		t.Fatal("arena reports no memory in use with two mirrors")
	}

	u.RemoveProducer("n2")
	sch.AdvanceBy(2 * time.Second)

	dir := agg.Registry().Dir()
	if len(dir) != 1 {
		t.Fatalf("mirrors after prune = %v, want only n1's", dir)
	}
	u.smu.Lock()
	_, still := u.state["n2"]
	u.smu.Unlock()
	if still {
		t.Error("updater still holds pull state for removed producer n2")
	}
	if got := agg.Arena().InUse(); got >= inUseBoth {
		t.Errorf("arena in use %d after prune, want < %d", got, inUseBoth)
	}
}

// TestUpdaterStatusCommand smoke-tests the control-interface counters.
func TestUpdaterStatusCommand(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(40000, 0))
	net := transport.NewNetwork()
	smp, agg, _ := buildPipeline(t, sch, net, time.Second, time.Second)
	defer smp.Stop()
	defer agg.Stop()
	sch.AdvanceBy(5 * time.Second)

	out, err := agg.Exec("updtr_status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"name=u1", "state=running", "producers=1", "passes=", "skipped_busy="} {
		if !strings.Contains(out, want) {
			t.Errorf("updtr_status output missing %q:\n%s", want, out)
		}
	}
	stats, err := agg.Exec("stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "skipped_busy=") {
		t.Errorf("stats output missing skipped_busy: %s", stats)
	}

	if _, err := agg.Exec("updtr_prdcr_del name=u1 prdcr=n1"); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(2 * time.Second)
	if got := len(agg.Registry().Dir()); got != 0 {
		t.Errorf("mirrors after updtr_prdcr_del = %v, want none", agg.Registry().Dir())
	}
}
