package ldmsd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"goldms/internal/procfs"
	"goldms/internal/transport"
)

// realPipeline builds a real-clock sampler->aggregator pair over the mem
// transport, with the sampler resampling and the aggregator pulling every
// few milliseconds so gateway reads race live update passes.
func realPipeline(t *testing.T) (smp, agg *Daemon) {
	t.Helper()
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}

	smp, err := New(Options{
		Name:       "n1",
		FS:         procfs.NewSimFS(testNode("n1")),
		CompID:     7,
		Transports: []transport.Factory{fac},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(smp.Stop)
	if _, err := smp.Listen("mem", "n1"); err != nil {
		t.Fatal(err)
	}
	sp, err := smp.LoadSampler("meminfo", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	sp.Start(2*time.Millisecond, 0, false)

	agg, err = New(Options{Name: "agg1", Transports: []transport.Factory{fac}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agg.Stop)
	p, err := agg.AddProducer("n1", "mem", "n1", 10*time.Millisecond, false)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	u, err := agg.AddUpdater("u1", 3*time.Millisecond, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.AddProducer("n1"); err != nil {
		t.Fatal(err)
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}
	return smp, agg
}

// httpGet fetches a gateway URL, returning status and body.
func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestGatewayEndToEnd drives every gateway endpoint against a live
// aggregator started through the control interface's http_listen command.
func TestGatewayEndToEnd(t *testing.T) {
	_, agg := realPipeline(t)
	addr, err := agg.Exec("http_listen addr=127.0.0.1:0 window=1m points=256")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	waitUntil(t, 5*time.Second, func() bool {
		return agg.Registry().Get("n1/meminfo") != nil
	}, "mirror to appear")
	waitUntil(t, 5*time.Second, func() bool {
		w := agg.Window()
		return w != nil && w.Stats().Observed >= 3
	}, "window to fill")

	// A second gateway on the same daemon must be refused.
	if _, err := agg.Exec("http_listen addr=127.0.0.1:0"); err == nil {
		t.Error("second http_listen did not fail")
	}

	code, body := httpGet(t, base+"/api/v1/dir")
	if code != http.StatusOK {
		t.Fatalf("dir: status %d: %s", code, body)
	}
	var dir struct {
		Daemon string `json:"daemon"`
		Sets   []struct {
			Instance string `json:"instance"`
			Schema   string `json:"schema"`
			CompID   uint64 `json:"comp_id"`
		} `json:"sets"`
	}
	if err := json.Unmarshal(body, &dir); err != nil {
		t.Fatalf("dir: %v", err)
	}
	if dir.Daemon != "agg1" || len(dir.Sets) != 1 || dir.Sets[0].Instance != "n1/meminfo" || dir.Sets[0].CompID != 7 {
		t.Errorf("dir = %+v", dir)
	}

	code, body = httpGet(t, base+"/api/v1/sets/n1/meminfo")
	if code != http.StatusOK {
		t.Fatalf("set: status %d: %s", code, body)
	}
	var set struct {
		Instance   string `json:"instance"`
		Consistent bool   `json:"consistent"`
		Metrics    []struct {
			Name  string `json:"name"`
			Value any    `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(body, &set); err != nil {
		t.Fatalf("set: %v", err)
	}
	if set.Instance != "n1/meminfo" || !set.Consistent || len(set.Metrics) == 0 {
		t.Errorf("set = %+v", set)
	}
	found := false
	for _, m := range set.Metrics {
		if m.Name == "MemTotal" {
			found = true
		}
	}
	if !found {
		t.Errorf("set snapshot missing MemTotal: %+v", set.Metrics)
	}

	code, body = httpGet(t, base+"/api/v1/metrics?metric=MemTotal&comp=7")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d: %s", code, body)
	}
	var latest struct {
		Values []struct {
			Instance string `json:"instance"`
			Value    any    `json:"value"`
		} `json:"values"`
	}
	if err := json.Unmarshal(body, &latest); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if len(latest.Values) != 1 || latest.Values[0].Instance != "n1/meminfo" {
		t.Errorf("latest = %+v", latest)
	}

	code, body = httpGet(t, base+"/api/v1/series?metric=MemTotal&window=1m")
	if code != http.StatusOK {
		t.Fatalf("series: status %d: %s", code, body)
	}
	var series struct {
		Series []struct {
			Instance string `json:"instance"`
			CompID   uint64 `json:"comp_id"`
			Points   []struct {
				Time  time.Time `json:"time"`
				Value any       `json:"value"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatalf("series: %v", err)
	}
	if len(series.Series) == 0 || series.Series[0].Instance != "n1/meminfo" || len(series.Series[0].Points) < 3 {
		t.Fatalf("series = %+v", series)
	}

	code, body = httpGet(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", code, body)
	}
	var health struct {
		Status    string `json:"status"`
		Producers []struct {
			Name              string    `json:"name"`
			State             string    `json:"state"`
			Connects          int64     `json:"connects"`
			LastUpdate        time.Time `json:"last_update"`
			ConsecutiveErrors int64     `json:"consecutive_errors"`
			Stale             bool      `json:"stale"`
		} `json:"producers"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if health.Status != "ok" || len(health.Producers) != 1 {
		t.Fatalf("healthz = %s", body)
	}
	hp := health.Producers[0]
	if hp.Name != "n1" || hp.State != "CONNECTED" || hp.Connects != 1 || hp.Stale || hp.LastUpdate.IsZero() {
		t.Errorf("producer health = %+v", hp)
	}

	code, body = httpGet(t, base+"/api/v1/latency")
	if code != http.StatusOK {
		t.Fatalf("latency: status %d: %s", code, body)
	}
	var lat struct {
		Hops []struct {
			Hop        string  `json:"hop"`
			Count      uint64  `json:"count"`
			P50Seconds float64 `json:"p50_seconds"`
		} `json:"hops"`
	}
	if err := json.Unmarshal(body, &lat); err != nil {
		t.Fatalf("latency: %v", err)
	}
	if len(lat.Hops) != 4 || lat.Hops[0].Hop != "pull" || lat.Hops[1].Hop != "reduce" || lat.Hops[2].Hop != "window" {
		t.Fatalf("latency hops = %+v", lat.Hops)
	}
	// No reduction and no storage policy: reduce and store hops stay 0.
	for _, h := range []int{0, 2} {
		if lat.Hops[h].Count == 0 || lat.Hops[h].P50Seconds <= 0 {
			t.Errorf("hop %s = %+v, want recorded samples", lat.Hops[h].Hop, lat.Hops[h])
		}
	}

	code, body = httpGet(t, base+"/api/v1/events?component=producer")
	if code != http.StatusOK {
		t.Fatalf("events: status %d: %s", code, body)
	}
	var events struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Severity  string `json:"severity"`
			Component string `json:"component"`
			Subject   string `json:"subject"`
			Epoch     uint64 `json:"epoch"`
			Message   string `json:"message"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("events: %v", err)
	}
	if events.Total == 0 || len(events.Events) == 0 {
		t.Fatalf("events = %s", body)
	}
	ev := events.Events[0]
	if ev.Message != "connected" || ev.Subject != "n1" || ev.Epoch != 1 || ev.Severity != "info" {
		t.Errorf("first producer event = %+v", ev)
	}

	code, body = httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics exposition: status %d", code)
	}
	expo := string(body)
	for _, want := range []string{
		"ldmsd_updater_passes_total",
		"ldmsd_updater_last_pass_seconds",
		"ldmsd_updater_updates_total",
		"ldmsd_producer_connects_total",
		"ldmsd_transport_bytes_total",
		"ldmsd_transport_batches_total",
		"ldmsd_pool_workers",
		"ldmsd_server_updates_total",
		"ldmsd_set_memory_bytes",
		"ldmsd_window_observed_total",
		"ldmsd_http_requests_total",
		"ldmsd_hop_latency_seconds",
		"ldmsd_hop_latency_count",
		"ldmsd_events_total",
		`updater="u1"`,
		`producer="n1"`,
		`hop="pull"`,
		`severity="info"`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Control-interface views of the same counters.
	out, err := agg.Exec("prdcr_status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"name=n1", "state=CONNECTED", "connects=1", "bytes_in=", "connected_since=", `last_event="connected"`} {
		if !strings.Contains(out, want) {
			t.Errorf("prdcr_status missing %q:\n%s", want, out)
		}
	}
	out, err = agg.Exec("updtr_status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"prdcr=n1", "last_update=", "consec_errors=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("updtr_status missing %q:\n%s", want, out)
		}
	}
}

// TestGatewayReadsRaceUpdates hammers the gateway's read endpoints from
// several goroutines while update passes continuously rewrite the mirrored
// sets, relying on -race to catch torn reads.
func TestGatewayReadsRaceUpdates(t *testing.T) {
	_, agg := realPipeline(t)
	// Compressed + sharded window: the race must also cover the
	// compressed append/decode paths and the striped set index.
	addr, err := agg.Exec("http_listen addr=127.0.0.1:0 shards=8 compress=1")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	waitUntil(t, 5*time.Second, func() bool {
		return agg.Registry().Get("n1/meminfo") != nil
	}, "mirror to appear")

	urls := []string{
		base + "/api/v1/dir",
		base + "/api/v1/sets/n1/meminfo",
		base + "/api/v1/metrics?metric=MemTotal",
		base + "/api/v1/series?metric=MemTotal",
		base + "/api/v1/series?metric=MemTotal&step=2s&agg=max",
		base + "/api/v1/aggregate?metric=MemTotal&func=sum",
		base + "/api/v1/aggregate?metric=MemFree&func=quantile&q=0.5&step=1s",
		base + "/api/v1/latency",
		base + "/api/v1/events",
		base + "/healthz",
		base + "/metrics",
	}
	stop := time.Now().Add(200 * time.Millisecond)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				url := urls[(g+i)%len(urls)]
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					resp.Body.Close()
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
