package ldmsd

import (
	"strings"
	"testing"
	"time"

	"goldms/internal/metric"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// bumpSets writes a fresh sample into every set so the next pull sees a new
// DGN.
func bumpSets(reg *metric.Registry, at time.Time, v uint64) {
	for _, name := range reg.Dir() {
		set := reg.Get(name)
		set.BeginTransaction()
		set.SetU64(0, v)
		set.EndTransaction(at)
	}
}

// TestStandbyProducerFailoverCycle walks a standby producer through the
// paper's manual-failover protocol (§IV-B) across a reconnect cycle: idle
// while passive, pulled after Activate, reconnected after the target
// bounces, idle again after Deactivate — with the lifecycle counters
// tracking every transition.
func TestStandbyProducerFailoverCycle(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(50000, 0))
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}
	reg := benchRegistry(t, "n1", 2)
	srv := transport.NewServer(reg)
	ln, err := fac.Listen("n1", srv)
	if err != nil {
		t.Fatal(err)
	}

	agg, err := New(Options{Name: "agg", Scheduler: sch, Transports: []transport.Factory{fac}})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()
	p, err := agg.AddProducer("n1", "mem", "n1", time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Standby() || p.Active() {
		t.Fatal("standby producer born active")
	}
	p.Start()
	u, err := agg.AddUpdater("u", time.Second, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.AddProducer("n1"); err != nil {
		t.Fatal(err)
	}
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}

	// Passive phase: the producer connects but is never pulled.
	sch.AdvanceBy(3 * time.Second)
	if p.State() != ProducerConnected {
		t.Fatalf("standby state = %v, want CONNECTED", p.State())
	}
	if got := len(agg.Registry().Dir()); got != 0 {
		t.Fatalf("standby was pulled while passive: mirrors %v", agg.Registry().Dir())
	}
	if c := p.Counters(); c.Connects != 1 || c.Disconnects != 0 {
		t.Fatalf("counters after connect = %+v", c)
	}

	// Failover: activate and verify pulls start (pass 1 looks up, pass 2
	// pulls data).
	p.Activate()
	sch.AdvanceBy(3 * time.Second)
	if got := len(agg.Registry().Dir()); got != 2 {
		t.Fatalf("mirrors after activate = %v, want 2", agg.Registry().Dir())
	}
	freshAfterActivate := u.fresh.Load()
	if freshAfterActivate == 0 {
		t.Fatal("no fresh updates after activate")
	}

	// Bounce the target: pulls fail, the producer disconnects and retries
	// until the listener returns.
	ln.Close()
	sch.AdvanceBy(3 * time.Second)
	if p.State() == ProducerConnected {
		t.Fatal("producer still CONNECTED after target went down")
	}
	c := p.Counters()
	if c.Disconnects != 1 {
		t.Fatalf("disconnects = %d, want 1", c.Disconnects)
	}
	if c.ConnectFails == 0 {
		t.Fatal("no failed connection attempts recorded while target down")
	}
	if out, err := agg.Exec("updtr_status"); err != nil || !strings.Contains(out, "consec_errors=") {
		t.Fatalf("updtr_status during outage: %v\n%s", err, out)
	}

	if _, err := fac.Listen("n1", srv); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(3 * time.Second)
	if p.State() != ProducerConnected {
		t.Fatalf("state after target returned = %v, want CONNECTED", p.State())
	}
	if c := p.Counters(); c.Connects != 2 {
		t.Fatalf("connects after reconnect = %d, want 2", c.Connects)
	}
	// The reconnect voided the old lookup handles; fresh data must flow
	// again over the new epoch.
	bumpSets(reg, sch.Now(), 99)
	sch.AdvanceBy(3 * time.Second)
	freshAfterReconnect := u.fresh.Load()
	if freshAfterReconnect <= freshAfterActivate {
		t.Fatalf("fresh updates did not resume after reconnect: %d -> %d",
			freshAfterActivate, freshAfterReconnect)
	}

	// Primary recovered: deactivate and verify pulls stop while the
	// connection stays up for the next failover.
	p.Deactivate()
	sch.AdvanceBy(time.Second) // let any in-flight pass drain
	quiesced := u.updates.Load()
	bumpSets(reg, sch.Now(), 100)
	sch.AdvanceBy(3 * time.Second)
	if got := u.updates.Load(); got != quiesced {
		t.Fatalf("deactivated standby still pulled: updates %d -> %d", quiesced, got)
	}
	if p.State() != ProducerConnected {
		t.Fatalf("deactivated standby state = %v, want CONNECTED", p.State())
	}

	out, err := agg.Exec("prdcr_status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"standby=true", "active=false", "connects=2", "disconnects=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("prdcr_status missing %q:\n%s", want, out)
		}
	}
}
