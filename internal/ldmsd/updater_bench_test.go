package ldmsd

import (
	"fmt"
	"testing"
	"time"

	"goldms/internal/transport"
)

// BenchmarkUpdaterFanIn measures one full update pass pulling N sets
// spread over 8 producers, with the mem transport charging a simulated
// round-trip latency per operation (one RTT per op sequentially, one per
// pipelined batch). "sequential" is the pre-pipelining pull path: one
// producer at a time, one blocking round trip per set. "pipelined" fans
// producers onto the update pool and batches each producer's pulls.
//
// Run with -benchmem to see the pooled-buffer effect on allocs/op.
func BenchmarkUpdaterFanIn(b *testing.B) {
	const (
		producers = 8
		rtt       = 200 * time.Microsecond
	)
	for _, nsets := range []int{64, 256, 1024} {
		for _, mode := range []string{"sequential", "pipelined"} {
			b.Run(fmt.Sprintf("sets=%d/%s", nsets, mode), func(b *testing.B) {
				net := transport.NewNetwork()
				fac := transport.MemFactory{Net: net, Delay: func(addr, op string) {
					time.Sleep(rtt)
				}}
				perProducer := nsets / producers
				for i := 0; i < producers; i++ {
					name := fmt.Sprintf("p%d", i)
					reg := benchRegistry(b, name, perProducer)
					if _, err := fac.Listen(name, transport.NewServer(reg)); err != nil {
						b.Fatal(err)
					}
				}

				agg, err := New(Options{
					Name:          "agg",
					Workers:       producers,
					UpdateWorkers: producers,
					Memory:        64 << 20,
					Transports:    []transport.Factory{fac},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer agg.Stop()
				for i := 0; i < producers; i++ {
					name := fmt.Sprintf("p%d", i)
					p, err := agg.AddProducer(name, "mem", name, 10*time.Millisecond, false)
					if err != nil {
						b.Fatal(err)
					}
					p.Start()
				}
				// The updater is never Started: the benchmark drives passes
				// directly. A long interval keeps the per-op timeout generous.
				u, err := agg.AddUpdater("u", time.Minute, 0, false)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < producers; i++ {
					u.AddProducer(fmt.Sprintf("p%d", i))
				}
				if mode == "sequential" {
					u.SetConcurrency(1)
					u.SetBatch(1)
				}
				waitUntil(b, 10*time.Second, func() bool {
					for i := 0; i < producers; i++ {
						if agg.Producer(fmt.Sprintf("p%d", i)).State() != ProducerConnected {
							return false
						}
					}
					return true
				}, "producers to connect")

				// Warm up: pass 1 performs lookups, pass 2 the first pulls.
				u.run(time.Now())
				u.run(time.Now())
				if got := int(u.updates.Load()); got != nsets {
					b.Fatalf("warmup pulled %d sets, want %d", got, nsets)
				}

				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					u.run(time.Now())
				}
				b.StopTimer()
			})
		}
	}
}
