package ldmsd

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"goldms/internal/metric"
	"goldms/internal/transport"
)

// BenchmarkUpdaterFanIn measures one full update pass pulling N sets
// spread over 8 producers, with the mem transport charging a simulated
// round-trip latency per operation (one RTT per op sequentially, one per
// pipelined batch). "sequential" is the pre-pipelining pull path: one
// producer at a time, one blocking round trip per set. "pipelined" fans
// producers onto the update pool and batches each producer's pulls.
//
// The "pipelined+slowstore" mode attaches a storage policy backed by a
// fake 5 ms/row store plugin and dirties every source set before each
// pass, so all pulls are fresh and reach storeSet. It exists to show the
// async store queue keeps the pull pass at pipelined speed even when the
// store is three orders of magnitude slower than the enqueue (the
// drop-oldest default sheds the excess instead of stalling collection).
//
// Run with -benchmem to see the pooled-buffer effect on allocs/op.
func BenchmarkUpdaterFanIn(b *testing.B) {
	const (
		producers = 8
		rtt       = 200 * time.Microsecond
	)
	for _, nsets := range []int{64, 256, 1024} {
		for _, mode := range []string{"sequential", "pipelined", "pipelined+slowstore"} {
			b.Run(fmt.Sprintf("sets=%d/%s", nsets, mode), func(b *testing.B) {
				net := transport.NewNetwork()
				fac := transport.MemFactory{Net: net, Delay: func(addr, op string) {
					time.Sleep(rtt)
				}}
				perProducer := nsets / producers
				var srcSets []*metric.Set
				for i := 0; i < producers; i++ {
					name := fmt.Sprintf("p%d", i)
					reg := benchRegistry(b, name, perProducer)
					reg.Each(func(s *metric.Set) { srcSets = append(srcSets, s) })
					if _, err := fac.Listen(name, transport.NewServer(reg)); err != nil {
						b.Fatal(err)
					}
				}

				agg, err := New(Options{
					Name:          "agg",
					Workers:       producers,
					UpdateWorkers: producers,
					Memory:        64 << 20,
					Transports:    []transport.Factory{fac},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer agg.Stop()
				for i := 0; i < producers; i++ {
					name := fmt.Sprintf("p%d", i)
					p, err := agg.AddProducer(name, "mem", name, 10*time.Millisecond, false)
					if err != nil {
						b.Fatal(err)
					}
					p.Start()
				}
				// The updater is never Started: the benchmark drives passes
				// directly. A long interval keeps the per-op timeout generous.
				u, err := agg.AddUpdater("u", time.Minute, 0, false)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < producers; i++ {
					u.AddProducer(fmt.Sprintf("p%d", i))
				}
				if mode == "sequential" {
					u.SetConcurrency(1)
					u.SetBatch(1)
				}
				slowStore := mode == "pipelined+slowstore"
				if slowStore {
					_, err := agg.AddStoragePolicy("slow", "store_testpipe", "bench",
						filepath.Join(b.TempDir(), "slow"),
						map[string]string{"delay": "5ms", "queue": "64", "flush_interval": "0"})
					if err != nil {
						b.Fatal(err)
					}
				}
				// bump dirties every source set so the next pass's pulls
				// are fresh (stale pulls never reach storage).
				tick := int64(2000)
				bump := func() {
					tick++
					for _, s := range srcSets {
						s.BeginTransaction()
						s.SetU64(0, uint64(tick))
						s.EndTransaction(time.Unix(tick, 0))
					}
				}
				waitUntil(b, 10*time.Second, func() bool {
					for i := 0; i < producers; i++ {
						if agg.Producer(fmt.Sprintf("p%d", i)).State() != ProducerConnected {
							return false
						}
					}
					return true
				}, "producers to connect")

				// Warm up: pass 1 performs lookups, pass 2 the first pulls.
				u.run(time.Now())
				u.run(time.Now())
				if got := int(u.updates.Load()); got != nsets {
					b.Fatalf("warmup pulled %d sets, want %d", got, nsets)
				}

				if slowStore {
					bump()
					u.run(time.Now()) // first fresh pass warms the policy's column layout and pools
				}

				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if slowStore {
						bump()
					}
					u.run(time.Now())
				}
				b.StopTimer()
			})
		}
	}
}
