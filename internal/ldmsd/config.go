package ldmsd

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"goldms/internal/metric"
	"goldms/internal/obs"
	"goldms/internal/tier"
	"goldms/internal/transport"
)

// Exec interprets one ldmsd configuration command, in the style of the
// ldmsd_controller text protocol ("load name=meminfo", "start name=meminfo
// interval=1000000", "prdcr_add name=...", ...). It returns human-readable
// output. Intervals and offsets accept either plain microseconds (LDMS
// convention) or Go duration strings ("1s", "20s", "1m").
//
// Command set:
//
//	load name=<plugin>
//	config name=<plugin> [instance=<set>] [component_id=<n>] [k=v ...]
//	start name=<plugin> interval=<us|dur> [offset=<us|dur>] [synchronous=1]
//	stop name=<plugin>
//	oneshot name=<plugin>
//	listen xprt=<transport> addr=<addr>
//	xprt_opt xprt=sock [legacy=1] [delta=0|1] [dict=0|1] [compress=0|1]
//	             [rbuf=<bytes>] [wbuf=<bytes>]
//	                             (tune the sock transport: capability masks
//	                             and per-connection buffer sizes; applies to
//	                             listeners and producers created afterward)
//	http_listen addr=<addr> [window=<dur>] [points=<n>] [shards=<n>]
//	             [compress=1] [pprof=1]
//	                             (query & observability gateway)
//	prdcr_add name=<p> xprt=<t> host=<addr> [interval=<us|dur>] [standby=1]
//	prdcr_start name=<p>
//	prdcr_stop name=<p>
//	prdcr_activate name=<p>      (failover: begin pulling a standby)
//	prdcr_deactivate name=<p>
//	prdcr_status                 (per-producer connection + transfer counters)
//	updtr_add name=<u> interval=<us|dur> [offset=<us|dur>] [synchronous=1]
//	             [concurrency=<n>] [batch=<n>]
//	             [reduce=<op>[,<op>...]] [export=raw|reduced]
//	                             (in-flight reduction: fold each producer
//	                             group's sets into synthetic <op> sets;
//	                             export=reduced publishes only the folds)
//	updtr_prdcr_add name=<u> prdcr=<p>
//	updtr_prdcr_del name=<u> prdcr=<p>
//	updtr_match_add name=<u> match=<substring>
//	updtr_start name=<u>
//	updtr_stop name=<u>
//	updtr_status                 (per-updater pull-path counters)
//	strgp_add name=<s> plugin=<store> schema=<schema> container=<path>
//	             [queue=<n>] [batch=<n>] [flush_interval=<us|dur>]
//	             [overflow=drop-oldest|block] [k=v ...]
//	strgp_metric_add name=<s> metric=<m>[,<m>...]
//	strgp_start name=<s>         (accepted; stores start lazily)
//	strgp_status                 (per-policy queue/batch/drop counters + errors)
//	dir                          (list local sets)
//	ls [name=<set>]              (ldms_ls-style listing)
//	stats                        (activity counters)
//	usage                        (memory footprint)
//	events [n=<count>] [severity=info|warn|error] [component=<c>] [subject=<s>]
//	                             (recent entries of the event journal)
//	latency                      (per-hop sample-age histogram summary)
//	trace [chains=1]             (cross-tier span summary per hop daemon/
//	                             role/stage; chains=1 additionally lists
//	                             every set's current hop chain)
func (d *Daemon) Exec(line string) (string, error) {
	cmd, args, err := parseCommand(line)
	if err != nil {
		return "", err
	}
	out, err := d.exec(cmd, args)
	if err == nil && mutatingCommands[cmd] {
		// Config changes are journal events: they explain every later
		// producer/updater/store transition in the same timeline.
		d.journal.Appendf(obs.SevInfo, obs.CompConfig, args["name"], 0,
			"config: %s", strings.Join(strings.Fields(line), " "))
	}
	return out, err
}

// mutatingCommands are the Exec commands that change daemon state and are
// therefore recorded in the event journal (read-only status commands are
// not).
var mutatingCommands = map[string]bool{
	"load": true, "config": true, "start": true, "stop": true,
	"oneshot": true, "listen": true, "http_listen": true, "advertise": true,
	"xprt_opt":  true,
	"prdcr_add": true, "prdcr_start": true, "prdcr_stop": true,
	"prdcr_activate": true, "prdcr_deactivate": true,
	"updtr_add": true, "updtr_prdcr_add": true, "updtr_prdcr_del": true,
	"updtr_match_add": true, "updtr_start": true, "updtr_stop": true,
	"strgp_add": true, "strgp_metric_add": true, "strgp_start": true,
}

func (d *Daemon) exec(cmd string, args map[string]string) (string, error) {
	switch cmd {
	case "":
		return "", nil
	case "load":
		return d.cmdLoad(args)
	case "config":
		return d.cmdConfig(args)
	case "start":
		return d.cmdStart(args)
	case "stop":
		return d.cmdStop(args)
	case "oneshot":
		return d.cmdOneshot(args)
	case "listen":
		return d.cmdListen(args)
	case "xprt_opt":
		return d.cmdXprtOpt(args)
	case "http_listen":
		return d.cmdHTTPListen(args)
	case "advertise":
		return d.cmdAdvertise(args)
	case "prdcr_add":
		return d.cmdPrdcrAdd(args)
	case "prdcr_start":
		return d.withProducer(args, func(p *Producer) { p.Start() })
	case "prdcr_stop":
		return d.withProducer(args, func(p *Producer) { p.Stop() })
	case "prdcr_activate":
		return d.withProducer(args, func(p *Producer) { p.Activate() })
	case "prdcr_deactivate":
		return d.withProducer(args, func(p *Producer) { p.Deactivate() })
	case "prdcr_status":
		return d.cmdPrdcrStatus()
	case "updtr_add":
		return d.cmdUpdtrAdd(args)
	case "updtr_prdcr_add":
		return d.cmdUpdtrPrdcrAdd(args)
	case "updtr_prdcr_del":
		return d.cmdUpdtrPrdcrDel(args)
	case "updtr_status":
		return d.cmdUpdtrStatus()
	case "updtr_match_add":
		return d.cmdUpdtrMatchAdd(args)
	case "updtr_start":
		u, err := d.needUpdater(args)
		if err != nil {
			return "", err
		}
		return "", u.Start()
	case "updtr_stop":
		u, err := d.needUpdater(args)
		if err != nil {
			return "", err
		}
		u.Stop()
		return "", nil
	case "strgp_add":
		return d.cmdStrgpAdd(args)
	case "strgp_status":
		return d.cmdStrgpStatus()
	case "strgp_metric_add":
		return d.cmdStrgpMetricAdd(args)
	case "strgp_start":
		if d.StoragePolicy(args["name"]) == nil {
			return "", fmt.Errorf("ldmsd %s: no storage policy %q", d.name, args["name"])
		}
		return "", nil
	case "dir":
		return strings.Join(d.reg.Dir(), "\n"), nil
	case "ls":
		return d.cmdLs(args)
	case "stats":
		return d.cmdStats()
	case "usage":
		st := d.arena.Stats()
		return fmt.Sprintf("set_memory: used=%d peak=%d budget=%d", st.InUse, st.Peak, st.Capacity), nil
	case "events":
		return d.cmdEvents(args)
	case "latency":
		return d.cmdLatency()
	case "trace":
		return d.cmdTrace(args)
	default:
		return "", fmt.Errorf("ldmsd: unknown command %q", cmd)
	}
}

// ExecScript runs a newline-separated command script, stopping at the
// first error. Lines beginning with '#' are comments.
func (d *Daemon) ExecScript(script string) (string, error) {
	var out strings.Builder
	for i, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		res, err := d.Exec(line)
		if err != nil {
			return out.String(), fmt.Errorf("line %d (%q): %w", i+1, line, err)
		}
		if res != "" {
			out.WriteString(res)
			out.WriteString("\n")
		}
	}
	return out.String(), nil
}

// parseCommand splits "cmd k1=v1 k2=v2" into its parts.
func parseCommand(line string) (string, map[string]string, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return "", nil, nil
	}
	args := make(map[string]string, len(fields)-1)
	for _, f := range fields[1:] {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return "", nil, fmt.Errorf("ldmsd: malformed argument %q (want key=value)", f)
		}
		args[f[:eq]] = f[eq+1:]
	}
	return fields[0], args, nil
}

// parseInterval accepts microseconds or a Go duration string.
func parseInterval(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	if us, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Duration(us) * time.Microsecond, nil
	}
	return time.ParseDuration(s)
}

// pendingPlugin tracks load/config state before start instantiates the
// sampler.
type pendingPlugin struct {
	instance string
	compID   uint64
	options  map[string]string
}

// pending is lazily allocated on the daemon.
func (d *Daemon) pendingFor(name string) *pendingPlugin {
	if d.pending == nil {
		d.pending = make(map[string]*pendingPlugin)
	}
	p := d.pending[name]
	if p == nil {
		p = &pendingPlugin{compID: d.compID, options: make(map[string]string)}
		d.pending[name] = p
	}
	return p
}

func (d *Daemon) cmdLoad(args map[string]string) (string, error) {
	name := args["name"]
	if name == "" {
		return "", fmt.Errorf("ldmsd: load requires name=")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.samplers[name]; dup {
		return "", fmt.Errorf("ldmsd %s: plugin %q already loaded", d.name, name)
	}
	d.pendingFor(name)
	return "", nil
}

func (d *Daemon) cmdConfig(args map[string]string) (string, error) {
	name := args["name"]
	if name == "" {
		return "", fmt.Errorf("ldmsd: config requires name=")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pending == nil || d.pending[name] == nil {
		return "", fmt.Errorf("ldmsd %s: plugin %q not loaded", d.name, name)
	}
	p := d.pending[name]
	for k, v := range args {
		switch k {
		case "name":
		case "instance":
			p.instance = v
		case "component_id":
			id, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return "", fmt.Errorf("ldmsd: bad component_id %q", v)
			}
			p.compID = id
		case "producer":
			// Accepted for compatibility; the instance name carries it.
		default:
			p.options[k] = v
		}
	}
	return "", nil
}

func (d *Daemon) cmdStart(args map[string]string) (string, error) {
	name := args["name"]
	if name == "" {
		return "", fmt.Errorf("ldmsd: start requires name=")
	}
	interval, err := parseInterval(args["interval"])
	if err != nil || interval <= 0 {
		return "", fmt.Errorf("ldmsd: start requires a positive interval")
	}
	offset, err := parseInterval(args["offset"])
	if err != nil {
		return "", err
	}
	_, synchronous := args["synchronous"]
	if v := args["synchronous"]; v == "0" {
		synchronous = false
	}

	sp := d.Sampler(name)
	if sp == nil {
		d.mu.Lock()
		pend := (*pendingPlugin)(nil)
		if d.pending != nil {
			pend = d.pending[name]
		}
		d.mu.Unlock()
		if pend == nil {
			return "", fmt.Errorf("ldmsd %s: plugin %q not loaded", d.name, name)
		}
		sp, err = d.loadSamplerComp(name, pend.instance, pend.compID, pend.options)
		if err != nil {
			return "", err
		}
	}
	sp.Start(interval, offset, synchronous)
	return "", nil
}

func (d *Daemon) cmdStop(args map[string]string) (string, error) {
	sp := d.Sampler(args["name"])
	if sp == nil {
		return "", fmt.Errorf("ldmsd %s: plugin %q not running", d.name, args["name"])
	}
	sp.Stop()
	return "", nil
}

func (d *Daemon) cmdOneshot(args map[string]string) (string, error) {
	sp := d.Sampler(args["name"])
	if sp == nil {
		return "", fmt.Errorf("ldmsd %s: plugin %q not running", d.name, args["name"])
	}
	return "", sp.SampleOnce(d.sch.Now())
}

func (d *Daemon) cmdListen(args map[string]string) (string, error) {
	xprt, addr := args["xprt"], args["addr"]
	if xprt == "" || addr == "" {
		return "", fmt.Errorf("ldmsd: listen requires xprt= and addr=")
	}
	if args["peers"] == "1" {
		return d.ListenForProducers(xprt, addr)
	}
	bound, err := d.Listen(xprt, addr)
	if err != nil {
		return "", err
	}
	return bound, nil
}

// cmdXprtOpt tunes the sock transport factory: capability masks (legacy=1
// turns every extension off; delta/dict/compress toggle individually) and
// per-connection read/write buffer sizes. The tuned factory replaces the
// registered one: new listeners use it immediately, and producers
// re-resolve it on every connect attempt, so a prdcr_stop/prdcr_start
// cycle (or any reconnect) renegotiates under the new settings. Live
// connections keep what they negotiated.
func (d *Daemon) cmdXprtOpt(args map[string]string) (string, error) {
	if x := args["xprt"]; x != "" && x != "sock" {
		return "", fmt.Errorf("ldmsd: xprt_opt supports xprt=sock only, got %q", x)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	sf, _ := d.transports["sock"].(transport.SockFactory)
	if v, ok, err := parseOnOff("legacy", args); err != nil {
		return "", err
	} else if ok {
		sf.Legacy = v
	}
	for _, opt := range []struct {
		key  string
		mask *bool
	}{
		{"delta", &sf.NoDelta},
		{"dict", &sf.NoDict},
		{"compress", &sf.NoCompress},
	} {
		if v, ok, err := parseOnOff(opt.key, args); err != nil {
			return "", err
		} else if ok {
			*opt.mask = !v
		}
	}
	for _, opt := range []struct {
		key string
		dst *int
	}{
		{"rbuf", &sf.ReadBuf},
		{"wbuf", &sf.WriteBuf},
	} {
		if v := args[opt.key]; v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return "", fmt.Errorf("ldmsd: bad %s %q", opt.key, v)
			}
			*opt.dst = n
		}
	}
	d.transports["sock"] = sf
	return "", nil
}

// parseOnOff reads a 0/1 boolean option; ok is false when absent.
func parseOnOff(key string, args map[string]string) (v, ok bool, err error) {
	s, present := args[key]
	if !present || s == "" {
		return false, false, nil
	}
	switch s {
	case "1", "true":
		return true, true, nil
	case "0", "false":
		return false, true, nil
	}
	return false, false, fmt.Errorf("ldmsd: bad %s %q (want 0 or 1)", key, s)
}

// cmdHTTPListen starts the query & observability gateway.
func (d *Daemon) cmdHTTPListen(args map[string]string) (string, error) {
	addr := args["addr"]
	if addr == "" {
		return "", fmt.Errorf("ldmsd: http_listen requires addr=")
	}
	cfg := GatewayConfig{
		Addr:     addr,
		PProf:    args["pprof"] == "1",
		Compress: args["compress"] == "1",
	}
	if v := args["window"]; v != "" {
		w, err := parseInterval(v)
		if err != nil {
			return "", fmt.Errorf("ldmsd: bad window %q", v)
		}
		if w == 0 {
			w = -1 // window=0 disables the recent-window cache
		}
		cfg.Window = w
	}
	if v := args["points"]; v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return "", fmt.Errorf("ldmsd: bad points %q", v)
		}
		cfg.Points = n
	}
	if v := args["shards"]; v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return "", fmt.Errorf("ldmsd: bad shards %q", v)
		}
		cfg.Shards = n
	}
	return d.ServeHTTP(cfg)
}

// cmdPrdcrStatus renders per-producer connection state and transfer
// counters: one line per producer in name order. Each line carries the
// daemon's tier role and the producer's mirrored-set count so a topology
// consumer (ldms-top) can render fan-in depth from status output alone.
func (d *Daemon) cmdPrdcrStatus() (string, error) {
	d.mu.Lock()
	prdcrs := mapValues(d.prdcrs)
	d.mu.Unlock()
	role := d.TierRole()
	var lines []string
	for _, p := range prdcrs {
		c := p.Counters()
		line := fmt.Sprintf(
			"name=%s host=%s xprt=%s state=%s tier=%s sets=%d standby=%v active=%v connects=%d disconnects=%d connect_fails=%d bytes_in=%d bytes_out=%d msgs_in=%d msgs_out=%d batches=%d batched_ops=%d updates=%d delta_updates=%d bytes_per_sample=%.1f connected_since=%s",
			p.Name(), p.Host(), p.TransportName(), p.State(), role,
			d.mirroredSetCount(p.Name()), p.Standby(), p.Active(),
			c.Connects, c.Disconnects, c.ConnectFails,
			c.Transport.BytesIn, c.Transport.BytesOut,
			c.Transport.MsgsIn, c.Transport.MsgsOut,
			c.Transport.Batches, c.Transport.BatchedOps,
			c.Transport.Updates, c.Transport.DeltaUpdates,
			c.Transport.BytesPerSample(),
			timestampOrNever(d.producerConnectedSince(p)))
		if ev, ok := d.lastProducerEvent(p.Name()); ok {
			line += fmt.Sprintf(" last_event=%q last_event_time=%s",
				ev.Message, ev.Time.UTC().Format(time.RFC3339))
		}
		lines = append(lines, line)
	}
	return strings.Join(lines, "\n"), nil
}

// producerConnectedSince reports when the producer's current connection was
// established, sourced from the journal's connect/reconnect events; zero
// when the producer is not currently connected (or the event has already
// rotated out of the journal ring).
func (d *Daemon) producerConnectedSince(p *Producer) time.Time {
	if p.State() != ProducerConnected {
		return time.Time{}
	}
	ev, ok := d.journal.LastMatch(func(e obs.Event) bool {
		return e.Component == obs.CompProducer && e.Subject == p.Name() &&
			(e.Message == "connected" || e.Message == "reconnected")
	})
	if !ok {
		return time.Time{}
	}
	return ev.Time
}

// lastProducerEvent returns the producer's most recent journal event.
func (d *Daemon) lastProducerEvent(name string) (obs.Event, bool) {
	return d.journal.LastMatch(func(e obs.Event) bool {
		return e.Component == obs.CompProducer && e.Subject == name
	})
}

// timestampOrNever renders a status timestamp field.
func timestampOrNever(t time.Time) string {
	if t.IsZero() {
		return "never"
	}
	return t.UTC().Format(time.RFC3339)
}

func (d *Daemon) cmdAdvertise(args map[string]string) (string, error) {
	xprt, host := args["xprt"], args["host"]
	if xprt == "" || host == "" {
		return "", fmt.Errorf("ldmsd: advertise requires xprt= and host=")
	}
	interval, err := parseInterval(args["interval"])
	if err != nil {
		return "", err
	}
	a, err := d.Advertise(xprt, host, interval)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	d.advs = append(d.advs, a)
	d.mu.Unlock()
	return "", nil
}

func (d *Daemon) cmdPrdcrAdd(args map[string]string) (string, error) {
	name, xprt, host := args["name"], args["xprt"], args["host"]
	if name == "" {
		return "", fmt.Errorf("ldmsd: prdcr_add requires name=")
	}
	if args["type"] == "passive" {
		// The connection arrives from the sampler side (advertise).
		_, err := d.AddPassiveProducer(name)
		return "", err
	}
	if xprt == "" || host == "" {
		return "", fmt.Errorf("ldmsd: prdcr_add requires xprt= and host= (or type=passive)")
	}
	interval, err := parseInterval(args["interval"])
	if err != nil {
		return "", err
	}
	standby := args["standby"] == "1"
	_, err = d.AddProducer(name, xprt, host, interval, standby)
	return "", err
}

func (d *Daemon) withProducer(args map[string]string, f func(*Producer)) (string, error) {
	p := d.Producer(args["name"])
	if p == nil {
		return "", fmt.Errorf("ldmsd %s: no producer %q", d.name, args["name"])
	}
	f(p)
	return "", nil
}

func (d *Daemon) cmdUpdtrAdd(args map[string]string) (string, error) {
	name := args["name"]
	if name == "" {
		return "", fmt.Errorf("ldmsd: updtr_add requires name=")
	}
	interval, err := parseInterval(args["interval"])
	if err != nil || interval <= 0 {
		return "", fmt.Errorf("ldmsd: updtr_add requires a positive interval")
	}
	offset, err := parseInterval(args["offset"])
	if err != nil {
		return "", err
	}
	concurrency, batch := -1, -1
	if v := args["concurrency"]; v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return "", fmt.Errorf("ldmsd: bad concurrency %q", v)
		}
		concurrency = n
	}
	if v := args["batch"]; v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return "", fmt.Errorf("ldmsd: bad batch %q", v)
		}
		batch = n
	}
	var reduceOps []tier.Op
	if v := args["reduce"]; v != "" {
		reduceOps, err = tier.ParseOps(v)
		if err != nil {
			return "", fmt.Errorf("ldmsd: %w", err)
		}
	}
	exportRaw := true
	switch v := args["export"]; v {
	case "", "raw":
	case "reduced":
		exportRaw = false
	default:
		return "", fmt.Errorf("ldmsd: bad export %q (want raw or reduced)", v)
	}
	if args["export"] != "" && len(reduceOps) == 0 {
		return "", fmt.Errorf("ldmsd: export= requires reduce=")
	}
	u, err := d.AddUpdater(name, interval, offset, args["synchronous"] == "1")
	if err != nil {
		return "", err
	}
	if concurrency >= 0 {
		u.SetConcurrency(concurrency)
	}
	if batch >= 1 {
		u.SetBatch(batch)
	}
	if len(reduceOps) > 0 {
		if err := u.SetReduce(reduceOps, exportRaw); err != nil {
			return "", err
		}
	}
	return "", nil
}

func (d *Daemon) needUpdater(args map[string]string) (*Updater, error) {
	u := d.Updater(args["name"])
	if u == nil {
		return nil, fmt.Errorf("ldmsd %s: no updater %q", d.name, args["name"])
	}
	return u, nil
}

func (d *Daemon) cmdUpdtrPrdcrAdd(args map[string]string) (string, error) {
	u, err := d.needUpdater(args)
	if err != nil {
		return "", err
	}
	return "", u.AddProducer(args["prdcr"])
}

func (d *Daemon) cmdUpdtrPrdcrDel(args map[string]string) (string, error) {
	u, err := d.needUpdater(args)
	if err != nil {
		return "", err
	}
	if args["prdcr"] == "" {
		return "", fmt.Errorf("ldmsd: updtr_prdcr_del requires prdcr=")
	}
	u.RemoveProducer(args["prdcr"])
	return "", nil
}

// cmdUpdtrStatus renders per-updater pull-path counters: one line per
// updater in name order.
func (d *Daemon) cmdUpdtrStatus() (string, error) {
	d.mu.Lock()
	updtrs := mapValues(d.updtrs)
	d.mu.Unlock()
	var lines []string
	for _, u := range updtrs {
		u.mu.Lock()
		state := "stopped"
		if u.started {
			state = "running"
		}
		nprdcr := len(u.producers)
		conc := u.concurrency
		batch := u.batch
		interval := u.interval
		u.mu.Unlock()
		uline := fmt.Sprintf(
			"name=%s state=%s interval=%s producers=%d concurrency=%d batch=%d passes=%d inflight=%d last_pass_us=%d updates=%d skipped_busy=%d errors=%d",
			u.name, state, interval, nprdcr, conc, batch,
			u.passes.Load(), u.inflight.Load(), u.lastPassNanos.Load()/1000,
			u.updates.Load(), u.skippedBusy.Load(), u.errors.Load())
		if ops, exportRaw, rst, enabled := u.ReduceStatus(); enabled {
			exp := "raw"
			if !exportRaw {
				exp = "reduced"
			}
			uline += fmt.Sprintf(
				" reduce=%s export=%s reduce_groups=%d reduce_members=%d reduce_sets=%d folds=%d published=%d",
				ops, exp, rst.Groups, rst.Members, rst.Outputs, rst.Folds, rst.Published)
		}
		lines = append(lines, uline)
		for _, ph := range u.PullHealth() {
			line := fmt.Sprintf(
				"  prdcr=%s sets=%d last_update=%s consec_errors=%d",
				ph.Producer, u.MirroredSets(ph.Producer),
				timestampOrNever(ph.LastSuccess), ph.ConsecErrors)
			if p := d.Producer(ph.Producer); p != nil {
				line += " connected_since=" + timestampOrNever(d.producerConnectedSince(p))
			}
			if ev, ok := d.lastProducerEvent(ph.Producer); ok {
				line += fmt.Sprintf(" last_event=%q", ev.Message)
			}
			lines = append(lines, line)
		}
	}
	return strings.Join(lines, "\n"), nil
}

func (d *Daemon) cmdUpdtrMatchAdd(args map[string]string) (string, error) {
	u, err := d.needUpdater(args)
	if err != nil {
		return "", err
	}
	match := args["match"]
	if match == "" {
		return "", fmt.Errorf("ldmsd: updtr_match_add requires match=")
	}
	u.SetMatch(func(instance string) bool {
		return strings.Contains(instance, match)
	})
	return "", nil
}

func (d *Daemon) cmdStrgpAdd(args map[string]string) (string, error) {
	name, plugin := args["name"], args["plugin"]
	schema, container := args["schema"], args["container"]
	if name == "" || plugin == "" || schema == "" || container == "" {
		return "", fmt.Errorf("ldmsd: strgp_add requires name=, plugin=, schema= and container=")
	}
	options := make(map[string]string)
	for k, v := range args {
		switch k {
		case "name", "plugin", "schema", "container":
		default:
			options[k] = v
		}
	}
	_, err := d.AddStoragePolicy(name, plugin, schema, container, options)
	return "", err
}

// cmdStrgpStatus renders per-policy storage-pipeline state: one line per
// policy in name order, including the sticky failure (if any) so silently
// dropped rows are visible to operators.
func (d *Daemon) cmdStrgpStatus() (string, error) {
	d.mu.Lock()
	strgps := mapValues(d.strgps)
	d.mu.Unlock()
	var lines []string
	for _, sp := range strgps {
		c := sp.Counters()
		state := "running"
		if c.Failed {
			state = "failed"
		}
		overflow := "drop-oldest"
		if !sp.dropOldest {
			overflow = "block"
		}
		line := fmt.Sprintf(
			"name=%s plugin=%s schema=%s state=%s rows=%d enqueued=%d dropped=%d batches=%d queue=%d/%d batch_max=%d overflow=%s flush_interval=%s flushes=%d store_us=%d flush_us=%d",
			sp.Name(), sp.Plugin(), sp.Schema(), state,
			c.Rows, c.Enqueued, c.Dropped, c.Batches,
			c.QueueDepth, c.QueueCap, sp.batchMax, overflow, sp.flushEvery,
			c.Flushes, c.StoreNanos/1000, c.FlushNanos/1000)
		if err := sp.Err(); err != nil {
			line += fmt.Sprintf(" err=%q", err.Error())
		}
		lines = append(lines, line)
	}
	return strings.Join(lines, "\n"), nil
}

func (d *Daemon) cmdStrgpMetricAdd(args map[string]string) (string, error) {
	sp := d.StoragePolicy(args["name"])
	if sp == nil {
		return "", fmt.Errorf("ldmsd %s: no storage policy %q", d.name, args["name"])
	}
	m := args["metric"]
	if m == "" {
		return "", fmt.Errorf("ldmsd: strgp_metric_add requires metric=")
	}
	sp.mu.Lock()
	if sp.metricSel == nil {
		sp.metricSel = make(map[string]bool)
	}
	for _, name := range strings.Split(m, ",") {
		sp.metricSel[name] = true
	}
	sp.mu.Unlock()
	return "", nil
}

// cmdLs renders sets ldms_ls style: names only, or metrics of one set.
func (d *Daemon) cmdLs(args map[string]string) (string, error) {
	name := args["name"]
	if name == "" {
		return strings.Join(d.reg.Dir(), "\n"), nil
	}
	set := d.reg.Get(name)
	if set == nil {
		return "", fmt.Errorf("ldmsd %s: no set %q", d.name, name)
	}
	var b strings.Builder
	// One ReadValues snapshot instead of per-metric reads: a listing
	// racing a sampler transaction must not interleave old and new rows.
	vals := make([]metric.Value, set.Card())
	ts, _, consistent, _ := set.ReadValues(vals)
	cons := "inconsistent"
	if consistent {
		cons = "consistent"
	}
	fmt.Fprintf(&b, "%s: %s, last update: %s [%s]\n",
		set.Name(), set.SchemaName(), ts.UTC().Format(time.RFC3339), cons)
	for i, v := range vals {
		fmt.Fprintf(&b, " %c %-10s %-40s %s\n",
			typeTag(set.MetricType(i)), set.MetricType(i), set.MetricName(i), v)
	}
	return b.String(), nil
}

// typeTag mirrors the U/D markers in ldms_ls output.
func typeTag(t interface{ String() string }) byte {
	s := t.String()
	if len(s) > 0 && (s[0] == 'd' || s[0] == 'f') {
		return 'D'
	}
	return 'U'
}

// cmdEvents renders the event journal, oldest first: one line per event
// with key=value fields matching the other status commands.
func (d *Daemon) cmdEvents(args map[string]string) (string, error) {
	n := 20
	if v := args["n"]; v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			return "", fmt.Errorf("ldmsd: bad n %q", v)
		}
		n = parsed
	}
	minSev := obs.SevInfo
	if v := args["severity"]; v != "" {
		parsed, err := obs.ParseSeverity(v)
		if err != nil {
			return "", fmt.Errorf("ldmsd: %w", err)
		}
		minSev = parsed
	}
	events := d.journal.Query(n, minSev, args["component"], args["subject"])
	lines := make([]string, 0, len(events))
	for _, ev := range events {
		line := fmt.Sprintf("seq=%d time=%s sev=%s component=%s",
			ev.Seq, ev.Time.UTC().Format(time.RFC3339), ev.Sev, ev.Component)
		if ev.Subject != "" {
			line += " subject=" + ev.Subject
		}
		if ev.Epoch != 0 {
			line += fmt.Sprintf(" epoch=%d", ev.Epoch)
		}
		line += fmt.Sprintf(" msg=%q", ev.Message)
		lines = append(lines, line)
	}
	return strings.Join(lines, "\n"), nil
}

// cmdLatency renders the per-hop sample-age histograms: how old samples
// were when they completed the pull, entered the recent window, and
// reached the store plugin.
func (d *Daemon) cmdLatency() (string, error) {
	var lines []string
	for _, h := range d.lat.Snapshot() {
		lines = append(lines, fmt.Sprintf(
			"hop=%s count=%d p50=%s p95=%s p99=%s max=%s",
			h.Hop, h.Count, h.P50, h.P95, h.P99, h.Max))
	}
	return strings.Join(lines, "\n"), nil
}

// cmdTrace renders the cross-tier span summaries: sample age per hop
// daemon, tier role, and pipeline stage, covering this daemon and every
// traced hop below it. chains=1 additionally lists each published set's
// current hop chain, origin hop first.
func (d *Daemon) cmdTrace(args map[string]string) (string, error) {
	var lines []string
	for _, s := range d.Spans() {
		lines = append(lines, fmt.Sprintf(
			"daemon=%s role=%s stage=%s count=%d p50=%s p95=%s p99=%s max=%s",
			s.Daemon, s.Role, s.Stage, s.Count, s.P50, s.P95, s.P99, s.Max))
	}
	if args["chains"] == "1" {
		for _, c := range d.Chains() {
			var hops []string
			for _, h := range c.Hops {
				hops = append(hops, fmt.Sprintf("%s(%s)", h.Daemon, h.Role))
			}
			lines = append(lines, fmt.Sprintf("set=%s depth=%d chain=%s",
				c.Set, len(c.Hops), strings.Join(hops, "->")))
		}
	}
	return strings.Join(lines, "\n"), nil
}

// cmdStats renders the daemon activity counters.
func (d *Daemon) cmdStats() (string, error) {
	st := d.Stats()
	keys := []string{
		fmt.Sprintf("samples=%d", st.Samples),
		fmt.Sprintf("sample_errors=%d", st.SampleErrors),
		fmt.Sprintf("lookups=%d", st.Lookups),
		fmt.Sprintf("updates=%d", st.Updates),
		fmt.Sprintf("fresh=%d", st.UpdatesFresh),
		fmt.Sprintf("stale=%d", st.UpdatesStale),
		fmt.Sprintf("inconsistent=%d", st.UpdatesInconsistent),
		fmt.Sprintf("update_errors=%d", st.UpdateErrors),
		fmt.Sprintf("skipped_busy=%d", st.UpdatesSkippedBusy),
		fmt.Sprintf("stored_rows=%d", st.StoredRows),
		fmt.Sprintf("dropped_rows=%d", st.DroppedRows),
	}
	sort.Strings(keys)
	return strings.Join(keys, " "), nil
}
