// Package ldmsd implements the LDMS daemon engine: the single multi-
// threaded daemon that "is run in either sampler or aggregator mode and
// supports the store functionality when run in aggregator mode" (paper
// §IV-B). Differentiation is purely configuration:
//
//   - Sampler policies run sampling plugins on user-defined intervals
//     (synchronous or asynchronous), overwriting metric sets in place.
//   - Producers are connections to other ldmsds (samplers or aggregators)
//     from which metric sets are pulled; standby producers support
//     failover.
//   - Updaters pull the data chunks of looked-up sets on their own
//     schedule, discarding stale (unchanged DGN) or torn (inconsistent)
//     samples.
//   - Storage policies hand every fresh consistent sample to a store
//     plugin (CSV, flat file, SOS).
//
// The engine runs identically against the real clock (production daemons)
// or a virtual clock (whole-day experiments in seconds).
package ldmsd

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/metric"
	"goldms/internal/mmgr"
	"goldms/internal/obs"
	"goldms/internal/procfs"
	"goldms/internal/query"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// Options configure a Daemon.
type Options struct {
	// Name identifies the daemon (conventionally the hostname).
	Name string
	// Scheduler, if set, is used for all timed work (a shared virtual
	// scheduler in simulations). If nil a real-clock scheduler is created.
	Scheduler *sched.Scheduler
	// Workers sizes the worker pool of a real-clock scheduler.
	Workers int
	// ConnWorkers sizes the connection-setup pool (paper: a separate pool
	// so hung connection attempts cannot starve collector threads).
	ConnWorkers int
	// UpdateWorkers sizes the update pull pool, on which updaters fan out
	// per-producer pulls within a pass (real-clock mode only; virtual-time
	// daemons pull sequentially for determinism). Defaults to Workers.
	UpdateWorkers int
	// StoreWorkers sizes the dedicated store pool that drains storage-
	// policy queues and runs periodic flushes (paper §IV: store plugins
	// run on a dedicated flush pool so storage latency never back-
	// pressures collection). Real-clock mode only; virtual-time daemons
	// store synchronously for determinism. Defaults to 2.
	StoreWorkers int
	// Memory is the metric-set memory budget in bytes (the -m flag).
	Memory int
	// FS is the node's /proc//sys source for sampling plugins.
	FS procfs.FS
	// CompID is the default component ID for sampler sets.
	CompID uint64
	// Transports lists the transport factories available to this daemon.
	Transports []transport.Factory
	// Logger receives the daemon's structured logs (and the drained event
	// journal). Nil discards, so libraries and benchmarks pay nothing.
	Logger *slog.Logger
	// JournalSize is the event-journal ring capacity (default
	// obs.DefaultJournalSize).
	JournalSize int
}

// Daemon is one ldmsd instance.
type Daemon struct {
	name   string
	sch    *sched.Scheduler
	ownSch bool
	conn   *sched.Pool
	upd    *sched.Pool // update pull fan-out; nil under a virtual clock
	str    *sched.Pool // store queue drain + flush; nil under a virtual clock
	arena  *mmgr.Arena
	fs     procfs.FS
	compID uint64

	reg        *metric.Registry
	srv        *transport.Server
	transports map[string]transport.Factory
	listeners  []transport.Listener

	// Self-observability: structured logger, the operational event
	// journal (drained to log), and the per-hop sample-age histograms.
	// All are always non-nil; with no logger configured, log records die
	// at the Enabled check and the histograms cost one atomic increment
	// per hop.
	log     *slog.Logger
	journal *obs.Journal
	lat     obs.Pipeline
	trace   *tracePlane

	mu       sync.Mutex
	samplers map[string]*SamplerPolicy
	prdcrs   map[string]*Producer
	updtrs   map[string]*Updater
	strgps   map[string]*StoragePolicy
	pending  map[string]*pendingPlugin // loaded-but-not-started plugins
	advs     []*Advertiser
	gw       *gatewayState
	stopped  bool

	// window is the gateway's recent-window cache; nil while no gateway
	// runs. An atomic pointer keeps the store-path tap to one load.
	window atomic.Pointer[query.Window]

	// strgpList is the lock-free snapshot of storage policies the pull
	// path fans fresh samples out to; rebuilt when a policy is added.
	strgpList atomic.Pointer[[]*StoragePolicy]
}

// DefaultMemory is the default metric-set memory budget. The paper reports
// "less than two megabytes of memory per node for samplers to run in
// typical configurations".
const DefaultMemory = 2 << 20

// New creates a daemon.
func New(opts Options) (*Daemon, error) {
	if opts.Name == "" {
		return nil, fmt.Errorf("ldmsd: daemon needs a name")
	}
	mem := opts.Memory
	if mem <= 0 {
		mem = DefaultMemory
	}
	arena, err := mmgr.New(mem)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		name:       opts.Name,
		arena:      arena,
		fs:         opts.FS,
		compID:     opts.CompID,
		reg:        metric.NewRegistry(),
		transports: make(map[string]transport.Factory),
		samplers:   make(map[string]*SamplerPolicy),
		prdcrs:     make(map[string]*Producer),
		updtrs:     make(map[string]*Updater),
		strgps:     make(map[string]*StoragePolicy),
	}
	d.srv = transport.NewServer(d.reg)
	d.trace = newTracePlane(d)
	d.srv.Trace = d.trace.appendWire
	w := opts.Workers
	if w <= 0 {
		w = 4
	}
	if opts.Scheduler != nil {
		d.sch = opts.Scheduler
	} else {
		d.sch = sched.NewReal(w)
		d.ownSch = true
		cw := opts.ConnWorkers
		if cw <= 0 {
			cw = 2
		}
		d.conn = sched.NewPool(cw, 4*cw+8)
	}
	if !d.sch.Virtual() {
		uw := opts.UpdateWorkers
		if uw <= 0 {
			uw = w
		}
		d.upd = sched.NewPool(uw, 4*uw+8)
		sw := opts.StoreWorkers
		if sw <= 0 {
			sw = 2
		}
		d.str = sched.NewPool(sw, 4*sw+8)
	}
	for _, f := range opts.Transports {
		d.transports[f.Name()] = f
	}
	if d.fs == nil {
		d.fs = procfs.OSFS{}
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.Discard()
	}
	d.log = logger.With(slog.String("daemon", d.name))
	// Journal timestamps come from the scheduler clock, so virtual-time
	// daemons journal deterministic simulated times.
	d.journal = obs.NewJournal(opts.JournalSize, d.sch.Now, d.log)
	d.log.Info("daemon started",
		slog.Int("workers", w),
		slog.Int("memory_bytes", mem),
		slog.Bool("virtual_clock", d.sch.Virtual()))
	return d, nil
}

// Name returns the daemon's name.
func (d *Daemon) Name() string { return d.name }

// TierRole derives the daemon's position in a tiered aggregation topology
// from its configuration: "leaf" with no producers (samplers and daemons
// that only serve), "mid" when it both pulls from producers and serves a
// transport listener for the tier above, "top" when it pulls but serves
// nothing upstream.
func (d *Daemon) TierRole() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case len(d.prdcrs) == 0:
		return "leaf"
	case len(d.listeners) > 0:
		return "mid"
	default:
		return "top"
	}
}

// mirroredSetCount sums, across every updater, the sets currently
// mirrored from the named producer.
func (d *Daemon) mirroredSetCount(name string) int {
	d.mu.Lock()
	updtrs := mapValues(d.updtrs)
	d.mu.Unlock()
	n := 0
	for _, u := range updtrs {
		n += u.MirroredSets(name)
	}
	return n
}

// Registry returns the daemon's local set registry (its own sampled sets
// plus mirrors of aggregated sets, which daisy-chained aggregators pull in
// turn).
func (d *Daemon) Registry() *metric.Registry { return d.reg }

// Arena returns the metric-set memory arena, for footprint accounting.
func (d *Daemon) Arena() *mmgr.Arena { return d.arena }

// Scheduler returns the daemon's scheduler.
func (d *Daemon) Scheduler() *sched.Scheduler { return d.sch }

// ServerStats returns transport serving counters (pulls served to peers).
func (d *Daemon) ServerStats() transport.ServerStats { return d.srv.Stats() }

// Journal returns the daemon's operational event journal.
func (d *Daemon) Journal() *obs.Journal { return d.journal }

// Latency returns the daemon's per-hop sample-age histograms.
func (d *Daemon) Latency() *obs.Pipeline { return &d.lat }

// Logger returns the daemon's structured logger.
func (d *Daemon) Logger() *slog.Logger { return d.log }

// transportByName resolves a configured transport. The map is read under
// d.mu because xprt_opt may replace the sock factory at runtime.
func (d *Daemon) transportByName(name string) (transport.Factory, error) {
	d.mu.Lock()
	f, ok := d.transports[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("ldmsd %s: transport %q not configured", d.name, name)
	}
	return f, nil
}

// Listen exposes the daemon's registry on the named transport and address,
// as "ldmsd is also configured to listen for incoming connection requests".
func (d *Daemon) Listen(transportName, addr string) (string, error) {
	f, err := d.transportByName(transportName)
	if err != nil {
		return "", err
	}
	ln, err := f.Listen(addr, d.srv)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	d.listeners = append(d.listeners, ln)
	d.mu.Unlock()
	d.log.Info("listening", slog.String("transport", transportName), slog.String("addr", ln.Addr()))
	return ln.Addr(), nil
}

// submitConn runs connection work on the connection pool in real-time mode
// or inline under a virtual scheduler.
func (d *Daemon) submitConn(f func()) {
	if d.conn != nil && d.conn.Submit(f) {
		return
	}
	f()
}

// updatePool returns the update pull fan-out pool, or nil when the daemon
// runs under a virtual clock (pulls then stay sequential and
// deterministic).
func (d *Daemon) updatePool() *sched.Pool { return d.upd }

// storePool returns the dedicated store drain/flush pool, or nil when the
// daemon runs under a virtual clock (storage policies then drain inline
// so simulated experiments stay synchronous and deterministic).
func (d *Daemon) storePool() *sched.Pool { return d.str }

// Stop halts all policies, closes listeners and producer connections, and
// (if owned) stops the scheduler.
func (d *Daemon) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	d.journal.Append(obs.SevInfo, obs.CompDaemon, "", 0, "daemon stopping")
	samplers := mapValues(d.samplers)
	prdcrs := mapValues(d.prdcrs)
	updtrs := mapValues(d.updtrs)
	strgps := mapValues(d.strgps)
	listeners := d.listeners
	advs := d.advs
	gw := d.gw
	d.gw = nil
	d.mu.Unlock()

	d.closeGateway(gw)
	for _, a := range advs {
		a.Stop()
	}

	for _, u := range updtrs {
		u.Stop()
	}
	for _, s := range samplers {
		s.Stop()
	}
	for _, p := range prdcrs {
		p.Stop()
	}
	if d.ownSch {
		d.sch.Stop()
	}
	if d.upd != nil {
		d.upd.Stop()
	}
	if d.conn != nil {
		d.conn.Stop()
	}
	// The store pool stops after the pull paths are quiet so in-flight
	// drain jobs complete; Close then drains any remainder inline and
	// flushes the plugins.
	if d.str != nil {
		d.str.Stop()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	for _, sp := range strgps {
		sp.Close()
	}
}

// mapValues returns the values of a map in sorted key order.
func mapValues[V any](m map[string]V) []V {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]V, 0, len(m))
	for _, k := range keys {
		vals = append(vals, m[k])
	}
	return vals
}

// Stats aggregates daemon activity for experiments and the control
// interface.
type Stats struct {
	Samples             int64 // sampler plugin invocations
	SampleErrors        int64
	SampleTime          time.Duration // cumulative plugin execution time
	Lookups             int64
	Updates             int64 // data pulls that completed
	UpdatesFresh        int64 // pulls with new consistent data
	UpdatesStale        int64 // pulls skipped: DGN unchanged
	UpdatesInconsistent int64
	UpdateErrors        int64
	UpdatesSkippedBusy  int64 // passes skipped because the previous one was in flight
	ReducedPublishes    int64 // reduced-set updates published by in-flight reduction
	StoredRows          int64
	DroppedRows         int64 // rows lost to store-queue overflow or failed policies
}

// Stats sums activity over all policies.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	var st Stats
	for _, s := range d.samplers {
		st.Samples += s.samples.Load()
		st.SampleErrors += s.errors.Load()
		st.SampleTime += time.Duration(s.sampleNanos.Load())
	}
	for _, u := range d.updtrs {
		st.Lookups += u.lookups.Load()
		st.Updates += u.updates.Load()
		st.UpdatesFresh += u.fresh.Load()
		st.UpdatesStale += u.stale.Load()
		st.UpdatesInconsistent += u.inconsistent.Load()
		st.UpdateErrors += u.errors.Load()
		st.UpdatesSkippedBusy += u.skippedBusy.Load()
		if _, _, rst, enabled := u.ReduceStatus(); enabled {
			st.ReducedPublishes += int64(rst.Published)
		}
	}
	for _, sp := range d.strgps {
		st.StoredRows += sp.rows.Load()
		st.DroppedRows += sp.dropped.Load()
	}
	return st
}
