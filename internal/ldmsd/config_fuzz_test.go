package ldmsd

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// documentedCommands is one example of every command in the Exec doc
// comment — the fuzz seed corpus, and a guard that the parser accepts
// the whole documented surface.
var documentedCommands = []string{
	"load name=meminfo",
	"config name=meminfo instance=n1/meminfo component_id=7 with_units=1",
	"start name=meminfo interval=1000000 offset=0 synchronous=1",
	"start name=meminfo interval=1s offset=20ms",
	"stop name=meminfo",
	"oneshot name=meminfo",
	"listen xprt=sock addr=127.0.0.1:10444",
	"http_listen addr=127.0.0.1:8080 window=10m points=1024 pprof=1",
	"prdcr_add name=n1 xprt=sock host=127.0.0.1:10444 interval=1000000 standby=1",
	"prdcr_start name=n1",
	"prdcr_stop name=n1",
	"prdcr_activate name=n1",
	"prdcr_deactivate name=n1",
	"prdcr_status",
	"updtr_add name=u1 interval=1s offset=0 synchronous=1 concurrency=4 batch=32",
	"updtr_prdcr_add name=u1 prdcr=n1",
	"updtr_prdcr_del name=u1 prdcr=n1",
	"updtr_match_add name=u1 match=meminfo",
	"updtr_start name=u1",
	"updtr_stop name=u1",
	"updtr_status",
	"strgp_add name=s1 plugin=store_csv schema=meminfo container=/tmp/out.csv queue=1024 batch=64 flush_interval=1s overflow=drop-oldest",
	"strgp_metric_add name=s1 metric=MemFree,MemTotal",
	"strgp_start name=s1",
	"strgp_status",
	"dir",
	"ls name=n1/meminfo",
	"stats",
	"usage",
	"events n=16 severity=warn component=producer subject=n1",
	"latency",
}

// TestParseCommandDocumentedCorpus pins the seed corpus: every
// documented command parses, keeps its command word, and round-trips
// its arguments.
func TestParseCommandDocumentedCorpus(t *testing.T) {
	for _, line := range documentedCommands {
		cmd, args, err := parseCommand(line)
		if err != nil {
			t.Errorf("parseCommand(%q): %v", line, err)
			continue
		}
		if cmd != strings.Fields(line)[0] {
			t.Errorf("parseCommand(%q) cmd = %q", line, cmd)
		}
		for k, v := range args {
			if !strings.Contains(line, k+"="+v) {
				t.Errorf("parseCommand(%q): arg %q=%q not from input", line, k, v)
			}
		}
	}
}

// FuzzParseCommand fuzzes the runtime config-command parser and the
// interval grammar it feeds. The parser is pure (no daemon state, no
// I/O), so the fuzz target checks structural invariants rather than
// behaviour: no panics, command words echo the input, keys are
// non-empty and '='-free, and accepted argument text round-trips.
func FuzzParseCommand(f *testing.F) {
	for _, line := range documentedCommands {
		f.Add(line)
	}
	// Hostile shapes: empty, whitespace soup, bare '=', repeated keys,
	// huge fields, invalid UTF-8, embedded NULs and newlines.
	f.Add("")
	f.Add("   \t  ")
	f.Add("cmd =")
	f.Add("cmd =v")
	f.Add("cmd k=")
	f.Add("cmd k==v=")
	f.Add("cmd k=v k=w")
	f.Add("cmd " + strings.Repeat("k=v ", 512))
	f.Add("cmd k=\xff\xfe")
	f.Add("cmd\x00k=v")
	f.Add("cmd k=v\nprdcr_add name=evil")
	f.Add("start name=s interval=9223372036854775807")
	f.Add("start name=s interval=-1us")
	f.Add("start name=s interval=999999h999m")

	f.Fuzz(func(t *testing.T, line string) {
		cmd, args, err := parseCommand(line)
		if err != nil {
			return // rejected input carries no further guarantees
		}
		if strings.TrimSpace(line) == "" {
			if cmd != "" || len(args) != 0 {
				t.Fatalf("blank line parsed to %q %v", cmd, args)
			}
			return
		}
		if strings.ContainsAny(cmd, " \t\n\v\f\r") {
			t.Fatalf("command word %q contains whitespace", cmd)
		}
		if cmd != strings.Fields(line)[0] {
			t.Fatalf("command word %q does not match input %q", cmd, line)
		}
		for k, v := range args {
			if k == "" {
				t.Fatalf("empty argument key in %q", line)
			}
			if strings.Contains(k, "=") {
				t.Fatalf("argument key %q contains '='", k)
			}
			if utf8.ValidString(line) && !strings.Contains(line, k+"="+v) {
				t.Fatalf("argument %s=%s does not round-trip from %q", k, v, line)
			}
			// Feed the interval grammar exactly where Exec would.
			switch k {
			case "interval", "offset", "flush_interval", "window":
				if d, err := parseInterval(v); err == nil && d < 0 {
					// Negative intervals parse (Go durations allow them);
					// they must at least not wrap into a huge positive.
					if -d < 0 {
						t.Fatalf("parseInterval(%q) overflowed: %v", v, d)
					}
				}
			}
		}
	})
}
