package ldmsd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/metric"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// Updater pulls metric-set data from a group of producers on its own
// schedule. Distinct metric sets can be collected at different frequencies
// by defining multiple updaters with different match filters (which should
// be disjoint). Unlike samplers, an updater's schedule cannot be altered
// once started without restarting it (paper §IV-A).
//
// The updater owns all per-set pull state. Only one update pass runs at a
// time; a firing that arrives while the previous pass is still in flight is
// skipped and the sets are retried at the next interval, matching the
// paper's "bypasses and later retries non-reporting hosts".
type Updater struct {
	d        *Daemon
	name     string
	interval time.Duration
	offset   time.Duration
	synced   bool
	timeout  time.Duration

	mu        sync.Mutex
	producers []string
	matchFn   func(instance string) bool
	task      *sched.Task
	started   bool

	busy  atomic.Bool
	state map[string]*updProducerState // owned by the single running pass

	lookups      atomic.Int64
	updates      atomic.Int64
	fresh        atomic.Int64
	stale        atomic.Int64
	inconsistent atomic.Int64
	errors       atomic.Int64
	skippedBusy  atomic.Int64
}

// updProducerState is the updater's pull state for one producer connection
// epoch.
type updProducerState struct {
	epoch uint64
	sets  map[string]*updSet
}

// updSet is the pull state for one remote metric set.
type updSet struct {
	name    string
	remote  transport.RemoteSet
	mirror  *metric.Set
	buf     []byte
	lastDGN uint64
	haveDGN bool
	inReg   bool
}

// AddUpdater registers an update policy.
func (d *Daemon) AddUpdater(name string, interval, offset time.Duration, synchronous bool) (*Updater, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("ldmsd %s: updater %q: interval must be positive", d.name, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.updtrs[name]; dup {
		return nil, fmt.Errorf("ldmsd %s: updater %q already exists", d.name, name)
	}
	u := &Updater{
		d:        d,
		name:     name,
		interval: interval,
		offset:   offset,
		synced:   synchronous,
		timeout:  interval,
		state:    make(map[string]*updProducerState),
	}
	d.updtrs[name] = u
	return u, nil
}

// Updater returns the named updater, or nil.
func (d *Daemon) Updater(name string) *Updater {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.updtrs[name]
}

// AddProducer attaches a producer (by name) to the updater's pull group.
func (u *Updater) AddProducer(prdcrName string) error {
	if u.d.Producer(prdcrName) == nil {
		return fmt.Errorf("ldmsd %s: updater %s: unknown producer %q", u.d.name, u.name, prdcrName)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.producers = append(u.producers, prdcrName)
	return nil
}

// SetMatch restricts the updater to set instances for which match returns
// true (nil matches everything).
func (u *Updater) SetMatch(match func(instance string) bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.matchFn = match
}

// Start arms the update schedule. The schedule is fixed once started.
func (u *Updater) Start() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.started {
		return fmt.Errorf("ldmsd %s: updater %s already started; aggregation schedules cannot be altered once set", u.d.name, u.name)
	}
	u.started = true
	u.task = u.d.sch.Every(u.interval, u.offset, u.synced, u.run)
	return nil
}

// Stop cancels the schedule. A stopped updater can be restarted.
func (u *Updater) Stop() {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.task != nil {
		u.task.Cancel()
		u.task = nil
	}
	u.started = false
}

// run is one scheduled update pass over all matched producers.
func (u *Updater) run(now time.Time) {
	if !u.busy.CompareAndSwap(false, true) {
		u.skippedBusy.Add(1)
		return
	}
	defer u.busy.Store(false)

	u.mu.Lock()
	prdcrs := append([]string(nil), u.producers...)
	match := u.matchFn
	u.mu.Unlock()

	for _, name := range prdcrs {
		p := u.d.Producer(name)
		if p == nil {
			continue
		}
		conn, names, epoch, ok := p.snapshot()
		if !ok {
			continue
		}
		if len(names) == 0 {
			// The target had no sets when we connected (e.g. an aggregator
			// whose own lookups had not completed). Refresh the directory.
			ctx, cancel := u.ctx()
			fresh, err := conn.Dir(ctx)
			cancel()
			if err != nil {
				p.disconnected(epoch)
				continue
			}
			names = fresh
			p.updateDir(epoch, fresh)
		}
		ps := u.state[name]
		if ps == nil || ps.epoch != epoch {
			// New connection epoch: connection-scoped lookup handles are
			// void. Mirrors are reused on re-lookup when metadata matches.
			old := ps
			ps = &updProducerState{epoch: epoch, sets: make(map[string]*updSet)}
			for _, sn := range names {
				us := &updSet{name: sn}
				if old != nil {
					if prev, okp := old.sets[sn]; okp {
						us.mirror = prev.mirror
						us.buf = prev.buf
						us.inReg = prev.inReg
					}
				}
				ps.sets[sn] = us
			}
			u.state[name] = ps
		}
		failed := false
		for _, sn := range names {
			us := ps.sets[sn]
			if us == nil {
				us = &updSet{name: sn}
				ps.sets[sn] = us
			}
			if match != nil && !match(sn) {
				continue
			}
			if us.remote == nil {
				if !u.lookupSet(conn, us) {
					failed = true
					break
				}
				// Data update happens on the next pass (paper Fig. 2 flow).
				continue
			}
			if !u.updateSet(us, now) {
				failed = true
				break
			}
		}
		if failed {
			p.disconnected(epoch)
		}
	}
}

// ctx returns the deadline context for one transport operation.
func (u *Updater) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), u.timeout)
}

// lookupSet performs the one-time metadata fetch and mirror creation for a
// set. It reports false on a connection-level failure.
func (u *Updater) lookupSet(conn transport.Conn, us *updSet) bool {
	ctx, cancel := u.ctx()
	defer cancel()
	remote, err := conn.Lookup(ctx, us.name)
	if err != nil {
		u.errors.Add(1)
		if err == transport.ErrNoSuchSet {
			return true // set went away; not a connection failure
		}
		return false
	}
	u.lookups.Add(1)

	// Reuse the existing mirror when the metadata generation still
	// matches; otherwise build a fresh one.
	if us.mirror == nil || us.mirror.MGN() != remote.Meta().MGN {
		if us.mirror != nil && us.inReg {
			u.d.reg.Remove(us.name)
			us.mirror.Delete()
			us.inReg = false
		}
		mirror, err := remote.Meta().NewMirror(metric.WithArena(u.d.arena))
		if err != nil {
			// Arena exhaustion or malformed metadata: count and retry on a
			// later pass.
			u.errors.Add(1)
			return true
		}
		us.mirror = mirror
		us.buf = make([]byte, remote.Meta().DataSize)
		us.haveDGN = false
		if err := u.d.reg.Add(mirror); err == nil {
			us.inReg = true
		}
	}
	us.remote = remote
	return true
}

// updateSet pulls one set's data chunk and, when it is fresh and
// consistent, hands it to storage. It reports false on a connection-level
// failure.
func (u *Updater) updateSet(us *updSet, now time.Time) bool {
	ctx, cancel := u.ctx()
	defer cancel()
	n, err := us.remote.Update(ctx, us.buf)
	if err != nil {
		u.errors.Add(1)
		return false
	}
	u.updates.Add(1)
	if err := us.mirror.LoadData(us.buf[:n]); err != nil {
		// Metadata generation changed: schedule a fresh lookup.
		us.remote = nil
		u.errors.Add(1)
		return true
	}
	// "Collection of a metric set whose data has not been updated or is
	// incomplete does not result in a write to storage."
	if !us.mirror.Consistent() {
		u.inconsistent.Add(1)
		return true
	}
	dgn := us.mirror.DGN()
	if us.haveDGN && dgn == us.lastDGN {
		u.stale.Add(1)
		return true
	}
	us.lastDGN = dgn
	us.haveDGN = true
	u.fresh.Add(1)
	u.d.storeSet(us.mirror)
	return true
}
