package ldmsd

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/metric"
	"goldms/internal/obs"
	"goldms/internal/sched"
	"goldms/internal/tier"
	"goldms/internal/transport"
)

// Updater pulls metric-set data from a group of producers on its own
// schedule. Distinct metric sets can be collected at different frequencies
// by defining multiple updaters with different match filters (which should
// be disjoint). Unlike samplers, an updater's schedule cannot be altered
// once started without restarting it (paper §IV-A).
//
// The updater owns all per-set pull state. Only one update pass runs at a
// time; a firing that arrives while the previous pass is still in flight is
// skipped and the sets are retried at the next interval, matching the
// paper's "bypasses and later retries non-reporting hosts".
//
// Within a pass, producers are pulled concurrently on the daemon's update
// pool (real-clock mode only; virtual-time runs stay sequential so
// simulated experiments remain exactly ordered), and each producer's due
// sets are pipelined in transport-level batches. Per-producer pull state
// stays single-owner: one goroutine per producer per pass, with the state
// map itself guarded separately.
type Updater struct {
	d        *Daemon
	name     string
	interval time.Duration
	offset   time.Duration
	synced   bool
	timeout  time.Duration

	mu          sync.Mutex
	producers   []string
	matchFn     func(instance string) bool
	task        *sched.Task
	started     bool
	concurrency int // max producers pulled in parallel; 0 = pool-bound, 1 = sequential
	batch       int // update requests pipelined per transport batch

	busy atomic.Bool

	// reducer, when non-nil, folds this updater's mirrors into synthetic
	// reduced sets each pass (tiered aggregation's in-flight reduction).
	// exportRaw controls whether raw mirrors still register in the daemon
	// directory: false means upstream tiers see only the reduced sets.
	// Both are fixed before Start and never mutated while running.
	reducer   *tier.Reducer
	exportRaw bool

	// smu guards the state map's structure. Each value is owned by the
	// single goroutine pulling that producer during a pass.
	smu   sync.Mutex
	state map[string]*updProducerState

	// hmu guards health: per-producer pull health for updtr_status and the
	// query gateway's /healthz (paper §IV-B's manual-failover model leaves
	// failure detection to external watchdogs, which poll exactly this).
	hmu    sync.Mutex
	health map[string]*prdcrPullHealth

	lookups      atomic.Int64
	updates      atomic.Int64
	fresh        atomic.Int64
	stale        atomic.Int64
	inconsistent atomic.Int64
	errors       atomic.Int64
	skippedBusy  atomic.Int64

	passes        atomic.Int64
	inflight      atomic.Int64 // producer pulls currently in flight
	lastPassNanos atomic.Int64 // scheduler-clock duration of the last completed pass (0 under a virtual clock)
}

// defaultUpdateBatch is how many update requests an updater pipelines per
// transport batch unless configured otherwise.
const defaultUpdateBatch = 32

// updProducerState is the updater's pull state for one producer connection
// epoch.
type updProducerState struct {
	epoch uint64
	sets  map[string]*updSet
	// Directory-generation tracking: the remote registry's generation as of
	// the last full Dir fetch. When the transport supports the DirGen poll,
	// each pass re-fetches the directory only when this moved, so set joins
	// and leaves propagate one pull interval per hop at O(1) steady cost.
	dirGen  uint64
	haveGen bool
	// Scratch reused across passes by this producer's pull goroutine.
	due []*updSet
	ops []transport.UpdateOp
}

// prdcrPullHealth is one producer's pull health as seen by this updater.
type prdcrPullHealth struct {
	lastSuccess  time.Time // scheduler time of the last clean pass
	consecErrors int64     // consecutive failed pulls since then
}

// ProducerPullHealth is the exported pull-health snapshot for one producer
// in this updater's group.
type ProducerPullHealth struct {
	Producer     string
	LastSuccess  time.Time // zero until the first clean pass
	ConsecErrors int64
}

// updSet is the pull state for one remote metric set.
type updSet struct {
	name    string // instance name in the remote directory
	regName string // local re-export name: <producer>/<name> for bare names
	remote  transport.RemoteSet
	mirror  *metric.Set
	buf     []byte
	lastDGN uint64
	haveDGN bool
	inReg   bool
	// Delta-update ack state: bufValid means buf holds a byte-accurate copy
	// of the remote data chunk as of generation bufDGN, so the next pull may
	// ask the server for just the changes since then. Cleared on any pull
	// error and on every re-lookup (reconnects, metadata changes), which
	// transparently degrades the next pull to a full chunk.
	bufDGN   uint64
	bufValid bool
	// trace is the producer's hop-chain block from the last pull (recycled
	// capacity; length 0 on legacy peers and errors).
	trace []byte
}

// exportName is the paper's <producer>/<set> re-export convention: a bare
// remote instance name is qualified with the producer it came from, so an
// upstream tier's directory shows each set's origin. Names already
// qualified by a lower tier (they contain "/") pass through unchanged —
// the origin producer survives every hop.
func exportName(producer, set string) string {
	if strings.Contains(set, "/") {
		return set
	}
	return producer + "/" + set
}

// AddUpdater registers an update policy.
func (d *Daemon) AddUpdater(name string, interval, offset time.Duration, synchronous bool) (*Updater, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("ldmsd %s: updater %q: interval must be positive", d.name, name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.updtrs[name]; dup {
		return nil, fmt.Errorf("ldmsd %s: updater %q already exists", d.name, name)
	}
	u := &Updater{
		d:         d,
		name:      name,
		interval:  interval,
		offset:    offset,
		synced:    synchronous,
		timeout:   interval,
		batch:     defaultUpdateBatch,
		exportRaw: true,
		state:     make(map[string]*updProducerState),
		health:    make(map[string]*prdcrPullHealth),
	}
	d.updtrs[name] = u
	return u, nil
}

// Updater returns the named updater, or nil.
func (d *Daemon) Updater(name string) *Updater {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.updtrs[name]
}

// AddProducer attaches a producer (by name) to the updater's pull group.
func (u *Updater) AddProducer(prdcrName string) error {
	if u.d.Producer(prdcrName) == nil {
		return fmt.Errorf("ldmsd %s: updater %s: unknown producer %q", u.d.name, u.name, prdcrName)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.producers = append(u.producers, prdcrName)
	return nil
}

// RemoveProducer detaches a producer from the pull group. Its pull state
// (mirrors, registry entries, arena memory) is released at the end of the
// next update pass.
func (u *Updater) RemoveProducer(prdcrName string) {
	u.mu.Lock()
	for i, n := range u.producers {
		if n == prdcrName {
			u.producers = append(u.producers[:i], u.producers[i+1:]...)
			break
		}
	}
	u.mu.Unlock()
}

// SetMatch restricts the updater to set instances for which match returns
// true (nil matches everything).
func (u *Updater) SetMatch(match func(instance string) bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.matchFn = match
}

// SetConcurrency caps how many producers this updater pulls in parallel
// within one pass: 1 forces sequential pulls, 0 (the default) leaves the
// daemon's update pool as the only bound. Virtual-time daemons always pull
// sequentially regardless.
func (u *Updater) SetConcurrency(n int) {
	u.mu.Lock()
	u.concurrency = n
	u.mu.Unlock()
}

// SetBatch sets how many update requests the updater pipelines per
// transport batch (minimum 1, meaning one blocking round trip per set).
func (u *Updater) SetBatch(n int) {
	if n < 1 {
		n = 1
	}
	u.mu.Lock()
	u.batch = n
	u.mu.Unlock()
}

// SetReduce configures in-flight reduction: each pass, this updater's
// mirrors fold per schema into reduced sets (<daemon>/<schema>_<op>) that
// publish through the daemon directory, storage policies, and query window
// like any local set. exportRaw false additionally hides the raw mirrors
// from the directory, so upstream tiers pull only the aggregates; the local
// window and stores still see full-resolution raw samples. Reduction is
// fixed while the updater runs.
func (u *Updater) SetReduce(ops []tier.Op, exportRaw bool) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.started {
		return fmt.Errorf("ldmsd %s: updater %s: reduction cannot be altered while started", u.d.name, u.name)
	}
	if len(ops) == 0 {
		u.reducer = nil
		u.exportRaw = true
		return nil
	}
	u.reducer = tier.New(tier.Config{
		Daemon:  u.d.name,
		Ops:     ops,
		SetOpts: []metric.Option{metric.WithArena(u.d.arena)},
	})
	u.exportRaw = exportRaw
	return nil
}

// ReduceStatus reports the updater's reduction configuration and counters.
// enabled is false when no reduction is configured.
func (u *Updater) ReduceStatus() (ops string, exportRaw bool, st tier.Stats, enabled bool) {
	u.mu.Lock()
	r, raw := u.reducer, u.exportRaw
	u.mu.Unlock()
	if r == nil {
		return "", true, tier.Stats{}, false
	}
	return tier.OpsString(r.Ops()), raw, r.Stats(), true
}

// MirroredSets counts the producer's sets this updater currently mirrors
// locally (lookup completed, mirror allocated).
func (u *Updater) MirroredSets(prdcrName string) int {
	u.smu.Lock()
	defer u.smu.Unlock()
	ps := u.state[prdcrName]
	if ps == nil {
		return 0
	}
	n := 0
	for _, us := range ps.sets {
		if us.mirror != nil {
			n++
		}
	}
	return n
}

// Start arms the update schedule. The schedule is fixed once started.
func (u *Updater) Start() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.started {
		return fmt.Errorf("ldmsd %s: updater %s already started; aggregation schedules cannot be altered once set", u.d.name, u.name)
	}
	u.started = true
	u.task = u.d.sch.Every(u.interval, u.offset, u.synced, u.run)
	return nil
}

// Stop cancels the schedule. A stopped updater can be restarted.
func (u *Updater) Stop() {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.task != nil {
		u.task.Cancel()
		u.task = nil
	}
	u.started = false
}

// run is one scheduled update pass over all matched producers.
func (u *Updater) run(now time.Time) {
	if !u.busy.CompareAndSwap(false, true) {
		u.skippedBusy.Add(1)
		u.d.journal.Append(obs.SevWarn, obs.CompUpdater, u.name, 0,
			"update pass skipped: previous pass still in flight")
		return
	}
	defer u.busy.Store(false)
	start := u.d.sch.Now()

	u.mu.Lock()
	prdcrs := append([]string(nil), u.producers...)
	match := u.matchFn
	conc := u.concurrency
	u.mu.Unlock()

	pool := u.d.updatePool()
	if pool == nil || conc == 1 || len(prdcrs) < 2 {
		for _, name := range prdcrs {
			u.pullProducer(name, match, now)
		}
	} else {
		if conc <= 0 || conc > len(prdcrs) {
			conc = len(prdcrs)
		}
		sem := make(chan struct{}, conc)
		var wg sync.WaitGroup
		for _, name := range prdcrs {
			name := name
			sem <- struct{}{}
			wg.Add(1)
			job := func() {
				defer func() { <-sem; wg.Done() }()
				u.pullProducer(name, match, now)
			}
			if !pool.Submit(job) {
				// Pool stopped (daemon shutting down): finish inline.
				job()
			}
		}
		wg.Wait()
	}

	u.prune(prdcrs)
	if u.reducer != nil {
		// Fold after every producer's pulls landed, so each reduced set
		// reflects one coherent pass over the group. The reduce hop records
		// each output's age: newest contributing member sample → publish.
		nowT := u.d.sch.Now()
		for _, f := range u.reducer.Fold() {
			u.d.lat.Reduce.Record(nowT.Sub(f.Time))
			// The folded set inherits its newest member's hop chain, with
			// the reduce stage stamped at publish time.
			u.d.trace.reduced(f.Set.Name(), f.Newest, f.Time, nowT)
			u.d.storeSet(f.Set)
		}
	}
	u.passes.Add(1)
	u.lastPassNanos.Store(u.d.sch.Now().Sub(start).Nanoseconds())
}

// pullProducer runs one producer's share of an update pass: directory
// refresh if needed, lookups for new sets, then pipelined data pulls.
func (u *Updater) pullProducer(name string, match func(string) bool, now time.Time) {
	u.inflight.Add(1)
	defer u.inflight.Add(-1)

	p := u.d.Producer(name)
	if p == nil {
		return
	}
	conn, names, epoch, ok := p.snapshot()
	if !ok {
		return
	}
	if len(names) == 0 {
		// The target had no sets when we connected (e.g. an aggregator
		// whose own lookups had not completed). Refresh the directory.
		ctx, cancel := u.ctx()
		fresh, err := conn.Dir(ctx)
		cancel()
		if err != nil {
			p.disconnected(epoch)
			u.recordHealth(name, false)
			return
		}
		names = fresh
		p.updateDir(epoch, fresh)
	}

	ps := u.producerState(name, epoch, names)
	if fresh, changed, ok := u.refreshDir(conn, p, ps, epoch); !ok {
		u.recordHealth(name, false)
		return
	} else if changed {
		names = fresh
	}
	failed := false
	looked := 0
	due := ps.due[:0]
	for _, sn := range names {
		us := ps.sets[sn]
		if us == nil {
			us = &updSet{name: sn, regName: exportName(name, sn)}
			ps.sets[sn] = us
		}
		if match != nil && !match(sn) {
			continue
		}
		if us.remote == nil {
			if !u.lookupSet(conn, us) {
				failed = true
				break
			}
			if us.remote != nil {
				looked++
			}
			// Data update happens on the next pass (paper Fig. 2 flow).
			continue
		}
		due = append(due, us)
	}
	ps.due = due
	if looked > 0 {
		// One aggregate event per producer pass: per-set events would flush
		// the whole journal ring on a large initial directory.
		u.d.journal.Appendf(obs.SevInfo, obs.CompUpdater, name, epoch,
			"%s looked up %d sets", u.name, looked)
	}

	batch := u.batchSize()
	for lo := 0; lo < len(due) && !failed; lo += batch {
		hi := min(lo+batch, len(due))
		ops := ps.ops[:0]
		for _, us := range due[lo:hi] {
			// Carrying the acknowledged DGN lets a delta-capable transport
			// ship only the metrics that changed since the chunk already in
			// buf; transports (or peers) without the capability ignore it.
			ops = append(ops, transport.UpdateOp{
				Set: us.remote, Dst: us.buf,
				AckDGN: us.bufDGN, HaveAck: us.bufValid,
				Trace: us.trace[:0],
			})
		}
		ps.ops = ops
		ctx, cancel := u.ctx()
		transport.UpdateAll(ctx, conn, ops)
		cancel()
		for i, us := range due[lo:hi] {
			us.trace = ops[i].Trace
			if !u.finishUpdate(us, ops[i].N, ops[i].Err) {
				failed = true
				break
			}
		}
	}
	if failed {
		p.disconnected(epoch)
	}
	u.recordHealth(name, !failed)
}

// refreshDir re-fetches the producer's directory when its registry
// generation moved (or has never been observed). It reports the fresh name
// list when a refresh ran, whether names changed, and ok=false on a
// connection-level failure. Transports without DirGen support keep the
// connect-time directory, as before.
func (u *Updater) refreshDir(conn transport.Conn, p *Producer, ps *updProducerState, epoch uint64) (names []string, changed, ok bool) {
	ctx, cancel := u.ctx()
	gen, supported, err := transport.DirGenOf(ctx, conn)
	cancel()
	if err != nil {
		p.disconnected(epoch)
		return nil, false, false
	}
	if !supported || (ps.haveGen && gen == ps.dirGen) {
		return nil, false, true
	}
	// Generation read precedes the Dir fetch: a membership change landing
	// between the two is already in the fetched directory and triggers one
	// redundant (harmless) refresh next pass.
	ctx, cancel = u.ctx()
	fresh, err := conn.Dir(ctx)
	cancel()
	if err != nil {
		p.disconnected(epoch)
		return nil, false, false
	}
	p.updateDir(epoch, fresh)
	u.syncSets(ps, fresh)
	ps.dirGen, ps.haveGen = gen, true
	return fresh, true, true
}

// syncSets releases pull state for sets that vanished from the refreshed
// directory (the leave half of join/leave propagation; joins are picked up
// by the pull loop creating state for unseen names).
func (u *Updater) syncSets(ps *updProducerState, names []string) {
	if len(ps.sets) == 0 {
		return
	}
	seen := make(map[string]struct{}, len(names))
	for _, sn := range names {
		seen[sn] = struct{}{}
	}
	for sn, us := range ps.sets {
		if _, ok := seen[sn]; !ok {
			u.releaseSet(us)
			delete(ps.sets, sn)
		}
	}
}

// recordHealth updates one producer's pull-health record at the end of its
// share of a pass: a clean pull stamps the scheduler time and clears the
// error streak, a failed one extends the streak.
func (u *Updater) recordHealth(name string, ok bool) {
	u.hmu.Lock()
	h := u.health[name]
	if h == nil {
		h = &prdcrPullHealth{}
		u.health[name] = h
	}
	if ok {
		h.lastSuccess = u.d.sch.Now()
		h.consecErrors = 0
	} else {
		h.consecErrors++
	}
	u.hmu.Unlock()
}

// PullHealth snapshots per-producer pull health, sorted by producer name.
// Producers that have never completed a pull (e.g. still connecting) carry
// a zero LastSuccess.
func (u *Updater) PullHealth() []ProducerPullHealth {
	u.mu.Lock()
	prdcrs := append([]string(nil), u.producers...)
	u.mu.Unlock()
	sort.Strings(prdcrs)
	out := make([]ProducerPullHealth, 0, len(prdcrs))
	u.hmu.Lock()
	for _, name := range prdcrs {
		ph := ProducerPullHealth{Producer: name}
		if h := u.health[name]; h != nil {
			ph.LastSuccess = h.lastSuccess
			ph.ConsecErrors = h.consecErrors
		}
		out = append(out, ph)
	}
	u.hmu.Unlock()
	return out
}

// Interval returns the updater's pull interval.
func (u *Updater) Interval() time.Duration { return u.interval }

// producerState returns the pull state for one producer connection epoch,
// building a fresh one (reusing mirrors where possible) when the epoch
// advanced. Sets that existed under the old epoch but vanished from the
// directory are released.
func (u *Updater) producerState(name string, epoch uint64, names []string) *updProducerState {
	u.smu.Lock()
	ps := u.state[name]
	if ps != nil && ps.epoch == epoch {
		u.smu.Unlock()
		return ps
	}
	// New connection epoch: connection-scoped lookup handles are void.
	// Mirrors are reused on re-lookup when metadata matches.
	old := ps
	ps = &updProducerState{epoch: epoch, sets: make(map[string]*updSet)}
	for _, sn := range names {
		us := &updSet{name: sn, regName: exportName(name, sn)}
		if old != nil {
			if prev, okp := old.sets[sn]; okp {
				us.mirror = prev.mirror
				us.buf = prev.buf
				us.inReg = prev.inReg
				// bufValid is deliberately NOT carried across epochs: the
				// peer may have restarted with rebuilt generation counters,
				// so the first pull after a reconnect is always a full chunk.
				delete(old.sets, sn)
			}
		}
		ps.sets[sn] = us
	}
	u.state[name] = ps
	u.smu.Unlock()
	if old != nil {
		// Whatever was not carried over is gone from the directory.
		for _, prev := range old.sets {
			u.releaseSet(prev)
		}
	}
	return ps
}

// prune drops pull state for producers that left the updater's group or
// were removed from the daemon, releasing their mirrors, registry entries,
// and arena memory. It runs at the end of each pass, after every producer
// goroutine has finished.
func (u *Updater) prune(current []string) {
	live := make(map[string]bool, len(current))
	for _, n := range current {
		if u.d.Producer(n) != nil {
			live[n] = true
		}
	}
	u.smu.Lock()
	var victims []*updProducerState
	for name, ps := range u.state {
		if !live[name] {
			victims = append(victims, ps)
			delete(u.state, name)
		}
	}
	u.smu.Unlock()
	for _, ps := range victims {
		for _, us := range ps.sets {
			u.releaseSet(us)
		}
	}
	u.hmu.Lock()
	for name := range u.health {
		if !live[name] {
			delete(u.health, name)
		}
	}
	u.hmu.Unlock()
}

// releaseSet drops one set's mirror: out of the reducer's fold group, out
// of the daemon registry, its arena chunks freed.
func (u *Updater) releaseSet(us *updSet) {
	if us.mirror != nil {
		if u.reducer != nil {
			u.retireReduced(u.reducer.RemoveMember(us.regName))
		}
		if us.inReg {
			u.d.reg.Remove(us.regName)
			us.inReg = false
		}
		u.d.trace.drop(us.regName)
		us.mirror.Delete()
		us.mirror = nil
	}
	us.remote = nil
	us.buf = nil
	us.trace = nil
}

// retireReduced deregisters and releases reduced sets whose last member
// left (the tail half of a schema's group disappearing from this tier).
func (u *Updater) retireReduced(sets []*metric.Set) {
	for _, rs := range sets {
		u.d.reg.Remove(rs.Name())
		u.d.trace.drop(rs.Name())
		rs.Delete()
	}
}

// batchSize returns the configured pipeline batch size (>= 1).
func (u *Updater) batchSize() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.batch < 1 {
		return 1
	}
	return u.batch
}

// ctx returns the deadline context for one transport operation (or one
// pipelined batch of them).
func (u *Updater) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), u.timeout)
}

// lookupSet performs the one-time metadata fetch and mirror creation for a
// set. It reports false on a connection-level failure.
func (u *Updater) lookupSet(conn transport.Conn, us *updSet) bool {
	ctx, cancel := u.ctx()
	defer cancel()
	remote, err := conn.Lookup(ctx, us.name)
	if err != nil {
		u.errors.Add(1)
		if err == transport.ErrNoSuchSet {
			return true // set went away; not a connection failure
		}
		return false
	}
	u.lookups.Add(1)

	// Reuse the existing mirror when the metadata generation still
	// matches; otherwise build a fresh one.
	if us.mirror == nil || us.mirror.MGN() != remote.Meta().MGN {
		if us.mirror != nil {
			if u.reducer != nil {
				u.retireReduced(u.reducer.RemoveMember(us.regName))
			}
			if us.inReg {
				u.d.reg.Remove(us.regName)
				us.inReg = false
			}
			us.mirror.Delete()
		}
		// The mirror takes the local re-export name: the remote MGN/DGN
		// still propagate verbatim through LoadData, so staleness and
		// torn-read detection survive the hop under the qualified name.
		mirror, err := remote.Meta().NewMirrorNamed(us.regName, metric.WithArena(u.d.arena))
		if err != nil {
			// Arena exhaustion or malformed metadata: count and retry on a
			// later pass.
			us.mirror = nil
			u.errors.Add(1)
			return true
		}
		us.mirror = mirror
		us.buf = make([]byte, remote.Meta().DataSize)
		us.haveDGN = false
		if u.reducer != nil {
			created, rerr := u.reducer.AddMember(us.regName, mirror)
			if rerr != nil {
				u.d.journal.Appendf(obs.SevWarn, obs.CompUpdater, us.regName, 0,
					"%s: set excluded from reduction: %v", u.name, rerr)
			}
			for _, rs := range created {
				if err := u.d.reg.Add(rs); err != nil {
					u.d.journal.Appendf(obs.SevWarn, obs.CompUpdater, rs.Name(), 0,
						"%s: reduced set not exported: %v", u.name, err)
				}
			}
		}
	}
	us.remote = remote
	// A fresh lookup means the connection or the set changed under us (new
	// epoch, recreated set, metadata bump). Whatever buf held is no longer a
	// trusted delta base; the first pull on the new handle moves the full
	// chunk and re-arms delta from there.
	us.bufValid = false
	// Registration retries on every lookup (not just mirror creation): a
	// name squatted by another producer's mirror — e.g. the failed half of
	// a failover pair — may have been released since.
	if u.exportRaw && !us.inReg && us.mirror != nil {
		if err := u.d.reg.Add(us.mirror); err == nil {
			us.inReg = true
		}
	}
	return true
}

// finishUpdate applies one completed data pull: fresh consistent data goes
// to storage, stale or torn samples are counted and skipped. It reports
// false on a connection-level failure. This is the pull inner loop, run
// once per set per pass.
//
//ldms:hotpath
func (u *Updater) finishUpdate(us *updSet, n int, err error) bool {
	if err != nil {
		us.bufValid = false
		u.errors.Add(1)
		return false
	}
	u.updates.Add(1)
	if err := us.mirror.LoadData(us.buf[:n]); err != nil {
		// Metadata generation changed: schedule a fresh lookup. The chunk in
		// buf belongs to the new layout, so it is not a usable delta base.
		us.remote = nil
		us.bufValid = false
		u.errors.Add(1)
		return true
	}
	dgn := us.mirror.DGN()
	// buf now holds a truthful remote snapshot at dgn — even a torn or stale
	// one is a byte-accurate base for the next delta request.
	us.bufDGN, us.bufValid = dgn, true
	// "Collection of a metric set whose data has not been updated or is
	// incomplete does not result in a write to storage."
	if !us.mirror.Consistent() {
		u.inconsistent.Add(1)
		return true
	}
	if us.haveDGN && dgn == us.lastDGN {
		u.stale.Add(1)
		return true
	}
	us.lastDGN = dgn
	us.haveDGN = true
	u.fresh.Add(1)
	// Pull-hop latency: sample age (transaction-end stamp in the raw pull
	// buffer vs scheduler now) at the moment the mirror went consistent.
	// DataTimestamp reads the header straight off the single-owner buffer,
	// so the hot path stays one timestamp read + one atomic increment.
	if ts := metric.DataTimestamp(us.buf); !ts.IsZero() {
		now := u.d.sch.Now()
		u.d.lat.Pull.Record(now.Sub(ts))
		// Install the sample's hop chain: the producer's trace block (empty
		// on legacy peers) plus this daemon's pull stamp.
		u.d.trace.pulled(us.regName, us.trace, ts, now)
	}
	// Mark the member fresh so the end-of-pass fold re-reduces its group:
	// one map lookup and a flag, nothing allocated.
	if u.reducer != nil {
		u.reducer.Observe(us.regName)
	}
	// Fan the sample out to the recent window and storage policies. This
	// is a bounded-queue enqueue, never a store write: a slow or syncing
	// backend cannot inflate pull-pass latency (the store pool drains the
	// queues asynchronously).
	u.d.storeSet(us.mirror)
	return true
}
