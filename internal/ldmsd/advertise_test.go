package ldmsd

import (
	"testing"
	"time"

	"goldms/internal/procfs"
	"goldms/internal/transport"
)

// TestReversedProducerFlow wires the §IV-B asymmetric-access topology over
// real TCP: the sampler dials the aggregator (advertise), and the
// aggregator pulls over the incoming connection via a passive producer.
func TestReversedProducerFlow(t *testing.T) {
	// Aggregator with a passive producer, listening for peers.
	agg, err := New(Options{
		Name:       "agg",
		Transports: []transport.Factory{transport.SockFactory{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()
	addr, err := agg.ListenForProducers("sock", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := agg.AddPassiveProducer("n1")
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	u, err := agg.AddUpdater("u", 10*time.Millisecond, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	u.AddProducer("n1")
	if err := u.Start(); err != nil {
		t.Fatal(err)
	}

	// Sampler that cannot accept inbound connections: it advertises out.
	node := procfs.NewNodeState("n1", 2, 1<<20)
	smp, err := New(Options{
		Name: "n1", FS: procfs.NewSimFS(node),
		Transports: []transport.Factory{transport.SockFactory{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer smp.Stop()
	if _, err := smp.ExecScript(`
		load name=meminfo
		start name=meminfo interval=10000
		advertise xprt=sock host=` + addr + ` interval=100000`); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if agg.Stats().UpdatesFresh >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if agg.Stats().UpdatesFresh < 3 {
		t.Fatalf("no data over reversed connection: %+v", agg.Stats())
	}
	if p.State() != ProducerConnected {
		t.Errorf("passive producer state = %v", p.State())
	}
	mir := agg.Registry().Get("n1/meminfo")
	if mir == nil {
		t.Fatal("mirror missing on aggregator")
	}
	if i, ok := mir.MetricIndex("MemTotal"); !ok || mir.U64(i) != 1<<20 {
		t.Error("mirrored value wrong over reversed connection")
	}
}

// TestUnknownPeerRejected ensures a peer with no pre-registered passive
// producer is dropped.
func TestUnknownPeerRejected(t *testing.T) {
	agg, err := New(Options{
		Name:       "agg",
		Transports: []transport.Factory{transport.SockFactory{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()
	addr, err := agg.ListenForProducers("sock", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	node := procfs.NewNodeState("ghost", 2, 1<<20)
	smp, err := New(Options{
		Name: "ghost", FS: procfs.NewSimFS(node),
		Transports: []transport.Factory{transport.SockFactory{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer smp.Stop()
	a, err := smp.Advertise("sock", addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	// The dial itself succeeds but the aggregator closes it; the
	// advertiser's health check notices and redials, never staying up.
	time.Sleep(300 * time.Millisecond)
	if agg.Stats().Updates != 0 {
		t.Error("unknown peer was pulled")
	}
}

// TestAdvertiseReconnects verifies the advertiser redials after the
// aggregator restarts.
func TestAdvertiseReconnects(t *testing.T) {
	mk := func(addr string) (*Daemon, string) {
		agg, err := New(Options{
			Name:       "agg",
			Transports: []transport.Factory{transport.SockFactory{}},
		})
		if err != nil {
			t.Fatal(err)
		}
		bound, err := agg.ListenForProducers("sock", addr)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := agg.AddPassiveProducer("n1")
		p.Start()
		u, _ := agg.AddUpdater("u", 10*time.Millisecond, 0, false)
		u.AddProducer("n1")
		u.Start()
		return agg, bound
	}
	agg1, addr := mk("127.0.0.1:0")

	node := procfs.NewNodeState("n1", 2, 1<<20)
	smp, err := New(Options{
		Name: "n1", FS: procfs.NewSimFS(node),
		Transports: []transport.Factory{transport.SockFactory{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer smp.Stop()
	smp.ExecScript("load name=meminfo\nstart name=meminfo interval=10000")
	a, err := smp.Advertise("sock", addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()

	waitFresh := func(agg *Daemon) bool {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if agg.Stats().UpdatesFresh >= 2 {
				return true
			}
			time.Sleep(10 * time.Millisecond)
		}
		return false
	}
	if !waitFresh(agg1) {
		t.Fatal("no data before restart")
	}

	// Aggregator restarts on the same address.
	agg1.Stop()
	agg2, _ := mk(addr)
	defer agg2.Stop()
	if !waitFresh(agg2) {
		t.Fatal("advertiser did not re-establish after aggregator restart")
	}
	if a.Dials() < 2 {
		t.Errorf("dials = %d, want a reconnect", a.Dials())
	}
}
