package ldmsd

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"goldms/internal/sampler"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// SamplerPolicy runs one sampling plugin on a schedule. The sampling
// frequency is user defined and can be changed on the fly by calling Start
// again with a new interval (paper §IV-A).
type SamplerPolicy struct {
	d      *Daemon
	name   string
	plugin sampler.Plugin
	task   *sched.Task

	interval time.Duration
	offset   time.Duration
	synced   bool

	samples     atomic.Int64
	errors      atomic.Int64
	sampleNanos atomic.Int64
	lastErr     atomic.Value // string
}

// LoadSampler loads and configures a sampling plugin, creating its metric
// set in the daemon's registry. instance defaults to "<daemon>/<plugin>".
func (d *Daemon) LoadSampler(pluginName, instance string, options map[string]string) (*SamplerPolicy, error) {
	return d.loadSamplerComp(pluginName, instance, d.compID, options)
}

// loadSamplerComp is LoadSampler with an explicit component ID (the config
// command path can override the daemon default per plugin).
func (d *Daemon) loadSamplerComp(pluginName, instance string, compID uint64, options map[string]string) (*SamplerPolicy, error) {
	if instance == "" {
		instance = d.name + "/" + pluginName
	}
	d.mu.Lock()
	if _, dup := d.samplers[pluginName]; dup {
		d.mu.Unlock()
		return nil, fmt.Errorf("ldmsd %s: sampler %q already loaded", d.name, pluginName)
	}
	d.mu.Unlock()

	p, err := sampler.New(pluginName, sampler.Config{
		FS:       d.fs,
		Instance: instance,
		CompID:   compID,
		Arena:    d.arena,
		Options:  options,
		Self:     d.selfStats,
	})
	if err != nil {
		return nil, err
	}
	if err := d.reg.Add(p.Set()); err != nil {
		p.Set().Delete()
		return nil, err
	}
	sp := &SamplerPolicy{d: d, name: pluginName, plugin: p}
	d.mu.Lock()
	d.samplers[pluginName] = sp
	d.mu.Unlock()
	return sp, nil
}

// selfStats snapshots the daemon's own operational counters for the
// ldmsd_self plugin: updater and storage-pipeline activity, producer
// transfer totals, journal counts, and Go runtime gauges. The runtime
// gauges are zeroed under a virtual clock — they are inherently
// nondeterministic and would break byte-identical simulation replays.
func (d *Daemon) selfStats() sampler.SelfStats {
	var st sampler.SelfStats
	d.mu.Lock()
	updtrs := mapValues(d.updtrs)
	strgps := mapValues(d.strgps)
	prdcrs := mapValues(d.prdcrs)
	d.mu.Unlock()
	for _, u := range updtrs {
		st.Passes += u.passes.Load()
		st.Updates += u.updates.Load()
		st.Fresh += u.fresh.Load()
		st.Errors += u.errors.Load()
		st.SkippedBusy += u.skippedBusy.Load()
		st.Lookups += u.lookups.Load()
	}
	for _, sp := range strgps {
		c := sp.Counters()
		st.StoreEnqueued += c.Enqueued
		st.StoreDropped += c.Dropped
		st.StoreQueueDepth += int64(c.QueueDepth)
	}
	var conn transport.ConnStats
	for _, p := range prdcrs {
		conn.Add(p.Counters().Transport)
	}
	st.BytesIn = conn.BytesIn
	st.BytesOut = conn.BytesOut
	st.DeltaUpdates = conn.DeltaUpdates
	st.BytesPerSample = conn.BytesPerSample()
	st.JournalEvents = int64(d.journal.Total())
	_, _, errs := d.journal.CountBySeverity()
	st.JournalErrors = errs
	if !d.sch.Virtual() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		st.Goroutines = uint64(runtime.NumGoroutine())
		st.HeapAllocBytes = ms.HeapAlloc
		st.GCCycles = uint64(ms.NumGC)
	}
	return st
}

// Sampler returns the named loaded sampler policy, or nil.
func (d *Daemon) Sampler(name string) *SamplerPolicy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.samplers[name]
}

// Plugin returns the underlying sampling plugin.
func (sp *SamplerPolicy) Plugin() sampler.Plugin { return sp.plugin }

// Start begins (or re-schedules) periodic sampling. synchronous aligns
// firings to wall-clock interval boundaries plus offset so sampling across
// nodes can be coordinated in time, bounding the number of application
// iterations affected (paper §V-A1).
func (sp *SamplerPolicy) Start(interval, offset time.Duration, synchronous bool) {
	if sp.task != nil {
		sp.task.Cancel()
	}
	sp.interval, sp.offset, sp.synced = interval, offset, synchronous
	sp.task = sp.d.sch.Every(interval, offset, synchronous, sp.sample)
}

// Stop cancels periodic sampling. The plugin and set remain loaded.
func (sp *SamplerPolicy) Stop() {
	if sp.task != nil {
		sp.task.Cancel()
		sp.task = nil
	}
}

// SampleOnce runs the plugin immediately (used by tests and the control
// interface's one-shot sample command).
func (sp *SamplerPolicy) SampleOnce(now time.Time) error {
	//ldms:wallclock sampleNanos accounts real plugin CPU cost, which a virtual clock cannot measure
	start := time.Now()
	err := sp.plugin.Sample(now)
	//ldms:wallclock second half of the real CPU-cost measurement above
	sp.sampleNanos.Add(int64(time.Since(start)))
	sp.samples.Add(1)
	if err != nil {
		sp.errors.Add(1)
		sp.lastErr.Store(err.Error())
	}
	return err
}

// sample is the scheduled callback.
func (sp *SamplerPolicy) sample(now time.Time) {
	sp.SampleOnce(now)
}

// LastError returns the most recent sampling error message, if any.
func (sp *SamplerPolicy) LastError() string {
	if v, ok := sp.lastErr.Load().(string); ok {
		return v
	}
	return ""
}
