package ldmsd

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"goldms/internal/metric"
	"goldms/internal/procfs"
	"goldms/internal/sched"
	"goldms/internal/simcluster"
	"goldms/internal/transport"
)

// megaSimScale returns (nodes, leaves, mids, ticks) for the 3-tier
// mega-sim: the full run drives 10k+ simulated samplers; -short and
// -race runs shrink to keep the suite fast.
func megaSimScale() (int, int, int, int) {
	if testing.Short() || raceEnabled {
		return 256, 16, 4, 4
	}
	return 10240, 64, 8, 4
}

// megaSimRun builds leaf→mid→top over a simulated cluster and returns a
// fingerprint of everything observable at the end: the top directory,
// every reduced value, per-hop latency histograms, and daemon status.
// Two runs from the same seed must produce identical bytes.
func megaSimRun(t *testing.T, seed int64) string {
	t.Helper()
	nodes, leaves, mids, ticks := megaSimScale()

	cl, err := simcluster.New(simcluster.Options{
		Profile: simcluster.ProfileChama,
		Nodes:   nodes,
		Seed:    seed,
		Start:   time.Unix(80000, 0),
	})
	if err != nil {
		t.Fatal(err)
	}

	sch := sched.NewVirtual(cl.Now())
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}

	// Tier 0: leaves. Raw registry servers (no daemon machinery needed
	// at the edge), each exporting nodes/leaves per-node sets rendered
	// from the simulated kernel state.
	nodeSchema := metric.NewSchema("simnode")
	nodeSchema.MustAddMetric("load1", metric.TypeD64)
	nodeSchema.MustAddMetric("memfree_kb", metric.TypeU64)
	nodeSchema.MustAddMetric("ctxt", metric.TypeU64)
	nodeSchema.MustAddMetric("pgfault", metric.TypeU64)
	type nodeSet struct {
		node *simcluster.Node
		set  *metric.Set
	}
	sample := func(ns nodeSet, at time.Time) {
		ns.set.BeginTransaction()
		ns.node.State.Update(func(s *procfs.NodeState) {
			ns.set.SetF64(0, s.Load1)
			ns.set.SetU64(1, s.MemFreeKB)
			ns.set.SetU64(2, s.Ctxt)
			ns.set.SetU64(3, s.PgFault)
		})
		ns.set.EndTransaction(at)
	}
	all := make([]nodeSet, 0, nodes)
	perLeaf := nodes / leaves
	for l := 0; l < leaves; l++ {
		reg := metric.NewRegistry()
		for i := l * perLeaf; i < (l+1)*perLeaf; i++ {
			set, err := metric.New(fmt.Sprintf("node%05d", i), nodeSchema)
			if err != nil {
				t.Fatal(err)
			}
			ns := nodeSet{node: cl.Node(i), set: set}
			sample(ns, sch.Now())
			if err := reg.Add(set); err != nil {
				t.Fatal(err)
			}
			all = append(all, ns)
		}
		if _, err := fac.Listen(fmt.Sprintf("leaf%02d", l), transport.NewServer(reg)); err != nil {
			t.Fatal(err)
		}
	}

	// Tier 1: reducing mids, each pulling leaves/mids leaf servers and
	// publishing only the folds upstream.
	midDs := make([]*Daemon, mids)
	for m := 0; m < mids; m++ {
		var b strings.Builder
		for l := m; l < leaves; l += mids {
			fmt.Fprintf(&b, "prdcr_add name=leaf%02d xprt=mem host=leaf%02d interval=1s\nprdcr_start name=leaf%02d\n", l, l, l)
		}
		b.WriteString("updtr_add name=u interval=1s reduce=min,max,avg,sum export=reduced\n")
		for l := m; l < leaves; l += mids {
			fmt.Fprintf(&b, "updtr_prdcr_add name=u prdcr=leaf%02d\n", l)
		}
		b.WriteString("updtr_start name=u\n")
		name := fmt.Sprintf("mid%02d", m)
		d, err := New(Options{Name: name, Scheduler: sch, Transports: []transport.Factory{fac}})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Stop()
		if _, err := d.ExecScript(b.String()); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Listen("mem", name); err != nil {
			t.Fatal(err)
		}
		midDs[m] = d
	}

	// Tier 2: the top pulls every mid's reduced sets.
	top, err := New(Options{Name: "top", Scheduler: sch, Transports: []transport.Factory{fac}})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Stop()
	var b strings.Builder
	for m := 0; m < mids; m++ {
		fmt.Fprintf(&b, "prdcr_add name=mid%02d xprt=mem host=mid%02d interval=1s\nprdcr_start name=mid%02d\n", m, m, m)
	}
	b.WriteString("updtr_add name=u interval=1s\n")
	for m := 0; m < mids; m++ {
		fmt.Fprintf(&b, "updtr_prdcr_add name=u prdcr=mid%02d\n", m)
	}
	b.WriteString("updtr_start name=u\n")
	if _, err := top.ExecScript(b.String()); err != nil {
		t.Fatal(err)
	}

	// Drive: each virtual second the cluster evolves, every node set is
	// re-sampled, and the schedulers run one tier-cascaded pull.
	for i := 0; i < ticks; i++ {
		cl.Step(time.Second)
		for _, ns := range all {
			sample(ns, cl.Now())
		}
		sch.AdvanceBy(time.Second)
	}

	// Fingerprint everything observable at the end of the run.
	var fp strings.Builder
	fmt.Fprintf(&fp, "nodes=%d leaves=%d mids=%d ticks=%d\n", nodes, leaves, mids, ticks)
	fmt.Fprintf(&fp, "topdir=%s\n", strings.Join(top.Registry().Dir(), ","))
	for _, name := range top.Registry().Dir() {
		s := top.Registry().Get(name)
		fmt.Fprintf(&fp, "set=%s dgn=%d ts=%d", name, s.DGN(), s.Timestamp().UnixNano())
		for i := 0; i < s.Card(); i++ {
			switch s.MetricType(i) {
			case metric.TypeD64:
				fmt.Fprintf(&fp, " %s=%g", s.MetricName(i), s.F64(i))
			default:
				fmt.Fprintf(&fp, " %s=%d", s.MetricName(i), s.U64(i))
			}
		}
		fp.WriteString("\n")
	}
	for _, d := range append(midDs, top) {
		us, err := d.Exec("updtr_status")
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&fp, "%s updtr_status:\n%s\n", d.name, us)
		lat := d.Latency()
		fmt.Fprintf(&fp, "%s lat pull=%+v reduce=%+v window=%+v store=%+v\n",
			d.name, lat.Pull.Snapshot(), lat.Reduce.Snapshot(), lat.Window.Snapshot(), lat.Store.Snapshot())
	}
	return fp.String()
}

// TestTierMegaSimDeterministic replays a 10k-sampler, 3-tier virtual-clock
// run twice from the same seed and requires byte-identical observable
// state (directories, reduced values, histograms, status output).
func TestTierMegaSimDeterministic(t *testing.T) {
	a := megaSimRun(t, 42)
	b := megaSimRun(t, 42)
	if a != b {
		// Find the first divergence for a readable failure.
		la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := range la {
			if i >= len(lb) || la[i] != lb[i] {
				t.Fatalf("replay diverged at line %d:\n run1: %s\n run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("replay diverged in length: %d vs %d bytes", len(a), len(b))
	}

	// Sanity on the content itself: every mid contributed its four folds.
	nodes, _, mids, _ := megaSimScale()
	wantSets := mids * 4
	gotSets := strings.Count(a, "\nset=")
	if gotSets != wantSets {
		t.Errorf("top holds %d reduced sets, want %d (fingerprint head:\n%s)",
			gotSets, wantSets, a[:min(len(a), 600)])
	}
	// The sum-fold's reduce_count across mids must account for every
	// simulated sampler: fan-in lost nothing on the way up.
	total := 0
	for _, line := range strings.Split(a, "\n") {
		if !strings.HasPrefix(line, "set=") || !strings.Contains(line, "_sum ") {
			continue
		}
		idx := strings.Index(line, "reduce_count=")
		if idx < 0 {
			t.Fatalf("no reduce_count in %q", line)
		}
		var n int
		if _, err := fmt.Sscanf(line[idx+len("reduce_count="):], "%d", &n); err != nil {
			t.Fatalf("bad reduce_count in %q", line)
		}
		total += n
	}
	if total != nodes {
		t.Errorf("sum folds account for %d samplers, want %d", total, nodes)
	}
}
