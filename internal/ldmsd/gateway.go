package ldmsd

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"goldms/internal/obs"
	"goldms/internal/query"
	"goldms/internal/sched"
)

// The query & observability gateway: an HTTP server running inside an
// aggregator ldmsd that answers live-data queries from the mirrored sets,
// recent-history queries from an in-memory window, and exposes the
// daemon's own operational counters. It is the "application access to
// in-transit data" path of the paper (§III): consumers read the
// aggregator's mirrors directly instead of round-tripping through the
// storage backend.

// GatewayConfig configures the daemon's HTTP gateway.
type GatewayConfig struct {
	// Addr is the TCP listen address (e.g. ":8080", "127.0.0.1:0").
	Addr string
	// Window is the recent-window retention. 0 means query.DefaultRetention;
	// negative disables the window (series queries answer 503).
	Window time.Duration
	// Points caps points kept per series (0 = query.DefaultPoints).
	Points int
	// Shards is the window's set-index lock-stripe count, rounded up to
	// a power of two (0 = query.DefaultShards).
	Shards int
	// Compress stores sealed window history Gorilla-compressed
	// (delta-of-delta timestamps + XOR values), cutting RAM per
	// retained point ≥5× at the price of decode-on-query for history
	// older than the uncompressed head.
	Compress bool
	// PProf additionally mounts net/http/pprof under /debug/pprof/.
	PProf bool
}

// gatewayState is one running HTTP gateway.
type gatewayState struct {
	srv *http.Server
	ln  net.Listener
}

// staleErrorStreak is how many consecutive failed pulls mark a producer
// stale on /healthz.
const staleErrorStreak = 3

// staleIntervalFactor: a producer with no clean pull for this many of its
// fastest updater's intervals is stale.
const staleIntervalFactor = 4

// ServeHTTP starts the query gateway on cfg.Addr and returns the bound
// address. At most one gateway runs per daemon; Stop shuts it down.
func (d *Daemon) ServeHTTP(cfg GatewayConfig) (string, error) {
	var w *query.Window
	if cfg.Window >= 0 {
		retention := cfg.Window
		if retention == 0 {
			retention = query.DefaultRetention
		}
		w = query.NewWindowOpts(query.WindowOptions{
			Points:    cfg.Points,
			Retention: retention,
			Shards:    cfg.Shards,
			Compress:  cfg.Compress,
		})
	}
	if w != nil {
		// Window-insert hop of the latency pipeline, on the scheduler clock
		// so virtual-time runs record deterministic ages.
		w.SetLatencyTap(&d.lat.Window, d.sch.Now)
		// Retention pruning on the same clock: a virtual-time run must not
		// discard simulated samples against the wall clock.
		w.SetClock(d.sch.Now)
	}
	gw := &query.Gateway{
		DaemonName: d.name,
		Sets:       d.reg,
		Window:     w,
		Health:     d.producerHealth,
		Stores:     d.storeHealth,
		Collect:    d.collectSelfMetrics,
		Latency:    &d.lat,
		Journal:    d.journal,
		Spans:      d.Spans,
		Chains:     d.Chains,
		TierRole:   d.TierRole,
		Started:    d.sch.Now(),
		Now:        d.sch.Now,
		PProf:      cfg.PProf,
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("ldmsd %s: gateway: %w", d.name, err)
	}
	srv := &http.Server{Handler: gw.Handler()}

	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("ldmsd %s: daemon stopped", d.name)
	}
	if d.gw != nil {
		d.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("ldmsd %s: gateway already running", d.name)
	}
	d.gw = &gatewayState{srv: srv, ln: ln}
	d.mu.Unlock()

	// Publishing the window makes the updaters' store path start feeding it;
	// a single atomic load keeps the no-gateway hot path untouched.
	d.window.Store(w)
	go srv.Serve(ln)
	d.journal.Appendf(obs.SevInfo, obs.CompGateway, "", 0,
		"query gateway listening on %s", ln.Addr())
	return ln.Addr().String(), nil
}

// Window returns the gateway's recent-window cache, or nil when no gateway
// (or a window-less one) is running.
func (d *Daemon) Window() *query.Window { return d.window.Load() }

// closeGateway shuts the HTTP gateway down, if one is running.
func (d *Daemon) closeGateway(gw *gatewayState) {
	if gw == nil {
		return
	}
	d.window.Store(nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	gw.srv.Shutdown(ctx)
	cancel()
}

// producerHealth assembles the /healthz payload: connection state and
// lifecycle counters from each producer, pull recency and error streaks
// from the updaters pulling it. The paper's failover model has no internal
// failure detector (§IV-B) — this is the hook an external watchdog polls
// before activating a standby.
func (d *Daemon) producerHealth() []query.ProducerHealth {
	d.mu.Lock()
	prdcrs := mapValues(d.prdcrs)
	updtrs := mapValues(d.updtrs)
	d.mu.Unlock()

	// Fold per-updater pull health into per-producer records: most recent
	// success across updaters, worst error streak, fastest pull interval.
	type pull struct {
		last     time.Time
		errs     int64
		interval time.Duration
	}
	pulls := make(map[string]pull)
	for _, u := range updtrs {
		for _, ph := range u.PullHealth() {
			pr, seen := pulls[ph.Producer]
			if ph.LastSuccess.After(pr.last) {
				pr.last = ph.LastSuccess
			}
			if ph.ConsecErrors > pr.errs {
				pr.errs = ph.ConsecErrors
			}
			if !seen || u.Interval() < pr.interval {
				pr.interval = u.Interval()
			}
			pulls[ph.Producer] = pr
		}
	}

	now := d.sch.Now()
	out := make([]query.ProducerHealth, 0, len(prdcrs))
	for _, p := range prdcrs {
		c := p.Counters()
		ph := query.ProducerHealth{
			Name:           p.Name(),
			Host:           p.Host(),
			State:          p.State().String(),
			Standby:        p.Standby(),
			Active:         p.Active(),
			Connects:       c.Connects,
			Disconnects:    c.Disconnects,
			Updates:        c.Transport.Updates,
			DeltaUpdates:   c.Transport.DeltaUpdates,
			BytesPerSample: c.Transport.BytesPerSample(),
		}
		if pr, ok := pulls[p.Name()]; ok && ph.Active {
			ph.LastUpdate = pr.last
			ph.ConsecutiveErrors = pr.errs
			if pr.errs >= staleErrorStreak {
				ph.Stale = true
			} else if !pr.last.IsZero() && now.Sub(pr.last) > staleIntervalFactor*pr.interval {
				ph.Stale = true
			}
		}
		for _, u := range updtrs {
			ph.Sets += u.MirroredSets(p.Name())
		}
		out = append(out, ph)
	}
	return out
}

// storeHealth assembles the storage-policy section of /healthz: a policy
// with a sticky plugin error silently drops every subsequent row, so it
// degrades the endpoint instead of hiding behind a healthy pull path.
func (d *Daemon) storeHealth() []query.StoreHealth {
	d.mu.Lock()
	strgps := mapValues(d.strgps)
	d.mu.Unlock()
	out := make([]query.StoreHealth, 0, len(strgps))
	for _, sp := range strgps {
		c := sp.Counters()
		sh := query.StoreHealth{
			Policy:     sp.Name(),
			Plugin:     sp.Plugin(),
			Schema:     sp.Schema(),
			Rows:       c.Rows,
			Dropped:    c.Dropped,
			QueueDepth: c.QueueDepth,
			Failed:     c.Failed,
		}
		if err := sp.Err(); err != nil {
			sh.Error = err.Error()
		}
		out = append(out, sh)
	}
	return out
}

// collectSelfMetrics contributes the daemon's operational counters to the
// gateway's /metrics exposition.
func (d *Daemon) collectSelfMetrics(e *query.Expo) {
	d.mu.Lock()
	samplers := mapValues(d.samplers)
	prdcrs := mapValues(d.prdcrs)
	updtrs := mapValues(d.updtrs)
	strgps := mapValues(d.strgps)
	d.mu.Unlock()
	dl := query.Label{K: "daemon", V: d.name}

	for _, u := range updtrs {
		l := []query.Label{dl, {K: "updater", V: u.name}}
		e.Counter("ldmsd_updater_passes_total", "Completed update passes.", l, float64(u.passes.Load()))
		e.Gauge("ldmsd_updater_last_pass_seconds", "Duration of the last completed update pass.", l, float64(u.lastPassNanos.Load())/1e9)
		e.Gauge("ldmsd_updater_inflight_pulls", "Producer pulls currently in flight.", l, float64(u.inflight.Load()))
		e.Counter("ldmsd_updater_skipped_busy_total", "Scheduled passes skipped because the previous pass was still running.", l, float64(u.skippedBusy.Load()))
		e.Counter("ldmsd_updater_lookups_total", "Set lookups performed.", l, float64(u.lookups.Load()))
		e.Counter("ldmsd_updater_errors_total", "Transport or decode errors on the pull path.", l, float64(u.errors.Load()))
		for _, rc := range []struct {
			result string
			v      int64
		}{
			{"fresh", u.fresh.Load()},
			{"stale", u.stale.Load()},
			{"inconsistent", u.inconsistent.Load()},
		} {
			e.Counter("ldmsd_updater_updates_total", "Completed data pulls by outcome.",
				append([]query.Label{{K: "result", V: rc.result}}, l...), float64(rc.v))
		}
		if ops, _, rst, enabled := u.ReduceStatus(); enabled {
			rl := append([]query.Label{{K: "ops", V: ops}}, l...)
			e.Gauge("ldmsd_reduce_groups", "Schema groups being folded by in-flight reduction.", rl, float64(rst.Groups))
			e.Gauge("ldmsd_reduce_members", "Mirrored sets feeding in-flight reduction.", rl, float64(rst.Members))
			e.Gauge("ldmsd_reduce_sets", "Synthetic reduced sets produced by in-flight reduction.", rl, float64(rst.Outputs))
			e.Counter("ldmsd_reduce_folds_total", "Reduction fold passes executed.", rl, float64(rst.Folds))
			e.Counter("ldmsd_reduce_published_total", "Reduced-set publications (fold passes x output sets).", rl, float64(rst.Published))
		}
	}

	for _, p := range prdcrs {
		c := p.Counters()
		l := []query.Label{dl, {K: "producer", V: p.Name()}}
		e.Counter("ldmsd_producer_connects_total", "Successful producer connections.", l, float64(c.Connects))
		e.Counter("ldmsd_producer_disconnects_total", "Producer connection teardowns.", l, float64(c.Disconnects))
		e.Counter("ldmsd_producer_connect_failures_total", "Failed producer connection attempts.", l, float64(c.ConnectFails))
		for _, dir := range []struct {
			name  string
			bytes int64
			msgs  int64
		}{
			{"in", c.Transport.BytesIn, c.Transport.MsgsIn},
			{"out", c.Transport.BytesOut, c.Transport.MsgsOut},
		} {
			dl := append([]query.Label{{K: "direction", V: dir.name}}, l...)
			e.Counter("ldmsd_transport_bytes_total", "Transport bytes by direction, per producer.", dl, float64(dir.bytes))
			e.Counter("ldmsd_transport_msgs_total", "Transport messages by direction, per producer.", dl, float64(dir.msgs))
		}
		e.Counter("ldmsd_transport_batches_total", "Pipelined update batches issued.", l, float64(c.Transport.Batches))
		e.Counter("ldmsd_transport_batched_ops_total", "Update ops carried in pipelined batches.", l, float64(c.Transport.BatchedOps))
		e.Counter("ldmsd_transport_updates_total", "Completed data pulls over this producer's connection.", l, float64(c.Transport.Updates))
		e.Counter("ldmsd_transport_delta_updates_total", "Data pulls answered with a delta instead of a full chunk.", l, float64(c.Transport.DeltaUpdates))
		e.Gauge("ldmsd_transport_bytes_per_sample", "Inbound transport bytes per completed pull (wire cost of one sample).", l, c.Transport.BytesPerSample())
	}

	for _, sp := range samplers {
		l := []query.Label{dl, {K: "sampler", V: sp.name}}
		e.Counter("ldmsd_sampler_samples_total", "Sampling plugin invocations.", l, float64(sp.samples.Load()))
		e.Counter("ldmsd_sampler_errors_total", "Sampling plugin errors.", l, float64(sp.errors.Load()))
		e.Counter("ldmsd_sampler_seconds_total", "Cumulative time inside sampling plugins.", l, float64(sp.sampleNanos.Load())/1e9)
	}

	for _, sp := range strgps {
		c := sp.Counters()
		l := []query.Label{dl, {K: "policy", V: sp.Name()}, {K: "plugin", V: sp.Plugin()}}
		e.Counter("ldmsd_store_rows_total", "Samples written to storage.", l, float64(c.Rows))
		e.Counter("ldmsd_store_enqueued_total", "Samples pushed onto the storage queue.", l, float64(c.Enqueued))
		e.Counter("ldmsd_store_dropped_total", "Samples lost to queue overflow or a failed policy.", l, float64(c.Dropped))
		e.Counter("ldmsd_store_batches_total", "Batched store-plugin calls issued by the drain worker.", l, float64(c.Batches))
		e.Gauge("ldmsd_store_queue_depth", "Rows waiting in the storage queue.", l, float64(c.QueueDepth))
		e.Gauge("ldmsd_store_queue_cap", "Storage queue capacity.", l, float64(c.QueueCap))
		e.Counter("ldmsd_store_seconds_total", "Cumulative time inside store writes.", l, float64(c.StoreNanos)/1e9)
		e.Counter("ldmsd_store_flushes_total", "Store flushes.", l, float64(c.Flushes))
		e.Counter("ldmsd_store_flush_seconds_total", "Cumulative time inside store flushes.", l, float64(c.FlushNanos)/1e9)
		failed := 0.0
		if c.Failed {
			failed = 1
		}
		e.Gauge("ldmsd_store_failed", "1 when a sticky error has disabled the policy.", l, failed)
	}

	for _, pl := range []struct {
		name string
		p    *sched.Pool
	}{
		{"connect", d.conn},
		{"update", d.upd},
		{"store", d.str},
	} {
		if pl.p == nil {
			continue
		}
		l := []query.Label{dl, {K: "pool", V: pl.name}}
		e.Gauge("ldmsd_pool_workers", "Worker goroutines in the pool.", l, float64(pl.p.Workers()))
		e.Gauge("ldmsd_pool_queue_depth", "Jobs queued but not yet started.", l, float64(pl.p.QueueDepth()))
		e.Gauge("ldmsd_pool_queue_cap", "Submission queue capacity.", l, float64(pl.p.QueueCap()))
	}

	ss := d.srv.Stats()
	e.Counter("ldmsd_server_dirs_total", "Dir requests served to pulling peers.", []query.Label{dl}, float64(ss.Dirs))
	e.Counter("ldmsd_server_lookups_total", "Lookup requests served to pulling peers.", []query.Label{dl}, float64(ss.Lookups))
	e.Counter("ldmsd_server_updates_total", "Update (data pull) requests served to pulling peers.", []query.Label{dl}, float64(ss.Updates))
	e.Counter("ldmsd_server_bytes_out_total", "Payload bytes served to pulling peers.", []query.Label{dl}, float64(ss.BytesOut))

	as := d.arena.Stats()
	for _, m := range []struct {
		state string
		v     int
	}{{"used", as.InUse}, {"peak", as.Peak}, {"budget", as.Capacity}} {
		e.Gauge("ldmsd_set_memory_bytes", "Metric-set arena memory.",
			[]query.Label{dl, {K: "state", V: m.state}}, float64(m.v))
	}
}
