package ldmsd

import (
	"fmt"
	"testing"
	"time"

	"goldms/internal/metric"
	"goldms/internal/tier"
	"goldms/internal/transport"
)

// benchLeaves stands up producers raw registry servers holding nsets
// total bench sets on fac, returning the flat source-set slice.
func benchLeaves(b *testing.B, fac transport.MemFactory, producers, nsets int) []*metric.Set {
	b.Helper()
	var srcSets []*metric.Set
	for i := 0; i < producers; i++ {
		name := fmt.Sprintf("p%d", i)
		reg := benchRegistry(b, name, nsets/producers)
		reg.Each(func(s *metric.Set) { srcSets = append(srcSets, s) })
		if _, err := fac.Listen(name, transport.NewServer(reg)); err != nil {
			b.Fatal(err)
		}
	}
	return srcSets
}

// benchAgg builds an aggregator on fac pulling the named producers, with
// an un-Started updater the benchmark drives directly via u.run.
func benchAgg(b *testing.B, fac transport.MemFactory, name string, producers []string, reduce bool) (*Daemon, *Updater) {
	b.Helper()
	d, err := New(Options{
		Name:          name,
		Workers:       len(producers),
		UpdateWorkers: len(producers),
		Memory:        64 << 20,
		Transports:    []transport.Factory{fac},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, pn := range producers {
		p, err := d.AddProducer(pn, "mem", pn, 10*time.Millisecond, false)
		if err != nil {
			b.Fatal(err)
		}
		p.Start()
	}
	u, err := d.AddUpdater("u", time.Minute, 0, false)
	if err != nil {
		b.Fatal(err)
	}
	for _, pn := range producers {
		u.AddProducer(pn)
	}
	if reduce {
		ops, _ := tier.ParseOps("min,max,avg,sum")
		if err := u.SetReduce(ops, false); err != nil {
			b.Fatal(err)
		}
	}
	waitUntil(b, 10*time.Second, func() bool {
		for _, pn := range producers {
			if d.Producer(pn).State() != ProducerConnected {
				return false
			}
		}
		return true
	}, "producers to connect")
	return d, u
}

// BenchmarkTierFanIn records fan-in ratio vs full pass latency at a
// reducing tier: N leaf sets (spread over 8 producers, one simulated RTT
// per batched op) fold into 4 synthetic sets per pass. "raw" pulls the
// same fan-in without reduction, isolating the fold cost; "reduce"
// publishes only the folds. The "3tier" cases chain a second hop — a top
// aggregator pulling the reduced sets — and time the cascaded pass; the
// 1024-set case is the CI gate (see .github/workflows/ci.yml).
//
// EXPERIMENTS.md §PERF7 records the measured curve at 64:1, 256:1 and
// 1024:1.
func BenchmarkTierFanIn(b *testing.B) {
	const (
		producers = 8
		rtt       = 200 * time.Microsecond
	)
	bump := func(srcSets []*metric.Set, tick *int64) {
		*tick++
		for _, s := range srcSets {
			s.BeginTransaction()
			s.SetU64(0, uint64(*tick))
			s.SetU64(1, uint64(*tick)*2)
			s.EndTransaction(time.Unix(*tick, 0))
		}
	}
	pnames := make([]string, producers)
	for i := range pnames {
		pnames[i] = fmt.Sprintf("p%d", i)
	}

	for _, nsets := range []int{64, 256, 1024} {
		for _, mode := range []string{"raw", "reduce"} {
			b.Run(fmt.Sprintf("ratio=%d:1/%s", nsets, mode), func(b *testing.B) {
				net := transport.NewNetwork()
				fac := transport.MemFactory{Net: net, Delay: func(addr, op string) { time.Sleep(rtt) }}
				srcSets := benchLeaves(b, fac, producers, nsets)
				mid, u := benchAgg(b, fac, "mid", pnames, mode == "reduce")
				defer mid.Stop()

				tick := int64(2000)
				u.run(time.Now()) // lookups
				u.run(time.Now()) // first pulls
				if got := int(u.updates.Load()); got != nsets {
					b.Fatalf("warmup pulled %d sets, want %d", got, nsets)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					bump(srcSets, &tick)
					u.run(time.Now())
				}
				b.StopTimer()
				if mode == "reduce" {
					if _, _, st, ok := u.ReduceStatus(); !ok || st.Folds == 0 {
						b.Fatal("reduction never folded")
					}
				}
			})
		}
	}

	// Full 3-tier chain: leaves -> reducing mid -> top. Each iteration
	// runs one pass at the mid then one at the top, so ns/op is the
	// end-to-end latency a sample-age histogram would see per hop pair.
	for _, nsets := range []int{1024} {
		b.Run(fmt.Sprintf("3tier/sets=%d", nsets), func(b *testing.B) {
			net := transport.NewNetwork()
			fac := transport.MemFactory{Net: net, Delay: func(addr, op string) { time.Sleep(rtt) }}
			srcSets := benchLeaves(b, fac, producers, nsets)
			mid, umid := benchAgg(b, fac, "mid", pnames, true)
			defer mid.Stop()
			if _, err := mid.Listen("mem", "mid"); err != nil {
				b.Fatal(err)
			}
			top, utop := benchAgg(b, fac, "top", []string{"mid"}, false)
			defer top.Stop()

			tick := int64(2000)
			umid.run(time.Now()) // mid lookups
			umid.run(time.Now()) // mid first pulls + first fold
			utop.run(time.Now()) // top lookups (reduced sets now exist)
			utop.run(time.Now()) // top first pulls
			if got := top.Registry().Dir(); len(got) != 4 {
				b.Fatalf("top sees %d reduced sets, want 4: %v", len(got), got)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				bump(srcSets, &tick)
				umid.run(time.Now())
				utop.run(time.Now())
			}
			b.StopTimer()
		})
	}
}
