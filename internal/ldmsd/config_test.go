package ldmsd

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"goldms/internal/sched"
	"goldms/internal/transport"
)

func TestExecSamplerLifecycle(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	d := virtualSampler(t, "n1", sch, transport.NewNetwork(), 0)
	defer d.Stop()

	script := `
# sampler configuration, ldmsd_controller style
load name=meminfo
config name=meminfo instance=n1/meminfo component_id=42
start name=meminfo interval=1000000
`
	if _, err := d.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(5 * time.Second)
	if got := d.Stats().Samples; got != 5 {
		t.Errorf("samples = %d want 5", got)
	}
	set := d.Registry().Get("n1/meminfo")
	if set == nil {
		t.Fatal("set missing")
	}
	if set.CompID(0) != 42 {
		t.Errorf("comp id = %d want 42", set.CompID(0))
	}

	out, err := d.Exec("dir")
	if err != nil || !strings.Contains(out, "n1/meminfo") {
		t.Errorf("dir = %q err=%v", out, err)
	}
	out, err = d.Exec("ls name=n1/meminfo")
	if err != nil || !strings.Contains(out, "MemTotal") || !strings.Contains(out, "consistent") {
		t.Errorf("ls = %q err=%v", out, err)
	}
	out, err = d.Exec("usage")
	if err != nil || !strings.Contains(out, "used=") {
		t.Errorf("usage = %q err=%v", out, err)
	}
	if _, err := d.Exec("stop name=meminfo"); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(5 * time.Second)
	if got := d.Stats().Samples; got != 5 {
		t.Errorf("samples after stop = %d want 5", got)
	}
}

func TestExecAggregatorConfig(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	smp := virtualSampler(t, "n1", sch, net, 3)
	defer smp.Stop()
	if _, err := smp.ExecScript("load name=meminfo\nstart name=meminfo interval=1s"); err != nil {
		t.Fatal(err)
	}

	agg, err := New(Options{
		Name:       "agg",
		Scheduler:  sch,
		Transports: []transport.Factory{transport.MemFactory{Net: net}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()
	csv := filepath.Join(t.TempDir(), "out.csv")
	script := `
prdcr_add name=n1 xprt=mem host=n1 interval=1s
prdcr_start name=n1
updtr_add name=u1 interval=1s
updtr_prdcr_add name=u1 prdcr=n1
updtr_start name=u1
strgp_add name=s1 plugin=store_csv schema=meminfo container=` + csv + `
strgp_start name=s1
`
	if _, err := agg.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(10 * time.Second)
	st := agg.Stats()
	if st.UpdatesFresh < 5 {
		t.Errorf("fresh = %d", st.UpdatesFresh)
	}
	out, err := agg.Exec("stats")
	if err != nil || !strings.Contains(out, "stored_rows=") {
		t.Errorf("stats = %q err=%v", out, err)
	}
}

func TestExecErrors(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	d := virtualSampler(t, "n1", sch, transport.NewNetwork(), 0)
	defer d.Stop()
	cases := []string{
		"bogus_command",
		"load",                           // missing name
		"start name=meminfo interval=1s", // not loaded
		"config name=meminfo",            // not loaded
		"start name=x",                   // no interval
		"prdcr_add name=p",               // missing xprt/host
		"prdcr_start name=ghost",
		"updtr_add name=u",
		"updtr_prdcr_add name=ghost prdcr=x",
		"strgp_add name=s",
		"ls name=ghost",
		"load name=meminfo extra", // malformed arg
	}
	for _, c := range cases {
		if _, err := d.Exec(c); err == nil {
			t.Errorf("command %q should fail", c)
		}
	}
	// Comments and empty lines are fine.
	if _, err := d.Exec(""); err != nil {
		t.Error(err)
	}
}

func TestExecSynchronousStart(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(1000000007, 0))
	d := virtualSampler(t, "n1", sch, transport.NewNetwork(), 0)
	defer d.Stop()
	script := `
load name=meminfo
start name=meminfo interval=60000000 offset=2000000 synchronous=1
`
	if _, err := d.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(3 * time.Minute)
	set := d.Registry().Get("n1/meminfo")
	ts := set.Timestamp().Unix()
	if (ts-2)%60 != 0 {
		t.Errorf("synchronous sample at %d not aligned to minute+2s", ts)
	}
}

func TestExecScriptStopsAtError(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	d := virtualSampler(t, "n1", sch, transport.NewNetwork(), 0)
	defer d.Stop()
	_, err := d.ExecScript("load name=meminfo\nbroken cmd=\nload name=vmstat")
	if err == nil {
		t.Fatal("script error not propagated")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestControlSocket(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	d := virtualSampler(t, "n1", sch, transport.NewNetwork(), 0)
	defer d.Stop()

	sock := filepath.Join(t.TempDir(), "ldmsd.sock")
	cs, err := d.ServeControl(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	c, err := DialControl(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("load name=meminfo"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("start name=meminfo interval=1s"); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(3 * time.Second)
	out, err := c.Exec("ls name=n1/meminfo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MemTotal") {
		t.Errorf("ls over socket = %q", out)
	}
	// Errors round-trip.
	if _, err := c.Exec("ls name=ghost"); err == nil {
		t.Error("remote error not propagated")
	}
	// Connection still usable after an error reply.
	if _, err := c.Exec("usage"); err != nil {
		t.Errorf("post-error command failed: %v", err)
	}
}

func TestOneshotCommand(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(50, 0))
	d := virtualSampler(t, "n1", sch, transport.NewNetwork(), 0)
	defer d.Stop()
	d.Exec("load name=meminfo")
	d.Exec("start name=meminfo interval=1h") // won't fire during test
	if _, err := d.Exec("oneshot name=meminfo"); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Samples; got != 1 {
		t.Errorf("samples = %d want 1", got)
	}
}

// failoverExample reproduces the Blue Waters redundant-connection pattern:
// two aggregators hold connections to the same sampler; only the primary
// pulls until the watchdog activates the standby.
func TestFailoverViaCommands(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	smp := virtualSampler(t, "n7", sch, net, 7)
	defer smp.Stop()
	smp.ExecScript("load name=meminfo\nstart name=meminfo interval=1s")

	mk := func(name string, standby string) *Daemon {
		agg, err := New(Options{Name: name, Scheduler: sch,
			Transports: []transport.Factory{transport.MemFactory{Net: net}}})
		if err != nil {
			t.Fatal(err)
		}
		script := `
prdcr_add name=n7 xprt=mem host=n7 interval=1s standby=` + standby + `
prdcr_start name=n7
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=n7
updtr_start name=u
`
		if _, err := agg.ExecScript(script); err != nil {
			t.Fatal(err)
		}
		return agg
	}
	primary := mk("agg-primary", "0")
	defer primary.Stop()
	backup := mk("agg-backup", "1")
	defer backup.Stop()

	sch.AdvanceBy(10 * time.Second)
	if primary.Stats().UpdatesFresh == 0 {
		t.Error("primary pulled nothing")
	}
	if backup.Stats().Updates != 0 {
		t.Error("standby pulled before activation")
	}

	// Primary "dies"; watchdog activates the standby.
	primary.Stop()
	if _, err := backup.Exec("prdcr_activate name=n7"); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(10 * time.Second)
	if backup.Stats().UpdatesFresh == 0 {
		t.Error("standby pulled nothing after activation")
	}
}

func TestExecMiscCommands(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	net := transport.NewNetwork()
	smp := virtualSampler(t, "n1", sch, net, 0)
	defer smp.Stop()
	smp.ExecScript("load name=meminfo\nstart name=meminfo interval=1s")

	agg, _ := New(Options{Name: "agg", Scheduler: sch,
		Transports: []transport.Factory{transport.MemFactory{Net: net}}})
	defer agg.Stop()
	script := `
prdcr_add name=n1 xprt=mem host=n1 interval=1s
prdcr_start name=n1
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=n1
updtr_start name=u
strgp_add name=s plugin=store_csv schema=meminfo container=` + filepath.Join(t.TempDir(), "x.csv") + `
strgp_metric_add name=s metric=MemFree,Active
`
	if _, err := agg.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(5 * time.Second)

	// Stop / start / deactivate paths.
	for _, cmd := range []string{
		"updtr_stop name=u",
		"prdcr_stop name=n1",
		"prdcr_start name=n1",
		"prdcr_deactivate name=n1", // non-standby: no-op
		"prdcr_activate name=n1",
	} {
		if _, err := agg.Exec(cmd); err != nil {
			t.Errorf("%s: %v", cmd, err)
		}
	}
	// strgp_start validates existence.
	if _, err := agg.Exec("strgp_start name=s"); err != nil {
		t.Error(err)
	}
	if _, err := agg.Exec("strgp_start name=ghost"); err == nil {
		t.Error("unknown strgp accepted")
	}
	if _, err := agg.Exec("strgp_metric_add name=s"); err == nil {
		t.Error("strgp_metric_add without metric accepted")
	}
	if _, err := agg.Exec("updtr_match_add name=u"); err == nil {
		t.Error("updtr_match_add without match accepted")
	}
	// Passive producer via command, and malformed variants.
	if _, err := agg.Exec("prdcr_add name=pp type=passive"); err != nil {
		t.Error(err)
	}
	if _, err := agg.Exec("prdcr_add name=pp2"); err == nil {
		t.Error("prdcr_add without host/xprt accepted")
	}
	if _, err := agg.Exec("advertise xprt=mem"); err == nil {
		t.Error("advertise without host accepted")
	}
	// ls on an inconsistent (never sampled) mirror-free daemon is an error
	// only for unknown names; a real set renders.
	out, err := agg.Exec("ls")
	if err != nil || !strings.Contains(out, "n1/meminfo") {
		t.Errorf("ls = %q err=%v", out, err)
	}
}

func TestControlServerBadSocketPath(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	d := virtualSampler(t, "n1", sch, transport.NewNetwork(), 0)
	defer d.Stop()
	if _, err := d.ServeControl("/does/not/exist/ctl.sock"); err == nil {
		t.Error("bad socket path accepted")
	}
	if _, err := DialControl("/does/not/exist/ctl.sock"); err == nil {
		t.Error("dial to missing socket succeeded")
	}
}

func TestExecScriptCollectsOutput(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	d := virtualSampler(t, "n1", sch, transport.NewNetwork(), 0)
	defer d.Stop()
	d.ExecScript("load name=meminfo\nstart name=meminfo interval=1s")
	sch.AdvanceBy(2 * time.Second)
	out, err := d.ExecScript("dir\nusage")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "n1/meminfo") || !strings.Contains(out, "used=") {
		t.Errorf("script output = %q", out)
	}
}
