//go:build race

package ldmsd

// raceEnabled reports whether the race detector is compiled in; heavy
// tests scale themselves down under it.
const raceEnabled = true
