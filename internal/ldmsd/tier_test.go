package ldmsd

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"goldms/internal/metric"
	"goldms/internal/procfs"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// leafRegistry builds a registry of n bare-named sets ("node00", ...), the
// shape a sampler-only daemon serves before any tier qualifies the names.
// Each set carries one u64 and one f64 metric seeded from base.
func leafRegistry(tb testing.TB, n int, base uint64, at time.Time) *metric.Registry {
	tb.Helper()
	reg := metric.NewRegistry()
	for i := 0; i < n; i++ {
		sch := metric.NewSchema("tiernode")
		sch.MustAddMetric("cnt", metric.TypeU64)
		sch.MustAddMetric("load", metric.TypeD64)
		set, err := metric.New(fmt.Sprintf("node%02d", i), sch)
		if err != nil {
			tb.Fatal(err)
		}
		set.BeginTransaction()
		set.SetU64(0, base+uint64(i))
		set.SetF64(1, float64(base+uint64(i))/2)
		set.EndTransaction(at)
		if err := reg.Add(set); err != nil {
			tb.Fatal(err)
		}
	}
	return reg
}

// bumpRegistry writes a fresh sample into every set of a leaf registry.
func bumpRegistry(reg *metric.Registry, base uint64, at time.Time) {
	for i, name := range reg.Dir() {
		set := reg.Get(name)
		set.BeginTransaction()
		set.SetU64(0, base+uint64(i))
		set.SetF64(1, float64(base+uint64(i))/2)
		set.EndTransaction(at)
	}
}

// tierAgg builds a virtual-clock aggregator pulling the named producers.
func tierAgg(t *testing.T, name string, sch *sched.Scheduler, fac transport.Factory, pulls []string, script string) *Daemon {
	t.Helper()
	d, err := New(Options{Name: name, Scheduler: sch, Transports: []transport.Factory{fac}})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, p := range pulls {
		fmt.Fprintf(&b, "prdcr_add name=%s xprt=mem host=%s interval=1s\nprdcr_start name=%s\n", p, p, p)
	}
	b.WriteString(script)
	if _, err := d.ExecScript(b.String()); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestTierReExportPrefixesOrigin pins the <producer>/<set> re-export
// convention across two aggregation hops: bare leaf names gain exactly one
// origin qualifier at the first tier and pass through unchanged above it,
// and the remote DGN/timestamp ride each hop verbatim.
func TestTierReExportPrefixesOrigin(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(70000, 0))
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}
	t0 := sch.Now()

	leaf1 := leafRegistry(t, 2, 100, t0)
	leaf2 := leafRegistry(t, 1, 500, t0)
	for name, reg := range map[string]*metric.Registry{"n1": leaf1, "n2": leaf2} {
		if _, err := fac.Listen(name, transport.NewServer(reg)); err != nil {
			t.Fatal(err)
		}
	}

	mid := tierAgg(t, "mid", sch, fac, []string{"n1", "n2"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=n1
updtr_prdcr_add name=u prdcr=n2
updtr_start name=u
`)
	defer mid.Stop()
	if _, err := mid.Listen("mem", "mid"); err != nil {
		t.Fatal(err)
	}
	top := tierAgg(t, "top", sch, fac, []string{"mid"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=mid
updtr_start name=u
`)
	defer top.Stop()

	sch.AdvanceBy(5 * time.Second)

	wantDir := []string{"n1/node00", "n1/node01", "n2/node00"}
	gotMid := mid.Registry().Dir()
	if strings.Join(gotMid, ",") != strings.Join(wantDir, ",") {
		t.Fatalf("mid dir = %v, want %v", gotMid, wantDir)
	}
	// The second hop must not re-qualify: names already carrying an origin
	// pass through unchanged.
	gotTop := top.Registry().Dir()
	if strings.Join(gotTop, ",") != strings.Join(wantDir, ",") {
		t.Fatalf("top dir = %v, want %v", gotTop, wantDir)
	}

	src := leaf2.Get("node00")
	mir := top.Registry().Get("n2/node00")
	if mir == nil {
		t.Fatal("n2/node00 missing at top")
	}
	if mir.DGN() != src.DGN() || mir.MGN() != src.MGN() {
		t.Errorf("generations did not propagate: top dgn=%d mgn=%d, leaf dgn=%d mgn=%d",
			mir.DGN(), mir.MGN(), src.DGN(), src.MGN())
	}
	if !mir.Timestamp().Equal(src.Timestamp()) {
		t.Errorf("timestamp after two hops = %v, leaf = %v", mir.Timestamp(), src.Timestamp())
	}
	if i, ok := mir.MetricIndex("cnt"); !ok || mir.U64(i) != 500 {
		t.Errorf("value after two hops wrong")
	}

	// ls on the aggregator resolves the qualified instance name.
	out, err := mid.Exec("ls name=n1/node01")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "n1/node01: tiernode") || !strings.Contains(out, "cnt") {
		t.Errorf("ls on a mirror = %q", out)
	}
}

// TestTierReduction drives two leaves through a reducing mid tier into a
// top tier: the mid publishes only the synthetic reduced sets
// (export=reduced), their values fold the leaf samples, and the top pulls
// them like any other set.
func TestTierReduction(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(71000, 0))
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}
	t0 := sch.Now()

	leaf1 := leafRegistry(t, 1, 10, t0) // cnt=10 load=5
	leaf2 := leafRegistry(t, 1, 30, t0) // cnt=30 load=15
	for name, reg := range map[string]*metric.Registry{"n1": leaf1, "n2": leaf2} {
		if _, err := fac.Listen(name, transport.NewServer(reg)); err != nil {
			t.Fatal(err)
		}
	}

	mid := tierAgg(t, "mid", sch, fac, []string{"n1", "n2"}, `
updtr_add name=u interval=1s reduce=min,max,avg,sum export=reduced
updtr_prdcr_add name=u prdcr=n1
updtr_prdcr_add name=u prdcr=n2
updtr_start name=u
`)
	defer mid.Stop()
	if _, err := mid.Listen("mem", "mid"); err != nil {
		t.Fatal(err)
	}
	top := tierAgg(t, "top", sch, fac, []string{"mid"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=mid
updtr_start name=u
`)
	defer top.Stop()

	sch.AdvanceBy(5 * time.Second)

	// export=reduced: the mid's directory carries only the folds.
	wantDir := []string{"mid/tiernode_avg", "mid/tiernode_max", "mid/tiernode_min", "mid/tiernode_sum"}
	if got := mid.Registry().Dir(); strings.Join(got, ",") != strings.Join(wantDir, ",") {
		t.Fatalf("mid dir = %v, want %v", got, wantDir)
	}

	check := func(reg *metric.Registry, where string) {
		t.Helper()
		for _, tc := range []struct {
			set  string
			cnt  uint64
			load float64
		}{
			{"mid/tiernode_min", 10, 5},
			{"mid/tiernode_max", 30, 15},
			{"mid/tiernode_sum", 40, 20},
		} {
			s := reg.Get(tc.set)
			if s == nil {
				t.Fatalf("%s: %s missing", where, tc.set)
			}
			ci, _ := s.MetricIndex("cnt")
			li, _ := s.MetricIndex("load")
			ni, ok := s.MetricIndex("reduce_count")
			if !ok {
				t.Fatalf("%s: %s lacks reduce_count", where, tc.set)
			}
			if got := s.U64(ci); got != tc.cnt {
				t.Errorf("%s: %s cnt = %d, want %d", where, tc.set, got, tc.cnt)
			}
			if got := s.F64(li); got != tc.load {
				t.Errorf("%s: %s load = %g, want %g", where, tc.set, got, tc.load)
			}
			if got := s.U64(ni); got != 2 {
				t.Errorf("%s: %s reduce_count = %d, want 2", where, tc.set, got)
			}
		}
		avg := reg.Get("mid/tiernode_avg")
		if i, _ := avg.MetricIndex("cnt"); avg.F64(i) != 20 {
			t.Errorf("%s: avg cnt = %g, want 20", where, avg.F64(i))
		}
	}
	check(mid.Registry(), "mid")
	// The reduced sets traverse the next hop under their qualified names.
	check(top.Registry(), "top")

	// Status surfaces: reduce config on updtr_status, tier role and
	// mirrored-set counts on prdcr_status.
	out, err := mid.Exec("updtr_status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reduce=min,max,avg,sum", "export=reduced",
		"reduce_groups=1", "reduce_members=2", "reduce_sets=4", "prdcr=n1 sets=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("updtr_status missing %q:\n%s", want, out)
		}
	}
	out, err = mid.Exec("prdcr_status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tier=mid", "sets=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("prdcr_status missing %q:\n%s", want, out)
		}
	}
	if got := top.TierRole(); got != "top" {
		t.Errorf("top role = %q", got)
	}

	// Stale leaves hold the reduced DGN still, so the top sees stale
	// pulls — then a single leaf bump folds through both tiers.
	frozen := top.Registry().Get("mid/tiernode_sum").DGN()
	sch.AdvanceBy(3 * time.Second)
	if got := top.Registry().Get("mid/tiernode_sum").DGN(); got != frozen {
		t.Fatalf("reduced DGN advanced with no fresh members: %d -> %d", frozen, got)
	}
	bumpRegistry(leaf1, 12, sch.Now()) // cnt 10 -> 12: sum 40 -> 42
	sch.AdvanceBy(3 * time.Second)
	sum := top.Registry().Get("mid/tiernode_sum")
	if i, _ := sum.MetricIndex("cnt"); sum.U64(i) != 42 {
		t.Errorf("sum after re-fold = %d, want 42", sum.U64(i))
	}
	if st := mid.Stats(); st.ReducedPublishes == 0 {
		t.Error("mid stats report no reduced publishes")
	}
}

// TestTierJoinLeavePropagation pins directory-generation propagation at a
// tier boundary: a set joining a leaf appears at the mid and then the top
// within one pull interval per hop, and disappears the same way on leave.
func TestTierJoinLeavePropagation(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(72000, 0))
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}
	leaf := leafRegistry(t, 1, 7, sch.Now())
	if _, err := fac.Listen("n1", transport.NewServer(leaf)); err != nil {
		t.Fatal(err)
	}

	mid := tierAgg(t, "mid", sch, fac, []string{"n1"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=n1
updtr_start name=u
`)
	defer mid.Stop()
	if _, err := mid.Listen("mem", "mid"); err != nil {
		t.Fatal(err)
	}
	top := tierAgg(t, "top", sch, fac, []string{"mid"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=mid
updtr_start name=u
`)
	defer top.Stop()

	sch.AdvanceBy(4 * time.Second)
	if top.Registry().Get("n1/node00") == nil {
		t.Fatal("initial set did not reach the top tier")
	}

	// Join: a new set appears on the leaf.
	sch2 := metric.NewSchema("tiernode")
	sch2.MustAddMetric("cnt", metric.TypeU64)
	sch2.MustAddMetric("load", metric.TypeD64)
	joined, err := metric.New("node99", sch2)
	if err != nil {
		t.Fatal(err)
	}
	joined.BeginTransaction()
	joined.SetU64(0, 9000)
	joined.EndTransaction(sch.Now())
	if err := leaf.Add(joined); err != nil {
		t.Fatal(err)
	}
	// One interval to reach the mid's directory (+1 for its lookup), one
	// more hop's worth for the top.
	sch.AdvanceBy(2 * time.Second)
	if mid.Registry().Get("n1/node99") == nil {
		t.Fatal("joined set not at mid within one pull interval of its lookup")
	}
	sch.AdvanceBy(2 * time.Second)
	mir := top.Registry().Get("n1/node99")
	if mir == nil {
		t.Fatal("joined set did not propagate to top")
	}
	if i, _ := mir.MetricIndex("cnt"); mir.U64(i) != 9000 {
		t.Errorf("joined value at top = %d", mir.U64(i))
	}

	// Leave: the set is removed from the leaf; each tier releases its
	// mirror on the next directory-generation poll.
	if s := leaf.Remove("node99"); s == nil {
		t.Fatal("leaf remove failed")
	}
	sch.AdvanceBy(2 * time.Second)
	if mid.Registry().Get("n1/node99") != nil {
		t.Fatal("left set still at mid")
	}
	sch.AdvanceBy(2 * time.Second)
	if top.Registry().Get("n1/node99") != nil {
		t.Fatal("left set still at top")
	}
	// The survivor keeps flowing.
	if top.Registry().Get("n1/node00") == nil {
		t.Fatal("surviving set lost during leave propagation")
	}
}

// TestAdvertiseTierBoundary walks an advertised (reversed-connection) leaf
// across a tier boundary over real TCP: the leaf dials the mid, the top
// pulls the mid, and the leaf's set appears at — then cleanly leaves —
// the top tier.
func TestAdvertiseTierBoundary(t *testing.T) {
	mid, err := New(Options{Name: "mid", Transports: []transport.Factory{transport.SockFactory{}}})
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Stop()
	peerAddr, err := mid.ListenForProducers("sock", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	upAddr, err := mid.Listen("sock", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mid.ExecScript(`
prdcr_add name=n1 type=passive
prdcr_start name=n1
updtr_add name=u interval=20000
updtr_prdcr_add name=u prdcr=n1
updtr_start name=u
`); err != nil {
		t.Fatal(err)
	}

	top, err := New(Options{Name: "top", Transports: []transport.Factory{transport.SockFactory{}}})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Stop()
	if _, err := top.ExecScript(`
prdcr_add name=mid xprt=sock host=` + upAddr + ` interval=20000
prdcr_start name=mid
updtr_add name=u interval=20000
updtr_prdcr_add name=u prdcr=mid
updtr_start name=u
`); err != nil {
		t.Fatal(err)
	}

	leaf, err := New(Options{
		Name: "n1", FS: procfs.NewSimFS(procfs.NewNodeState("n1", 2, 1<<20)),
		Transports: []transport.Factory{transport.SockFactory{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Stop()
	if _, err := leaf.ExecScript(`
load name=meminfo
start name=meminfo interval=10000
advertise xprt=sock host=` + peerAddr + ` interval=50000`); err != nil {
		t.Fatal(err)
	}

	waitUntil(t, 10*time.Second, func() bool {
		return top.Registry().Get("n1/meminfo") != nil
	}, "advertised set to reach the top tier")
	if got := mid.TierRole(); got != "mid" {
		t.Errorf("mid role = %q", got)
	}

	// Leave: the sampler stops and its set leaves the leaf's directory;
	// both tiers must release their mirrors.
	leaf.Sampler("meminfo").Stop()
	if s := leaf.Registry().Remove("n1/meminfo"); s == nil {
		t.Fatal("leaf set remove failed")
	}
	waitUntil(t, 10*time.Second, func() bool {
		return mid.Registry().Get("n1/meminfo") == nil
	}, "left set to clear the mid tier")
	waitUntil(t, 10*time.Second, func() bool {
		return top.Registry().Get("n1/meminfo") == nil
	}, "left set to clear the top tier")
}

// TestTierMidFailoverNoLoss kills a mid-tier aggregator and fails the top
// tier over to a standby mid pulling the same leaves: after the watchdog
// protocol (deregister the dead mid, then activate the standby) data
// resumes, and nothing is lost beyond the declared overflow policy —
// with overflow=block and an adequate queue, zero dropped rows.
func TestTierMidFailoverNoLoss(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(73000, 0))
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}
	leaf := leafRegistry(t, 4, 1000, sch.Now())
	if _, err := fac.Listen("n1", transport.NewServer(leaf)); err != nil {
		t.Fatal(err)
	}

	mkMid := func(name string) *Daemon {
		d := tierAgg(t, name, sch, fac, []string{"n1"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=n1
updtr_start name=u
`)
		if _, err := d.Listen("mem", name); err != nil {
			t.Fatal(err)
		}
		return d
	}
	midA := mkMid("mid-a")
	defer midA.Stop()
	midB := mkMid("mid-b")
	defer midB.Stop()

	top, err := New(Options{Name: "top", Scheduler: sch, Transports: []transport.Factory{fac}})
	if err != nil {
		t.Fatal(err)
	}
	defer top.Stop()
	csv := t.TempDir() + "/tier.csv"
	if _, err := top.ExecScript(`
prdcr_add name=mid-a xprt=mem host=mid-a interval=1s
prdcr_start name=mid-a
prdcr_add name=mid-b xprt=mem host=mid-b interval=1s standby=1
prdcr_start name=mid-b
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=mid-a
updtr_prdcr_add name=u prdcr=mid-b
updtr_start name=u
strgp_add name=s plugin=store_csv schema=tiernode container=` + csv + ` overflow=block queue=4096
strgp_start name=s
`); err != nil {
		t.Fatal(err)
	}

	tick := uint64(1000)
	advance := func(secs int) {
		for i := 0; i < secs; i++ {
			tick += 10
			bumpRegistry(leaf, tick, sch.Now())
			sch.AdvanceBy(time.Second)
		}
	}

	advance(5)
	if top.Stats().UpdatesFresh == 0 {
		t.Fatal("no data through mid-a before the kill")
	}

	// Kill the primary mid; the external watchdog deregisters it from the
	// updater, lets the prune release its mirrors, then activates the
	// standby (see docs/TOPOLOGY.md failover ordering).
	midA.Stop()
	u := top.Updater("u")
	u.RemoveProducer("mid-a")
	advance(1)
	top.Producer("mid-b").Activate()
	advance(5)

	freshAtTakeover := u.fresh.Load()
	advance(3)
	if got := u.fresh.Load(); got <= freshAtTakeover {
		t.Fatalf("no fresh updates after standby takeover: %d -> %d", freshAtTakeover, got)
	}
	// The takeover swapped mirrors under the same re-export names; the
	// directory must show mid-b's copies, carrying current leaf values.
	mir := top.Registry().Get("n1/node00")
	if mir == nil {
		t.Fatal("set missing at top after takeover")
	}
	if i, _ := mir.MetricIndex("cnt"); mir.U64(i) != tick {
		t.Errorf("top value after takeover = %d, want %d", mir.U64(i), tick)
	}
	st := top.Stats()
	if st.DroppedRows != 0 {
		t.Errorf("dropped rows = %d, want 0 under overflow=block", st.DroppedRows)
	}
	if st.StoredRows != st.UpdatesFresh {
		t.Errorf("stored %d rows for %d fresh updates: samples lost outside the overflow policy",
			st.StoredRows, st.UpdatesFresh)
	}
}
