package ldmsd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"goldms/internal/metric"
	"goldms/internal/sched"
	"goldms/internal/store"
	"goldms/internal/transport"
)

// pipeStore is an in-memory store plugin for pipeline tests. It
// implements only the base Store interface (no StoreBatch), so a
// configured per-row delay models a slow legacy backend going through the
// Batch fallback loop. Options:
//
//	delay=<dur>     sleep per stored row
//	fail_after=<n>  return an error on row n+1 and every row after
//
// Instances register themselves in pipeStores by Config.Path so tests can
// inspect what the plugin actually received.
type pipeStore struct {
	mu        sync.Mutex
	delay     time.Duration
	failAfter int
	rows      []metric.Row // deep-copied: queue rows are recycled after the call
	flushes   int
	closed    bool
}

var pipeStores sync.Map // path -> *pipeStore

func init() {
	store.Register("store_testpipe", func(cfg store.Config) (store.Store, error) {
		ps := &pipeStore{failAfter: -1}
		if v := cfg.Options["delay"]; v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				return nil, err
			}
			ps.delay = d
		}
		if v := cfg.Options["fail_after"]; v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, err
			}
			ps.failAfter = n
		}
		pipeStores.Store(cfg.Path, ps)
		return ps, nil
	})
}

func (ps *pipeStore) Name() string { return "store_testpipe" }

func (ps *pipeStore) Store(row metric.Row) error {
	if ps.delay > 0 {
		time.Sleep(ps.delay)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.failAfter >= 0 && len(ps.rows) >= ps.failAfter {
		return fmt.Errorf("testpipe: refusing row %d", len(ps.rows))
	}
	cp := row
	cp.Values = append([]metric.Value(nil), row.Values...)
	ps.rows = append(ps.rows, cp)
	return nil
}

func (ps *pipeStore) Flush() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.flushes++
	return nil
}

func (ps *pipeStore) Close() error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.closed = true
	return nil
}

func (ps *pipeStore) BytesWritten() int64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return int64(len(ps.rows))
}

func (ps *pipeStore) stored() []metric.Row {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return append([]metric.Row(nil), ps.rows...)
}

// getPipeStore fetches the plugin instance a policy created for path.
func getPipeStore(t *testing.T, path string) *pipeStore {
	t.Helper()
	v, ok := pipeStores.Load(path)
	if !ok {
		t.Fatalf("no pipeStore instance for %s", path)
	}
	return v.(*pipeStore)
}

// benchSet builds one consistent two-metric set of the "bench" schema.
func benchSet(t testing.TB, name string, seed uint64) *metric.Set {
	t.Helper()
	sch := metric.NewSchema("bench")
	sch.MustAddMetric("a", metric.TypeU64)
	sch.MustAddMetric("b", metric.TypeU64)
	set, err := metric.New(name, sch)
	if err != nil {
		t.Fatal(err)
	}
	set.BeginTransaction()
	set.SetU64(0, seed)
	set.SetU64(1, 2*seed)
	set.EndTransaction(time.Unix(int64(1000+seed), 0))
	return set
}

// realDaemon builds a real-clock daemon (store pool active) with no
// network plumbing, for driving storeSet directly.
func realDaemon(t *testing.T, workers int) *Daemon {
	t.Helper()
	d, err := New(Options{Name: "store-test", StoreWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

// TestStorePipelineConcurrentEnqueue hammers one policy from many
// goroutines (as concurrent updater workers do) while the flush ticker
// fires, then checks row conservation: every sample is either stored or
// counted as dropped. Run under -race this exercises the enqueue/drain/
// flush locking.
func TestStorePipelineConcurrentEnqueue(t *testing.T) {
	d := realDaemon(t, 2)
	path := filepath.Join(t.TempDir(), "concurrent")
	sp, err := d.AddStoragePolicy("s", "store_testpipe", "bench", path,
		map[string]string{"flush_interval": "2ms"})
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			set := benchSet(t, fmt.Sprintf("n%d/bench", w), uint64(w))
			for i := 0; i < perWriter; i++ {
				set.BeginTransaction()
				set.SetU64(0, uint64(i))
				set.EndTransaction(time.Unix(int64(i), 0))
				d.storeSet(set)
			}
		}(w)
	}
	wg.Wait()
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}

	c := sp.Counters()
	if c.Enqueued != writers*perWriter {
		t.Errorf("enqueued = %d want %d", c.Enqueued, writers*perWriter)
	}
	if c.Rows+c.Dropped != c.Enqueued {
		t.Errorf("rows %d + dropped %d != enqueued %d", c.Rows, c.Dropped, c.Enqueued)
	}
	if c.Rows == 0 || c.Batches == 0 {
		t.Errorf("nothing stored: %+v", c)
	}
	ps := getPipeStore(t, path)
	if got := int64(len(ps.stored())); got != c.Rows {
		t.Errorf("plugin saw %d rows, counters say %d", got, c.Rows)
	}
	if sp.Err() != nil {
		t.Errorf("policy failed: %v", sp.Err())
	}
}

// TestStorePipelineDropOldest checks the default overflow policy: with a
// slow plugin and a tiny ring, enqueues never stall the caller (the pull
// path) and the overflow is counted, not silently lost.
func TestStorePipelineDropOldest(t *testing.T) {
	d := realDaemon(t, 1)
	path := filepath.Join(t.TempDir(), "dropoldest")
	sp, err := d.AddStoragePolicy("s", "store_testpipe", "bench", path,
		map[string]string{"queue": "8", "batch": "4", "delay": "20ms", "flush_interval": "0"})
	if err != nil {
		t.Fatal(err)
	}

	set := benchSet(t, "n1/bench", 1)
	const rows = 100
	start := time.Now()
	for i := 0; i < rows; i++ {
		set.BeginTransaction()
		set.SetU64(0, uint64(i))
		set.EndTransaction(time.Unix(int64(i), 0))
		d.storeSet(set)
	}
	elapsed := time.Since(start)
	// 100 rows at 20 ms each would take 2 s if enqueue waited for the
	// store; drop-oldest must return immediately.
	if elapsed > time.Second {
		t.Errorf("enqueue of %d rows stalled for %v with a slow store", rows, elapsed)
	}

	sp.Flush()
	c := sp.Counters()
	if c.Dropped == 0 {
		t.Error("slow store overflowed an 8-row ring without dropping")
	}
	if c.Rows+c.Dropped != rows {
		t.Errorf("rows %d + dropped %d != %d", c.Rows, c.Dropped, rows)
	}
}

// TestStorePipelineBlockLossless checks overflow=block: every row lands,
// in order, even through a tiny ring.
func TestStorePipelineBlockLossless(t *testing.T) {
	d := realDaemon(t, 1)
	path := filepath.Join(t.TempDir(), "block")
	sp, err := d.AddStoragePolicy("s", "store_testpipe", "bench", path,
		map[string]string{"queue": "4", "batch": "2", "overflow": "block", "delay": "100us"})
	if err != nil {
		t.Fatal(err)
	}

	set := benchSet(t, "n1/bench", 1)
	const rows = 200
	for i := 0; i < rows; i++ {
		set.BeginTransaction()
		set.SetU64(0, uint64(i))
		set.EndTransaction(time.Unix(int64(i), 0))
		d.storeSet(set)
	}
	sp.Flush()

	c := sp.Counters()
	if c.Dropped != 0 {
		t.Errorf("block mode dropped %d rows", c.Dropped)
	}
	if c.Rows != rows {
		t.Errorf("rows = %d want %d", c.Rows, rows)
	}
	got := getPipeStore(t, path).stored()
	for i, r := range got {
		if r.Values[0].U64() != uint64(i) {
			t.Fatalf("row %d out of order: value %d", i, r.Values[0].U64())
		}
	}
}

// TestStorePipelineStickyFailure covers the failure surface: a plugin
// error disables the policy, later samples are dropped and counted,
// strgp_status reports state=failed with the error, and the gateway's
// /healthz degrades to 503.
func TestStorePipelineStickyFailure(t *testing.T) {
	d := failDaemon(t)
	path := filepath.Join(t.TempDir(), "failing")
	sp, err := d.AddStoragePolicy("s1", "store_testpipe", "bench", path,
		map[string]string{"fail_after": "0"})
	if err != nil {
		t.Fatal(err)
	}

	set := benchSet(t, "n1/bench", 1)
	for i := 0; i < 10; i++ {
		set.BeginTransaction()
		set.SetU64(0, uint64(i))
		set.EndTransaction(time.Unix(int64(i), 0))
		d.storeSet(set)
	}
	waitUntil(t, 5*time.Second, func() bool { return sp.Err() != nil }, "policy to fail")

	// Every sample after the failure is dropped and counted.
	before := sp.Dropped()
	d.storeSet(set)
	if got := sp.Dropped(); got != before+1 {
		t.Errorf("dropped after failure = %d want %d", got, before+1)
	}

	out, err := d.Exec("strgp_status")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "state=failed") || !strings.Contains(out, "refusing row") {
		t.Errorf("strgp_status does not surface the failure: %q", out)
	}
	if !strings.Contains(out, "dropped=") {
		t.Errorf("strgp_status missing drop counter: %q", out)
	}

	addr, err := d.Exec("http_listen addr=127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, body := httpGet(t, "http://"+addr+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("healthz status = %d want 503: %s", code, body)
	}
	var health struct {
		Status       string   `json:"status"`
		FailedStores []string `json:"failed_stores"`
		Stores       []struct {
			Policy  string `json:"policy"`
			Failed  bool   `json:"failed"`
			Error   string `json:"error"`
			Dropped int64  `json:"dropped"`
		} `json:"stores"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz: %v: %s", err, body)
	}
	if health.Status != "degraded" || len(health.FailedStores) != 1 || health.FailedStores[0] != "s1" {
		t.Errorf("healthz = %s", body)
	}
	if len(health.Stores) != 1 || !health.Stores[0].Failed || health.Stores[0].Error == "" || health.Stores[0].Dropped == 0 {
		t.Errorf("store health = %s", body)
	}
}

// failDaemon builds a real-clock daemon for failure-surface tests.
func failDaemon(t *testing.T) *Daemon {
	t.Helper()
	d, err := New(Options{Name: "fail-test", Transports: []transport.Factory{transport.MemFactory{Net: transport.NewNetwork()}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d
}

// TestStorePipelineDrainOnStop: rows sitting in the queue when the daemon
// stops must reach the plugin file, not vanish.
func TestStorePipelineDrainOnStop(t *testing.T) {
	d, err := New(Options{Name: "drain-test", StoreWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(t.TempDir(), "drain.csv")
	if _, err := d.AddStoragePolicy("s", "store_csv", "bench", csvPath,
		map[string]string{"flush_interval": "1h"}); err != nil {
		t.Fatal(err)
	}

	set := benchSet(t, "n1/bench", 1)
	const rows = 50
	for i := 0; i < rows; i++ {
		set.BeginTransaction()
		set.SetU64(0, uint64(i))
		set.EndTransaction(time.Unix(int64(i), 0))
		d.storeSet(set)
	}
	d.Stop()

	b := readFile(t, csvPath)
	lines := strings.Split(strings.TrimSpace(b), "\n")
	if got := len(lines) - 1; got != rows { // minus header
		t.Errorf("CSV has %d data rows after Stop, want %d", got, rows)
	}
}

// TestStorePipelineStatusRunning checks the strgp_status line for a
// healthy policy carries the queue/batch configuration and counters.
func TestStorePipelineStatusRunning(t *testing.T) {
	d := realDaemon(t, 1)
	path := filepath.Join(t.TempDir(), "status")
	sp, err := d.AddStoragePolicy("s1", "store_testpipe", "bench", path,
		map[string]string{"queue": "32", "batch": "8", "overflow": "block"})
	if err != nil {
		t.Fatal(err)
	}
	set := benchSet(t, "n1/bench", 1)
	d.storeSet(set)
	sp.Flush()

	out, err := d.Exec("strgp_status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"name=s1", "plugin=store_testpipe", "schema=bench", "state=running",
		"rows=1", "enqueued=1", "dropped=0", "queue=0/32", "batch_max=8", "overflow=block",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("strgp_status missing %q: %q", want, out)
		}
	}
}

// TestStorePipelineVirtualClockInline: under a virtual scheduler there is
// no store pool, so the queue drains synchronously on enqueue and stored
// counters are exact immediately after AdvanceBy (simulation experiments
// depend on this determinism).
func TestStorePipelineVirtualClockInline(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(0, 0))
	d, err := New(Options{Name: "virt", Scheduler: sch})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	path := filepath.Join(t.TempDir(), "virt")
	sp, err := d.AddStoragePolicy("s", "store_testpipe", "bench", path, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := benchSet(t, "n1/bench", 1)
	for i := 0; i < 5; i++ {
		set.BeginTransaction()
		set.SetU64(0, uint64(i))
		set.EndTransaction(time.Unix(int64(i), 0))
		d.storeSet(set)
		// Inline drain: the row is in the plugin before storeSet returns.
		if got := sp.Rows(); got != int64(i+1) {
			t.Fatalf("after sample %d: rows = %d (virtual clock must drain inline)", i, got)
		}
	}
}
