package ldmsd

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/metric"
	"goldms/internal/obs"
	"goldms/internal/sched"
	"goldms/internal/store"
)

// StoragePolicy routes fresh consistent samples of one schema to a store
// plugin through an asynchronous bounded queue, so storage latency never
// back-pressures the pull path (the paper runs store plugins on
// aggregators with a dedicated flush pool for exactly this reason).
//
// The pull path's storeSet call is a cheap enqueue: a pooled value-slice
// copy of the sample pushed onto a per-policy ring. A drain job on the
// daemon's store worker pool takes rows off the ring in batches and hands
// them to the plugin via store.Batch (one lock acquisition and one
// buffered write per batch for plugins implementing BatchStore). A flush
// ticker per policy amortizes fsync cost across batches.
//
// Overflow is explicit: with overflow=drop-oldest (the default) a full
// ring drops its oldest row and the enqueue never blocks; with
// overflow=block the enqueue waits for the drain worker, trading pull
// latency for losslessness.
//
// Under a virtual clock (simulated experiments) there is no store pool
// and the queue drains inline on enqueue, keeping experiments synchronous
// and deterministic.
//
// The store instance is created lazily on the first matching sample, when
// the column set is known. Storage may be specified at {producer, metric
// name} granularity in LDMS; here the typical use case — per metric set
// schema — is implemented, with an optional metric filter.
type StoragePolicy struct {
	d       *Daemon
	name    string
	plugin  string
	schema  string
	path    string
	options map[string]string

	queueCap   int
	batchMax   int
	flushEvery time.Duration
	dropOldest bool

	mu         sync.Mutex
	notFull    sync.Cond // overflow=block enqueuers wait here
	idle       sync.Cond // broadcast when a drain run finishes
	ring       []metric.Row
	head, n    int
	draining   bool
	st         store.Store
	fail       error
	closed     bool
	flushTask  *sched.Task
	metricSel  map[string]bool // nil = all metrics
	dropWarned bool            // first overflow drop has been journaled

	// Column layout, fixed at the first matching sample. names is shared
	// by every queued Row; selIdx maps row columns to set indices when a
	// metric filter is active (nil = identity).
	names  []string
	types  []metric.Type
	selIdx []int

	// Free lists reused across rows and batches: value slices cycle
	// enqueue → drain → free, the batch scratch belongs to the single
	// drain run, scratch is the full-cardinality read buffer for
	// filtered policies (all guarded by mu).
	free     [][]metric.Value
	batchBuf []metric.Row
	scratch  []metric.Value
	card     int

	rows       atomic.Int64 // rows the plugin accepted
	enqueued   atomic.Int64 // rows pushed onto the queue
	dropped    atomic.Int64 // rows lost to overflow or a failed policy
	batches    atomic.Int64 // StoreBatch/Batch calls issued
	storeNanos atomic.Int64 // cumulative time inside store writes
	flushes    atomic.Int64
	flushNanos atomic.Int64 // cumulative time inside store.Flush
}

// Storage pipeline defaults; override per policy with
// strgp_add queue= batch= flush_interval= overflow=.
const (
	defaultStoreQueue = 1024
	defaultStoreBatch = 256
	defaultStoreFlush = time.Second
)

// StorageCounters is a snapshot of a policy's write activity for the
// query gateway's self-metrics and strgp_status.
type StorageCounters struct {
	Rows       int64 // rows the plugin accepted
	Enqueued   int64 // rows pushed onto the queue
	Dropped    int64 // rows lost to overflow or a failed policy
	Batches    int64 // batched plugin calls
	QueueDepth int   // rows waiting in the ring right now
	QueueCap   int
	StoreNanos int64
	Flushes    int64
	FlushNanos int64
	Failed     bool // sticky error disabled the policy
}

// Counters snapshots the policy's write counters.
func (sp *StoragePolicy) Counters() StorageCounters {
	sp.mu.Lock()
	depth := sp.n
	failed := sp.fail != nil
	sp.mu.Unlock()
	return StorageCounters{
		Rows:       sp.rows.Load(),
		Enqueued:   sp.enqueued.Load(),
		Dropped:    sp.dropped.Load(),
		Batches:    sp.batches.Load(),
		QueueDepth: depth,
		QueueCap:   sp.queueCap,
		StoreNanos: sp.storeNanos.Load(),
		Flushes:    sp.flushes.Load(),
		FlushNanos: sp.flushNanos.Load(),
		Failed:     failed,
	}
}

// Name returns the policy name.
func (sp *StoragePolicy) Name() string { return sp.name }

// Schema returns the schema this policy stores.
func (sp *StoragePolicy) Schema() string { return sp.schema }

// Plugin returns the store plugin name.
func (sp *StoragePolicy) Plugin() string { return sp.plugin }

// AddStoragePolicy registers a storage policy: samples of the given schema
// are written with the named store plugin at path. The pipeline knobs are
// read from options (and not passed on to the plugin):
//
//	queue=<n>           ring capacity in rows (default 1024)
//	batch=<n>           max rows per plugin call (default 256)
//	flush_interval=<d>  periodic flush cadence; 0 disables (default 1s)
//	overflow=<policy>   drop-oldest (default) or block
func (d *Daemon) AddStoragePolicy(name, plugin, schema, path string, options map[string]string) (*StoragePolicy, error) {
	if schema == "" {
		return nil, fmt.Errorf("ldmsd %s: storage policy %q needs a schema", d.name, name)
	}
	sp := &StoragePolicy{
		d: d, name: name, plugin: plugin, schema: schema, path: path,
		options:    options,
		queueCap:   defaultStoreQueue,
		batchMax:   defaultStoreBatch,
		flushEvery: defaultStoreFlush,
		dropOldest: true,
	}
	if v, ok := popOption(options, "queue"); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("ldmsd %s: storage policy %q: bad queue %q", d.name, name, v)
		}
		sp.queueCap = n
	}
	if v, ok := popOption(options, "batch"); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("ldmsd %s: storage policy %q: bad batch %q", d.name, name, v)
		}
		sp.batchMax = n
	}
	if v, ok := popOption(options, "flush_interval"); ok {
		iv, err := parseInterval(v)
		if err != nil || iv < 0 {
			return nil, fmt.Errorf("ldmsd %s: storage policy %q: bad flush_interval %q", d.name, name, v)
		}
		sp.flushEvery = iv
	}
	if v, ok := popOption(options, "overflow"); ok {
		switch v {
		case "drop-oldest":
			sp.dropOldest = true
		case "block":
			sp.dropOldest = false
		default:
			return nil, fmt.Errorf("ldmsd %s: storage policy %q: bad overflow %q (want drop-oldest or block)", d.name, name, v)
		}
	}
	sp.notFull.L = &sp.mu
	sp.idle.L = &sp.mu
	sp.ring = make([]metric.Row, sp.queueCap)

	d.mu.Lock()
	if _, dup := d.strgps[name]; dup {
		d.mu.Unlock()
		return nil, fmt.Errorf("ldmsd %s: storage policy %q already exists", d.name, name)
	}
	d.strgps[name] = sp
	d.publishStrgpsLocked()
	d.mu.Unlock()

	// The flush ticker amortizes fsync across batches (real clock only:
	// virtual-time runs store synchronously and flush on close, so
	// simulated days don't pay a real fsync per simulated second).
	if sp.flushEvery > 0 && d.storePool() != nil {
		sp.flushTask = d.sch.Every(sp.flushEvery, 0, false, func(time.Time) { sp.flushTick() })
	}
	return sp, nil
}

// popOption removes and returns a pipeline option so it is not passed to
// the store plugin.
func popOption(options map[string]string, key string) (string, bool) {
	v, ok := options[key]
	if ok {
		delete(options, key)
	}
	return v, ok
}

// StoragePolicy returns the named policy, or nil.
func (d *Daemon) StoragePolicy(name string) *StoragePolicy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.strgps[name]
}

// SelectMetrics restricts the stored columns to the named metrics. It has
// no effect once the first sample has fixed the column layout.
func (sp *StoragePolicy) SelectMetrics(names []string) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.metricSel = make(map[string]bool, len(names))
	for _, n := range names {
		sp.metricSel[n] = true
	}
}

// Store returns the underlying store plugin (nil until the first sample).
func (sp *StoragePolicy) Store() store.Store {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.st
}

// storeSet fans a fresh consistent sample out to the gateway's recent
// window (when one is running) and to every matching storage policy. Both
// taps are cheap on the pull path: one atomic load each, and the policy
// side is an enqueue, not a store write.
func (d *Daemon) storeSet(set *metric.Set) {
	windowed := false
	if w := d.window.Load(); w != nil {
		w.Observe(set)
		windowed = true
	}
	enqueued := false
	if policies := d.strgpList.Load(); policies != nil {
		for _, sp := range *policies {
			if sp.schema == set.SchemaName() {
				sp.enqueue(set)
				enqueued = true
			}
		}
	}
	// Stamp the window/store stages on the sample's hop chain. Samples that
	// reach neither tap pay nothing here.
	if windowed || enqueued {
		d.trace.stored(set, windowed, enqueued)
	}
}

// publishStrgpsLocked refreshes the lock-free policy list the pull path
// reads. Caller holds d.mu.
func (d *Daemon) publishStrgpsLocked() {
	list := mapValues(d.strgps)
	d.strgpList.Store(&list)
}

// enqueue copies one sample onto the policy's ring. Value slices come
// from a free list recycled by the drain worker; the column-name slice is
// shared across all rows of the policy. Called concurrently by updater
// pull goroutines.
func (sp *StoragePolicy) enqueue(set *metric.Set) {
	sp.mu.Lock()
	if sp.closed || sp.fail != nil {
		sp.dropped.Add(1)
		sp.mu.Unlock()
		return
	}
	if sp.names == nil {
		sp.initColumnsLocked(set)
	}
	vals := sp.getValsLocked()
	var ts time.Time
	if sp.selIdx == nil {
		ts, _, _, _ = set.ReadValues(vals[:sp.card])
	} else {
		if len(sp.scratch) < sp.card {
			sp.scratch = make([]metric.Value, sp.card)
		}
		ts, _, _, _ = set.ReadValues(sp.scratch[:sp.card])
		for j, i := range sp.selIdx {
			vals[j] = sp.scratch[i]
		}
	}
	row := metric.Row{
		Time:     ts,
		Instance: set.Name(),
		Schema:   sp.schema,
		CompID:   set.CompID(0),
		Names:    sp.names,
		Values:   vals[:len(sp.names)],
	}
	for sp.n == sp.queueCap {
		if sp.dropOldest {
			old := sp.ring[sp.head]
			sp.ring[sp.head] = metric.Row{}
			sp.head = (sp.head + 1) % sp.queueCap
			sp.n--
			sp.dropped.Add(1)
			sp.putValsLocked(old.Values)
			if !sp.dropWarned {
				// Journal the first overflow only; a persistently slow
				// backend would otherwise flood the ring. The dropped
				// counter carries the running total.
				sp.dropWarned = true
				sp.d.journal.Append(obs.SevWarn, obs.CompStore, sp.name, 0,
					"store queue overflow: dropping oldest rows")
			}
		} else {
			sp.notFull.Wait()
			if sp.closed || sp.fail != nil {
				sp.putValsLocked(row.Values)
				sp.dropped.Add(1)
				sp.mu.Unlock()
				return
			}
		}
	}
	sp.ring[(sp.head+sp.n)%sp.queueCap] = row
	sp.n++
	sp.enqueued.Add(1)
	kick := !sp.draining
	if kick {
		sp.draining = true
	}
	sp.mu.Unlock()
	if kick {
		sp.submitDrain()
	}
}

// initColumnsLocked fixes the policy's column layout from the first
// matching sample, applying the metric filter. Caller holds sp.mu.
func (sp *StoragePolicy) initColumnsLocked(set *metric.Set) {
	card := set.Card()
	sp.card = card
	names := make([]string, 0, card)
	types := make([]metric.Type, 0, card)
	var sel []int
	for i := 0; i < card; i++ {
		n := set.MetricName(i)
		if sp.metricSel != nil && !sp.metricSel[n] {
			continue
		}
		names = append(names, n)
		types = append(types, set.MetricType(i))
		sel = append(sel, i)
	}
	sp.names = names
	sp.types = types
	if len(sel) != card {
		sp.selIdx = sel
	}
}

// getValsLocked pops a value slice off the free list (capacity = full set
// cardinality). Caller holds sp.mu.
func (sp *StoragePolicy) getValsLocked() []metric.Value {
	if n := len(sp.free); n > 0 {
		v := sp.free[n-1]
		sp.free = sp.free[:n-1]
		return v
	}
	return make([]metric.Value, sp.card)
}

// putValsLocked recycles a row's value slice. Caller holds sp.mu.
func (sp *StoragePolicy) putValsLocked(vals []metric.Value) {
	if vals == nil {
		return
	}
	sp.free = append(sp.free, vals[:cap(vals)])
}

// submitDrain schedules a drain run on the daemon's store pool, or runs
// it inline when there is none (virtual clock) or the pool is stopping.
func (sp *StoragePolicy) submitDrain() {
	if pool := sp.d.storePool(); pool != nil && pool.Submit(sp.drain) {
		return
	}
	sp.drain()
}

// drain empties the ring in batches of at most batchMax rows, handing
// each batch to the plugin outside the policy lock. Exactly one drain
// runs at a time (the draining flag).
func (sp *StoragePolicy) drain() {
	sp.mu.Lock()
	for sp.n > 0 && sp.fail == nil {
		if sp.st == nil {
			if err := sp.openStoreLocked(); err != nil {
				sp.failLocked(err)
				break
			}
		}
		k := sp.n
		if k > sp.batchMax {
			k = sp.batchMax
		}
		batch := sp.batchBuf[:0]
		for i := 0; i < k; i++ {
			j := (sp.head + i) % sp.queueCap
			batch = append(batch, sp.ring[j])
			sp.ring[j] = metric.Row{}
		}
		sp.batchBuf = batch
		sp.head = (sp.head + k) % sp.queueCap
		sp.n -= k
		sp.notFull.Broadcast()
		st := sp.st
		sp.mu.Unlock()

		start := sp.d.sch.Now()
		err := store.Batch(st, batch)
		sp.storeNanos.Add(sp.d.sch.Now().Sub(start).Nanoseconds())

		if err == nil {
			// Store-hop latency: sample age when its row reached the
			// plugin. One scheduler read per batch, one atomic increment
			// per row.
			now := sp.d.sch.Now()
			for i := range batch {
				if !batch[i].Time.IsZero() {
					sp.d.lat.Store.Record(now.Sub(batch[i].Time))
				}
			}
		}

		sp.mu.Lock()
		for i := range batch {
			sp.putValsLocked(batch[i].Values)
			batch[i] = metric.Row{}
		}
		if err != nil {
			sp.dropped.Add(int64(len(batch)))
			sp.failLocked(err)
			break
		}
		sp.rows.Add(int64(len(batch)))
		sp.batches.Add(1)
	}
	sp.draining = false
	sp.idle.Broadcast()
	sp.mu.Unlock()
}

// openStoreLocked instantiates the plugin on the first drained sample.
// Caller holds sp.mu.
func (sp *StoragePolicy) openStoreLocked() error {
	st, err := store.New(sp.plugin, store.Config{
		Path:    sp.path,
		Schema:  sp.schema,
		Names:   sp.names,
		Types:   sp.types,
		Options: sp.options,
	})
	if err != nil {
		return err
	}
	sp.st = st
	return nil
}

// failLocked records a sticky plugin error and discards the queue: a
// failed policy drops rows (counted) instead of blocking collection.
// Caller holds sp.mu.
func (sp *StoragePolicy) failLocked(err error) {
	sp.fail = err
	sp.d.journal.Appendf(obs.SevError, obs.CompStore, sp.name, 0,
		"store plugin %s failed, policy disabled: %v", sp.plugin, err)
	sp.dropped.Add(int64(sp.n))
	for i := 0; i < sp.n; i++ {
		j := (sp.head + i) % sp.queueCap
		sp.putValsLocked(sp.ring[j].Values)
		sp.ring[j] = metric.Row{}
	}
	sp.head, sp.n = 0, 0
	sp.notFull.Broadcast()
}

// flushTick is the periodic flush: plugin buffers and fsync only, no
// queue drain (the drain worker owns that), skipped while the store pool
// has no free worker so a slow backend cannot pile up flush jobs.
func (sp *StoragePolicy) flushTick() {
	pool := sp.d.storePool()
	if pool == nil {
		return
	}
	pool.TrySubmit(func() {
		sp.mu.Lock()
		st := sp.st
		sp.mu.Unlock()
		if st == nil {
			return
		}
		start := sp.d.sch.Now()
		if err := st.Flush(); err == nil {
			sp.flushes.Add(1)
			sp.flushNanos.Add(sp.d.sch.Now().Sub(start).Nanoseconds())
		}
	})
}

// Err returns the sticky error that disabled the policy, if any.
func (sp *StoragePolicy) Err() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.fail
}

// Rows returns the number of samples written.
func (sp *StoragePolicy) Rows() int64 { return sp.rows.Load() }

// Dropped returns the number of samples lost to overflow or failure.
func (sp *StoragePolicy) Dropped() int64 { return sp.dropped.Load() }

// settleLocked waits until the queue is empty and no drain is running,
// draining inline if no worker picks the queue up. Caller holds sp.mu;
// returns with sp.mu held.
func (sp *StoragePolicy) settleLocked() {
	for {
		if sp.draining {
			sp.idle.Wait()
			continue
		}
		if sp.n > 0 && sp.fail == nil {
			sp.draining = true
			sp.mu.Unlock()
			sp.drain()
			sp.mu.Lock()
			continue
		}
		return
	}
}

// Flush drains everything enqueued so far and forces it to stable
// storage, so "Flush then read the container" keeps its synchronous
// meaning for tests and analysis tooling.
func (sp *StoragePolicy) Flush() error {
	sp.mu.Lock()
	//ldms:lockorder settleLocked releases sp.mu before draining and re-acquires it to return, so sp.mu is never held across the drain
	sp.settleLocked()
	st := sp.st
	sp.mu.Unlock()
	if st == nil {
		return nil
	}
	start := sp.d.sch.Now()
	err := st.Flush()
	sp.flushes.Add(1)
	sp.flushNanos.Add(sp.d.sch.Now().Sub(start).Nanoseconds())
	return err
}

// Close drains the queue, then flushes and closes the store plugin.
func (sp *StoragePolicy) Close() error {
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		return nil
	}
	sp.closed = true
	sp.notFull.Broadcast() // wake blocked enqueuers to bail out
	sp.settleLocked()
	ft := sp.flushTask
	sp.flushTask = nil
	st := sp.st
	sp.st = nil
	sp.mu.Unlock()
	if ft != nil {
		ft.Cancel()
	}
	if st == nil {
		return nil
	}
	return st.Close()
}
