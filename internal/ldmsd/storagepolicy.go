package ldmsd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/metric"
	"goldms/internal/store"
)

// StoragePolicy routes fresh consistent samples of one schema to a store
// plugin. The store instance is created lazily on the first matching
// sample, when the column set is known. Storage may be specified at
// {producer, metric name} granularity in LDMS; here the typical use case —
// per metric set schema — is implemented, with an optional metric filter.
type StoragePolicy struct {
	d         *Daemon
	name      string
	plugin    string
	schema    string
	path      string
	options   map[string]string
	metricSel map[string]bool // nil = all metrics

	mu   sync.Mutex
	st   store.Store
	fail error
	rows atomic.Int64

	storeNanos atomic.Int64 // cumulative time inside store.Store
	flushes    atomic.Int64
	flushNanos atomic.Int64 // cumulative time inside store.Flush
}

// StorageCounters is a snapshot of a policy's write activity for the query
// gateway's self-metrics.
type StorageCounters struct {
	Rows       int64
	StoreNanos int64
	Flushes    int64
	FlushNanos int64
	Failed     bool // sticky error disabled the policy
}

// Counters snapshots the policy's write counters.
func (sp *StoragePolicy) Counters() StorageCounters {
	return StorageCounters{
		Rows:       sp.rows.Load(),
		StoreNanos: sp.storeNanos.Load(),
		Flushes:    sp.flushes.Load(),
		FlushNanos: sp.flushNanos.Load(),
		Failed:     sp.Err() != nil,
	}
}

// Name returns the policy name.
func (sp *StoragePolicy) Name() string { return sp.name }

// Schema returns the schema this policy stores.
func (sp *StoragePolicy) Schema() string { return sp.schema }

// Plugin returns the store plugin name.
func (sp *StoragePolicy) Plugin() string { return sp.plugin }

// AddStoragePolicy registers a storage policy: samples of the given schema
// are written with the named store plugin at path.
func (d *Daemon) AddStoragePolicy(name, plugin, schema, path string, options map[string]string) (*StoragePolicy, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.strgps[name]; dup {
		return nil, fmt.Errorf("ldmsd %s: storage policy %q already exists", d.name, name)
	}
	if schema == "" {
		return nil, fmt.Errorf("ldmsd %s: storage policy %q needs a schema", d.name, name)
	}
	sp := &StoragePolicy{d: d, name: name, plugin: plugin, schema: schema, path: path, options: options}
	d.strgps[name] = sp
	return sp, nil
}

// StoragePolicy returns the named policy, or nil.
func (d *Daemon) StoragePolicy(name string) *StoragePolicy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.strgps[name]
}

// SelectMetrics restricts the stored columns to the named metrics.
func (sp *StoragePolicy) SelectMetrics(names []string) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.metricSel = make(map[string]bool, len(names))
	for _, n := range names {
		sp.metricSel[n] = true
	}
}

// Store returns the underlying store plugin (nil until the first sample).
func (sp *StoragePolicy) Store() store.Store {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.st
}

// storeSet fans a fresh consistent sample out to the gateway's recent
// window (when one is running) and to every matching storage policy.
func (d *Daemon) storeSet(set *metric.Set) {
	if w := d.window.Load(); w != nil {
		w.Observe(set)
	}
	d.mu.Lock()
	policies := mapValues(d.strgps)
	d.mu.Unlock()
	for _, sp := range policies {
		if sp.schema == set.SchemaName() {
			sp.store(set)
		}
	}
}

// store appends one sample, creating the store plugin on first use.
func (sp *StoragePolicy) store(set *metric.Set) {
	row := set.Snapshot()
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.fail != nil {
		return
	}
	if sp.metricSel != nil {
		row = sp.filterRow(row)
	}
	if sp.st == nil {
		types := make([]metric.Type, len(row.Names))
		for i, n := range row.Names {
			if idx, ok := set.MetricIndex(n); ok {
				types[i] = set.MetricType(idx)
			}
		}
		st, err := store.New(sp.plugin, store.Config{
			Path:    sp.path,
			Schema:  sp.schema,
			Names:   row.Names,
			Types:   types,
			Options: sp.options,
		})
		if err != nil {
			sp.fail = err
			return
		}
		sp.st = st
	}
	start := time.Now()
	err := sp.st.Store(row)
	sp.storeNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		sp.fail = err
		return
	}
	sp.rows.Add(1)
}

// filterRow projects a row onto the selected metrics. Caller holds sp.mu.
func (sp *StoragePolicy) filterRow(row metric.Row) metric.Row {
	names := make([]string, 0, len(sp.metricSel))
	values := make([]metric.Value, 0, len(sp.metricSel))
	for i, n := range row.Names {
		if sp.metricSel[n] {
			names = append(names, n)
			values = append(values, row.Values[i])
		}
	}
	row.Names, row.Values = names, values
	return row
}

// Err returns the sticky error that disabled the policy, if any.
func (sp *StoragePolicy) Err() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.fail
}

// Rows returns the number of samples written.
func (sp *StoragePolicy) Rows() int64 { return sp.rows.Load() }

// Flush forces buffered data to stable storage.
func (sp *StoragePolicy) Flush() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.st == nil {
		return nil
	}
	start := time.Now()
	err := sp.st.Flush()
	sp.flushes.Add(1)
	sp.flushNanos.Add(time.Since(start).Nanoseconds())
	return err
}

// Close flushes and closes the store plugin.
func (sp *StoragePolicy) Close() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.st == nil {
		return nil
	}
	err := sp.st.Close()
	sp.st = nil
	return err
}
