package ldmsd

import (
	"strings"
	"testing"
	"time"

	"goldms/internal/sched"
	"goldms/internal/transport"
)

// TestSelfSampler runs the built-in ldmsd_self plugin on an aggregator:
// the daemon's own operational counters publish as a regular LDMS set
// through the normal sampling pipeline, so any tier above can pull them
// like any other metric set.
func TestSelfSampler(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(98000, 0))
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}

	leaf := virtualSampler(t, "n1", sch, net, 1)
	defer leaf.Stop()
	lp, err := leaf.LoadSampler("meminfo", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	lp.Start(time.Second, 0, false)

	agg := tierAgg(t, "agg", sch, fac, []string{"n1"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=n1
updtr_start name=u
load name=ldmsd_self
start name=ldmsd_self interval=1000000
`)
	defer agg.Stop()

	sch.AdvanceBy(10 * time.Second)

	set := agg.Registry().Get("agg/ldmsd_self")
	if set == nil {
		t.Fatalf("ldmsd_self set missing; dir = %v", agg.Registry().Dir())
	}
	if set.SchemaName() != "ldmsd_self" {
		t.Errorf("schema = %q", set.SchemaName())
	}
	if !set.Consistent() {
		t.Error("ldmsd_self set inconsistent")
	}

	u64 := func(name string) uint64 {
		t.Helper()
		i, ok := set.MetricIndex(name)
		if !ok {
			t.Fatalf("metric %q missing", name)
		}
		return set.U64(i)
	}
	// After ten seconds of one-second passes the aggregator has pulled
	// and freshly applied the leaf's set repeatedly.
	if got := u64("updater_passes"); got < 5 {
		t.Errorf("updater_passes = %d, want >= 5", got)
	}
	if got := u64("updates_fresh"); got == 0 {
		t.Error("updates_fresh = 0")
	}
	if got := u64("bytes_in"); got == 0 {
		t.Error("bytes_in = 0; transport counters not wired")
	}
	if got := u64("journal_events"); got == 0 {
		t.Error("journal_events = 0; producer epochs should have logged")
	}
	// Runtime gauges are zeroed under the virtual clock: they are
	// nondeterministic and would break byte-identical replays.
	if got := u64("goroutines"); got != 0 {
		t.Errorf("goroutines = %d under virtual clock, want 0", got)
	}
	if got := u64("heap_alloc_bytes"); got != 0 {
		t.Errorf("heap_alloc_bytes = %d under virtual clock, want 0", got)
	}

	// The self set is a first-class citizen: plugin status lists it and a
	// tier above can pull it (covered end-to-end by the CI gateway smoke).
	out, err := agg.Exec("ls name=agg/ldmsd_self")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ldmsd_self") || !strings.Contains(out, "updater_passes") {
		t.Errorf("ls output: %q", out)
	}
}

// TestSelfSamplerDeterministic: two virtual-clock replays publish
// byte-identical self sets (runtime gauges zeroed, counters driven only
// by scheduled work).
func TestSelfSamplerDeterministic(t *testing.T) {
	run := func() string {
		sch := sched.NewVirtual(time.Unix(99000, 0))
		net := transport.NewNetwork()
		fac := transport.MemFactory{Net: net}
		leaf := virtualSampler(t, "n1", sch, net, 1)
		defer leaf.Stop()
		lp, err := leaf.LoadSampler("meminfo", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		lp.Start(time.Second, 0, false)
		agg := tierAgg(t, "agg", sch, fac, []string{"n1"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=n1
updtr_start name=u
load name=ldmsd_self
start name=ldmsd_self interval=1000000
`)
		defer agg.Stop()
		sch.AdvanceBy(10 * time.Second)
		out, err := agg.Exec("ls name=agg/ldmsd_self")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("self set differs across replays:\n run1:\n%s\n run2:\n%s", a, b)
	}
	if !strings.Contains(a, "updater_passes") {
		t.Errorf("self set missing counters:\n%s", a)
	}
}

// TestSelfSamplerRequiresDaemon: the plugin cannot run outside a daemon —
// it has no counter source.
func TestSelfSamplerRequiresDaemon(t *testing.T) {
	d, err := New(Options{Name: "solo", Scheduler: sched.NewVirtual(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	if _, err := d.LoadSampler("ldmsd_self", "", nil); err != nil {
		t.Fatalf("daemon-hosted ldmsd_self failed to load: %v", err)
	}
}
