package ldmsd

import (
	"strings"
	"testing"
	"time"

	"goldms/internal/obs"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// threeTierTraceRun drives a leaf sampler → mid aggregator → top
// aggregator pipeline on a fresh virtual clock and returns the top
// tier's rendered trace output (spans plus chains) along with the
// daemons for extra assertions. The caller must Stop the daemons.
func threeTierTraceRun(t *testing.T) (topOut, midOut string, leaf, mid, top *Daemon) {
	t.Helper()
	sch := sched.NewVirtual(time.Unix(95000, 0))
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}

	leaf = virtualSampler(t, "n1", sch, net, 1)
	sp, err := leaf.LoadSampler("meminfo", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	sp.Start(time.Second, 0, false)

	mid = tierAgg(t, "mid", sch, fac, []string{"n1"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=n1
updtr_start name=u
`)
	if _, err := mid.Listen("mem", "mid"); err != nil {
		t.Fatal(err)
	}
	top = tierAgg(t, "top", sch, fac, []string{"mid"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=mid
updtr_start name=u
`)

	sch.AdvanceBy(10 * time.Second)

	if topOut, err = top.Exec("trace chains=1"); err != nil {
		t.Fatal(err)
	}
	if midOut, err = mid.Exec("trace chains=1"); err != nil {
		t.Fatal(err)
	}
	return topOut, midOut, leaf, mid, top
}

// TestTierTraceThreeTier pins per-hop attribution across a full
// three-tier topology: the top tier's chain for the leaf's set is three
// hops deep — n1(leaf) -> mid(mid) -> top(top) — and the top's span
// recorder holds sample-age summaries for every tier below it.
func TestTierTraceThreeTier(t *testing.T) {
	topOut, midOut, leaf, mid, top := threeTierTraceRun(t)
	defer leaf.Stop()
	defer mid.Stop()
	defer top.Stop()

	chains := top.Chains()
	if len(chains) != 1 || chains[0].Set != "n1/meminfo" {
		t.Fatalf("top chains = %+v", chains)
	}
	hops := chains[0].Hops
	if len(hops) != 3 {
		t.Fatalf("chain depth = %d, want 3: %+v", len(hops), hops)
	}
	want := []struct {
		daemon string
		role   obs.HopRole
	}{{"n1", obs.RoleLeaf}, {"mid", obs.RoleMid}, {"top", obs.RoleTop}}
	for i, w := range want {
		if hops[i].Daemon != w.daemon || hops[i].Role != w.role {
			t.Errorf("hop %d = %s(%s), want %s(%s)",
				i, hops[i].Daemon, hops[i].Role, w.daemon, w.role)
		}
	}
	// The leaf's hop is a bare identity stamp (its local sets never pass
	// through an aggregation stage); the aggregator hops carry pull times.
	if hops[0].Pull != 0 || hops[0].Store != 0 {
		t.Errorf("leaf hop carries stage stamps: %+v", hops[0])
	}
	if hops[1].Pull == 0 || hops[2].Pull == 0 {
		t.Errorf("aggregator hops missing pull stamps: mid=%+v top=%+v", hops[1], hops[2])
	}

	// The top's span recorder attributes age per hop daemon: its own pull
	// stage plus the mid's pull stage observed from the wire.
	spans := top.Spans()
	var sawMid, sawTop bool
	for _, s := range spans {
		switch {
		case s.Daemon == "mid" && s.Role == obs.RoleMid && s.Stage == obs.StagePull:
			sawMid = s.Count > 0
		case s.Daemon == "top" && s.Role == obs.RoleTop && s.Stage == obs.StagePull:
			sawTop = s.Count > 0
		}
	}
	if !sawMid || !sawTop {
		t.Errorf("top spans missing hops (mid=%v top=%v): %+v", sawMid, sawTop, spans)
	}
	if n := top.TraceDecodeErrors(); n != 0 {
		t.Errorf("top counted %d trace decode errors", n)
	}

	// Rendered control output is non-trivial.
	if !strings.Contains(topOut, "depth=3") || !strings.Contains(topOut, "n1(leaf)->mid(mid)->top(top)") {
		t.Errorf("top trace output:\n%s", topOut)
	}
	if !strings.Contains(midOut, "depth=2") {
		t.Errorf("mid trace output:\n%s", midOut)
	}
}

// TestTierTraceDeterministic replays the three-tier run on a fresh
// virtual clock: the rendered trace output — every hop stamp, span
// quantile and chain — must be byte-identical across replays.
func TestTierTraceDeterministic(t *testing.T) {
	top1, mid1, l1, m1, t1 := threeTierTraceRun(t)
	l1.Stop()
	m1.Stop()
	t1.Stop()
	top2, mid2, l2, m2, t2 := threeTierTraceRun(t)
	l2.Stop()
	m2.Stop()
	t2.Stop()

	if top1 != top2 {
		t.Errorf("top trace output differs across replays:\n run1:\n%s\n run2:\n%s", top1, top2)
	}
	if mid1 != mid2 {
		t.Errorf("mid trace output differs across replays:\n run1:\n%s\n run2:\n%s", mid1, mid2)
	}
	if top1 == "" {
		t.Error("trace output empty; determinism is vacuous")
	}
}

// TestTierTraceLegacyPeer models a legacy leaf that never negotiated the
// trace capability next to a traced one: the legacy set's chain restarts
// at the aggregator (depth 1) while the traced set keeps its origin hop,
// and nothing counts as a decode error.
func TestTierTraceLegacyPeer(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(96000, 0))
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}

	// Legacy peer: a bare transport server with no trace hook, the shape
	// of a pre-trace ldmsd.
	legacyReg := leafRegistry(t, 1, 100, sch.Now())
	if _, err := fac.Listen("legacy", transport.NewServer(legacyReg)); err != nil {
		t.Fatal(err)
	}

	traced := virtualSampler(t, "n2", sch, net, 2)
	defer traced.Stop()
	sp, err := traced.LoadSampler("meminfo", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	sp.Start(time.Second, 0, false)

	agg := tierAgg(t, "agg", sch, fac, []string{"legacy", "n2"}, `
updtr_add name=u interval=1s
updtr_prdcr_add name=u prdcr=legacy
updtr_prdcr_add name=u prdcr=n2
updtr_start name=u
`)
	defer agg.Stop()

	sch.AdvanceBy(5 * time.Second)

	depths := map[string]int{}
	for _, c := range agg.Chains() {
		depths[c.Set] = len(c.Hops)
	}
	if depths["legacy/node00"] != 1 {
		t.Errorf("legacy set chain depth = %d, want 1 (untraced peer)", depths["legacy/node00"])
	}
	if depths["n2/meminfo"] != 2 {
		t.Errorf("traced set chain depth = %d, want 2", depths["n2/meminfo"])
	}
	if n := agg.TraceDecodeErrors(); n != 0 {
		t.Errorf("legacy interop counted %d decode errors", n)
	}
}

// TestTierTraceReduction checks that a reduced set inherits the chain of
// its newest contributing member and stamps the reduce stage on the
// aggregator's hop.
func TestTierTraceReduction(t *testing.T) {
	sch := sched.NewVirtual(time.Unix(97000, 0))
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}

	for _, name := range []string{"n1", "n2"} {
		d := virtualSampler(t, name, sch, net, 1)
		defer d.Stop()
		sp, err := d.LoadSampler("meminfo", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		sp.Start(time.Second, 0, false)
	}

	mid := tierAgg(t, "mid", sch, fac, []string{"n1", "n2"}, `
updtr_add name=u interval=1s reduce=max export=reduced
updtr_prdcr_add name=u prdcr=n1
updtr_prdcr_add name=u prdcr=n2
updtr_start name=u
`)
	defer mid.Stop()

	sch.AdvanceBy(5 * time.Second)

	var reduced *obs.ChainSnapshot
	for _, c := range mid.Chains() {
		if strings.HasSuffix(c.Set, "_max") {
			cc := c
			reduced = &cc
			break
		}
	}
	if reduced == nil {
		t.Fatalf("no reduced chain published: %+v", mid.Chains())
	}
	last := reduced.Hops[len(reduced.Hops)-1]
	if last.Daemon != "mid" || last.Reduce == 0 {
		t.Fatalf("reduced chain's local hop missing reduce stamp: %+v", reduced.Hops)
	}
	// The inherited origin hop is one of the contributing leaves.
	if len(reduced.Hops) != 2 || (reduced.Hops[0].Daemon != "n1" && reduced.Hops[0].Daemon != "n2") {
		t.Fatalf("reduced chain = %+v, want leaf origin + mid", reduced.Hops)
	}
}
