package ldmsd

import (
	"bytes"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"goldms/internal/obs"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// syncBuf is a goroutine-safe log sink for daemon slog output.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// obsPipeline builds a virtual-clock aggregator pulling a raw served
// registry, configured through Exec so config commands land in the
// journal. The returned factory and server allow bouncing the target
// (ln.Close, then fac.Listen again).
func obsPipeline(t *testing.T, logBuf *syncBuf) (*Daemon, *sched.Scheduler, transport.MemFactory, *transport.Server, transport.Listener) {
	t.Helper()
	sch := sched.NewVirtual(time.Unix(50000, 0))
	net := transport.NewNetwork()
	fac := transport.MemFactory{Net: net}
	reg := benchRegistry(t, "n1", 2)
	srv := transport.NewServer(reg)
	ln, err := fac.Listen("n1", srv)
	if err != nil {
		t.Fatal(err)
	}

	opts := Options{
		Name:        "agg",
		Scheduler:   sch,
		Transports:  []transport.Factory{fac},
		JournalSize: 64,
	}
	if logBuf != nil {
		opts.Logger = slog.New(slog.NewJSONHandler(logBuf,
			&slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	agg, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agg.Stop)
	for _, cmd := range []string{
		"prdcr_add name=n1 xprt=mem host=n1 interval=1000000",
		"prdcr_start name=n1",
		"updtr_add name=u1 interval=1000000",
		"updtr_prdcr_add name=u1 prdcr=n1",
		"updtr_start name=u1",
	} {
		if _, err := agg.Exec(cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
	return agg, sch, fac, srv, ln
}

// TestObsJournalReconnectCycle drives a producer through a full
// connect/disconnect/reconnect cycle under the virtual clock and checks the
// journal recorded every transition in order with deterministic simulated
// timestamps, that the status commands surface the journal, and that every
// event drained to the structured log.
func TestObsJournalReconnectCycle(t *testing.T) {
	var logBuf syncBuf
	agg, sch, fac, srv, ln := obsPipeline(t, &logBuf)

	sch.AdvanceBy(3 * time.Second)
	if got := len(agg.Registry().Dir()); got != 2 {
		t.Fatalf("mirrors = %d, want 2", got)
	}

	// Bounce the target: pulls fail, the producer disconnects and retries.
	ln.Close()
	sch.AdvanceBy(3 * time.Second)
	if _, err := fac.Listen("n1", srv); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(3 * time.Second)

	j := agg.Journal()

	// The producer's lifecycle events, in seq order with the right epochs.
	var cycle []obs.Event
	for _, ev := range j.Query(0, obs.SevInfo, obs.CompProducer, "n1") {
		switch ev.Message {
		case "connected", "disconnected", "reconnected":
			cycle = append(cycle, ev)
		}
	}
	want := []struct {
		msg   string
		epoch uint64
		sev   obs.Severity
	}{
		{"connected", 1, obs.SevInfo},
		{"disconnected", 1, obs.SevWarn},
		{"reconnected", 2, obs.SevInfo},
	}
	if len(cycle) != len(want) {
		t.Fatalf("lifecycle events = %+v, want %d", cycle, len(want))
	}
	for i, w := range want {
		ev := cycle[i]
		if ev.Message != w.msg || ev.Epoch != w.epoch || ev.Sev != w.sev {
			t.Errorf("event %d = %+v, want %s epoch=%d sev=%v", i, ev, w.msg, w.epoch, w.sev)
		}
		if i > 0 && ev.Seq <= cycle[i-1].Seq {
			t.Errorf("event %d seq %d not after %d", i, ev.Seq, cycle[i-1].Seq)
		}
		// Timestamps come from the virtual clock, not the wall clock.
		if ev.Time.Before(time.Unix(50000, 0)) || ev.Time.After(time.Unix(50020, 0)) {
			t.Errorf("event %d time %v outside the simulated window", i, ev.Time)
		}
	}

	// Each connection epoch triggered one aggregate lookup event.
	lookups := 0
	for _, ev := range j.Query(0, obs.SevInfo, obs.CompUpdater, "n1") {
		if strings.Contains(ev.Message, "looked up 2 sets") {
			lookups++
		}
	}
	if lookups != 2 {
		t.Errorf("aggregate lookup events = %d, want 2 (one per epoch)", lookups)
	}

	// Config commands were journaled too.
	cfg := j.Query(0, obs.SevInfo, obs.CompConfig, "")
	if len(cfg) < 5 {
		t.Errorf("config events = %d, want >= 5", len(cfg))
	}
	foundAdd := false
	for _, ev := range cfg {
		if strings.Contains(ev.Message, "prdcr_add") {
			foundAdd = true
		}
	}
	if !foundAdd {
		t.Errorf("no prdcr_add config event in %+v", cfg)
	}

	// Pull-hop latency recorded with deterministic virtual ages.
	hops := agg.Latency().Snapshot()
	if hops[0].Hop != obs.HopPull || hops[0].Count == 0 {
		t.Errorf("pull hop = %+v, want recorded samples", hops[0])
	}
	if hops[0].P50 <= 0 {
		t.Errorf("pull hop p50 = %v, want > 0", hops[0].P50)
	}

	// Status commands surface journal-derived fields.
	out, err := agg.Exec("prdcr_status")
	if err != nil {
		t.Fatal(err)
	}
	for _, wantS := range []string{"connected_since=1970-", `last_event="reconnected"`, "last_event_time=1970-"} {
		if !strings.Contains(out, wantS) {
			t.Errorf("prdcr_status missing %q:\n%s", wantS, out)
		}
	}
	out, err = agg.Exec("updtr_status")
	if err != nil {
		t.Fatal(err)
	}
	for _, wantS := range []string{"prdcr=n1", "connected_since=1970-", `last_event="reconnected"`} {
		if !strings.Contains(out, wantS) {
			t.Errorf("updtr_status missing %q:\n%s", wantS, out)
		}
	}

	// The events and latency control commands.
	out, err = agg.Exec("events n=50")
	if err != nil {
		t.Fatal(err)
	}
	for _, wantS := range []string{`msg="reconnected"`, "component=config", "sev=warn", "epoch=2"} {
		if !strings.Contains(out, wantS) {
			t.Errorf("events output missing %q:\n%s", wantS, out)
		}
	}
	out, err = agg.Exec("events severity=warn component=producer")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `msg="disconnected"`) || strings.Contains(out, `msg="connected"`) {
		t.Errorf("filtered events output wrong:\n%s", out)
	}
	out, err = agg.Exec("latency")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hop=pull count=") || !strings.Contains(out, "hop=store count=0") {
		t.Errorf("latency output wrong:\n%s", out)
	}

	// Every journal event drained to the structured log, plus the debug
	// line for failed connection attempts during the outage.
	logs := logBuf.String()
	for _, wantS := range []string{
		`"msg":"daemon started"`,
		`"msg":"connected"`,
		`"msg":"disconnected"`,
		`"msg":"reconnected"`,
		`"msg":"producer connect failed"`,
		`"component":"producer"`,
		`"epoch":2`,
	} {
		if !strings.Contains(logs, wantS) {
			t.Errorf("structured log missing %s", wantS)
		}
	}
}

// TestGatewayHealthzRecovery walks /healthz through a full outage cycle
// under the virtual clock: healthy after the first clean pull, degraded
// (503) while the target is down, and back to 200 after the producer
// reconnects and completes a clean pull.
func TestGatewayHealthzRecovery(t *testing.T) {
	agg, sch, fac, srv, ln := obsPipeline(t, nil)

	addr, err := agg.Exec("http_listen addr=127.0.0.1:0 window=1m")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	sch.AdvanceBy(3 * time.Second)
	code, body := httpGet(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz before outage: status %d: %s", code, body)
	}

	// Target dies: the pull fails, the producer disconnects, and after
	// staleIntervalFactor pull intervals without a clean pass the producer
	// is stale and the endpoint degrades.
	ln.Close()
	sch.AdvanceBy(6 * time.Second)
	code, body = httpGet(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during outage: status %d, want 503: %s", code, body)
	}
	if !strings.Contains(string(body), `"stale":["n1"]`) {
		t.Errorf("degraded healthz missing stale producer: %s", body)
	}

	// Target returns: reconnect, clean pull, healthy again.
	if _, err := fac.Listen("n1", srv); err != nil {
		t.Fatal(err)
	}
	sch.AdvanceBy(3 * time.Second)
	code, body = httpGet(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz after recovery: status %d: %s", code, body)
	}

	// The outage is readable from the gateway's event journal.
	code, body = httpGet(t, base+"/api/v1/events?component=producer")
	if code != http.StatusOK {
		t.Fatalf("events: status %d", code)
	}
	for _, want := range []string{`"disconnected"`, `"reconnected"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("events missing %s: %s", want, body)
		}
	}
}
