package ldmsd

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/obs"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// ProducerState tracks a producer's connection lifecycle.
type ProducerState int

// Producer states.
const (
	ProducerStopped ProducerState = iota
	ProducerDisconnected
	ProducerConnecting
	ProducerConnected
)

// String renders the state for the control interface.
func (s ProducerState) String() string {
	switch s {
	case ProducerStopped:
		return "STOPPED"
	case ProducerDisconnected:
		return "DISCONNECTED"
	case ProducerConnecting:
		return "CONNECTING"
	case ProducerConnected:
		return "CONNECTED"
	default:
		return "UNKNOWN"
	}
}

// Producer is a connection to a collection target (a sampler ldmsd or
// another aggregator). Standby producers hold connections and state for
// sets whose primary aggregator is elsewhere; they are only pulled after
// Activate (paper §IV-B: there is no internal mechanism to detect a primary
// going down — activation is manual or by an external watchdog).
//
// A producer owns only the connection; per-set pull state (lookup handles,
// mirrors, generation tracking) belongs to the updaters pulling from it,
// keyed by the connection epoch so reconnections invalidate stale handles.
type Producer struct {
	d         *Daemon
	name      string
	host      string
	xprt      transport.Factory
	xprtName  string // registry key for re-resolving xprt on reconnect
	reconnect time.Duration
	standby   bool

	// passive producers receive their connection from the remote side
	// (the sampler advertises in); they never dial.
	passive bool

	mu       sync.Mutex
	state    ProducerState
	conn     transport.Conn
	epoch    uint64 // bumped on every successful connect
	setNames []string
	started  bool
	active   bool // standby producers: true once activated
	retry    *sched.Task
	// closedStats accumulates transfer counters from connections that have
	// been torn down, so totals survive reconnect cycles.
	closedStats transport.ConnStats

	connects    atomic.Int64 // successful connection establishments
	disconnects atomic.Int64 // teardowns after an established connection
	connErrors  atomic.Int64 // failed connection attempts
}

// AddProducer registers a collection target. reconnect is the retry
// interval for failed connections.
func (d *Daemon) AddProducer(name, transportName, host string, reconnect time.Duration, standby bool) (*Producer, error) {
	f, err := d.transportByName(transportName)
	if err != nil {
		return nil, err
	}
	if reconnect <= 0 {
		reconnect = time.Second
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.prdcrs[name]; dup {
		return nil, fmt.Errorf("ldmsd %s: producer %q already exists", d.name, name)
	}
	p := &Producer{
		d:         d,
		name:      name,
		host:      host,
		xprt:      f,
		xprtName:  transportName,
		reconnect: reconnect,
		standby:   standby,
		active:    !standby,
	}
	d.prdcrs[name] = p
	return p, nil
}

// Producer returns the named producer, or nil.
func (d *Daemon) Producer(name string) *Producer {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.prdcrs[name]
}

// Name returns the producer name.
func (p *Producer) Name() string { return p.name }

// State returns the current connection state.
func (p *Producer) State() ProducerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Standby reports whether this is a failover (standby) producer.
func (p *Producer) Standby() bool { return p.standby }

// Active reports whether updaters should pull from this producer.
func (p *Producer) Active() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Activate enables pulling from a standby producer, the failover action an
// external watchdog performs when a primary aggregator dies.
func (p *Producer) Activate() {
	p.mu.Lock()
	was := p.active
	p.active = true
	standby := p.standby
	p.mu.Unlock()
	if standby && !was {
		p.d.journal.Append(obs.SevWarn, obs.CompProducer, p.name, 0, "standby activated")
	}
}

// Deactivate returns a standby producer to passive mode.
func (p *Producer) Deactivate() {
	if !p.standby {
		return
	}
	p.mu.Lock()
	was := p.active
	p.active = false
	p.mu.Unlock()
	if was {
		p.d.journal.Append(obs.SevInfo, obs.CompProducer, p.name, 0, "standby deactivated")
	}
}

// Host returns the producer's target address ("" for passive producers).
func (p *Producer) Host() string { return p.host }

// TransportName returns the producer's transport type, or "peer" for
// passive producers whose connection arrives from the remote side.
func (p *Producer) TransportName() string {
	p.mu.Lock()
	x := p.xprt
	p.mu.Unlock()
	if x == nil {
		return "peer"
	}
	return x.Name()
}

// ProducerCounters is a snapshot of a producer's lifecycle and transfer
// counters for prdcr_status and the query gateway.
type ProducerCounters struct {
	Connects     int64 // successful connection establishments
	Disconnects  int64 // teardowns after an established connection
	ConnectFails int64 // failed connection attempts
	Transport    transport.ConnStats
}

// Counters snapshots the producer's lifecycle counters and transfer totals
// (live connection plus all closed epochs).
func (p *Producer) Counters() ProducerCounters {
	c := ProducerCounters{
		Connects:     p.connects.Load(),
		Disconnects:  p.disconnects.Load(),
		ConnectFails: p.connErrors.Load(),
	}
	p.mu.Lock()
	c.Transport = p.closedStats
	if p.conn != nil {
		if live, ok := transport.StatsOf(p.conn); ok {
			c.Transport.Add(live)
		}
	}
	p.mu.Unlock()
	return c
}

// retireConn folds a dying connection's transfer counters into the
// producer's running total. Caller holds p.mu.
func (p *Producer) retireConn(conn transport.Conn) {
	if conn == nil {
		return
	}
	if st, ok := transport.StatsOf(conn); ok {
		p.closedStats.Add(st)
	}
}

// Start begins connecting (and reconnecting) to the target.
func (p *Producer) Start() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.state = ProducerDisconnected
	passive := p.passive
	p.mu.Unlock()
	if !passive {
		p.scheduleConnect(0)
	}
}

// Stop disconnects and stops reconnecting.
func (p *Producer) Stop() {
	p.mu.Lock()
	wasStarted := p.started
	p.started = false
	p.state = ProducerStopped
	if p.retry != nil {
		p.retry.Cancel()
		p.retry = nil
	}
	conn := p.conn
	epoch := p.epoch
	p.conn = nil
	p.retireConn(conn)
	p.mu.Unlock()
	if conn != nil {
		p.disconnects.Add(1)
		conn.Close()
	}
	if wasStarted {
		p.d.journal.Append(obs.SevInfo, obs.CompProducer, p.name, epoch, "stopped")
	}
}

// scheduleConnect arms a connection attempt after delay.
func (p *Producer) scheduleConnect(delay time.Duration) {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.state = ProducerConnecting
	p.retry = p.d.sch.After(delay, func(time.Time) {
		p.d.submitConn(p.connectAttempt)
	})
	p.mu.Unlock()
}

// connectAttempt dials the target and performs the initial dir. It runs on
// the connection pool so hung attempts cannot starve update workers.
func (p *Producer) connectAttempt() {
	p.mu.Lock()
	if !p.started || p.conn != nil {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()

	// An xprt_opt retune replaces the registered factory; re-resolve it per
	// attempt so the next (re)connection picks up the new settings. Resolved
	// before taking p.mu — transportByName locks d.mu, and the established
	// order elsewhere is d.mu then p.mu.
	xprt := p.xprt
	if f, err := p.d.transportByName(p.xprtName); err == nil {
		xprt = f
		p.mu.Lock()
		p.xprt = f
		p.mu.Unlock()
	}

	conn, err := xprt.Dial(p.host)
	if err != nil {
		p.connectionFailed()
		return
	}
	names, err := conn.Dir(context.Background())
	if err != nil {
		conn.Close()
		p.connectionFailed()
		return
	}
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.conn = conn
	p.state = ProducerConnected
	p.epoch++
	epoch := p.epoch
	p.setNames = names
	p.mu.Unlock()
	p.connects.Add(1)
	msg := "connected"
	if epoch > 1 {
		msg = "reconnected"
	}
	p.d.journal.Append(obs.SevInfo, obs.CompProducer, p.name, epoch, msg)
}

// connectionFailed records a failure and schedules a retry. Failed attempts
// go to the debug log only: retry loops against a dead target would flood
// the journal, whose ring is reserved for state transitions.
func (p *Producer) connectionFailed() {
	p.connErrors.Add(1)
	p.mu.Lock()
	started := p.started
	p.state = ProducerDisconnected
	p.mu.Unlock()
	p.d.log.Debug("producer connect failed",
		slog.String("producer", p.name),
		slog.String("host", p.host),
		slog.Int64("attempts", p.connErrors.Load()))
	if started {
		p.scheduleConnect(p.reconnect)
	}
}

// disconnected tears down after an I/O error and schedules reconnection.
// Updaters detect the epoch change and drop their connection-scoped set
// handles; mirrors keep serving the last good data downstream until fresh
// lookups replace them.
func (p *Producer) disconnected(epoch uint64) {
	p.mu.Lock()
	if p.epoch != epoch || p.conn == nil {
		// Another updater already handled this failure.
		p.mu.Unlock()
		return
	}
	conn := p.conn
	p.conn = nil
	p.retireConn(conn)
	started := p.started
	p.state = ProducerDisconnected
	passive := p.passive
	p.mu.Unlock()
	if conn != nil {
		p.disconnects.Add(1)
		conn.Close()
	}
	p.d.journal.Append(obs.SevWarn, obs.CompProducer, p.name, epoch, "disconnected")
	// Passive producers wait for the sampler to advertise back in rather
	// than dialing out.
	if started && !passive {
		p.scheduleConnect(p.reconnect)
	}
}

// updateDir replaces the discovered set list if the connection epoch still
// matches (an updater refreshing an initially empty directory).
func (p *Producer) updateDir(epoch uint64, names []string) {
	p.mu.Lock()
	if p.epoch == epoch {
		p.setNames = names
	}
	p.mu.Unlock()
}

// snapshot returns the connection, discovered set names and epoch for an
// updater pass. ok is false when the producer should not be pulled.
func (p *Producer) snapshot() (transport.Conn, []string, uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state != ProducerConnected || !p.active || p.conn == nil {
		return nil, nil, 0, false
	}
	return p.conn, p.setNames, p.epoch, true
}

// SetNames lists the set instances discovered on the target.
func (p *Producer) SetNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.setNames...)
}
