package ldmsd

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"goldms/internal/obs"
	"goldms/internal/query"
	"goldms/internal/sched"
	"goldms/internal/transport"
)

// virtualRunResult is everything a virtual-clock pipeline run must
// reproduce bit-for-bit: daemon stats, the control-interface updater
// status (including pass timing), all three hop-latency histograms, the
// recent-window contents, and the stored CSV rows.
type virtualRunResult struct {
	stats       Stats
	updtrStatus string
	pull        obs.HistSnapshot
	window      obs.HistSnapshot
	store       obs.HistSnapshot
	series      []query.Series
	csv         string
	// deltaUpdates counts pulls the transport answered with a delta rather
	// than a full chunk — proof of which wire path a run exercised.
	deltaUpdates int64
}

// virtualPipelineRun drives a full sampler → aggregator → window/store
// pipeline for 20 simulated seconds on a fresh virtual clock and
// collects every observable output. compress selects the recent
// window's storage mode; the codec is lossless on raw value bits, so
// served results must not depend on it. noDelta models a legacy peer:
// every pull moves a full data chunk, and since the delta codec is exact,
// nothing downstream of the transport may differ.
func virtualPipelineRun(t *testing.T, compress, noDelta bool) virtualRunResult {
	t.Helper()
	sch := sched.NewVirtual(time.Unix(90000, 0))
	net := transport.NewNetwork()

	smp := virtualSampler(t, "n1", sch, net, 1)
	defer smp.Stop()
	sp, err := smp.LoadSampler("meminfo", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	sp.Start(time.Second, 0, false)

	agg, err := New(Options{
		Name:        "agg",
		Scheduler:   sch,
		Transports:  []transport.Factory{transport.MemFactory{Net: net, NoDelta: noDelta}},
		JournalSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()
	// The gateway creates the recent window; started before any update
	// pass so both runs observe from the first sample.
	if _, err := agg.ServeHTTP(GatewayConfig{Addr: "127.0.0.1:0", Compress: compress}); err != nil {
		t.Fatal(err)
	}

	csvPath := filepath.Join(t.TempDir(), "out.csv")
	if _, err := agg.ExecScript(`
prdcr_add name=n1 xprt=mem host=n1 interval=1s
prdcr_start name=n1
updtr_add name=u1 interval=1s
updtr_prdcr_add name=u1 prdcr=n1
updtr_start name=u1
strgp_add name=s1 plugin=store_csv schema=meminfo container=` + csvPath + `
strgp_start name=s1
`); err != nil {
		t.Fatal(err)
	}

	sch.AdvanceBy(20 * time.Second)

	res := virtualRunResult{stats: agg.Stats()}
	res.deltaUpdates = agg.Producer("n1").Counters().Transport.DeltaUpdates
	if res.updtrStatus, err = agg.Exec("updtr_status"); err != nil {
		t.Fatal(err)
	}
	lat := agg.Latency()
	res.pull = lat.Pull.Snapshot()
	res.window = lat.Window.Snapshot()
	res.store = lat.Store.Snapshot()

	w := agg.Window()
	if w == nil {
		t.Fatal("gateway created no recent window")
	}
	res.series = w.Query("MemFree", 0, time.Unix(0, 0))

	agg.Stop() // drain and flush the store pipeline before reading the file
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	res.csv = string(data)
	return res
}

// TestVirtualRunDeterministic is the regression test for the wall-clock
// sweep: two identical virtual-clock daemon runs must produce identical
// latency histograms, window contents, stored rows, and status output.
// Before the sweep, Query's retention floor, the storage policy's
// store/flush stamps, and the updater's pass timing all read time.Now
// and differed run to run.
func TestVirtualRunDeterministic(t *testing.T) {
	a := virtualPipelineRun(t, false, false)
	b := virtualPipelineRun(t, false, false)

	// The runs exercise the delta protocol, not just full chunks: after the
	// first pull of each set, every steady-state pull is a delta.
	if a.deltaUpdates == 0 {
		t.Fatal("virtual pipeline moved no delta updates")
	}
	if a.deltaUpdates != b.deltaUpdates {
		t.Errorf("delta updates differ: %d vs %d", a.deltaUpdates, b.deltaUpdates)
	}

	// The runs must be non-trivial or determinism is vacuous.
	if a.pull.Count == 0 || a.window.Count == 0 || a.store.Count == 0 {
		t.Fatalf("latency hops empty: pull=%d window=%d store=%d",
			a.pull.Count, a.window.Count, a.store.Count)
	}
	if a.stats.UpdatesFresh == 0 || a.stats.StoredRows == 0 {
		t.Fatalf("pipeline idle: fresh=%d stored=%d", a.stats.UpdatesFresh, a.stats.StoredRows)
	}
	if len(a.series) == 0 || len(a.series[0].Points) == 0 {
		t.Fatal("recent window served no MemFree points")
	}
	if a.csv == "" {
		t.Fatal("store_csv wrote no rows")
	}
	// Pass timing is measured on the scheduler clock, which does not
	// advance inside a synchronous virtual pass.
	if !strings.Contains(a.updtrStatus, "last_pass_us=0") {
		t.Errorf("virtual pass timing leaked wall time: %s", a.updtrStatus)
	}

	if a.stats != b.stats {
		t.Errorf("stats differ:\n run1: %+v\n run2: %+v", a.stats, b.stats)
	}
	if a.updtrStatus != b.updtrStatus {
		t.Errorf("updtr_status differs:\n run1: %s\n run2: %s", a.updtrStatus, b.updtrStatus)
	}
	if a.pull != b.pull {
		t.Errorf("pull-hop histograms differ:\n run1: %+v\n run2: %+v", a.pull, b.pull)
	}
	if a.window != b.window {
		t.Errorf("window-hop histograms differ:\n run1: %+v\n run2: %+v", a.window, b.window)
	}
	if a.store != b.store {
		t.Errorf("store-hop histograms differ:\n run1: %+v\n run2: %+v", a.store, b.store)
	}
	if !reflect.DeepEqual(a.series, b.series) {
		t.Errorf("window series differ:\n run1: %+v\n run2: %+v", a.series, b.series)
	}
	if a.csv != b.csv {
		t.Errorf("stored CSV rows differ:\n run1:\n%s\n run2:\n%s", a.csv, b.csv)
	}
}

// TestVirtualRunDeterministicCompressed pins two properties of the
// compressed window: two compressed runs are byte-identical, and —
// because Gorilla encoding is lossless on the raw 64-bit value
// representation — a compressed run serves exactly the same series,
// rows and histograms as an uncompressed one.
func TestVirtualRunDeterministicCompressed(t *testing.T) {
	plain := virtualPipelineRun(t, false, false)
	c1 := virtualPipelineRun(t, true, false)
	c2 := virtualPipelineRun(t, true, false)

	if len(c1.series) == 0 || len(c1.series[0].Points) == 0 {
		t.Fatal("compressed window served no MemFree points")
	}
	if !reflect.DeepEqual(c1.series, c2.series) {
		t.Errorf("compressed runs serve different series:\n run1: %+v\n run2: %+v", c1.series, c2.series)
	}
	if c1.csv != c2.csv {
		t.Errorf("compressed runs stored different CSV rows:\n run1:\n%s\n run2:\n%s", c1.csv, c2.csv)
	}
	if c1.stats != c2.stats {
		t.Errorf("compressed runs differ in stats:\n run1: %+v\n run2: %+v", c1.stats, c2.stats)
	}
	if !reflect.DeepEqual(plain.series, c1.series) {
		t.Errorf("compression changed served series:\n plain: %+v\n compressed: %+v", plain.series, c1.series)
	}
	if plain.csv != c1.csv {
		t.Errorf("compression changed stored rows:\n plain:\n%s\n compressed:\n%s", plain.csv, c1.csv)
	}
	if plain.window != c1.window {
		t.Errorf("compression changed the window-hop histogram:\n plain: %+v\n compressed: %+v", plain.window, c1.window)
	}
}

// TestVirtualRunDeltaEquivalence pins the delta protocol's exactness at the
// system level: a pipeline pulling deltas and a pipeline pulling only full
// chunks (a legacy peer) must produce byte-identical windows, stored rows,
// histograms and status output — the wire encoding may never leak into what
// the daemon observes.
func TestVirtualRunDeltaEquivalence(t *testing.T) {
	delta := virtualPipelineRun(t, false, false)
	full := virtualPipelineRun(t, false, true)

	if delta.deltaUpdates == 0 {
		t.Fatal("delta run moved no delta updates")
	}
	if full.deltaUpdates != 0 {
		t.Fatalf("legacy run moved %d delta updates", full.deltaUpdates)
	}
	if delta.stats != full.stats {
		t.Errorf("stats differ:\n delta: %+v\n full:  %+v", delta.stats, full.stats)
	}
	if delta.updtrStatus != full.updtrStatus {
		t.Errorf("updtr_status differs:\n delta: %s\n full:  %s", delta.updtrStatus, full.updtrStatus)
	}
	if delta.pull != full.pull {
		t.Errorf("pull-hop histograms differ:\n delta: %+v\n full:  %+v", delta.pull, full.pull)
	}
	if !reflect.DeepEqual(delta.series, full.series) {
		t.Errorf("window series differ:\n delta: %+v\n full:  %+v", delta.series, full.series)
	}
	if delta.csv != full.csv {
		t.Errorf("stored CSV rows differ:\n delta:\n%s\n full:\n%s", delta.csv, full.csv)
	}
}
