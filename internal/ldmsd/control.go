package ldmsd

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Control protocol: the owner of an ldmsd controls it through a local UNIX
// domain socket (paper §IV-B: "Access is controlled via permissions on a
// UNIX Domain Socket"; §IV-G: "The owner of an LDMS instance controls it
// through a local UNIX Domain socket").
//
// Wire format: one command line in, then a status line ("OK" or
// "ERR <message>") followed by output lines and a terminating "." line.

// ControlServer serves the daemon's Exec interface on a UNIX socket.
type ControlServer struct {
	d  *Daemon
	ln net.Listener
	wg sync.WaitGroup
}

// ServeControl starts the control socket at path. The socket file is
// created with owner-only permissions by the OS default umask; callers may
// tighten it further.
func (d *Daemon) ServeControl(path string) (*ControlServer, error) {
	ln, err := net.Listen("unix", path)
	if err != nil {
		return nil, fmt.Errorf("ldmsd %s: control socket: %w", d.name, err)
	}
	cs := &ControlServer{d: d, ln: ln}
	cs.wg.Add(1)
	go cs.acceptLoop()
	return cs, nil
}

// Addr returns the socket path.
func (cs *ControlServer) Addr() string { return cs.ln.Addr().String() }

// Close stops the control server.
func (cs *ControlServer) Close() error {
	err := cs.ln.Close()
	cs.wg.Wait()
	return err
}

func (cs *ControlServer) acceptLoop() {
	defer cs.wg.Done()
	for {
		conn, err := cs.ln.Accept()
		if err != nil {
			return
		}
		cs.wg.Add(1)
		go func() {
			defer cs.wg.Done()
			cs.serve(conn)
		}()
	}
}

func (cs *ControlServer) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		out, err := cs.d.Exec(strings.TrimSpace(line))
		if err != nil {
			fmt.Fprintf(w, "ERR %s\n.\n", strings.ReplaceAll(err.Error(), "\n", " "))
		} else {
			w.WriteString("OK\n")
			if out != "" {
				for _, l := range strings.Split(out, "\n") {
					// Dot-stuff output lines that would terminate the reply.
					if l == "." {
						l = ".."
					}
					w.WriteString(l)
					w.WriteByte('\n')
				}
			}
			w.WriteString(".\n")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// ControlClient is the client side used by ldmsctl.
type ControlClient struct {
	conn net.Conn
	r    *bufio.Reader
}

// DialControl connects to a daemon's control socket.
func DialControl(path string) (*ControlClient, error) {
	conn, err := net.Dial("unix", path)
	if err != nil {
		return nil, err
	}
	return &ControlClient{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Exec sends one command and returns its output.
func (c *ControlClient) Exec(cmd string) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", strings.TrimSpace(cmd)); err != nil {
		return "", err
	}
	status, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	status = strings.TrimRight(status, "\n")
	var out strings.Builder
	if strings.HasPrefix(status, "ERR ") || status == "ERR" {
		// Error replies still terminate with ".".
		for {
			l, err := c.r.ReadString('\n')
			if err != nil || strings.TrimRight(l, "\n") == "." {
				break
			}
		}
		return "", fmt.Errorf("%s", strings.TrimPrefix(status, "ERR "))
	}
	for {
		l, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		l = strings.TrimRight(l, "\n")
		if l == "." {
			break
		}
		if strings.HasPrefix(l, "..") {
			l = l[1:]
		}
		if out.Len() > 0 {
			out.WriteByte('\n')
		}
		out.WriteString(l)
	}
	return out.String(), nil
}

// Close releases the client connection.
func (c *ControlClient) Close() error { return c.conn.Close() }
