// Package psnap implements a real (measured, not simulated) PSNAP-style
// OS-noise profiler: "an OS and network noise profiling tool which
// performs multiple iterations of a loop calibrated to run for a given
// amount of time. On an unloaded system, variation from the ideal amount
// of time can be attributed to system noise" (paper §V-A1).
//
// The impact experiments F5/F8 run this profiler on the actual host with a
// real ldmsd sampling the real /proc alongside, so the measured histogram
// tail is a genuine interference measurement rather than a model output.
package psnap

import (
	"sort"
	"time"
)

// spinUnit is the calibrated work quantum. The accumulator defeats
// dead-code elimination.
var sink uint64

// spin performs n units of busy work.
func spin(n int) {
	acc := sink
	for i := 0; i < n; i++ {
		acc = acc*2862933555777941757 + 3037000493
	}
	sink = acc
}

// Calibrate determines how many spin units take approximately target on
// this machine: double until the measured time exceeds the target, then
// refine the linear estimate with min-of-several measurements so a single
// preemption during calibration cannot skew the loop time.
func Calibrate(target time.Duration) int {
	n := 1024
	var d time.Duration
	for {
		start := time.Now()
		spin(n)
		d = time.Since(start)
		if d >= target || n > 1<<30 {
			break
		}
		n *= 2
	}
	scaled := int(float64(n) * float64(target) / float64(d))
	if scaled < 1 {
		scaled = 1
	}
	for round := 0; round < 3; round++ {
		best := time.Duration(1 << 62)
		for i := 0; i < 5; i++ {
			start := time.Now()
			spin(scaled)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if best <= 0 {
			break
		}
		next := int(float64(scaled) * float64(target) / float64(best))
		if next < 1 {
			next = 1
		}
		// Converged within 2%: done.
		if diff := next - scaled; diff < scaled/50 && diff > -scaled/50 {
			return next
		}
		scaled = next
	}
	return scaled
}

// Result is a PSNAP run's loop-duration histogram in microsecond buckets.
type Result struct {
	Target time.Duration
	Loops  int
	Hist   map[int]int64
}

// Run executes loops iterations of the calibrated loop and returns the
// duration histogram. units comes from Calibrate.
func Run(loops, units int, target time.Duration) Result {
	hist := make(map[int]int64, 64)
	for i := 0; i < loops; i++ {
		start := time.Now()
		spin(units)
		us := int((time.Since(start) + 500*time.Nanosecond) / time.Microsecond)
		hist[us]++
	}
	return Result{Target: target, Loops: loops, Hist: hist}
}

// RunParallel executes the calibrated loop on workers goroutines
// concurrently (loops split among them) and merges the histograms. Running
// one worker per core reproduces the paper's fully-packed nodes (32 tasks
// per node), where a sampler firing must steal cycles from some task
// rather than run on an idle core.
func RunParallel(workers, loops, units int, target time.Duration) Result {
	if workers < 1 {
		workers = 1
	}
	results := make(chan Result, workers)
	per := loops / workers
	for w := 0; w < workers; w++ {
		go func() {
			results <- Run(per, units, target)
		}()
	}
	merged := Result{Target: target, Loops: per * workers, Hist: make(map[int]int64)}
	for w := 0; w < workers; w++ {
		r := <-results
		for b, c := range r.Hist {
			merged.Hist[b] += c
		}
	}
	return merged
}

// Total returns the loop count recorded in the histogram.
func (r Result) Total() int64 {
	var n int64
	for _, c := range r.Hist {
		n += c
	}
	return n
}

// TailBeyond counts loops at or beyond us microseconds.
func (r Result) TailBeyond(us int) int64 {
	var n int64
	for b, c := range r.Hist {
		if b >= us {
			n += c
		}
	}
	return n
}

// Quantile returns the duration bucket at quantile q (0..1).
func (r Result) Quantile(q float64) int {
	type bc struct {
		b int
		c int64
	}
	var buckets []bc
	var total int64
	for b, c := range r.Hist {
		buckets = append(buckets, bc{b, c})
		total += c
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].b < buckets[j].b })
	want := int64(q * float64(total))
	var cum int64
	for _, x := range buckets {
		cum += x.c
		if cum >= want {
			return x.b
		}
	}
	if len(buckets) == 0 {
		return 0
	}
	return buckets[len(buckets)-1].b
}
