package psnap

import (
	"testing"
	"time"
)

func TestCalibrateMonotone(t *testing.T) {
	short := Calibrate(20 * time.Microsecond)
	long := Calibrate(200 * time.Microsecond)
	if short < 1 || long < 1 {
		t.Fatalf("calibration returned %d / %d", short, long)
	}
	if long <= short {
		t.Errorf("longer target should need more units: %d vs %d", long, short)
	}
}

func TestRunHistogramCentered(t *testing.T) {
	target := 100 * time.Microsecond
	// On shared machines a burst of competing load during calibration can
	// skew one attempt; the property under test is that an undisturbed
	// calibrate+run centers near the target, so allow a few attempts.
	var med int
	for attempt := 0; attempt < 3; attempt++ {
		units := Calibrate(target)
		res := Run(2000, units, target)
		if res.Total() != 2000 {
			t.Fatalf("total = %d", res.Total())
		}
		med = res.Quantile(0.5)
		if med >= 50 && med <= 150 {
			return
		}
	}
	t.Errorf("median loop = %d µs after 3 attempts, want ≈100", med)
}

func TestTailBeyond(t *testing.T) {
	r := Result{Hist: map[int]int64{100: 10, 500: 2}}
	if r.TailBeyond(300) != 2 {
		t.Errorf("tail = %d", r.TailBeyond(300))
	}
	if r.TailBeyond(0) != 12 {
		t.Errorf("full tail = %d", r.TailBeyond(0))
	}
}

func TestQuantileEmpty(t *testing.T) {
	r := Result{Hist: map[int]int64{}}
	if r.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}
