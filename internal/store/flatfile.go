package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"goldms/internal/metric"
)

// flatStore is the flat-file plugin: one file per metric name (paper
// §IV-A: "a file per metric name (e.g. Active and Cached memory are stored
// in 2 separate files)"), each line "time time_usec compid value".
type flatStore struct {
	mu      sync.Mutex
	dir     string
	files   []*bufio.Writer
	osf     []*os.File
	written int64
	closed  bool
}

// newFlat creates the store_flatfile plugin rooted at cfg.Path.
func newFlat(cfg Config) (Store, error) {
	if err := os.MkdirAll(cfg.Path, 0o755); err != nil {
		return nil, fmt.Errorf("store_flatfile: %w", err)
	}
	s := &flatStore{dir: cfg.Path}
	for _, name := range cfg.Names {
		f, err := os.OpenFile(filepath.Join(cfg.Path, sanitize(name)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("store_flatfile: %w", err)
		}
		s.osf = append(s.osf, f)
		s.files = append(s.files, bufio.NewWriterSize(f, 16<<10))
	}
	return s, nil
}

// sanitize makes a metric name safe as a file name.
func sanitize(name string) string {
	b := []byte(name)
	for i, c := range b {
		if c == '/' || c == 0 {
			b[i] = '_'
		}
	}
	return string(b)
}

// Name implements Store.
func (s *flatStore) Name() string { return "store_flatfile" }

// Store implements Store.
func (s *flatStore) Store(row metric.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store_flatfile: closed")
	}
	if len(row.Values) != len(s.files) {
		return fmt.Errorf("store_flatfile: row has %d values, store %d files", len(row.Values), len(s.files))
	}
	for i, v := range row.Values {
		buf := make([]byte, 0, 48)
		buf = strconv.AppendInt(buf, row.Time.Unix(), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(row.Time.Nanosecond()/1000), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, row.CompID, 10)
		buf = append(buf, ' ')
		switch v.Type {
		case metric.TypeD64, metric.TypeF32:
			buf = strconv.AppendFloat(buf, v.F64(), 'g', -1, 64)
		case metric.TypeS8, metric.TypeS16, metric.TypeS32, metric.TypeS64:
			buf = strconv.AppendInt(buf, v.S64(), 10)
		default:
			buf = strconv.AppendUint(buf, v.U64(), 10)
		}
		buf = append(buf, '\n')
		n, err := s.files[i].Write(buf)
		s.written += int64(n)
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush implements Store.
func (s *flatStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	for i, w := range s.files {
		if err := w.Flush(); err != nil {
			return err
		}
		if err := s.osf[i].Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Store.
func (s *flatStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for i, w := range s.files {
		if w != nil {
			if err := w.Flush(); err != nil && first == nil {
				first = err
			}
		}
		if s.osf[i] != nil {
			if err := s.osf[i].Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// BytesWritten implements Store.
func (s *flatStore) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

func init() {
	Register("store_flatfile", newFlat)
}
