package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"goldms/internal/metric"
)

// Compile-time interface checks.
var (
	_ Store      = (*flatStore)(nil)
	_ BatchStore = (*flatStore)(nil)
)

// flatStore is the flat-file plugin: one file per metric name (paper
// §IV-A: "a file per metric name (e.g. Active and Cached memory are stored
// in 2 separate files)"), each line "time time_usec compid value".
type flatStore struct {
	mu      sync.Mutex
	dir     string
	files   []*bufio.Writer
	osf     []*os.File
	written int64
	scratch []byte // line/batch formatting buffer, reused across calls
	closed  bool
}

// newFlat creates the store_flatfile plugin rooted at cfg.Path.
func newFlat(cfg Config) (Store, error) {
	if err := os.MkdirAll(cfg.Path, 0o755); err != nil {
		return nil, fmt.Errorf("store_flatfile: %w", err)
	}
	s := &flatStore{dir: cfg.Path}
	for _, name := range cfg.Names {
		f, err := os.OpenFile(filepath.Join(cfg.Path, sanitize(name)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("store_flatfile: %w", err)
		}
		s.osf = append(s.osf, f)
		s.files = append(s.files, bufio.NewWriterSize(f, 16<<10))
	}
	return s, nil
}

// sanitize makes a metric name safe as a file name.
func sanitize(name string) string {
	b := []byte(name)
	for i, c := range b {
		if c == '/' || c == 0 {
			b[i] = '_'
		}
	}
	return string(b)
}

// Name implements Store.
func (s *flatStore) Name() string { return "store_flatfile" }

// appendFlatLine formats one "time time_usec compid value" line onto buf.
//
//ldms:hotpath
func appendFlatLine(buf []byte, row metric.Row, v metric.Value) []byte {
	buf = strconv.AppendInt(buf, row.Time.Unix(), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(row.Time.Nanosecond()/1000), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, row.CompID, 10)
	buf = append(buf, ' ')
	buf = appendValue(buf, v)
	return append(buf, '\n')
}

// Store implements Store.
func (s *flatStore) Store(row metric.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store_flatfile: closed")
	}
	if len(row.Values) != len(s.files) {
		return fmt.Errorf("store_flatfile: row has %d values, store %d files", len(row.Values), len(s.files))
	}
	for i, v := range row.Values {
		s.scratch = appendFlatLine(s.scratch[:0], row, v)
		n, err := s.files[i].Write(s.scratch)
		s.written += int64(n)
		if err != nil {
			return err
		}
	}
	return nil
}

// StoreBatch implements BatchStore: one lock acquisition for the whole
// batch and, per metric file, all of the batch's lines formatted into one
// reused buffer and handed to the writer in a single call.
func (s *flatStore) StoreBatch(rows []metric.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store_flatfile: closed")
	}
	for _, row := range rows {
		if len(row.Values) != len(s.files) {
			return fmt.Errorf("store_flatfile: row has %d values, store %d files", len(row.Values), len(s.files))
		}
	}
	for i, w := range s.files {
		s.scratch = s.scratch[:0]
		for _, row := range rows {
			s.scratch = appendFlatLine(s.scratch, row, row.Values[i])
		}
		n, err := w.Write(s.scratch)
		s.written += int64(n)
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush implements Store.
func (s *flatStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	for i, w := range s.files {
		if err := w.Flush(); err != nil {
			return err
		}
		if err := s.osf[i].Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Store.
func (s *flatStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for i, w := range s.files {
		if w != nil {
			if err := w.Flush(); err != nil && first == nil {
				first = err
			}
		}
		if s.osf[i] != nil {
			if err := s.osf[i].Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// BytesWritten implements Store.
func (s *flatStore) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

func init() {
	Register("store_flatfile", newFlat)
}
