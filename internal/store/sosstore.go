package store

import (
	"fmt"
	"sync"

	"goldms/internal/metric"
	"goldms/internal/sos"
)

// Compile-time interface checks.
var (
	_ Store      = (*sosStore)(nil)
	_ BatchStore = (*sosStore)(nil)
)

// sosStore is the store_sos plugin: samples append to a SOS container
// rooted at cfg.Path.
type sosStore struct {
	mu sync.Mutex
	c  *sos.Container
}

// newSOS opens the SOS container at cfg.Path, creating it if absent.
func newSOS(cfg Config) (Store, error) {
	c, err := sos.Open(cfg.Path, nil)
	if err != nil {
		var cerr error
		c, cerr = sos.Create(cfg.Path, cfg.Schema, cfg.Names, cfg.Types, nil)
		if cerr != nil {
			return nil, fmt.Errorf("store_sos: open: %v; create: %w", err, cerr)
		}
	}
	return &sosStore{c: c}, nil
}

// Name implements Store.
func (s *sosStore) Name() string { return "store_sos" }

// Store implements Store.
func (s *sosStore) Store(row metric.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Append(row.Time, row.CompID, row.Values)
}

// StoreBatch implements BatchStore: the whole batch appends under one
// lock acquisition.
func (s *sosStore) StoreBatch(rows []metric.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, row := range rows {
		if err := s.c.Append(row.Time, row.CompID, row.Values); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements Store.
func (s *sosStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Sync()
}

// Close implements Store.
func (s *sosStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Close()
}

// BytesWritten implements Store.
func (s *sosStore) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Stats().BytesWritten
}

// Container exposes the underlying SOS container for analysis tooling.
func (s *sosStore) Container() *sos.Container { return s.c }

func init() {
	Register("store_sos", newSOS)
}
