package store

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"goldms/internal/metric"
)

// benchRows builds n flattened samples of a small meminfo-like schema,
// sharing one Names slice the way the storage pipeline does.
func benchRows(n int) []metric.Row {
	rows := make([]metric.Row, n)
	for i := range rows {
		rows[i] = metric.Row{
			Time:     time.Unix(int64(1000+i), 250000000),
			Instance: "n1/meminfo",
			Schema:   "meminfo",
			CompID:   uint64(i),
			Names:    colNames,
			Values: []metric.Value{
				metric.U64Value(uint64(i)), metric.U64Value(uint64(2 * i)),
				metric.F64Value(float64(i) / 3),
			},
		}
	}
	return rows
}

// BenchmarkStorePipeline compares the per-row Store path against the
// batched StoreBatch path for the file-backed plugins. One benchmark op
// processes batchRows rows, so ns/row = ns/op ÷ 256 and allocs/row =
// allocs/op ÷ 256 (recorded in EXPERIMENTS.md).
func BenchmarkStorePipeline(b *testing.B) {
	const batchRows = 256
	rows := benchRows(batchRows)
	for _, plugin := range []string{"store_csv", "store_flatfile"} {
		for _, mode := range []string{"row", "batch"} {
			b.Run(fmt.Sprintf("%s/%s", plugin, mode), func(b *testing.B) {
				path := filepath.Join(b.TempDir(), "out")
				s, err := New(plugin, Config{
					Path: path, Schema: "meminfo", Names: colNames, Types: colTypes,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if mode == "row" {
						for _, r := range rows {
							if err := s.Store(r); err != nil {
								b.Fatal(err)
							}
						}
					} else {
						if err := Batch(s, rows); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}
