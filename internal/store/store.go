// Package store implements the LDMS storage plugin API and the CSV,
// flat-file, and SOS backends (paper §IV-A: "Storage plugins write in a
// variety of formats. Currently these include MySQL, flat file, and a
// proprietary structured file format called Scalable Object Store").
//
// Store plugins run on aggregators. A storage policy hands each
// consistent, updated metric-set sample to the plugin as a flattened Row;
// stale or torn samples never reach a store (the updater filters them using
// the DGN and consistent flag).
package store

import (
	"fmt"
	"sort"
	"sync"

	"goldms/internal/metric"
)

// Config is the common configuration for store creation.
type Config struct {
	// Path is the store root (a directory or file path, by plugin).
	Path string
	// Schema is the metric-set schema this store instance receives.
	Schema string
	// Names and Types define the schema columns, known at policy start
	// from the first matched set.
	Names []string
	Types []metric.Type
	// Options holds plugin-specific settings.
	Options map[string]string
}

// opt returns an option value or a default.
func (c Config) opt(key, def string) string {
	if v, ok := c.Options[key]; ok {
		return v
	}
	return def
}

// Store receives flattened samples for one schema.
type Store interface {
	// Name returns the plugin type name.
	Name() string
	// Store appends one sample.
	Store(row metric.Row) error
	// Flush forces buffered data to stable storage.
	Flush() error
	// Close flushes and releases resources.
	Close() error
	// BytesWritten reports the cumulative bytes written, for the
	// data-volume accounting of experiment T1.
	BytesWritten() int64
}

// BatchStore is implemented by plugins that can absorb many rows in one
// call: one lock acquisition and (for file backends) one buffered write
// per batch instead of per row. The storage pipeline hands whole queue
// drains to StoreBatch; rows and their Values slices are only valid for
// the duration of the call (the pipeline recycles them afterwards), so
// implementations must copy anything they retain.
type BatchStore interface {
	Store
	// StoreBatch appends rows in order. On error the batch is abandoned;
	// how many rows landed is plugin-defined.
	StoreBatch(rows []metric.Row) error
}

// Batch hands rows to s in one StoreBatch call when the plugin supports
// it, falling back to a per-row Store loop otherwise.
func Batch(s Store, rows []metric.Row) error {
	if bs, ok := s.(BatchStore); ok {
		return bs.StoreBatch(rows)
	}
	for _, r := range rows {
		if err := s.Store(r); err != nil {
			return err
		}
	}
	return nil
}

// Factory constructs a configured store.
type Factory func(cfg Config) (Store, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register adds a store factory under name; duplicates panic.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("store: duplicate plugin %q", name))
	}
	registry[name] = f
}

// New instantiates the named store plugin.
func New(name string, cfg Config) (Store, error) {
	regMu.RLock()
	f := registry[name]
	regMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("store: unknown plugin %q", name)
	}
	if len(cfg.Names) == 0 {
		return nil, fmt.Errorf("store %s: no schema columns configured", name)
	}
	return f(cfg)
}

// Names lists registered store plugins, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
