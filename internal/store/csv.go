package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"goldms/internal/metric"
)

// Compile-time interface checks.
var (
	_ Store      = (*csvStore)(nil)
	_ BatchStore = (*csvStore)(nil)
)

// csvStore is the store_csv plugin: one comma-separated-value file per
// metric set schema, one row per (component, sample). The header row is
// written to the data file, or to a separate .HEADER file when the
// altheader option is set (paper §IV-C: "optionally write header to
// separate file").
type csvStore struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	w         *bufio.Writer
	names     []string
	header    string
	altHeader bool
	rollBytes int64 // roll to a numbered file after this many bytes (0 = never)
	fileBytes int64 // bytes in the current file
	rolls     int
	written   int64
	scratch   []byte // row/batch formatting buffer, reused across calls
	closed    bool
}

// newCSV creates the store_csv plugin. Options:
//
//	altheader=1     write the header to <path>.HEADER instead of the data file
//	rollover=<n>    roll the data file after ~n bytes; rolled files are
//	                renamed <path>.1, <path>.2, ... (the LDMS store_csv
//	                rollover feature, needed for multi-day continuous runs)
func newCSV(cfg Config) (Store, error) {
	if err := os.MkdirAll(filepath.Dir(cfg.Path), 0o755); err != nil {
		return nil, fmt.Errorf("store_csv: %w", err)
	}
	header := "#Time,Time_usec,CompId"
	for _, n := range cfg.Names {
		header += "," + n
	}
	header += "\n"
	s := &csvStore{
		path:      cfg.Path,
		names:     cfg.Names,
		header:    header,
		altHeader: cfg.opt("altheader", "0") == "1",
		rolls:     lastRoll(cfg.Path),
	}
	if v := cfg.opt("rollover", ""); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("store_csv: bad rollover %q", v)
		}
		s.rollBytes = n
	}
	if s.altHeader {
		if err := os.WriteFile(cfg.Path+".HEADER", []byte(header), 0o644); err != nil {
			return nil, err
		}
	}
	if err := s.openFileLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// lastRoll scans for existing <path>.N rolled files and returns the
// highest N, so a restarted daemon continues the numbering instead of
// renaming its first roll over an existing <path>.1.
func lastRoll(path string) int {
	matches, err := filepath.Glob(path + ".*")
	if err != nil {
		return 0
	}
	max := 0
	for _, m := range matches {
		n, err := strconv.Atoi(strings.TrimPrefix(m, path+"."))
		if err == nil && n > max {
			max = n
		}
	}
	return max
}

// openFileLocked opens (or reopens after a roll) the data file and writes
// the header when the file is fresh. Caller holds s.mu or is the
// constructor.
func (s *csvStore) openFileLocked() error {
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store_csv: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	s.f = f
	s.w = bufio.NewWriterSize(f, 64<<10)
	s.fileBytes = st.Size()
	if !s.altHeader && st.Size() == 0 {
		n, err := s.w.WriteString(s.header)
		s.written += int64(n)
		s.fileBytes += int64(n)
		if err != nil {
			f.Close()
			return err
		}
	}
	return nil
}

// rollLocked renames the current file aside and starts a fresh one.
func (s *csvStore) rollLocked() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	s.rolls++
	if err := os.Rename(s.path, fmt.Sprintf("%s.%d", s.path, s.rolls)); err != nil {
		return err
	}
	return s.openFileLocked()
}

// Name implements Store.
func (s *csvStore) Name() string { return "store_csv" }

// appendCSVRow formats one row onto buf.
//
//ldms:hotpath
func appendCSVRow(buf []byte, row metric.Row) []byte {
	buf = strconv.AppendInt(buf, row.Time.Unix(), 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, int64(row.Time.Nanosecond()/1000), 10)
	buf = append(buf, ',')
	buf = strconv.AppendUint(buf, row.CompID, 10)
	for _, v := range row.Values {
		buf = append(buf, ',')
		buf = appendValue(buf, v)
	}
	return append(buf, '\n')
}

// appendValue formats a metric value in its natural representation.
//
//ldms:hotpath
func appendValue(buf []byte, v metric.Value) []byte {
	switch v.Type {
	case metric.TypeD64, metric.TypeF32:
		return strconv.AppendFloat(buf, v.F64(), 'g', -1, 64)
	case metric.TypeS8, metric.TypeS16, metric.TypeS32, metric.TypeS64:
		return strconv.AppendInt(buf, v.S64(), 10)
	default:
		return strconv.AppendUint(buf, v.U64(), 10)
	}
}

// writeScratchLocked drains the formatting buffer to the data file and
// rolls if the size threshold was crossed. Caller holds s.mu.
func (s *csvStore) writeScratchLocked() error {
	if len(s.scratch) == 0 {
		return nil
	}
	n, err := s.w.Write(s.scratch)
	s.written += int64(n)
	s.fileBytes += int64(n)
	s.scratch = s.scratch[:0]
	if err != nil {
		return err
	}
	if s.rollBytes > 0 && s.fileBytes >= s.rollBytes {
		return s.rollLocked()
	}
	return nil
}

// Store implements Store.
func (s *csvStore) Store(row metric.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store_csv: closed")
	}
	s.scratch = appendCSVRow(s.scratch[:0], row)
	return s.writeScratchLocked()
}

// StoreBatch implements BatchStore: all rows are formatted into one
// reused buffer and written under a single lock acquisition. The
// rollover threshold is still honored mid-batch.
func (s *csvStore) StoreBatch(rows []metric.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store_csv: closed")
	}
	s.scratch = s.scratch[:0]
	for _, row := range rows {
		s.scratch = appendCSVRow(s.scratch, row)
		if s.rollBytes > 0 && s.fileBytes+int64(len(s.scratch)) >= s.rollBytes {
			if err := s.writeScratchLocked(); err != nil {
				return err
			}
		}
	}
	return s.writeScratchLocked()
}

// Flush implements Store.
func (s *csvStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close implements Store.
func (s *csvStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// BytesWritten implements Store.
func (s *csvStore) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

func init() {
	Register("store_csv", newCSV)
}
