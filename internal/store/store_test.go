package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"goldms/internal/metric"
)

var (
	colNames = []string{"Active", "Cached", "load"}
	colTypes = []metric.Type{metric.TypeU64, metric.TypeU64, metric.TypeD64}
)

func testRow(ts int64, comp uint64, active, cached uint64, load float64) metric.Row {
	return metric.Row{
		Time:     time.Unix(ts, 250000000),
		Instance: "n1/meminfo",
		Schema:   "meminfo",
		CompID:   comp,
		Names:    colNames,
		Values: []metric.Value{
			metric.U64Value(active), metric.U64Value(cached), metric.F64Value(load),
		},
	}
}

func TestCSVStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meminfo.csv")
	s, err := New("store_csv", Config{Path: path, Schema: "meminfo", Names: colNames, Types: colTypes})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store(testRow(100, 1, 111, 222, 1.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(testRow(120, 2, 333, 444, 2.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), b)
	}
	if lines[0] != "#Time,Time_usec,CompId,Active,Cached,load" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "100,250000,1,111,222,1.5" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if s.BytesWritten() != int64(len(b)) {
		t.Errorf("BytesWritten = %d, file = %d", s.BytesWritten(), len(b))
	}
}

func TestCSVAltHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.csv")
	s, err := New("store_csv", Config{
		Path: path, Schema: "s", Names: colNames, Types: colTypes,
		Options: map[string]string{"altheader": "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Store(testRow(1, 1, 1, 2, 3))
	s.Close()
	b, _ := os.ReadFile(path)
	if strings.HasPrefix(string(b), "#") {
		t.Error("header written to data file despite altheader")
	}
	h, err := os.ReadFile(path + ".HEADER")
	if err != nil || !strings.HasPrefix(string(h), "#Time") {
		t.Errorf("HEADER file: %q err=%v", h, err)
	}
}

func TestCSVAppendAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.csv")
	cfg := Config{Path: path, Schema: "s", Names: colNames, Types: colTypes}
	s, _ := New("store_csv", cfg)
	s.Store(testRow(1, 1, 1, 2, 3))
	s.Close()
	s2, err := New("store_csv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.Store(testRow(2, 1, 4, 5, 6))
	s2.Close()
	b, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 3 { // one header + two rows; header not duplicated
		t.Errorf("lines after reopen = %d:\n%s", len(lines), b)
	}
}

func TestFlatfileStore(t *testing.T) {
	dir := t.TempDir()
	s, err := New("store_flatfile", Config{Path: dir, Schema: "meminfo", Names: colNames, Types: colTypes})
	if err != nil {
		t.Fatal(err)
	}
	s.Store(testRow(100, 7, 11, 22, 0.5))
	s.Store(testRow(101, 7, 12, 23, 0.6))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// One file per metric name.
	for _, name := range colNames {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("metric file %s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if len(lines) != 2 {
			t.Errorf("%s lines = %d", name, len(lines))
		}
	}
	b, _ := os.ReadFile(filepath.Join(dir, "Active"))
	if !strings.HasPrefix(string(b), "100 250000 7 11\n") {
		t.Errorf("Active content = %q", b)
	}
	b, _ = os.ReadFile(filepath.Join(dir, "load"))
	if !strings.Contains(string(b), " 0.5") {
		t.Errorf("load content = %q", b)
	}
}

func TestFlatfileCardinalityMismatch(t *testing.T) {
	dir := t.TempDir()
	s, _ := New("store_flatfile", Config{Path: dir, Schema: "s", Names: colNames, Types: colTypes})
	row := testRow(1, 1, 1, 2, 3)
	row.Values = row.Values[:1]
	if err := s.Store(row); err == nil {
		t.Error("mismatched row accepted")
	}
	s.Close()
}

func TestSOSStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sos")
	cfg := Config{Path: dir, Schema: "meminfo", Names: colNames, Types: colTypes}
	s, err := New("store_sos", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Store(testRow(int64(100+i), 3, uint64(i), 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if s.BytesWritten() == 0 {
		t.Error("no bytes written")
	}
	s.Close()

	// Reopen appends to the same container.
	s2, err := New("store_sos", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.Store(testRow(200, 3, 99, 0, 0))
	ss, ok := s2.(*sosStore)
	if !ok {
		t.Fatal("not a sosStore")
	}
	it, _ := ss.Container().Query(time.Time{}, time.Time{}, 0)
	n := 0
	for {
		_, more, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		n++
	}
	if n != 6 {
		t.Errorf("records = %d want 6", n)
	}
	s2.Close()
}

func TestUnknownStore(t *testing.T) {
	if _, err := New("store_mysql", Config{Names: colNames, Types: colTypes}); err == nil {
		t.Error("unknown plugin accepted")
	}
}

func TestEmptySchemaRejected(t *testing.T) {
	if _, err := New("store_csv", Config{Path: filepath.Join(t.TempDir(), "x.csv")}); err == nil {
		t.Error("empty schema accepted")
	}
}

func TestNamesRegistered(t *testing.T) {
	got := strings.Join(Names(), ",")
	for _, want := range []string{"store_csv", "store_flatfile", "store_sos"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %s in %q", want, got)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a/b"); got != "a_b" {
		t.Errorf("sanitize = %q", got)
	}
}

func TestCSVRollover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "roll.csv")
	s, err := New("store_csv", Config{
		Path: path, Schema: "s", Names: colNames, Types: colTypes,
		Options: map[string]string{"rollover": "200"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.Store(testRow(int64(i), 1, uint64(i), 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Rolled files exist and each non-final file starts with the header.
	rolled, err := filepath.Glob(path + ".*")
	if err != nil || len(rolled) < 2 {
		t.Fatalf("rolled files = %v err=%v", rolled, err)
	}
	totalRows := 0
	for _, p := range append(rolled, path) {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if !strings.HasPrefix(lines[0], "#Time") {
			t.Errorf("%s lacks header", p)
		}
		totalRows += len(lines) - 1
	}
	if totalRows != 40 {
		t.Errorf("rows across rolled files = %d want 40", totalRows)
	}
}

func TestCSVRolloverContinuesAcrossRestart(t *testing.T) {
	// Regression: rolls used to reset to 0 on restart, so the first roll
	// of the new process renamed over the existing <path>.1.
	path := filepath.Join(t.TempDir(), "roll.csv")
	cfg := Config{
		Path: path, Schema: "s", Names: colNames, Types: colTypes,
		Options: map[string]string{"rollover": "200"},
	}
	s, err := New("store_csv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Store(testRow(int64(i), 1, uint64(i), 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	before, _ := filepath.Glob(path + ".*")
	if len(before) == 0 {
		t.Fatal("first run produced no rolled files")
	}
	marker, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}

	// "Restarted" store must keep numbering past the existing files.
	s2, err := New("store_csv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s2.Store(testRow(int64(100+i), 1, uint64(i), 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	s2.Close()
	after, _ := filepath.Glob(path + ".*")
	if len(after) <= len(before) {
		t.Errorf("second run rolled no new files: before %v, after %v", before, after)
	}
	got, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(marker) {
		t.Errorf("restart overwrote %s.1:\nbefore: %q\nafter:  %q", path, marker, got)
	}
}

func TestCSVStoreBatchMatchesPerRow(t *testing.T) {
	dir := t.TempDir()
	rowPath := filepath.Join(dir, "row.csv")
	batchPath := filepath.Join(dir, "batch.csv")
	rows := []metric.Row{
		testRow(100, 1, 111, 222, 1.5),
		testRow(120, 2, 333, 444, 2.5),
		testRow(140, 3, 555, 666, 3.5),
	}
	sr, _ := New("store_csv", Config{Path: rowPath, Schema: "s", Names: colNames, Types: colTypes})
	for _, r := range rows {
		if err := sr.Store(r); err != nil {
			t.Fatal(err)
		}
	}
	sr.Close()
	sb, _ := New("store_csv", Config{Path: batchPath, Schema: "s", Names: colNames, Types: colTypes})
	if err := Batch(sb, rows); err != nil {
		t.Fatal(err)
	}
	if sb.BytesWritten() == 0 {
		t.Error("batch wrote no bytes")
	}
	sb.Close()
	a, _ := os.ReadFile(rowPath)
	b, _ := os.ReadFile(batchPath)
	if string(a) != string(b) {
		t.Errorf("batched CSV differs from per-row:\nrow:   %q\nbatch: %q", a, b)
	}
}

func TestCSVStoreBatchRollover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "roll.csv")
	s, err := New("store_csv", Config{
		Path: path, Schema: "s", Names: colNames, Types: colTypes,
		Options: map[string]string{"rollover": "200"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]metric.Row, 40)
	for i := range rows {
		rows[i] = testRow(int64(i), 1, uint64(i), 0, 0)
	}
	if err := Batch(s, rows); err != nil {
		t.Fatal(err)
	}
	s.Close()
	rolled, _ := filepath.Glob(path + ".*")
	if len(rolled) < 2 {
		t.Fatalf("batched rollover produced %v", rolled)
	}
	totalRows := 0
	for _, p := range append(rolled, path) {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		totalRows += len(lines) - 1 // header
	}
	if totalRows != 40 {
		t.Errorf("rows across rolled files = %d want 40", totalRows)
	}
}

func TestFlatfileStoreBatchMatchesPerRow(t *testing.T) {
	rowDir := t.TempDir()
	batchDir := t.TempDir()
	rows := []metric.Row{
		testRow(100, 7, 11, 22, 0.5),
		testRow(101, 7, 12, 23, 0.6),
	}
	sr, _ := New("store_flatfile", Config{Path: rowDir, Schema: "s", Names: colNames, Types: colTypes})
	for _, r := range rows {
		if err := sr.Store(r); err != nil {
			t.Fatal(err)
		}
	}
	sr.Close()
	sb, _ := New("store_flatfile", Config{Path: batchDir, Schema: "s", Names: colNames, Types: colTypes})
	if err := Batch(sb, rows); err != nil {
		t.Fatal(err)
	}
	sb.Close()
	for _, name := range colNames {
		a, _ := os.ReadFile(filepath.Join(rowDir, name))
		b, _ := os.ReadFile(filepath.Join(batchDir, name))
		if string(a) != string(b) {
			t.Errorf("%s: batched differs from per-row:\nrow:   %q\nbatch: %q", name, a, b)
		}
	}
}

func TestFlatfileStoreBatchCardinalityMismatch(t *testing.T) {
	s, _ := New("store_flatfile", Config{Path: t.TempDir(), Schema: "s", Names: colNames, Types: colTypes})
	bad := testRow(1, 1, 1, 2, 3)
	bad.Values = bad.Values[:1]
	if err := Batch(s, []metric.Row{testRow(2, 1, 1, 2, 3), bad}); err == nil {
		t.Error("mismatched batch accepted")
	}
	s.Close()
}

func TestSOSStoreBatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sos")
	s, err := New("store_sos", Config{Path: dir, Schema: "meminfo", Names: colNames, Types: colTypes})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]metric.Row, 5)
	for i := range rows {
		rows[i] = testRow(int64(100+i), 3, uint64(i), 0, 0)
	}
	if err := Batch(s, rows); err != nil {
		t.Fatal(err)
	}
	ss := s.(*sosStore)
	it, _ := ss.Container().Query(time.Time{}, time.Time{}, 0)
	n := 0
	for {
		_, more, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		n++
	}
	if n != 5 {
		t.Errorf("records = %d want 5", n)
	}
	s.Close()
}

// loopStore counts Store calls and implements only the base interface, to
// exercise Batch's per-row fallback.
type loopStore struct{ calls int }

func (l *loopStore) Name() string               { return "loop" }
func (l *loopStore) Store(row metric.Row) error { l.calls++; return nil }
func (l *loopStore) Flush() error               { return nil }
func (l *loopStore) Close() error               { return nil }
func (l *loopStore) BytesWritten() int64        { return 0 }

func TestBatchFallsBackToPerRow(t *testing.T) {
	ls := &loopStore{}
	rows := []metric.Row{testRow(1, 1, 1, 2, 3), testRow(2, 1, 4, 5, 6)}
	if err := Batch(ls, rows); err != nil {
		t.Fatal(err)
	}
	if ls.calls != 2 {
		t.Errorf("fallback made %d Store calls, want 2", ls.calls)
	}
}

func TestCSVRolloverBadOption(t *testing.T) {
	_, err := New("store_csv", Config{
		Path: filepath.Join(t.TempDir(), "x.csv"), Schema: "s",
		Names: colNames, Types: colTypes,
		Options: map[string]string{"rollover": "zero"},
	})
	if err == nil {
		t.Fatal("bad rollover accepted")
	}
}

func TestFlushPaths(t *testing.T) {
	dir := t.TempDir()
	for _, plugin := range []string{"store_csv", "store_flatfile", "store_sos"} {
		path := filepath.Join(dir, plugin)
		s, err := New(plugin, Config{Path: path, Schema: "s", Names: colNames, Types: colTypes})
		if err != nil {
			t.Fatalf("%s: %v", plugin, err)
		}
		if err := s.Store(testRow(1, 1, 1, 2, 3)); err != nil {
			t.Fatalf("%s store: %v", plugin, err)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("%s flush: %v", plugin, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s close: %v", plugin, err)
		}
		// Idempotent close, and flush after close is harmless.
		if err := s.Close(); err != nil {
			t.Fatalf("%s second close: %v", plugin, err)
		}
		if err := s.Flush(); plugin != "store_sos" && err != nil {
			t.Fatalf("%s flush after close: %v", plugin, err)
		}
	}
}

func TestStoreAfterCloseRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.csv")
	s, _ := New("store_csv", Config{Path: path, Schema: "s", Names: colNames, Types: colTypes})
	s.Close()
	if err := s.Store(testRow(1, 1, 1, 2, 3)); err == nil {
		t.Error("csv store after close accepted")
	}
	d := t.TempDir()
	f, _ := New("store_flatfile", Config{Path: d, Schema: "s", Names: colNames, Types: colTypes})
	f.Close()
	if err := f.Store(testRow(1, 1, 1, 2, 3)); err == nil {
		t.Error("flatfile store after close accepted")
	}
}
