// Package isc simulates NCSA's Integrated System Console ingest path
// (paper §IV-F, Fig. 3): on Blue Waters the aggregators write CSV to a
// named pipe, syslog-ng forwards the stream, and the ISC database "both
// archives the data for future investigations as well as stores the most
// recent 24 hours of node metrics for live queries".
//
// An ISC instance consumes a store_csv-format stream (from any io.Reader —
// in production a FIFO), bulk-loads every row into an SOS archive, and
// maintains a bounded in-memory live window for immediate queries.
package isc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"goldms/internal/metric"
	"goldms/internal/sos"
)

// Point is one live-window sample of one metric.
type Point struct {
	Time   time.Time
	CompID uint64
	Value  float64
}

// ISC ingests a CSV metric stream.
type ISC struct {
	window     time.Duration
	archiveDir string

	mu      sync.Mutex
	archive *sos.Container
	columns []string // metric names from the header
	live    map[string][]Point
	rows    int64
	evicted int64
	latest  time.Time
}

// Options configure an ISC instance.
type Options struct {
	// Window is the live-query retention (the paper's ISC keeps 24 h).
	Window time.Duration
	// ArchiveDir, when non-empty, bulk-loads every row into an SOS
	// container there (created on the first header).
	ArchiveDir string
}

// New creates an ISC ingester.
func New(opts Options) *ISC {
	if opts.Window <= 0 {
		opts.Window = 24 * time.Hour
	}
	return &ISC{window: opts.Window, live: make(map[string][]Point), archiveDir: opts.ArchiveDir}
}

// LoadLine ingests one line of store_csv output (header lines begin with
// "#Time").
func (i *ISC) LoadLine(line string) error {
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return i.loadHeader(line)
	}
	return i.loadRow(line)
}

// loadHeader records the column layout and opens the archive.
func (i *ISC) loadHeader(line string) error {
	cols := strings.Split(strings.TrimPrefix(line, "#"), ",")
	if len(cols) < 4 || cols[0] != "Time" || cols[1] != "Time_usec" || cols[2] != "CompId" {
		return fmt.Errorf("isc: unrecognized header %q", line)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.columns = cols[3:]
	if i.archiveDir != "" && i.archive == nil {
		names := i.columns
		types := make([]metric.Type, len(names))
		for k := range types {
			types[k] = metric.TypeD64
		}
		c, err := sos.Open(i.archiveDir, nil)
		if err != nil {
			c, err = sos.Create(i.archiveDir, "isc", names, types, nil)
			if err != nil {
				return fmt.Errorf("isc: archive: %w", err)
			}
		}
		i.archive = c
	}
	return nil
}

// loadRow ingests one data row.
func (i *ISC) loadRow(line string) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.columns == nil {
		return fmt.Errorf("isc: data before header")
	}
	fields := strings.Split(line, ",")
	if len(fields) != 3+len(i.columns) {
		return fmt.Errorf("isc: row has %d fields, header defines %d", len(fields), 3+len(i.columns))
	}
	sec, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return fmt.Errorf("isc: bad time %q", fields[0])
	}
	usec, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("isc: bad usec %q", fields[1])
	}
	comp, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return fmt.Errorf("isc: bad comp %q", fields[2])
	}
	ts := time.Unix(sec, usec*1000)

	values := make([]metric.Value, len(i.columns))
	for k, f := range fields[3:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("isc: bad value %q in column %s", f, i.columns[k])
		}
		values[k] = metric.F64Value(v)
		pts := append(i.live[i.columns[k]], Point{Time: ts, CompID: comp, Value: v})
		i.live[i.columns[k]] = pts
	}
	i.rows++
	if ts.After(i.latest) {
		i.latest = ts
	}
	i.evictLocked()
	if i.archive != nil {
		if err := i.archive.Append(ts, comp, values); err != nil {
			return err
		}
	}
	return nil
}

// evictLocked drops live points older than the window.
func (i *ISC) evictLocked() {
	cutoff := i.latest.Add(-i.window)
	for name, pts := range i.live {
		drop := 0
		for drop < len(pts) && pts[drop].Time.Before(cutoff) {
			drop++
		}
		if drop > 0 {
			i.live[name] = append(pts[:0:0], pts[drop:]...)
			i.evicted += int64(drop)
		}
	}
}

// Run consumes an entire stream (the syslog-ng stand-in), returning on EOF
// or the first malformed line.
func (i *ISC) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if err := i.LoadLine(sc.Text()); err != nil {
			return err
		}
	}
	return sc.Err()
}

// LiveQuery returns live-window points of one metric (comp 0 = all) in
// [from, to); zero times mean unbounded.
func (i *ISC) LiveQuery(metricName string, comp uint64, from, to time.Time) []Point {
	i.mu.Lock()
	defer i.mu.Unlock()
	var out []Point
	for _, p := range i.live[metricName] {
		if comp != 0 && p.CompID != comp {
			continue
		}
		if !from.IsZero() && p.Time.Before(from) {
			continue
		}
		if !to.IsZero() && !p.Time.Before(to) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Stats reports ingest counters: rows loaded, live points evicted, and the
// newest timestamp seen.
func (i *ISC) Stats() (rows, evicted int64, latest time.Time) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rows, i.evicted, i.latest
}

// Archive exposes the SOS archive (nil when not configured).
func (i *ISC) Archive() *sos.Container {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.archive
}

// Close flushes and closes the archive.
func (i *ISC) Close() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.archive == nil {
		return nil
	}
	return i.archive.Close()
}
