package isc

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func header() string { return "#Time,Time_usec,CompId,Active,MemFree" }

func row(sec int64, comp uint64, active, free float64) string {
	return fmt.Sprintf("%d,0,%d,%g,%g", sec, comp, active, free)
}

func TestLoadAndLiveQuery(t *testing.T) {
	i := New(Options{Window: time.Hour})
	if err := i.LoadLine(header()); err != nil {
		t.Fatal(err)
	}
	for s := int64(0); s < 10; s++ {
		if err := i.LoadLine(row(1000+s*60, 1, float64(s), 100)); err != nil {
			t.Fatal(err)
		}
		if err := i.LoadLine(row(1000+s*60, 2, float64(s*2), 100)); err != nil {
			t.Fatal(err)
		}
	}
	pts := i.LiveQuery("Active", 1, time.Time{}, time.Time{})
	if len(pts) != 10 {
		t.Fatalf("comp-1 points = %d", len(pts))
	}
	if pts[9].Value != 9 {
		t.Errorf("last value = %g", pts[9].Value)
	}
	all := i.LiveQuery("Active", 0, time.Unix(1000+5*60, 0), time.Unix(1000+7*60, 0))
	if len(all) != 4 { // 2 comps x 2 minutes
		t.Errorf("windowed points = %d want 4", len(all))
	}
	if got := i.LiveQuery("Ghost", 0, time.Time{}, time.Time{}); got != nil {
		t.Error("unknown metric returned points")
	}
	rows, _, latest := i.Stats()
	if rows != 20 || latest.Unix() != 1000+9*60 {
		t.Errorf("rows=%d latest=%v", rows, latest)
	}
}

func TestLiveWindowEviction(t *testing.T) {
	// 1-hour live window: points older than the newest-1h must age out of
	// live queries (the ISC keeps "the most recent 24 hours ... for live
	// queries").
	i := New(Options{Window: time.Hour})
	i.LoadLine(header())
	for s := int64(0); s <= 120; s++ { // two hours at 1-minute cadence
		i.LoadLine(row(s*60, 1, float64(s), 0))
	}
	pts := i.LiveQuery("Active", 1, time.Time{}, time.Time{})
	if len(pts) != 61 {
		t.Fatalf("live points = %d want 61 (one window's worth)", len(pts))
	}
	if pts[0].Value != 60 {
		t.Errorf("oldest live value = %g want 60", pts[0].Value)
	}
	_, evicted, _ := i.Stats()
	if evicted == 0 {
		t.Error("nothing evicted")
	}
}

func TestArchiveRetainsEverything(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "isc-archive")
	i := New(Options{Window: time.Minute, ArchiveDir: dir})
	i.LoadLine(header())
	for s := int64(0); s < 100; s++ {
		if err := i.LoadLine(row(s*60, 3, float64(s), 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Live window holds only the tail...
	if n := len(i.LiveQuery("Active", 3, time.Time{}, time.Time{})); n >= 100 {
		t.Errorf("live window retained %d points", n)
	}
	// ...but the archive has every row, for "future investigations".
	it, err := i.Archive().Query(time.Time{}, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Errorf("archived rows = %d want 100", n)
	}
	if err := i.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunStream(t *testing.T) {
	var b strings.Builder
	b.WriteString(header() + "\n")
	for s := int64(0); s < 5; s++ {
		b.WriteString(row(s, 1, float64(s), 0) + "\n")
	}
	b.WriteString("\n") // blank lines are fine
	i := New(Options{})
	if err := i.Run(strings.NewReader(b.String())); err != nil {
		t.Fatal(err)
	}
	rows, _, _ := i.Stats()
	if rows != 5 {
		t.Errorf("rows = %d", rows)
	}
}

func TestMalformedInput(t *testing.T) {
	i := New(Options{})
	if err := i.LoadLine("1,2,3,4"); err == nil {
		t.Error("data before header accepted")
	}
	if err := i.LoadLine("#Wrong,Header"); err == nil {
		t.Error("bad header accepted")
	}
	i.LoadLine(header())
	for _, bad := range []string{
		"1,0,1",        // too few fields
		"x,0,1,2,3",    // bad time
		"1,y,1,2,3",    // bad usec
		"1,0,z,2,3",    // bad comp
		"1,0,1,nope,3", // bad value
		"1,0,1,2,3,4",  // too many fields
	} {
		if err := i.LoadLine(bad); err == nil {
			t.Errorf("malformed row %q accepted", bad)
		}
	}
}

// TestEndToEndFromStoreCSV feeds real store_csv output through the ISC.
func TestEndToEndFromStoreCSV(t *testing.T) {
	// Reuse the exact header/row format by generating via the store
	// package would create an import cycle in tests; instead assert the
	// formats agree on a golden line.
	golden := "#Time,Time_usec,CompId,Active,MemFree\n1400000000,250000,7,123,456\n"
	i := New(Options{})
	if err := i.Run(strings.NewReader(golden)); err != nil {
		t.Fatal(err)
	}
	pts := i.LiveQuery("MemFree", 7, time.Time{}, time.Time{})
	if len(pts) != 1 || pts[0].Value != 456 {
		t.Errorf("points = %+v", pts)
	}
	if pts[0].Time.Nanosecond() != 250000*1000 {
		t.Errorf("usec lost: %v", pts[0].Time)
	}
}
