package metric

import (
	"bytes"
	"testing"
)

func deltaTestSet(t *testing.T) *Set {
	t.Helper()
	sch := NewSchema("delta_test")
	mustAdd := func(name string, ty Type) {
		t.Helper()
		if _, err := sch.AddMetric(name, ty); err != nil {
			t.Fatalf("AddMetric(%s): %v", name, err)
		}
	}
	mustAdd("a_u8", TypeU8)
	mustAdd("b_s16", TypeS16)
	mustAdd("c_u32", TypeU32)
	mustAdd("d_u64", TypeU64)
	mustAdd("e_f32", TypeF32)
	mustAdd("f_d64", TypeD64)
	s, err := New("delta/test", sch)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// mirrorOf builds a consumer-side mirror plus its parsed metadata.
func mirrorOf(t *testing.T, s *Set) (*Set, *Meta) {
	t.Helper()
	m, err := ParseMeta(s.MetaBytes())
	if err != nil {
		t.Fatalf("ParseMeta: %v", err)
	}
	mir, err := m.NewMirror()
	if err != nil {
		t.Fatalf("NewMirror: %v", err)
	}
	return mir, m
}

// TestDeltaRoundTrip drives the full consumer protocol: full pull, then
// delta pulls applied onto the prior chunk, checking byte-identity with a
// full copy after every step.
func TestDeltaRoundTrip(t *testing.T) {
	s := deltaTestSet(t)
	mir, meta := mirrorOf(t, s)

	// Initial sample: everything set.
	s.SetValues(func(b *Batch) {
		b.SetU64(0, 7)
		b.SetS64(1, -3)
		b.SetU64(2, 100)
		b.SetU64(3, 1<<40)
		b.SetF64(4, 1.5)
		b.SetF64(5, 2.25)
	})

	// Full pull into the consumer's persistent buffer.
	buf := make([]byte, s.DataSize())
	s.CopyDataInto(buf)
	if err := mir.LoadData(buf); err != nil {
		t.Fatalf("LoadData full: %v", err)
	}
	ack := s.DGN()

	// Steady telemetry: only two metrics move.
	s.SetValues(func(b *Batch) {
		b.SetU64(0, 7) // unchanged bits
		b.SetS64(1, -4)
		b.SetU64(2, 100) // unchanged bits
		b.SetU64(3, 1<<40+1)
		b.SetF64(4, 1.5)  // unchanged bits
		b.SetF64(5, 2.25) // unchanged bits
	})

	delta, ok := s.AppendDelta(nil, ack)
	if !ok {
		t.Fatalf("AppendDelta returned ok=false")
	}
	if n := le.Uint32(delta[deltaCountOff:]); n != 2 {
		t.Fatalf("delta carries %d entries, want 2 (only changed bits)", n)
	}
	if err := meta.ApplyDelta(buf, delta); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	want := s.DataSnapshot()
	if !bytes.Equal(buf, want) {
		t.Fatalf("delta-patched chunk differs from full copy\n got %x\nwant %x", buf, want)
	}
	if err := mir.LoadData(buf); err != nil {
		t.Fatalf("LoadData after delta: %v", err)
	}

	// An idle set still yields a (header-only) delta so the consumer
	// observes timestamps and the consistent flag.
	ack = s.DGN()
	delta, ok = s.AppendDelta(nil, ack)
	if !ok {
		t.Fatalf("idle AppendDelta returned ok=false")
	}
	if len(delta) != deltaHeaderSize {
		t.Fatalf("idle delta is %d bytes, want %d", len(delta), deltaHeaderSize)
	}
	if err := meta.ApplyDelta(buf, delta); err != nil {
		t.Fatalf("idle ApplyDelta: %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("idle delta perturbed the chunk")
	}
}

// TestDeltaFallback covers the conditions under which AppendDelta refuses
// and callers must fall back to a full chunk.
func TestDeltaFallback(t *testing.T) {
	s := deltaTestSet(t)
	s.SetU64(3, 1)

	// A base ahead of the set (consumer state from a previous incarnation).
	if _, ok := s.AppendDelta(nil, s.DGN()+1); ok {
		t.Fatalf("AppendDelta accepted a future base DGN")
	}

	// A delta that cannot beat the full chunk: every metric changed from a
	// zero base, so entries + header outweigh the packed chunk.
	s.SetValues(func(b *Batch) {
		b.SetU64(0, 1)
		b.SetS64(1, 2)
		b.SetU64(2, 3)
		b.SetU64(3, 4)
		b.SetF64(4, 5)
		b.SetF64(5, 6)
	})
	if out, ok := s.AppendDelta(nil, 0); ok {
		t.Fatalf("AppendDelta encoded %d bytes where full chunk is %d", len(out), s.DataSize())
	}

	// Refusal must roll dst back to its original length.
	pre := []byte{0xAA, 0xBB}
	if out, ok := s.AppendDelta(pre, 0); ok || len(out) != 2 {
		t.Fatalf("refused AppendDelta left dst at %d bytes, want 2", len(out))
	}
}

// TestDeltaUnchangedBitsNotJournaled checks that rewriting identical values
// does not grow deltas even though the DGN advances per write.
func TestDeltaUnchangedBitsNotJournaled(t *testing.T) {
	s := deltaTestSet(t)
	s.SetValues(func(b *Batch) {
		b.SetU64(3, 42)
		b.SetF64(5, 3.5)
	})
	ack := s.DGN()

	for pass := 0; pass < 3; pass++ {
		s.SetValues(func(b *Batch) {
			b.SetU64(3, 42)
			b.SetF64(5, 3.5)
		})
	}
	if s.DGN() == ack {
		t.Fatalf("DGN did not advance across rewrite passes")
	}
	delta, ok := s.AppendDelta(nil, ack)
	if !ok {
		t.Fatalf("AppendDelta returned ok=false")
	}
	if n := le.Uint32(delta[deltaCountOff:]); n != 0 {
		t.Fatalf("identical rewrites journaled %d entries, want 0", n)
	}
}

// TestDeltaLoadDataJournals checks that a mirror journals changes arriving
// via LoadData, so a mid-tier aggregator can serve deltas off re-exported
// mirrors.
func TestDeltaLoadDataJournals(t *testing.T) {
	s := deltaTestSet(t)
	mir, meta := mirrorOf(t, s)

	s.SetU64(3, 10)
	if err := mir.LoadData(s.DataSnapshot()); err != nil {
		t.Fatalf("LoadData: %v", err)
	}

	// Downstream consumer of the mirror does a full pull.
	buf := make([]byte, mir.DataSize())
	mir.CopyDataInto(buf)
	ack := mir.DGN()

	// Next hop: only one metric moves at the source.
	s.SetU64(3, 11)
	if err := mir.LoadData(s.DataSnapshot()); err != nil {
		t.Fatalf("LoadData: %v", err)
	}

	delta, ok := mir.AppendDelta(nil, ack)
	if !ok {
		t.Fatalf("mirror AppendDelta returned ok=false")
	}
	if n := le.Uint32(delta[deltaCountOff:]); n != 1 {
		t.Fatalf("mirror delta carries %d entries, want 1", n)
	}
	if err := meta.ApplyDelta(buf, delta); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if !bytes.Equal(buf, mir.DataSnapshot()) {
		t.Fatalf("mirror delta-patched chunk differs from mirror data")
	}
}

// TestDeltaFirstLoadJournalsAll: a rebuilt mirror must not trust a diff
// against its zeroed chunk — every metric is journaled on first load.
func TestDeltaFirstLoadJournalsAll(t *testing.T) {
	s := deltaTestSet(t)
	// Source holds zeros for most metrics at a high DGN.
	s.SetU64(3, 1)
	s.SetU64(3, 0)
	mir, _ := mirrorOf(t, s)
	if err := mir.LoadData(s.DataSnapshot()); err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	delta, ok := mir.AppendDelta(nil, 1)
	if !ok {
		// Full fallback is equally safe.
		return
	}
	if n := int(le.Uint32(delta[deltaCountOff:])); n != mir.Card() {
		t.Fatalf("first load journaled %d entries, want all %d", n, mir.Card())
	}
}

// TestApplyDeltaHostile feeds malformed payloads; every one must error
// without panicking or writing out of bounds.
func TestApplyDeltaHostile(t *testing.T) {
	s := deltaTestSet(t)
	_, meta := mirrorOf(t, s)
	buf := make([]byte, s.DataSize())

	good, ok := s.AppendDelta(nil, s.DGN())
	if !ok {
		t.Fatalf("AppendDelta failed")
	}

	// Cross-wired payload: a structurally valid delta whose header claims a
	// different metadata generation must be refused before any entry lands.
	wrongMGN := append([]byte(nil), good...)
	le.PutUint64(wrongMGN[offMGN:], meta.MGN+1)

	cases := []struct {
		name  string
		delta []byte
		err   error
	}{
		{"empty", nil, ErrDeltaTruncated},
		{"short header", good[:deltaHeaderSize-1], ErrDeltaTruncated},
		{"trailing junk", append(append([]byte(nil), good...), 0xFF), ErrDeltaTrailing},
		{"wrong MGN", wrongMGN, ErrDeltaWrongMGN},
	}

	// Absurd count with no entry bytes.
	huge := append([]byte(nil), good...)
	le.PutUint32(huge[deltaCountOff:], 1<<30)
	cases = append(cases, struct {
		name  string
		delta []byte
		err   error
	}{"huge count", huge, ErrDeltaTruncated})

	// Out-of-range index.
	badIdx := append([]byte(nil), good...)
	le.PutUint32(badIdx[deltaCountOff:], 1)
	badIdx = le.AppendUint16(badIdx, uint16(s.Card()))
	badIdx = append(badIdx, 0)
	cases = append(cases, struct {
		name  string
		delta []byte
		err   error
	}{"bad index", badIdx, ErrDeltaBadIndex})

	for _, tc := range cases {
		if err := meta.ApplyDelta(buf, tc.delta); err != tc.err {
			t.Errorf("%s: ApplyDelta err = %v, want %v", tc.name, err, tc.err)
		}
	}

	// Wrong buffer size.
	if err := meta.ApplyDelta(buf[:len(buf)-1], good); err != ErrDeltaBufSize {
		t.Errorf("short buf: ApplyDelta err = %v, want %v", err, ErrDeltaBufSize)
	}

	// Hostile metadata: offset pointing into the header.
	evil := *meta
	evil.Metrics = append([]MetaMetric(nil), meta.Metrics...)
	evil.Metrics[3].Offset = 0
	d := append([]byte(nil), good...)
	le.PutUint32(d[deltaCountOff:], 1)
	d = le.AppendUint16(d, 3)
	d = le.AppendUint64(d, 1)
	if err := evil.ApplyDelta(buf, d); err != ErrDeltaBadOffset {
		t.Errorf("header offset: ApplyDelta err = %v, want %v", err, ErrDeltaBadOffset)
	}
}

// FuzzApplyDelta hammers the delta decoder with arbitrary payloads. It must
// never panic; buffers of the wrong shape and hostile entries must error.
func FuzzApplyDelta(f *testing.F) {
	sch := NewSchema("fuzz_delta")
	sch.AddMetric("a", TypeU64)
	sch.AddMetric("b", TypeU8)
	sch.AddMetric("c", TypeF32)
	s, err := New("fuzz/delta", sch)
	if err != nil {
		f.Fatalf("New: %v", err)
	}
	m, err := ParseMeta(s.MetaBytes())
	if err != nil {
		f.Fatalf("ParseMeta: %v", err)
	}
	s.SetU64(0, 99)
	if seed, ok := s.AppendDelta(nil, 0); ok {
		f.Add(seed)
	}
	f.Add([]byte{})
	buf := make([]byte, s.DataSize())
	f.Fuzz(func(t *testing.T, delta []byte) {
		_ = m.ApplyDelta(buf, delta)
	})
}
