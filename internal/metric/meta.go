package metric

import (
	"fmt"
	"time"
)

// Metadata chunk layout (all little-endian):
//
//	[0:4)   magic "GLMS"
//	[4:6)   format version
//	[6:14)  MGN
//	[14:18) metric count (cardinality)
//	[18:22) data chunk size
//	[22:..) instance name (u16 length prefix)
//	[..:..) schema name (u16 length prefix)
//	then one entry per metric:
//	        name (u16 length prefix), component ID (u64), type (u8),
//	        offset of the value in the data chunk (u32)
const (
	metaMagic   = 0x474C4D53 // "GLMS"
	metaVersion = 1

	metaOffMGN  = 6
	metaOffCard = 14
	metaOffDSz  = 18
	metaOffStr  = 22

	metaHeaderFixed = 26 // magic+ver+mgn+card+dsize + two u16 length prefixes
	metaEntryFixed  = 15 // u16 name len + u64 comp id + u8 type + u32 offset

	// Within an entry, after the variable-length name:
	entryCompOff = 0 // comp id relative to end of name
	entryTypeOff = 8
	entryValOff  = 9
)

// writeMeta serializes the set's metadata into s.meta and records each
// entry's position for later component-ID access.
func (s *Set) writeMeta(mgn, compID uint64) {
	b := s.meta
	le.PutUint32(b[0:], metaMagic)
	le.PutUint16(b[4:], metaVersion)
	le.PutUint64(b[metaOffMGN:], mgn)
	le.PutUint32(b[metaOffCard:], uint32(s.schema.Card()))
	le.PutUint32(b[metaOffDSz:], uint32(s.schema.DataSize()))

	pos := metaOffStr
	pos += putString(b, pos, s.name)
	pos += putString(b, pos, s.schema.name)

	s.entryOff = make([]uint32, s.schema.Card())
	for i, d := range s.schema.defs {
		pos += putString(b, pos, d.Name)
		s.entryOff[i] = uint32(pos)
		le.PutUint64(b[pos+entryCompOff:], compID)
		b[pos+entryTypeOff] = byte(d.Type)
		le.PutUint32(b[pos+entryValOff:], s.schema.offsets[i])
		pos += metaEntryFixed - 2 // the name length prefix was already written
	}
}

// putString writes a u16 length prefix followed by the string bytes at
// position pos, returning the number of bytes written.
func putString(b []byte, pos int, s string) int {
	le.PutUint16(b[pos:], uint16(len(s)))
	copy(b[pos+2:], s)
	return 2 + len(s)
}

// getString reads a u16-length-prefixed string at pos, returning the string
// and the following position.
func getString(b []byte, pos int) (string, int, error) {
	if pos+2 > len(b) {
		return "", 0, fmt.Errorf("metric: truncated metadata string length at %d", pos)
	}
	n := int(le.Uint16(b[pos:]))
	if pos+2+n > len(b) {
		return "", 0, fmt.Errorf("metric: truncated metadata string at %d", pos)
	}
	return string(b[pos+2 : pos+2+n]), pos + 2 + n, nil
}

// CompID returns the user-defined component ID recorded for metric i.
func (s *Set) CompID(i int) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return le.Uint64(s.meta[s.entryOff[i]+entryCompOff:])
}

// SetCompID rewrites the component ID of every metric in the set and bumps
// the metadata generation number, as any metadata modification must.
func (s *Set) SetCompID(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, off := range s.entryOff {
		le.PutUint64(s.meta[off+entryCompOff:], id)
	}
	mgn := newMGN()
	le.PutUint64(s.meta[metaOffMGN:], mgn)
	le.PutUint64(s.data[offMGN:], mgn)
}

// MetaMetric is one parsed metadata entry.
type MetaMetric struct {
	Name   string
	Type   Type
	CompID uint64
	Offset uint32
}

// Meta is a parsed metadata chunk, the result of an aggregator's lookup.
type Meta struct {
	MGN        uint64
	Instance   string
	SchemaName string
	DataSize   int
	Metrics    []MetaMetric
}

// ParseMeta decodes a serialized metadata chunk.
func ParseMeta(b []byte) (*Meta, error) {
	if len(b) < metaHeaderFixed {
		return nil, fmt.Errorf("metric: metadata too short (%d bytes)", len(b))
	}
	if le.Uint32(b[0:]) != metaMagic {
		return nil, fmt.Errorf("metric: bad metadata magic %#x", le.Uint32(b[0:]))
	}
	if v := le.Uint16(b[4:]); v != metaVersion {
		return nil, fmt.Errorf("metric: unsupported metadata version %d", v)
	}
	m := &Meta{
		MGN:      le.Uint64(b[metaOffMGN:]),
		DataSize: int(le.Uint32(b[metaOffDSz:])),
	}
	card := int(le.Uint32(b[metaOffCard:]))
	// Every entry costs at least metaEntryFixed bytes; a larger count is a
	// corrupt chunk and must not drive allocation.
	if card > len(b)/metaEntryFixed+1 {
		return nil, fmt.Errorf("metric: metadata claims %d entries in %d bytes", card, len(b))
	}

	var err error
	pos := metaOffStr
	if m.Instance, pos, err = getString(b, pos); err != nil {
		return nil, err
	}
	if m.SchemaName, pos, err = getString(b, pos); err != nil {
		return nil, err
	}
	m.Metrics = make([]MetaMetric, 0, card)
	for i := 0; i < card; i++ {
		var name string
		if name, pos, err = getString(b, pos); err != nil {
			return nil, fmt.Errorf("metric: entry %d: %w", i, err)
		}
		if pos+metaEntryFixed-2 > len(b) {
			return nil, fmt.Errorf("metric: truncated metadata entry %d", i)
		}
		m.Metrics = append(m.Metrics, MetaMetric{
			Name:   name,
			Type:   Type(b[pos+entryTypeOff]),
			CompID: le.Uint64(b[pos+entryCompOff:]),
			Offset: le.Uint32(b[pos+entryValOff:]),
		})
		pos += metaEntryFixed - 2
	}
	return m, nil
}

// NewMirror builds a local mirror Set from parsed remote metadata, as the
// aggregator does after a successful lookup (flow {c} in Fig. 2 of the
// paper). The mirror's data chunk starts zeroed and inconsistent; the first
// completed update fills it.
func (m *Meta) NewMirror(opts ...Option) (*Set, error) {
	return m.NewMirrorNamed(m.Instance, opts...)
}

// NewMirrorNamed is NewMirror with an explicit local instance name. Tiered
// aggregators use it to re-export mirrors under the paper's <producer>/<set>
// convention: the mirror's directory entry, query series, and storage rows
// all carry the qualified name while the remote MGN/DGN generations still
// propagate verbatim.
func (m *Meta) NewMirrorNamed(instance string, opts ...Option) (*Set, error) {
	schema := NewSchema(m.SchemaName)
	for _, mm := range m.Metrics {
		idx, err := schema.AddMetric(mm.Name, mm.Type)
		if err != nil {
			return nil, fmt.Errorf("metric: mirror %q: %w", m.Instance, err)
		}
		if schema.offsets[idx] != mm.Offset {
			return nil, fmt.Errorf("metric: mirror %q: offset mismatch for %q: computed %d, remote %d",
				m.Instance, mm.Name, schema.offsets[idx], mm.Offset)
		}
	}
	if schema.DataSize() != m.DataSize {
		return nil, fmt.Errorf("metric: mirror %q: data size mismatch: computed %d, remote %d",
			m.Instance, schema.DataSize(), m.DataSize)
	}
	s, err := New(instance, schema, opts...)
	if err != nil {
		return nil, err
	}
	s.local = false
	// Stamp the remote MGN into the mirror's metadata and per-metric comp
	// IDs so CompID and LoadData validation reflect the remote set.
	le.PutUint64(s.meta[metaOffMGN:], m.MGN)
	le.PutUint64(s.data[offMGN:], m.MGN)
	for i, mm := range m.Metrics {
		le.PutUint64(s.meta[s.entryOff[i]+entryCompOff:], mm.CompID)
	}
	// A fresh mirror holds no valid data yet.
	le.PutUint64(s.data[offFlags:], 0)
	return s, nil
}

// Row is a flattened view of a consistent set sample, as handed to storage
// plugins.
type Row struct {
	Time     time.Time
	Instance string
	Schema   string
	CompID   uint64
	Names    []string
	Values   []Value
}

// Snapshot extracts a storage Row from the set's current contents. The
// CompID is taken from the first metric (the common case is a single
// per-node component ID).
func (s *Set) Snapshot() Row {
	n := s.Card()
	r := Row{
		Time:     s.Timestamp(),
		Instance: s.name,
		Schema:   s.schema.Name(),
		CompID:   s.CompID(0),
		Names:    make([]string, n),
		Values:   make([]Value, n),
	}
	for i := 0; i < n; i++ {
		r.Names[i] = s.MetricName(i)
		r.Values[i] = s.Value(i)
	}
	return r
}
