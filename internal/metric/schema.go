package metric

import (
	"fmt"
)

// MetricDef describes one metric within a schema: its name and value type.
// The component ID is a per-set property assigned when a set is instantiated
// from the schema.
type MetricDef struct {
	Name string
	Type Type
}

// Schema is the blueprint for a metric set: an ordered list of metric
// definitions plus a schema name. A sampling plugin defines one schema and
// every node instantiates a set from it, so all instances share metric
// layout. Schemas are immutable once a Set has been created from them.
type Schema struct {
	name     string
	defs     []MetricDef
	offsets  []uint32 // offset of each value in the data chunk
	dataSize int      // total data chunk size including header
	index    map[string]int
	frozen   bool
}

// NewSchema returns an empty schema with the given name.
func NewSchema(name string) *Schema {
	return &Schema{
		name:     name,
		dataSize: dataHeaderSize,
		index:    make(map[string]int),
	}
}

// Name returns the schema name.
func (s *Schema) Name() string { return s.name }

// AddMetric appends a metric definition and returns its index. It fails if
// the schema has been frozen by set creation, the name is empty or
// duplicate, or the type is invalid.
func (s *Schema) AddMetric(name string, t Type) (int, error) {
	if s.frozen {
		return 0, fmt.Errorf("metric: schema %q is frozen; cannot add %q", s.name, name)
	}
	if name == "" {
		return 0, fmt.Errorf("metric: empty metric name in schema %q", s.name)
	}
	if !t.Valid() {
		return 0, fmt.Errorf("metric: invalid type for metric %q in schema %q", name, s.name)
	}
	if _, dup := s.index[name]; dup {
		return 0, fmt.Errorf("metric: duplicate metric %q in schema %q", name, s.name)
	}
	idx := len(s.defs)
	s.defs = append(s.defs, MetricDef{Name: name, Type: t})
	s.offsets = append(s.offsets, uint32(s.dataSize))
	s.dataSize += t.Size()
	s.index[name] = idx
	return idx, nil
}

// MustAddMetric is AddMetric but panics on error; for static plugin schemas
// whose validity is a programming invariant.
func (s *Schema) MustAddMetric(name string, t Type) int {
	idx, err := s.AddMetric(name, t)
	if err != nil {
		panic(err)
	}
	return idx
}

// Card returns the number of metrics in the schema (its cardinality).
func (s *Schema) Card() int { return len(s.defs) }

// Def returns the definition of metric i.
func (s *Schema) Def(i int) MetricDef { return s.defs[i] }

// Lookup returns the index of the named metric and whether it exists.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// DataSize returns the size in bytes of the data chunk for sets using this
// schema (header plus all values).
func (s *Schema) DataSize() int { return s.dataSize }

// MetaSize returns the size in bytes of the serialized metadata chunk for a
// set with the given instance name.
func (s *Schema) MetaSize(instance string) int {
	n := metaHeaderFixed + len(instance) + len(s.name)
	for _, d := range s.defs {
		n += metaEntryFixed + len(d.Name)
	}
	return n
}

// freeze marks the schema immutable.
func (s *Schema) freeze() { s.frozen = true }
