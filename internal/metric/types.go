// Package metric implements LDMS metric sets: the two-chunk (metadata +
// data) in-memory format described in §IV-B of the SC14 LDMS paper.
//
// A metric set is a named collection of typed metrics. Two contiguous
// buffers back each set:
//
//   - The metadata chunk describes the elements of the data chunk (metric
//     name, user-defined component ID, data type, offset of the element from
//     the beginning of the data chunk) and carries a metadata generation
//     number (MGN) which changes whenever the metadata is modified.
//
//   - The data chunk holds the MGN copy, the current sampled values, a data
//     generation number (DGN) incremented as each element is updated, a
//     consistent flag, and the sample timestamp.
//
// Samplers overwrite the data chunk in place on every sample; no history is
// retained. Aggregators pull only the data chunk after an initial metadata
// lookup, then use the MGN to validate their cached metadata, the DGN to
// discriminate new from stale data, and the consistent flag to discard data
// that did not all come from the same sampling event.
package metric

import (
	"fmt"
	"math"
)

// Type identifies the data type of a metric value, mirroring the LDMS value
// types.
type Type uint8

// Metric value types. All values occupy their natural width in the data
// chunk.
const (
	TypeNone Type = iota
	TypeU8
	TypeS8
	TypeU16
	TypeS16
	TypeU32
	TypeS32
	TypeU64
	TypeS64
	TypeF32
	TypeD64
)

// Size returns the number of bytes a value of type t occupies in the data
// chunk.
func (t Type) Size() int {
	switch t {
	case TypeU8, TypeS8:
		return 1
	case TypeU16, TypeS16:
		return 2
	case TypeU32, TypeS32, TypeF32:
		return 4
	case TypeU64, TypeS64, TypeD64:
		return 8
	default:
		return 0
	}
}

// Valid reports whether t is one of the defined value types.
func (t Type) Valid() bool {
	return t > TypeNone && t <= TypeD64
}

// String returns the LDMS-style name of the type.
func (t Type) String() string {
	switch t {
	case TypeNone:
		return "none"
	case TypeU8:
		return "u8"
	case TypeS8:
		return "s8"
	case TypeU16:
		return "u16"
	case TypeS16:
		return "s16"
	case TypeU32:
		return "u32"
	case TypeS32:
		return "s32"
	case TypeU64:
		return "u64"
	case TypeS64:
		return "s64"
	case TypeF32:
		return "f32"
	case TypeD64:
		return "d64"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ParseType converts an LDMS-style type name ("u64", "d64", ...) to a Type.
func ParseType(s string) (Type, error) {
	for t := TypeU8; t <= TypeD64; t++ {
		if t.String() == s {
			return t, nil
		}
	}
	return TypeNone, fmt.Errorf("metric: unknown type %q", s)
}

// Value is a typed metric value. Bits holds the raw representation widened
// to 64 bits (sign-extended for signed types, IEEE-754 bits for floats).
type Value struct {
	Type Type
	Bits uint64
}

// U64Value wraps an unsigned integer as a TypeU64 Value.
func U64Value(v uint64) Value { return Value{TypeU64, v} }

// S64Value wraps a signed integer as a TypeS64 Value.
func S64Value(v int64) Value { return Value{TypeS64, uint64(v)} }

// F64Value wraps a float64 as a TypeD64 Value.
func F64Value(v float64) Value { return Value{TypeD64, math.Float64bits(v)} }

// U64 returns the value as an unsigned integer (truncating floats).
func (v Value) U64() uint64 {
	switch v.Type {
	case TypeF32:
		return uint64(math.Float32frombits(uint32(v.Bits)))
	case TypeD64:
		return uint64(math.Float64frombits(v.Bits))
	default:
		return v.Bits
	}
}

// S64 returns the value as a signed integer.
func (v Value) S64() int64 {
	switch v.Type {
	case TypeF32:
		return int64(math.Float32frombits(uint32(v.Bits)))
	case TypeD64:
		return int64(math.Float64frombits(v.Bits))
	default:
		return int64(v.Bits)
	}
}

// F64 returns the value as a float64.
func (v Value) F64() float64 {
	switch v.Type {
	case TypeF32:
		return float64(math.Float32frombits(uint32(v.Bits)))
	case TypeD64:
		return math.Float64frombits(v.Bits)
	case TypeS8, TypeS16, TypeS32, TypeS64:
		return float64(int64(v.Bits))
	default:
		return float64(v.Bits)
	}
}

// String renders the value for human consumption (ldms_ls style).
func (v Value) String() string {
	switch v.Type {
	case TypeF32, TypeD64:
		return fmt.Sprintf("%g", v.F64())
	case TypeS8, TypeS16, TypeS32, TypeS64:
		return fmt.Sprintf("%d", v.S64())
	default:
		return fmt.Sprintf("%d", v.U64())
	}
}
