package metric

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"goldms/internal/mmgr"
)

// Data chunk header layout (all little-endian):
//
//	[0:8)   MGN   metadata generation number (copy; lets a consumer detect
//	              that its cached metadata is stale)
//	[8:16)  DGN   data generation number, incremented per element update
//	[16:24) flags bit 0 = consistent
//	[24:32) timestamp seconds (unix)
//	[32:40) timestamp microseconds
const (
	offMGN         = 0
	offDGN         = 8
	offFlags       = 16
	offSec         = 24
	offUsec        = 32
	dataHeaderSize = 40

	flagConsistent = 1 << 0
)

// le is the byte order used throughout the set format.
var le = binary.LittleEndian

// Set is an LDMS metric set instance: a named, typed, fixed-layout block of
// sampled values. Writers (sampling plugins) bracket updates between
// BeginTransaction and EndTransaction; readers that observe the consistent
// flag cleared know the data does not all come from one sampling event.
type Set struct {
	mu       sync.RWMutex
	name     string
	schema   *Schema
	meta     []byte   // serialized metadata chunk
	data     []byte   // data chunk (header + values)
	entryOff []uint32 // offset of each metric's entry in the metadata chunk
	changed  []uint64 // per-metric DGN at which the stored bits last changed
	arena    *mmgr.Arena
	local    bool // true if this daemon samples into the set
	loaded   bool // true once LoadData has filled the chunk at least once
}

// Option configures set creation.
type Option func(*setConfig)

type setConfig struct {
	arena  *mmgr.Arena
	compID uint64
}

// WithArena allocates the set's chunks from the given arena instead of the
// Go heap, enforcing the daemon's configured metric-set memory budget.
func WithArena(a *mmgr.Arena) Option {
	return func(c *setConfig) { c.arena = a }
}

// WithCompID assigns the user-defined component ID recorded in the metadata
// entry of every metric in the set.
func WithCompID(id uint64) Option {
	return func(c *setConfig) { c.compID = id }
}

// New instantiates a set named instance from the schema. The schema is
// frozen by this call.
func New(instance string, schema *Schema, opts ...Option) (*Set, error) {
	if instance == "" {
		return nil, fmt.Errorf("metric: empty set instance name")
	}
	if schema == nil || schema.Card() == 0 {
		return nil, fmt.Errorf("metric: set %q: schema is nil or empty", instance)
	}
	var cfg setConfig
	for _, o := range opts {
		o(&cfg)
	}
	schema.freeze()

	// The change journal is daemon bookkeeping, not part of the set's wire
	// or memory format, so it lives on the Go heap even for arena sets.
	s := &Set{
		name:    instance,
		schema:  schema,
		changed: make([]uint64, schema.Card()),
		arena:   cfg.arena,
		local:   true,
	}

	metaSize := schema.MetaSize(instance)
	dataSize := schema.DataSize()
	var err error
	if cfg.arena != nil {
		if s.meta, err = cfg.arena.Alloc(metaSize); err != nil {
			return nil, fmt.Errorf("metric: set %q metadata: %w", instance, err)
		}
		if s.data, err = cfg.arena.Alloc(dataSize); err != nil {
			cfg.arena.Free(s.meta)
			return nil, fmt.Errorf("metric: set %q data: %w", instance, err)
		}
	} else {
		s.meta = make([]byte, metaSize)
		s.data = make([]byte, dataSize)
	}

	mgn := newMGN()
	s.writeMeta(mgn, cfg.compID)
	le.PutUint64(s.data[offMGN:], mgn)
	return s, nil
}

// mgnCounter provides unique initial metadata generation numbers.
var mgnCounter atomic.Uint64

func newMGN() uint64 {
	return mgnCounter.Add(1)
}

// Delete releases the set's chunks back to its arena, if any. The set must
// not be used afterwards.
func (s *Set) Delete() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.arena != nil {
		s.arena.Free(s.meta)
		s.arena.Free(s.data)
	}
	s.meta, s.data = nil, nil
}

// Name returns the set instance name.
func (s *Set) Name() string { return s.name }

// SchemaName returns the name of the schema the set was created from.
func (s *Set) SchemaName() string { return s.schema.Name() }

// Schema returns the set's schema.
func (s *Set) Schema() *Schema { return s.schema }

// Card returns the number of metrics in the set.
func (s *Set) Card() int { return s.schema.Card() }

// Local reports whether this set is sampled by the local daemon (as opposed
// to being a mirror of a remote set).
func (s *Set) Local() bool { return s.local }

// MetricName returns the name of metric i.
func (s *Set) MetricName(i int) string { return s.schema.Def(i).Name }

// MetricType returns the type of metric i.
func (s *Set) MetricType(i int) Type { return s.schema.Def(i).Type }

// MetricIndex returns the index of the named metric.
func (s *Set) MetricIndex(name string) (int, bool) { return s.schema.Lookup(name) }

// MetaBytes returns the serialized metadata chunk. The returned slice
// aliases the set's metadata; callers must treat it as read-only.
func (s *Set) MetaBytes() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.meta
}

// MetaSize returns the metadata chunk size in bytes.
func (s *Set) MetaSize() int { return len(s.meta) }

// DataSize returns the data chunk size in bytes. Only this many bytes move
// per aggregation pull after the initial lookup.
func (s *Set) DataSize() int { return len(s.data) }

// MGN returns the metadata generation number.
func (s *Set) MGN() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return le.Uint64(s.data[offMGN:])
}

// DGN returns the data generation number. A consumer seeing an unchanged
// DGN knows the set has not been re-sampled since its last pull.
func (s *Set) DGN() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return le.Uint64(s.data[offDGN:])
}

// Consistent reports whether the data chunk contents all come from the same
// completed sampling event.
func (s *Set) Consistent() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return le.Uint64(s.data[offFlags:])&flagConsistent != 0
}

// Timestamp returns the time recorded by the last EndTransaction.
func (s *Set) Timestamp() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sec := int64(le.Uint64(s.data[offSec:]))
	usec := int64(le.Uint64(s.data[offUsec:]))
	return time.Unix(sec, usec*1000)
}

// DataTimestamp reads the sample timestamp out of a raw data chunk (a
// pull buffer) without any lock: the buffer is single-owner, so callers
// on the pull hot path can take a sample's age with one plain header
// read. Returns the zero time for a buffer too short to carry a header.
func DataTimestamp(data []byte) time.Time {
	if len(data) < dataHeaderSize {
		return time.Time{}
	}
	sec := int64(le.Uint64(data[offSec:]))
	usec := int64(le.Uint64(data[offUsec:]))
	return time.Unix(sec, usec*1000)
}

// BeginTransaction marks the set inconsistent before a sampling pass. An
// aggregator pull that lands mid-transaction observes consistent == false
// and skips the data.
func (s *Set) BeginTransaction() {
	s.mu.Lock()
	flags := le.Uint64(s.data[offFlags:])
	le.PutUint64(s.data[offFlags:], flags&^flagConsistent)
	s.mu.Unlock()
}

// EndTransaction records the sample timestamp and marks the set consistent.
func (s *Set) EndTransaction(t time.Time) {
	s.mu.Lock()
	le.PutUint64(s.data[offSec:], uint64(t.Unix()))
	le.PutUint64(s.data[offUsec:], uint64(t.Nanosecond()/1000))
	flags := le.Uint64(s.data[offFlags:])
	le.PutUint64(s.data[offFlags:], flags|flagConsistent)
	s.mu.Unlock()
}

// SetValue stores v into metric i, converting to the metric's declared type,
// and increments the DGN.
func (s *Set) SetValue(i int, v Value) {
	off := s.schema.offsets[i]
	t := s.schema.defs[i].Type
	s.mu.Lock()
	dgn := le.Uint64(s.data[offDGN:]) + 1
	if s.putDiff(off, t, convertBits(v, t)) {
		s.changed[i] = dgn
	}
	le.PutUint64(s.data[offDGN:], dgn)
	s.mu.Unlock()
}

// Batch is a write handle over a set whose lock is already held, created by
// SetValues. It lets a sampling pass store every metric of the pass under a
// single lock acquisition instead of one per metric.
type Batch struct {
	s    *Set
	base uint64 // DGN when the batch began
	dgn  uint64
}

// SetValue stores v into metric i, converting to the metric's declared
// type. The DGN still advances once per element, applied when the batch
// ends.
func (b *Batch) SetValue(i int, v Value) {
	off := b.s.schema.offsets[i]
	t := b.s.schema.defs[i].Type
	b.dgn++
	if b.s.putDiff(off, t, convertBits(v, t)) {
		b.s.changed[i] = b.base + b.dgn
	}
}

// SetU64 stores an unsigned integer into metric i.
func (b *Batch) SetU64(i int, v uint64) { b.SetValue(i, Value{TypeU64, v}) }

// SetS64 stores a signed integer into metric i.
func (b *Batch) SetS64(i int, v int64) { b.SetValue(i, S64Value(v)) }

// SetF64 stores a float into metric i.
func (b *Batch) SetF64(i int, v float64) { b.SetValue(i, F64Value(v)) }

// SetValues runs fn with a write batch, taking the set lock exactly once
// for the whole pass. Sampling plugins that store many metrics per sample
// use this instead of per-metric SetValue calls, which each lock.
func (s *Set) SetValues(fn func(*Batch)) {
	s.mu.Lock()
	b := Batch{s: s, base: le.Uint64(s.data[offDGN:])}
	fn(&b)
	if b.dgn > 0 {
		le.PutUint64(s.data[offDGN:], le.Uint64(s.data[offDGN:])+b.dgn)
	}
	s.mu.Unlock()
}

// SetU64 stores an unsigned integer into metric i.
func (s *Set) SetU64(i int, v uint64) { s.SetValue(i, Value{TypeU64, v}) }

// SetS64 stores a signed integer into metric i.
func (s *Set) SetS64(i int, v int64) { s.SetValue(i, S64Value(v)) }

// SetF64 stores a float into metric i.
func (s *Set) SetF64(i int, v float64) { s.SetValue(i, F64Value(v)) }

// Value returns the current value of metric i.
func (s *Set) Value(i int) Value {
	off := s.schema.offsets[i]
	t := s.schema.defs[i].Type
	s.mu.RLock()
	bits := s.get(off, t)
	s.mu.RUnlock()
	return Value{t, bits}
}

// U64 returns metric i as an unsigned integer.
func (s *Set) U64(i int) uint64 { return s.Value(i).U64() }

// S64 returns metric i as a signed integer.
func (s *Set) S64(i int) int64 { return s.Value(i).S64() }

// F64 returns metric i as a float64.
func (s *Set) F64(i int) float64 { return s.Value(i).F64() }

// ReadValues copies every metric's current value into vals, which must hold
// at least Card() entries, under a single lock acquisition. It returns the
// sample timestamp, the DGN, and the consistent flag as observed atomically
// with the values: unlike per-metric Value calls, the caller cannot see a
// chunk torn across a concurrent LoadData or SetValues (the paper's §III-A
// consistent-flag/DGN reader protocol, applied in-process). It reports the
// number of values read.
func (s *Set) ReadValues(vals []Value) (ts time.Time, dgn uint64, consistent bool, n int) {
	n = s.schema.Card()
	if n > len(vals) {
		n = len(vals)
	}
	s.mu.RLock()
	for i := 0; i < n; i++ {
		t := s.schema.defs[i].Type
		vals[i] = Value{t, s.get(s.schema.offsets[i], t)}
	}
	sec := int64(le.Uint64(s.data[offSec:]))
	usec := int64(le.Uint64(s.data[offUsec:]))
	dgn = le.Uint64(s.data[offDGN:])
	consistent = le.Uint64(s.data[offFlags:])&flagConsistent != 0
	s.mu.RUnlock()
	return time.Unix(sec, usec*1000), dgn, consistent, n
}

// put writes raw bits of type t at data offset off. Caller holds the lock.
func (s *Set) put(off uint32, t Type, bits uint64) {
	switch t.Size() {
	case 1:
		s.data[off] = byte(bits)
	case 2:
		le.PutUint16(s.data[off:], uint16(bits))
	case 4:
		le.PutUint32(s.data[off:], uint32(bits))
	case 8:
		le.PutUint64(s.data[off:], bits)
	}
}

// putDiff writes raw bits of type t at data offset off and reports whether
// the stored representation actually changed — the predicate feeding the
// per-metric change journal. Comparison happens at the metric's natural
// width (store then re-read), so value bits outside the stored width never
// register as perpetual change. Caller holds the lock.
//
//ldms:hotpath
func (s *Set) putDiff(off uint32, t Type, bits uint64) bool {
	old := getBits(s.data, off, t)
	s.put(off, t, bits)
	return getBits(s.data, off, t) != old
}

// get reads raw bits of type t at data offset off, widening to 64 bits.
// Caller holds the lock.
func (s *Set) get(off uint32, t Type) uint64 {
	return getBits(s.data, off, t)
}

// getBits reads raw bits of type t at offset off in a data chunk, widening
// to 64 bits.
//
//ldms:hotpath
func getBits(data []byte, off uint32, t Type) uint64 {
	switch t {
	case TypeU8:
		return uint64(data[off])
	case TypeS8:
		return uint64(int64(int8(data[off])))
	case TypeU16:
		return uint64(le.Uint16(data[off:]))
	case TypeS16:
		return uint64(int64(int16(le.Uint16(data[off:]))))
	case TypeU32, TypeF32:
		return uint64(le.Uint32(data[off:]))
	case TypeS32:
		return uint64(int64(int32(le.Uint32(data[off:]))))
	default:
		return le.Uint64(data[off:])
	}
}

// convertBits coerces v's raw bits into the representation required by the
// destination type t.
func convertBits(v Value, t Type) uint64 {
	if v.Type == t {
		return v.Bits
	}
	switch t {
	case TypeF32:
		return uint64(math.Float32bits(float32(v.F64())))
	case TypeD64:
		return F64Value(v.F64()).Bits
	case TypeS8, TypeS16, TypeS32, TypeS64:
		return uint64(v.S64())
	default:
		return v.U64()
	}
}

// CopyDataInto snapshots the data chunk into dst, which must be at least
// DataSize bytes. It returns the number of bytes copied. This is the
// operation an aggregator's update performs over a transport.
func (s *Set) CopyDataInto(dst []byte) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return copy(dst, s.data)
}

// DataSnapshot returns a fresh copy of the data chunk.
func (s *Set) DataSnapshot() []byte {
	dst := make([]byte, len(s.data))
	s.CopyDataInto(dst)
	return dst
}

// ErrMGNMismatch is returned by LoadData when the pulled data chunk carries
// a different MGN than the set's metadata, indicating the consumer's cached
// metadata is stale and a new lookup is required.
type ErrMGNMismatch struct {
	Want, Got uint64
}

// Error implements the error interface.
func (e *ErrMGNMismatch) Error() string {
	return fmt.Sprintf("metric: metadata generation mismatch: have %d, data carries %d", e.Want, e.Got)
}

// LoadData replaces the set's data chunk with src, as an aggregator does
// when an update completes. It validates the length and the MGN. While
// copying it diffs each metric against the incoming chunk and journals the
// ones whose bits changed, so mirrors can themselves serve delta updates
// when re-exported by a mid-tier aggregator.
func (s *Set) LoadData(src []byte) error {
	if len(src) != len(s.data) {
		return fmt.Errorf("metric: set %q: data length %d, want %d", s.name, len(src), len(s.data))
	}
	want := le.Uint64(s.meta[metaOffMGN:])
	got := le.Uint64(src[offMGN:])
	if got != want {
		return &ErrMGNMismatch{Want: want, Got: got}
	}
	s.mu.Lock()
	dgn := le.Uint64(src[offDGN:])
	if !s.loaded {
		// First load into a fresh mirror: the zeroed chunk says nothing
		// about what a downstream consumer may already hold (a rebuilt
		// mirror keeps the remote's MGN and DGN sequence), so journal every
		// metric rather than trusting a diff against zeros.
		for i := range s.changed {
			s.changed[i] = dgn
		}
		s.loaded = true
	} else {
		for i, off := range s.schema.offsets {
			t := s.schema.defs[i].Type
			if getBits(src, off, t) != getBits(s.data, off, t) {
				s.changed[i] = dgn
			}
		}
	}
	copy(s.data, src)
	s.mu.Unlock()
	return nil
}
