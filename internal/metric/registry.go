package metric

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the daemon-local directory of metric sets, served to peers
// through a transport's dir/lookup operations.
type Registry struct {
	mu   sync.RWMutex
	sets map[string]*Set
	gen  atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sets: make(map[string]*Set)}
}

// Add registers a set under its instance name. Adding a second set with the
// same name is an error.
func (r *Registry) Add(s *Set) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sets[s.Name()]; dup {
		return fmt.Errorf("metric: set %q already registered", s.Name())
	}
	r.sets[s.Name()] = s
	r.gen.Add(1)
	return nil
}

// Gen returns the directory generation: a counter bumped on every Add and
// every effective Remove. Peers poll it (transport DirGen op) to detect
// membership changes without re-fetching and diffing the full directory,
// which keeps tiered aggregation passes cheap when the set population is
// stable.
func (r *Registry) Gen() uint64 { return r.gen.Load() }

// Remove deregisters the named set, returning it (or nil if absent).
func (r *Registry) Remove(name string) *Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sets[name]
	if s != nil {
		delete(r.sets, name)
		r.gen.Add(1)
	}
	return s
}

// Get returns the named set, or nil.
func (r *Registry) Get(name string) *Set {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sets[name]
}

// Dir returns the sorted instance names of all registered sets, the result
// of a directory request.
func (r *Registry) Dir() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.sets))
	for n := range r.sets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered sets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sets)
}

// Each calls f for every registered set in sorted name order.
func (r *Registry) Each(f func(*Set)) {
	for _, name := range r.Dir() {
		if s := r.Get(name); s != nil {
			f(s)
		}
	}
}
