package metric

import "errors"

// Delta update payload (all little-endian), the wire form of "ship only
// the metrics whose values changed since the DGN the consumer already
// acknowledges". Produced by Set.AppendDelta on the serving side and
// applied to a consumer's pull buffer by Meta.ApplyDelta:
//
//	[0:40)  the full 40-byte data chunk header (MGN, DGN, flags,
//	        timestamp seconds, timestamp microseconds) as of the snapshot
//	[40:44) u32 count of changed-metric entries
//	then per entry:
//	        u16 metric index (schema order) | value bytes at the metric's
//	        natural width
//
// The header always travels, so a delta with zero entries is still a
// complete sample observation: the consumer sees the advanced DGN, the
// consistent flag, and the fresh timestamp for the cost of 44 bytes.
//
// Correctness rests on the per-metric change journal: every mutation of a
// set's data chunk — SetValue, a SetValues batch, or LoadData replacing a
// mirror's chunk — records the DGN at which each metric's stored bits last
// changed. A delta encoded against ANY base DGN the consumer truthfully
// holds is therefore exact; there is no tracking window to fall out of and
// no "DGN gap" to resynchronize. Fallback to a full chunk remains for
// unknown bases (sinceDGN ahead of the set — a restarted peer), for sets
// too wide for u16 indexing, and whenever the delta would not beat the
// full chunk on the wire.
const (
	deltaHeaderSize = dataHeaderSize + 4
	deltaCountOff   = dataHeaderSize

	// deltaMaxCard bounds encodable schemas: entry indexes are u16.
	deltaMaxCard = 1 << 16
)

// Delta decode errors. Static so the apply path stays allocation-free on
// hostile input (it runs per pull on the update hot path and is fuzzed).
var (
	ErrDeltaTruncated = errors.New("metric: truncated delta update")
	ErrDeltaBadIndex  = errors.New("metric: delta entry index out of range")
	ErrDeltaBadType   = errors.New("metric: delta entry has invalid type")
	ErrDeltaBadOffset = errors.New("metric: delta entry offset out of range")
	ErrDeltaTrailing  = errors.New("metric: trailing bytes after delta entries")
	ErrDeltaBufSize   = errors.New("metric: delta apply buffer has wrong size")
	ErrDeltaWrongMGN  = errors.New("metric: delta header MGN does not match metadata")
)

// AppendDelta appends a delta update payload — the changes since sinceDGN —
// to dst and reports whether a delta was encoded. ok is false when the set
// cannot honor the base (sinceDGN is ahead of the set's DGN: the consumer's
// state belongs to a previous incarnation), when the schema is too wide for
// u16 entry indexes, or when the encoded delta would be at least as large
// as the full data chunk; callers then fall back to a full-chunk copy. On
// ok, dst grew by less than DataSize bytes.
//
//ldms:hotpath
func (s *Set) AppendDelta(dst []byte, sinceDGN uint64) (out []byte, ok bool) {
	card := s.schema.Card()
	if card >= deltaMaxCard {
		return dst, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	full := len(s.data)
	if sinceDGN > le.Uint64(s.data[offDGN:]) {
		return dst, false
	}
	base := len(dst)
	dst = append(dst, s.data[:dataHeaderSize]...)
	dst = le.AppendUint32(dst, 0) // count, patched below
	size, count := deltaHeaderSize, 0
	for i := 0; i < card; i++ {
		if s.changed[i] <= sinceDGN {
			continue
		}
		t := s.schema.defs[i].Type
		size += 2 + t.Size()
		if size >= full {
			return dst[:base], false
		}
		dst = le.AppendUint16(dst, uint16(i))
		dst = appendBits(dst, t, getBits(s.data, s.schema.offsets[i], t))
		count++
	}
	le.PutUint32(dst[base+deltaCountOff:], uint32(count))
	return dst, true
}

// appendBits appends a value's raw stored representation at its natural
// width.
//
//ldms:hotpath
func appendBits(dst []byte, t Type, bits uint64) []byte {
	switch t.Size() {
	case 1:
		return append(dst, byte(bits))
	case 2:
		return le.AppendUint16(dst, uint16(bits))
	case 4:
		return le.AppendUint32(dst, uint32(bits))
	default:
		return le.AppendUint64(dst, bits)
	}
}

// ApplyDelta patches a pull buffer, which must hold the data chunk the
// delta was encoded against (the consumer's acknowledged base state), into
// the sender's current chunk: each entry's value bytes land at the metric's
// offset, then the carried header replaces the buffer's. It validates every
// entry against the metadata and the buffer bounds, so hostile or truncated
// payloads error without panicking or writing out of range.
//
//ldms:hotpath
func (m *Meta) ApplyDelta(buf, delta []byte) error {
	if len(buf) != m.DataSize {
		return ErrDeltaBufSize
	}
	if len(delta) < deltaHeaderSize {
		return ErrDeltaTruncated
	}
	// A delta is only meaningful against the metadata it was encoded under:
	// a different MGN in the carried header means the payload describes some
	// other layout (a cross-wired response or a hostile frame), and applying
	// it would silently corrupt the chunk.
	if le.Uint64(delta[offMGN:]) != m.MGN {
		return ErrDeltaWrongMGN
	}
	count := int(le.Uint32(delta[deltaCountOff:]))
	// Each entry costs at least 3 bytes (u16 index + 1 value byte); a count
	// beyond that is corrupt and must not drive the loop.
	if count > (len(delta)-deltaHeaderSize)/3 {
		return ErrDeltaTruncated
	}
	pos := deltaHeaderSize
	for k := 0; k < count; k++ {
		if pos+2 > len(delta) {
			return ErrDeltaTruncated
		}
		i := int(le.Uint16(delta[pos:]))
		pos += 2
		if i >= len(m.Metrics) {
			return ErrDeltaBadIndex
		}
		sz := m.Metrics[i].Type.Size()
		if sz == 0 {
			return ErrDeltaBadType
		}
		off := int(m.Metrics[i].Offset)
		if off < dataHeaderSize || off+sz > len(buf) {
			return ErrDeltaBadOffset
		}
		if pos+sz > len(delta) {
			return ErrDeltaTruncated
		}
		copy(buf[off:off+sz], delta[pos:pos+sz])
		pos += sz
	}
	if pos != len(delta) {
		return ErrDeltaTrailing
	}
	copy(buf[:dataHeaderSize], delta[:dataHeaderSize])
	return nil
}
