package metric

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"goldms/internal/mmgr"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema("meminfo")
	for _, m := range []struct {
		name string
		typ  Type
	}{
		{"MemTotal", TypeU64},
		{"MemFree", TypeU64},
		{"Active", TypeU64},
		{"loadavg", TypeD64},
		{"cpu_pct", TypeF32},
		{"delta", TypeS32},
		{"flag", TypeU8},
	} {
		if _, err := s.AddMetric(m.name, m.typ); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSchemaDuplicate(t *testing.T) {
	s := NewSchema("x")
	if _, err := s.AddMetric("a", TypeU64); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddMetric("a", TypeU64); err == nil {
		t.Fatal("duplicate metric accepted")
	}
}

func TestSchemaInvalid(t *testing.T) {
	s := NewSchema("x")
	if _, err := s.AddMetric("", TypeU64); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.AddMetric("a", TypeNone); err == nil {
		t.Error("TypeNone accepted")
	}
	if _, err := s.AddMetric("b", Type(200)); err == nil {
		t.Error("garbage type accepted")
	}
}

func TestSchemaFrozenAfterSetCreation(t *testing.T) {
	s := NewSchema("x")
	s.MustAddMetric("a", TypeU64)
	if _, err := New("inst", s); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddMetric("late", TypeU64); err == nil {
		t.Fatal("schema accepted metric after freeze")
	}
}

func TestNewSetValidation(t *testing.T) {
	s := NewSchema("x")
	s.MustAddMetric("a", TypeU64)
	if _, err := New("", s); err == nil {
		t.Error("empty instance name accepted")
	}
	if _, err := New("i", NewSchema("empty")); err == nil {
		t.Error("empty schema accepted")
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	set, err := New("node1/meminfo", testSchema(t), WithCompID(7))
	if err != nil {
		t.Fatal(err)
	}
	set.BeginTransaction()
	set.SetU64(0, 64<<30)
	set.SetU64(1, 12345)
	set.SetU64(2, 42)
	set.SetF64(3, 1.25)
	set.SetF64(4, 0.5)
	set.SetS64(5, -17)
	set.SetU64(6, 200)
	ts := time.Unix(1700000000, 123456000)
	set.EndTransaction(ts)

	if got := set.U64(0); got != 64<<30 {
		t.Errorf("metric 0 = %d", got)
	}
	if got := set.F64(3); got != 1.25 {
		t.Errorf("metric 3 = %g", got)
	}
	if got := set.F64(4); got != 0.5 {
		t.Errorf("metric 4 (f32) = %g", got)
	}
	if got := set.S64(5); got != -17 {
		t.Errorf("metric 5 = %d", got)
	}
	if got := set.U64(6); got != 200 {
		t.Errorf("metric 6 (u8) = %d", got)
	}
	if !set.Consistent() {
		t.Error("set should be consistent after EndTransaction")
	}
	if got := set.Timestamp(); !got.Equal(ts) {
		t.Errorf("timestamp = %v want %v", got, ts)
	}
	if got := set.CompID(3); got != 7 {
		t.Errorf("comp id = %d want 7", got)
	}
}

func TestDGNIncrementsPerElement(t *testing.T) {
	set, _ := New("s", testSchema(t))
	d0 := set.DGN()
	set.SetU64(0, 1)
	set.SetU64(1, 2)
	set.SetU64(2, 3)
	if got := set.DGN(); got != d0+3 {
		t.Errorf("DGN = %d want %d", got, d0+3)
	}
}

func TestSetValuesBatch(t *testing.T) {
	set, _ := New("s", testSchema(t))
	d0 := set.DGN()
	set.SetValues(func(b *Batch) {
		b.SetU64(0, 11)
		b.SetU64(1, 22)
		b.SetF64(3, 1.5)
		b.SetS64(5, -4)
	})
	// DGN advances once per element, exactly as per-metric SetValue does.
	if got := set.DGN(); got != d0+4 {
		t.Errorf("DGN = %d want %d", got, d0+4)
	}
	if set.U64(0) != 11 || set.U64(1) != 22 || set.F64(3) != 1.5 || set.S64(5) != -4 {
		t.Errorf("batch values = %d %d %g %d", set.U64(0), set.U64(1), set.F64(3), set.S64(5))
	}
	// An empty batch leaves the DGN untouched.
	set.SetValues(func(b *Batch) {})
	if got := set.DGN(); got != d0+4 {
		t.Errorf("DGN after empty batch = %d want %d", got, d0+4)
	}
}

func TestConsistentFlagDuringTransaction(t *testing.T) {
	set, _ := New("s", testSchema(t))
	set.BeginTransaction()
	set.SetU64(0, 1)
	set.EndTransaction(time.Now())
	if !set.Consistent() {
		t.Fatal("expected consistent after EndTransaction")
	}
	set.BeginTransaction()
	if set.Consistent() {
		t.Fatal("expected inconsistent during transaction")
	}
	set.EndTransaction(time.Now())
	if !set.Consistent() {
		t.Fatal("expected consistent after second EndTransaction")
	}
}

func TestTypeConversionOnStore(t *testing.T) {
	s := NewSchema("conv")
	iu32 := s.MustAddMetric("u32", TypeU32)
	if32 := s.MustAddMetric("f32", TypeF32)
	set, _ := New("s", s)
	// Store a float into a u32 metric: truncates.
	set.SetValue(iu32, F64Value(3.9))
	if got := set.U64(iu32); got != 3 {
		t.Errorf("u32 from float = %d want 3", got)
	}
	// Store an int into an f32 metric: converts.
	set.SetValue(if32, U64Value(10))
	if got := set.F64(if32); got != 10 {
		t.Errorf("f32 from int = %g want 10", got)
	}
}

func TestMetaParseRoundTrip(t *testing.T) {
	set, err := New("nid00042/lustre", testSchema(t), WithCompID(42))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseMeta(set.MetaBytes())
	if err != nil {
		t.Fatal(err)
	}
	if m.Instance != "nid00042/lustre" {
		t.Errorf("instance = %q", m.Instance)
	}
	if m.SchemaName != "meminfo" {
		t.Errorf("schema = %q", m.SchemaName)
	}
	if m.MGN != set.MGN() {
		t.Errorf("MGN = %d want %d", m.MGN, set.MGN())
	}
	if len(m.Metrics) != set.Card() {
		t.Fatalf("card = %d want %d", len(m.Metrics), set.Card())
	}
	for i, mm := range m.Metrics {
		if mm.Name != set.MetricName(i) {
			t.Errorf("metric %d name %q want %q", i, mm.Name, set.MetricName(i))
		}
		if mm.Type != set.MetricType(i) {
			t.Errorf("metric %d type %v want %v", i, mm.Type, set.MetricType(i))
		}
		if mm.CompID != 42 {
			t.Errorf("metric %d comp id %d want 42", i, mm.CompID)
		}
	}
}

func TestParseMetaErrors(t *testing.T) {
	if _, err := ParseMeta(nil); err == nil {
		t.Error("nil metadata accepted")
	}
	if _, err := ParseMeta(make([]byte, 10)); err == nil {
		t.Error("short metadata accepted")
	}
	set, _ := New("s", testSchema(t))
	b := append([]byte(nil), set.MetaBytes()...)
	b[0] ^= 0xff
	if _, err := ParseMeta(b); err == nil {
		t.Error("bad magic accepted")
	}
	b = append([]byte(nil), set.MetaBytes()...)
	if _, err := ParseMeta(b[:len(b)-4]); err == nil {
		t.Error("truncated metadata accepted")
	}
}

func TestMirrorUpdateFlow(t *testing.T) {
	// Full sampler -> aggregator data path: create, sample, lookup, mirror,
	// pull, load, verify.
	src, _ := New("node/misc", testSchema(t), WithCompID(9))
	src.BeginTransaction()
	src.SetU64(0, 111)
	src.SetF64(3, 2.5)
	src.EndTransaction(time.Unix(1000, 0))

	m, err := ParseMeta(src.MetaBytes())
	if err != nil {
		t.Fatal(err)
	}
	mir, err := m.NewMirror()
	if err != nil {
		t.Fatal(err)
	}
	if mir.Local() {
		t.Error("mirror should not be local")
	}
	if mir.Consistent() {
		t.Error("fresh mirror must be inconsistent")
	}
	if err := mir.LoadData(src.DataSnapshot()); err != nil {
		t.Fatal(err)
	}
	if got := mir.U64(0); got != 111 {
		t.Errorf("mirrored metric 0 = %d want 111", got)
	}
	if got := mir.F64(3); got != 2.5 {
		t.Errorf("mirrored metric 3 = %g want 2.5", got)
	}
	if !mir.Consistent() {
		t.Error("mirror should be consistent after loading consistent data")
	}
	if got := mir.Timestamp().Unix(); got != 1000 {
		t.Errorf("mirrored timestamp = %d want 1000", got)
	}
	if got := mir.CompID(0); got != 9 {
		t.Errorf("mirrored comp id = %d want 9", got)
	}
}

func TestLoadDataMGNMismatch(t *testing.T) {
	src, _ := New("a", testSchema(t))
	m, _ := ParseMeta(src.MetaBytes())
	mir, _ := m.NewMirror()

	// Metadata modification on the source bumps its MGN.
	src.SetCompID(77)
	err := mir.LoadData(src.DataSnapshot())
	var mgnErr *ErrMGNMismatch
	if err == nil {
		t.Fatal("stale-metadata load accepted")
	}
	if !asMGNMismatch(err, &mgnErr) {
		t.Fatalf("error type = %T want *ErrMGNMismatch", err)
	}
}

func asMGNMismatch(err error, target **ErrMGNMismatch) bool {
	e, ok := err.(*ErrMGNMismatch)
	if ok {
		*target = e
	}
	return ok
}

func TestLoadDataWrongLength(t *testing.T) {
	src, _ := New("a", testSchema(t))
	if err := src.LoadData(make([]byte, 3)); err == nil {
		t.Fatal("short data accepted")
	}
}

func TestDataSizeFractionOfSetSize(t *testing.T) {
	// §IV-B: "The data portion is roughly 10% of the total set size."
	// With realistic (long) metric names the serialized metadata dominates.
	s := NewSchema("lustre")
	for i := 0; i < 100; i++ {
		s.MustAddMetric(fmt.Sprintf("dirty_pages_hits#stats.snx11024.%03d", i), TypeU64)
	}
	set, _ := New("nid00001/lustre", s)
	frac := float64(set.DataSize()) / float64(set.DataSize()+set.MetaSize())
	if frac > 0.25 {
		t.Errorf("data fraction = %.2f, want <= 0.25 (paper: ~0.10)", frac)
	}
}

func TestArenaAccounting(t *testing.T) {
	a, _ := mmgr.New(1 << 20)
	set, err := New("s", testSchema(t), WithArena(a))
	if err != nil {
		t.Fatal(err)
	}
	if a.InUse() == 0 {
		t.Fatal("arena should have allocations")
	}
	set.Delete()
	if a.InUse() != 0 {
		t.Fatalf("arena InUse = %d after Delete, want 0", a.InUse())
	}
}

func TestArenaExhaustionAtSetCreation(t *testing.T) {
	a, _ := mmgr.New(128) // far too small for meta+data
	if _, err := New("s", testSchema(t), WithArena(a)); err == nil {
		t.Fatal("expected arena exhaustion")
	}
	if a.InUse() != 0 {
		t.Fatalf("failed creation leaked %d bytes", a.InUse())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	s1, _ := New("b", testSchema(t))
	sch2 := NewSchema("other")
	sch2.MustAddMetric("x", TypeU64)
	s2, _ := New("a", sch2)
	if err := r.Add(s1); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(s2); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(s1); err == nil {
		t.Fatal("duplicate add accepted")
	}
	dir := r.Dir()
	if len(dir) != 2 || dir[0] != "a" || dir[1] != "b" {
		t.Errorf("dir = %v", dir)
	}
	if r.Get("a") != s2 {
		t.Error("Get returned wrong set")
	}
	if got := r.Remove("a"); got != s2 {
		t.Error("Remove returned wrong set")
	}
	if r.Len() != 1 {
		t.Errorf("len = %d want 1", r.Len())
	}
	if r.Get("a") != nil {
		t.Error("removed set still present")
	}
}

func TestValueConversions(t *testing.T) {
	v := F64Value(-2.75)
	if v.F64() != -2.75 {
		t.Errorf("F64 = %g", v.F64())
	}
	if v.S64() != -2 {
		t.Errorf("S64 = %d", v.S64())
	}
	s := S64Value(-5)
	if s.F64() != -5.0 {
		t.Errorf("S64Value.F64 = %g", s.F64())
	}
	if s.String() != "-5" {
		t.Errorf("String = %q", s.String())
	}
	u := U64Value(math.MaxUint64)
	if u.U64() != math.MaxUint64 {
		t.Errorf("U64 = %d", u.U64())
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for tt := TypeU8; tt <= TypeD64; tt++ {
		got, err := ParseType(tt.String())
		if err != nil || got != tt {
			t.Errorf("ParseType(%q) = %v, %v", tt.String(), got, err)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Error("bogus type accepted")
	}
}

// Property: for any sequence of u64 values written to a set, a mirror loaded
// from a snapshot reads back exactly the same values.
func TestQuickMirrorFidelity(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			vals = []uint64{0}
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		sch := NewSchema("q")
		for i := range vals {
			sch.MustAddMetric(fmt.Sprintf("m%02d", i), TypeU64)
		}
		src, err := New("q/inst", sch)
		if err != nil {
			return false
		}
		src.BeginTransaction()
		for i, v := range vals {
			src.SetU64(i, v)
		}
		src.EndTransaction(time.Now())
		m, err := ParseMeta(src.MetaBytes())
		if err != nil {
			return false
		}
		mir, err := m.NewMirror()
		if err != nil {
			return false
		}
		if err := mir.LoadData(src.DataSnapshot()); err != nil {
			return false
		}
		for i, v := range vals {
			if mir.U64(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: DGN strictly increases across element updates.
func TestQuickDGNMonotonic(t *testing.T) {
	set, _ := New("s", testSchema(t))
	f := func(idx uint8, v uint64) bool {
		i := int(idx) % set.Card()
		before := set.DGN()
		set.SetU64(i, v)
		return set.DGN() == before+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRow(t *testing.T) {
	set, _ := New("n7/meminfo", testSchema(t), WithCompID(7))
	set.BeginTransaction()
	set.SetU64(0, 100)
	set.EndTransaction(time.Unix(5, 0))
	row := set.Snapshot()
	if row.Instance != "n7/meminfo" || row.Schema != "meminfo" || row.CompID != 7 {
		t.Errorf("row header = %+v", row)
	}
	if len(row.Names) != set.Card() || len(row.Values) != set.Card() {
		t.Fatalf("row lengths = %d/%d", len(row.Names), len(row.Values))
	}
	if row.Values[0].U64() != 100 {
		t.Errorf("row value 0 = %v", row.Values[0])
	}
	if row.Names[3] != "loadavg" {
		t.Errorf("row name 3 = %q", row.Names[3])
	}
}

func TestConcurrentSampleAndRead(t *testing.T) {
	set, _ := New("s", testSchema(t))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			set.BeginTransaction()
			set.SetU64(0, uint64(i))
			set.SetU64(1, uint64(i))
			set.EndTransaction(time.Now())
		}
	}()
	inconsistent := 0
	for i := 0; i < 2000; i++ {
		buf := set.DataSnapshot()
		if le.Uint64(buf[offFlags:])&flagConsistent == 0 {
			inconsistent++
		}
	}
	<-done
	// We cannot assert a specific count, only that concurrent reads never
	// crash or deadlock, and that the snapshot is well-formed.
	if got := set.U64(0); got != 1999 {
		t.Errorf("final value = %d want 1999", got)
	}
	t.Logf("observed %d inconsistent snapshots (expected occasionally > 0)", inconsistent)
}

// Property: arbitrary bytes never panic ParseMeta and never allocate from
// hostile counts (the decoder is exposed to network peers).
func TestQuickParseMetaGarbage(t *testing.T) {
	f := func(junk []byte) bool {
		ParseMeta(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// A well-formed header with an absurd cardinality must error, not OOM.
	set, _ := New("s", testSchema(t))
	b := append([]byte(nil), set.MetaBytes()...)
	le.PutUint32(b[metaOffCard:], 1<<31-1)
	if _, err := ParseMeta(b); err == nil {
		t.Error("hostile cardinality accepted")
	}
}
