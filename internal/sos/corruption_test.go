package sos

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fillContainer writes n records and closes the container.
func fillContainer(t *testing.T, dir string, n int) {
	t.Helper()
	c, err := Create(dir, "s", testNames, testTypes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := c.Append(time.Unix(int64(i), 0), 1, vals(uint64(i), 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func partFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "part.*"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no partitions: %v", err)
	}
	return matches[0]
}

func TestTruncatedPartitionDetected(t *testing.T) {
	dir := t.TempDir()
	fillContainer(t, dir, 20)
	p := partFile(t, dir)
	fi, _ := os.Stat(p)
	if err := os.Truncate(p, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	// Open scans partitions and must surface the corruption, not hang or
	// silently succeed with all records.
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("truncated partition accepted at open")
	}
}

func TestCorruptLengthWordDetected(t *testing.T) {
	dir := t.TempDir()
	fillContainer(t, dir, 5)
	p := partFile(t, dir)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Smash the first record's length word.
	b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0x7f
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("corrupt length word accepted")
	}
}

func TestCorruptSchemaDetected(t *testing.T) {
	dir := t.TempDir()
	fillContainer(t, dir, 1)
	meta := filepath.Join(dir, "schema.sos")
	b, _ := os.ReadFile(meta)
	for cut := 0; cut < len(b); cut += 3 {
		os.WriteFile(meta, b[:cut], 0o644)
		if _, err := Open(dir, nil); err == nil {
			t.Fatalf("truncated schema (%d bytes) accepted", cut)
		}
	}
}

func TestQueryAfterCrashMidWrite(t *testing.T) {
	// Simulate a crash that left a half-written record at the tail:
	// earlier records stay readable until the corruption point.
	dir := t.TempDir()
	fillContainer(t, dir, 10)
	p := partFile(t, dir)
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible length word with no body.
	f.Write([]byte{40, 0, 0, 0, 1, 2})
	f.Close()

	if _, err := Open(dir, nil); err == nil {
		t.Fatal("torn tail accepted at open")
	}
}
