package sos

import (
	"testing"
	"time"

	"goldms/internal/metric"
)

var (
	testNames = []string{"a", "b", "c"}
	testTypes = []metric.Type{metric.TypeU64, metric.TypeD64, metric.TypeS64}
)

func vals(a uint64, b float64, c int64) []metric.Value {
	return []metric.Value{metric.U64Value(a), metric.F64Value(b), metric.S64Value(c)}
}

func TestCreateAppendQuery(t *testing.T) {
	dir := t.TempDir()
	c, err := Create(dir, "meminfo", testNames, testTypes, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		err := c.Append(time.Unix(int64(100+i), 0), uint64(1+i%2), vals(uint64(i), float64(i)/2, int64(-i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Schema() != "meminfo" {
		t.Errorf("schema = %q", c2.Schema())
	}
	if len(c2.MetricNames()) != 3 || c2.MetricNames()[1] != "b" {
		t.Errorf("names = %v", c2.MetricNames())
	}
	it, err := c2.Query(time.Time{}, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		rec, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if rec.Values[0].U64() != uint64(count) {
			t.Errorf("record %d value a = %d", count, rec.Values[0].U64())
		}
		if rec.Values[2].S64() != int64(-count) {
			t.Errorf("record %d value c = %d", count, rec.Values[2].S64())
		}
		count++
	}
	if count != 10 {
		t.Errorf("records = %d want 10", count)
	}
}

func TestQueryTimeAndComponentFilter(t *testing.T) {
	dir := t.TempDir()
	c, _ := Create(dir, "s", testNames, testTypes, nil)
	for i := 0; i < 20; i++ {
		c.Append(time.Unix(int64(i), 0), uint64(1+i%4), vals(uint64(i), 0, 0))
	}
	it, _ := c.Query(time.Unix(5, 0), time.Unix(15, 0), 0)
	n := 0
	for {
		rec, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if rec.Time.Unix() < 5 || rec.Time.Unix() >= 15 {
			t.Errorf("record outside range: %v", rec.Time)
		}
		n++
	}
	if n != 10 {
		t.Errorf("time-filtered records = %d want 10", n)
	}

	it, _ = c.Query(time.Time{}, time.Time{}, 2)
	n = 0
	for {
		rec, ok, _ := it.Next()
		if !ok {
			break
		}
		if rec.CompID != 2 {
			t.Errorf("comp filter leaked comp %d", rec.CompID)
		}
		n++
	}
	if n != 5 {
		t.Errorf("comp-filtered records = %d want 5", n)
	}
	c.Close()
}

func TestPartitionRollover(t *testing.T) {
	dir := t.TempDir()
	c, _ := Create(dir, "s", testNames, testTypes, &Options{PartitionSize: 256})
	for i := 0; i < 100; i++ {
		if err := c.Append(time.Unix(int64(i), 0), 1, vals(uint64(i), 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Partitions < 2 {
		t.Errorf("partitions = %d, want rollover to have occurred", st.Partitions)
	}
	if st.Appends != 100 {
		t.Errorf("appends = %d", st.Appends)
	}
	c.Close()

	// Reopen and verify everything survives across partitions.
	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	it, _ := c2.Query(time.Time{}, time.Time{}, 0)
	n := 0
	for {
		rec, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if rec.Values[0].U64() != uint64(n) {
			t.Errorf("record %d out of order: %d", n, rec.Values[0].U64())
		}
		n++
	}
	if n != 100 {
		t.Errorf("records after reopen = %d want 100", n)
	}
}

func TestPartitionSkippingByTime(t *testing.T) {
	dir := t.TempDir()
	c, _ := Create(dir, "s", testNames, testTypes, &Options{PartitionSize: 256})
	for i := 0; i < 100; i++ {
		c.Append(time.Unix(int64(i*10), 0), 1, vals(uint64(i), 0, 0))
	}
	// Query a narrow late window; earlier partitions must be skipped.
	it, _ := c.Query(time.Unix(900, 0), time.Unix(950, 0), 0)
	if len(it.paths) >= c.Stats().Partitions {
		t.Errorf("no partitions skipped: %d of %d", len(it.paths), c.Stats().Partitions)
	}
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Errorf("windowed records = %d want 5", n)
	}
	c.Close()
}

func TestAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	c, _ := Create(dir, "s", testNames, testTypes, nil)
	c.Append(time.Unix(1, 0), 1, vals(1, 0, 0))
	c.Close()
	c2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Append(time.Unix(2, 0), 1, vals(2, 0, 0)); err != nil {
		t.Fatal(err)
	}
	it, _ := c2.Query(time.Time{}, time.Time{}, 0)
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("records = %d want 2", n)
	}
	c2.Close()
}

func TestCreateErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, "s", nil, nil, nil); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := Create(dir, "s", []string{"a"}, []metric.Type{metric.TypeU64, metric.TypeU64}, nil); err == nil {
		t.Error("mismatched names/types accepted")
	}
	if _, err := Create(dir, "s", testNames, testTypes, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, "s", testNames, testTypes, nil); err == nil {
		t.Error("double create accepted")
	}
}

func TestAppendCardinalityMismatch(t *testing.T) {
	dir := t.TempDir()
	c, _ := Create(dir, "s", testNames, testTypes, nil)
	if err := c.Append(time.Unix(1, 0), 1, vals(1, 0, 0)[:2]); err == nil {
		t.Error("short value slice accepted")
	}
	c.Close()
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(t.TempDir(), nil); err == nil {
		t.Error("open of empty dir succeeded")
	}
}

func TestValueTypePreservation(t *testing.T) {
	dir := t.TempDir()
	c, _ := Create(dir, "s", testNames, testTypes, nil)
	c.Append(time.Unix(1, 500000000), 7, vals(42, 2.75, -13))
	c.Close()
	c2, _ := Open(dir, nil)
	it, _ := c2.Query(time.Time{}, time.Time{}, 0)
	rec, ok, err := it.Next()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if rec.CompID != 7 {
		t.Errorf("comp = %d", rec.CompID)
	}
	if rec.Time.Nanosecond() != 500000000 {
		t.Errorf("usec lost: %v", rec.Time)
	}
	if rec.Values[0].Type != metric.TypeU64 || rec.Values[0].U64() != 42 {
		t.Errorf("v0 = %+v", rec.Values[0])
	}
	if rec.Values[1].Type != metric.TypeD64 || rec.Values[1].F64() != 2.75 {
		t.Errorf("v1 = %+v", rec.Values[1])
	}
	if rec.Values[2].Type != metric.TypeS64 || rec.Values[2].S64() != -13 {
		t.Errorf("v2 = %+v", rec.Values[2])
	}
}
