// Package sos implements a simplified Scalable Object Store, the
// structured binary storage format LDMS's store_sos plugin writes
// (paper §IV-A lists SOS alongside MySQL and flat files).
//
// A Container holds samples for one schema: an append-only sequence of
// fixed-layout binary records split across size-bounded partition files,
// with the metric-name dictionary written once per container. Records carry
// a timestamp and component ID, so queries by time range and component are
// served by a scan that skips whole partitions outside the requested range
// (each partition records its min/max timestamps in a footer-free, scan-
// derived index built at open).
package sos

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"goldms/internal/metric"
)

var le = binary.LittleEndian

// DefaultPartitionSize is the partition roll-over threshold.
const DefaultPartitionSize = 64 << 20

const (
	containerMagic = 0x534F5331 // "SOS1"
	recordHeader   = 8 + 4 + 8  // sec u64, usec u32, compID u64
)

// Record is one stored sample.
type Record struct {
	Time   time.Time
	CompID uint64
	Values []metric.Value
}

// Container is an open SOS container for one schema.
type Container struct {
	mu       sync.Mutex
	dir      string
	schema   string
	names    []string
	types    []metric.Type
	partSize int64

	cur     *os.File
	curSize int64
	curIdx  int
	parts   []partInfo

	bytesWritten int64
	appends      int64
}

// partInfo is the per-partition time index.
type partInfo struct {
	path     string
	min, max int64 // unix seconds; min == math.MaxInt64 sentinel avoided by records>0 check
	records  int64
}

// Options configure container creation.
type Options struct {
	// PartitionSize overrides the roll-over threshold in bytes.
	PartitionSize int64
}

// Create makes a new container at dir for the given schema name and metric
// definitions. dir must not already contain a container.
func Create(dir, schema string, names []string, types []metric.Type, opts *Options) (*Container, error) {
	if len(names) == 0 || len(names) != len(types) {
		return nil, fmt.Errorf("sos: invalid schema: %d names, %d types", len(names), len(types))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	metaPath := filepath.Join(dir, "schema.sos")
	if _, err := os.Stat(metaPath); err == nil {
		return nil, fmt.Errorf("sos: container already exists at %s", dir)
	}
	var b []byte
	b = le.AppendUint32(b, containerMagic)
	b = appendString(b, schema)
	b = le.AppendUint32(b, uint32(len(names)))
	for i := range names {
		b = appendString(b, names[i])
		b = append(b, byte(types[i]))
	}
	if err := os.WriteFile(metaPath, b, 0o644); err != nil {
		return nil, err
	}
	c := &Container{
		dir:      dir,
		schema:   schema,
		names:    append([]string(nil), names...),
		types:    append([]metric.Type(nil), types...),
		partSize: DefaultPartitionSize,
	}
	if opts != nil && opts.PartitionSize > 0 {
		c.partSize = opts.PartitionSize
	}
	return c, nil
}

// Open opens an existing container, rebuilding the partition time index by
// scanning partition headers.
func Open(dir string, opts *Options) (*Container, error) {
	b, err := os.ReadFile(filepath.Join(dir, "schema.sos"))
	if err != nil {
		return nil, fmt.Errorf("sos: open %s: %w", dir, err)
	}
	if len(b) < 8 || le.Uint32(b) != containerMagic {
		return nil, fmt.Errorf("sos: %s: bad container magic", dir)
	}
	pos := 4
	schema, pos, err := readString(b, pos)
	if err != nil {
		return nil, err
	}
	if pos+4 > len(b) {
		return nil, fmt.Errorf("sos: %s: truncated schema", dir)
	}
	card := int(le.Uint32(b[pos:]))
	pos += 4
	c := &Container{dir: dir, schema: schema, partSize: DefaultPartitionSize}
	if opts != nil && opts.PartitionSize > 0 {
		c.partSize = opts.PartitionSize
	}
	for i := 0; i < card; i++ {
		var name string
		name, pos, err = readString(b, pos)
		if err != nil {
			return nil, err
		}
		if pos >= len(b) {
			return nil, fmt.Errorf("sos: %s: truncated type table", dir)
		}
		c.names = append(c.names, name)
		c.types = append(c.types, metric.Type(b[pos]))
		pos++
	}
	if err := c.scanPartitions(); err != nil {
		return nil, err
	}
	return c, nil
}

// scanPartitions builds the time index for existing partitions.
func (c *Container) scanPartitions() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "part.") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(c.dir, name)
		info, err := c.scanPartition(path)
		if err != nil {
			return err
		}
		c.parts = append(c.parts, info)
		c.curIdx = len(c.parts)
	}
	return nil
}

// scanPartition reads one partition to find its record count and time range.
func (c *Container) scanPartition(path string) (partInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return partInfo{}, err
	}
	defer f.Close()
	info := partInfo{path: path}
	it := &Iterator{c: c, r: f}
	for {
		rec, ok, err := it.next()
		if err != nil {
			return partInfo{}, fmt.Errorf("sos: scan %s: %w", path, err)
		}
		if !ok {
			break
		}
		sec := rec.Time.Unix()
		if info.records == 0 || sec < info.min {
			info.min = sec
		}
		if sec > info.max {
			info.max = sec
		}
		info.records++
	}
	return info, nil
}

// Schema returns the container's schema name.
func (c *Container) Schema() string { return c.schema }

// MetricNames returns the container's metric dictionary.
func (c *Container) MetricNames() []string { return c.names }

// Stats summarizes write activity since the container was opened.
type Stats struct {
	BytesWritten int64
	Appends      int64
	Partitions   int
}

// Stats returns a write-activity snapshot.
func (c *Container) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.parts)
	if c.cur != nil {
		n = c.curIdx + 1
	}
	return Stats{BytesWritten: c.bytesWritten, Appends: c.appends, Partitions: n}
}

// Append stores one sample. Values must match the schema cardinality.
func (c *Container) Append(t time.Time, compID uint64, values []metric.Value) error {
	if len(values) != len(c.names) {
		return fmt.Errorf("sos: append: %d values, schema has %d", len(values), len(c.names))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil || c.curSize >= c.partSize {
		if err := c.rollLocked(); err != nil {
			return err
		}
	}
	buf := make([]byte, 0, 4+recordHeader+9*len(values))
	buf = le.AppendUint32(buf, uint32(recordHeader+9*len(values)))
	buf = le.AppendUint64(buf, uint64(t.Unix()))
	buf = le.AppendUint32(buf, uint32(t.Nanosecond()/1000))
	buf = le.AppendUint64(buf, compID)
	for _, v := range values {
		buf = append(buf, byte(v.Type))
		buf = le.AppendUint64(buf, v.Bits)
	}
	n, err := c.cur.Write(buf)
	c.curSize += int64(n)
	c.bytesWritten += int64(n)
	if err != nil {
		return err
	}
	c.appends++
	sec := t.Unix()
	p := &c.parts[c.curIdx]
	if p.records == 0 || sec < p.min {
		p.min = sec
	}
	if sec > p.max {
		p.max = sec
	}
	p.records++
	return nil
}

// rollLocked closes the current partition and opens the next.
func (c *Container) rollLocked() error {
	if c.cur != nil {
		if err := c.cur.Close(); err != nil {
			return err
		}
		c.curIdx++
	} else {
		c.curIdx = len(c.parts)
	}
	path := filepath.Join(c.dir, fmt.Sprintf("part.%06d", c.curIdx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	c.cur = f
	c.curSize = st.Size()
	if c.curIdx >= len(c.parts) {
		c.parts = append(c.parts, partInfo{path: path})
	}
	return nil
}

// Sync flushes the current partition to stable storage.
func (c *Container) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return nil
	}
	return c.cur.Sync()
}

// Close syncs and closes the container.
func (c *Container) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return nil
	}
	err := c.cur.Close()
	c.cur = nil
	return err
}

// Query returns an iterator over records with from <= t < to (zero times
// mean unbounded) and, if comp != 0, only that component. Partitions whose
// time range falls wholly outside [from, to) are skipped without reading.
func (c *Container) Query(from, to time.Time, comp uint64) (*Iterator, error) {
	c.mu.Lock()
	var paths []string
	for _, p := range c.parts {
		if p.records > 0 {
			if !from.IsZero() && p.max < from.Unix() {
				continue
			}
			if !to.IsZero() && p.min >= to.Unix() {
				continue
			}
		}
		paths = append(paths, p.path)
	}
	c.mu.Unlock()
	return &Iterator{c: c, paths: paths, from: from, to: to, comp: comp}, nil
}

// Iterator walks records across partitions in append order.
type Iterator struct {
	c     *Container
	paths []string
	r     io.ReadCloser
	from  time.Time
	to    time.Time
	comp  uint64
}

// Next returns the next matching record, or ok == false at the end.
func (it *Iterator) Next() (Record, bool, error) {
	for {
		if it.r == nil {
			if len(it.paths) == 0 {
				return Record{}, false, nil
			}
			f, err := os.Open(it.paths[0])
			it.paths = it.paths[1:]
			if err != nil {
				return Record{}, false, err
			}
			it.r = f
		}
		rec, ok, err := it.next()
		if err != nil {
			it.Close()
			return Record{}, false, err
		}
		if !ok {
			it.Close()
			continue
		}
		if !it.from.IsZero() && rec.Time.Before(it.from) {
			continue
		}
		if !it.to.IsZero() && !rec.Time.Before(it.to) {
			continue
		}
		if it.comp != 0 && rec.CompID != it.comp {
			continue
		}
		return rec, true, nil
	}
}

// next reads one raw record from the current reader.
func (it *Iterator) next() (Record, bool, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(it.r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return Record{}, false, nil
		}
		return Record{}, false, err
	}
	n := le.Uint32(lenBuf[:])
	if n < recordHeader || n > 1<<24 {
		return Record{}, false, fmt.Errorf("sos: corrupt record length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(it.r, buf); err != nil {
		return Record{}, false, fmt.Errorf("sos: truncated record: %w", err)
	}
	rec := Record{
		Time:   time.Unix(int64(le.Uint64(buf[0:])), int64(le.Uint32(buf[8:]))*1000),
		CompID: le.Uint64(buf[12:]),
	}
	nvals := (int(n) - recordHeader) / 9
	rec.Values = make([]metric.Value, nvals)
	pos := recordHeader
	for i := 0; i < nvals; i++ {
		rec.Values[i] = metric.Value{Type: metric.Type(buf[pos]), Bits: le.Uint64(buf[pos+1:])}
		pos += 9
	}
	return rec, true, nil
}

// Close releases the iterator's open file, if any.
func (it *Iterator) Close() {
	if it.r != nil {
		it.r.Close()
		it.r = nil
	}
}

// appendString appends a u16-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = le.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// readString decodes a u16-length-prefixed string at pos.
func readString(b []byte, pos int) (string, int, error) {
	if pos+2 > len(b) {
		return "", 0, fmt.Errorf("sos: truncated string")
	}
	n := int(le.Uint16(b[pos:]))
	if pos+2+n > len(b) {
		return "", 0, fmt.Errorf("sos: truncated string body")
	}
	return string(b[pos+2 : pos+2+n]), pos + 2 + n, nil
}
