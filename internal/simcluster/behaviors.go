package simcluster

import (
	"errors"
	"math"
	"time"

	"goldms/internal/procfs"
)

// CommPattern selects how a communication-heavy job spreads traffic.
type CommPattern int

// Communication patterns.
const (
	// PatternRing sends from each job node to the next (wrapping).
	PatternRing CommPattern = iota
	// PatternXStream sends HopDistance routers in +X, loading consecutive
	// X+ links — the congestion shape of paper Fig. 9, whose features
	// "naturally have extent in the X direction".
	PatternXStream
	// PatternYStream sends HopDistance routers in +Y.
	PatternYStream
	// PatternAllReduce approximates a tree allreduce: every node exchanges
	// with the job's root node.
	PatternAllReduce
)

// CommHeavy injects network traffic between a job's nodes. On the Blue
// Waters profile traffic loads the Gemini torus; on Chama it bumps the
// IB/ethernet counters.
type CommHeavy struct {
	// BytesPerNodePerSec is each node's injection rate.
	BytesPerNodePerSec float64
	// Pattern shapes the traffic.
	Pattern CommPattern
	// HopDistance is the router displacement for the stream patterns.
	HopDistance int
}

// Tick implements Behavior.
func (b CommHeavy) Tick(c *Cluster, j *Job, dt time.Duration) error {
	bytes := uint64(b.BytesPerNodePerSec * dt.Seconds())
	if bytes == 0 {
		return nil
	}
	hop := b.HopDistance
	if hop <= 0 {
		hop = 1
	}
	for i, src := range j.Nodes {
		var dst int
		switch b.Pattern {
		case PatternRing:
			dst = j.Nodes[(i+1)%len(j.Nodes)]
		case PatternXStream, PatternYStream:
			if c.Torus == nil {
				dst = j.Nodes[(i+1)%len(j.Nodes)]
				break
			}
			r := c.Torus.RouterOf(src)
			x, y, z := c.Torus.Coord(r)
			if b.Pattern == PatternXStream {
				x = (x + hop) % c.Torus.X
			} else {
				y = (y + hop) % c.Torus.Y
			}
			dst = 2 * c.Torus.RouterAt(x, y, z) // first node on the target router
		case PatternAllReduce:
			dst = j.Nodes[0]
			if src == dst {
				continue
			}
		default:
			dst = j.Nodes[(i+1)%len(j.Nodes)]
		}
		if dst == src {
			continue
		}
		if c.Torus != nil {
			c.Torus.InjectNodes(src, dst, bytes)
		}
		c.accountNodeTraffic(src, dst, bytes)
	}
	return nil
}

// accountNodeTraffic bumps node-local NIC counters for a transfer.
func (c *Cluster) accountNodeTraffic(src, dst int, bytes uint64) {
	c.nodes[src].State.Update(func(ns *procfs.NodeState) {
		if g := ns.Gemini; g != nil {
			g.LnetTxBytes += bytes
		}
		if d, ok := ns.NetDev["ib0"]; ok {
			d.TxBytes += bytes
			d.TxPackets += bytes / 2048
		}
		if hc, ok := ns.IB["mlx4_0"]; ok {
			hc.PortXmitData += bytes / 4 // IB counters are in 4-byte lanes
			hc.PortXmitPkts += bytes / 2048
		}
	})
	c.nodes[dst].State.Update(func(ns *procfs.NodeState) {
		if g := ns.Gemini; g != nil {
			g.LnetRxBytes += bytes
		}
		if d, ok := ns.NetDev["ib0"]; ok {
			d.RxBytes += bytes
			d.RxPackets += bytes / 2048
		}
		if hc, ok := ns.IB["mlx4_0"]; ok {
			hc.PortRcvData += bytes / 4
			hc.PortRcvPkts += bytes / 2048
		}
	})
}

// LustreLoad drives shared-file-system client counters on a job's nodes.
type LustreLoad struct {
	FS           string // filesystem instance; default "snx11024"
	OpensPerSec  float64
	ClosesPerSec float64
	ReadBps      float64
	WriteBps     float64
}

// Tick implements Behavior.
func (b LustreLoad) Tick(c *Cluster, j *Job, dt time.Duration) error {
	fsName := b.FS
	if fsName == "" {
		fsName = "snx11024"
	}
	sec := dt.Seconds()
	for _, id := range j.Nodes {
		c.nodes[id].State.Update(func(ns *procfs.NodeState) {
			l := ns.EnsureLustre(fsName)
			l.Open += uint64(b.OpensPerSec * sec)
			l.Close += uint64(b.ClosesPerSec * sec)
			l.ReadBytes += uint64(b.ReadBps * sec)
			l.WriteBytes += uint64(b.WriteBps * sec)
			l.DirtyPagesHits += uint64(b.WriteBps * sec / 4096)
		})
	}
	return nil
}

// ErrOOMKilled ends a MemoryRamp job whose working set exceeded node
// memory, reproducing the §VI-B profile of "a 64 node job terminated by
// the OOM killer".
var ErrOOMKilled = errors.New("oom-killed")

// MemoryRamp grows each node's active memory over time, with per-node
// imbalance. When OOM is set, the job dies as soon as any node exhausts
// its memory.
type MemoryRamp struct {
	// BaseKB is the initial per-node working set.
	BaseKB uint64
	// RateKBPerSec is the average growth rate.
	RateKBPerSec float64
	// Imbalance spreads per-node rates over [1-Imbalance/2, 1+Imbalance/2].
	Imbalance float64
	// OOM kills the job on exhaustion.
	OOM bool

	elapsed time.Duration
}

// Tick implements Behavior.
func (b *MemoryRamp) Tick(c *Cluster, j *Job, dt time.Duration) error {
	b.elapsed += dt
	sec := b.elapsed.Seconds()
	oom := false
	for i, id := range j.Nodes {
		frac := 0.5
		if len(j.Nodes) > 1 {
			frac = float64(i) / float64(len(j.Nodes)-1)
		}
		mult := 1 + b.Imbalance*(frac-0.5)
		active := b.BaseKB + uint64(b.RateKBPerSec*sec*mult)
		// A little node-local wobble so lines are distinguishable.
		active += uint64(2048 * math.Sin(sec/300*2*math.Pi*(1+frac)))
		c.nodes[id].State.Update(func(ns *procfs.NodeState) {
			if active >= ns.MemTotalKB {
				active = ns.MemTotalKB
				oom = true
			}
			ns.ActiveKB = active
			reserved := ns.MemTotalKB / 16
			if active+reserved >= ns.MemTotalKB {
				ns.MemFreeKB = 0
			} else {
				ns.MemFreeKB = ns.MemTotalKB - active - reserved
			}
		})
	}
	if oom && b.OOM {
		return ErrOOMKilled
	}
	return nil
}

// Composite runs several behaviours for one job.
type Composite []Behavior

// Tick implements Behavior.
func (b Composite) Tick(c *Cluster, j *Job, dt time.Duration) error {
	for _, sub := range b {
		if err := sub.Tick(c, j, dt); err != nil {
			return err
		}
	}
	return nil
}

// Idle is a no-op behaviour (placeholder allocations).
type Idle struct{}

// Tick implements Behavior.
func (Idle) Tick(*Cluster, *Job, time.Duration) error { return nil }

// BurstLustreOpens bumps Lustre opens on every node at once — the system-
// wide vertical lines of paper Fig. 11 (e.g. a system service touching the
// shared file system across all nodes).
func (c *Cluster) BurstLustreOpens(fsName string, opens uint64) {
	if fsName == "" {
		fsName = "snx11024"
	}
	for _, n := range c.nodes {
		n.State.Update(func(ns *procfs.NodeState) {
			ns.EnsureLustre(fsName).Open += opens
		})
	}
}
