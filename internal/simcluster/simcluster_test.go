package simcluster

import (
	"strings"
	"testing"
	"time"

	"goldms/internal/gemini"
	"goldms/internal/procfs"
)

func bwCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Options{
		Profile: ProfileBlueWaters,
		TorusX:  4, TorusY: 4, TorusZ: 4,
		Seed:  1,
		Start: time.Unix(1_400_000_000, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func chamaCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(Options{Profile: ProfileChama, Nodes: n, Seed: 2, Start: time.Unix(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterConstruction(t *testing.T) {
	c := bwCluster(t)
	if c.NumNodes() != 128 {
		t.Errorf("BW nodes = %d want 128 (2 per Gemini)", c.NumNodes())
	}
	if c.Torus == nil {
		t.Fatal("BW profile needs a torus")
	}
	// Nodes expose gpcdr; Chama nodes don't.
	if _, err := c.Node(0).FS.ReadFile(procfs.GpcdrPath); err != nil {
		t.Errorf("BW node lacks gpcdr: %v", err)
	}
	ch := chamaCluster(t, 16)
	if ch.Torus != nil {
		t.Error("Chama should have no torus")
	}
	if _, err := ch.Node(0).FS.ReadFile(procfs.GpcdrPath); err == nil {
		t.Error("Chama node serves gpcdr")
	}
	if _, err := ch.Node(0).FS.ReadFile("/proc/net/dev"); err != nil {
		t.Errorf("Chama node lacks net/dev: %v", err)
	}
}

func TestJobLifecycle(t *testing.T) {
	c := chamaCluster(t, 8)
	j, err := c.StartJob(1001, []int{0, 1, 2}, time.Minute, Idle{})
	if err != nil {
		t.Fatal(err)
	}
	// Busy nodes can't be double-allocated.
	if _, err := c.StartJob(1002, []int{2, 3}, time.Minute, Idle{}); err == nil {
		t.Fatal("overlapping allocation accepted")
	}
	if _, err := c.StartJob(1002, []int{99}, time.Minute, Idle{}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	// Node state reflects the binding.
	b, _ := c.Node(0).FS.ReadFile(procfs.JobInfoPath)
	if !strings.Contains(string(b), "jobid 1") || !strings.Contains(string(b), "uid 1001") {
		t.Errorf("jobinfo = %q", b)
	}
	if len(c.IdleNodes(100)) != 5 {
		t.Errorf("idle = %d want 5", len(c.IdleNodes(100)))
	}

	// Step past the end: the job completes and nodes free up.
	for i := 0; i < 61; i++ {
		c.Step(time.Second)
	}
	if len(c.RunningJobs()) != 0 {
		t.Fatal("job still running after its end time")
	}
	log := c.JobLog()
	if len(log) != 1 || log[0].ID != j.ID || log[0].EndNote != "completed" {
		t.Errorf("job log = %+v", log)
	}
	b, _ = c.Node(0).FS.ReadFile(procfs.JobInfoPath)
	if !strings.Contains(string(b), "jobid 0") {
		t.Errorf("node still bound: %q", b)
	}
}

func TestCommHeavyCongestsTorus(t *testing.T) {
	c := bwCluster(t)
	// A whole-X-ring stream at 3x the X link capacity.
	var nodes []int
	for r := 0; r < c.Torus.X; r++ {
		nodes = append(nodes, 2*c.Torus.RouterAt(r, 0, 0))
	}
	_, err := c.StartJob(1, nodes, time.Hour, CommHeavy{
		BytesPerNodePerSec: 3 * gemini.BWXMBps * 1e6,
		Pattern:            PatternXStream,
		HopDistance:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Step(time.Minute)
	// The X+ links along y=0,z=0 must be stalling hard.
	r := c.Torus.RouterAt(0, 0, 0)
	if pct := c.Torus.LinkStallPct(r, gemini.XPlus); pct < 50 {
		t.Errorf("stall pct = %g want >50", pct)
	}
	// And the counters must have reached the node's gpcdr view.
	b, err := c.Node(0).FS.ReadFile(procfs.GpcdrPath)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, "X+_credit_stall") {
		t.Fatalf("gpcdr content:\n%s", s)
	}
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "X+_credit_stall ") {
			if strings.TrimPrefix(line, "X+_credit_stall ") == "0" {
				t.Error("credit stall counter still zero in gpcdr view")
			}
		}
	}
}

func TestLustreLoadCounters(t *testing.T) {
	c := chamaCluster(t, 4)
	c.StartJob(5, []int{0, 1}, time.Hour, LustreLoad{OpensPerSec: 10, WriteBps: 1 << 20})
	c.Step(10 * time.Second)
	st := c.Node(0).State
	st.Update(func(ns *procfs.NodeState) {
		l := ns.Lustre["snx11024"]
		if l.Open != 100 {
			t.Errorf("opens = %d want 100", l.Open)
		}
		if l.WriteBytes != 10<<20 {
			t.Errorf("write bytes = %d", l.WriteBytes)
		}
	})
	// Unallocated node untouched.
	c.Node(3).State.Update(func(ns *procfs.NodeState) {
		if ns.Lustre["snx11024"].Open != 0 {
			t.Error("idle node accrued opens")
		}
	})
}

func TestMemoryRampOOM(t *testing.T) {
	c := chamaCluster(t, 8)
	// 64 GB nodes; ramp fast enough to OOM within the hour.
	ramp := &MemoryRamp{
		BaseKB:       8 << 20,
		RateKBPerSec: float64(1<<20) / 60, // 1 GB per minute
		Imbalance:    0.4,
		OOM:          true,
	}
	j, err := c.StartJob(9, []int{0, 1, 2, 3}, 24*time.Hour, ramp)
	if err != nil {
		t.Fatal(err)
	}
	var died bool
	for i := 0; i < 5000 && !died; i++ {
		c.Step(time.Minute)
		died = len(c.RunningJobs()) == 0
	}
	if !died {
		t.Fatal("OOM job never died")
	}
	log := c.JobLog()
	if log[0].ID != j.ID || log[0].EndNote != ErrOOMKilled.Error() {
		t.Errorf("job log = %+v", log[0])
	}
	// Fastest node ramps at 1.2 GB/min from 8 GB to 64 GB: ~47 minutes.
	if d := log[0].End.Sub(log[0].Start); d < 30*time.Minute || d > 70*time.Minute {
		t.Errorf("OOM at %v, want ~47m", d)
	}
}

func TestMemoryRampImbalanceVisible(t *testing.T) {
	c := chamaCluster(t, 4)
	ramp := &MemoryRamp{BaseKB: 1 << 20, RateKBPerSec: 1 << 10, Imbalance: 0.5}
	c.StartJob(1, []int{0, 1, 2, 3}, time.Hour, ramp)
	c.Step(100 * time.Second)
	var a0, a3 uint64
	c.Node(0).State.Update(func(ns *procfs.NodeState) { a0 = ns.ActiveKB })
	c.Node(3).State.Update(func(ns *procfs.NodeState) { a3 = ns.ActiveKB })
	if a3 <= a0 {
		t.Errorf("imbalance not visible: node0=%d node3=%d", a0, a3)
	}
}

func TestBackgroundCPUAdvances(t *testing.T) {
	c := chamaCluster(t, 2)
	c.StartJob(1, []int{0}, time.Hour, Idle{})
	c.Step(10 * time.Second)
	var busyUser, idleUser, idleIdle uint64
	c.Node(0).State.Update(func(ns *procfs.NodeState) { busyUser = ns.CPU[0].User })
	c.Node(1).State.Update(func(ns *procfs.NodeState) {
		idleUser = ns.CPU[0].User
		idleIdle = ns.CPU[0].Idle
	})
	if busyUser == 0 {
		t.Error("busy node accrued no user ticks")
	}
	if idleUser != 0 || idleIdle == 0 {
		t.Errorf("idle node user=%d idle=%d", idleUser, idleIdle)
	}
}

func TestBurstLustreOpens(t *testing.T) {
	c := chamaCluster(t, 4)
	c.BurstLustreOpens("", 500)
	for i := 0; i < 4; i++ {
		c.Node(i).State.Update(func(ns *procfs.NodeState) {
			if ns.Lustre["snx11024"].Open != 500 {
				t.Errorf("node %d opens = %d", i, ns.Lustre["snx11024"].Open)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		c := bwCluster(t)
		c.StartJob(1, []int{0, 2, 4, 6}, time.Hour, CommHeavy{
			BytesPerNodePerSec: 1e9, Pattern: PatternRing})
		for i := 0; i < 20; i++ {
			c.Step(time.Second)
		}
		var sum uint64
		c.Node(0).State.Update(func(ns *procfs.NodeState) {
			sum = ns.Ctxt + ns.Gemini.LnetTxBytes
		})
		return sum
	}
	if run() != run() {
		t.Error("same seed produced different trajectories")
	}
}

func TestLinkStatusPublishedToGpcdr(t *testing.T) {
	c := bwCluster(t)
	c.Torus.SetLinkUp(0, gemini.XPlus, false)
	c.Step(time.Minute)
	b, err := c.Node(0).FS.ReadFile(procfs.GpcdrPath)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, "X+_status 0") {
		t.Errorf("failed link not visible in gpcdr:\n%s", s)
	}
	if !strings.Contains(s, "X-_status 1") {
		t.Errorf("healthy link wrongly down:\n%s", s)
	}
}
