// Package simcluster models an HPC cluster at the fidelity LDMS monitors
// it: per-node OS counters (memory, CPU, Lustre, network) and — on Cray
// profiles — Gemini HSN link counters, all driven by a job mix.
//
// It is the substitute for the paper's two testbeds:
//
//   - ProfileBlueWaters: Gemini 3-D torus, gpcdr counters, Lustre, diskless
//     nodes (NCSA's 27,648-node Cray XE6/XK7; scaled down by default).
//   - ProfileChama: Infiniband capacity Linux cluster with /proc//sys
//     sources only (SNL's 1,296-node TOSS cluster).
//
// The cluster advances in discrete steps of virtual time. Each step, job
// behaviours mutate node state and inject network traffic; the torus
// resolves congestion into credit-stall counters; and node procfs views
// (rendered by procfs.SimFS) reflect everything, ready for LDMS samplers.
package simcluster

import (
	"fmt"
	"math/rand"
	"time"

	"goldms/internal/gemini"
	"goldms/internal/procfs"
)

// Profile selects the hardware model.
type Profile int

// Cluster profiles.
const (
	ProfileChama Profile = iota
	ProfileBlueWaters
)

// Node is one simulated compute node.
type Node struct {
	ID    int
	State *procfs.NodeState
	FS    *procfs.SimFS
	job   *Job
}

// Options configure cluster construction.
type Options struct {
	Profile Profile
	// Nodes is used by the Chama profile. Blue Waters sizes from the torus.
	Nodes int
	// TorusX/Y/Z size the Gemini torus (Blue Waters profile). Nodes = 2*X*Y*Z.
	TorusX, TorusY, TorusZ int
	// Seed makes runs deterministic.
	Seed int64
	// Start is the initial virtual time.
	Start time.Time
	// CoresPerNode defaults to 16 (Chama) / 16 (BW XE).
	CoresPerNode int
	// MemPerNodeKB defaults to 64 GB (Chama, paper §VI-B) / 32 GB.
	MemPerNodeKB uint64
}

// Cluster is the simulated machine.
type Cluster struct {
	Profile Profile
	Torus   *gemini.Torus // nil on Chama
	nodes   []*Node
	rng     *rand.Rand
	now     time.Time

	jobs      []*Job
	nextJobID uint64
	log       []JobRecord
}

// New builds a cluster.
func New(opts Options) (*Cluster, error) {
	c := &Cluster{
		Profile: opts.Profile,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		now:     opts.Start,
	}
	cores := opts.CoresPerNode
	if cores <= 0 {
		cores = 16
	}
	mem := opts.MemPerNodeKB
	n := opts.Nodes
	if opts.Profile == ProfileBlueWaters {
		x, y, z := opts.TorusX, opts.TorusY, opts.TorusZ
		if x == 0 && y == 0 && z == 0 {
			x, y, z = 8, 8, 8
		}
		tor, err := gemini.New(x, y, z)
		if err != nil {
			return nil, err
		}
		c.Torus = tor
		n = tor.NumNodes()
		if mem == 0 {
			mem = 32 << 20 // 32 GB
		}
	} else {
		if n <= 0 {
			n = 64
		}
		if mem == 0 {
			mem = 64 << 20 // 64 GB, paper Fig. 12
		}
	}
	for i := 0; i < n; i++ {
		st := procfs.NewNodeState(fmt.Sprintf("nid%05d", i), cores, mem)
		st.Update(func(ns *procfs.NodeState) {
			ns.MemFreeKB = mem - mem/16
			ns.CachedKB = mem / 32
			ns.ActiveKB = mem / 32
			ns.EnsureLustre("snx11024")
			if opts.Profile == ProfileChama {
				ns.EnsureNetDev("eth0")
				ns.EnsureNetDev("ib0")
				ns.EnsureIB("mlx4_0")
			} else {
				g := ns.EnsureGemini()
				for d := gemini.Dir(0); d < gemini.NumDirs; d++ {
					g.Links[d].Status = 1
					g.Links[d].LinkBWMBps = c.Torus.LinkBW(d)
				}
			}
		})
		c.nodes = append(c.nodes, &Node{ID: i, State: st, FS: procfs.NewSimFS(st)})
	}
	return c, nil
}

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Now returns the cluster's virtual time.
func (c *Cluster) Now() time.Time { return c.now }

// JobRecord is the scheduler's view of one job, the data joined with LDMS
// metrics to build application profiles (paper §VI-B).
type JobRecord struct {
	ID      uint64
	UID     uint64
	Nodes   []int
	Start   time.Time
	End     time.Time // zero while running
	EndNote string    // "completed", "oom-killed", ...
}

// Job is a running allocation with a workload behaviour.
type Job struct {
	ID       uint64
	UID      uint64
	Nodes    []int
	Behavior Behavior
	ends     time.Time
	rec      *JobRecord
}

// Behavior mutates cluster/node state each step for one job.
type Behavior interface {
	// Tick applies dt of workload. Returning an error ends the job with
	// the error text as its end note (e.g. "oom-killed").
	Tick(c *Cluster, j *Job, dt time.Duration) error
}

// StartJob allocates nodes to a behaviour for a duration. Nodes must be
// idle.
func (c *Cluster) StartJob(uid uint64, nodes []int, d time.Duration, b Behavior) (*Job, error) {
	for _, n := range nodes {
		if n < 0 || n >= len(c.nodes) {
			return nil, fmt.Errorf("simcluster: node %d out of range", n)
		}
		if c.nodes[n].job != nil {
			return nil, fmt.Errorf("simcluster: node %d busy", n)
		}
	}
	c.nextJobID++
	rec := &JobRecord{
		ID:    c.nextJobID,
		UID:   uid,
		Nodes: append([]int(nil), nodes...),
		Start: c.now,
	}
	c.log = append(c.log, *rec)
	j := &Job{ID: c.nextJobID, UID: uid, Nodes: rec.Nodes, Behavior: b, ends: c.now.Add(d), rec: &c.log[len(c.log)-1]}
	c.jobs = append(c.jobs, j)
	for _, n := range nodes {
		c.nodes[n].job = j
		c.nodes[n].State.Update(func(ns *procfs.NodeState) {
			ns.JobID = j.ID
			ns.UserID = uid
		})
	}
	return j, nil
}

// endJob releases a job's nodes and closes its record.
func (c *Cluster) endJob(j *Job, note string) {
	for _, n := range j.Nodes {
		node := c.nodes[n]
		if node.job == j {
			node.job = nil
			node.State.Update(func(ns *procfs.NodeState) {
				ns.JobID, ns.UserID = 0, 0
				// Job teardown frees its memory.
				ns.ActiveKB = ns.MemTotalKB / 32
				ns.MemFreeKB = ns.MemTotalKB - ns.MemTotalKB/16
			})
		}
	}
	j.rec.End = c.now
	j.rec.EndNote = note
	for i, running := range c.jobs {
		if running == j {
			c.jobs = append(c.jobs[:i], c.jobs[i+1:]...)
			break
		}
	}
}

// JobLog returns the scheduler history (running jobs have zero End).
func (c *Cluster) JobLog() []JobRecord {
	return append([]JobRecord(nil), c.log...)
}

// RunningJobs returns the currently active jobs.
func (c *Cluster) RunningJobs() []*Job {
	return append([]*Job(nil), c.jobs...)
}

// IdleNodes returns up to max idle node IDs.
func (c *Cluster) IdleNodes(max int) []int {
	var ids []int
	for _, n := range c.nodes {
		if n.job == nil {
			ids = append(ids, n.ID)
			if len(ids) == max {
				break
			}
		}
	}
	return ids
}

// Step advances virtual time by dt: job behaviours run, completed jobs
// end, background OS activity ticks, and (on Cray profiles) the torus
// resolves congestion and republishes gpcdr counters.
func (c *Cluster) Step(dt time.Duration) {
	c.now = c.now.Add(dt)

	for _, j := range append([]*Job(nil), c.jobs...) {
		if err := j.Behavior.Tick(c, j, dt); err != nil {
			c.endJob(j, err.Error())
			continue
		}
		if !c.now.Before(j.ends) {
			c.endJob(j, "completed")
		}
	}

	c.backgroundTick(dt)

	if c.Torus != nil {
		c.Torus.Step(dt)
		c.publishGemini()
	}
}

// backgroundTick applies baseline OS activity to every node.
func (c *Cluster) backgroundTick(dt time.Duration) {
	ticks := uint64(dt.Seconds() * 100) // USER_HZ
	for _, n := range c.nodes {
		busy := n.job != nil
		n.State.Update(func(ns *procfs.NodeState) {
			idle := ticks
			var user uint64
			if busy {
				user = ticks * 95 / 100
				idle = ticks - user
			}
			sys := ticks / 100
			for i := range ns.CPU {
				ns.CPU[i].User += user
				ns.CPU[i].Sys += sys
				ns.CPU[i].Idle += idle
			}
			ns.Ctxt += 100 + uint64(c.rng.Intn(50))
			ns.Intr += 80 + uint64(c.rng.Intn(30))
			if busy {
				ns.Load1 = float64(ns.NumCores)
			} else {
				ns.Load1 = 0.01
			}
			ns.Load5 = ns.Load1
			ns.Load15 = ns.Load1
		})
	}
}

// publishGemini copies torus counters into each node's gpcdr view.
func (c *Cluster) publishGemini() {
	sampleNs := uint64(c.now.UnixNano())
	for _, n := range c.nodes {
		router := c.Torus.RouterOf(n.ID)
		n.State.Update(func(ns *procfs.NodeState) {
			g := ns.Gemini
			for d := gemini.Dir(0); d < gemini.NumDirs; d++ {
				traffic, stall, inq, pkts := c.Torus.LinkCounters(router, d)
				g.Links[d].Traffic = traffic
				g.Links[d].CreditStall = stall
				g.Links[d].Stalled = stall
				g.Links[d].InqStall = inq
				g.Links[d].Packets = pkts
				if c.Torus.LinkUp(router, d) {
					g.Links[d].Status = 1
				} else {
					g.Links[d].Status = 0
				}
			}
			g.SampleTimeNs = sampleNs
		})
	}
}

// Rand exposes the cluster's deterministic RNG to behaviours.
func (c *Cluster) Rand() *rand.Rand { return c.rng }
