// Package analysis provides the OVIS-side characterization views of §VI:
// node×time matrices of metric values with feature extraction (persistent
// per-node bands, system-wide bursts, maxima), 3-D torus snapshots with
// region detection, loop-time histograms, and job profiles built by
// joining metric data with scheduler records.
//
// The paper's figures are plots; here each view renders as ASCII plus a
// machine-checkable feature summary, which is what the experiment harness
// asserts against ("features of interest can be discerned even in simple
// representations", §VI).
package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Matrix is a rows×cols grid of float64 samples — rows are nodes, columns
// are time buckets in the §VI 2-D views.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.data[r*m.Cols+c] = v }

// At returns the value at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.data[r*m.Cols+c] }

// Max returns the maximum value and its position.
func (m *Matrix) Max() (v float64, row, col int) {
	v = math.Inf(-1)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if x := m.At(r, c); x > v {
				v, row, col = x, r, c
			}
		}
	}
	return
}

// Band is a contiguous run of above-threshold values in one row: the
// horizontal lines of Figs. 9 and 11 ("significant and sustained level of
// opens from a few nodes"; "significant congestion can persist for many
// hours").
type Band struct {
	Row        int
	Start, End int // column range, inclusive
	MeanValue  float64
}

// Len returns the band's column extent.
func (b Band) Len() int { return b.End - b.Start + 1 }

// Bands finds, per row, every run of ≥ minLen consecutive columns with
// values above threshold, sorted by descending length.
func (m *Matrix) Bands(threshold float64, minLen int) []Band {
	var bands []Band
	for r := 0; r < m.Rows; r++ {
		start := -1
		sum := 0.0
		flush := func(end int) {
			if start >= 0 && end-start+1 >= minLen {
				bands = append(bands, Band{Row: r, Start: start, End: end, MeanValue: sum / float64(end-start+1)})
			}
			start, sum = -1, 0
		}
		for c := 0; c < m.Cols; c++ {
			if m.At(r, c) > threshold {
				if start < 0 {
					start = c
				}
				sum += m.At(r, c)
			} else {
				flush(c - 1)
			}
		}
		flush(m.Cols - 1)
	}
	sort.Slice(bands, func(i, j int) bool { return bands[i].Len() > bands[j].Len() })
	return bands
}

// Bursts finds columns where at least frac of all rows exceed threshold —
// the vertical lines of Fig. 11 ("times when Lustre opens occur across
// most nodes of the system").
func (m *Matrix) Bursts(threshold, frac float64) []int {
	var cols []int
	need := int(frac * float64(m.Rows))
	if need < 1 {
		need = 1
	}
	for c := 0; c < m.Cols; c++ {
		n := 0
		for r := 0; r < m.Rows; r++ {
			if m.At(r, c) > threshold {
				n++
			}
		}
		if n >= need {
			cols = append(cols, c)
		}
	}
	return cols
}

// CountAbove returns how many cells exceed threshold.
func (m *Matrix) CountAbove(threshold float64) int {
	n := 0
	for _, v := range m.data {
		if v > threshold {
			n++
		}
	}
	return n
}

// asciiRamp maps magnitude to a glyph.
var asciiRamp = []byte(" .:-=+*#%@")

// RenderASCII draws the matrix as a heatmap, downsampling to at most
// maxRows×maxCols glyphs (max-pooling so features survive downsampling, as
// the paper plots points "larger than the natural point size").
func (m *Matrix) RenderASCII(w io.Writer, maxRows, maxCols int) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range m.data {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi <= lo {
		hi = lo + 1
	}
	rows, cols := m.Rows, m.Cols
	if rows > maxRows {
		rows = maxRows
	}
	if cols > maxCols {
		cols = maxCols
	}
	for gr := 0; gr < rows; gr++ {
		line := make([]byte, cols)
		r0, r1 := gr*m.Rows/rows, (gr+1)*m.Rows/rows
		for gc := 0; gc < cols; gc++ {
			c0, c1 := gc*m.Cols/cols, (gc+1)*m.Cols/cols
			peak := math.Inf(-1)
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					peak = math.Max(peak, m.At(r, c))
				}
			}
			idx := int((peak - lo) / (hi - lo) * float64(len(asciiRamp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			line[gc] = asciiRamp[idx]
		}
		fmt.Fprintf(w, "|%s|\n", line)
	}
	fmt.Fprintf(w, "scale: min=%.3g max=%.3g\n", lo, hi)
}
