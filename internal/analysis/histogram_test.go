package analysis

import (
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := Histogram{100: 1000, 101: 500, 500: 3}
	if h.Total() != 1503 {
		t.Errorf("total = %d", h.Total())
	}
	h.Merge(Histogram{100: 1, 900: 2})
	if h[100] != 1001 || h[900] != 2 {
		t.Errorf("merge result = %v", h)
	}
}

func TestHistogramRebin(t *testing.T) {
	h := Histogram{100: 5, 101: 5, 102: 5, 110: 1}
	r := h.Rebin(10)
	if r[100] != 15 || r[110] != 1 {
		t.Errorf("rebinned = %v", r)
	}
	if got := h.Rebin(1); got[101] != 5 {
		t.Error("width 1 should be identity")
	}
}

func TestHistogramRender(t *testing.T) {
	h := Histogram{100: 100000, 500: 1}
	var sb strings.Builder
	h.Render(&sb, 20)
	out := sb.String()
	if !strings.Contains(out, "100") || !strings.Contains(out, "500") {
		t.Errorf("render missing buckets:\n%s", out)
	}
	// Log scaling keeps the single-count tail visible.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "500") && !strings.Contains(line, "#") {
			t.Errorf("tail bucket has no bar: %q", line)
		}
	}
}

func TestHistogramRenderCoarsens(t *testing.T) {
	h := Histogram{}
	for i := 0; i < 500; i++ {
		h[i] = 1
	}
	var sb strings.Builder
	h.Render(&sb, 8)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) > 8 {
		t.Errorf("render rows = %d want <= 8", len(lines))
	}
	if !strings.Contains(lines[0], "-") {
		t.Errorf("coarsened label missing range: %q", lines[0])
	}
}

func TestHistogramRenderEmpty(t *testing.T) {
	var sb strings.Builder
	Histogram{}.Render(&sb, 10)
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty render = %q", sb.String())
	}
}
