package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Histogram maps integer buckets (microseconds in the PSNAP figures) to
// occurrence counts.
type Histogram map[int]int64

// Total sums the counts.
func (h Histogram) Total() int64 {
	var n int64
	for _, c := range h {
		n += c
	}
	return n
}

// Merge adds other's counts into h.
func (h Histogram) Merge(other Histogram) {
	for b, c := range other {
		h[b] += c
	}
}

// Rebin coarsens the histogram to buckets of the given width.
func (h Histogram) Rebin(width int) Histogram {
	if width <= 1 {
		return h
	}
	out := make(Histogram)
	for b, c := range h {
		out[b/width*width] += c
	}
	return out
}

// Render draws the histogram with log-scaled bars (the paper's Fig. 5/8
// use a log count axis so single-sample tail events remain visible).
// Buckets with zero count are omitted; maxRows caps the output by
// coarsening bins as needed.
func (h Histogram) Render(w io.Writer, maxRows int) {
	hh := h
	width := 1
	for len(nonzero(hh)) > maxRows && width < 1<<20 {
		width *= 2
		hh = h.Rebin(width)
	}
	buckets := nonzero(hh)
	sort.Ints(buckets)
	var maxCount int64
	for _, b := range buckets {
		if hh[b] > maxCount {
			maxCount = hh[b]
		}
	}
	if maxCount == 0 {
		fmt.Fprintln(w, "(empty histogram)")
		return
	}
	logMax := math.Log10(float64(maxCount) + 1)
	for _, b := range buckets {
		c := hh[b]
		barLen := int(math.Log10(float64(c)+1) / logMax * 50)
		if barLen < 1 {
			barLen = 1
		}
		bar := make([]byte, barLen)
		for i := range bar {
			bar[i] = '#'
		}
		label := fmt.Sprintf("%d", b)
		if width > 1 {
			label = fmt.Sprintf("%d-%d", b, b+width-1)
		}
		fmt.Fprintf(w, "%12s us %10d %s\n", label, c, bar)
	}
}

// nonzero returns the buckets with nonzero counts.
func nonzero(h Histogram) []int {
	var bs []int
	for b, c := range h {
		if c > 0 {
			bs = append(bs, b)
		}
	}
	return bs
}
