package analysis

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, 5.5)
	m.Set(2, 3, -1)
	if m.At(1, 2) != 5.5 {
		t.Error("Set/At")
	}
	v, r, c := m.Max()
	if v != 5.5 || r != 1 || c != 2 {
		t.Errorf("Max = %g at (%d,%d)", v, r, c)
	}
	if m.CountAbove(0) != 1 {
		t.Errorf("CountAbove = %d", m.CountAbove(0))
	}
}

func TestBandsDetectSustainedRows(t *testing.T) {
	// Row 2 has a 10-column band above threshold; row 0 has isolated
	// blips only.
	m := NewMatrix(4, 20)
	for c := 5; c < 15; c++ {
		m.Set(2, c, 80)
	}
	m.Set(0, 3, 90)
	bands := m.Bands(50, 5)
	if len(bands) != 1 {
		t.Fatalf("bands = %+v", bands)
	}
	b := bands[0]
	if b.Row != 2 || b.Start != 5 || b.End != 14 || b.Len() != 10 {
		t.Errorf("band = %+v", b)
	}
	if b.MeanValue != 80 {
		t.Errorf("band mean = %g", b.MeanValue)
	}
	// Lower minLen picks up the blip too.
	if len(m.Bands(50, 1)) != 2 {
		t.Error("short band not found with minLen=1")
	}
}

func TestBandSplitByGap(t *testing.T) {
	m := NewMatrix(1, 10)
	for _, c := range []int{0, 1, 2, 6, 7, 8, 9} {
		m.Set(0, c, 10)
	}
	bands := m.Bands(5, 2)
	if len(bands) != 2 {
		t.Fatalf("bands = %+v", bands)
	}
	if bands[0].Len() != 4 || bands[1].Len() != 3 {
		t.Errorf("band lengths = %d, %d", bands[0].Len(), bands[1].Len())
	}
}

func TestBurstsDetectSystemWideColumns(t *testing.T) {
	m := NewMatrix(10, 8)
	// Column 3: all rows high. Column 6: only two rows.
	for r := 0; r < 10; r++ {
		m.Set(r, 3, 100)
	}
	m.Set(0, 6, 100)
	m.Set(1, 6, 100)
	bursts := m.Bursts(50, 0.8)
	if len(bursts) != 1 || bursts[0] != 3 {
		t.Errorf("bursts = %v", bursts)
	}
}

func TestRenderASCII(t *testing.T) {
	m := NewMatrix(100, 200)
	m.Set(50, 100, 42)
	var sb strings.Builder
	m.RenderASCII(&sb, 10, 40)
	out := sb.String()
	if !strings.Contains(out, "@") {
		t.Error("peak glyph missing from downsampled render")
	}
	if !strings.Contains(out, "max=42") {
		t.Errorf("scale line missing: %s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 11 {
		t.Error("render row count wrong")
	}
}

func TestTorusSnapshotMaxAndRegions(t *testing.T) {
	s := NewTorusSnapshot(8, 4, 4)
	// A region spanning the X wraparound at y=1,z=2.
	s.Set(7, 1, 2, 85)
	s.Set(0, 1, 2, 70)
	s.Set(1, 1, 2, 60)
	// An isolated router elsewhere.
	s.Set(3, 3, 0, 55)
	v, x, y, z := s.Max()
	if v != 85 || x != 7 || y != 1 || z != 2 {
		t.Errorf("max %g at (%d,%d,%d)", v, x, y, z)
	}
	regions := s.Regions(50)
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
	if regions[0].Size() != 3 || !regions[0].WrapsX {
		t.Errorf("wrap region = %+v", regions[0])
	}
	if regions[1].Size() != 1 || regions[1].WrapsX {
		t.Errorf("isolated region = %+v", regions[1])
	}
	if regions[0].Peak != 85 {
		t.Errorf("region peak = %g", regions[0].Peak)
	}
}

func TestTorusRegionsConnectivityAcrossYZ(t *testing.T) {
	s := NewTorusSnapshot(4, 4, 4)
	s.Set(1, 0, 0, 10)
	s.Set(1, 3, 0, 10) // Y wraparound neighbor of (1,0,0)
	s.Set(1, 0, 3, 10) // Z wraparound neighbor
	regions := s.Regions(5)
	if len(regions) != 1 || regions[0].Size() != 3 {
		t.Errorf("torus connectivity broken: %+v", regions)
	}
}

func TestTorusRender(t *testing.T) {
	s := NewTorusSnapshot(4, 2, 2)
	s.Set(0, 0, 0, 99)
	var sb strings.Builder
	s.RenderASCII(&sb, 50)
	if !strings.Contains(sb.String(), "@") || !strings.Contains(sb.String(), "z=1") {
		t.Errorf("render:\n%s", sb.String())
	}
}

func mkProfile() *JobProfile {
	base := time.Unix(1000, 0)
	p := &JobProfile{JobID: 9, UID: 100, Metric: "Active", Start: base, End: base.Add(time.Hour), EndNote: "oom-killed"}
	for n := 0; n < 4; n++ {
		s := Series{Node: n, CompID: uint64(n)}
		for i := 0; i < 60; i++ {
			s.Times = append(s.Times, base.Add(time.Duration(i)*time.Minute))
			s.Values = append(s.Values, float64(1000+(n+1)*i*10))
		}
		p.Series = append(p.Series, s)
	}
	return p
}

func TestJobProfileFeatures(t *testing.T) {
	p := mkProfile()
	// Node 3 ramps 4x faster than node 0: imbalance well above 1.
	imb := p.Imbalance()
	if imb < 1.5 {
		t.Errorf("imbalance = %g", imb)
	}
	if g := p.GrowthFraction(); g <= 0 {
		t.Errorf("growth = %g", g)
	}
	var sb strings.Builder
	p.Render(&sb, 40)
	out := sb.String()
	if !strings.Contains(out, "oom-killed") || !strings.Contains(out, "node     3") {
		t.Errorf("profile render:\n%s", out)
	}
}

func TestJobProfileEmpty(t *testing.T) {
	p := &JobProfile{}
	if !math.IsNaN(p.Imbalance()) {
		t.Error("empty imbalance should be NaN")
	}
	if p.GrowthFraction() != 0 {
		t.Error("empty growth should be 0")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Values: []float64{1, 5, 3}}
	if s.Last() != 3 || s.Peak() != 5 {
		t.Errorf("last=%g peak=%g", s.Last(), s.Peak())
	}
	e := Series{}
	if !math.IsNaN(e.Last()) || !math.IsNaN(e.Peak()) {
		t.Error("empty series should be NaN")
	}
}

func TestCounterRates(t *testing.T) {
	cs := NewCounterSamples(2, 5, 60)
	// Row 0: steady 600 opens per bucket -> 10/s.
	for c := 0; c < 5; c++ {
		cs.Observe(0, c, float64(600*c))
	}
	// Row 1: a gap at bucket 2 and a counter reset at bucket 4.
	cs.Observe(1, 0, 100)
	cs.Observe(1, 1, 160)
	cs.Observe(1, 3, 280)
	cs.Observe(1, 4, 10)
	m := cs.Rates()
	if got := m.At(0, 1); got != 10 {
		t.Errorf("steady rate = %g want 10", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("first bucket rate = %g want 0 (no previous)", got)
	}
	if got := m.At(1, 1); got != 1 {
		t.Errorf("row1 rate = %g want 1", got)
	}
	// Across the gap: 120 counts over 2 buckets = 1/s.
	if got := m.At(1, 3); got != 1 {
		t.Errorf("gap rate = %g want 1", got)
	}
	if got := m.At(1, 2); got != 0 {
		t.Errorf("missing bucket rate = %g want 0", got)
	}
	// Reset: decrease yields zero, not a negative rate.
	if got := m.At(1, 4); got != 0 {
		t.Errorf("reset rate = %g want 0", got)
	}
}

func TestCounterRatesOutOfRangeIgnored(t *testing.T) {
	cs := NewCounterSamples(1, 2, 1)
	cs.Observe(-1, 0, 5)
	cs.Observe(0, 99, 5)
	cs.Observe(5, 0, 5)
	m := cs.Rates()
	if m.CountAbove(0) != 0 {
		t.Error("out-of-range observations leaked")
	}
}
