package analysis

import (
	"fmt"
	"io"
	"math"
	"time"
)

// Series is one node's time series within a job profile.
type Series struct {
	Node   int
	CompID uint64
	Times  []time.Time
	Values []float64
}

// Last returns the final value, or NaN when empty.
func (s Series) Last() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	return s.Values[len(s.Values)-1]
}

// Peak returns the maximum value, or NaN when empty.
func (s Series) Peak() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	v := s.Values[0]
	for _, x := range s.Values {
		if x > v {
			v = x
		}
	}
	return v
}

// JobProfile is the §VI-B application profile: per-node metric series over
// a job's lifetime (plus limited pre/post windows "to verify the state of
// the nodes upon entering and exiting the job"), built by joining LDMS
// data with scheduler records.
type JobProfile struct {
	JobID      uint64
	UID        uint64
	Metric     string
	Start, End time.Time
	EndNote    string
	Series     []Series
}

// Imbalance reports max/min of per-node peak values — the memory imbalance
// "readily apparent" in Fig. 12. It returns 1 for balanced profiles and
// +Inf when a node's peak is zero.
func (p *JobProfile) Imbalance() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		v := s.Peak()
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(hi, -1) {
		return math.NaN()
	}
	if lo == 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// GrowthFraction reports the mean (last-first)/first value across nodes —
// positive for the Fig. 12 ramp toward OOM.
func (p *JobProfile) GrowthFraction() float64 {
	var sum float64
	n := 0
	for _, s := range p.Series {
		if len(s.Values) < 2 || s.Values[0] == 0 {
			continue
		}
		sum += (s.Last() - s.Values[0]) / s.Values[0]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render writes a textual profile: one sparkline-style row per node.
func (p *JobProfile) Render(w io.Writer, width int) {
	fmt.Fprintf(w, "job %d (uid %d) metric %s: %s .. %s (%s)\n",
		p.JobID, p.UID, p.Metric,
		p.Start.UTC().Format(time.RFC3339), p.End.UTC().Format(time.RFC3339), p.EndNote)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, v := range s.Values {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	for _, s := range p.Series {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for i, v := range s.Values {
			c := i * width / max(len(s.Values), 1)
			if c >= width {
				c = width - 1
			}
			idx := int((v - lo) / (hi - lo) * float64(len(asciiRamp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			if asciiRamp[idx] != ' ' || line[c] == ' ' {
				line[c] = asciiRamp[idx]
			}
		}
		fmt.Fprintf(w, " node %5d |%s| peak %.3g\n", s.Node, line, s.Peak())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
