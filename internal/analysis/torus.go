package analysis

import (
	"fmt"
	"io"
	"sort"
)

// TorusSnapshot is a per-router scalar field at one instant in the Gemini
// mesh coordinate space (the Fig. 9/10 bottom views). Values is indexed
// router-major as gemini.Torus lays routers out: (z*Y + y)*X + x.
type TorusSnapshot struct {
	X, Y, Z int
	Values  []float64
}

// NewTorusSnapshot allocates a zero field.
func NewTorusSnapshot(x, y, z int) *TorusSnapshot {
	return &TorusSnapshot{X: x, Y: y, Z: z, Values: make([]float64, x*y*z)}
}

// At returns the value at mesh coordinates.
func (s *TorusSnapshot) At(x, y, z int) float64 {
	return s.Values[(z*s.Y+y)*s.X+x]
}

// Set stores a value at mesh coordinates.
func (s *TorusSnapshot) Set(x, y, z int, v float64) {
	s.Values[(z*s.Y+y)*s.X+x] = v
}

// Max returns the maximum value and its coordinates.
func (s *TorusSnapshot) Max() (v float64, x, y, z int) {
	v = s.Values[0]
	for i, val := range s.Values {
		if val > v {
			v = val
			x = i % s.X
			y = (i / s.X) % s.Y
			z = i / (s.X * s.Y)
		}
	}
	return
}

// Region is a connected set of above-threshold routers. WrapsX reports
// whether the region crosses the X torus wraparound — the Fig. 9 label C
// feature ("because of the toroidal connectivity, this group wraps in X").
type Region struct {
	Coords [][3]int
	Peak   float64
	WrapsX bool
}

// Size returns the router count of the region.
func (r Region) Size() int { return len(r.Coords) }

// Regions finds the connected components of routers above threshold,
// using 6-neighbor torus connectivity, sorted by descending size.
func (s *TorusSnapshot) Regions(threshold float64) []Region {
	n := s.X * s.Y * s.Z
	seen := make([]bool, n)
	idx := func(x, y, z int) int { return (z*s.Y+y)*s.X + x }
	var regions []Region
	for start := 0; start < n; start++ {
		if seen[start] || s.Values[start] <= threshold {
			continue
		}
		var reg Region
		stack := []int{start}
		seen[start] = true
		minX, maxX := s.X, -1
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x := cur % s.X
			y := (cur / s.X) % s.Y
			z := cur / (s.X * s.Y)
			reg.Coords = append(reg.Coords, [3]int{x, y, z})
			if s.Values[cur] > reg.Peak {
				reg.Peak = s.Values[cur]
			}
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			for _, d := range [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
				nx := (x + d[0] + s.X) % s.X
				ny := (y + d[1] + s.Y) % s.Y
				nz := (z + d[2] + s.Z) % s.Z
				ni := idx(nx, ny, nz)
				if !seen[ni] && s.Values[ni] > threshold {
					seen[ni] = true
					stack = append(stack, ni)
				}
			}
		}
		// A region wraps in X when it touches both x=0 and x=X-1 (and has
		// more than one distinct x, so full-ring regions count too).
		if minX == 0 && maxX == s.X-1 && s.X > 1 {
			reg.WrapsX = true
		}
		regions = append(regions, reg)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].Size() > regions[j].Size() })
	return regions
}

// RenderASCII draws each Z plane of the snapshot as a small heatmap.
func (s *TorusSnapshot) RenderASCII(w io.Writer, threshold float64) {
	for z := 0; z < s.Z; z++ {
		fmt.Fprintf(w, "z=%d\n", z)
		for y := 0; y < s.Y; y++ {
			row := make([]byte, s.X)
			for x := 0; x < s.X; x++ {
				v := s.At(x, y, z)
				switch {
				case v > threshold:
					row[x] = '@'
				case v > threshold/2:
					row[x] = '+'
				case v > 0:
					row[x] = '.'
				default:
					row[x] = ' '
				}
			}
			fmt.Fprintf(w, " %s\n", row)
		}
	}
}
