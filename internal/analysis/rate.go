package analysis

// CounterSamples accumulates (entity, time-bucket, counter-value) samples
// of a monotonically increasing counter — e.g. Lustre opens per node — and
// differentiates them into a per-second rate matrix. This is the standard
// post-processing step for LDMS counter metrics, whose samplers store raw
// counters and leave rate derivation to analysis (except where the paper
// derives in the sampler, as gpcdr does).
type CounterSamples struct {
	rows, cols    int
	bucketSeconds float64
	value         *Matrix
	seen          *Matrix
}

// NewCounterSamples sizes the accumulator: rows entities, cols time
// buckets of bucketSeconds each.
func NewCounterSamples(rows, cols int, bucketSeconds float64) *CounterSamples {
	return &CounterSamples{
		rows: rows, cols: cols, bucketSeconds: bucketSeconds,
		value: NewMatrix(rows, cols),
		seen:  NewMatrix(rows, cols),
	}
}

// Observe records the counter value of an entity in a time bucket. Later
// observations in the same bucket overwrite earlier ones.
func (cs *CounterSamples) Observe(row, col int, counter float64) {
	if row < 0 || row >= cs.rows || col < 0 || col >= cs.cols {
		return
	}
	cs.value.Set(row, col, counter)
	cs.seen.Set(row, col, 1)
}

// Rates differentiates the counters: cell (r, c) holds the per-second rate
// between the previous observed bucket and bucket c. Missing buckets and
// counter resets (decreases) yield zero.
func (cs *CounterSamples) Rates() *Matrix {
	m := NewMatrix(cs.rows, cs.cols)
	for r := 0; r < cs.rows; r++ {
		prev := 0.0
		prevCol := -1
		for c := 0; c < cs.cols; c++ {
			if cs.seen.At(r, c) == 0 {
				continue
			}
			v := cs.value.At(r, c)
			if prevCol >= 0 && v >= prev {
				dt := float64(c-prevCol) * cs.bucketSeconds
				if dt > 0 {
					m.Set(r, c, (v-prev)/dt)
				}
			}
			prev, prevCol = v, c
		}
	}
	return m
}
