package appsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestFiringsIn(t *testing.T) {
	// Period 1.0, phase 0.25: firings at 0.25, 1.25, 2.25...
	cases := []struct {
		start, dur float64
		want       int
	}{
		{0, 1, 1},      // catches 0.25
		{0.3, 0.5, 0},  // between firings
		{0.2, 2.3, 3},  // 0.25, 1.25, 2.25
		{1.25, 0.1, 1}, // boundary inclusive at start
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := firingsIn(0.25, 1.0, c.start, c.dur); got != c.want {
			t.Errorf("firingsIn(start=%g dur=%g) = %d want %d", c.start, c.dur, got, c.want)
		}
	}
	if firingsIn(0, 0, 0, 1) != 0 {
		t.Error("zero period should yield no firings")
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := MILC(64)
	a := Run(spec, Monitor(time.Second, true), 42)
	b := Run(spec, Monitor(time.Second, true), 42)
	if a.WallTime != b.WallTime {
		t.Error("same seed produced different wall times")
	}
}

func TestMonitoringImpactSmall(t *testing.T) {
	// The paper's central claim: ≤1 s sampling at ~400 µs cost has no
	// practical impact (well under the 1% SNL requirement, §III-B).
	spec := MiniGhost(256)
	spec.IntrinsicJitter = 0 // isolate the monitoring effect
	spec.OSNoiseProb = 0
	un := Run(spec, NoMonitor, 1)
	mon := Run(spec, Monitor(time.Second, true), 1)
	slow := mon.WallTime.Seconds()/un.WallTime.Seconds() - 1
	if slow < 0 {
		t.Errorf("monitored run faster without noise: %g", slow)
	}
	if slow > 0.01 {
		t.Errorf("slowdown %.4f exceeds 1%%", slow)
	}
	if mon.MonitorHits == 0 {
		t.Error("monitoring produced no hits at all")
	}
}

func TestCoarserPeriodFewerHits(t *testing.T) {
	spec := CTH(128)
	m1 := Run(spec, Monitor(time.Second, false), 5)
	m60 := Run(spec, Monitor(time.Minute, false), 5)
	if m60.MonitorHits >= m1.MonitorHits {
		t.Errorf("60 s hits (%d) should be far fewer than 1 s hits (%d)",
			m60.MonitorHits, m1.MonitorHits)
	}
}

func TestSynchronousBoundsAffectedIterations(t *testing.T) {
	// With synchronized sampling all nodes are hit in the same iteration,
	// so the barrier absorbs one delay; unsynchronized sampling spreads
	// hits over many iterations, each of which pays at the barrier.
	spec := AppSpec{
		Name: "sync-test", Nodes: 512, Iterations: 200,
		ComputePerIter:   100 * time.Millisecond,
		NoiseSensitivity: 1.0,
	}
	monAsync := Monitor(time.Second, false)
	monSync := monAsync
	monSync.Synchronous = true
	async := Run(spec, monAsync, 7)
	syncd := Run(spec, monSync, 7)
	if syncd.WallTime > async.WallTime {
		t.Errorf("synchronized sampling (%v) should not be slower than unsynchronized (%v)",
			syncd.WallTime, async.WallTime)
	}
}

func TestNaluVarianceDwarfsMonitoring(t *testing.T) {
	// §V-B1: the 8,192 PE Nalu runs vary more intrinsically than any
	// monitoring effect.
	spec := Nalu(1024) // scaled down for test speed
	spec.Nodes = 1024
	un := Repeat(spec, NoMonitor, 3, 3)
	hm := Repeat(spec, Monitor(time.Second, true), 30, 3)
	_, unMin, unMax := MeanWall(un)
	unSpread := unMax - unMin
	unMean, _, _ := MeanWall(un)
	hmMean, _, _ := MeanWall(hm)
	delta := hmMean - unMean
	if delta < 0 {
		delta = -delta
	}
	if unSpread == 0 {
		t.Fatal("no intrinsic spread simulated")
	}
	if delta > 2*unSpread {
		t.Errorf("monitoring delta %v not dwarfed by intrinsic spread %v", delta, unSpread)
	}
}

func TestCatalogShapes(t *testing.T) {
	if CTH(7200).Iterations != 1200 || CTH(1024).Iterations != 600 {
		t.Error("CTH iteration counts per §V-B3")
	}
	if Nalu(8192).IntrinsicJitter <= Nalu(1536).IntrinsicJitter {
		t.Error("Nalu at scale must have larger intrinsic variance")
	}
	lt := LinkTest()
	if lt.Iterations != 10000 {
		t.Error("LinkTest runs 10,000 iterations")
	}
	for _, spec := range []AppSpec{MILC(64), MiniGhost(64), IMBAllReduce(64), Nalu(64), CTH(64), Adagio(64)} {
		r := Run(spec, NoMonitor, 11)
		if r.WallTime <= 0 {
			t.Errorf("%s wall time = %v", spec.Name, r.WallTime)
		}
	}
}

func TestPSNAPScaleHistogram(t *testing.T) {
	loop := 100 * time.Microsecond
	un := PSNAPScale(4, 50000, loop, NoMonitor, 99)
	mon := PSNAPScale(4, 50000, loop, Monitor(time.Second, false), 99)
	if HistTotal(un) != 200000 || HistTotal(mon) != 200000 {
		t.Fatalf("totals: %d / %d", HistTotal(un), HistTotal(mon))
	}
	// Both center on 100 µs.
	if un[100]+un[99]+un[101] < 190000 {
		t.Errorf("unmonitored histogram not centered: %d near 100", un[100]+un[99]+un[101])
	}
	// Monitored run has a distinct tail near 100 µs + ~400 µs sampling
	// cost; unmonitored does not.
	unTail := HistTail(un, 300)
	monTail := HistTail(mon, 300)
	if monTail <= unTail {
		t.Errorf("monitored tail (%d) not heavier than unmonitored (%d)", monTail, unTail)
	}
	// The extra events ≈ runtime / period per node (paper §V-A1 arithmetic:
	// a minute's run sampled at 1 Hz gave ~60 extra events per node ×
	// nodes). Each node runs 50000 × 100 µs = 5 s → ~5 hits per node.
	extra := monTail - unTail
	if extra < 10 || extra > 40 {
		t.Errorf("extra tail events = %d, want ≈ 20 (4 nodes x ~5 s / 1 s)", extra)
	}
}

func TestHistHelpers(t *testing.T) {
	h := map[int]int64{100: 5, 200: 3, 300: 2}
	if HistTotal(h) != 10 {
		t.Error("HistTotal")
	}
	if HistTail(h, 200) != 5 {
		t.Error("HistTail")
	}
}

// Property: with intrinsic noise disabled, monitoring can only lengthen a
// run, and absorption monotonically reduces the penalty.
func TestQuickMonitoringMonotone(t *testing.T) {
	f := func(seed int64, periodMs uint16) bool {
		period := time.Duration(int(periodMs)%2000+100) * time.Millisecond
		spec := AppSpec{
			Name: "q", Nodes: 32, Iterations: 40,
			ComputePerIter:   50 * time.Millisecond,
			NoiseSensitivity: 1.0,
		}
		un := Run(spec, NoMonitor, seed)
		mon := Monitor(period, false)
		full := Run(spec, mon, seed)
		mon.Absorption = 0.99
		absorbed := Run(spec, mon, seed)
		if full.WallTime < un.WallTime {
			return false
		}
		return absorbed.WallTime <= full.WallTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: aggregation perturbation is negligible by construction
// (paper §IV-D traffic numbers).
func TestAggPerturbNegligible(t *testing.T) {
	for _, period := range []time.Duration{time.Second, 20 * time.Second, time.Minute} {
		m := Monitor(period, true)
		if p := m.aggPerturb(); p > 5e-3 {
			t.Errorf("aggregation perturbation at %v = %g, should be negligible", period, p)
		}
	}
	if NoMonitor.aggPerturb() != 0 {
		t.Error("unmonitored perturbation nonzero")
	}
}
