package appsim

import (
	"math/rand"
	"time"
)

// PSNAPScale simulates the PSNAP OS-noise profiler at scale: every node
// spins loops calibrated to loopTime and records each loop's actual
// duration; the histogram of durations exposes noise (paper Figs. 5
// and 8). This is the many-node simulated mode; package psnap runs the
// real single-host measurement.
//
// The returned histogram maps microsecond buckets to occurrence counts.
func PSNAPScale(nodes, loopsPerNode int, loopTime time.Duration, mon MonitorConfig, seed int64) map[int]int64 {
	rng := rand.New(rand.NewSource(seed))
	hist := make(map[int]int64)
	base := loopTime.Seconds()
	period := mon.Period.Seconds()
	cost := mon.cost()

	for n := 0; n < nodes; n++ {
		phase := 0.0
		if mon.Enabled && !mon.Synchronous && period > 0 {
			phase = rng.Float64() * period
		}
		now := 0.0
		for l := 0; l < loopsPerNode; l++ {
			t := base
			// Calibration jitter: sub-microsecond timing wobble.
			t += 0.3e-6 * rng.NormFloat64()
			// Intrinsic OS noise: rare preemptions by kernel daemons with
			// a heavy tail, present with or without monitoring.
			if rng.Float64() < 2e-5 {
				t += 20e-6 * (1 + rng.ExpFloat64())
			}
			if mon.Enabled && period > 0 && firingsIn(phase, period, now, t) > 0 {
				t += cost
			}
			if t < 0 {
				t = base
			}
			hist[int(t*1e6+0.5)]++
			now += t
		}
	}
	return hist
}

// HistTotal sums a histogram's counts.
func HistTotal(h map[int]int64) int64 {
	var n int64
	for _, c := range h {
		n += c
	}
	return n
}

// HistTail counts occurrences at or beyond the given microsecond bucket.
func HistTail(h map[int]int64, fromUs int) int64 {
	var n int64
	for us, c := range h {
		if us >= fromUs {
			n += c
		}
	}
	return n
}
