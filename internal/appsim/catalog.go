package appsim

import "time"

// The application catalog: synthetic equivalents of the paper's benchmark
// codes (§V), parameterized to their documented phase structure. Absolute
// per-iteration times are representative; what matters for the
// reproduction is each code's sensitivity structure.

// MILC models the lattice QCD code: many short CG iterations dominated by
// a 64 B Allreduce — "sensitive to interconnect performance variation"
// (§V-A2), hard synchronization every iteration.
func MILC(nodes int) AppSpec {
	return AppSpec{
		Name:             "MILC",
		Nodes:            nodes,
		Iterations:       400,
		ComputePerIter:   20 * time.Millisecond,
		CommPerIter:      2 * time.Millisecond,
		SyncPerIter:      4 * time.Millisecond,
		IntrinsicJitter:  0.015,
		OSNoiseProb:      0.002,
		OSNoiseMean:      200 * time.Microsecond,
		NoiseSensitivity: 1.0,
		CommSensitivity:  1.0,
	}
}

// MiniGhost models the halo-exchange proxy app used "for studying only the
// communications section of similar codes" (§V-A4): a ~90 s run whose
// reported quantities are wall time, communication time, and the GRIDSUM
// phase (waiting at the barrier).
func MiniGhost(nodes int) AppSpec {
	return AppSpec{
		Name:             "MiniGhost",
		Nodes:            nodes,
		Iterations:       300,
		ComputePerIter:   150 * time.Millisecond,
		CommPerIter:      100 * time.Millisecond,
		SyncPerIter:      50 * time.Millisecond,
		IntrinsicJitter:  0.01,
		OSNoiseProb:      0.001,
		OSNoiseMean:      300 * time.Microsecond,
		NoiseSensitivity: 1.0,
		CommSensitivity:  1.0,
	}
}

// IMBAllReduce models the Intel MPI Benchmark MPI_Allreduce test: 64 B
// payload, back-to-back collectives (§V-A5).
func IMBAllReduce(nodes int) AppSpec {
	return AppSpec{
		Name:             "IMB-Allreduce",
		Nodes:            nodes,
		Iterations:       2000,
		ComputePerIter:   50 * time.Microsecond,
		CommPerIter:      20 * time.Microsecond,
		SyncPerIter:      180 * time.Microsecond,
		IntrinsicJitter:  0.05,
		NoiseSensitivity: 1.0,
		CommSensitivity:  1.0,
	}
}

// LinkTest models Cray's per-link MPI benchmark: 10,000 iterations of 8 kB
// messages between link endpoints (§V-A3). Nodes is 2 because each link is
// measured pairwise.
func LinkTest() AppSpec {
	return AppSpec{
		Name:             "LinkTest",
		Nodes:            2,
		Iterations:       10000,
		ComputePerIter:   10 * time.Microsecond,
		CommPerIter:      1650 * time.Microsecond, // ~ms per 8 kB packet round
		IntrinsicJitter:  0.002,
		NoiseSensitivity: 1.0,
		CommSensitivity:  1.0,
	}
}

// Nalu models the low-Mach CFD code: "47.5% of its time is spent in
// computation, 44% of its time on MPI sync operations, and the last 8.5%
// on other MPI calls" (§V-B1), with the large intrinsic variance the paper
// observed at 8,192 PEs (a 200 s spread between identical unmonitored
// runs, attributed to OS noise).
func Nalu(nodes int) AppSpec {
	jitter := 0.03
	noiseProb := 0.004
	if nodes >= 4096 {
		jitter = 0.08
		noiseProb = 0.02
	}
	return AppSpec{
		Name:             "Nalu",
		Nodes:            nodes,
		Iterations:       150,
		ComputePerIter:   950 * time.Millisecond, // 47.5% of the iteration
		CommPerIter:      170 * time.Millisecond, // 8.5% other MPI
		SyncPerIter:      880 * time.Millisecond, // 44% MPI sync
		IntrinsicJitter:  jitter,
		OSNoiseProb:      noiseProb,
		OSNoiseMean:      50 * time.Millisecond,
		NoiseSensitivity: 0.9,
		CommSensitivity:  1.0,
	}
}

// CTH models the shock-physics code: large (several MB) neighbor exchanges
// with a few small Allreduces, "sensitive to both node and network
// slowdown" (§V-B3); 600 steps at 1,024 cores, 1,200 at 7,200.
func CTH(nodes int) AppSpec {
	iters := 600
	if nodes >= 4096 {
		iters = 1200
	}
	return AppSpec{
		Name:             "CTH",
		Nodes:            nodes,
		Iterations:       iters,
		ComputePerIter:   600 * time.Millisecond,
		CommPerIter:      250 * time.Millisecond,
		SyncPerIter:      50 * time.Millisecond,
		IntrinsicJitter:  0.01,
		OSNoiseProb:      0.002,
		OSNoiseMean:      2 * time.Millisecond,
		NoiseSensitivity: 1.0,
		CommSensitivity:  1.0,
	}
}

// Adagio models the implicit solid-mechanics code: contact mechanics
// stressing communication plus heavy restart I/O (§V-B2).
func Adagio(nodes int) AppSpec {
	return AppSpec{
		Name:             "Adagio",
		Nodes:            nodes,
		Iterations:       250,
		ComputePerIter:   1200 * time.Millisecond,
		CommPerIter:      500 * time.Millisecond,
		SyncPerIter:      200 * time.Millisecond,
		IntrinsicJitter:  0.02,
		OSNoiseProb:      0.003,
		OSNoiseMean:      10 * time.Millisecond,
		NoiseSensitivity: 0.8,
		CommSensitivity:  0.8,
	}
}
