// Package appsim models the execution-time behaviour of the paper's
// benchmark applications under monitoring load.
//
// The paper's impact experiments (§V) ask one question: does a sampler
// that wakes every period P and runs for S (~400 µs of combined sampling
// work per firing) measurably lengthen bulk-synchronous applications? The
// model captures exactly the mechanisms those experiments probe:
//
//   - Per node and iteration, compute time is the base time plus intrinsic
//     jitter plus OS-noise events plus monitoring interruptions that land
//     inside the busy window.
//   - Collective phases propagate per-node delays: an iteration ends when
//     its slowest participant arrives ("an MPI application might wait upon
//     processes on other nodes", §V-A1), attenuated by NoiseSensitivity
//     for codes that overlap or amortize synchronization.
//   - Synchronized (wall-clock aligned) sampling makes all nodes take the
//     interruption in the same iteration, bounding the number of affected
//     iterations; unsynchronized sampling spreads hits across iterations.
//   - Aggregation traffic ("net" variants of Fig. 6) perturbs
//     communication time by its measured share of link bandwidth, which is
//     deliberately negligible (paper §IV-D: ~5 MB per 20 s across the
//     whole fabric).
//
// These are the proprietary applications' synthetic equivalents; absolute
// times are representative, the response to monitoring is the modelled
// quantity.
package appsim

import (
	"math"
	"math/rand"
	"time"
)

// MonitorConfig describes the LDMS deployment an application runs under.
type MonitorConfig struct {
	// Enabled turns monitoring on.
	Enabled bool
	// Period is the sampling interval (1 s, 20 s, 60 s in the paper).
	Period time.Duration
	// SampleCost is the CPU time a sampler firing steals from the
	// application core ("the known sampling execution time of order
	// 400 µs", §V-A1).
	SampleCost time.Duration
	// SamplerFraction scales SampleCost for partial plugin sets
	// (HM_HALF in Fig. 8 runs about half the samplers).
	SamplerFraction float64
	// Synchronous aligns sampler firings across nodes.
	Synchronous bool
	// NetworkAggregation models the pull traffic of the aggregation tier
	// ("no net" variants of Fig. 6 disable aggregation and storage).
	NetworkAggregation bool
	// Absorption is the probability that a sampler firing does not perturb
	// the application at all because it executes on an idle core. LDMS
	// runs per node, not per core, and "can be bound to a core using a
	// variety of platform specific mechanisms (e.g., numactl)" (§IV-D);
	// the Fig. 6 benchmarks left cores free (e.g. 24 tasks on 32-core XE
	// nodes), so hits rarely steal application cycles. Fully-packed runs
	// (PSNAP with one task per core) use 0.
	Absorption float64
}

// NoMonitor is the unmonitored baseline.
var NoMonitor = MonitorConfig{}

// Monitor returns a standard monitored configuration at the given period.
func Monitor(period time.Duration, net bool) MonitorConfig {
	return MonitorConfig{
		Enabled:            true,
		Period:             period,
		SampleCost:         400 * time.Microsecond,
		SamplerFraction:    1,
		NetworkAggregation: net,
	}
}

// cost returns the effective per-firing cost.
func (m MonitorConfig) cost() float64 {
	f := m.SamplerFraction
	if f == 0 {
		f = 1
	}
	return m.SampleCost.Seconds() * f
}

// aggPerturb returns the fractional communication-time perturbation from
// aggregation traffic: the paper's Chama numbers are 4 kB per node per 20 s
// over ~3 GB/s links — order 1e-7 — so this is negligible by construction.
func (m MonitorConfig) aggPerturb() float64 {
	if !m.Enabled || !m.NetworkAggregation || m.Period <= 0 {
		return 0
	}
	const setBytes = 4096.0
	const linkBytesPerSec = 3e9
	return setBytes / m.Period.Seconds() / linkBytesPerSec * 1e3 // route sharing factor
}

// AppSpec describes one bulk-synchronous application.
type AppSpec struct {
	// Name labels results.
	Name string
	// Nodes is the allocation size.
	Nodes int
	// Iterations is the number of outer timesteps.
	Iterations int
	// ComputePerIter is the per-node busy time per iteration.
	ComputePerIter time.Duration
	// CommPerIter is network time per iteration (halo exchanges, sends).
	CommPerIter time.Duration
	// SyncPerIter is collective/barrier time per iteration.
	SyncPerIter time.Duration
	// IntrinsicJitter is the stddev of per-node compute jitter as a
	// fraction of ComputePerIter (application's natural variability).
	IntrinsicJitter float64
	// OSNoiseProb is the per-node-iteration probability of an OS noise
	// event (kernel daemons etc.), independent of monitoring.
	OSNoiseProb float64
	// OSNoiseMean is the mean duration of such an event.
	OSNoiseMean time.Duration
	// NoiseSensitivity in [0,1]: how fully the slowest node's delay
	// propagates through the collective (1 = hard barrier every
	// iteration).
	NoiseSensitivity float64
	// CommSensitivity scales how network perturbation multiplies
	// communication time.
	CommSensitivity float64
}

// Result summarizes one run.
type Result struct {
	Name     string
	WallTime time.Duration
	Compute  time.Duration // sum over iterations of the critical-path compute
	Comm     time.Duration
	Sync     time.Duration
	// MonitorHits counts sampler firings that landed in busy windows,
	// summed over nodes.
	MonitorHits int64
}

// Run executes the model. Runs with the same seed and inputs are
// reproducible.
func Run(spec AppSpec, mon MonitorConfig, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	res := Result{Name: spec.Name}

	base := spec.ComputePerIter.Seconds()
	comm := spec.CommPerIter.Seconds() * (1 + mon.aggPerturb()*spec.CommSensitivity)
	sync := spec.SyncPerIter.Seconds()
	period := mon.Period.Seconds()
	cost := mon.cost()

	// Per-node sampler phase: synchronized sampling fires everywhere at
	// once; otherwise phases are uniform over the period.
	phases := make([]float64, spec.Nodes)
	if mon.Enabled && !mon.Synchronous {
		for i := range phases {
			phases[i] = rng.Float64() * period
		}
	}

	now := 0.0 // global clock, seconds
	var wall, computeSum, commSum, syncSum float64
	for it := 0; it < spec.Iterations; it++ {
		meanT, maxT := 0.0, 0.0
		for n := 0; n < spec.Nodes; n++ {
			t := base
			if spec.IntrinsicJitter > 0 {
				t += base * spec.IntrinsicJitter * rng.NormFloat64()
			}
			if spec.OSNoiseProb > 0 && rng.Float64() < spec.OSNoiseProb {
				t += spec.OSNoiseMean.Seconds() * rng.ExpFloat64()
			}
			if mon.Enabled && period > 0 {
				hits := firingsIn(phases[n], period, now, t)
				for h := 0; h < hits; h++ {
					if mon.Absorption > 0 && rng.Float64() < mon.Absorption {
						continue // the firing ran on a spare core
					}
					t += cost
					res.MonitorHits++
				}
			}
			if t < 0 {
				t = 0
			}
			meanT += t
			if t > maxT {
				maxT = t
			}
		}
		meanT /= float64(spec.Nodes)
		iterCompute := meanT + (maxT-meanT)*spec.NoiseSensitivity
		iterTotal := iterCompute + comm + sync
		computeSum += iterCompute
		commSum += comm
		syncSum += sync
		wall += iterTotal
		now += iterTotal
	}
	res.WallTime = secs(wall)
	res.Compute = secs(computeSum)
	res.Comm = secs(commSum)
	res.Sync = secs(syncSum)
	return res
}

// firingsIn counts sampler firings with phase φ and period P inside the
// window [start, start+dur).
func firingsIn(phase, period, start, dur float64) int {
	if period <= 0 || dur <= 0 {
		return 0
	}
	// First firing at or after start: phase + k*period >= start.
	k := math.Ceil((start - phase) / period)
	if k < 0 {
		k = 0
	}
	first := phase + k*period
	if first >= start+dur {
		return 0
	}
	return int((start+dur-first)/period) + 1
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Repeat runs the model n times with distinct seeds and returns the
// results, the paper's repetition methodology for error bars.
func Repeat(spec AppSpec, mon MonitorConfig, seed int64, n int) []Result {
	out := make([]Result, n)
	for i := range out {
		out[i] = Run(spec, mon, seed+int64(i)*7919)
	}
	return out
}

// MeanWall returns the mean and min/max wall time of a result set.
func MeanWall(rs []Result) (mean, min, max time.Duration) {
	if len(rs) == 0 {
		return
	}
	min, max = rs[0].WallTime, rs[0].WallTime
	var sum time.Duration
	for _, r := range rs {
		sum += r.WallTime
		if r.WallTime < min {
			min = r.WallTime
		}
		if r.WallTime > max {
			max = r.WallTime
		}
	}
	return sum / time.Duration(len(rs)), min, max
}
