// Package ganglia implements a functional Ganglia-style monitor — the
// baseline the paper compares LDMS against (§IV-E).
//
// The design reproduces the properties the comparison hinges on:
//
//   - gmond "includes both data and its description (metadata) at each
//     transmission": every emitted metric carries name, type, units and
//     source, serialized as XML text.
//   - Each metric module collects independently, re-reading and re-parsing
//     its /proc source per metric (the per-metric cost the paper measured
//     at ~126 µs vs LDMS's 1.3 µs).
//   - "user-defined thresholds are typically set to reduce the amount of
//     data sent. This thresholding can reduce behavioral understanding if
//     set too high": metrics are only transmitted when they move by more
//     than their value threshold.
//   - gmetad polls gmonds for their XML state and stores to RRDTool-style
//     ring databases that age data out.
package ganglia

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
	"time"

	"goldms/internal/procfs"
	"goldms/internal/rrd"
)

// Collector reads one metric value from a node's filesystem.
type Collector func(fs procfs.FS) (float64, error)

// MetricDef declares one gmond metric.
type MetricDef struct {
	Name           string
	Units          string
	Type           string
	ValueThreshold float64
	Collect        Collector
}

// boundMetric carries per-metric transmission state.
type boundMetric struct {
	def      MetricDef
	value    float64
	lastSent float64
	sentOnce bool
}

// Gmond is the per-node collection daemon.
type Gmond struct {
	host    string
	fs      procfs.FS
	metrics []*boundMetric
}

// NewGmond creates a gmond for host reading fs, with no metrics yet.
func NewGmond(host string, fs procfs.FS) *Gmond {
	return &Gmond{host: host, fs: fs}
}

// AddMetric registers a metric module.
func (g *Gmond) AddMetric(def MetricDef) {
	g.metrics = append(g.metrics, &boundMetric{def: def})
}

// MeminfoCollector returns a Collector for one /proc/meminfo key. Each
// call re-reads and re-parses the whole file, as gmond's mem module does.
func MeminfoCollector(key string) Collector {
	prefix := key + ":"
	return func(fs procfs.FS) (float64, error) {
		b, err := fs.ReadFile("/proc/meminfo")
		if err != nil {
			return 0, err
		}
		for _, line := range strings.Split(string(b), "\n") {
			if strings.HasPrefix(line, prefix) {
				f := strings.Fields(line[len(prefix):])
				if len(f) == 0 {
					break
				}
				return strconv.ParseFloat(f[0], 64)
			}
		}
		return 0, fmt.Errorf("ganglia: %s not in /proc/meminfo", key)
	}
}

// StatCPUCollector returns a Collector for one field (0=user .. 6=softirq)
// of the aggregate cpu line of /proc/stat.
func StatCPUCollector(field int) Collector {
	return func(fs procfs.FS) (float64, error) {
		b, err := fs.ReadFile("/proc/stat")
		if err != nil {
			return 0, err
		}
		for _, line := range strings.Split(string(b), "\n") {
			if strings.HasPrefix(line, "cpu ") {
				f := strings.Fields(line)[1:]
				if field >= len(f) {
					return 0, fmt.Errorf("ganglia: cpu field %d missing", field)
				}
				return strconv.ParseFloat(f[field], 64)
			}
		}
		return 0, fmt.Errorf("ganglia: no cpu line")
	}
}

// DefaultMetrics registers the metric set used for the paper's per-metric
// cost comparison: values from /proc/stat and /proc/meminfo.
func (g *Gmond) DefaultMetrics(threshold float64) {
	for _, key := range []string{"MemTotal", "MemFree", "Buffers", "Cached", "Active", "Inactive", "Dirty"} {
		g.AddMetric(MetricDef{Name: "mem_" + strings.ToLower(key), Units: "KB", Type: "double",
			ValueThreshold: threshold, Collect: MeminfoCollector(key)})
	}
	names := []string{"user", "nice", "system", "idle", "wio", "intr", "sintr"}
	for i, n := range names {
		g.AddMetric(MetricDef{Name: "cpu_" + n, Units: "jiffies", Type: "double",
			ValueThreshold: threshold, Collect: StatCPUCollector(i)})
	}
}

// NumMetrics returns the registered metric count.
func (g *Gmond) NumMetrics() int { return len(g.metrics) }

// Collect runs every metric module once, updating current values. It
// returns the number collected and the first error encountered.
func (g *Gmond) Collect() (int, error) {
	var firstErr error
	n := 0
	for _, m := range g.metrics {
		v, err := m.def.Collect(g.fs)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m.value = v
		n++
	}
	return n, firstErr
}

// EncodeDue serializes the metrics whose value moved by more than their
// threshold since the last transmission (or that were never sent),
// metadata included with every message. It returns the XML and the number
// of metrics included.
func (g *Gmond) EncodeDue(now time.Time) ([]byte, int) {
	var b bytes.Buffer
	count := 0
	fmt.Fprintf(&b, "<GANGLIA_XML VERSION=\"3.1\" SOURCE=\"gmond\">\n<HOST NAME=%q REPORTED=\"%d\">\n",
		g.host, now.Unix())
	for _, m := range g.metrics {
		delta := m.value - m.lastSent
		if delta < 0 {
			delta = -delta
		}
		if m.sentOnce && delta <= m.def.ValueThreshold {
			continue
		}
		writeMetricXML(&b, m)
		m.lastSent = m.value
		m.sentOnce = true
		count++
	}
	b.WriteString("</HOST>\n</GANGLIA_XML>\n")
	return b.Bytes(), count
}

// EncodeAll serializes every metric regardless of thresholds (the answer
// to a gmetad poll).
func (g *Gmond) EncodeAll(now time.Time) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "<GANGLIA_XML VERSION=\"3.1\" SOURCE=\"gmond\">\n<HOST NAME=%q REPORTED=\"%d\">\n",
		g.host, now.Unix())
	for _, m := range g.metrics {
		writeMetricXML(&b, m)
	}
	b.WriteString("</HOST>\n</GANGLIA_XML>\n")
	return b.Bytes()
}

// writeMetricXML emits one metric element, metadata and all.
func writeMetricXML(b *bytes.Buffer, m *boundMetric) {
	fmt.Fprintf(b,
		"  <METRIC NAME=%q VAL=\"%g\" TYPE=%q UNITS=%q TN=\"0\" TMAX=\"60\" DMAX=\"0\" SLOPE=\"both\" SOURCE=\"gmond\"/>\n",
		m.def.Name, m.value, m.def.Type, m.def.Units)
}

// xmlMetric / xmlHost / xmlTop mirror the wire format for decoding.
type xmlMetric struct {
	Name  string  `xml:"NAME,attr"`
	Val   float64 `xml:"VAL,attr"`
	Type  string  `xml:"TYPE,attr"`
	Units string  `xml:"UNITS,attr"`
}

type xmlHost struct {
	Name     string      `xml:"NAME,attr"`
	Reported int64       `xml:"REPORTED,attr"`
	Metrics  []xmlMetric `xml:"METRIC"`
}

type xmlTop struct {
	Hosts []xmlHost `xml:"HOST"`
}

// Gmetad polls gmonds and stores their values into RRDs, one ring per
// host/metric pair.
type Gmetad struct {
	rrds    map[string]*rrd.RRD
	step    time.Duration
	rows    int
	parsed  int64
	updates int64
}

// NewGmetad creates a gmetad whose RRDs hold rows slots at step.
func NewGmetad(step time.Duration, rows int) *Gmetad {
	return &Gmetad{rrds: make(map[string]*rrd.RRD), step: step, rows: rows}
}

// Ingest parses one gmond XML answer and stores every metric.
func (m *Gmetad) Ingest(x []byte) error {
	var top xmlTop
	if err := xml.Unmarshal(x, &top); err != nil {
		return fmt.Errorf("ganglia: parse: %w", err)
	}
	m.parsed++
	for _, h := range top.Hosts {
		for _, mt := range h.Metrics {
			key := h.Name + "/" + mt.Name
			db := m.rrds[key]
			if db == nil {
				var err error
				db, err = rrd.New(m.step, m.rows, [2]int{6, m.rows})
				if err != nil {
					return err
				}
				m.rrds[key] = db
			}
			if err := db.Update(time.Unix(h.Reported, 0), mt.Val); err != nil {
				return err
			}
			m.updates++
		}
	}
	return nil
}

// Poll collects a gmond and ingests its full state.
func (m *Gmetad) Poll(g *Gmond, now time.Time) error {
	if _, err := g.Collect(); err != nil {
		return err
	}
	return m.Ingest(g.EncodeAll(now))
}

// RRD returns the ring database for host/metric, or nil.
func (m *Gmetad) RRD(host, metricName string) *rrd.RRD {
	return m.rrds[host+"/"+metricName]
}

// Stats reports ingest activity.
func (m *Gmetad) Stats() (parsed, updates int64) { return m.parsed, m.updates }
