package ganglia

import (
	"strings"
	"testing"
	"time"

	"goldms/internal/procfs"
)

func testFS() (*procfs.SimFS, *procfs.NodeState) {
	n := procfs.NewNodeState("gh1", 2, 8<<20)
	n.Update(func(ns *procfs.NodeState) {
		ns.MemFreeKB = 4 << 20
		ns.ActiveKB = 1 << 20
		ns.CPU[0] = procfs.CPUTicks{User: 100, Sys: 50, Idle: 900}
	})
	return procfs.NewSimFS(n), n
}

func TestCollectorsParse(t *testing.T) {
	fs, _ := testFS()
	v, err := MeminfoCollector("MemFree")(fs)
	if err != nil || v != float64(4<<20) {
		t.Errorf("MemFree = %g err=%v", v, err)
	}
	v, err = StatCPUCollector(0)(fs)
	if err != nil || v != 100 {
		t.Errorf("cpu user = %g err=%v", v, err)
	}
	if _, err := MeminfoCollector("Bogus")(fs); err == nil {
		t.Error("bogus key accepted")
	}
}

func TestMetadataInEveryTransmission(t *testing.T) {
	fs, _ := testFS()
	g := NewGmond("gh1", fs)
	g.DefaultMetrics(0)
	if g.NumMetrics() != 14 {
		t.Fatalf("metrics = %d", g.NumMetrics())
	}
	if _, err := g.Collect(); err != nil {
		t.Fatal(err)
	}
	x, n := g.EncodeDue(time.Unix(100, 0))
	if n != 14 {
		t.Errorf("first transmission included %d metrics", n)
	}
	s := string(x)
	// Metadata (TYPE, UNITS, SOURCE) rides along with every value.
	if strings.Count(s, "TYPE=") != 14 || strings.Count(s, "UNITS=") != 14 {
		t.Error("metadata not in every metric message")
	}
}

func TestThresholdSuppressesUnchanged(t *testing.T) {
	fs, node := testFS()
	g := NewGmond("gh1", fs)
	g.DefaultMetrics(1000) // large threshold
	g.Collect()
	_, first := g.EncodeDue(time.Unix(1, 0))
	if first == 0 {
		t.Fatal("initial transmission empty")
	}
	// Nothing moved: nothing sent.
	g.Collect()
	_, second := g.EncodeDue(time.Unix(2, 0))
	if second != 0 {
		t.Errorf("unchanged metrics transmitted: %d", second)
	}
	// A small move stays under threshold — the paper's "thresholding can
	// reduce behavioral understanding if set too high".
	node.Update(func(ns *procfs.NodeState) { ns.MemFreeKB += 500 })
	g.Collect()
	_, third := g.EncodeDue(time.Unix(3, 0))
	if third != 0 {
		t.Errorf("sub-threshold move transmitted: %d", third)
	}
	// A big move is sent.
	node.Update(func(ns *procfs.NodeState) { ns.MemFreeKB += 50000 })
	g.Collect()
	_, fourth := g.EncodeDue(time.Unix(4, 0))
	if fourth != 1 {
		t.Errorf("threshold-crossing move sent %d metrics, want 1", fourth)
	}
}

func TestGmetadPollStoresToRRD(t *testing.T) {
	fs, node := testFS()
	g := NewGmond("gh1", fs)
	g.DefaultMetrics(0)
	md := NewGmetad(time.Second, 120)

	base := time.Unix(5000, 0)
	for i := 0; i < 10; i++ {
		node.Update(func(ns *procfs.NodeState) { ns.MemFreeKB -= 1000 })
		if err := md.Poll(g, base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	parsed, updates := md.Stats()
	if parsed != 10 || updates != 140 {
		t.Errorf("parsed=%d updates=%d", parsed, updates)
	}
	db := md.RRD("gh1", "mem_memfree")
	if db == nil {
		t.Fatal("no RRD for mem_memfree")
	}
	pts := db.Fetch(base, base.Add(10*time.Second))
	if len(pts) != 10 {
		t.Fatalf("rrd points = %d", len(pts))
	}
	if pts[0].Value <= pts[9].Value {
		t.Error("declining MemFree not recorded")
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	md := NewGmetad(time.Second, 10)
	if err := md.Ingest([]byte("<not-xml")); err == nil {
		t.Error("garbage accepted")
	}
}
