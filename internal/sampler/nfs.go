package sampler

import (
	"fmt"
	"time"

	"goldms/internal/metric"
)

// nfs samples NFS client RPC counters from /proc/net/rpc/nfs: the rpc
// totals plus the v3 getattr/lookup/read/write operation counts.
type nfs struct {
	base
}

// nfsMetrics lists the schema in order: three rpc-line counters then four
// proc3 operations.
var nfsMetrics = []string{
	"rpc_count", "rpc_retrans", "rpc_authrefresh",
	"getattr", "lookup", "read", "write",
}

func newNFS(cfg Config) (Plugin, error) {
	p := &nfs{base: base{name: "nfs", fs: cfg.FS}}
	if _, err := cfg.FS.ReadFile("/proc/net/rpc/nfs"); err != nil {
		return nil, fmt.Errorf("sampler nfs: %w", err)
	}
	schema := metric.NewSchema("nfs")
	for _, m := range nfsMetrics {
		schema.MustAddMetric(m, metric.TypeU64)
	}
	set, err := metric.New(cfg.Instance, schema, cfg.setOptions()...)
	if err != nil {
		return nil, err
	}
	p.set = set
	return p, nil
}

// Sample implements Plugin.
func (p *nfs) Sample(now time.Time) error {
	b, err := p.fs.ReadFile("/proc/net/rpc/nfs")
	if err != nil {
		return fmt.Errorf("sampler nfs: %w", err)
	}
	p.set.BeginTransaction()
	p.set.SetValues(func(bt *metric.Batch) {
		eachLine(b, func(line []byte) bool {
			key, pos := firstWord(line)
			switch string(key) {
			case "rpc":
				for i := 0; i < 3; i++ {
					v, next, ok := parseUint(line, pos)
					if !ok {
						break
					}
					bt.SetU64(i, v)
					pos = next
				}
			case "proc3":
				// Layout: proc3 <count> <null> <getattr> <lookup> <read> <write> ...
				pos = skipToken(line, pos) // land on <count>
				pos = skipToken(line, pos) // skip <count>, land on <null>
				pos = skipToken(line, pos) // skip <null>, land on <getattr>
				for i := 3; i < len(nfsMetrics); i++ {
					v, next, ok := parseUint(line, pos)
					if !ok {
						break
					}
					bt.SetU64(i, v)
					pos = next
				}
			}
			return true
		})
	})
	p.set.EndTransaction(now)
	return nil
}

func init() {
	Register("nfs", newNFS)
}
