package sampler

import (
	"runtime"
	"testing"
	"time"

	"goldms/internal/metric"
	"goldms/internal/mmgr"
	"goldms/internal/procfs"
)

// simNode builds a fully populated simulated node for plugin tests.
func simNode() *procfs.NodeState {
	n := procfs.NewNodeState("nid00001", 2, 64<<20)
	n.Update(func(n *procfs.NodeState) {
		n.MemFreeKB = 48 << 20
		n.ActiveKB = 8 << 20
		n.CPU[0] = procfs.CPUTicks{User: 500, Sys: 100, Idle: 9000, IOWait: 30}
		n.CPU[1] = procfs.CPUTicks{User: 250, Sys: 50, Idle: 4500}
		n.CPU[2] = procfs.CPUTicks{User: 250, Sys: 50, Idle: 4500, IOWait: 30}
		n.Intr, n.Ctxt, n.Processes = 11, 22, 33
		n.ProcsRunning, n.ProcsBlocked = 3, 1
		n.Load1, n.Load5, n.Load15 = 1.25, 0.5, 0.25
		n.RunnableTasks, n.TotalTasks, n.LastPID = 2, 300, 4242
		n.PgPgIn, n.PgFault = 77, 88
		l := n.EnsureLustre("snx11024")
		l.Open, l.Close, l.ReadBytes, l.WriteBytes = 10, 9, 4096, 8192
		l.DirtyPagesHits, l.DirtyPagesMisses = 5, 6
		d := n.EnsureNetDev("eth0")
		d.RxBytes, d.RxPackets, d.TxBytes, d.TxPackets = 1000, 10, 2000, 20
		ib := n.EnsureNetDev("ib0")
		ib.RxBytes, ib.TxBytes = 5000, 6000
		hc := n.EnsureIB("mlx4_0")
		hc.PortXmitData, hc.PortRcvData = 123, 456
		n.NFS.RPCCount, n.NFS.Read, n.NFS.Write = 100, 40, 50
		n.NFS.Getattr, n.NFS.Lookup = 7, 8
		g := n.EnsureGemini()
		for d := range procfs.GeminiDirs {
			g.Links[d].LinkBWMBps = 9375
			g.Links[d].Status = 1
		}
		g.SampleTimeNs = 1_000_000_000
		n.JobID, n.UserID = 5001, 1234
	})
	return n
}

func mustPlugin(t *testing.T, name string, cfg Config) Plugin {
	t.Helper()
	p, err := New(name, cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return p
}

func sampleOnce(t *testing.T, p Plugin) {
	t.Helper()
	if err := p.Sample(time.Unix(100, 0)); err != nil {
		t.Fatalf("%s Sample: %v", p.Name(), err)
	}
	if !p.Set().Consistent() {
		t.Fatalf("%s set inconsistent after sample", p.Name())
	}
}

func metricValue(t *testing.T, s *metric.Set, name string) metric.Value {
	t.Helper()
	i, ok := s.MetricIndex(name)
	if !ok {
		t.Fatalf("metric %q not in set %s", name, s.Name())
	}
	return s.Value(i)
}

func TestMeminfoPlugin(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "meminfo", Config{FS: fs, Instance: "n1/meminfo", CompID: 1})
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "MemTotal").U64(); got != 64<<20 {
		t.Errorf("MemTotal = %d", got)
	}
	if got := metricValue(t, p.Set(), "Active").U64(); got != 8<<20 {
		t.Errorf("Active = %d", got)
	}
	// Values track state changes.
	fs.Node().Update(func(n *procfs.NodeState) { n.ActiveKB = 9 << 20 })
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "Active").U64(); got != 9<<20 {
		t.Errorf("Active after update = %d", got)
	}
}

func TestVmstatPlugin(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "vmstat", Config{FS: fs})
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "pgfault").U64(); got != 88 {
		t.Errorf("pgfault = %d", got)
	}
}

func TestProcstatPlugin(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "procstat", Config{FS: fs, Instance: "n1/procstat"})
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "cpu_user").U64(); got != 500 {
		t.Errorf("cpu_user = %d", got)
	}
	if got := metricValue(t, p.Set(), "cpu_iowait").U64(); got != 30 {
		t.Errorf("cpu_iowait = %d", got)
	}
	if got := metricValue(t, p.Set(), "cpu1_idle").U64(); got != 4500 {
		t.Errorf("cpu1_idle = %d", got)
	}
	if got := metricValue(t, p.Set(), "ctxt").U64(); got != 22 {
		t.Errorf("ctxt = %d", got)
	}
	if got := metricValue(t, p.Set(), "procs_blocked").U64(); got != 1 {
		t.Errorf("procs_blocked = %d", got)
	}
}

func TestLoadavgPlugin(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "loadavg", Config{FS: fs})
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "load1min").F64(); got != 1.25 {
		t.Errorf("load1min = %g", got)
	}
	if got := metricValue(t, p.Set(), "scheduling_entities").U64(); got != 300 {
		t.Errorf("scheduling_entities = %d", got)
	}
	if got := metricValue(t, p.Set(), "newest_pid").U64(); got != 4242 {
		t.Errorf("newest_pid = %d", got)
	}
}

func TestLustrePlugin(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "lustre", Config{FS: fs, Options: map[string]string{"llite": "snx11024"}})
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "open#stats.snx11024").U64(); got != 10 {
		t.Errorf("open = %d", got)
	}
	if got := metricValue(t, p.Set(), "write_bytes#stats.snx11024").U64(); got != 8192 {
		t.Errorf("write_bytes = %d", got)
	}
}

func TestLustrePluginUnknownFS(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	if _, err := New("lustre", Config{FS: fs, Options: map[string]string{"llite": "ghost"}}); err == nil {
		t.Fatal("unknown llite accepted")
	}
}

func TestProcnetdevPlugin(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "procnetdev", Config{FS: fs})
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "rx_bytes#eth0").U64(); got != 1000 {
		t.Errorf("rx_bytes#eth0 = %d", got)
	}
	if got := metricValue(t, p.Set(), "tx_bytes#ib0").U64(); got != 6000 {
		t.Errorf("tx_bytes#ib0 = %d", got)
	}
	// Restricted interface list.
	p2 := mustPlugin(t, "procnetdev", Config{FS: fs, Instance: "x", Options: map[string]string{"ifaces": "ib0"}})
	if p2.Set().Card() != len(netdevFields) {
		t.Errorf("restricted card = %d want %d", p2.Set().Card(), len(netdevFields))
	}
}

func TestNFSPlugin(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "nfs", Config{FS: fs})
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "rpc_count").U64(); got != 100 {
		t.Errorf("rpc_count = %d", got)
	}
	if got := metricValue(t, p.Set(), "getattr").U64(); got != 7 {
		t.Errorf("getattr = %d", got)
	}
	if got := metricValue(t, p.Set(), "read").U64(); got != 40 {
		t.Errorf("read = %d", got)
	}
	if got := metricValue(t, p.Set(), "write").U64(); got != 50 {
		t.Errorf("write = %d", got)
	}
}

func TestIBPlugin(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "ib", Config{FS: fs, Options: map[string]string{"devices": "mlx4_0"}})
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "port_xmit_data#mlx4_0.1").U64(); got != 123 {
		t.Errorf("port_xmit_data = %d", got)
	}
	if got := metricValue(t, p.Set(), "port_rcv_data#mlx4_0.1").U64(); got != 456 {
		t.Errorf("port_rcv_data = %d", got)
	}
}

func TestJobIDPlugin(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "jobid", Config{FS: fs})
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "jobid").U64(); got != 5001 {
		t.Errorf("jobid = %d", got)
	}
	if got := metricValue(t, p.Set(), "uid").U64(); got != 1234 {
		t.Errorf("uid = %d", got)
	}
}

func TestGpcdrPluginDerivedMetrics(t *testing.T) {
	node := simNode()
	fs := procfs.NewSimFS(node)
	p := mustPlugin(t, "gpcdr", Config{FS: fs, Instance: "n1/gpcdr"})
	sampleOnce(t, p)
	// First sample: derived metrics are zero.
	if got := metricValue(t, p.Set(), "X+_stalled_pct").F64(); got != 0 {
		t.Errorf("first stalled_pct = %g", got)
	}
	// Advance one second of counter time: 250 ms stalled, 1/4 of max bw.
	node.Update(func(n *procfs.NodeState) {
		g := n.Gemini
		g.SampleTimeNs += 1_000_000_000
		g.Links[0].CreditStall += 250_000_000                 // 25% of the second
		g.Links[0].Traffic += uint64(9375.0 * 1e6 / 4)        // 25% of 9375 MB/s
		g.Links[2].CreditStall += 900_000_000                 // Y+: 90%
		g.Links[2].Traffic += uint64(9375.0 * 1e6 * 63 / 100) // Y+: 63%
	})
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "X+_stalled_pct").F64(); got < 24.9 || got > 25.1 {
		t.Errorf("X+_stalled_pct = %g want ~25", got)
	}
	if got := metricValue(t, p.Set(), "X+_bw_pct").F64(); got < 24.9 || got > 25.1 {
		t.Errorf("X+_bw_pct = %g want ~25", got)
	}
	if got := metricValue(t, p.Set(), "Y+_stalled_pct").F64(); got < 89.9 || got > 90.1 {
		t.Errorf("Y+_stalled_pct = %g want ~90", got)
	}
	if got := metricValue(t, p.Set(), "Y+_bw_pct").F64(); got < 62.9 || got > 63.1 {
		t.Errorf("Y+_bw_pct = %g want ~63", got)
	}
	// Raw counters are present too.
	if got := metricValue(t, p.Set(), "Y+_status").U64(); got != 1 {
		t.Errorf("Y+_status = %d", got)
	}
}

func TestGpcdrAbsentFails(t *testing.T) {
	n := procfs.NewNodeState("plain", 1, 1<<20)
	if _, err := New("gpcdr", Config{FS: procfs.NewSimFS(n)}); err == nil {
		t.Fatal("gpcdr configured without Gemini state")
	}
}

func TestUnknownPlugin(t *testing.T) {
	if _, err := New("not-a-plugin", Config{FS: procfs.NewSimFS(simNode())}); err == nil {
		t.Fatal("unknown plugin accepted")
	}
}

func TestNamesIncludesAllPlugins(t *testing.T) {
	names := Names()
	want := []string{"gpcdr", "ib", "jobid", "loadavg", "lustre", "meminfo", "nfs", "procnetdev", "procstat", "vmstat"}
	got := make(map[string]bool, len(names))
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("plugin %q not registered", w)
		}
	}
}

func TestPluginWithArena(t *testing.T) {
	a, _ := mmgr.New(1 << 20)
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "meminfo", Config{FS: fs, Arena: a})
	if a.InUse() == 0 {
		t.Error("plugin set not allocated from arena")
	}
	sampleOnce(t, p)
}

func TestCompIDPropagation(t *testing.T) {
	fs := procfs.NewSimFS(simNode())
	p := mustPlugin(t, "meminfo", Config{FS: fs, CompID: 42})
	if got := p.Set().CompID(0); got != 42 {
		t.Errorf("comp id = %d want 42", got)
	}
}

// TestMeminfoOnRealProc exercises the OSFS passthrough on a real Linux
// /proc, the path used for genuine overhead measurements.
func TestMeminfoOnRealProc(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("requires Linux /proc")
	}
	p, err := New("meminfo", Config{FS: procfs.OSFS{}, Instance: "real/meminfo"})
	if err != nil {
		t.Skipf("real /proc/meminfo unavailable: %v", err)
	}
	sampleOnce(t, p)
	if got := metricValue(t, p.Set(), "MemTotal").U64(); got == 0 {
		t.Error("real MemTotal = 0")
	}
}

func TestParseHelpers(t *testing.T) {
	v, next, ok := parseUint([]byte("  1234x"), 0)
	if !ok || v != 1234 || next != 6 {
		t.Errorf("parseUint = %d,%d,%v", v, next, ok)
	}
	if _, _, ok := parseUint([]byte("abc"), 0); ok {
		t.Error("parseUint accepted non-digit")
	}
	f, _, ok := parseFloat([]byte("3.50 "), 0)
	if !ok || f != 3.5 {
		t.Errorf("parseFloat = %g,%v", f, ok)
	}
	f, _, ok = parseFloat([]byte("42"), 0)
	if !ok || f != 42 {
		t.Errorf("parseFloat int = %g,%v", f, ok)
	}
	var lines []string
	eachLine([]byte("a\nb\nc"), func(l []byte) bool {
		lines = append(lines, string(l))
		return true
	})
	if len(lines) != 3 || lines[2] != "c" {
		t.Errorf("eachLine = %v", lines)
	}
}
