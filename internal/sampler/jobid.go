package sampler

import (
	"fmt"
	"time"

	"goldms/internal/metric"
	"goldms/internal/procfs"
)

// jobid samples the resource manager's job binding for the node, enabling
// the per-job and per-user attribution of §VI-B (application profiles built
// from LDMS plus scheduler data).
type jobid struct {
	base
}

func newJobID(cfg Config) (Plugin, error) {
	p := &jobid{base: base{name: "jobid", fs: cfg.FS}}
	if _, err := cfg.FS.ReadFile(procfs.JobInfoPath); err != nil {
		return nil, fmt.Errorf("sampler jobid: %w", err)
	}
	schema := metric.NewSchema("jobid")
	schema.MustAddMetric("jobid", metric.TypeU64)
	schema.MustAddMetric("uid", metric.TypeU64)
	set, err := metric.New(cfg.Instance, schema, cfg.setOptions()...)
	if err != nil {
		return nil, err
	}
	p.set = set
	return p, nil
}

// Sample implements Plugin.
func (p *jobid) Sample(now time.Time) error {
	b, err := p.fs.ReadFile(procfs.JobInfoPath)
	if err != nil {
		return fmt.Errorf("sampler jobid: %w", err)
	}
	p.set.BeginTransaction()
	p.set.SetValues(func(bt *metric.Batch) {
		eachLine(b, func(line []byte) bool {
			key, pos := firstWord(line)
			v, _, ok := parseUint(line, pos)
			if !ok {
				return true
			}
			switch string(key) {
			case "jobid":
				bt.SetU64(0, v)
			case "uid":
				bt.SetU64(1, v)
			}
			return true
		})
	})
	p.set.EndTransaction(now)
	return nil
}

func init() {
	Register("jobid", newJobID)
}
