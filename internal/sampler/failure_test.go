package sampler

import (
	"errors"
	"strings"
	"testing"
	"time"

	"goldms/internal/procfs"
)

// flakyFS fails reads of paths containing the trigger substring once armed.
type flakyFS struct {
	procfs.FS
	trigger string
	armed   bool
}

var errInjected = errors.New("injected I/O failure")

func (f *flakyFS) ReadFile(path string) ([]byte, error) {
	if f.armed && f.trigger != "" && strings.Contains(path, f.trigger) {
		return nil, errInjected
	}
	return f.FS.ReadFile(path)
}

// TestSampleErrorLeavesSetInconsistent: a multi-source plugin (ib reads
// one sysfs file per metric) that fails mid-sample must leave the set
// inconsistent so aggregators discard the torn data.
func TestSampleErrorLeavesSetInconsistent(t *testing.T) {
	fs := &flakyFS{FS: procfs.NewSimFS(simNode()), trigger: "port_rcv_data"}
	p, err := New("ib", Config{FS: fs, Options: map[string]string{"devices": "mlx4_0"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Sample(time.Unix(1, 0)); err != nil {
		t.Fatalf("healthy sample failed: %v", err)
	}
	if !p.Set().Consistent() {
		t.Fatal("set inconsistent after healthy sample")
	}

	fs.armed = true
	if err := p.Sample(time.Unix(2, 0)); err == nil {
		t.Fatal("failed read not reported")
	}
	if p.Set().Consistent() {
		t.Fatal("set still marked consistent after a torn sample")
	}

	// Recovery: the next good sample completes the transaction again.
	fs.armed = false
	if err := p.Sample(time.Unix(3, 0)); err != nil {
		t.Fatal(err)
	}
	if !p.Set().Consistent() {
		t.Fatal("set not consistent after recovery")
	}
}

// TestLustreMidSampleFailure exercises the same property on the lustre
// plugin with two filesystems, where the second read fails.
func TestLustreMidSampleFailure(t *testing.T) {
	node := simNode()
	node.Update(func(ns *procfs.NodeState) {
		ns.EnsureLustre("snx99999")
	})
	fs := &flakyFS{FS: procfs.NewSimFS(node), trigger: "snx99999"}
	p, err := New("lustre", Config{FS: fs, Options: map[string]string{"llite": "snx11024,snx99999"}})
	if err != nil {
		t.Fatal(err)
	}
	fs.armed = true
	if err := p.Sample(time.Unix(1, 0)); err == nil {
		t.Fatal("mid-sample failure not reported")
	}
	if p.Set().Consistent() {
		t.Fatal("torn lustre sample marked consistent")
	}
}

// TestSingleFilePluginFailure: single-read plugins fail before touching
// the set, so a previously consistent sample survives intact.
func TestSingleFilePluginFailure(t *testing.T) {
	fs := &flakyFS{FS: procfs.NewSimFS(simNode()), trigger: "meminfo"}
	p, err := New("meminfo", Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Sample(time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	before, _ := p.Set().MetricIndex("MemTotal")
	want := p.Set().U64(before)
	fs.armed = true
	if err := p.Sample(time.Unix(2, 0)); err == nil {
		t.Fatal("failure not reported")
	}
	if !p.Set().Consistent() {
		t.Fatal("prior consistent sample destroyed by a failed read")
	}
	if got := p.Set().U64(before); got != want {
		t.Errorf("value changed across failed sample: %d -> %d", want, got)
	}
}
