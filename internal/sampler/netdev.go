package sampler

import (
	"fmt"
	"strings"
	"time"

	"goldms/internal/metric"
)

// netdevFields are the columns of /proc/net/dev collected per interface:
// four receive then four transmit counters.
var netdevFields = []string{
	"rx_bytes", "rx_packets", "rx_errs", "rx_drop",
	"tx_bytes", "tx_packets", "tx_errs", "tx_drop",
}

// netdevFieldCols maps each collected field to its column index among the
// 16 numeric columns of a /proc/net/dev line.
var netdevFieldCols = []int{0, 1, 2, 3, 8, 9, 10, 11}

// procnetdev samples ethernet/IPoIB traffic counters from /proc/net/dev.
// Configure with Options["ifaces"] = "eth0,ib0"; default is every interface
// present at configuration time.
type procnetdev struct {
	base
	// idx[dev] is the metric index of the first field for that device.
	idx map[string]int
}

func newProcnetdev(cfg Config) (Plugin, error) {
	p := &procnetdev{base: base{name: "procnetdev", fs: cfg.FS}, idx: make(map[string]int)}
	b, err := cfg.FS.ReadFile("/proc/net/dev")
	if err != nil {
		return nil, fmt.Errorf("sampler procnetdev: %w", err)
	}
	var want map[string]bool
	if opt := cfg.opt("ifaces", ""); opt != "" {
		want = make(map[string]bool)
		for _, d := range strings.Split(opt, ",") {
			want[strings.TrimSpace(d)] = true
		}
	}
	schema := metric.NewSchema("procnetdev")
	eachLine(b, func(line []byte) bool {
		dev, ok := netdevName(line)
		if !ok {
			return true
		}
		if want != nil && !want[dev] {
			return true
		}
		p.idx[dev] = schema.Card()
		for _, f := range netdevFields {
			schema.MustAddMetric(f+"#"+dev, metric.TypeU64)
		}
		return true
	})
	if schema.Card() == 0 {
		return nil, fmt.Errorf("sampler procnetdev: no matching interfaces")
	}
	set, err := metric.New(cfg.Instance, schema, cfg.setOptions()...)
	if err != nil {
		return nil, err
	}
	p.set = set
	return p, nil
}

// netdevName extracts the interface name from a /proc/net/dev data line,
// returning ok=false for header lines.
func netdevName(line []byte) (string, bool) {
	colon := -1
	for i, c := range line {
		if c == ':' {
			colon = i
			break
		}
		if c == '|' {
			return "", false // header line
		}
	}
	if colon < 0 {
		return "", false
	}
	name := strings.TrimSpace(string(line[:colon]))
	if name == "" {
		return "", false
	}
	return name, true
}

// Sample implements Plugin.
func (p *procnetdev) Sample(now time.Time) error {
	b, err := p.fs.ReadFile("/proc/net/dev")
	if err != nil {
		return fmt.Errorf("sampler procnetdev: %w", err)
	}
	p.set.BeginTransaction()
	p.set.SetValues(func(bt *metric.Batch) {
		eachLine(b, func(line []byte) bool {
			dev, ok := netdevName(line)
			if !ok {
				return true
			}
			baseIdx, ok := p.idx[dev]
			if !ok {
				return true
			}
			// Position after the colon.
			pos := 0
			for pos < len(line) && line[pos] != ':' {
				pos++
			}
			pos++
			col, fi := 0, 0
			for fi < len(netdevFields) {
				v, next, okv := parseUint(line, pos)
				if !okv {
					break
				}
				if col == netdevFieldCols[fi] {
					bt.SetU64(baseIdx+fi, v)
					fi++
				}
				col++
				pos = next
			}
			return true
		})
	})
	p.set.EndTransaction(now)
	return nil
}

func init() {
	Register("procnetdev", newProcnetdev)
}
