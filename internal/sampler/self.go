package sampler

import (
	"fmt"
	"time"

	"goldms/internal/metric"
)

// SelfStats is one snapshot of the hosting daemon's operational counters,
// as published by the ldmsd_self plugin. The hosting daemon supplies it
// via Config.Self; the sampler package defines the shape so the plugin
// stays decoupled from the daemon engine.
type SelfStats struct {
	// Updater activity, summed across update policies.
	Passes      int64
	Updates     int64
	Fresh       int64
	Errors      int64
	SkippedBusy int64
	Lookups     int64
	// Storage pipeline, summed across policies.
	StoreEnqueued   int64
	StoreDropped    int64
	StoreQueueDepth int64
	// Producer-connection transfer totals.
	BytesIn        int64
	BytesOut       int64
	DeltaUpdates   int64
	BytesPerSample float64
	// Event journal.
	JournalEvents int64
	JournalErrors int64
	// Go runtime. The daemon zeroes these under a virtual clock so
	// simulated replays stay byte-identical.
	Goroutines     uint64
	HeapAllocBytes uint64
	GCCycles       uint64
}

// SelfSource reports the hosting daemon's current SelfStats.
type SelfSource func() SelfStats

// selfSampler is the ldmsd_self plugin: the daemon monitoring itself
// through its own data path. The set it publishes travels the normal
// pull/reduce/store pipeline, so an upper tier collects every lower
// daemon's health exactly the way it collects compute-node metrics — no
// side channel, no extra transport.
type selfSampler struct {
	base
	src SelfSource
}

// Metric indices of the ldmsd_self schema, in registration order.
const (
	selfPasses = iota
	selfUpdates
	selfFresh
	selfErrors
	selfSkippedBusy
	selfLookups
	selfStoreEnqueued
	selfStoreDropped
	selfStoreQueueDepth
	selfBytesIn
	selfBytesOut
	selfDeltaUpdates
	selfBytesPerSample
	selfJournalEvents
	selfJournalErrors
	selfGoroutines
	selfHeapAlloc
	selfGCCycles
)

func newSelf(cfg Config) (Plugin, error) {
	if cfg.Self == nil {
		return nil, fmt.Errorf("sampler ldmsd_self: no self-stats source (plugin must be loaded by a daemon)")
	}
	p := &selfSampler{base: base{name: "ldmsd_self", fs: cfg.FS}, src: cfg.Self}
	schema := metric.NewSchema("ldmsd_self")
	schema.MustAddMetric("updater_passes", metric.TypeU64)
	schema.MustAddMetric("updates", metric.TypeU64)
	schema.MustAddMetric("updates_fresh", metric.TypeU64)
	schema.MustAddMetric("update_errors", metric.TypeU64)
	schema.MustAddMetric("updates_skipped_busy", metric.TypeU64)
	schema.MustAddMetric("lookups", metric.TypeU64)
	schema.MustAddMetric("store_enqueued", metric.TypeU64)
	schema.MustAddMetric("store_dropped", metric.TypeU64)
	schema.MustAddMetric("store_queue_depth", metric.TypeU64)
	schema.MustAddMetric("bytes_in", metric.TypeU64)
	schema.MustAddMetric("bytes_out", metric.TypeU64)
	schema.MustAddMetric("delta_updates", metric.TypeU64)
	schema.MustAddMetric("bytes_per_sample", metric.TypeD64)
	schema.MustAddMetric("journal_events", metric.TypeU64)
	schema.MustAddMetric("journal_errors", metric.TypeU64)
	schema.MustAddMetric("goroutines", metric.TypeU64)
	schema.MustAddMetric("heap_alloc_bytes", metric.TypeU64)
	schema.MustAddMetric("gc_cycles", metric.TypeU64)
	set, err := metric.New(cfg.Instance, schema, cfg.setOptions()...)
	if err != nil {
		return nil, err
	}
	p.set = set
	return p, nil
}

// Sample implements Plugin.
func (p *selfSampler) Sample(now time.Time) error {
	st := p.src()
	p.set.BeginTransaction()
	p.set.SetValues(func(bt *metric.Batch) {
		bt.SetU64(selfPasses, uint64(st.Passes))
		bt.SetU64(selfUpdates, uint64(st.Updates))
		bt.SetU64(selfFresh, uint64(st.Fresh))
		bt.SetU64(selfErrors, uint64(st.Errors))
		bt.SetU64(selfSkippedBusy, uint64(st.SkippedBusy))
		bt.SetU64(selfLookups, uint64(st.Lookups))
		bt.SetU64(selfStoreEnqueued, uint64(st.StoreEnqueued))
		bt.SetU64(selfStoreDropped, uint64(st.StoreDropped))
		bt.SetU64(selfStoreQueueDepth, uint64(st.StoreQueueDepth))
		bt.SetU64(selfBytesIn, uint64(st.BytesIn))
		bt.SetU64(selfBytesOut, uint64(st.BytesOut))
		bt.SetU64(selfDeltaUpdates, uint64(st.DeltaUpdates))
		bt.SetF64(selfBytesPerSample, st.BytesPerSample)
		bt.SetU64(selfJournalEvents, uint64(st.JournalEvents))
		bt.SetU64(selfJournalErrors, uint64(st.JournalErrors))
		bt.SetU64(selfGoroutines, st.Goroutines)
		bt.SetU64(selfHeapAlloc, st.HeapAllocBytes)
		bt.SetU64(selfGCCycles, st.GCCycles)
	})
	p.set.EndTransaction(now)
	return nil
}

func init() {
	Register("ldmsd_self", newSelf)
}
