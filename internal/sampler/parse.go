package sampler

// Fast, allocation-light text parsing helpers. Sampling cost per metric is
// a headline number in the paper (1.3 µs/metric for LDMS vs 126 µs for
// Ganglia, §IV-E), so the hot path avoids fmt, strconv on substrings, and
// per-line allocation.

// parseUint reads an unsigned decimal starting at b[pos], returning the
// value and the position after the last digit. ok is false if no digit was
// found.
func parseUint(b []byte, pos int) (v uint64, next int, ok bool) {
	i := pos
	for i < len(b) && (b[i] == ' ' || b[i] == '\t') {
		i++
	}
	start := i
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		v = v*10 + uint64(b[i]-'0')
		i++
	}
	return v, i, i > start
}

// parseFloat reads a simple non-negative decimal ("12.34") starting at
// b[pos].
func parseFloat(b []byte, pos int) (v float64, next int, ok bool) {
	intPart, i, ok := parseUint(b, pos)
	if !ok {
		return 0, pos, false
	}
	v = float64(intPart)
	if i < len(b) && b[i] == '.' {
		i++
		frac, j, ok2 := parseUint(b, i)
		if ok2 {
			scale := 1.0
			for k := 0; k < j-i; k++ {
				scale *= 10
			}
			v += float64(frac) / scale
			i = j
		}
	}
	return v, i, true
}

// eachLine calls f with each newline-terminated slice of b (no trailing
// newline included). It allocates nothing.
func eachLine(b []byte, f func(line []byte) bool) {
	start := 0
	for i := 0; i < len(b); i++ {
		if b[i] == '\n' {
			if !f(b[start:i]) {
				return
			}
			start = i + 1
		}
	}
	if start < len(b) {
		f(b[start:])
	}
}

// firstWord returns the first space/tab/colon-delimited token of line and
// the position just past it.
func firstWord(line []byte) (word []byte, next int) {
	i := 0
	for i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != ':' {
		i++
	}
	return line[:i], i
}

// skipToken advances past the current token and following whitespace.
func skipToken(b []byte, pos int) int {
	i := pos
	for i < len(b) && b[i] != ' ' && b[i] != '\t' {
		i++
	}
	for i < len(b) && (b[i] == ' ' || b[i] == '\t') {
		i++
	}
	return i
}
