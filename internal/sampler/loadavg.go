package sampler

import (
	"fmt"
	"time"

	"goldms/internal/metric"
)

// loadavg samples /proc/loadavg: the three load averages plus the
// runnable/total task counts and the last PID.
type loadavg struct {
	base
}

func newLoadavg(cfg Config) (Plugin, error) {
	p := &loadavg{base: base{name: "loadavg", fs: cfg.FS}}
	if _, err := cfg.FS.ReadFile("/proc/loadavg"); err != nil {
		return nil, fmt.Errorf("sampler loadavg: %w", err)
	}
	schema := metric.NewSchema("loadavg")
	schema.MustAddMetric("load1min", metric.TypeD64)
	schema.MustAddMetric("load5min", metric.TypeD64)
	schema.MustAddMetric("load15min", metric.TypeD64)
	schema.MustAddMetric("runnable", metric.TypeU64)
	schema.MustAddMetric("scheduling_entities", metric.TypeU64)
	schema.MustAddMetric("newest_pid", metric.TypeU64)
	set, err := metric.New(cfg.Instance, schema, cfg.setOptions()...)
	if err != nil {
		return nil, err
	}
	p.set = set
	return p, nil
}

// Sample implements Plugin.
func (p *loadavg) Sample(now time.Time) error {
	b, err := p.fs.ReadFile("/proc/loadavg")
	if err != nil {
		return fmt.Errorf("sampler loadavg: %w", err)
	}
	p.set.BeginTransaction()
	p.set.SetValues(func(bt *metric.Batch) {
		pos := 0
		for i := 0; i < 3; i++ {
			v, next, ok := parseFloat(b, pos)
			if !ok {
				break
			}
			bt.SetF64(i, v)
			pos = next
		}
		// runnable/total
		run, next, ok := parseUint(b, pos)
		if ok {
			bt.SetU64(3, run)
			pos = next
			if pos < len(b) && b[pos] == '/' {
				total, next2, ok2 := parseUint(b, pos+1)
				if ok2 {
					bt.SetU64(4, total)
					pos = next2
				}
			}
		}
		if pid, _, ok := parseUint(b, pos); ok {
			bt.SetU64(5, pid)
		}
	})
	p.set.EndTransaction(now)
	return nil
}

func init() {
	Register("loadavg", newLoadavg)
}
