package sampler

import (
	"fmt"
	"strings"
	"time"

	"goldms/internal/metric"
)

// lustreCounters are the llite stats lines collected, covering the paper's
// shared-file-system metrics of interest (Opens, Closes, Reads, Writes).
var lustreCounters = []string{
	"dirty_pages_hits", "dirty_pages_misses",
	"read_bytes", "write_bytes",
	"open", "close", "fsync", "seek",
}

// lustre samples client-side Lustre llite counters for one or more
// filesystem instances. Metric names follow the paper's convention,
// e.g. "open#stats.snx11024". Configure with Options["llite"] = "fs1,fs2".
type lustre struct {
	base
	fsNames []string
	// idx[f][c] is the metric index for filesystem f, counter c.
	idx map[string]map[string]int
}

func newLustre(cfg Config) (Plugin, error) {
	names := strings.Split(cfg.opt("llite", "snx11024"), ",")
	p := &lustre{
		base: base{name: "lustre", fs: cfg.FS},
		idx:  make(map[string]map[string]int),
	}
	schema := metric.NewSchema("lustre")
	for _, fsName := range names {
		fsName = strings.TrimSpace(fsName)
		if fsName == "" {
			continue
		}
		if _, err := cfg.FS.ReadFile(p.statsPath(fsName)); err != nil {
			return nil, fmt.Errorf("sampler lustre: %w", err)
		}
		p.fsNames = append(p.fsNames, fsName)
		m := make(map[string]int, len(lustreCounters))
		for _, c := range lustreCounters {
			m[c] = schema.MustAddMetric(fmt.Sprintf("%s#stats.%s", c, fsName), metric.TypeU64)
		}
		p.idx[fsName] = m
	}
	if len(p.fsNames) == 0 {
		return nil, fmt.Errorf("sampler lustre: no llite filesystems configured")
	}
	set, err := metric.New(cfg.Instance, schema, cfg.setOptions()...)
	if err != nil {
		return nil, err
	}
	p.set = set
	return p, nil
}

func (p *lustre) statsPath(fsName string) string {
	return "/proc/fs/lustre/llite/" + fsName + "/stats"
}

// Sample implements Plugin.
func (p *lustre) Sample(now time.Time) error {
	p.set.BeginTransaction()
	// Read outside the batch so file I/O never runs under the set lock.
	chunks := make([][]byte, len(p.fsNames))
	for i, fsName := range p.fsNames {
		b, err := p.fs.ReadFile(p.statsPath(fsName))
		if err != nil {
			return fmt.Errorf("sampler lustre: %w", err)
		}
		chunks[i] = b
	}
	p.set.SetValues(func(bt *metric.Batch) {
		for ci, fsName := range p.fsNames {
			idx := p.idx[fsName]
			eachLine(chunks[ci], func(line []byte) bool {
				key, pos := firstWord(line)
				if i, ok := idx[string(key)]; ok {
					if v, _, okv := parseUint(line, pos); okv {
						bt.SetU64(i, v)
					}
				}
				return true
			})
		}
	})
	p.set.EndTransaction(now)
	return nil
}

func init() {
	Register("lustre", newLustre)
}
