package sampler

import (
	"fmt"
	"time"

	"goldms/internal/metric"
)

// cpuFields are the per-CPU tick categories collected from /proc/stat.
var cpuFields = []string{"user", "nice", "sys", "idle", "iowait", "irq", "softirq"}

// statScalars are the single-value kernel counters collected from
// /proc/stat.
var statScalars = []string{"intr", "ctxt", "processes", "procs_running", "procs_blocked"}

// procstat samples CPU utilization (user, sys, idle, wait — paper §II) and
// kernel activity counters from /proc/stat. The aggregate "cpu" line and
// each discovered per-core line contribute seven tick metrics each.
type procstat struct {
	base
	ncpu    int // per-core lines discovered at config time
	scalars map[string]int
}

func newProcstat(cfg Config) (Plugin, error) {
	p := &procstat{base: base{name: "procstat", fs: cfg.FS}, scalars: make(map[string]int)}
	b, err := cfg.FS.ReadFile("/proc/stat")
	if err != nil {
		return nil, fmt.Errorf("sampler procstat: %w", err)
	}
	schema := metric.NewSchema("procstat")
	for _, f := range cpuFields {
		schema.MustAddMetric("cpu_"+f, metric.TypeU64)
	}
	eachLine(b, func(line []byte) bool {
		key, _ := firstWord(line)
		if len(key) > 3 && string(key[:3]) == "cpu" {
			p.ncpu++
		}
		return true
	})
	for c := 0; c < p.ncpu; c++ {
		for _, f := range cpuFields {
			schema.MustAddMetric(fmt.Sprintf("cpu%d_%s", c, f), metric.TypeU64)
		}
	}
	for _, s := range statScalars {
		p.scalars[s] = schema.MustAddMetric(s, metric.TypeU64)
	}
	set, err := metric.New(cfg.Instance, schema, cfg.setOptions()...)
	if err != nil {
		return nil, err
	}
	p.set = set
	return p, nil
}

// Sample implements Plugin.
func (p *procstat) Sample(now time.Time) error {
	b, err := p.fs.ReadFile("/proc/stat")
	if err != nil {
		return fmt.Errorf("sampler procstat: %w", err)
	}
	p.set.BeginTransaction()
	cpuLine := 0
	p.set.SetValues(func(bt *metric.Batch) {
		eachLine(b, func(line []byte) bool {
			key, pos := firstWord(line)
			if len(key) >= 3 && string(key[:3]) == "cpu" {
				// Aggregate line is cpuLine 0; cores follow. Base index into
				// the schema: line L starts at L*len(cpuFields).
				if cpuLine <= p.ncpu {
					baseIdx := cpuLine * len(cpuFields)
					for f := 0; f < len(cpuFields); f++ {
						v, next, ok := parseUint(line, pos)
						if !ok {
							break
						}
						bt.SetU64(baseIdx+f, v)
						pos = next
					}
				}
				cpuLine++
				return true
			}
			if idx, ok := p.scalars[string(key)]; ok {
				if v, _, okv := parseUint(line, pos); okv {
					bt.SetU64(idx, v)
				}
			}
			return true
		})
	})
	p.set.EndTransaction(now)
	return nil
}

func init() {
	Register("procstat", newProcstat)
}
