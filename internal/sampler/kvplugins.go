package sampler

import (
	"fmt"
	"time"

	"goldms/internal/metric"
)

// kvPlugin samples files of "Key[:] value" lines (meminfo, vmstat). The
// schema is discovered from the file at configuration time; samples match
// lines to metrics positionally with a by-name fallback so reordered or
// grown files still parse.
type kvPlugin struct {
	base
	path string
}

// newKVPlugin builds a plugin over one key/value file.
func newKVPlugin(name, path string, cfg Config) (Plugin, error) {
	p := &kvPlugin{base: base{name: name, fs: cfg.FS}, path: path}
	b, err := cfg.FS.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sampler %s: %w", name, err)
	}
	schema := metric.NewSchema(name)
	var serr error
	eachLine(b, func(line []byte) bool {
		key, _ := firstWord(line)
		if len(key) == 0 {
			return true
		}
		if _, err := schema.AddMetric(string(key), metric.TypeU64); err != nil {
			serr = err
			return false
		}
		return true
	})
	if serr != nil {
		return nil, fmt.Errorf("sampler %s: %w", name, serr)
	}
	set, err := metric.New(cfg.Instance, schema, cfg.setOptions()...)
	if err != nil {
		return nil, err
	}
	p.set = set
	return p, nil
}

// Sample implements Plugin.
func (p *kvPlugin) Sample(now time.Time) error {
	b, err := p.fs.ReadFile(p.path)
	if err != nil {
		return fmt.Errorf("sampler %s: %w", p.name, err)
	}
	p.set.BeginTransaction()
	i := 0
	p.set.SetValues(func(bt *metric.Batch) {
		eachLine(b, func(line []byte) bool {
			key, pos := firstWord(line)
			if len(key) == 0 {
				return true
			}
			idx := i
			if idx >= p.set.Card() || p.set.MetricName(idx) != string(key) {
				var ok bool
				idx, ok = p.set.MetricIndex(string(key))
				if !ok {
					i++
					return true // new key appeared; schema is fixed, skip it
				}
			}
			// Skip the delimiter (colon and/or spaces) before the number.
			for pos < len(line) && (line[pos] == ':' || line[pos] == ' ' || line[pos] == '\t') {
				pos++
			}
			if v, _, ok := parseUint(line, pos); ok {
				bt.SetU64(idx, v)
			}
			i++
			return true
		})
	})
	p.set.EndTransaction(now)
	return nil
}

func init() {
	Register("meminfo", func(cfg Config) (Plugin, error) {
		return newKVPlugin("meminfo", "/proc/meminfo", cfg)
	})
	Register("vmstat", func(cfg Config) (Plugin, error) {
		return newKVPlugin("vmstat", "/proc/vmstat", cfg)
	})
}
