package sampler

import (
	"fmt"
	"time"

	"goldms/internal/metric"
	"goldms/internal/procfs"
)

// gpcdr samples the Cray Gemini HSN link metrics that the gpcdr kernel
// module aggregates from performance counters (paper §III-C), and derives
// the two §IV-F quantities over the sample period:
//
//	<dir>_stalled_pct  percent of time the link's output was credit-stalled
//	<dir>_bw_pct       percent of the link's theoretical max bandwidth used
//
// Derivation needs a previous sample; the first sample reports zero for the
// derived metrics.
type gpcdr struct {
	base
	rawIdx   map[string]int // raw counter name -> metric index
	stallIdx [6]int         // derived stalled_pct per direction
	bwIdx    [6]int         // derived bw_pct per direction

	havePrev    bool
	prevCredit  [6]uint64
	prevTraffic [6]uint64
	prevTimeNs  uint64
}

func newGpcdr(cfg Config) (Plugin, error) {
	b, err := cfg.FS.ReadFile(procfs.GpcdrPath)
	if err != nil {
		return nil, fmt.Errorf("sampler gpcdr: %w", err)
	}
	p := &gpcdr{base: base{name: "gpcdr", fs: cfg.FS}, rawIdx: make(map[string]int)}
	schema := metric.NewSchema("gpcdr")
	var serr error
	eachLine(b, func(line []byte) bool {
		key, _ := firstWord(line)
		if len(key) == 0 {
			return true
		}
		idx, err := schema.AddMetric(string(key), metric.TypeU64)
		if err != nil {
			serr = err
			return false
		}
		p.rawIdx[string(key)] = idx
		return true
	})
	if serr != nil {
		return nil, fmt.Errorf("sampler gpcdr: %w", serr)
	}
	for d, dir := range procfs.GeminiDirs {
		p.stallIdx[d] = schema.MustAddMetric(dir+"_stalled_pct", metric.TypeD64)
		p.bwIdx[d] = schema.MustAddMetric(dir+"_bw_pct", metric.TypeD64)
	}
	set, err := metric.New(cfg.Instance, schema, cfg.setOptions()...)
	if err != nil {
		return nil, err
	}
	p.set = set
	return p, nil
}

// Sample implements Plugin.
func (p *gpcdr) Sample(now time.Time) error {
	b, err := p.fs.ReadFile(procfs.GpcdrPath)
	if err != nil {
		return fmt.Errorf("sampler gpcdr: %w", err)
	}
	var credit, traffic [6]uint64
	var maxBW [6]uint64
	var sampleNs uint64

	p.set.BeginTransaction()
	p.set.SetValues(func(bt *metric.Batch) {
		eachLine(b, func(line []byte) bool {
			key, pos := firstWord(line)
			idx, ok := p.rawIdx[string(key)]
			if !ok {
				return true
			}
			v, _, okv := parseUint(line, pos)
			if !okv {
				return true
			}
			bt.SetU64(idx, v)
			k := string(key)
			if k == "sampletime_ns" {
				sampleNs = v
				return true
			}
			for d, dir := range procfs.GeminiDirs {
				if len(k) > len(dir) && k[:len(dir)] == dir && k[len(dir)] == '_' {
					switch k[len(dir)+1:] {
					case "credit_stall":
						credit[d] = v
					case "traffic":
						traffic[d] = v
					case "max_bw_mbps":
						maxBW[d] = v
					}
					break
				}
			}
			return true
		})

		if sampleNs == 0 {
			sampleNs = uint64(now.UnixNano())
		}
		if p.havePrev && sampleNs > p.prevTimeNs {
			dtNs := float64(sampleNs - p.prevTimeNs)
			for d := range procfs.GeminiDirs {
				stallPct := 100 * float64(credit[d]-p.prevCredit[d]) / dtNs
				if credit[d] < p.prevCredit[d] {
					stallPct = 0 // counter reset
				}
				bt.SetF64(p.stallIdx[d], clampPct(stallPct))

				bwPct := 0.0
				if maxBW[d] > 0 && traffic[d] >= p.prevTraffic[d] {
					bytesPerSec := float64(traffic[d]-p.prevTraffic[d]) / (dtNs / 1e9)
					bwPct = 100 * bytesPerSec / (float64(maxBW[d]) * 1e6)
				}
				bt.SetF64(p.bwIdx[d], clampPct(bwPct))
			}
		} else {
			for d := range procfs.GeminiDirs {
				bt.SetF64(p.stallIdx[d], 0)
				bt.SetF64(p.bwIdx[d], 0)
			}
		}
	})
	p.prevCredit, p.prevTraffic, p.prevTimeNs = credit, traffic, sampleNs
	p.havePrev = true
	p.set.EndTransaction(now)
	return nil
}

// clampPct bounds a derived percentage to [0, 100].
func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

func init() {
	Register("gpcdr", newGpcdr)
}
