// Package sampler implements the LDMS sampling plugin API and the plugin
// set used by the paper's deployments.
//
// A sampling plugin defines one metric set (its schema and instance) at
// configuration time and overwrites the set's data chunk on every Sample
// call. Plugins are registered by name; ldmsd loads them dynamically in
// response to configuration commands ("load name=meminfo", "config ...",
// "start ... interval=...").
//
// Plugins provided (cf. paper §IV-F/G):
//
//	meminfo     /proc/meminfo
//	procstat    /proc/stat CPU utilization and kernel counters
//	loadavg     /proc/loadavg
//	vmstat      /proc/vmstat
//	lustre      Lustre llite client counters (opens, closes, reads, writes)
//	procnetdev  /proc/net/dev interface traffic
//	nfs         /proc/net/rpc/nfs client counters
//	ib          Infiniband HCA port counters
//	gpcdr       Cray Gemini HSN link metrics, with derived percent-time-
//	            stalled and percent-bandwidth-used
//	jobid       resource-manager job binding for per-job attribution
package sampler

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"goldms/internal/metric"
	"goldms/internal/mmgr"
	"goldms/internal/procfs"
)

// Config carries the common configuration every plugin receives.
type Config struct {
	// FS is the /proc//sys source (real OS or simulated node).
	FS procfs.FS
	// Instance is the metric set instance name, conventionally
	// "<producer>/<plugin>".
	Instance string
	// CompID is the user-defined component identifier stamped on every
	// metric.
	CompID uint64
	// Arena, if non-nil, supplies set memory.
	Arena *mmgr.Arena
	// Options holds plugin-specific settings (e.g. lustre "llite" list).
	Options map[string]string
	// Self, when set by the hosting daemon, reports the daemon's own
	// operational counters. Required by the ldmsd_self plugin; ignored by
	// every other plugin.
	Self SelfSource
}

// setOptions converts a Config to metric.New options.
func (c Config) setOptions() []metric.Option {
	opts := []metric.Option{metric.WithCompID(c.CompID)}
	if c.Arena != nil {
		opts = append(opts, metric.WithArena(c.Arena))
	}
	return opts
}

// opt returns a plugin-specific option value or a default.
func (c Config) opt(key, def string) string {
	if v, ok := c.Options[key]; ok {
		return v
	}
	return def
}

// Plugin is a sampling plugin instance bound to one metric set.
type Plugin interface {
	// Name returns the plugin type name.
	Name() string
	// Set returns the plugin's metric set.
	Set() *metric.Set
	// Sample reads the data sources and overwrites the set in place.
	Sample(now time.Time) error
}

// Factory constructs a configured plugin.
type Factory func(cfg Config) (Plugin, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register adds a plugin factory under name. Duplicate registration panics
// (it is a program bug).
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sampler: duplicate plugin %q", name))
	}
	registry[name] = f
}

// New instantiates the named plugin with cfg.
func New(name string, cfg Config) (Plugin, error) {
	regMu.RLock()
	f := registry[name]
	regMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("sampler: unknown plugin %q", name)
	}
	if cfg.FS == nil {
		cfg.FS = procfs.OSFS{}
	}
	if cfg.Instance == "" {
		cfg.Instance = name
	}
	return f(cfg)
}

// Names lists the registered plugin names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// base carries the fields shared by all plugins in this package.
type base struct {
	name string
	set  *metric.Set
	fs   procfs.FS
}

// Name implements Plugin.
func (b *base) Name() string { return b.name }

// Set implements Plugin.
func (b *base) Set() *metric.Set { return b.set }
