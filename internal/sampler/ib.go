package sampler

import (
	"fmt"
	"strings"
	"time"

	"goldms/internal/metric"
	"goldms/internal/procfs"
)

// ib samples Infiniband HCA port counters from
// /sys/class/infiniband/<dev>/ports/<port>/counters/*. Configure with
// Options["devices"] = "mlx4_0,mlx5_1" and optionally Options["port"].
type ib struct {
	base
	paths []string // one sysfs file per metric, in schema order
}

func newIB(cfg Config) (Plugin, error) {
	devs := strings.Split(cfg.opt("devices", "mlx4_0"), ",")
	port := cfg.opt("port", "1")
	p := &ib{base: base{name: "ib", fs: cfg.FS}}
	schema := metric.NewSchema("ib")
	for _, dev := range devs {
		dev = strings.TrimSpace(dev)
		if dev == "" {
			continue
		}
		for _, c := range procfs.IBCounterNames {
			path := fmt.Sprintf("/sys/class/infiniband/%s/ports/%s/counters/%s", dev, port, c)
			if _, err := cfg.FS.ReadFile(path); err != nil {
				return nil, fmt.Errorf("sampler ib: %w", err)
			}
			schema.MustAddMetric(fmt.Sprintf("%s#%s.%s", c, dev, port), metric.TypeU64)
			p.paths = append(p.paths, path)
		}
	}
	if schema.Card() == 0 {
		return nil, fmt.Errorf("sampler ib: no devices configured")
	}
	set, err := metric.New(cfg.Instance, schema, cfg.setOptions()...)
	if err != nil {
		return nil, err
	}
	p.set = set
	return p, nil
}

// Sample implements Plugin.
func (p *ib) Sample(now time.Time) error {
	p.set.BeginTransaction()
	// Read outside the batch so file I/O never runs under the set lock.
	chunks := make([][]byte, len(p.paths))
	for i, path := range p.paths {
		b, err := p.fs.ReadFile(path)
		if err != nil {
			return fmt.Errorf("sampler ib: %w", err)
		}
		chunks[i] = b
	}
	p.set.SetValues(func(bt *metric.Batch) {
		for i, b := range chunks {
			if v, _, ok := parseUint(b, 0); ok {
				bt.SetU64(i, v)
			}
		}
	})
	p.set.EndTransaction(now)
	return nil
}

func init() {
	Register("ib", newIB)
}
