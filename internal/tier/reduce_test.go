package tier

import (
	"testing"
	"time"

	"goldms/internal/metric"
)

// newMember builds a local set with two metrics (u64 "a", d64 "b") sampled
// once at ts with the given values.
func newMember(t *testing.T, name string, a uint64, b float64, ts time.Time) *metric.Set {
	t.Helper()
	sch := metric.NewSchema("s")
	sch.MustAddMetric("a", metric.TypeU64)
	sch.MustAddMetric("b", metric.TypeD64)
	set, err := metric.New(name, sch, metric.WithCompID(7))
	if err != nil {
		t.Fatal(err)
	}
	sample(set, a, b, ts)
	return set
}

func sample(set *metric.Set, a uint64, b float64, ts time.Time) {
	set.BeginTransaction()
	set.SetValues(func(batch *metric.Batch) {
		batch.SetU64(0, a)
		batch.SetF64(1, b)
	})
	set.EndTransaction(ts)
}

func readOut(t *testing.T, set *metric.Set) (vals []metric.Value, ts time.Time, dgn uint64) {
	t.Helper()
	vals = make([]metric.Value, set.Card())
	ts, dgn, consistent, n := set.ReadValues(vals)
	if !consistent || n != set.Card() {
		t.Fatalf("reduced set %q: consistent=%v n=%d", set.Name(), consistent, n)
	}
	return vals, ts, dgn
}

func TestParseOps(t *testing.T) {
	ops, err := ParseOps("min, max,avg")
	if err != nil {
		t.Fatal(err)
	}
	if OpsString(ops) != "min,max,avg" {
		t.Fatalf("ops = %q", OpsString(ops))
	}
	for _, bad := range []string{"", "median", "min,min", "min,,max"} {
		if _, err := ParseOps(bad); err == nil {
			t.Errorf("ParseOps(%q): no error", bad)
		}
	}
}

func TestFoldSemantics(t *testing.T) {
	r := New(Config{Daemon: "agg", Ops: []Op{OpMin, OpMax, OpAvg, OpSum, OpLast}})
	t0 := time.Unix(1000, 0)
	m1 := newMember(t, "p1/s", 10, 1.5, t0)
	m2 := newMember(t, "p2/s", 4, 2.5, t0.Add(time.Second))
	created, err := r.AddMember("p1/s", m1)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 5 {
		t.Fatalf("created %d reduced sets, want 5", len(created))
	}
	if created[0].Name() != "agg/s_min" || created[0].SchemaName() != "s_min" {
		t.Fatalf("first output = %s schema %s", created[0].Name(), created[0].SchemaName())
	}
	if more, err := r.AddMember("p2/s", m2); err != nil || len(more) != 0 {
		t.Fatalf("second member: created=%d err=%v", len(more), err)
	}

	r.Observe("p1/s")
	r.Observe("p2/s")
	folded := r.Fold()
	if len(folded) != 5 {
		t.Fatalf("folded %d outputs, want 5", len(folded))
	}
	want := map[string]struct {
		a float64
		b float64
	}{
		"agg/s_min":  {4, 1.5},
		"agg/s_max":  {10, 2.5},
		"agg/s_avg":  {7, 2.0},
		"agg/s_sum":  {14, 4.0},
		"agg/s_last": {4, 2.5}, // p2 sampled later
	}
	for _, f := range folded {
		w, ok := want[f.Set.Name()]
		if !ok {
			t.Fatalf("unexpected output %q", f.Set.Name())
		}
		if f.Members != 2 {
			t.Errorf("%s: members = %d, want 2", f.Set.Name(), f.Members)
		}
		if !f.Time.Equal(t0.Add(time.Second)) {
			t.Errorf("%s: time = %v", f.Set.Name(), f.Time)
		}
		vals, ts, _ := readOut(t, f.Set)
		if got := vals[0].F64(); got != w.a {
			t.Errorf("%s: a = %v, want %v", f.Set.Name(), got, w.a)
		}
		if got := vals[1].F64(); got != w.b {
			t.Errorf("%s: b = %v, want %v", f.Set.Name(), got, w.b)
		}
		if got := vals[2].U64(); got != 2 {
			t.Errorf("%s: reduce_count = %d, want 2", f.Set.Name(), got)
		}
		if !ts.Equal(t0.Add(time.Second)) {
			t.Errorf("%s: sample ts = %v, want %v", f.Set.Name(), ts, t0.Add(time.Second))
		}
	}
}

func TestFoldTypes(t *testing.T) {
	r := New(Config{Daemon: "agg", Ops: []Op{OpMin, OpAvg, OpSum, OpRate}})
	m := newMember(t, "p1/s", 1, 1, time.Unix(1000, 0))
	created, err := r.AddMember("p1/s", m)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*metric.Set{}
	for _, s := range created {
		byName[s.Name()] = s
	}
	// min keeps the source type; avg and rate coerce to d64; sum widens in
	// class; reduce_count is always u64.
	checks := []struct {
		set    string
		metric int
		want   metric.Type
	}{
		{"agg/s_min", 0, metric.TypeU64},
		{"agg/s_min", 1, metric.TypeD64},
		{"agg/s_avg", 0, metric.TypeD64},
		{"agg/s_sum", 0, metric.TypeU64},
		{"agg/s_rate", 0, metric.TypeD64},
		{"agg/s_min", 2, metric.TypeU64},
	}
	for _, c := range checks {
		if got := byName[c.set].MetricType(c.metric); got != c.want {
			t.Errorf("%s metric %d: type %s, want %s", c.set, c.metric, got, c.want)
		}
	}
}

func TestFoldRate(t *testing.T) {
	r := New(Config{Daemon: "agg", Ops: []Op{OpRate}})
	t0 := time.Unix(1000, 0)
	m1 := newMember(t, "p1/s", 100, 0, t0)
	m2 := newMember(t, "p2/s", 200, 0, t0)
	if _, err := r.AddMember("p1/s", m1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddMember("p2/s", m2); err != nil {
		t.Fatal(err)
	}
	r.Observe("p1/s")
	r.Observe("p2/s")
	folded := r.Fold()
	vals, _, _ := readOut(t, folded[0].Set)
	if got := vals[0].F64(); got != 0 {
		t.Fatalf("first-pass rate = %v, want 0 (no previous sample)", got)
	}

	// p1: +50/s, p2: counter reset (clamps to 0).
	sample(m1, 150, 0, t0.Add(time.Second))
	sample(m2, 10, 0, t0.Add(time.Second))
	r.Observe("p1/s")
	r.Observe("p2/s")
	folded = r.Fold()
	vals, _, _ = readOut(t, folded[0].Set)
	if got := vals[0].F64(); got != 50 {
		t.Fatalf("rate = %v, want 50 (u64 counter reset contributes 0)", got)
	}
}

// TestFoldStaleGroupHoldsDGN pins the staleness contract: a group with no
// fresh members does not fold, so its reduced sets' DGNs hold still and an
// upstream tier skips them exactly like an idle sampler's raw set.
func TestFoldStaleGroupHoldsDGN(t *testing.T) {
	r := New(Config{Daemon: "agg", Ops: []Op{OpSum}})
	m := newMember(t, "p1/s", 1, 1, time.Unix(1000, 0))
	created, _ := r.AddMember("p1/s", m)
	r.Observe("p1/s")
	if n := len(r.Fold()); n != 1 {
		t.Fatalf("first fold published %d", n)
	}
	_, _, dgn1 := readOut(t, created[0])
	if folded := r.Fold(); len(folded) != 0 {
		t.Fatalf("stale fold published %d outputs, want 0", len(folded))
	}
	_, _, dgn2 := readOut(t, created[0])
	if dgn1 != dgn2 {
		t.Fatalf("DGN advanced %d → %d with no fresh members", dgn1, dgn2)
	}

	// An inconsistent member (mid-transaction) must not contribute either.
	m.BeginTransaction()
	r.Observe("p1/s")
	if folded := r.Fold(); len(folded) != 0 {
		t.Fatalf("inconsistent member folded %d outputs, want 0", len(folded))
	}
}

func TestFoldDeterministicOrder(t *testing.T) {
	// Values chosen so float summation order matters: folding must
	// accumulate in sorted member-name order regardless of insertion order.
	vals := []float64{1e16, 1, -1e16, 3.5, 2.25, -7}
	build := func(order []int) float64 {
		r := New(Config{Daemon: "agg", Ops: []Op{OpSum}})
		var out *metric.Set
		for _, i := range order {
			name := string(rune('a'+i)) + "/s"
			m := newMember(t, name, 0, vals[i], time.Unix(1000, 0))
			created, err := r.AddMember(name, m)
			if err != nil {
				t.Fatal(err)
			}
			if len(created) > 0 {
				out = created[0]
			}
			r.Observe(name)
		}
		r.Fold()
		v, _, _ := readOut(t, out)
		return v[1].F64()
	}
	a := build([]int{0, 1, 2, 3, 4, 5})
	b := build([]int{5, 3, 1, 4, 2, 0})
	if a != b {
		t.Fatalf("fold order-dependent: %v != %v", a, b)
	}
}

func TestMembershipLifecycle(t *testing.T) {
	r := New(Config{Daemon: "agg", Ops: []Op{OpSum, OpAvg}})
	m1 := newMember(t, "p1/s", 1, 1, time.Unix(1000, 0))
	m2 := newMember(t, "p2/s", 2, 2, time.Unix(1000, 0))
	created, _ := r.AddMember("p1/s", m1)
	if _, err := r.AddMember("p2/s", m2); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Groups != 1 || st.Members != 2 || st.Outputs != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// Dropping one member keeps the group; dropping the last retires the
	// reduced sets.
	if retired := r.RemoveMember("p1/s"); len(retired) != 0 {
		t.Fatalf("retired %d sets with a member remaining", len(retired))
	}
	r.Observe("p2/s")
	folded := r.Fold()
	if len(folded) != 2 || folded[0].Members != 1 {
		t.Fatalf("post-removal fold: %d outputs, members=%d", len(folded), folded[0].Members)
	}
	retired := r.RemoveMember("p2/s")
	if len(retired) != 2 || retired[0] != created[0] {
		t.Fatalf("retired = %v", retired)
	}
	if st := r.Stats(); st.Groups != 0 || st.Members != 0 {
		t.Fatalf("stats after retirement = %+v", st)
	}

	// Unknown member: no-op.
	if retired := r.RemoveMember("nope"); retired != nil {
		t.Fatalf("RemoveMember(nope) = %v", retired)
	}
}

func TestAddMemberSchemaMismatch(t *testing.T) {
	r := New(Config{Daemon: "agg", Ops: []Op{OpSum}})
	m1 := newMember(t, "p1/s", 1, 1, time.Unix(1000, 0))
	if _, err := r.AddMember("p1/s", m1); err != nil {
		t.Fatal(err)
	}
	sch := metric.NewSchema("s")
	sch.MustAddMetric("a", metric.TypeU64)
	sch.MustAddMetric("b", metric.TypeU32) // type differs from the group's d64
	odd, err := metric.New("p2/s", sch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddMember("p2/s", odd); err == nil {
		t.Fatal("incongruent member accepted")
	}

	// Re-adding a known member with a congruent set (reconnect epoch)
	// replaces it silently.
	m1b := newMember(t, "p1/s", 5, 5, time.Unix(2000, 0))
	if created, err := r.AddMember("p1/s", m1b); err != nil || len(created) != 0 {
		t.Fatalf("replace: created=%d err=%v", len(created), err)
	}
	r.Observe("p1/s")
	folded := r.Fold()
	vals, _, _ := readOut(t, folded[0].Set)
	if vals[0].U64() != 5 {
		t.Fatalf("replaced member not used: a = %v", vals[0])
	}
}

// TestReduceCountNameCollision: a source schema that already defines
// "reduce_count" keeps its own metric; the synthetic counter is omitted.
func TestReduceCountNameCollision(t *testing.T) {
	sch := metric.NewSchema("clash")
	sch.MustAddMetric("reduce_count", metric.TypeU64)
	set, err := metric.New("p1/clash", sch)
	if err != nil {
		t.Fatal(err)
	}
	set.BeginTransaction()
	set.SetU64(0, 9)
	set.EndTransaction(time.Unix(1000, 0))

	r := New(Config{Daemon: "agg", Ops: []Op{OpMax}})
	created, err := r.AddMember("p1/clash", set)
	if err != nil {
		t.Fatal(err)
	}
	if created[0].Card() != 1 {
		t.Fatalf("card = %d, want 1 (no synthetic counter)", created[0].Card())
	}
	r.Observe("p1/clash")
	folded := r.Fold()
	vals, _, _ := readOut(t, folded[0].Set)
	if vals[0].U64() != 9 {
		t.Fatalf("max = %v", vals[0])
	}
}
