// Package tier implements in-flight reduction for tiered aggregation
// topologies (ROADMAP: "upper tiers carry aggregates instead of raw sets",
// after SYMBIOMON's collector→aggregator→reducer split).
//
// A Reducer folds the mirrored sets of one updater's producer group into
// synthetic reduced sets, one per (schema, op): min/max/avg/sum/rate/last
// across the group's members, recomputed once per pull pass over each
// member's latest consistent sample. Reduced sets are ordinary local
// metric.Sets — they register in the daemon's directory, flow through the
// storage policies and query window, and re-export upstream exactly like any
// other set, so a top-tier aggregator over N mid-tiers carries N reduced
// sets per schema instead of N×fan-in raw mirrors.
//
// Determinism: groups fold in sorted schema order and members accumulate in
// sorted source-name order, so floating-point reductions are bit-identical
// across replays of the same virtual-clock run.
package tier

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"goldms/internal/metric"
)

// Op is one reduction operator.
type Op uint8

// Reduction operators over a producer group's member sets.
const (
	OpMin  Op = iota // per-metric minimum across members
	OpMax            // per-metric maximum across members
	OpAvg            // per-metric mean across members (output d64)
	OpSum            // per-metric sum across members (64-bit widened)
	OpRate           // summed per-member Δvalue/Δt between samples (output d64)
	OpLast           // the most recently sampled member's values
	nOps
)

// String returns the operator's config-file name.
func (o Op) String() string {
	switch o {
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpAvg:
		return "avg"
	case OpSum:
		return "sum"
	case OpRate:
		return "rate"
	case OpLast:
		return "last"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp converts a config-file operator name.
func ParseOp(s string) (Op, error) {
	for o := Op(0); o < nOps; o++ {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("tier: unknown reduce op %q", s)
}

// ParseOps parses a comma-separated operator list ("min,max,avg"),
// rejecting duplicates and empty elements.
func ParseOps(s string) ([]Op, error) {
	var ops []Op
	var seen [nOps]bool
	for _, part := range strings.Split(s, ",") {
		o, err := ParseOp(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if seen[o] {
			return nil, fmt.Errorf("tier: duplicate reduce op %q", o)
		}
		seen[o] = true
		ops = append(ops, o)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("tier: empty reduce op list")
	}
	return ops, nil
}

// OpsString renders ops as a comma-separated config-style list.
func OpsString(ops []Op) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, ",")
}

// countMetric is the trailing metric appended to every reduced set: the
// number of members whose samples contributed to the fold.
const countMetric = "reduce_count"

// widen64 maps a source type to the 64-bit type of its class, so sums
// cannot overflow a narrow source width.
func widen64(t metric.Type) metric.Type {
	switch t {
	case metric.TypeF32, metric.TypeD64:
		return metric.TypeD64
	case metric.TypeS8, metric.TypeS16, metric.TypeS32, metric.TypeS64:
		return metric.TypeS64
	default:
		return metric.TypeU64
	}
}

// outputType is the reduced metric's declared type for one operator.
func outputType(op Op, src metric.Type) metric.Type {
	switch op {
	case OpAvg, OpRate:
		return metric.TypeD64
	case OpSum:
		return widen64(src)
	default:
		return src
	}
}

// less orders two values of source type t by numeric class.
func less(t metric.Type, a, b metric.Value) bool {
	switch t {
	case metric.TypeF32, metric.TypeD64:
		return a.F64() < b.F64()
	case metric.TypeS8, metric.TypeS16, metric.TypeS32, metric.TypeS64:
		return a.S64() < b.S64()
	default:
		return a.U64() < b.U64()
	}
}

// member is one source set (a producer's mirror) inside a group.
type member struct {
	name  string
	set   *metric.Set
	fresh bool

	// Rate state: the previous sample's values/timestamp, and the per-metric
	// rate computed between the two most recent distinct samples. A member
	// with fewer than two samples contributes rate 0.
	prevTS  time.Time
	hasPrev bool
	prev    []float64
	rate    []float64
}

// output is one reduced set: the fold of a group under one operator.
type output struct {
	op       Op
	set      *metric.Set
	countIdx int // index of the reduce_count metric, -1 if the schema claims the name
}

// group is every member sharing one schema name, plus the reduced sets
// produced from them.
type group struct {
	schema  string
	names   []string
	types   []metric.Type
	members map[string]*member
	order   []*member // sorted by member name
	outputs []*output
	fresh   int // members observed fresh since the last fold

	// Fold scratch, reused every pass.
	vals    []metric.Value
	accMin  []metric.Value
	accMax  []metric.Value
	accSum  []metric.Value
	accF    []float64 // avg accumulation
	accR    []float64 // rate accumulation
	accLast []metric.Value
}

// Config configures a Reducer.
type Config struct {
	// Daemon is the local daemon name; reduced sets are published as
	// <Daemon>/<schema>_<op> so upper tiers see their origin, mirroring the
	// <producer>/<set> re-export convention.
	Daemon string
	// Ops are the reductions to compute, in output order.
	Ops []Op
	// SetOpts are applied to every reduced set created (typically
	// metric.WithArena so reduced sets draw from the daemon's budget).
	SetOpts []metric.Option
}

// Folded reports one reduced set updated by a Fold.
type Folded struct {
	Set *metric.Set
	// Time is the newest contributing member sample timestamp — the reduced
	// set's own sample time, so age-based staleness survives the hop.
	Time time.Time
	// Newest is the member (source name) that supplied Time. Sample
	// tracing inherits the reduced set's upstream hop chain from it, so a
	// reduced set's age attribution follows its newest contributor.
	// Deterministic: members fold in sorted name order and ties keep the
	// first.
	Newest string
	// Members is the number of members whose samples contributed.
	Members int
}

// Stats is a Reducer counter snapshot.
type Stats struct {
	Groups    int
	Members   int
	Outputs   int
	Folds     uint64
	Published uint64 // reduced-set updates across all folds
}

// Reducer folds member sets into reduced sets. All methods are safe for
// concurrent use; Observe is cheap enough for the update hot path.
type Reducer struct {
	mu        sync.Mutex
	cfg       Config
	groups    map[string]*group
	order     []*group // sorted by schema name
	byName    map[string]*member
	memGroup  map[string]*group
	folds     uint64
	published uint64
}

// New returns an empty Reducer.
func New(cfg Config) *Reducer {
	return &Reducer{
		cfg:      cfg,
		groups:   make(map[string]*group),
		byName:   make(map[string]*member),
		memGroup: make(map[string]*group),
	}
}

// Ops returns the configured operator list.
func (r *Reducer) Ops() []Op { return r.cfg.Ops }

// AddMember registers source (a mirror's local instance name) with its set.
// The first member of a schema creates that schema's reduced sets, returned
// for directory registration. Re-adding a known source (a reconnect epoch's
// fresh mirror) replaces the set and resets rate state. Members whose
// schema layout disagrees with the group's are rejected.
func (r *Reducer) AddMember(source string, set *metric.Set) ([]*metric.Set, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	if m := r.byName[source]; m != nil {
		g := r.memGroup[source]
		if set.SchemaName() != g.schema {
			return nil, fmt.Errorf("tier: member %q changed schema %q → %q", source, g.schema, set.SchemaName())
		}
		if err := g.congruent(set); err != nil {
			return nil, err
		}
		m.set = set
		m.hasPrev = false
		m.prevTS = time.Time{}
		for i := range m.rate {
			m.rate[i] = 0
		}
		return nil, nil
	}

	schema := set.SchemaName()
	g := r.groups[schema]
	var created []*metric.Set
	if g == nil {
		var err error
		if g, created, err = r.newGroup(set); err != nil {
			return nil, err
		}
		r.groups[schema] = g
		r.order = append(r.order, g)
		sort.Slice(r.order, func(i, j int) bool { return r.order[i].schema < r.order[j].schema })
	} else if err := g.congruent(set); err != nil {
		return nil, err
	}

	card := len(g.names)
	m := &member{
		name: source,
		set:  set,
		prev: make([]float64, card),
		rate: make([]float64, card),
	}
	g.members[source] = m
	g.order = append(g.order, m)
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].name < g.order[j].name })
	r.byName[source] = m
	r.memGroup[source] = g
	return created, nil
}

// RemoveMember drops a source. When the last member of a schema leaves, the
// schema's reduced sets are retired and returned so the caller can
// deregister and release them.
func (r *Reducer) RemoveMember(source string) []*metric.Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.byName[source]
	if m == nil {
		return nil
	}
	g := r.memGroup[source]
	delete(r.byName, source)
	delete(r.memGroup, source)
	delete(g.members, source)
	if m.fresh {
		g.fresh--
	}
	for i, gm := range g.order {
		if gm == m {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	if len(g.members) > 0 {
		return nil
	}
	delete(r.groups, g.schema)
	for i, og := range r.order {
		if og == g {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	retired := make([]*metric.Set, len(g.outputs))
	for i, o := range g.outputs {
		retired[i] = o.set
	}
	return retired
}

// Observe marks a member fresh: its mirror received new consistent data
// this pass, so its group must re-fold. One map lookup and a flag — cheap
// enough for the updater's per-set completion path.
func (r *Reducer) Observe(source string) {
	r.mu.Lock()
	if m := r.byName[source]; m != nil && !m.fresh {
		m.fresh = true
		r.memGroup[source].fresh++
	}
	r.mu.Unlock()
}

// Fold recomputes the reduced sets of every group with at least one fresh
// member, returning the updated sets with their contributing-member counts
// and newest sample times. Groups with no fresh members are skipped
// entirely, so their reduced sets' DGNs hold still and upstream tiers skip
// them as stale — exactly as an idle sampler's raw set would behave.
func (r *Reducer) Fold() []Folded {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Folded
	for _, g := range r.order {
		if g.fresh == 0 {
			continue
		}
		out = g.fold(out)
		for _, m := range g.order {
			m.fresh = false
		}
		g.fresh = 0
	}
	r.folds++
	r.published += uint64(len(out))
	return out
}

// Sets returns every reduced set, in deterministic (schema, op) order.
func (r *Reducer) Sets() []*metric.Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sets []*metric.Set
	for _, g := range r.order {
		for _, o := range g.outputs {
			sets = append(sets, o.set)
		}
	}
	return sets
}

// Members returns the number of registered member sets.
func (r *Reducer) Members() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byName)
}

// Stats snapshots the reducer's counters.
func (r *Reducer) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var outputs int
	for _, g := range r.order {
		outputs += len(g.outputs)
	}
	return Stats{
		Groups:    len(r.order),
		Members:   len(r.byName),
		Outputs:   outputs,
		Folds:     r.folds,
		Published: r.published,
	}
}

// newGroup builds a group and its reduced sets from the first member's
// schema. Caller holds r.mu.
func (r *Reducer) newGroup(src *metric.Set) (*group, []*metric.Set, error) {
	card := src.Card()
	g := &group{
		schema:  src.SchemaName(),
		names:   make([]string, card),
		types:   make([]metric.Type, card),
		members: make(map[string]*member),
		vals:    make([]metric.Value, card),
		accMin:  make([]metric.Value, card),
		accMax:  make([]metric.Value, card),
		accSum:  make([]metric.Value, card),
		accF:    make([]float64, card),
		accR:    make([]float64, card),
		accLast: make([]metric.Value, card),
	}
	for i := 0; i < card; i++ {
		g.names[i] = src.MetricName(i)
		g.types[i] = src.MetricType(i)
	}

	var created []*metric.Set
	for _, op := range r.cfg.Ops {
		sch := metric.NewSchema(g.schema + "_" + op.String())
		for i := range g.names {
			sch.MustAddMetric(g.names[i], outputType(op, g.types[i]))
		}
		countIdx := -1
		if _, taken := sch.Lookup(countMetric); !taken {
			countIdx = sch.MustAddMetric(countMetric, metric.TypeU64)
		}
		name := r.cfg.Daemon + "/" + g.schema + "_" + op.String()
		set, err := metric.New(name, sch, r.cfg.SetOpts...)
		if err != nil {
			for _, s := range created {
				s.Delete()
			}
			return nil, nil, fmt.Errorf("tier: reduced set %q: %w", name, err)
		}
		g.outputs = append(g.outputs, &output{op: op, set: set, countIdx: countIdx})
		created = append(created, set)
	}
	return g, created, nil
}

// congruent verifies a candidate member set matches the group's layout.
func (g *group) congruent(set *metric.Set) error {
	if set.Card() != len(g.names) {
		return fmt.Errorf("tier: schema %q: member has %d metrics, group has %d",
			g.schema, set.Card(), len(g.names))
	}
	for i := range g.names {
		if set.MetricName(i) != g.names[i] || set.MetricType(i) != g.types[i] {
			return fmt.Errorf("tier: schema %q: metric %d is %s %s, group has %s %s",
				g.schema, i, set.MetricType(i), set.MetricName(i), g.types[i], g.names[i])
		}
	}
	return nil
}

// fold recomputes one group's reduced sets, appending results to out.
func (g *group) fold(out []Folded) []Folded {
	card := len(g.names)
	contrib := 0
	var maxTS, lastTS time.Time
	var newest string

	for i := 0; i < card; i++ {
		g.accSum[i] = metric.Value{Type: g.types[i]}
		g.accF[i] = 0
		g.accR[i] = 0
	}

	for _, m := range g.order {
		ts, _, consistent, n := m.set.ReadValues(g.vals)
		if !consistent || n < card {
			continue
		}

		// Rate state advances whenever the member's sample time moved,
		// regardless of which op is configured: the bookkeeping is cheap and
		// keeps a later updtr reconfiguration from seeing a bogus first delta.
		if ts != m.prevTS {
			if m.hasPrev {
				dt := ts.Sub(m.prevTS).Seconds()
				for i := 0; i < card; i++ {
					m.rate[i] = rateOf(g.types[i], g.vals[i].F64(), m.prev[i], dt)
				}
			}
			for i := 0; i < card; i++ {
				m.prev[i] = g.vals[i].F64()
			}
			m.prevTS = ts
			m.hasPrev = true
		}

		if contrib == 0 {
			copy(g.accMin, g.vals[:card])
			copy(g.accMax, g.vals[:card])
		}
		for i := 0; i < card; i++ {
			v := g.vals[i]
			if contrib > 0 {
				if less(g.types[i], v, g.accMin[i]) {
					g.accMin[i] = v
				}
				if less(g.types[i], g.accMax[i], v) {
					g.accMax[i] = v
				}
			}
			g.accSum[i] = addValue(g.types[i], g.accSum[i], v)
			g.accF[i] += v.F64()
			g.accR[i] += m.rate[i]
		}
		if ts.After(maxTS) {
			maxTS = ts
			newest = m.name
		}
		if contrib == 0 || ts.After(lastTS) {
			copy(g.accLast, g.vals[:card])
			lastTS = ts
		}
		contrib++
	}
	if contrib == 0 {
		return out
	}

	for _, o := range g.outputs {
		o.set.BeginTransaction()
		o.set.SetValues(func(b *metric.Batch) {
			for i := 0; i < card; i++ {
				switch o.op {
				case OpMin:
					b.SetValue(i, g.accMin[i])
				case OpMax:
					b.SetValue(i, g.accMax[i])
				case OpAvg:
					b.SetF64(i, g.accF[i]/float64(contrib))
				case OpSum:
					b.SetValue(i, g.accSum[i])
				case OpRate:
					b.SetF64(i, g.accR[i])
				case OpLast:
					b.SetValue(i, g.accLast[i])
				}
			}
			if o.countIdx >= 0 {
				b.SetU64(o.countIdx, uint64(contrib))
			}
		})
		o.set.EndTransaction(maxTS)
		out = append(out, Folded{Set: o.set, Time: maxTS, Newest: newest, Members: contrib})
	}
	return out
}

// rateOf computes one member metric's Δvalue/Δt. Unsigned counters that
// moved backwards (a counter reset) and non-advancing clocks contribute 0.
func rateOf(t metric.Type, cur, prev, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	d := cur - prev
	if d < 0 {
		switch t {
		case metric.TypeU8, metric.TypeU16, metric.TypeU32, metric.TypeU64:
			return 0
		}
	}
	return d / dt
}

// addValue accumulates v into acc within the source type's numeric class.
// Unsigned sums wrap modulo 2^64; signed and float sums use their native
// 64-bit arithmetic.
func addValue(t metric.Type, acc, v metric.Value) metric.Value {
	switch t {
	case metric.TypeF32, metric.TypeD64:
		return metric.F64Value(acc.F64() + v.F64())
	case metric.TypeS8, metric.TypeS16, metric.TypeS32, metric.TypeS64:
		return metric.S64Value(acc.S64() + v.S64())
	default:
		return metric.U64Value(acc.U64() + v.U64())
	}
}
