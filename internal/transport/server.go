package transport

import (
	"sync/atomic"
	"time"

	"goldms/internal/metric"
)

// Server is the passive (serving) side of a transport: it exposes a metric
// set registry to pulling peers and accounts the host cost of doing so.
type Server struct {
	reg *metric.Registry

	// OneSided marks RDMA semantics: update reads are performed by the
	// "HCA" (a dedicated I/O path) and charged to NICCPU rather than
	// HostCPU.
	OneSided bool

	// Trace, when non-nil, appends the owning daemon's current hop chain
	// for set (an obs.AppendHops trace block) to dst and returns the
	// extended slice. Wired by ldmsd; consulted only on connections that
	// negotiated the trace capability.
	Trace func(set *metric.Set, dst []byte) []byte

	dirs         atomic.Int64
	lookups      atomic.Int64
	updates      atomic.Int64
	deltaUpdates atomic.Int64
	bytesOut     atomic.Int64
	hostCPU      atomic.Int64 // nanoseconds of host CPU consumed serving pulls
	nicCPU       atomic.Int64 // nanoseconds of one-sided (NIC-side) data movement
}

// NewServer wraps a registry for serving.
func NewServer(reg *metric.Registry) *Server {
	return &Server{reg: reg}
}

// Registry returns the served registry.
func (s *Server) Registry() *metric.Registry { return s.reg }

// ServerStats is a snapshot of serving-side counters.
type ServerStats struct {
	Dirs         int64         // dir requests served
	Lookups      int64         // lookup requests served
	Updates      int64         // update (data pull) requests served
	DeltaUpdates int64         // updates answered with a metric delta
	BytesOut     int64         // payload bytes returned
	HostCPU      time.Duration // host CPU consumed by serving (two-sided ops)
	NICCPU       time.Duration // simulated NIC time for one-sided reads
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Dirs:         s.dirs.Load(),
		Lookups:      s.lookups.Load(),
		Updates:      s.updates.Load(),
		DeltaUpdates: s.deltaUpdates.Load(),
		BytesOut:     s.bytesOut.Load(),
		HostCPU:      time.Duration(s.hostCPU.Load()),
		NICCPU:       time.Duration(s.nicCPU.Load()),
	}
}

// serveDir implements the dir operation.
func (s *Server) serveDir() []string {
	//ldms:wallclock hostCPU/nicCPU account real serving cost (paper overhead model), not sample time
	start := time.Now()
	names := s.reg.Dir()
	s.dirs.Add(1)
	//ldms:wallclock second half of the real serving-cost measurement
	s.hostCPU.Add(int64(time.Since(start)))
	return names
}

// serveDirGen implements the dir-generation poll: a single atomic load on
// the serving side, so tiered peers can check for membership changes every
// pass without paying for a full directory walk.
func (s *Server) serveDirGen() uint64 {
	return s.reg.Gen()
}

// serveLookup implements the lookup operation, returning the set (for
// handle registration) and its serialized metadata.
func (s *Server) serveLookup(name string) (*metric.Set, []byte, error) {
	//ldms:wallclock hostCPU/nicCPU account real serving cost (paper overhead model), not sample time
	start := time.Now()
	set := s.reg.Get(name)
	if set == nil {
		//ldms:wallclock second half of the real serving-cost measurement
		s.hostCPU.Add(int64(time.Since(start)))
		return nil, nil, ErrNoSuchSet
	}
	meta := set.MetaBytes()
	s.lookups.Add(1)
	s.bytesOut.Add(int64(len(meta)))
	//ldms:wallclock second half of the real serving-cost measurement
	s.hostCPU.Add(int64(time.Since(start)))
	return set, meta, nil
}

// appendTraceFor writes a u16-length-prefixed trace block for set onto b:
// a reserved length slot, the Trace hook's bytes (zero-length when no hook
// is wired or the daemon has no chain for the set), then the patched
// length. Callers append the legacy payload immediately after.
func (s *Server) appendTraceFor(b []byte, set *metric.Set) []byte {
	at := len(b)
	b = append(b, 0, 0)
	if s.Trace != nil {
		b = s.Trace(set, b)
	}
	n := len(b) - at - traceLenPrefix
	if n > maxWireString {
		// MaxTraceHops bounds a real block to ~5 kB; a larger result is a
		// bug in the hook. Drop it rather than corrupt the prefix.
		b = b[:at+traceLenPrefix]
		n = 0
	}
	wireLE.PutUint16(b[at:], uint16(n))
	return b
}

// serveUpdateDelta implements the delta update operation: encode the
// metrics changed since the requester's acknowledged DGN, or fall back to
// a full chunk snapshot when the set cannot honor the base (restarted
// incarnation, schema too wide, or a delta that would not beat the full
// chunk). dst must be at least 1+DataSize bytes with a little slack for
// the delta header; the returned payload starts with the kind byte at
// dst[0].
func (s *Server) serveUpdateDelta(set *metric.Set, since uint64, dst []byte) []byte {
	//ldms:wallclock hostCPU/nicCPU account real serving cost (paper overhead model), not sample time
	start := time.Now()
	out, ok := set.AppendDelta(dst[:1], since)
	if ok {
		out[0] = deltaKindDelta
		s.deltaUpdates.Add(1)
	} else {
		out = dst[:1+set.DataSize()]
		out[0] = deltaKindFull
		set.CopyDataInto(out[1:])
	}
	s.updates.Add(1)
	s.bytesOut.Add(int64(len(out) - 1))
	if s.OneSided {
		//ldms:wallclock second half of the real serving-cost measurement
		s.nicCPU.Add(int64(time.Since(start)))
	} else {
		//ldms:wallclock second half of the real serving-cost measurement
		s.hostCPU.Add(int64(time.Since(start)))
	}
	return out
}

// serveUpdate implements the update operation: snapshot the set's data
// chunk into dst. One-sided transports charge the cost to the NIC account.
func (s *Server) serveUpdate(set *metric.Set, dst []byte) int {
	//ldms:wallclock hostCPU/nicCPU account real serving cost (paper overhead model), not sample time
	start := time.Now()
	n := set.CopyDataInto(dst)
	s.updates.Add(1)
	s.bytesOut.Add(int64(n))
	if s.OneSided {
		//ldms:wallclock second half of the real serving-cost measurement
		s.nicCPU.Add(int64(time.Since(start)))
	} else {
		//ldms:wallclock second half of the real serving-cost measurement
		s.hostCPU.Add(int64(time.Since(start)))
	}
	return n
}
