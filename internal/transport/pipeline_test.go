package transport

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"goldms/internal/metric"
)

// lookupAll looks up every named set and pairs each handle with an update
// buffer, ready for UpdateAll.
func lookupAll(t *testing.T, conn Conn, names []string) []UpdateOp {
	t.Helper()
	ops := make([]UpdateOp, len(names))
	for i, name := range names {
		rs, err := conn.Lookup(context.Background(), name)
		if err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
		ops[i] = UpdateOp{Set: rs, Dst: make([]byte, rs.Meta().DataSize)}
	}
	return ops
}

// checkOps verifies every op succeeded and mirrors carry the values
// newTestRegistry wrote (a = 100+i).
func checkOps(t *testing.T, ops []UpdateOp) {
	t.Helper()
	for i, op := range ops {
		if op.Err != nil {
			t.Fatalf("op %d: %v", i, op.Err)
		}
		mir, err := op.Set.Meta().NewMirror()
		if err != nil {
			t.Fatal(err)
		}
		if err := mir.LoadData(op.Dst[:op.N]); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got := mir.U64(0); got != uint64(100+i) {
			t.Errorf("op %d: a = %d want %d", i, got, 100+i)
		}
	}
}

func TestSockUpdateBatch(t *testing.T) {
	reg := newTestRegistry(t, 8)
	ln, err := SockFactory{}.Listen("127.0.0.1:0", NewServer(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := SockFactory{}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ops := lookupAll(t, conn, reg.Dir())
	UpdateAll(context.Background(), conn, ops)
	checkOps(t, ops)

	// A second batch reuses the same handles (and recycled buffers).
	for i := range ops {
		ops[i].N, ops[i].Err = 0, nil
	}
	UpdateAll(context.Background(), conn, ops)
	checkOps(t, ops)
}

// TestSockPipelineSymmetricInterleave drives pipelined update batches from
// BOTH ends of one TCP connection at once: the listener pulls the dialer's
// sets while the dialer pulls the listener's, so update responses
// interleave with incoming server-half requests on each side. Every op
// must still resolve to its own set's data.
func TestSockPipelineSymmetricInterleave(t *testing.T) {
	aggReg := newTestRegistry(t, 6)
	smpReg := newTestRegistry(t, 6)

	peerCh := make(chan Conn, 1)
	ln, err := SockFactory{}.ListenPeer("127.0.0.1:0", NewServer(aggReg), func(name string, conn Conn) {
		if name == "smp" {
			peerCh <- conn
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	dialConn, err := SockFactory{}.DialNamed(ln.Addr(), "smp", NewServer(smpReg))
	if err != nil {
		t.Fatal(err)
	}
	defer dialConn.Close()
	aggConn := <-peerCh

	aggOps := lookupAll(t, aggConn, smpReg.Dir())
	smpOps := lookupAll(t, dialConn, aggReg.Dir())

	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for i := range aggOps {
				aggOps[i].N, aggOps[i].Err = 0, nil
			}
			UpdateAll(context.Background(), aggConn, aggOps)
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for i := range smpOps {
				smpOps[i].N, smpOps[i].Err = 0, nil
			}
			UpdateAll(context.Background(), dialConn, smpOps)
		}
	}()
	wg.Wait()
	checkOps(t, aggOps)
	checkOps(t, smpOps)
}

// TestSockUpdateBatchMidBatchError forges a stale handle in the middle of
// a batch: only that op may fail, the rest of the pipeline must complete.
func TestSockUpdateBatchMidBatchError(t *testing.T) {
	reg := newTestRegistry(t, 4)
	ln, err := SockFactory{}.Listen("127.0.0.1:0", NewServer(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := SockFactory{}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ops := lookupAll(t, conn, reg.Dir())
	sc := conn.(*sockConn)
	good := ops[1].Set.(*sockRemoteSet)
	ops[1].Set = &sockRemoteSet{conn: sc, handle: 9999, meta: good.meta}

	UpdateAll(context.Background(), conn, ops)
	if ops[1].Err == nil || !strings.Contains(ops[1].Err.Error(), "unknown set handle") {
		t.Fatalf("forged op error = %v, want unknown set handle", ops[1].Err)
	}
	for i, op := range ops {
		if i == 1 {
			continue
		}
		if op.Err != nil {
			t.Fatalf("op %d failed alongside the bad handle: %v", i, op.Err)
		}
		if op.N == 0 {
			t.Fatalf("op %d fetched no data", i)
		}
	}
}

// TestMemUpdateBatchDelayOnce checks the mem transport charges its Delay
// hook once per pipelined batch, not once per op.
func TestMemUpdateBatchDelayOnce(t *testing.T) {
	reg := newTestRegistry(t, 5)
	var batches, perOp atomic.Int64
	fac := MemFactory{Net: NewNetwork(), Delay: func(addr, op string) {
		switch op {
		case "update_batch":
			batches.Add(1)
		case "update":
			perOp.Add(1)
		}
	}}
	if _, err := fac.Listen("node", NewServer(reg)); err != nil {
		t.Fatal(err)
	}
	conn, err := fac.Dial("node")
	if err != nil {
		t.Fatal(err)
	}
	ops := lookupAll(t, conn, reg.Dir())
	UpdateAll(context.Background(), conn, ops)
	checkOps(t, ops)
	if got := batches.Load(); got != 1 {
		t.Errorf("update_batch delays = %d want 1", got)
	}
	if got := perOp.Load(); got != 0 {
		t.Errorf("per-op update delays = %d want 0", got)
	}
}

// BenchmarkSockUpdate compares one-at-a-time round trips with the
// pipelined batch path over a real TCP loopback connection.
func BenchmarkSockUpdate(b *testing.B) {
	const nsets = 64
	reg := metric.NewRegistry()
	for i := 0; i < nsets; i++ {
		sch := metric.NewSchema(fmt.Sprintf("schema%02d", i))
		sch.MustAddMetric("a", metric.TypeU64)
		sch.MustAddMetric("b", metric.TypeD64)
		set, err := metric.New(fmt.Sprintf("set%02d", i), sch)
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.Add(set); err != nil {
			b.Fatal(err)
		}
	}
	ln, err := SockFactory{}.Listen("127.0.0.1:0", NewServer(reg))
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	conn, err := SockFactory{}.Dial(ln.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	ops := make([]UpdateOp, nsets)
	for i, name := range reg.Dir() {
		rs, err := conn.Lookup(context.Background(), name)
		if err != nil {
			b.Fatal(err)
		}
		ops[i] = UpdateOp{Set: rs, Dst: make([]byte, rs.Meta().DataSize)}
	}
	ctx := context.Background()

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			sequentialUpdates(ctx, ops)
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			UpdateAll(ctx, conn, ops)
		}
	})
}
