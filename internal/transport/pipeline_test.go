package transport

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldms/internal/metric"
)

// lookupAll looks up every named set and pairs each handle with an update
// buffer, ready for UpdateAll.
func lookupAll(t *testing.T, conn Conn, names []string) []UpdateOp {
	t.Helper()
	ops := make([]UpdateOp, len(names))
	for i, name := range names {
		rs, err := conn.Lookup(context.Background(), name)
		if err != nil {
			t.Fatalf("lookup %s: %v", name, err)
		}
		ops[i] = UpdateOp{Set: rs, Dst: make([]byte, rs.Meta().DataSize)}
	}
	return ops
}

// checkOps verifies every op succeeded and mirrors carry the values
// newTestRegistry wrote (a = 100+i).
func checkOps(t *testing.T, ops []UpdateOp) {
	t.Helper()
	for i, op := range ops {
		if op.Err != nil {
			t.Fatalf("op %d: %v", i, op.Err)
		}
		mir, err := op.Set.Meta().NewMirror()
		if err != nil {
			t.Fatal(err)
		}
		if err := mir.LoadData(op.Dst[:op.N]); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got := mir.U64(0); got != uint64(100+i) {
			t.Errorf("op %d: a = %d want %d", i, got, 100+i)
		}
	}
}

func TestSockUpdateBatch(t *testing.T) {
	reg := newTestRegistry(t, 8)
	ln, err := SockFactory{}.Listen("127.0.0.1:0", NewServer(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := SockFactory{}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ops := lookupAll(t, conn, reg.Dir())
	UpdateAll(context.Background(), conn, ops)
	checkOps(t, ops)

	// A second batch reuses the same handles (and recycled buffers).
	for i := range ops {
		ops[i].N, ops[i].Err = 0, nil
	}
	UpdateAll(context.Background(), conn, ops)
	checkOps(t, ops)
}

// TestSockPipelineSymmetricInterleave drives pipelined update batches from
// BOTH ends of one TCP connection at once: the listener pulls the dialer's
// sets while the dialer pulls the listener's, so update responses
// interleave with incoming server-half requests on each side. Every op
// must still resolve to its own set's data.
func TestSockPipelineSymmetricInterleave(t *testing.T) {
	aggReg := newTestRegistry(t, 6)
	smpReg := newTestRegistry(t, 6)

	peerCh := make(chan Conn, 1)
	ln, err := SockFactory{}.ListenPeer("127.0.0.1:0", NewServer(aggReg), func(name string, conn Conn) {
		if name == "smp" {
			peerCh <- conn
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	dialConn, err := SockFactory{}.DialNamed(ln.Addr(), "smp", NewServer(smpReg))
	if err != nil {
		t.Fatal(err)
	}
	defer dialConn.Close()
	aggConn := <-peerCh

	aggOps := lookupAll(t, aggConn, smpReg.Dir())
	smpOps := lookupAll(t, dialConn, aggReg.Dir())

	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for i := range aggOps {
				aggOps[i].N, aggOps[i].Err = 0, nil
			}
			UpdateAll(context.Background(), aggConn, aggOps)
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for i := range smpOps {
				smpOps[i].N, smpOps[i].Err = 0, nil
			}
			UpdateAll(context.Background(), dialConn, smpOps)
		}
	}()
	wg.Wait()
	checkOps(t, aggOps)
	checkOps(t, smpOps)
}

// TestSockUpdateBatchMidBatchError forges a stale handle in the middle of
// a batch: only that op may fail, the rest of the pipeline must complete.
func TestSockUpdateBatchMidBatchError(t *testing.T) {
	reg := newTestRegistry(t, 4)
	ln, err := SockFactory{}.Listen("127.0.0.1:0", NewServer(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := SockFactory{}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ops := lookupAll(t, conn, reg.Dir())
	sc := conn.(*sockConn)
	good := ops[1].Set.(*sockRemoteSet)
	ops[1].Set = &sockRemoteSet{conn: sc, handle: 9999, meta: good.meta}

	UpdateAll(context.Background(), conn, ops)
	if ops[1].Err == nil || !strings.Contains(ops[1].Err.Error(), "unknown set handle") {
		t.Fatalf("forged op error = %v, want unknown set handle", ops[1].Err)
	}
	for i, op := range ops {
		if i == 1 {
			continue
		}
		if op.Err != nil {
			t.Fatalf("op %d failed alongside the bad handle: %v", i, op.Err)
		}
		if op.N == 0 {
			t.Fatalf("op %d fetched no data", i)
		}
	}
}

// TestMemUpdateBatchDelayOnce checks the mem transport charges its Delay
// hook once per pipelined batch, not once per op.
func TestMemUpdateBatchDelayOnce(t *testing.T) {
	reg := newTestRegistry(t, 5)
	var batches, perOp atomic.Int64
	fac := MemFactory{Net: NewNetwork(), Delay: func(addr, op string) {
		switch op {
		case "update_batch":
			batches.Add(1)
		case "update":
			perOp.Add(1)
		}
	}}
	if _, err := fac.Listen("node", NewServer(reg)); err != nil {
		t.Fatal(err)
	}
	conn, err := fac.Dial("node")
	if err != nil {
		t.Fatal(err)
	}
	ops := lookupAll(t, conn, reg.Dir())
	UpdateAll(context.Background(), conn, ops)
	checkOps(t, ops)
	if got := batches.Load(); got != 1 {
		t.Errorf("update_batch delays = %d want 1", got)
	}
	if got := perOp.Load(); got != 0 {
		t.Errorf("per-op update delays = %d want 0", got)
	}
}

// BenchmarkSockUpdate compares one-at-a-time round trips with the
// pipelined batch path over a real TCP loopback connection.
func BenchmarkSockUpdate(b *testing.B) {
	const nsets = 64
	reg := metric.NewRegistry()
	for i := 0; i < nsets; i++ {
		sch := metric.NewSchema(fmt.Sprintf("schema%02d", i))
		sch.MustAddMetric("a", metric.TypeU64)
		sch.MustAddMetric("b", metric.TypeD64)
		set, err := metric.New(fmt.Sprintf("set%02d", i), sch)
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.Add(set); err != nil {
			b.Fatal(err)
		}
	}
	ln, err := SockFactory{}.Listen("127.0.0.1:0", NewServer(reg))
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	conn, err := SockFactory{}.Dial(ln.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	ops := make([]UpdateOp, nsets)
	for i, name := range reg.Dir() {
		rs, err := conn.Lookup(context.Background(), name)
		if err != nil {
			b.Fatal(err)
		}
		ops[i] = UpdateOp{Set: rs, Dst: make([]byte, rs.Meta().DataSize)}
	}
	ctx := context.Background()

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			sequentialUpdates(ctx, ops)
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			UpdateAll(ctx, conn, ops)
		}
	})
}

// readDGN extracts the data generation number from a pulled data chunk, the
// value an updater acknowledges on its next delta request.
func readDGN(t *testing.T, op UpdateOp) uint64 {
	t.Helper()
	mir, err := op.Set.Meta().NewMirror()
	if err != nil {
		t.Fatal(err)
	}
	if err := mir.LoadData(op.Dst[:op.N]); err != nil {
		t.Fatal(err)
	}
	return mir.DGN()
}

// TestSockDeltaUpdates drives the delta protocol end to end over TCP: a full
// first pull, then an acknowledged pull that must arrive as a delta and
// patch the buffer to exactly the server's current bytes, then a bogus
// (future) ack that must transparently fall back to a full chunk.
func TestSockDeltaUpdates(t *testing.T) {
	reg := newTestRegistry(t, 4)
	srv := NewServer(reg)
	ln, err := SockFactory{}.Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := SockFactory{}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx := context.Background()
	if _, err := conn.Dir(ctx); err != nil { // negotiates capabilities
		t.Fatal(err)
	}

	ops := lookupAll(t, conn, reg.Dir())
	UpdateAll(ctx, conn, ops)
	checkOps(t, ops)
	for i := range ops {
		if ops[i].WasDelta {
			t.Fatalf("op %d: first pull arrived as a delta", i)
		}
		ops[i].AckDGN, ops[i].HaveAck = readDGN(t, ops[i]), true
	}

	// Mutate one metric per set, then pull with acks: every response must
	// be a delta and the patched chunks must match the new values.
	for i, name := range reg.Dir() {
		set := reg.Get(name)
		set.BeginTransaction()
		set.SetU64(0, uint64(100+i)) // checkOps expects a = 100+i
		set.EndTransaction(time.Unix(2000, 0))
	}
	for i := range ops {
		ops[i].N, ops[i].Err, ops[i].WasDelta = 0, nil, false
	}
	UpdateAll(ctx, conn, ops)
	checkOps(t, ops)
	for i := range ops {
		if !ops[i].WasDelta {
			t.Errorf("op %d: acknowledged pull was not a delta", i)
		}
	}
	st, _ := StatsOf(conn)
	if st.Updates != 8 || st.DeltaUpdates != 4 {
		t.Errorf("conn stats updates=%d delta=%d, want 8/4", st.Updates, st.DeltaUpdates)
	}
	if got := srv.Stats().DeltaUpdates; got != 4 {
		t.Errorf("server delta updates = %d want 4", got)
	}

	// A future ack (the peer restarted, generations rewound) must fall back
	// to a full chunk, not an error.
	for i := range ops {
		ops[i].N, ops[i].Err, ops[i].WasDelta = 0, nil, false
		ops[i].AckDGN = 1 << 60
	}
	UpdateAll(ctx, conn, ops)
	checkOps(t, ops)
	for i := range ops {
		if ops[i].WasDelta {
			t.Errorf("op %d: future ack still answered with a delta", i)
		}
	}
}

// TestSockDeltaBytesPerSample verifies the wire saving the delta path
// exists for: steady-state acknowledged pulls of a wide set move far fewer
// bytes per sample than full-chunk pulls of the same set.
func TestSockDeltaBytesPerSample(t *testing.T) {
	sch := metric.NewSchema("wide")
	for i := 0; i < 64; i++ {
		sch.MustAddMetric(fmt.Sprintf("m%02d", i), metric.TypeU64)
	}
	set, err := metric.New("wide0", sch)
	if err != nil {
		t.Fatal(err)
	}
	reg := metric.NewRegistry()
	if err := reg.Add(set); err != nil {
		t.Fatal(err)
	}
	// Seed every metric with pseudorandom bits so the full chunk looks like
	// real telemetry (counters at arbitrary values) rather than zeros that
	// frame compression would collapse on its own.
	set.BeginTransaction()
	seed := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 64; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		set.SetU64(i, seed)
	}
	set.EndTransaction(time.Unix(1, 0))
	tick := func(v uint64) {
		set.BeginTransaction()
		set.SetU64(3, v) // one changing metric out of 64
		set.EndTransaction(time.Unix(int64(v), 0))
	}
	tick(1)

	pull := func(f SockFactory, ack bool) (perSample float64, deltas int64) {
		ln, err := f.Listen("127.0.0.1:0", NewServer(reg))
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		conn, err := f.Dial(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		ctx := context.Background()
		if _, err := conn.Dir(ctx); err != nil {
			t.Fatal(err)
		}
		rs, err := conn.Lookup(ctx, "wide0")
		if err != nil {
			t.Fatal(err)
		}
		ops := []UpdateOp{{Set: rs, Dst: make([]byte, rs.Meta().DataSize)}}
		UpdateAll(ctx, conn, ops)
		if ops[0].Err != nil {
			t.Fatal(ops[0].Err)
		}
		base, _ := StatsOf(conn)
		const rounds = 50
		for r := 0; r < rounds; r++ {
			tick(uint64(2 + r))
			if ack {
				ops[0].AckDGN, ops[0].HaveAck = readDGN(t, ops[0]), true
			}
			ops[0].N, ops[0].Err = 0, nil
			UpdateAll(ctx, conn, ops)
			if ops[0].Err != nil {
				t.Fatal(ops[0].Err)
			}
		}
		st, _ := StatsOf(conn)
		return float64(st.BytesIn-base.BytesIn) / rounds, st.DeltaUpdates
	}

	full, fdeltas := pull(SockFactory{NoDelta: true}, false)
	delta, ddeltas := pull(SockFactory{}, true)
	if fdeltas != 0 {
		t.Fatalf("NoDelta factory produced %d deltas", fdeltas)
	}
	if ddeltas == 0 {
		t.Fatal("acknowledged pulls produced no deltas")
	}
	if delta*5 > full {
		t.Errorf("delta path = %.1f B/sample, full = %.1f: saving < 5x", delta, full)
	}
}

// TestSockDictionaryNames checks dictionary-coded directory traffic: after
// the first dir response defines each name, the client's receive dictionary
// resolves ids, lookups go over the wire by id, and a repeat dir moves
// fewer bytes than the defining one.
func TestSockDictionaryNames(t *testing.T) {
	reg := newTestRegistry(t, 6)
	ln, err := SockFactory{}.Listen("127.0.0.1:0", NewServer(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := SockFactory{}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx := context.Background()

	names, err := conn.Dir(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 {
		t.Fatalf("dir = %v", names)
	}
	sc := conn.(*sockConn)
	st1, _ := StatsOf(conn)
	sc.dmu.Lock()
	ids := len(sc.rdict.ids)
	sc.dmu.Unlock()
	if ids != 6 {
		t.Fatalf("receive dictionary holds %d ids, want 6", ids)
	}

	// Repeat dir: every name is now a 5-byte reference instead of a
	// definition carrying the string.
	if _, err := conn.Dir(ctx); err != nil {
		t.Fatal(err)
	}
	st2, _ := StatsOf(conn)
	if grew, first := st2.BytesIn-st1.BytesIn, st1.BytesIn; grew >= first {
		t.Errorf("referencing dir response (%d B) not smaller than defining one (%d B)", grew, first)
	}

	// Lookups resolve through the dictionary (the request is a 4-byte id).
	for _, n := range names {
		rs, err := conn.Lookup(ctx, n)
		if err != nil {
			t.Fatalf("dictionary lookup %s: %v", n, err)
		}
		if rs.Meta().Instance != n {
			t.Errorf("lookup %s resolved to %s", n, rs.Meta().Instance)
		}
	}
}

// TestSockCompressionSavesBytes compares the same large directory exchange
// with and without the compression capability: the compressed connection
// must move fewer bytes and still decode identically.
func TestSockCompressionSavesBytes(t *testing.T) {
	reg := metric.NewRegistry()
	for i := 0; i < 40; i++ {
		sch := metric.NewSchema(fmt.Sprintf("schema%02d", i))
		sch.MustAddMetric("a", metric.TypeU64)
		set, err := metric.New(fmt.Sprintf("very/long/compressible/instance/name/%04d", i), sch)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Add(set); err != nil {
			t.Fatal(err)
		}
	}
	dirBytes := func(f SockFactory) int64 {
		ln, err := f.Listen("127.0.0.1:0", NewServer(reg))
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		conn, err := f.Dial(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// First dir negotiates caps but pre-dates them on the wire; the
		// second exercises the negotiated compression.
		if _, err := conn.Dir(context.Background()); err != nil {
			t.Fatal(err)
		}
		st1, _ := StatsOf(conn)
		names, err := conn.Dir(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 40 {
			t.Fatalf("dir = %d names", len(names))
		}
		st2, _ := StatsOf(conn)
		return st2.BytesIn - st1.BytesIn
	}
	// NoDict isolates compression: dictionary refs would shrink the repeat
	// response on their own.
	plain := dirBytes(SockFactory{NoCompress: true, NoDict: true})
	packed := dirBytes(SockFactory{NoDict: true})
	if packed >= plain {
		t.Errorf("compressed dir moved %d B, uncompressed %d B", packed, plain)
	}
}

// TestSockLegacyServerFallback peers a fully capable client with a legacy
// (no-capability) server: everything must keep working over the plain
// protocol — full updates despite acknowledged DGNs, un-dictionaried names,
// no compression.
func TestSockLegacyServerFallback(t *testing.T) {
	reg := newTestRegistry(t, 3)
	srv := NewServer(reg)
	ln, err := SockFactory{Legacy: true}.Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := SockFactory{}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx := context.Background()

	names, err := conn.Dir(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("dir over legacy peer = %v", names)
	}
	if got := conn.(*sockConn).peerCaps.Load(); got != 0 {
		t.Fatalf("legacy server advertised caps %#x", got)
	}

	ops := lookupAll(t, conn, names)
	UpdateAll(ctx, conn, ops)
	checkOps(t, ops)
	for i := range ops {
		ops[i].AckDGN, ops[i].HaveAck = readDGN(t, ops[i]), true
		ops[i].N, ops[i].Err = 0, nil
	}
	UpdateAll(ctx, conn, ops)
	checkOps(t, ops)
	for i := range ops {
		if ops[i].WasDelta {
			t.Errorf("op %d: delta from a legacy server", i)
		}
	}
	if st, _ := StatsOf(conn); st.DeltaUpdates != 0 {
		t.Errorf("delta updates against legacy server = %d", st.DeltaUpdates)
	}
	if got := srv.Stats().DeltaUpdates; got != 0 {
		t.Errorf("legacy server served %d deltas", got)
	}
}

// TestSockLegacyClientFallback is the inverse pairing: an old client against
// a new server. The server must answer with the plain protocol (the legacy
// client never offered capabilities) and the client must remain oblivious
// to the capability trailer on dir responses.
func TestSockLegacyClientFallback(t *testing.T) {
	reg := newTestRegistry(t, 3)
	srv := NewServer(reg)
	ln, err := SockFactory{}.Listen("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := SockFactory{Legacy: true}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx := context.Background()

	names, err := conn.Dir(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("legacy dir against new server = %v", names)
	}
	ops := lookupAll(t, conn, names)
	UpdateAll(ctx, conn, ops)
	checkOps(t, ops)
	// Even a (buggy) caller setting acks on a legacy connection gets full
	// chunks: the client never negotiated the capability.
	for i := range ops {
		ops[i].AckDGN, ops[i].HaveAck = readDGN(t, ops[i]), true
		ops[i].N, ops[i].Err = 0, nil
	}
	UpdateAll(ctx, conn, ops)
	checkOps(t, ops)
	for i := range ops {
		if ops[i].WasDelta {
			t.Errorf("op %d: delta on a legacy client", i)
		}
	}
	if got := srv.Stats().DeltaUpdates; got != 0 {
		t.Errorf("server served %d deltas to a legacy client", got)
	}
}

// TestMemLegacyPeerFallback covers the mem transport's model of an old
// peer: NoDelta connections ignore acknowledged DGNs and always move full
// chunks, so mixed-version simulations behave like mixed-version daemons.
func TestMemLegacyPeerFallback(t *testing.T) {
	reg := newTestRegistry(t, 3)
	fac := MemFactory{Net: NewNetwork(), NoDelta: true}
	if _, err := fac.Listen("node", NewServer(reg)); err != nil {
		t.Fatal(err)
	}
	conn, err := fac.Dial("node")
	if err != nil {
		t.Fatal(err)
	}
	ops := lookupAll(t, conn, reg.Dir())
	for i := range ops {
		ops[i].HaveAck = true // would be a delta on a capable connection
	}
	UpdateAll(context.Background(), conn, ops)
	checkOps(t, ops)
	for i := range ops {
		if ops[i].WasDelta {
			t.Errorf("op %d: NoDelta mem conn produced a delta", i)
		}
	}
	if st, _ := StatsOf(conn); st.DeltaUpdates != 0 {
		t.Errorf("NoDelta mem conn counted %d delta updates", st.DeltaUpdates)
	}
}
