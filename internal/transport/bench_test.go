package transport

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldms/internal/metric"
)

// BenchmarkDeltaUpdate measures the headline number of the delta protocol:
// wire bytes per pulled sample on a 256-set fan-in where one metric in 64
// moves per sampling round — the steady-telemetry shape (mostly-idle
// counters) the delta encoding is built for. The full sub-benchmark pulls
// whole data chunks (a legacy pairing), the delta sub-benchmark acknowledges
// each pull and receives only changed metrics. CI gates delta at >= 5x fewer
// bytes per sample than full.
//
// Every metric is seeded with incompressible pseudorandom bits: real
// telemetry is counters at arbitrary values, and zero-filled chunks would
// let plain frame compression collapse the full path on its own, masking
// the saving under measurement.
func BenchmarkDeltaUpdate(b *testing.B) {
	const nsets, nmetrics = 256, 64
	reg := metric.NewRegistry()
	sets := make([]*metric.Set, nsets)
	sch := metric.NewSchema("bench_wide")
	for j := 0; j < nmetrics; j++ {
		sch.MustAddMetric(fmt.Sprintf("m%02d", j), metric.TypeU64)
	}
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range sets {
		set, err := metric.New(fmt.Sprintf("bench/set%03d", i), sch)
		if err != nil {
			b.Fatal(err)
		}
		set.BeginTransaction()
		for j := 0; j < nmetrics; j++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			set.SetU64(j, seed)
		}
		set.EndTransaction(time.Unix(1, 0))
		if err := reg.Add(set); err != nil {
			b.Fatal(err)
		}
		sets[i] = set
	}
	round := uint64(1)
	tick := func() {
		round++
		for _, s := range sets {
			s.BeginTransaction()
			s.SetU64(3, round) // one moving metric out of 64
			s.EndTransaction(time.Unix(int64(round), 0))
		}
	}

	run := func(b *testing.B, f SockFactory, ack bool) {
		ln, err := f.Listen("127.0.0.1:0", NewServer(reg))
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		conn, err := f.Dial(ln.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		ctx := context.Background()
		if _, err := conn.Dir(ctx); err != nil { // negotiates capabilities
			b.Fatal(err)
		}
		ops := make([]UpdateOp, 0, nsets)
		mirrors := make([]*metric.Set, 0, nsets)
		for _, name := range reg.Dir() {
			rs, err := conn.Lookup(ctx, name)
			if err != nil {
				b.Fatal(err)
			}
			mir, err := rs.Meta().NewMirror()
			if err != nil {
				b.Fatal(err)
			}
			ops = append(ops, UpdateOp{Set: rs, Dst: make([]byte, rs.Meta().DataSize)})
			mirrors = append(mirrors, mir)
		}
		// Prime with a full pull of every set; steady state starts acked.
		UpdateAll(ctx, conn, ops)
		for i := range ops {
			if ops[i].Err != nil {
				b.Fatal(ops[i].Err)
			}
		}
		base, _ := StatsOf(conn)
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			tick()
			for i := range ops {
				if ack {
					// The updater's protocol: acknowledge the DGN of the chunk
					// the buffer truthfully holds from the previous pull.
					if err := mirrors[i].LoadData(ops[i].Dst[:ops[i].N]); err != nil {
						b.Fatal(err)
					}
					ops[i].AckDGN, ops[i].HaveAck = mirrors[i].DGN(), true
				}
				ops[i].N, ops[i].Err = 0, nil
			}
			UpdateAll(ctx, conn, ops)
			for i := range ops {
				if ops[i].Err != nil {
					b.Fatal(ops[i].Err)
				}
			}
		}
		b.StopTimer()
		st, _ := StatsOf(conn)
		if ack && st.DeltaUpdates == 0 {
			b.Fatal("acknowledged pulls produced no deltas")
		}
		if !ack && st.DeltaUpdates != 0 {
			b.Fatalf("unacknowledged pulls produced %d deltas", st.DeltaUpdates)
		}
		b.ReportMetric(float64(st.BytesIn-base.BytesIn)/float64(b.N*nsets), "B/sample")
	}

	b.Run("full", func(b *testing.B) { run(b, SockFactory{NoDelta: true}, false) })
	b.Run("delta", func(b *testing.B) { run(b, SockFactory{}, true) })
}

// BenchmarkSockConnScale stands up one sock transport server and drives a
// live producer connection fleet through it: every connection is a real TCP
// dialer with its own registry, one sampled set each, pulled by the
// accepting side every pass exactly as an aggregator pulls its producers
// (dir-negotiated capabilities, acknowledged delta pulls, per-connection
// stats). Reported metrics: conns (live connections actually driven),
// pass-ms (wall time of one full fleet pull pass), p99-ms (worst per-pull
// latency at the 99th percentile across passes).
//
// The flagship conns=10240 case is CI-gated: the run must reach the full
// fleet size and hold the p99 pull latency bound. Environments whose
// RLIMIT_NOFILE hard cap cannot cover two descriptors per connection are
// sized down to what the kernel allows (and report the smaller conns
// figure rather than failing). The buf sub-benchmarks pin the per-conn
// bufio sizing the factory defaults to: at thousands of mostly-idle
// connections, 4 KiB buffers hold footprint down with no pass-time cost —
// memory, not throughput, is what caps a goroutine-per-conn fleet.
func BenchmarkSockConnScale(b *testing.B) {
	b.Run("conns=1024/buf=4KiB", func(b *testing.B) {
		benchConnScale(b, 1024, SockFactory{})
	})
	b.Run("conns=1024/buf=32KiB", func(b *testing.B) {
		benchConnScale(b, 1024, SockFactory{ReadBuf: 32 << 10, WriteBuf: 32 << 10})
	})
	b.Run("conns=10240", func(b *testing.B) {
		benchConnScale(b, 10240, SockFactory{})
	})
}

func benchConnScale(b *testing.B, want int, f SockFactory) {
	limit := raiseFDLimit()
	conns := want
	// Two descriptors per loopback connection plus headroom for the
	// listener, epoll instances, and whatever the process already holds.
	if ceil := int(limit/2) - 256; conns > ceil {
		conns = ceil
		b.Logf("RLIMIT_NOFILE %d caps the fleet at %d connections (want %d)", limit, conns, want)
	}

	type peer struct {
		name string
		conn Conn
	}
	peerCh := make(chan peer, conns)
	ln, err := f.ListenPeer("127.0.0.1:0", NewServer(metric.NewRegistry()), func(name string, conn Conn) {
		peerCh <- peer{name, conn}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()

	// Producer fleet: one single-set registry per connection, all sharing
	// one schema, seeded with incompressible pseudorandom values.
	sch := metric.NewSchema("scale_load")
	for j := 0; j < 8; j++ {
		sch.MustAddMetric(fmt.Sprintf("m%d", j), metric.TypeU64)
	}
	sets := make([]*metric.Set, conns)
	clients := make([]Conn, conns)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	dialWorkers := 8 * runtime.GOMAXPROCS(0)
	if dialWorkers > 64 {
		dialWorkers = 64
	}
	var wg sync.WaitGroup
	var dialIdx atomic.Int64
	dialErr := make(chan error, conns)
	for w := 0; w < dialWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(dialIdx.Add(1)) - 1
				if i >= conns {
					return
				}
				set, err := metric.New(fmt.Sprintf("p%05d/load", i), sch)
				if err != nil {
					dialErr <- err
					return
				}
				set.BeginTransaction()
				seed := uint64(0x9e3779b97f4a7c15) ^ uint64(i)*6364136223846793005
				for j := 0; j < 8; j++ {
					seed = seed*6364136223846793005 + 1442695040888963407
					set.SetU64(j, seed)
				}
				set.EndTransaction(time.Unix(1, 0))
				preg := metric.NewRegistry()
				if err := preg.Add(set); err != nil {
					dialErr <- err
					return
				}
				conn, err := f.DialNamed(ln.Addr(), fmt.Sprintf("p%05d", i), NewServer(preg))
				if err != nil {
					dialErr <- err
					return
				}
				sets[i], clients[i] = set, conn
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-dialErr:
		b.Fatalf("dial fleet: %v", err)
	default:
	}

	// Collect the accepted peer halves and index them by producer.
	peers := make([]Conn, conns)
	for collected := 0; collected < conns; collected++ {
		select {
		case p := <-peerCh:
			var i int
			if _, err := fmt.Sscanf(p.name, "p%05d", &i); err != nil || i < 0 || i >= conns {
				b.Fatalf("unexpected peer %q", p.name)
			}
			peers[i] = p.conn
		case <-time.After(60 * time.Second):
			b.Fatalf("accepted only %d of %d peers", collected, conns)
		}
	}

	// Aggregator setup on every peer connection: capability negotiation via
	// dir, then the one lookup. Parallel — each is an independent round trip.
	ctx := context.Background()
	ops := make([]UpdateOp, conns)
	mirrors := make([]*metric.Set, conns)
	var setupIdx atomic.Int64
	setupErr := make(chan error, conns)
	for w := 0; w < dialWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(setupIdx.Add(1)) - 1
				if i >= conns {
					return
				}
				if _, err := peers[i].Dir(ctx); err != nil {
					setupErr <- fmt.Errorf("dir p%05d: %w", i, err)
					return
				}
				rs, err := peers[i].Lookup(ctx, fmt.Sprintf("p%05d/load", i))
				if err != nil {
					setupErr <- fmt.Errorf("lookup p%05d: %w", i, err)
					return
				}
				mir, err := rs.Meta().NewMirror()
				if err != nil {
					setupErr <- err
					return
				}
				ops[i] = UpdateOp{Set: rs, Dst: make([]byte, rs.Meta().DataSize)}
				mirrors[i] = mir
				// Priming pull: steady state starts with every chunk held.
				UpdateAll(ctx, peers[i], ops[i:i+1])
				if ops[i].Err != nil {
					setupErr <- fmt.Errorf("prime p%05d: %w", i, ops[i].Err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-setupErr:
		b.Fatalf("fleet setup: %v", err)
	default:
	}

	pullWorkers := 4 * runtime.GOMAXPROCS(0)
	if pullWorkers > conns {
		pullWorkers = conns
	}
	lat := make([]time.Duration, conns)
	pass := func(round uint64) {
		// Producers sample, then the fleet is pulled with acknowledgments.
		for _, s := range sets {
			s.BeginTransaction()
			s.SetU64(3, round)
			s.EndTransaction(time.Unix(int64(round), 0))
		}
		var next atomic.Int64
		var pwg sync.WaitGroup
		for w := 0; w < pullWorkers; w++ {
			pwg.Add(1)
			go func() {
				defer pwg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= conns {
						return
					}
					t0 := time.Now()
					if err := mirrors[i].LoadData(ops[i].Dst[:ops[i].N]); err == nil {
						ops[i].AckDGN, ops[i].HaveAck = mirrors[i].DGN(), true
					}
					ops[i].N, ops[i].Err = 0, nil
					UpdateAll(ctx, peers[i], ops[i:i+1])
					lat[i] = time.Since(t0)
				}
			}()
		}
		pwg.Wait()
	}

	var worstP99, totalWall time.Duration
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		t0 := time.Now()
		pass(uint64(2 + n))
		wall := time.Since(t0)
		totalWall += wall
		sorted := append([]time.Duration(nil), lat...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		if p99 := sorted[conns*99/100]; p99 > worstP99 {
			worstP99 = p99
		}
	}
	b.StopTimer()
	for i := range ops {
		if ops[i].Err != nil {
			b.Fatalf("pull p%05d: %v", i, ops[i].Err)
		}
	}
	var total ConnStats
	for i := range peers {
		st, _ := StatsOf(peers[i])
		total.Add(st)
	}
	if total.DeltaUpdates == 0 {
		b.Fatal("fleet pulls produced no delta updates")
	}
	b.ReportMetric(float64(conns), "conns")
	b.ReportMetric(float64(totalWall.Milliseconds())/float64(b.N), "pass-ms")
	b.ReportMetric(float64(worstP99)/float64(time.Millisecond), "p99-ms")
}
