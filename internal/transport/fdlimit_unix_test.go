//go:build unix

package transport

import "syscall"

// raiseFDLimit lifts the soft RLIMIT_NOFILE to the hard limit and returns
// the resulting ceiling. The 10k-connection scale benchmark needs two file
// descriptors per loopback connection, far past the common 1024 soft
// default; the hard limit is the kernel's final word, so callers size
// themselves to what this returns rather than assuming the full target.
func raiseFDLimit() uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 1024
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		// Best effort: on failure the current soft limit still stands.
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl); err == nil {
			return rl.Max
		}
		syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	return rl.Cur
}
