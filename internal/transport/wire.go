package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire framing shared by the sock and rdma transports:
//
//	u32 payload length | u8 message type | u64 request id | payload
//
// Request/response payloads:
//
//	dirReq      (empty)
//	dirResp     u32 count, then count length-prefixed names
//	lookupReq   length-prefixed instance name
//	lookupResp  u32 set handle, then metadata chunk bytes
//	updateReq   u32 set handle
//	updateResp  data chunk bytes
//	errResp     length-prefixed message
const (
	msgDirReq = iota + 1
	msgDirResp
	msgLookupReq
	msgLookupResp
	msgUpdateReq
	msgUpdateResp
	msgErrResp
)

// maxFrame bounds a frame payload; metric sets are tens of kB, so 16 MB is
// generous and protects against corrupt length words.
const maxFrame = 16 << 20

const frameHeader = 4 + 1 + 8

var wireLE = binary.LittleEndian

// bufFree recycles frame payload buffers and server-side update response
// buffers. Aggregation pulls move one data chunk per request at a steady
// rate, so without recycling the hot path allocates a chunk-sized buffer
// per update on each half of the connection. A channel free list (rather
// than sync.Pool) keeps Get/Put allocation-free for the []byte values.
var bufFree = make(chan []byte, 256)

// getBuf returns a length-n buffer, reusing a recycled one when its
// capacity suffices.
func getBuf(n int) []byte {
	select {
	case b := <-bufFree:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	return make([]byte, n)
}

// putBuf recycles a buffer obtained from getBuf (or any buffer the caller
// has finished with). Callers must not retain references into b afterward.
func putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case bufFree <- b[:0]:
	default:
	}
}

// writeFrame sends one frame. Callers serialize access to w.
func writeFrame(w io.Writer, typ byte, reqID uint64, payload []byte) error {
	var hdr [frameHeader]byte
	wireLE.PutUint32(hdr[0:], uint32(len(payload)))
	hdr[4] = typ
	wireLE.PutUint64(hdr[5:], reqID)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame receives one frame.
func readFrame(r io.Reader) (typ byte, reqID uint64, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := wireLE.Uint32(hdr[0:])
	if n > maxFrame {
		return 0, 0, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	typ = hdr[4]
	reqID = wireLE.Uint64(hdr[5:])
	if n > 0 {
		// Recycled via putBuf once the payload is consumed (request payloads
		// after dispatch, update response payloads after the copy to dst).
		payload = getBuf(int(n))
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, 0, nil, err
		}
	}
	return typ, reqID, payload, nil
}

// appendString appends a u16 length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = wireLE.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// readString decodes a u16 length-prefixed string at pos.
func readString(b []byte, pos int) (string, int, error) {
	if pos+2 > len(b) {
		return "", 0, fmt.Errorf("transport: truncated string length")
	}
	n := int(wireLE.Uint16(b[pos:]))
	if pos+2+n > len(b) {
		return "", 0, fmt.Errorf("transport: truncated string")
	}
	return string(b[pos+2 : pos+2+n]), pos + 2 + n, nil
}

// encodeDirResp serializes a name list.
func encodeDirResp(names []string) []byte {
	b := wireLE.AppendUint32(nil, uint32(len(names)))
	for _, n := range names {
		b = appendString(b, n)
	}
	return b
}

// decodeDirResp parses a name list.
func decodeDirResp(b []byte) ([]string, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("transport: short dir response")
	}
	count := int(wireLE.Uint32(b))
	// Each name costs at least its 2-byte length prefix; a count beyond
	// that is a corrupt or hostile frame (and must not drive allocation).
	if count > (len(b)-4)/2 {
		return nil, fmt.Errorf("transport: dir response claims %d names in %d bytes", count, len(b))
	}
	names := make([]string, 0, count)
	pos := 4
	for i := 0; i < count; i++ {
		s, next, err := readString(b, pos)
		if err != nil {
			return nil, err
		}
		names = append(names, s)
		pos = next
	}
	return names, nil
}

// msgHello announces the dialing peer's name for reversed-direction pulls
// (connection initiation from either side, §IV-B).
const msgHello = msgErrResp + 1

// msgDirGenReq/msgDirGenResp poll the peer registry's directory generation
// (a u64 counter bumped on set add/remove). Tiered aggregators check it once
// per pass and only re-fetch the full directory when it moved, so membership
// changes propagate one pull interval per hop without per-pass dir traffic.
//
//	dirGenReq   (empty)
//	dirGenResp  u64 generation
const (
	msgDirGenReq  = msgHello + 1
	msgDirGenResp = msgHello + 2
)
